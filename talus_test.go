package talus

import (
	"math"
	"testing"
)

// TestPublicAPIWorkedExample drives the whole public surface through the
// paper's §III example.
func TestPublicAPIWorkedExample(t *testing.T) {
	m := MustCurve([]Point{
		{Size: 0, MPKI: 24},
		{Size: MBToLines(2), MPKI: 12},
		{Size: MBToLines(4.999), MPKI: 12},
		{Size: MBToLines(5), MPKI: 3},
		{Size: MBToLines(10), MPKI: 3},
	})

	h := ConvexHull(m)
	if !h.IsConvex(1e-9) {
		t.Fatal("hull not convex")
	}
	if got := InterpolatedMPKI(m, MBToLines(4)); math.Abs(got-6) > 1e-9 {
		t.Fatalf("InterpolatedMPKI = %g, want 6", got)
	}

	cfg, err := Configure(m, MBToLines(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.RhoIdeal-1.0/3) > 1e-12 || math.Abs(cfg.PredictedMPKI-6) > 1e-9 {
		t.Fatalf("config = %+v", cfg)
	}

	hulls := Convexify([]*MissCurve{m})
	if !hulls[0].IsConvex(1e-9) {
		t.Fatal("Convexify output not convex")
	}
}

func TestPublicAPICacheConstruction(t *testing.T) {
	inner, err := BuildCache("vantage", int64(MBToLines(1)), 16, 2, "LRU", 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	tc, err := NewShadowedCache(inner, 1, DefaultMargin, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := MustCurve([]Point{
		{Size: 0, MPKI: 20},
		{Size: MBToLines(0.9), MPKI: 20},
		{Size: MBToLines(1), MPKI: 2},
		{Size: MBToLines(4), MPKI: 2},
	})
	if err := tc.Reconfigure([]int64{inner.PartitionableCapacity()}, []*MissCurve{m}); err != nil {
		t.Fatal(err)
	}
	sizes := tc.ShadowSizes()
	var sum int64
	for _, s := range sizes {
		sum += s
	}
	if sum != inner.PartitionableCapacity() {
		t.Fatalf("shadow sizes %v do not sum to the allocation %d", sizes, inner.PartitionableCapacity())
	}
	// Accesses must flow.
	hits := 0
	for i := 0; i < 10000; i++ {
		if tc.Access(uint64(i%1000), 0) {
			hits++
		}
	}
	if hits == 0 {
		t.Fatal("no hits on a 1000-line working set in a 1MB cache")
	}
}

func TestPublicAPIBypass(t *testing.T) {
	m := MustCurve([]Point{
		{Size: 0, MPKI: 24},
		{Size: MBToLines(5), MPKI: 3},
		{Size: MBToLines(10), MPKI: 3},
	})
	bc, err := OptimalBypass(m, MBToLines(4))
	if err != nil {
		t.Fatal(err)
	}
	if bc.MPKI < InterpolatedMPKI(m, MBToLines(4))-1e-9 {
		t.Fatal("bypassing beat the hull: violates Corollary 8")
	}
	bcurve, err := BypassCurve(m, []float64{MBToLines(2), MBToLines(4)})
	if err != nil {
		t.Fatal(err)
	}
	if bcurve.NumPoints() != 2 {
		t.Fatal("bypass curve points")
	}
}

func TestPublicAPIAllocators(t *testing.T) {
	a := MustCurve([]Point{{Size: 0, MPKI: 20}, {Size: 100, MPKI: 10}, {Size: 400, MPKI: 1}})
	b := MustCurve([]Point{{Size: 0, MPKI: 8}, {Size: 200, MPKI: 2}, {Size: 400, MPKI: 1}})
	curves := []*MissCurve{a, b}
	for name, f := range map[string]func() ([]int64, error){
		"hill":      func() ([]int64, error) { return HillClimb(curves, 400, 10) },
		"lookahead": func() ([]int64, error) { return Lookahead(curves, 400, 10) },
		"dp":        func() ([]int64, error) { return OptimalDP(curves, 400, 10) },
		"fair":      func() ([]int64, error) { return Fair(2, 400, 10) },
	} {
		got, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got[0]+got[1] != 400 {
			t.Fatalf("%s: allocation %v does not sum to budget", name, got)
		}
	}
}

func TestPublicAPIAdaptive(t *testing.T) {
	for _, name := range []string{"hill", "lookahead", "fair", "optimal"} {
		if _, err := AllocatorByName(name); err != nil {
			t.Fatalf("AllocatorByName(%q): %v", name, err)
		}
	}
	ac, err := NewAdaptiveCache("vantage", 8192, 16, 2, 2, "LRU", DefaultMargin,
		AdaptiveConfig{EpochAccesses: 1 << 14, Allocator: HillClimbAllocator, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]uint64, 256)
	for round := 0; round < 400; round++ {
		for p := 0; p < 2; p++ {
			for i := range batch {
				batch[i] = uint64(round*256+i)%4096 | uint64(p+1)<<48
			}
			ac.AccessBatch(batch, p, nil)
		}
	}
	if ac.Epochs() == 0 {
		t.Fatal("adaptive cache never reconfigured")
	}
	allocs := ac.Allocations()
	if len(allocs) != 2 || allocs[0]+allocs[1] <= 0 {
		t.Fatalf("bad allocations %v", allocs)
	}
	if err := ac.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIWorkloads(t *testing.T) {
	if len(Workloads()) != 29 {
		t.Fatalf("Workloads() = %d names, want 29", len(Workloads()))
	}
	if len(MemoryIntensiveWorkloads()) != 18 {
		t.Fatal("memory-intensive pool should have 18 names")
	}
	spec, ok := LookupWorkload("libquantum")
	if !ok {
		t.Fatal("libquantum missing")
	}
	if ipc := IPCOf(spec, 0); ipc <= 0 {
		t.Fatal("IPC model broken")
	}
}

func TestPublicAPIUnits(t *testing.T) {
	if MBToLines(1) != float64(LinesPerMB) {
		t.Fatal("MBToLines(1) != LinesPerMB")
	}
	if LinesToMB(MBToLines(7)) != 7 {
		t.Fatal("unit round trip failed")
	}
}
