# Developer entry points. Everything here is plain go tool invocations —
# the Makefile only names the workflows CI and DESIGN.md refer to.

GO ?= go

.PHONY: all build test race check fmt vet examples bench-smoke bench-serving bench-serving-mp

all: check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check = the CI hygiene gate: formatting, vet, and a full build.
check: fmt vet build

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# examples compiles and runs every Example function (their Output
# comments are asserted), keeping the documented snippets honest.
examples:
	$(GO) test -run '^Example' ./...

# bench-smoke is the CI benchmark pass: every benchmark once, reduced scale.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

# bench-serving regenerates BENCH_serving.json, the serving hot path's
# tracked perf baseline (store Get/Put, adaptive AccessBatch, monitor).
bench-serving:
	$(GO) run ./cmd/talus-bench -out BENCH_serving.json

# bench-serving-mp adds the contended shape: the same hot paths under
# GOMAXPROCS>=4, appended (not overwriting) as procs>1 rows keyed by
# (name, procs). Run after bench-serving to get both shapes in one file.
BENCH_PROCS ?= 4
bench-serving-mp:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) run ./cmd/talus-bench -append -out BENCH_serving.json
