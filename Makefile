# Developer entry points. Everything here is plain go tool invocations —
# the Makefile only names the workflows CI and DESIGN.md refer to.

GO ?= go

.PHONY: all build test race check fmt vet examples validate bench-smoke bench-serving bench-serving-mp bench-serving-matrix bench-compare profile-serving cluster-demo cluster-e2e

all: check test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# check = the CI hygiene gate: formatting, vet, and a full build.
check: fmt vet build

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# examples compiles and runs every Example function (their Output
# comments are asserted), keeping the documented snippets honest.
examples:
	$(GO) test -run '^Example' ./...

# validate runs the ground-truth gate: the exact-LRU oracle cross-checks
# (monitor vs oracle, analytic vs stack sim, hull/Talus identities,
# golden curves) in -short mode, the external-trace importer round-trip
# on the committed ChampSim fixture, and regenerates ORACLE_errors.md —
# the monitor-vs-oracle error table CI uploads as an artifact.
validate:
	$(GO) test -short -run 'TestMonitorMatchesOracle|TestAnalyticMatchesStackSim|TestHullIsLowerConvexEnvelope|TestTalusRecombinesToOracle|TestGoldenOracleCurves' -v ./internal/oracle
	$(GO) test -run 'TestImportChampSim|TestParseText' ./internal/trace
	$(GO) run ./cmd/talus-oracle -accesses 393216 -o ORACLE_errors.md

# bench-smoke is the CI benchmark pass: every benchmark once, reduced scale.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

# bench-serving regenerates BENCH_serving.json, the serving hot path's
# tracked perf baseline (store Get/Put, adaptive AccessBatch, monitor).
bench-serving:
	$(GO) run ./cmd/talus-bench -out BENCH_serving.json

# bench-serving-mp adds the contended shape: the same hot paths under
# GOMAXPROCS>=4, appended (not overwriting) as procs>1 rows keyed by
# (name, procs). Run after bench-serving to get both shapes in one file.
BENCH_PROCS ?= 4
bench-serving-mp:
	GOMAXPROCS=$(BENCH_PROCS) $(GO) run ./cmd/talus-bench -append -out BENCH_serving.json

# bench-serving-matrix regenerates BENCH_serving.json at both tracked
# GOMAXPROCS shapes: the single-proc baseline first (overwriting), then
# the contended procs=$(BENCH_PROCS) rows appended by (name, procs).
bench-serving-matrix:
	GOMAXPROCS=1 $(GO) run ./cmd/talus-bench -out BENCH_serving.json
	GOMAXPROCS=$(BENCH_PROCS) $(GO) run ./cmd/talus-bench -append -out BENCH_serving.json

# bench-compare reruns the serving benchmarks and diffs them against the
# committed BENCH_serving.json, keyed by (name, procs); it exits
# non-zero when any benchmark is more than BENCH_THRESHOLD (fractional)
# slower than the baseline. CI runs this as a non-blocking lane so the
# delta table is in every run's log.
BENCH_THRESHOLD ?= 0.10
bench-compare:
	$(GO) run ./cmd/talus-bench -compare -threshold $(BENCH_THRESHOLD) -out BENCH_serving.json

# profile-serving captures cpu and alloc profiles of the serving hot
# path, built with -tags profilelabels so samples carry pprof labels
# (talus=batch-flush for combiner flushes, talus=epoch-step for
# reconfigurations; see EXPERIMENTS.md "Profiling the serving path").
# Inspect with: go tool pprof -tagfocus talus=batch-flush profiles/serving.test profiles/serving.cpu.pprof
PROFILE_DIR ?= profiles
profile-serving:
	mkdir -p $(PROFILE_DIR)
	GOMAXPROCS=$(BENCH_PROCS) $(GO) test -tags profilelabels -run '^$$' \
		-bench 'StoreGet|StoreSet|AdaptiveAccessBatch|ShadowedShardedBatch' \
		-benchtime 2s -benchmem \
		-cpuprofile $(PROFILE_DIR)/serving.cpu.pprof \
		-memprofile $(PROFILE_DIR)/serving.mem.pprof \
		-o $(PROFILE_DIR)/serving.test .
	@echo "wrote $(PROFILE_DIR)/serving.{cpu,mem}.pprof; inspect with:"
	@echo "  go tool pprof $(PROFILE_DIR)/serving.test $(PROFILE_DIR)/serving.cpu.pprof"

# cluster-demo runs the 3-node ring + closed-loop load shape in one
# process (examples/cluster); cluster-e2e runs the acceptance tests —
# deterministic routing on a live 3-node fleet and the 3-node vs
# single-node-at-3x hit-ratio comparison — race-clean.
cluster-demo:
	$(GO) run ./examples/cluster

cluster-e2e:
	$(GO) test -race -run 'TestCluster' ./internal/serve ./internal/loadgen
