// Command talus-exp regenerates the paper's tables and figures.
//
// Usage:
//
//	talus-exp -exp fig1              # one experiment
//	talus-exp -exp all -quick        # everything, reduced scale
//	talus-exp -exp fig12 -full -out results/
//	talus-exp -list                  # show available experiments
//
// Each experiment prints the rows/series of the corresponding paper
// artifact; -out additionally writes CSVs suitable for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"talus/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment to run (fig1..fig13, table1, table2, or all)")
		quick = flag.Bool("quick", false, "reduced scale (~10x faster)")
		full  = flag.Bool("full", false, "paper-scale sweeps (slow)")
		out   = flag.String("out", "", "directory for CSV output (optional)")
		seed  = flag.Uint64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list experiments and exit")
		par   = flag.Int("parallelism", runtime.GOMAXPROCS(0), "worker pool size for sweeps and mixes (results are identical at any setting)")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("available experiments:")
		for _, name := range experiments.Names() {
			fmt.Printf("  %-8s %s\n", name, experiments.About(name))
		}
		fmt.Println("  all      run everything in order")
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	cfg := experiments.Config{
		Quick:       *quick,
		Full:        *full,
		OutDir:      *out,
		Seed:        *seed,
		Parallelism: *par,
		W:           os.Stdout,
	}
	start := time.Now()
	if err := experiments.Run(*exp, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "talus-exp: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\n[%s completed in %v]\n", *exp, time.Since(start).Round(time.Millisecond))
}
