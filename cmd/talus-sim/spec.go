// Spec-file loading and command-line override semantics, separated from
// main so the precedence rules are unit-testable.

package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// specFile mirrors the JSON schema.
type specFile struct {
	Apps        []string `json:"apps"`
	CapacityMB  float64  `json:"capacity_mb"`
	Mode        string   `json:"mode"`
	WorkInstr   int64    `json:"work_instr"`
	EpochCycles int64    `json:"epoch_cycles"`
	Seed        uint64   `json:"seed"`

	// TraceFiles lists recorded traces (internal/trace) whose partitions
	// join the run as replayed apps; with "adaptive" and no apps, a
	// single trace drives an exact replay of the recorded stream.
	TraceFiles []string `json:"trace_files"`

	// Adaptive-runtime fields (used with "adaptive": true): the online
	// control loop replaces the cycle-driven CPU simulation. BatchLen
	// must match a recording's batch length for exact trace replay.
	Adaptive      bool    `json:"adaptive"`
	EpochAccesses int64   `json:"epoch_accesses"`
	Allocator     string  `json:"allocator"`
	Accesses      int64   `json:"accesses_per_app"`
	Shards        int     `json:"shards"`
	BatchLen      int     `json:"batch_len"`
	TailFrac      float64 `json:"tail_frac"`

	// Weights gives each app's partition an objective weight, in app
	// order (the allocator minimizes Σ wᵢ·missesᵢ); SelfTune enables the
	// churn-driven epoch controller bounded by MinEpoch/MaxEpoch.
	Weights  []float64 `json:"weights"`
	SelfTune bool      `json:"self_tune"`
	MinEpoch int64     `json:"min_epoch"`
	MaxEpoch int64     `json:"max_epoch"`
}

// loadSpec parses a JSON spec, rejecting unknown (typo'd) keys.
func loadSpec(path string) (specFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return specFile{}, err
	}
	defer f.Close()
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	var spec specFile
	if err := dec.Decode(&spec); err != nil {
		return specFile{}, fmt.Errorf("parsing %s: %w", path, err)
	}
	var trailing any
	if err := dec.Decode(&trailing); !errors.Is(err, io.EOF) {
		return specFile{}, fmt.Errorf("parsing %s: trailing data after the spec object", path)
	}
	return spec, nil
}

// flagValues carries the command-line flag values that can override
// spec fields.
type flagValues struct {
	apps     string
	mode     string
	mb       float64
	work     int64
	seed     uint64
	adaptive bool
	epoch    int64
	alloc    string
	accesses int64
	shards   int
	batch    int
	tail     float64
	traces   string
	weights  []float64
	selfTune bool
	minEpoch int64
	maxEpoch int64
}

// applyFlags overrides spec fields with flags the user explicitly set
// on the command line (set holds flag names visited by flag.Visit).
// Explicit flags always win over the spec file; untouched flags leave
// the spec's values (or its zero-value defaults) alone.
func (s *specFile) applyFlags(set map[string]bool, v flagValues) {
	if set["apps"] {
		s.Apps = splitList(v.apps)
	}
	if set["mode"] {
		s.Mode = v.mode
	}
	if set["mb"] {
		s.CapacityMB = v.mb
	}
	if set["work"] {
		s.WorkInstr = v.work
	}
	if set["seed"] {
		s.Seed = v.seed
	}
	if set["adaptive"] {
		s.Adaptive = v.adaptive
	}
	if set["epoch"] {
		s.EpochAccesses = v.epoch
	}
	if set["alloc"] {
		s.Allocator = v.alloc
	}
	if set["accesses"] {
		s.Accesses = v.accesses
	}
	if set["shards"] {
		s.Shards = v.shards
	}
	if set["batch"] {
		s.BatchLen = v.batch
	}
	if set["tail"] {
		s.TailFrac = v.tail
	}
	if set["trace"] {
		s.TraceFiles = splitList(v.traces)
	}
	if set["weights"] {
		s.Weights = v.weights
	}
	if set["self-tune"] {
		s.SelfTune = v.selfTune
	}
	if set["min-epoch"] {
		s.MinEpoch = v.minEpoch
	}
	if set["max-epoch"] {
		s.MaxEpoch = v.maxEpoch
	}
}

// parseWeights parses the -weights flag: comma-separated per-app
// weights in app order ("4,1,1,1"). Empty means uniform.
func parseWeights(s string) ([]float64, error) {
	parts := splitList(s)
	if len(parts) == 0 {
		return nil, nil
	}
	out := make([]float64, len(parts))
	for i, p := range parts {
		w, err := strconv.ParseFloat(p, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-weights entry %q: want a non-negative number", p)
		}
		out[i] = w
	}
	return out, nil
}

// splitList splits a comma-separated flag value, trimming blanks.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}
