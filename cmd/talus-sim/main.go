// Command talus-sim runs a multi-programmed CMP simulation described by a
// JSON spec and reports per-app IPC, MPKI, and speedups over the
// unpartitioned-LRU baseline.
//
// Usage:
//
//	talus-sim -spec mix.json
//	talus-sim -apps mcf,lbm,omnetpp,xalancbmk -mode talus-hill -mb 4
//	talus-sim -spec mix.json -mb 8 -seed 7     # flags override spec fields
//	talus-sim -adaptive -trace mix.trc -mb 8   # exact replay of a recording
//
// Spec file format (unknown keys are rejected):
//
//	{
//	  "apps": ["mcf", "lbm", "omnetpp", "xalancbmk"],
//	  "capacity_mb": 4,
//	  "mode": "talus-hill",
//	  "work_instr": 52428800,
//	  "epoch_cycles": 1048576,
//	  "seed": 42,
//	  "trace_files": ["mix.trc"]
//	}
//
// Apps name registry clones or "trace:<path>" recordings; trace_files
// (or -trace) adds every partition of the listed recordings as a
// replayed app. Explicitly-set command-line flags override the
// corresponding spec fields.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"

	"talus/internal/curve"
	"talus/internal/sim"
	"talus/internal/stats"
	"talus/internal/workload"
)

func main() {
	var (
		specPath = flag.String("spec", "", "JSON simulation spec")
		appsFlag = flag.String("apps", "", "comma-separated app list (registry clones or trace:<path>)")
		mode     = flag.String("mode", "talus-hill", "management mode (lru, tadrrip, hill-lru, lookahead-lru, fair-lru, talus-hill, talus-fair)")
		mb       = flag.Float64("mb", 8, "LLC capacity in MB")
		work     = flag.Int64("work", 30<<20, "fixed work per app (instructions)")
		seed     = flag.Uint64("seed", 42, "random seed")
		par      = flag.Int("parallelism", runtime.GOMAXPROCS(0), "worker pool size for concurrent mix simulation")
		traceF   = flag.String("trace", "", "comma-separated trace files replayed as apps (exact adaptive replay when it is the only source)")

		adaptiveF = flag.Bool("adaptive", false, "run the online adaptive runtime (monitor→hull→allocator control loop) instead of the cycle-driven CPU simulation")
		epochF    = flag.Int64("epoch", 0, "adaptive reconfiguration interval in accesses (0 = default)")
		allocF    = flag.String("alloc", "hill", "adaptive allocator: hill, lookahead, fair, optimal")
		accessesF = flag.Int64("accesses", 4<<20, "adaptive traffic per app (accesses)")
		shardsF   = flag.Int("shards", 1, "adaptive cache shard count")
		batchF    = flag.Int("batch", 0, "adaptive accesses per batch (0 = default 2048; match the recording for exact trace replay)")
		tailF     = flag.Float64("tail", 0, "adaptive trailing fraction measured for steady-state rates (0 = default 0.5)")
		weightsF  = flag.String("weights", "", "adaptive per-app objective weights in app order, e.g. 4,1,1,1 (empty = uniform)")
		selfTuneF = flag.Bool("self-tune", false, "adaptive churn-driven epoch controller")
		minEpochF = flag.Int64("min-epoch", 0, "self-tuner's epoch budget floor in accesses (0 = the -epoch budget)")
		maxEpochF = flag.Int64("max-epoch", 0, "self-tuner's epoch budget ceiling in accesses (0 = 16x the floor)")
	)
	flag.Parse()

	weightsV, err := parseWeights(*weightsF)
	if err != nil {
		fatal(err)
	}
	vals := flagValues{
		apps: *appsFlag, mode: *mode, mb: *mb, work: *work, seed: *seed,
		adaptive: *adaptiveF, epoch: *epochF, alloc: *allocF,
		accesses: *accessesF, shards: *shardsF, batch: *batchF,
		tail: *tailF, traces: *traceF,
		weights: weightsV, selfTune: *selfTuneF,
		minEpoch: *minEpochF, maxEpoch: *maxEpochF,
	}
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })

	var spec specFile
	if *specPath != "" {
		var err error
		if spec, err = loadSpec(*specPath); err != nil {
			fatal(err)
		}
		// Explicit flags override the spec's fields.
		spec.applyFlags(set, vals)
	} else if *appsFlag != "" || *traceF != "" {
		// No spec: every flag is authoritative, set or not.
		spec = specFile{
			Apps:          splitList(*appsFlag),
			CapacityMB:    *mb,
			Mode:          *mode,
			WorkInstr:     *work,
			Seed:          *seed,
			TraceFiles:    splitList(*traceF),
			Adaptive:      *adaptiveF,
			EpochAccesses: *epochF,
			Allocator:     *allocF,
			Accesses:      *accessesF,
			Shards:        *shardsF,
			BatchLen:      *batchF,
			TailFrac:      *tailF,
			Weights:       weightsV,
			SelfTune:      *selfTuneF,
			MinEpoch:      *minEpochF,
			MaxEpoch:      *maxEpochF,
		}
	} else {
		flag.Usage()
		os.Exit(2)
	}

	// An adaptive run whose only source is one trace file replays the
	// recorded stream exactly (same interleaving, same batching).
	if spec.Adaptive && len(spec.Apps) == 0 && len(spec.TraceFiles) == 1 {
		runAdaptiveTrace(spec)
		return
	}

	apps := make([]workload.Spec, 0, len(spec.Apps))
	for _, name := range spec.Apps {
		s, err := workload.Resolve(name)
		if err != nil {
			fatal(err)
		}
		apps = append(apps, s)
	}
	for _, path := range spec.TraceFiles {
		traced, err := sim.SpecsFromTrace(path)
		if err != nil {
			fatal(fmt.Errorf("trace %s: %w", path, err))
		}
		apps = append(apps, traced...)
	}
	if len(apps) == 0 {
		fatal(fmt.Errorf("no apps: give -apps, -trace, or spec fields"))
	}

	if spec.Adaptive {
		runAdaptive(spec, apps)
		return
	}
	mixCfg := sim.MixConfig{
		Apps:          apps,
		CapacityLines: int64(curve.MBToLines(spec.CapacityMB)),
		Mode:          sim.Mode(spec.Mode),
		WorkInstr:     spec.WorkInstr,
		EpochCycles:   spec.EpochCycles,
		Seed:          spec.Seed,
	}

	// The baseline and the managed run are independent simulations: fan
	// them across the worker pool.
	baseCfg := mixCfg
	baseCfg.Mode = sim.ModeLRU
	results, err := sim.RunMixes([]sim.MixConfig{baseCfg, mixCfg}, *par)
	if err != nil {
		fatal(err)
	}
	base, res := results[0], results[1]

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tIPC\tMPKI\thit-ratio\tlru-hit-ratio\tspeedup-vs-LRU")
	for i := range apps {
		fmt.Fprintf(tw, "%s\t%.4f\t%.3f\t%.4f\t%.4f\t%.3f\n",
			res.Apps[i], res.IPC[i], res.MPKI[i],
			hitRatio(res.MPKI[i], apps[i].APKI), hitRatio(base.MPKI[i], apps[i].APKI),
			res.IPC[i]/base.IPC[i])
	}
	tw.Flush()
	fmt.Printf("\nweighted speedup: %.4f\nharmonic speedup: %.4f\nepochs: %d\n",
		stats.WeightedSpeedup(res.IPC, base.IPC),
		stats.HarmonicSpeedup(res.IPC, base.IPC),
		res.Epochs)
}

// adaptiveCfg maps the shared spec fields onto an AdaptiveConfig.
func adaptiveCfg(spec specFile) sim.AdaptiveConfig {
	return sim.AdaptiveConfig{
		CapacityLines:  int64(curve.MBToLines(spec.CapacityMB)),
		Shards:         spec.Shards,
		Allocator:      spec.Allocator,
		EpochAccesses:  spec.EpochAccesses,
		AccessesPerApp: spec.Accesses,
		BatchLen:       spec.BatchLen,
		TailFrac:       spec.TailFrac,
		Weights:        spec.Weights,
		SelfTune:       spec.SelfTune,
		MinEpoch:       spec.MinEpoch,
		MaxEpoch:       spec.MaxEpoch,
		Seed:           spec.Seed,
	}
}

// runAdaptive drives the online control loop: no CPU model, no offline
// curves — the cache measures, convexifies, allocates, and reconfigures
// itself from its own traffic.
func runAdaptive(spec specFile, apps []workload.Spec) {
	cfg := adaptiveCfg(spec)
	cfg.Apps = apps
	res, err := sim.RunAdaptive(cfg)
	if err != nil {
		fatal(err)
	}
	printAdaptive(res)
}

// runAdaptiveTrace replays a recorded stream through the adaptive loop.
func runAdaptiveTrace(spec specFile) {
	res, err := sim.RunAdaptiveTraceFile(adaptiveCfg(spec), spec.TraceFiles[0])
	if err != nil {
		fatal(err)
	}
	printAdaptive(res)
}

func printAdaptive(res *sim.AdaptiveResult) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tMPKI\tmiss-ratio\talloc-lines\talloc-MB")
	for i := range res.Apps {
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%d\t%.3f\n",
			res.Apps[i], res.MPKI[i], res.MissRatio[i],
			res.Allocs[i], curve.LinesToMB(float64(res.Allocs[i])))
	}
	tw.Flush()
	fmt.Printf("\nepochs: %d (reconfigurations driven by the access stream)\n", res.Epochs)
}

// hitRatio converts an app's MPKI to its LLC hit ratio: accesses per
// kilo-instruction is the spec's APKI, so 1 − MPKI/APKI, clamped to
// [0, 1] against measurement noise at the extremes.
func hitRatio(mpki, apki float64) float64 {
	if apki <= 0 {
		return 0
	}
	h := 1 - mpki/apki
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "talus-sim: %v\n", err)
	os.Exit(1)
}
