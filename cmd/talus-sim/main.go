// Command talus-sim runs a multi-programmed CMP simulation described by a
// JSON spec and reports per-app IPC, MPKI, and speedups over the
// unpartitioned-LRU baseline.
//
// Usage:
//
//	talus-sim -spec mix.json
//	talus-sim -apps mcf,lbm,omnetpp,xalancbmk -mode talus-hill -mb 4
//
// Spec file format:
//
//	{
//	  "apps": ["mcf", "lbm", "omnetpp", "xalancbmk"],
//	  "capacity_mb": 4,
//	  "mode": "talus-hill",
//	  "work_instr": 52428800,
//	  "epoch_cycles": 1048576,
//	  "seed": 42
//	}
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"text/tabwriter"

	"talus/internal/curve"
	"talus/internal/sim"
	"talus/internal/stats"
	"talus/internal/workload"
)

// specFile mirrors the JSON schema.
type specFile struct {
	Apps        []string `json:"apps"`
	CapacityMB  float64  `json:"capacity_mb"`
	Mode        string   `json:"mode"`
	WorkInstr   int64    `json:"work_instr"`
	EpochCycles int64    `json:"epoch_cycles"`
	Seed        uint64   `json:"seed"`

	// Adaptive-runtime fields (used with "adaptive": true): the online
	// control loop replaces the cycle-driven CPU simulation.
	Adaptive      bool   `json:"adaptive"`
	EpochAccesses int64  `json:"epoch_accesses"`
	Allocator     string `json:"allocator"`
	Accesses      int64  `json:"accesses_per_app"`
	Shards        int    `json:"shards"`
}

func main() {
	var (
		specPath = flag.String("spec", "", "JSON simulation spec")
		appsFlag = flag.String("apps", "", "comma-separated app list (alternative to -spec)")
		mode     = flag.String("mode", "talus-hill", "management mode (lru, tadrrip, hill-lru, lookahead-lru, fair-lru, talus-hill, talus-fair)")
		mb       = flag.Float64("mb", 8, "LLC capacity in MB")
		work     = flag.Int64("work", 30<<20, "fixed work per app (instructions)")
		seed     = flag.Uint64("seed", 42, "random seed")
		par      = flag.Int("parallelism", runtime.GOMAXPROCS(0), "worker pool size for concurrent mix simulation")

		adaptiveF = flag.Bool("adaptive", false, "run the online adaptive runtime (monitor→hull→allocator control loop) instead of the cycle-driven CPU simulation")
		epochF    = flag.Int64("epoch", 0, "adaptive reconfiguration interval in accesses (0 = default)")
		allocF    = flag.String("alloc", "hill", "adaptive allocator: hill, lookahead, fair, optimal")
		accessesF = flag.Int64("accesses", 4<<20, "adaptive traffic per app (accesses)")
		shardsF   = flag.Int("shards", 1, "adaptive cache shard count")
	)
	flag.Parse()

	var spec specFile
	switch {
	case *specPath != "":
		raw, err := os.ReadFile(*specPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			fatal(fmt.Errorf("parsing %s: %w", *specPath, err))
		}
	case *appsFlag != "":
		spec = specFile{
			Apps:          strings.Split(*appsFlag, ","),
			CapacityMB:    *mb,
			Mode:          *mode,
			WorkInstr:     *work,
			Seed:          *seed,
			Adaptive:      *adaptiveF,
			EpochAccesses: *epochF,
			Allocator:     *allocF,
			Accesses:      *accessesF,
			Shards:        *shardsF,
		}
	default:
		flag.Usage()
		os.Exit(2)
	}

	apps := make([]workload.Spec, len(spec.Apps))
	for i, name := range spec.Apps {
		s, ok := workload.Lookup(strings.TrimSpace(name))
		if !ok {
			fatal(fmt.Errorf("unknown app %q", name))
		}
		apps[i] = s
	}

	if spec.Adaptive {
		runAdaptive(spec, apps)
		return
	}
	mixCfg := sim.MixConfig{
		Apps:          apps,
		CapacityLines: int64(curve.MBToLines(spec.CapacityMB)),
		Mode:          sim.Mode(spec.Mode),
		WorkInstr:     spec.WorkInstr,
		EpochCycles:   spec.EpochCycles,
		Seed:          spec.Seed,
	}

	// The baseline and the managed run are independent simulations: fan
	// them across the worker pool.
	baseCfg := mixCfg
	baseCfg.Mode = sim.ModeLRU
	results, err := sim.RunMixes([]sim.MixConfig{baseCfg, mixCfg}, *par)
	if err != nil {
		fatal(err)
	}
	base, res := results[0], results[1]

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tIPC\tMPKI\tspeedup-vs-LRU")
	for i := range apps {
		fmt.Fprintf(tw, "%s\t%.4f\t%.3f\t%.3f\n",
			res.Apps[i], res.IPC[i], res.MPKI[i], res.IPC[i]/base.IPC[i])
	}
	tw.Flush()
	fmt.Printf("\nweighted speedup: %.4f\nharmonic speedup: %.4f\nepochs: %d\n",
		stats.WeightedSpeedup(res.IPC, base.IPC),
		stats.HarmonicSpeedup(res.IPC, base.IPC),
		res.Epochs)
}

// runAdaptive drives the online control loop: no CPU model, no offline
// curves — the cache measures, convexifies, allocates, and reconfigures
// itself from its own traffic.
func runAdaptive(spec specFile, apps []workload.Spec) {
	res, err := sim.RunAdaptive(sim.AdaptiveConfig{
		Apps:           apps,
		CapacityLines:  int64(curve.MBToLines(spec.CapacityMB)),
		Shards:         spec.Shards,
		Allocator:      spec.Allocator,
		EpochAccesses:  spec.EpochAccesses,
		AccessesPerApp: spec.Accesses,
		Seed:           spec.Seed,
	})
	if err != nil {
		fatal(err)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "app\tMPKI\tmiss-ratio\talloc-lines\talloc-MB")
	for i := range res.Apps {
		fmt.Fprintf(tw, "%s\t%.3f\t%.4f\t%d\t%.3f\n",
			res.Apps[i], res.MPKI[i], res.MissRatio[i],
			res.Allocs[i], curve.LinesToMB(float64(res.Allocs[i])))
	}
	tw.Flush()
	fmt.Printf("\nepochs: %d (reconfigurations driven by the access stream)\n", res.Epochs)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "talus-sim: %v\n", err)
	os.Exit(1)
}
