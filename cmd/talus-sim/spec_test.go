package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSpec(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadSpec(t *testing.T) {
	path := writeSpec(t, `{
		"apps": ["mcf", "lbm"],
		"capacity_mb": 4,
		"mode": "talus-hill",
		"seed": 42,
		"trace_files": ["a.trc"]
	}`)
	spec, err := loadSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Apps) != 2 || spec.CapacityMB != 4 || spec.Mode != "talus-hill" || spec.Seed != 42 {
		t.Fatalf("spec = %+v", spec)
	}
	if len(spec.TraceFiles) != 1 || spec.TraceFiles[0] != "a.trc" {
		t.Fatalf("trace files = %v", spec.TraceFiles)
	}
}

func TestLoadSpecRejectsUnknownKeys(t *testing.T) {
	// "capacityMB" is a typo for "capacity_mb": it must be rejected, not
	// silently dropped.
	path := writeSpec(t, `{"apps": ["mcf"], "capacityMB": 4}`)
	if _, err := loadSpec(path); err == nil || !strings.Contains(err.Error(), "capacityMB") {
		t.Fatalf("typo'd key not rejected: err = %v", err)
	}
}

func TestLoadSpecRejectsTrailingData(t *testing.T) {
	path := writeSpec(t, `{"apps": ["mcf"]} {"apps": ["lbm"]}`)
	if _, err := loadSpec(path); err == nil {
		t.Fatal("trailing data not rejected")
	}
}

// TestApplyFlagsPrecedence is the regression test for the silent-discard
// bug: with -spec, explicitly-set command-line flags must override the
// corresponding spec fields, and untouched flags must not clobber spec
// values with flag defaults.
func TestApplyFlagsPrecedence(t *testing.T) {
	spec := specFile{
		Apps:          []string{"mcf", "lbm"},
		CapacityMB:    4,
		Mode:          "talus-hill",
		WorkInstr:     1 << 20,
		Seed:          42,
		Adaptive:      false,
		EpochAccesses: 100,
		Allocator:     "hill",
		Accesses:      1 << 20,
		Shards:        1,
		BatchLen:      2048,
		TailFrac:      0.5,
		TraceFiles:    []string{"a.trc"},
	}
	vals := flagValues{
		apps: "omnetpp", mode: "lru", mb: 8, work: 2 << 20, seed: 7,
		adaptive: true, epoch: 999, alloc: "fair", accesses: 2 << 20,
		shards: 4, batch: 4096, tail: 0.25, traces: "b.trc, c.trc",
	}

	// Nothing explicitly set: the spec survives untouched even though
	// every flag has a (different) default value.
	got := spec
	got.applyFlags(map[string]bool{}, vals)
	if got.CapacityMB != 4 || got.Mode != "talus-hill" || got.Seed != 42 || len(got.Apps) != 2 {
		t.Fatalf("unset flags clobbered spec: %+v", got)
	}

	// Everything explicitly set: flags win on every field.
	got = spec
	got.applyFlags(map[string]bool{
		"apps": true, "mode": true, "mb": true, "work": true, "seed": true,
		"adaptive": true, "epoch": true, "alloc": true, "accesses": true,
		"shards": true, "batch": true, "tail": true, "trace": true,
	}, vals)
	if got.CapacityMB != 8 || got.Mode != "lru" || got.Seed != 7 || got.WorkInstr != 2<<20 {
		t.Fatalf("flags did not override: %+v", got)
	}
	if len(got.Apps) != 1 || got.Apps[0] != "omnetpp" {
		t.Fatalf("apps not overridden: %v", got.Apps)
	}
	if !got.Adaptive || got.EpochAccesses != 999 || got.Allocator != "fair" ||
		got.Accesses != 2<<20 || got.Shards != 4 || got.BatchLen != 4096 || got.TailFrac != 0.25 {
		t.Fatalf("adaptive fields not overridden: %+v", got)
	}
	if len(got.TraceFiles) != 2 || got.TraceFiles[0] != "b.trc" || got.TraceFiles[1] != "c.trc" {
		t.Fatalf("trace files not overridden: %v", got.TraceFiles)
	}

	// Partial set: only the named flags change.
	got = spec
	got.applyFlags(map[string]bool{"mb": true, "seed": true}, vals)
	if got.CapacityMB != 8 || got.Seed != 7 {
		t.Fatalf("partial override missed: %+v", got)
	}
	if got.Mode != "talus-hill" || got.WorkInstr != 1<<20 || got.Adaptive {
		t.Fatalf("partial override leaked: %+v", got)
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitList = %v", got)
	}
	if splitList("") != nil {
		t.Fatalf("splitList(\"\") = %v", splitList(""))
	}
}

func TestLoadSpecRejectsTrailingGarbage(t *testing.T) {
	// Trailing bytes that are not even valid JSON must be rejected too
	// (a plain second-Decode nil-check would let them through).
	path := writeSpec(t, `{"apps": ["mcf"]} stray`)
	if _, err := loadSpec(path); err == nil {
		t.Fatal("trailing garbage not rejected")
	}
}
