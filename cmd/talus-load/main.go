// Command talus-load is the closed-loop load harness for talus-serve:
// a fixed worker pool drives cache GETs and PUTs against one node or a
// -route cluster, paced to a target RPS, with key popularity drawn
// from the same workload patterns the simulator uses. It measures what
// the serving tier actually delivers — hit ratio from the
// X-Talus-Cache header, p50/p99/p999 latency from integer HDR-style
// histograms, per-node traffic from X-Talus-Node — and writes the
// merged report as JSON (BENCH_cluster.json in CI).
//
// Usage:
//
//	talus-load -nodes host1:p1,host2:p2,... [-tenant bench]
//	           [-keys 10000] [-value-bytes 256] [-pattern zipf]
//	           [-zipf-s 0.9] [-rps 0] [-workers 8]
//	           [-duration 10s] [-max-requests 0]
//	           [-set-fraction 0.1] [-ttl 0] [-seed 42]
//	           [-out report.json]
//
// Closed-loop means each worker waits for its response before issuing
// the next request: when the server slows down, offered load drops
// instead of queueing — the harness measures the server, not its own
// backlog. -rps 0 runs flat-out (throughput-limited by the workers).
//
// Patterns: "zipf" (exponent -zipf-s), "rand" (uniform), "scan"
// (sequential sweep), "phased" (alternating zipf/scan stages — the
// cliff-maker the paper's figures are built on), "strided" (fixed-step
// sweep), "pointerchase" (pseudo-random dependent ring), "diurnal"
// (zipf whose hot set rotates through the population), and
// "cliffseeker" (scan/zipf blend whose miss-curve cliff sits inside the
// key population — the adversarial case Talus is built to flatten).
//
// Exit status is non-zero when the run errored or every request failed,
// so CI smoke lanes can gate on it.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"talus/internal/loadgen"
	"talus/internal/workload"
)

func main() {
	var (
		nodes       = flag.String("nodes", "", "comma-separated target nodes (host:port,...)")
		tenant      = flag.String("tenant", "bench", "cache tenant to drive")
		keys        = flag.Int64("keys", 10000, "distinct-key population")
		valueBytes  = flag.Int("value-bytes", 256, "PUT body size")
		pattern     = flag.String("pattern", "zipf", "key popularity: zipf, rand, scan, phased, strided, pointerchase, diurnal, cliffseeker")
		zipfS       = flag.Float64("zipf-s", 0.9, "zipf exponent for -pattern zipf/phased")
		rps         = flag.Float64("rps", 0, "aggregate target RPS (0 = flat-out)")
		workers     = flag.Int("workers", loadgen.DefaultWorkers, "closed-loop worker count")
		duration    = flag.Duration("duration", 10*time.Second, "run length (0 = until -max-requests)")
		maxRequests = flag.Int64("max-requests", 0, "request bound (0 = until -duration)")
		setFraction = flag.Float64("set-fraction", 0.1, "fraction of requests that are PUTs")
		ttl         = flag.Int("ttl", 0, "X-Talus-TTL seconds stamped on PUTs (0 = none)")
		seed        = flag.Uint64("seed", 42, "deterministic seed for key and read/write choice")
		out         = flag.String("out", "", "write the JSON report here (default stdout only)")
	)
	flag.Parse()
	if err := run(*nodes, *tenant, *keys, *valueBytes, *pattern, *zipfS, *rps,
		*workers, *duration, *maxRequests, *setFraction, *ttl, *seed, *out); err != nil {
		fmt.Fprintf(os.Stderr, "talus-load: %v\n", err)
		os.Exit(1)
	}
}

func run(nodes, tenant string, keys int64, valueBytes int, patternName string, zipfS, rps float64,
	workers int, duration time.Duration, maxRequests int64, setFraction float64, ttl int,
	seed uint64, out string) error {
	var targets []string
	for _, n := range strings.Split(nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			targets = append(targets, n)
		}
	}
	pattern, err := buildPattern(patternName, keys, zipfS)
	if err != nil {
		return err
	}
	runner, err := loadgen.New(loadgen.Config{
		Nodes:       targets,
		Tenant:      tenant,
		Keys:        keys,
		ValueBytes:  valueBytes,
		Pattern:     pattern,
		RPS:         rps,
		Workers:     workers,
		Duration:    duration,
		MaxRequests: maxRequests,
		SetFraction: setFraction,
		TTLSeconds:  ttl,
		Seed:        seed,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := runner.Run(ctx)
	if err != nil {
		return err
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(enc))
	if out != "" {
		if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	}
	if rep.Requests == 0 {
		return fmt.Errorf("no requests completed against %v", targets)
	}
	if rep.Errors == rep.Requests {
		return fmt.Errorf("all %d requests failed", rep.Requests)
	}
	return nil
}

// buildPattern maps the -pattern name onto an internal/workload
// popularity source over the key population.
func buildPattern(name string, keys int64, zipfS float64) (workload.Pattern, error) {
	switch name {
	case "zipf":
		return workload.NewZipf(keys, zipfS), nil
	case "rand":
		return &workload.Rand{Lines: keys}, nil
	case "scan":
		return &workload.Scan{Lines: keys}, nil
	case "phased":
		// The cliff shape: a popular zipf core alternating with full-
		// population scans, each stage a few times the population long.
		return workload.NewPhased(
			workload.Stage{Pattern: workload.NewZipf(keys, zipfS), Length: 4 * keys},
			workload.Stage{Pattern: &workload.Scan{Lines: keys}, Length: 2 * keys},
		)
	case "strided":
		// Stride 7 is usually coprime with the population, so the sweep
		// still covers every key, just out of order.
		return &workload.Strided{Lines: keys, Stride: 7}, nil
	case "pointerchase":
		return workload.NewPointerChase(keys, 0x10AD), nil
	case "diurnal":
		// The hot set shifts by 1/16 of the population every 8 laps.
		return workload.NewDiurnal(keys, zipfS, 8*keys, keys/16)
	case "cliffseeker":
		// Place the miss-curve knee inside the population: a cache that
		// holds 2/3 of the keys sits right on the cliff.
		return workload.NewCliffSeeker(keys * 2 / 3)
	}
	return nil, fmt.Errorf("unknown -pattern %q (valid: zipf, rand, scan, phased, strided, pointerchase, diurnal, cliffseeker)", name)
}
