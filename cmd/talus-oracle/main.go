// Command talus-oracle runs the monitor-vs-oracle validation suite and
// prints the per-generator error table: for every scenario in
// oracle.Scenarios, the same access stream is fed to a live LRUMonitor
// and to the exact stack-distance simulator, and the table reports how
// far the measured miss curve lands from ground truth (curve.Distance
// and the worst off-cliff miss-ratio gap). CI's validate lane runs this
// to publish ORACLE_errors.md; EXPERIMENTS.md's accuracy table is a
// pinned copy.
//
// Usage:
//
//	talus-oracle [-mb 0.25] [-accesses 1572864] [-seeds 42] [-o table.md]
//
// Multiple comma-separated seeds rerun the suite per seed so the table
// shows spread, not a single draw.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"talus/internal/curve"
	"talus/internal/oracle"
)

func main() {
	var (
		mb       = flag.Float64("mb", 0.25, "LLC capacity in MB")
		accesses = flag.Int64("accesses", 1536*1024, "accesses per scenario")
		seeds    = flag.String("seeds", "42", "comma-separated seeds (one suite run each)")
		out      = flag.String("o", "", "also write the table here")
	)
	flag.Parse()
	if err := run(*mb, *accesses, *seeds, *out); err != nil {
		fmt.Fprintf(os.Stderr, "talus-oracle: %v\n", err)
		os.Exit(1)
	}
}

func run(mb float64, accesses int64, seedList, out string) error {
	llc := int64(curve.MBToLines(mb))
	var seeds []uint64
	for _, s := range strings.Split(seedList, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(s), 0, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q", s)
		}
		seeds = append(seeds, v)
	}
	if len(seeds) == 0 {
		return fmt.Errorf("-seeds named no seeds")
	}

	var b strings.Builder
	fmt.Fprintf(&b, "# Monitor vs oracle\n\n")
	fmt.Fprintf(&b, "LLC %d lines (%.3g MB), %d accesses per scenario, %d seed(s).\n",
		llc, mb, accesses, len(seeds))
	fmt.Fprintf(&b, "Distance is the normalized L1 curve gap in [0,1]; max-ratio-err is the\n")
	fmt.Fprintf(&b, "worst absolute miss-ratio gap outside ±25%% cliff bands (see\n")
	fmt.Fprintf(&b, "oracle.Comparison). Rates are the monitor bank's sampling rates.\n\n")
	fmt.Fprintf(&b, "| scenario | seed | distance | max ratio err | rates (sub/fine/coarse) |\n")
	fmt.Fprintf(&b, "|---|---|---|---|---|\n")
	for _, seed := range seeds {
		table, err := oracle.ErrorTable(llc, accesses, seed)
		if err != nil {
			return err
		}
		for _, c := range table {
			fmt.Fprintf(&b, "| %s | %d | %.4f | %.4f | %.2g/%.2g/%.2g |\n",
				c.Name, seed, c.Distance, c.MaxRatioErr, c.Rates[0], c.Rates[1], c.Rates[2])
		}
	}
	fmt.Print(b.String())
	if out != "" {
		return os.WriteFile(out, []byte(b.String()), 0o644)
	}
	return nil
}
