// Command talus-serve is the HTTP serving front-end: a keyed cache
// service over the adaptive Talus runtime. Clients store and fetch
// bytes by (tenant, key); underneath, every request drives the
// monitor → hull → Talus → allocator control loop, so capacity flows
// between tenants as their measured miss curves evolve — the paper's
// self-tuning system (§VI) with a network in front of it.
//
// Usage:
//
//	talus-serve [-addr :8080] [-mb 8] [-shards n] [-partitions n]
//	            [-tenants a,b,...] [-scheme vantage] [-policy LRU]
//	            [-alloc hill] [-assoc 32] [-epoch n] [-epoch-interval 1s]
//	            [-max-value 1048576] [-record-dir dir] [-seed s]
//	            [-batch 64] [-batch-deadline 100µs]
//	            [-max-bytes n] [-max-tenants n]
//	            [-backend mem] [-backend-latency 0s]
//	            [-weights gold=4,bronze=1] [-control]
//	            [-self-tune] [-min-epoch n] [-max-epoch n]
//	            [-route host1:p1,host2:p2,...] [-self host:port]
//	            [-vnodes n] [-ring-seed s] [-node-id id]
//	            [-default-ttl 0s]
//
// With -route the node joins a cluster: every member shares the same
// -route list (and -vnodes/-ring-seed), each names itself with -self
// (defaulting to its listen address), and a consistent-hash ring
// assigns every (tenant, key) an owner. Requests arriving at a
// non-owner are forwarded one hop and relayed — any node can serve any
// key, so clients need no routing logic.
//
// With -max-bytes and/or -backend the store is a true bounded cache:
// values die when their simulated lines are evicted, writes pass the
// Talus-managed admission gate, and (with a backend) misses read
// through the backing tier. Without either, the store keeps every
// value — the original system-of-record mode.
//
// Routes:
//
//	GET/PUT/DELETE /v1/cache/{tenant}/{key}    keyed bytes (X-Talus-Cache: hit|miss)
//	GET  /v1/stats                             per-tenant counters + allocations + node identity
//	GET  /v1/curves                            live measured + hulled miss curves
//	GET  /v1/cluster                           ring membership, vnode count, per-node key share
//	GET  /v1/control                           control-loop state: churn, epoch budget, weights
//	PUT  /v1/control/tenants/{tenant}          adjust a tenant's weight (needs -control)
//	POST /v1/record                            start/stop trace capture (needs -record-dir)
//
// -weights assigns per-tenant objective weights (the allocator then
// minimizes Σ wᵢ·missesᵢ, so a weight-4 tenant's misses count 4×);
// -self-tune enables the churn-driven epoch controller, which widens
// the reconfiguration interval up to -max-epoch while measured curves
// are stable and snaps back toward -min-epoch on a phase change.
//
// A captured trace replays offline through talus-trace replay (or
// talus.RunAdaptiveTraceFile), closing the loop between served traffic
// and the experiment suite. SIGINT/SIGTERM shut down gracefully:
// in-flight requests drain, recording flushes, the epoch ticker stops.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"talus"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		mb         = flag.Float64("mb", 8, "LLC capacity in MB")
		shards     = flag.Int("shards", 8, "independently locked cache shards")
		partitions = flag.Int("partitions", 0, "logical partitions / max tenants (0 = 8, or the tenant count)")
		tenants    = flag.String("tenants", "", "comma-separated tenant names to pre-register (others register on first use)")
		static     = flag.Bool("static-tenants", false, "serve only the pre-registered -tenants")
		scheme     = flag.String("scheme", "vantage", "partitioning scheme: none, way, set, vantage, futility, ideal")
		policy     = flag.String("policy", "LRU", "replacement policy: LRU, SRRIP, BRRIP, DRRIP, TA-DRRIP, DIP, PDP, Random")
		allocName  = flag.String("alloc", "hill", "epoch allocator: hill, lookahead, fair, optimal")
		assoc      = flag.Int("assoc", 32, "set associativity")
		epoch      = flag.Int64("epoch", 0, "reconfiguration interval in accesses (0 = 2^20)")
		interval   = flag.Duration("epoch-interval", time.Second, "wall-clock reconfiguration interval (0 disables the ticker)")
		maxValue   = flag.Int64("max-value", 1<<20, "maximum value size in bytes")
		recordDir  = flag.String("record-dir", "", "directory POST /v1/record may write traces into (empty disables the endpoint)")
		seed       = flag.Uint64("seed", 42, "deterministic seed for hashes, samplers, monitors")
		batch      = flag.Int("batch", 0, "per-tenant request batcher: max accesses per flush (0 = 64, 1 disables batching)")
		batchWait  = flag.Duration("batch-deadline", 0, "max time a request waits on the batcher before accessing directly (0 = 100µs, negative = unbounded)")
		maxBytes   = flag.Int64("max-bytes", 0, "bound on total value bytes held (0 = unbounded); enables eviction-coupled storage and admission")
		maxTenants = flag.Int("max-tenants", 0, "cap on tenants ever registered (0 = partition count only)")
		backend    = flag.String("backend", "", "backing tier behind the cache: mem (empty = none)")
		backendLat = flag.Duration("backend-latency", 0, "modeled latency per backend operation")
		weights    = flag.String("weights", "", "per-tenant objective weights, e.g. gold=4,bronze=1")
		control    = flag.Bool("control", false, "enable the mutating control plane (PUT /v1/control/tenants/{tenant})")
		selfTune   = flag.Bool("self-tune", false, "enable the churn-driven epoch controller")
		minEpoch   = flag.Int64("min-epoch", 0, "self-tuner's epoch budget floor in accesses (0 = the -epoch budget)")
		maxEpoch   = flag.Int64("max-epoch", 0, "self-tuner's epoch budget ceiling in accesses (0 = 16x the floor)")
		route      = flag.String("route", "", "comma-separated cluster membership (host:port,...); enables thin-proxy mode")
		self       = flag.String("self", "", "this node's own name in -route (default: the -addr, host-completed)")
		vnodes     = flag.Int("vnodes", 0, "virtual nodes per cluster member (0 = the ring default)")
		ringSeed   = flag.Uint64("ring-seed", 0, "consistent-hash ring seed; every node must share it")
		nodeID     = flag.String("node-id", "", "serving-instance id for stats and X-Talus-Node (default: -self, else hostname-pid)")
		defaultTTL = flag.Duration("default-ttl", 0, "lifetime for values written without X-Talus-TTL (0 = keep until evicted)")
	)
	flag.Parse()
	cfg := serveFlags{
		addr: *addr, mb: *mb, shards: *shards, partitions: *partitions,
		tenants: *tenants, static: *static, scheme: *scheme, policy: *policy,
		allocName: *allocName, assoc: *assoc, epoch: *epoch, interval: *interval,
		maxValue: *maxValue, recordDir: *recordDir, seed: *seed,
		batch: *batch, batchWait: *batchWait,
		maxBytes: *maxBytes, maxTenants: *maxTenants,
		backend: *backend, backendLat: *backendLat,
		weights: *weights, control: *control,
		selfTune: *selfTune, minEpoch: *minEpoch, maxEpoch: *maxEpoch,
		route: *route, self: *self, vnodes: *vnodes, ringSeed: *ringSeed,
		nodeID: *nodeID, defaultTTL: *defaultTTL,
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "talus-serve: %v\n", err)
		os.Exit(1)
	}
}

// serveFlags carries the parsed command line into run.
type serveFlags struct {
	addr       string
	mb         float64
	shards     int
	partitions int
	tenants    string
	static     bool
	scheme     string
	policy     string
	allocName  string
	assoc      int
	epoch      int64
	interval   time.Duration
	maxValue   int64
	recordDir  string
	seed       uint64
	batch      int
	batchWait  time.Duration
	maxBytes   int64
	maxTenants int
	backend    string
	backendLat time.Duration
	weights    string
	control    bool
	selfTune   bool
	minEpoch   int64
	maxEpoch   int64
	route      string
	self       string
	vnodes     int
	ringSeed   uint64
	nodeID     string
	defaultTTL time.Duration
}

func run(cf serveFlags) error {
	allocator, err := talus.AllocatorByName(cf.allocName)
	if err != nil {
		return err
	}
	opts := []talus.Option{
		talus.WithCapacityMB(cf.mb),
		talus.WithShards(cf.shards),
		talus.WithScheme(cf.scheme),
		talus.WithPolicy(cf.policy),
		talus.WithAssoc(cf.assoc),
		talus.WithSeed(cf.seed),
		talus.WithAllocator(allocator),
		talus.WithEpochInterval(cf.interval),
		talus.WithMaxValueBytes(cf.maxValue),
		talus.WithBatchSize(cf.batch),
		talus.WithBatchDeadline(cf.batchWait),
	}
	if cf.maxBytes > 0 {
		opts = append(opts, talus.WithMaxBytes(cf.maxBytes))
	}
	if cf.maxTenants > 0 {
		opts = append(opts, talus.WithMaxTenants(cf.maxTenants))
	}
	switch cf.backend {
	case "":
	case "mem":
		opts = append(opts, talus.WithBackend(talus.NewMemBackend(cf.backendLat)))
	default:
		return fmt.Errorf("unknown -backend %q (valid: mem)", cf.backend)
	}
	if cf.partitions > 0 {
		opts = append(opts, talus.WithPartitions(cf.partitions))
	}
	if names := splitTenants(cf.tenants); len(names) > 0 {
		if cf.static {
			opts = append(opts, talus.WithStaticTenants(names...))
		} else {
			opts = append(opts, talus.WithTenants(names...))
		}
	} else if cf.static {
		return errors.New("-static-tenants needs -tenants")
	}
	if cf.epoch > 0 {
		opts = append(opts, talus.WithAdaptive(talus.AdaptiveConfig{
			EpochAccesses: cf.epoch,
			EpochInterval: cf.interval,
			Allocator:     allocator,
			Seed:          cf.seed,
		}))
	}
	if cf.selfTune || cf.minEpoch > 0 || cf.maxEpoch > 0 {
		opts = append(opts, talus.WithSelfTuning(cf.minEpoch, cf.maxEpoch))
	}
	tenantWeights, err := parseWeights(cf.weights)
	if err != nil {
		return err
	}
	for tenant, w := range tenantWeights {
		opts = append(opts, talus.WithTenantWeight(tenant, w))
	}

	// Cluster mode: -route lists the full membership; this node's own
	// name defaults to its listen address (host-completed, since peers
	// cannot dial ":8080").
	var cl *talus.Cluster
	selfName := cf.self
	if cf.route != "" {
		if selfName == "" {
			selfName = cf.addr
			if strings.HasPrefix(selfName, ":") {
				selfName = "127.0.0.1" + selfName
			}
		}
		cl, err = talus.NewCluster(talus.ClusterConfig{
			Self: selfName, Nodes: splitTenants(cf.route), VNodes: cf.vnodes, Seed: cf.ringSeed,
		})
		if err != nil {
			return err
		}
	}
	nodeID := cf.nodeID
	if nodeID == "" {
		nodeID = selfName // empty outside cluster mode: the store derives hostname-pid
	}
	opts = append(opts, talus.WithNodeID(nodeID), talus.WithDefaultTTL(cf.defaultTTL))

	st, err := talus.NewStore(opts...)
	if err != nil {
		return err
	}
	defer st.Close()

	srv := &http.Server{
		Addr:              cf.addr,
		Handler:           talus.NewServeHandler(st, talus.ServeConfig{MaxValueBytes: cf.maxValue, RecordDir: cf.recordDir, Control: cf.control, Cluster: cl}),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		mode := "unbounded"
		if st.Bounded() {
			mode = fmt.Sprintf("bounded (max-bytes %d, backend %q)", cf.maxBytes, cf.backend)
		}
		if cl != nil {
			mode += fmt.Sprintf(", cluster %s of %d nodes", selfName, len(cl.Ring().Nodes()))
		}
		log.Printf("talus-serve: listening on %s (%.1f MB, %d shards, %d partitions, %s/%s, alloc %s, %s)",
			cf.addr, cf.mb, cf.shards, st.Cache().NumLogical(), cf.scheme, cf.policy, cf.allocName, mode)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err // ListenAndServe failed before shutdown (e.g. bad addr)
	case <-ctx.Done():
	}
	log.Printf("talus-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := st.Close(); err != nil {
		return fmt.Errorf("closing store: %w", err)
	}
	for _, ts := range st.StatsAll() {
		log.Printf("talus-serve: tenant %s: %d gets, %d sets, hit ratio %.3f, %.2f MB allocated",
			ts.Tenant, ts.Gets, ts.Sets, ts.HitRatio, talus.LinesToMB(float64(ts.AllocLines)))
	}
	return nil
}

// parseWeights parses the -weights list ("gold=4,bronze=1") into a
// tenant → weight map.
func parseWeights(s string) (map[string]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		if pair = strings.TrimSpace(pair); pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("-weights entry %q: want tenant=weight", pair)
		}
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("-weights entry %q: bad weight", pair)
		}
		out[name] = w
	}
	return out, nil
}

// splitTenants parses the -tenants list, tolerating stray commas.
func splitTenants(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}
