// Command misscurve measures and prints the miss curve of a workload
// clone under a chosen policy and partitioning scheme, optionally with
// Talus enabled — the building block for custom sweeps.
//
// Usage:
//
//	misscurve -app libquantum -policy LRU -min 1 -max 40 -points 14
//	misscurve -app xalancbmk -talus -scheme vantage
//	misscurve -list                # show available workloads
//	misscurve -app mcf -trace t.bin -n 1000000   # dump a trace instead
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"talus/internal/curve"
	"talus/internal/sim"
	"talus/internal/trace"
	"talus/internal/workload"
)

func main() {
	var (
		app     = flag.String("app", "", "workload clone name")
		policy  = flag.String("policy", "LRU", "replacement policy")
		scheme  = flag.String("scheme", "", "partitioning scheme (default: none, or vantage with -talus)")
		talus   = flag.Bool("talus", false, "enable Talus shadow partitioning")
		minMB   = flag.Float64("min", 0.25, "smallest LLC size (MB)")
		maxMB   = flag.Float64("max", 16, "largest LLC size (MB)")
		points  = flag.Int("points", 10, "number of sweep points")
		mon     = flag.Int("monitor-points", 0, "multi-monitor points for non-LRU policies with -talus")
		seed    = flag.Uint64("seed", 1, "random seed")
		list    = flag.Bool("list", false, "list workloads and exit")
		traceTo = flag.String("trace", "", "dump a trace to this file instead of sweeping")
		traceN  = flag.Int("n", 1<<20, "trace length with -trace")
	)
	flag.Parse()

	if *list {
		for _, name := range workload.Names() {
			spec, _ := workload.Lookup(name)
			fmt.Printf("%-12s APKI=%-5.2g CPIbase=%-4.2g MLP=%.2g\n",
				name, spec.APKI, spec.CPIBase, spec.MLP)
		}
		return
	}
	spec, ok := workload.Lookup(*app)
	if !ok {
		fmt.Fprintf(os.Stderr, "misscurve: unknown app %q (try -list)\n", *app)
		os.Exit(2)
	}

	if *traceTo != "" {
		gen := workload.NewApp(spec, *seed)
		if err := trace.WriteFile(*traceTo, trace.Capture(gen.Next, *traceN)); err != nil {
			fmt.Fprintf(os.Stderr, "misscurve: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d accesses to %s\n", *traceN, *traceTo)
		return
	}

	sizes := make([]int64, *points)
	for i := range sizes {
		mb := *minMB + (*maxMB-*minMB)*float64(i)/float64(*points-1)
		sizes[i] = int64(curve.MBToLines(mb))
	}
	cfg := sim.SweepConfig{
		App:           spec,
		SizesLines:    sizes,
		Policy:        *policy,
		Scheme:        *scheme,
		Talus:         *talus,
		MonitorPoints: *mon,
		Seed:          *seed,
	}
	c, err := sim.RunSweep(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "misscurve: %v\n", err)
		os.Exit(1)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "size(MB)\tMPKI\tIPC")
	for _, p := range c.Points() {
		fmt.Fprintf(tw, "%.3f\t%.4f\t%.4f\n",
			curve.LinesToMB(p.Size), p.MPKI, sim.IPC(spec, p.MPKI))
	}
	tw.Flush()
}
