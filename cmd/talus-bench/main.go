// Command talus-bench runs the serving and adaptive hot-path benchmarks
// and emits a machine-readable JSON baseline, so the serving layer's
// performance trajectory is tracked across PRs the same way the figure
// experiments track fidelity.
//
// Usage:
//
//	talus-bench [-bench regex] [-benchtime 2s] [-count 1] [-pkg .] [-out BENCH_serving.json] [-append]
//
// It shells out to `go test -run ^$ -bench <regex> -benchmem` (the repo
// must be the working directory), parses the standard benchmark output
// lines, and writes
//
//	{
//	  "go": "go1.24",
//	  "gomaxprocs": 8,
//	  "benchmarks": [
//	    {"name": "StoreGetParallel", "procs": 8, "iterations": 12345,
//	     "ns_per_op": 208.7, "b_per_op": 0, "allocs_per_op": 0},
//	    ...
//	  ]
//	}
//
// The default regex covers the keyed-store Get/Set paths, the batched
// adaptive datapath, and its non-monitored floor, which is exactly the
// set DESIGN.md's hot-path section quotes. `make bench-serving` runs it
// with the defaults.
//
// With -append, rows from an existing -out file are kept and merged:
// a row is keyed by (name, procs), so a GOMAXPROCS=4 pass adds -4 rows
// next to the single-proc baseline instead of erasing it. `make
// bench-serving-mp` uses this to grow BENCH_serving.json with the
// contended (procs > 1) shape of the same hot paths.
//
// With -compare, the tool inverts its role: instead of writing a
// baseline it runs the benchmarks fresh, diffs them against the
// committed -out file keyed by (name, procs), prints a delta table, and
// exits non-zero when any benchmark regressed by more than -threshold
// (fractional ns/op growth; 0.10 = 10%). Rows present on only one side
// are reported but never fail the run — machines differ, and new
// benchmarks need a first landing. `make bench-compare` runs it; CI has
// a non-blocking lane doing the same so the delta table lands in every
// run's log without gating merges on shared-runner noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// DefaultBenchRegex selects the serving/adaptive hot-path benchmarks.
const DefaultBenchRegex = "StoreGet|StoreSet|AdaptiveAccessBatch|ShadowedShardedBatch|UMONObserve"

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the emitted JSON document.
type Report struct {
	Go         string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  123  45.6 ns/op  7 B/op  8 allocs/op`
// (the -procs suffix and the memory columns are optional).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		bench     = flag.String("bench", DefaultBenchRegex, "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "2s", "go test -benchtime value (e.g. 2s, 100x)")
		count     = flag.Int("count", 1, "go test -count value")
		pkg       = flag.String("pkg", ".", "package pattern to bench")
		out       = flag.String("out", "BENCH_serving.json", "output JSON path (- for stdout); with -compare, the baseline to diff against")
		appendOut = flag.Bool("append", false, "merge into an existing -out file: rows keyed by (name, procs), new rows win")
		compare   = flag.Bool("compare", false, "run fresh and diff against -out instead of writing it; non-zero exit past -threshold")
		threshold = flag.Float64("threshold", 0.10, "fractional ns/op regression -compare tolerates per benchmark (0.10 = 10%)")
	)
	flag.Parse()
	if *compare {
		if err := runCompare(*bench, *benchtime, *count, *pkg, *out, *threshold); err != nil {
			fmt.Fprintf(os.Stderr, "talus-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*bench, *benchtime, *count, *pkg, *out, *appendOut); err != nil {
		fmt.Fprintf(os.Stderr, "talus-bench: %v\n", err)
		os.Exit(1)
	}
}

// runBench shells out to go test -bench and parses the results.
func runBench(bench, benchtime string, count int, pkg string) ([]Result, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count), pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w", err)
	}
	return Parse(string(raw))
}

// Delta is one benchmark's baseline-vs-fresh comparison. Frac is the
// fractional ns/op change (+0.12 = 12% slower than baseline); it is NaN
// for rows present on only one side.
type Delta struct {
	Name            string
	Procs           int
	BaseNs, FreshNs float64
	Frac            float64
}

// Diff pairs baseline and fresh rows by (name, procs), in fresh-run
// order followed by baseline-only rows.
func Diff(baseline, fresh []Result) []Delta {
	type key struct {
		name  string
		procs int
	}
	base := make(map[key]Result, len(baseline))
	for _, r := range baseline {
		base[key{r.Name, r.Procs}] = r
	}
	var out []Delta
	seen := make(map[key]bool, len(fresh))
	for _, r := range fresh {
		k := key{r.Name, r.Procs}
		seen[k] = true
		d := Delta{Name: r.Name, Procs: r.Procs, FreshNs: r.NsPerOp, Frac: math.NaN()}
		if b, ok := base[k]; ok && b.NsPerOp > 0 {
			d.BaseNs = b.NsPerOp
			d.Frac = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		out = append(out, d)
	}
	for _, r := range baseline {
		if !seen[key{r.Name, r.Procs}] {
			out = append(out, Delta{Name: r.Name, Procs: r.Procs, BaseNs: r.NsPerOp, Frac: math.NaN()})
		}
	}
	return out
}

// FormatDeltas renders the comparison table talus-bench -compare prints.
func FormatDeltas(deltas []Delta, threshold float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %5s %12s %12s %9s\n", "benchmark", "procs", "baseline", "fresh", "delta")
	for _, d := range deltas {
		switch {
		case d.BaseNs == 0:
			fmt.Fprintf(&b, "%-28s %5d %12s %9.1f ns %9s\n", d.Name, d.Procs, "—", d.FreshNs, "new")
		case d.FreshNs == 0:
			fmt.Fprintf(&b, "%-28s %5d %9.1f ns %12s %9s\n", d.Name, d.Procs, d.BaseNs, "—", "gone")
		default:
			mark := ""
			if d.Frac > threshold {
				mark = "  REGRESSED"
			}
			fmt.Fprintf(&b, "%-28s %5d %9.1f ns %9.1f ns %+8.1f%%%s\n",
				d.Name, d.Procs, d.BaseNs, d.FreshNs, 100*d.Frac, mark)
		}
	}
	return b.String()
}

// Regressions returns the deltas whose fractional slowdown exceeds
// threshold (one-sided rows never regress).
func Regressions(deltas []Delta, threshold float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if !math.IsNaN(d.Frac) && d.Frac > threshold {
			out = append(out, d)
		}
	}
	return out
}

// runCompare implements -compare: fresh run, diff against the committed
// baseline, delta table on stdout, error when any row regressed past
// threshold.
func runCompare(bench, benchtime string, count int, pkg, baselinePath string, threshold float64) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("-compare: reading baseline: %w", err)
	}
	var base Report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("-compare: baseline %s is not a talus-bench report: %w", baselinePath, err)
	}
	fresh, err := runBench(bench, benchtime, count, pkg)
	if err != nil {
		return err
	}
	deltas := Diff(base.Benchmarks, fresh)
	fmt.Print(FormatDeltas(deltas, threshold))
	if reg := Regressions(deltas, threshold); len(reg) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%% vs %s", len(reg), 100*threshold, baselinePath)
	}
	return nil
}

func run(bench, benchtime string, count int, pkg, out string, appendOut bool) error {
	results, err := runBench(bench, benchtime, count, pkg)
	if err != nil {
		return err
	}
	rep := Report{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      bench,
		Benchtime:  benchtime,
		Benchmarks: results,
	}
	if appendOut && out != "-" {
		if prev, err := os.ReadFile(out); err == nil {
			var old Report
			if err := json.Unmarshal(prev, &old); err != nil {
				return fmt.Errorf("-append: existing %s is not a talus-bench report: %w", out, err)
			}
			rep.Benchmarks = Merge(old.Benchmarks, results)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("talus-bench: %d benchmarks → %s\n", len(rep.Benchmarks), out)
	return nil
}

// Merge combines an existing report's rows with a fresh run's. Rows are
// keyed by (name, procs): a re-measured row replaces the old one in
// place, a new (name, procs) shape — e.g. the first GOMAXPROCS=4 pass —
// appends after the rows that were already there.
func Merge(old, fresh []Result) []Result {
	type key struct {
		name  string
		procs int
	}
	merged := make([]Result, len(old))
	copy(merged, old)
	at := make(map[key]int, len(old))
	for i, r := range merged {
		at[key{r.Name, r.Procs}] = i
	}
	for _, r := range fresh {
		if i, ok := at[key{r.Name, r.Procs}]; ok {
			merged[i] = r
		} else {
			at[key{r.Name, r.Procs}] = len(merged)
			merged = append(merged, r)
		}
	}
	return merged
}

// Parse extracts benchmark results from `go test -bench` output. With
// -count > 1, repeated measurements of one benchmark are averaged.
func Parse(output string) ([]Result, error) {
	byName := make(map[string]*Result)
	reps := make(map[string]int64)
	var order []string
	for _, line := range strings.Split(output, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		procs := 1
		if m[2] != "" {
			procs, _ = strconv.Atoi(m[2])
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		r, ok := byName[name]
		if !ok {
			r = &Result{Name: name, Procs: procs}
			byName[name] = r
			order = append(order, name)
		}
		reps[name]++
		r.Iterations += iters
		r.NsPerOp += ns
		if m[5] != "" {
			b, _ := strconv.ParseFloat(m[5], 64)
			r.BPerOp += b
		}
		if m[6] != "" {
			a, _ := strconv.ParseInt(m[6], 10, 64)
			r.AllocsPerOp += a
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in go test output")
	}
	results := make([]Result, 0, len(order))
	for _, name := range order {
		r := byName[name]
		n := reps[name]
		r.Iterations /= n
		r.NsPerOp /= float64(n)
		r.BPerOp /= float64(n)
		r.AllocsPerOp /= n
		results = append(results, *r)
	}
	return results, nil
}
