// Command talus-bench runs the serving and adaptive hot-path benchmarks
// and emits a machine-readable JSON baseline, so the serving layer's
// performance trajectory is tracked across PRs the same way the figure
// experiments track fidelity.
//
// Usage:
//
//	talus-bench [-bench regex] [-benchtime 2s] [-count 1] [-pkg .] [-out BENCH_serving.json] [-append]
//
// It shells out to `go test -run ^$ -bench <regex> -benchmem` (the repo
// must be the working directory), parses the standard benchmark output
// lines, and writes
//
//	{
//	  "go": "go1.24",
//	  "gomaxprocs": 8,
//	  "benchmarks": [
//	    {"name": "StoreGetParallel", "procs": 8, "iterations": 12345,
//	     "ns_per_op": 208.7, "b_per_op": 0, "allocs_per_op": 0},
//	    ...
//	  ]
//	}
//
// The default regex covers the keyed-store Get/Set paths, the batched
// adaptive datapath, and its non-monitored floor, which is exactly the
// set DESIGN.md's hot-path section quotes. `make bench-serving` runs it
// with the defaults.
//
// With -append, rows from an existing -out file are kept and merged:
// a row is keyed by (name, procs), so a GOMAXPROCS=4 pass adds -4 rows
// next to the single-proc baseline instead of erasing it. `make
// bench-serving-mp` uses this to grow BENCH_serving.json with the
// contended (procs > 1) shape of the same hot paths.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
)

// DefaultBenchRegex selects the serving/adaptive hot-path benchmarks.
const DefaultBenchRegex = "StoreGet|StoreSet|AdaptiveAccessBatch|ShadowedShardedBatch|UMONObserve"

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Procs       int     `json:"procs"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Report is the emitted JSON document.
type Report struct {
	Go         string   `json:"go"`
	GOMAXPROCS int      `json:"gomaxprocs"`
	Bench      string   `json:"bench"`
	Benchtime  string   `json:"benchtime"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8  123  45.6 ns/op  7 B/op  8 allocs/op`
// (the -procs suffix and the memory columns are optional).
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	var (
		bench     = flag.String("bench", DefaultBenchRegex, "benchmark regex passed to go test -bench")
		benchtime = flag.String("benchtime", "2s", "go test -benchtime value (e.g. 2s, 100x)")
		count     = flag.Int("count", 1, "go test -count value")
		pkg       = flag.String("pkg", ".", "package pattern to bench")
		out       = flag.String("out", "BENCH_serving.json", "output JSON path (- for stdout)")
		appendOut = flag.Bool("append", false, "merge into an existing -out file: rows keyed by (name, procs), new rows win")
	)
	flag.Parse()
	if err := run(*bench, *benchtime, *count, *pkg, *out, *appendOut); err != nil {
		fmt.Fprintf(os.Stderr, "talus-bench: %v\n", err)
		os.Exit(1)
	}
}

func run(bench, benchtime string, count int, pkg, out string, appendOut bool) error {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", bench, "-benchmem", "-benchtime", benchtime,
		"-count", strconv.Itoa(count), pkg)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go test -bench: %w", err)
	}
	results, err := Parse(string(raw))
	if err != nil {
		return err
	}
	rep := Report{
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Bench:      bench,
		Benchtime:  benchtime,
		Benchmarks: results,
	}
	if appendOut && out != "-" {
		if prev, err := os.ReadFile(out); err == nil {
			var old Report
			if err := json.Unmarshal(prev, &old); err != nil {
				return fmt.Errorf("-append: existing %s is not a talus-bench report: %w", out, err)
			}
			rep.Benchmarks = Merge(old.Benchmarks, results)
		} else if !os.IsNotExist(err) {
			return err
		}
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	if err := os.WriteFile(out, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("talus-bench: %d benchmarks → %s\n", len(rep.Benchmarks), out)
	return nil
}

// Merge combines an existing report's rows with a fresh run's. Rows are
// keyed by (name, procs): a re-measured row replaces the old one in
// place, a new (name, procs) shape — e.g. the first GOMAXPROCS=4 pass —
// appends after the rows that were already there.
func Merge(old, fresh []Result) []Result {
	type key struct {
		name  string
		procs int
	}
	merged := make([]Result, len(old))
	copy(merged, old)
	at := make(map[key]int, len(old))
	for i, r := range merged {
		at[key{r.Name, r.Procs}] = i
	}
	for _, r := range fresh {
		if i, ok := at[key{r.Name, r.Procs}]; ok {
			merged[i] = r
		} else {
			at[key{r.Name, r.Procs}] = len(merged)
			merged = append(merged, r)
		}
	}
	return merged
}

// Parse extracts benchmark results from `go test -bench` output. With
// -count > 1, repeated measurements of one benchmark are averaged.
func Parse(output string) ([]Result, error) {
	byName := make(map[string]*Result)
	reps := make(map[string]int64)
	var order []string
	for _, line := range strings.Split(output, "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		procs := 1
		if m[2] != "" {
			procs, _ = strconv.Atoi(m[2])
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		ns, _ := strconv.ParseFloat(m[4], 64)
		r, ok := byName[name]
		if !ok {
			r = &Result{Name: name, Procs: procs}
			byName[name] = r
			order = append(order, name)
		}
		reps[name]++
		r.Iterations += iters
		r.NsPerOp += ns
		if m[5] != "" {
			b, _ := strconv.ParseFloat(m[5], 64)
			r.BPerOp += b
		}
		if m[6] != "" {
			a, _ := strconv.ParseInt(m[6], 10, 64)
			r.AllocsPerOp += a
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("no benchmark lines found in go test output")
	}
	results := make([]Result, 0, len(order))
	for _, name := range order {
		r := byName[name]
		n := reps[name]
		r.Iterations /= n
		r.NsPerOp /= float64(n)
		r.BPerOp /= float64(n)
		r.AllocsPerOp /= n
		results = append(results, *r)
	}
	return results, nil
}
