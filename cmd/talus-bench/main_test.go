package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: talus
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStoreGet                	12409720	       245.8 ns/op	       0 B/op	       0 allocs/op
BenchmarkStoreGetParallel-8      	10690707	       273.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkStoreGetParallel-8      	10690707	       272.5 ns/op	       0 B/op	       0 allocs/op
BenchmarkH3Hash                  	903810811	         2.655 ns/op
PASS
ok  	talus	19.803s
`

func TestParse(t *testing.T) {
	rs, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	if rs[0].Name != "StoreGet" || rs[0].Procs != 1 || rs[0].NsPerOp != 245.8 || rs[0].Iterations != 12409720 {
		t.Fatalf("first result = %+v", rs[0])
	}
	// Two -count repetitions of the same benchmark average.
	if rs[1].Name != "StoreGetParallel" || rs[1].Procs != 8 || rs[1].NsPerOp != 273.0 {
		t.Fatalf("averaged result = %+v", rs[1])
	}
	// ns/op-only lines (no -benchmem columns) still parse.
	if rs[2].Name != "H3Hash" || rs[2].NsPerOp != 2.655 || rs[2].BPerOp != 0 {
		t.Fatalf("no-mem result = %+v", rs[2])
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse("PASS\nok talus 1s\n"); err == nil {
		t.Fatal("want error on benchmark-free output")
	}
}

// TestMerge pins the -append contract: (name, procs) keys rows, a
// re-measured row replaces its predecessor in place, a new shape —
// the first multi-proc pass — appends after the existing rows.
func TestMerge(t *testing.T) {
	old := []Result{
		{Name: "StoreGet", Procs: 1, NsPerOp: 200},
		{Name: "StoreSet", Procs: 1, NsPerOp: 300},
	}
	fresh := []Result{
		{Name: "StoreGet", Procs: 4, NsPerOp: 90},
		{Name: "StoreSet", Procs: 1, NsPerOp: 280},
	}
	got := Merge(old, fresh)
	if len(got) != 3 {
		t.Fatalf("merged %d rows, want 3: %+v", len(got), got)
	}
	if got[0].Name != "StoreGet" || got[0].Procs != 1 || got[0].NsPerOp != 200 {
		t.Fatalf("untouched row changed: %+v", got[0])
	}
	if got[1].Name != "StoreSet" || got[1].NsPerOp != 280 {
		t.Fatalf("re-measured row not replaced in place: %+v", got[1])
	}
	if got[2].Name != "StoreGet" || got[2].Procs != 4 {
		t.Fatalf("new (name, procs) shape not appended: %+v", got[2])
	}
	if n := len(Merge(nil, fresh)); n != 2 {
		t.Fatalf("merge into empty report kept %d rows, want 2", n)
	}
}

func TestDiffAndRegressions(t *testing.T) {
	base := []Result{
		{Name: "StoreGet", Procs: 1, NsPerOp: 200},
		{Name: "StoreGetParallel", Procs: 4, NsPerOp: 100},
		{Name: "Retired", Procs: 1, NsPerOp: 50},
	}
	fresh := []Result{
		{Name: "StoreGet", Procs: 1, NsPerOp: 190},         // improved
		{Name: "StoreGetParallel", Procs: 4, NsPerOp: 130}, // +30%: regressed
		{Name: "BrandNew", Procs: 1, NsPerOp: 10},          // baseline-less
	}
	deltas := Diff(base, fresh)
	if len(deltas) != 4 {
		t.Fatalf("got %d deltas, want 4 (2 paired + new + gone)", len(deltas))
	}
	if d := deltas[0]; d.Name != "StoreGet" || d.Frac >= 0 {
		t.Fatalf("StoreGet delta = %+v, want improvement", d)
	}
	reg := Regressions(deltas, 0.10)
	if len(reg) != 1 || reg[0].Name != "StoreGetParallel" {
		t.Fatalf("regressions = %+v, want exactly StoreGetParallel", reg)
	}
	if reg := Regressions(deltas, 0.50); len(reg) != 0 {
		t.Fatalf("threshold 50%% flagged %+v", reg)
	}
	table := FormatDeltas(deltas, 0.10)
	for _, want := range []string{"REGRESSED", "new", "gone", "StoreGet"} {
		if !strings.Contains(table, want) {
			t.Fatalf("delta table missing %q:\n%s", want, table)
		}
	}
}
