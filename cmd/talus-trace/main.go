// Command talus-trace records, replays, and inspects binary address
// traces (internal/trace). A recorded mix replayed at the same seed and
// batch length is byte-identical to the live generator stream, so
// replay results match live runs exactly — traces are the repeatable
// currency of the experiment suite.
//
// Usage:
//
//	talus-trace record -apps mcf,lbm -o mix.trc -n 4194304
//	talus-trace replay -trace mix.trc -mb 8 -alloc hill
//	talus-trace stat -trace mix.trc
//
// record captures the named workloads' interleaved stream (with
// per-app core-model metadata embedded) to a gzip-compressed trace.
// replay drives the online adaptive runtime (monitor → hull → Talus →
// allocator) from the trace and reports per-partition steady-state miss
// rates and allocations. stat prints the trace's header and
// per-partition shape without simulating anything. import converts
// external traces — raw ChampSim instruction traces (decompressed) or
// plain text `addr[,partition]` lines — into the native format, ready
// for replay or any trace:<path> workload.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"text/tabwriter"

	"talus/internal/curve"
	"talus/internal/sim"
	"talus/internal/trace"
	"talus/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "record":
		err = cmdRecord(os.Args[2:])
	case "replay":
		err = cmdReplay(os.Args[2:])
	case "stat":
		err = cmdStat(os.Args[2:])
	case "import":
		err = cmdImport(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "talus-trace: unknown subcommand %q\n\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "talus-trace: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  talus-trace record -apps <a,b,...> -o <file> [-n accesses] [-batch len] [-seed s] [-gzip=bool]
  talus-trace replay -trace <file> [-mb size] [-alloc name] [-epoch n] [-shards n] [-batch len] [-tail frac] [-seed s]
  talus-trace stat   -trace <file>
  talus-trace import -format champsim|text -i <file> -o <file> [-gzip=bool]
`)
}

func cmdRecord(args []string) error {
	fs := flag.NewFlagSet("record", flag.ExitOnError)
	var (
		appsFlag = fs.String("apps", "", "comma-separated workload names (registry clones or trace:<path>)")
		out      = fs.String("o", "", "output trace file")
		n        = fs.Int64("n", 4<<20, "accesses per app")
		batch    = fs.Int("batch", 2048, "accesses per interleaving batch")
		seed     = fs.Uint64("seed", 42, "random seed (replays match live runs at the same seed)")
		gz       = fs.Bool("gzip", true, "gzip-compress the trace body")
	)
	fs.Parse(args)
	if *appsFlag == "" || *out == "" {
		return fmt.Errorf("record needs -apps and -o")
	}
	var specs []workload.Spec
	for _, name := range strings.Split(*appsFlag, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue // tolerate stray commas
		}
		spec, err := workload.Resolve(name)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
	}
	if len(specs) == 0 {
		return fmt.Errorf("record: -apps named no workloads")
	}
	count, err := sim.RecordSpecs(*out, specs, *n, *batch, *seed, *gz)
	if err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses (%d apps × %d) to %s: %d bytes, %.2f bytes/access\n",
		count, len(specs), *n, *out, info.Size(), float64(info.Size())/float64(count))
	return nil
}

func cmdReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		path   = fs.String("trace", "", "trace file to replay")
		mb     = fs.Float64("mb", 8, "LLC capacity in MB")
		alloc  = fs.String("alloc", "hill", "allocator: hill, lookahead, fair, optimal")
		epoch  = fs.Int64("epoch", 0, "reconfiguration interval in accesses (0 = default)")
		shards = fs.Int("shards", 1, "cache shard count")
		batch  = fs.Int("batch", 2048, "accesses per batch (match the recording for exact replay)")
		tail   = fs.Float64("tail", 0.5, "trailing fraction measured for steady-state rates")
		seed   = fs.Uint64("seed", 42, "cache seed (match the recording for exact replay)")
	)
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("replay needs -trace")
	}
	res, err := sim.RunAdaptiveTraceFile(sim.AdaptiveConfig{
		CapacityLines: int64(curve.MBToLines(*mb)),
		Shards:        *shards,
		Allocator:     *alloc,
		EpochAccesses: *epoch,
		BatchLen:      *batch,
		TailFrac:      *tail,
		Seed:          *seed,
	}, *path)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "partition\tapp\tMPKI\tmiss-ratio\talloc-lines\talloc-MB")
	for i := range res.Apps {
		fmt.Fprintf(tw, "%d\t%s\t%.3f\t%.4f\t%d\t%.3f\n",
			i, res.Apps[i], res.MPKI[i], res.MissRatio[i],
			res.Allocs[i], curve.LinesToMB(float64(res.Allocs[i])))
	}
	tw.Flush()
	fmt.Printf("\nepochs: %d (reconfigurations driven by the replayed stream)\n", res.Epochs)
	return nil
}

func cmdImport(args []string) error {
	fs := flag.NewFlagSet("import", flag.ExitOnError)
	var (
		format = fs.String("format", "", "input format: champsim (raw 64-byte instruction records) or text (addr[,partition] lines)")
		in     = fs.String("i", "", "input file (- for stdin)")
		out    = fs.String("o", "", "output trace file")
		gz     = fs.Bool("gzip", true, "gzip-compress the trace body")
	)
	fs.Parse(args)
	if *format == "" || *in == "" || *out == "" {
		return fmt.Errorf("import needs -format, -i, and -o")
	}
	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
	}
	dst, err := os.Create(*out)
	if err != nil {
		return err
	}
	var opts []trace.WriterOption
	if *gz {
		opts = append(opts, trace.WithGzip())
	}
	var records int64
	var parts int
	switch *format {
	case "champsim":
		parts = 1
		w, err := trace.NewWriter(dst, 1, opts...)
		if err == nil {
			records, err = trace.ImportChampSim(src, w)
		}
		if err == nil {
			err = w.Close()
		}
		if err != nil {
			dst.Close()
			return err
		}
	case "text":
		recs, np, err := trace.ParseText(src)
		if err == nil {
			parts = np
			records = int64(len(recs))
			err = trace.WriteRecords(dst, np, recs, opts...)
		}
		if err != nil {
			dst.Close()
			return err
		}
	default:
		dst.Close()
		return fmt.Errorf("import: unknown format %q (want champsim or text)", *format)
	}
	if err := dst.Close(); err != nil {
		return err
	}
	info, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("imported %d records (%d partitions) from %s %s to %s: %d bytes\n",
		records, parts, *format, *in, *out, info.Size())
	return nil
}

func cmdStat(args []string) error {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	path := fs.String("trace", "", "trace file to inspect")
	fs.Parse(args)
	if *path == "" && fs.NArg() == 1 {
		*path = fs.Arg(0)
	}
	if *path == "" {
		return fmt.Errorf("stat needs -trace")
	}
	// Stream the records rather than loading them: memory scales with
	// the trace's footprint (distinct lines), not its length, so stat
	// works on traces larger than RAM.
	r, err := trace.OpenFile(*path)
	if err != nil {
		return err
	}
	defer r.Close()
	h := r.Header()
	counts := make([]int64, h.NumPartitions)
	distinct := make([]map[uint64]struct{}, h.NumPartitions)
	for p := range distinct {
		distinct[p] = make(map[uint64]struct{})
	}
	var records int64
	for {
		rec, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		counts[rec.P]++
		distinct[rec.P][rec.Addr] = struct{}{}
		records++
	}
	info, err := os.Stat(*path)
	if err != nil {
		return err
	}
	var flags []string
	if h.Flags&trace.FlagGzip != 0 {
		flags = append(flags, "gzip")
	}
	if h.Flags&trace.FlagMeta != 0 {
		flags = append(flags, "meta")
	}
	if len(flags) == 0 {
		flags = append(flags, "none")
	}
	fmt.Printf("%s: version %d, flags %s, %d partitions, %d records, %d bytes (%.2f bytes/record)\n",
		*path, h.Version, strings.Join(flags, "+"), h.NumPartitions,
		records, info.Size(), float64(info.Size())/float64(max(records, 1)))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "partition\tapp\taccesses\tdistinct-lines\tfootprint-MB\tAPKI\tCPIbase\tMLP")
	for p := 0; p < h.NumPartitions; p++ {
		name, apki, cpi, mlp := "-", "-", "-", "-"
		if h.Apps != nil && p < len(h.Apps) {
			m := h.Apps[p]
			name = m.Name
			apki = fmt.Sprintf("%.3g", m.APKI)
			cpi = fmt.Sprintf("%.3g", m.CPIBase)
			mlp = fmt.Sprintf("%.3g", m.MLP)
		}
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%.3f\t%s\t%s\t%s\n",
			p, name, counts[p], len(distinct[p]), curve.LinesToMB(float64(len(distinct[p]))), apki, cpi, mlp)
	}
	return tw.Flush()
}
