package talus

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"
)

// feedDeterministic drives an identical two-phase stream into ac:
// enough traffic for several epochs at the small test scales.
func feedDeterministic(ac *AdaptiveCache, rounds int) {
	parts := ac.NumLogical()
	batch := make([]uint64, 256)
	for round := 0; round < rounds; round++ {
		for p := 0; p < parts; p++ {
			for i := range batch {
				// Partition p scans a footprint that grows with p, offset
				// into its own address space like the feeders do.
				batch[i] = uint64(round*256+i)%uint64(2048*(p+1)) | uint64(p+1)<<48
			}
			ac.AccessBatch(batch, p, nil)
		}
	}
}

// cacheState captures everything observable about an adaptive cache
// after a deterministic feed.
type cacheState struct {
	Logical  int
	Epochs   int
	Allocs   []int64
	Capacity int64
	Budget   int64
	Shadow   []int64
	Configs  []Config
}

func snapshot(t *testing.T, ac *AdaptiveCache) cacheState {
	t.Helper()
	if err := ac.Err(); err != nil {
		t.Fatal(err)
	}
	s := cacheState{
		Logical:  ac.NumLogical(),
		Epochs:   ac.Epochs(),
		Allocs:   ac.Allocations(),
		Capacity: ac.Shadowed().Inner().Capacity(),
		Budget:   ac.Shadowed().Inner().PartitionableCapacity(),
		Shadow:   ac.Shadowed().ShadowSizes(),
	}
	for p := 0; p < ac.NumLogical(); p++ {
		s.Configs = append(s.Configs, ac.Config(p))
	}
	return s
}

// TestNewMatchesDeprecatedConstructors is the options matrix: for every
// configuration, talus.New with options must build the exact stack
// NewAdaptiveCache builds from positional arguments — identical
// capacities, allocations, epoch counts, shadow sizes, and per-partition
// Talus configs after an identical deterministic feed.
func TestNewMatchesDeprecatedConstructors(t *testing.T) {
	lookahead, err := AllocatorByName("lookahead")
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		opts   []Option
		rounds int
		// NewAdaptiveCache arguments.
		scheme string
		lines  int64
		assoc  int
		shards int
		parts  int
		policy string
		margin float64
		acfg   AdaptiveConfig
	}{
		{
			name: "defaults-made-explicit",
			opts: []Option{WithCapacity(16384), WithShards(1), WithPartitions(2), WithSeed(9),
				WithAdaptive(AdaptiveConfig{EpochAccesses: 1 << 14, Seed: 9})},
			rounds: 200,
			scheme: "vantage", lines: 16384, assoc: 32, shards: 1, parts: 2, policy: "LRU",
			margin: DefaultMargin, acfg: AdaptiveConfig{EpochAccesses: 1 << 14, Seed: 9},
		},
		{
			name: "every-knob-turned",
			opts: []Option{
				WithCapacityMB(1), WithScheme("set"), WithPolicy("SRRIP"), WithAssoc(16),
				WithShards(4), WithPartitions(3), WithMargin(0.1), WithSeed(77),
				WithAllocator(lookahead),
				WithAdaptive(AdaptiveConfig{EpochAccesses: 1 << 13, Retain: 0.7, Allocator: lookahead, Seed: 77}),
			},
			rounds: 200,
			scheme: "set", lines: int64(MBToLines(1)), assoc: 16, shards: 4, parts: 3, policy: "SRRIP",
			margin: 0.1, acfg: AdaptiveConfig{EpochAccesses: 1 << 13, Retain: 0.7, Allocator: lookahead, Seed: 77},
		},
		{
			// The all-defaults control loop (EpochAccesses 2^20) needs a
			// longer feed to cross an epoch boundary.
			name: "margin-disabled-way-scheme-default-epoch",
			opts: []Option{
				WithCapacity(8192), WithScheme("way"), WithPolicy("DRRIP"),
				WithShards(2), WithPartitions(2), WithMargin(-1), WithSeed(5),
			},
			rounds: 2100,
			scheme: "way", lines: 8192, assoc: 32, shards: 2, parts: 2, policy: "DRRIP",
			margin: 0, acfg: AdaptiveConfig{Seed: 5},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			fresh, err := New(c.opts...)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := NewAdaptiveCache(c.scheme, c.lines, c.assoc, c.shards, c.parts, c.policy, c.margin, c.acfg)
			if err != nil {
				t.Fatal(err)
			}
			feedDeterministic(fresh, c.rounds)
			feedDeterministic(legacy, c.rounds)
			a, b := snapshot(t, fresh), snapshot(t, legacy)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("New state diverges from NewAdaptiveCache:\n new:    %+v\n legacy: %+v", a, b)
			}
			if fresh.Epochs() == 0 {
				t.Fatal("feed too small: no epochs ran, matrix proves nothing")
			}
		})
	}
}

// TestNewZeroOptions is the acceptance criterion: talus.New() alone
// yields a working adaptive sharded cache with the documented defaults.
func TestNewZeroOptions(t *testing.T) {
	ac, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer ac.Close()
	if got := ac.NumLogical(); got != 8 {
		t.Fatalf("default partitions = %d, want 8", got)
	}
	if got := ac.Shadowed().Inner().(*ShardedCache).NumShards(); got != 8 {
		t.Fatalf("default shards = %d, want 8", got)
	}
	if got, want := ac.Shadowed().Inner().Capacity(), int64(MBToLines(8)); got != want {
		t.Fatalf("default capacity = %d lines, want %d (8 MB)", got, want)
	}
	// It serves traffic and reconfigures.
	batch := make([]uint64, 512)
	for i := range batch {
		batch[i] = uint64(i) | 1<<48
	}
	if n := ac.AccessBatch(batch, 0, nil); n < 0 {
		t.Fatal("batch failed")
	}
	if err := ac.ForceEpoch(); err != nil {
		t.Fatal(err)
	}
	if len(ac.Allocations()) != 8 {
		t.Fatalf("allocations = %v", ac.Allocations())
	}
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"bad capacity", []Option{WithCapacity(0)}, "positive size"},
		{"bad shards", []Option{WithShards(-2)}, "at least 1"},
		{"bad partitions", []Option{WithPartitions(-1)}, "at least 1"},
		{"bad assoc", []Option{WithAssoc(-4)}, "at least 1 way"},
		{"tenant overflow", []Option{WithPartitions(1), WithTenants("a", "b")}, "raise WithPartitions"},
		{"bad scheme", []Option{WithScheme("quantum")}, "valid: none, way, set, vantage"},
		{"bad policy", []Option{WithPolicy("FIFO")}, "valid: LRU, SRRIP"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := New(c.opts...); err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("New = %v, want error mentioning %q", err, c.want)
			}
		})
	}
}

// TestNewStoreOptions exercises the store-only options through the
// public builder: tenant pre-registration sizes the partition count,
// static mode closes the door, and the value cap is enforced.
func TestNewStoreOptions(t *testing.T) {
	st, err := NewStore(
		WithCapacity(16384),
		WithShards(2),
		WithStaticTenants("a", "b", "c"),
		WithMaxValueBytes(4),
		WithSeed(3),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got := st.Cache().NumLogical(); got != 3 {
		t.Fatalf("partitions grew to %d, want len(tenants) = 3", got)
	}
	// Open (non-static) pre-registration must not shrink the default
	// partition count: unnamed tenants can still register on first use.
	open, err := NewStore(WithCapacity(16384), WithShards(1), WithTenants("x"))
	if err != nil {
		t.Fatal(err)
	}
	defer open.Close()
	if got := open.Cache().NumLogical(); got != 8 {
		t.Fatalf("open store with one tenant built %d partitions, want the default 8", got)
	}
	if _, err := open.Set("walk-in", "k", []byte("v")); err != nil {
		t.Fatalf("walk-in tenant refused: %v", err)
	}
	if _, err := st.Set("a", "k", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	v, _, err := st.Get("a", "k")
	if err != nil || string(v) != "ok" {
		t.Fatalf("round trip = %q, %v", v, err)
	}
	if _, err := st.Set("a", "k", []byte("too big")); !errors.Is(err, ErrValueTooLarge) {
		t.Fatalf("value cap: %v", err)
	}
	if _, err := st.Set("d", "k", nil); !errors.Is(err, ErrUnknownTenant) {
		t.Fatalf("static tenants: %v", err)
	}
}

// TestNewStoreBatchOptions pins the batching knobs at the public
// boundary: a batching store (default WithBatchSize, explicit
// WithBatchDeadline) serves a sequential stream identically to a
// WithBatchSize(1) (batching-disabled) store at the same seed.
func TestNewStoreBatchOptions(t *testing.T) {
	build := func(extra ...Option) *Store {
		t.Helper()
		opts := append([]Option{
			WithCapacity(16384), WithShards(2), WithTenants("t"), WithSeed(11),
		}, extra...)
		st, err := NewStore(opts...)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st
	}
	batched := build(WithBatchSize(16), WithBatchDeadline(time.Millisecond))
	direct := build(WithBatchSize(1))
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("k%d", i%300)
		hb, errB := batched.Set("t", key, []byte("v"))
		hd, errD := direct.Set("t", key, []byte("v"))
		if hb != hd || (errB == nil) != (errD == nil) {
			t.Fatalf("op %d: batched (%v,%v) vs direct (%v,%v)", i, hb, errB, hd, errD)
		}
	}
	sb, _ := batched.Stats("t")
	sd, _ := direct.Stats("t")
	if sb != sd {
		t.Fatalf("stats diverge:\n batched %+v\n direct  %+v", sb, sd)
	}
}
