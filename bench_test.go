// Benchmarks: one per paper table/figure (regenerating a reduced-scale
// version of each artifact through the same code paths as cmd/talus-exp),
// plus micro-benchmarks of the operations on Talus's critical paths —
// hull construction, shadow-partition configuration, the H3 sampler, the
// cache access path, and UMON observation.
//
// Run with:
//
//	go test -bench=. -benchmem
package talus

import (
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"talus/internal/adaptive"
	"talus/internal/cache"
	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/experiments"
	"talus/internal/hash"
	"talus/internal/hull"
	"talus/internal/monitor"
	"talus/internal/partition"
	"talus/internal/policy"
	"talus/internal/sim"
	"talus/internal/workload"
)

// --- figure/table regeneration benches --------------------------------

// benchExperiment runs one experiment at benchmark (Tiny) scale; under
// `go test -short` it drops to the Short smoke scale so the full
// `-bench . -benchtime 1x -short` suite finishes in under a minute.
func benchExperiment(b *testing.B, name string) {
	b.Helper()
	cfg := experiments.Config{Tiny: true, Short: testing.Short(), Seed: 42, W: io.Discard}
	for i := 0; i < b.N; i++ {
		if err := experiments.Run(name, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig01Libquantum(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig02ShadowConfig(b *testing.B) { benchExperiment(b, "fig2") }
func BenchmarkFig03Hull(b *testing.B)         { benchExperiment(b, "fig3") }
func BenchmarkFig05Bypass(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig06BypassCurve(b *testing.B)  { benchExperiment(b, "fig6") }
func BenchmarkFig08Schemes(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig09SRRIP(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10Policies(b *testing.B)     { benchExperiment(b, "fig10") }
func BenchmarkFig11IPC(b *testing.B)          { benchExperiment(b, "fig11") }
func BenchmarkFig12Mixes(b *testing.B)        { benchExperiment(b, "fig12") }
func BenchmarkFig13Fairness(b *testing.B)     { benchExperiment(b, "fig13") }
func BenchmarkTable1Config(b *testing.B)      { benchExperiment(b, "table1") }
func BenchmarkTable2Gmeans(b *testing.B)      { benchExperiment(b, "table2") }

// --- core operation micro-benches --------------------------------------

// benchCurve builds a jagged 256-point miss curve.
func benchCurve() *curve.Curve {
	pts := make([]curve.Point, 256)
	m := 40.0
	for i := range pts {
		if i%16 == 15 {
			m *= 0.6 // periodic cliffs
		} else {
			m *= 0.998
		}
		pts[i] = curve.Point{Size: float64((i + 1) * 1024), MPKI: m}
	}
	return curve.MustNew(pts)
}

// BenchmarkConvexHull measures the pre-processing step's cost per curve
// (the paper's "linear time in the size of the miss curve").
func BenchmarkConvexHull(b *testing.B) {
	c := benchCurve()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hull.Lower(c)
	}
}

// BenchmarkConfigure measures the per-partition post-processing step
// (hull + anchors + ρ), which runs once per partition per 10 ms interval.
func BenchmarkConfigure(b *testing.B) {
	c := benchCurve()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Configure(c, 128*1024, core.DefaultMargin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkH3Hash measures the sampler's hash (one per cache access in
// hardware; on the simulator's critical path too).
func BenchmarkH3Hash(b *testing.B) {
	h := hash.NewH3(1, 64)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= h.Hash(uint64(i) * 0x9E3779B97F4A7C15)
	}
	_ = sink
}

// BenchmarkSampler measures the full α/β routing decision.
func BenchmarkSampler(b *testing.B) {
	s := hash.NewSampler(1)
	s.SetRate(1.0 / 3)
	n := 0
	for i := 0; i < b.N; i++ {
		if s.ToAlpha(uint64(i)) {
			n++
		}
	}
	_ = n
}

// BenchmarkCacheAccessLRU measures the simulator's hot path: one access
// to a 1 MB 16-way LRU cache with a ~2× working set.
func BenchmarkCacheAccessLRU(b *testing.B) {
	c, err := cache.NewSetAssoc(16384, 16, partition.NewNone(1), policy.LRUFactory, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(uint64(i%32768), 0)
	}
}

// BenchmarkCacheAccessVantageTalus measures the partitioned datapath:
// sampler + Vantage victim selection with 2 shadow partitions.
func BenchmarkCacheAccessVantageTalus(b *testing.B) {
	inner, err := cache.NewSetAssoc(16384, 16, partition.NewVantage(2), policy.LRUFactory, 1)
	if err != nil {
		b.Fatal(err)
	}
	tc, err := core.NewShadowedCache(inner, 1, core.DefaultMargin, 2)
	if err != nil {
		b.Fatal(err)
	}
	mc := curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 30}, {Size: 16000, MPKI: 30}, {Size: 32768, MPKI: 1}, {Size: 65536, MPKI: 1},
	})
	if err := tc.Reconfigure([]int64{inner.PartitionableCapacity()}, []*curve.Curve{mc}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tc.Access(uint64(i%32768), 0)
	}
}

// --- concurrency layer benches ------------------------------------------

// benchSweepConfig is a 12-point sweep of a small scanning app, sized so
// points cost roughly the same and parallel speedup is visible: compare
// BenchmarkSweepSequential and BenchmarkSweepParallel in BENCH_*.json to
// track the parallel engine's scaling across PRs.
func benchSweepConfig(parallelism int) sim.SweepConfig {
	spec := workload.Spec{
		Name: "benchscan", APKI: 20, CPIBase: 0.5, MLP: 2,
		Build: func() workload.Pattern { return &workload.Scan{Lines: 8192} },
	}
	sizes := make([]int64, 12)
	for i := range sizes {
		sizes[i] = int64(2048 + 1024*i)
	}
	return sim.SweepConfig{
		App:             spec,
		SizesLines:      sizes,
		WarmupAccesses:  1 << 16,
		MeasureAccesses: 1 << 18,
		Seed:            42,
		Parallelism:     parallelism,
	}
}

func benchSweep(b *testing.B, parallelism int) {
	b.Helper()
	cfg := benchSweepConfig(parallelism)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepSequential is the single-worker baseline.
func BenchmarkSweepSequential(b *testing.B) { benchSweep(b, 1) }

// BenchmarkSweepParallel fans the same sweep across GOMAXPROCS workers;
// results are byte-identical to the sequential run.
func BenchmarkSweepParallel(b *testing.B) { benchSweep(b, 0) }

// benchShardedCache builds the concurrent serving cache: 1 MB striped
// over 8 locked LRU shards.
func benchShardedCache(b *testing.B) *cache.ShardedCache {
	b.Helper()
	sc, err := sim.BuildShardedCache("none", 16384, 16, 8, 1, "LRU", 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

// benchGoroutineSeed hands each RunParallel goroutine a distinct RNG
// seed: identical seeds would make every goroutine replay the same
// address stream in lockstep (all hitting the same shard at once), which
// misrepresents both contention and hit behavior.
var benchGoroutineSeed atomic.Uint64

// BenchmarkShardedAccess measures the unbatched concurrent hot path: one
// lock acquisition per access, all goroutines hammering at once.
func BenchmarkShardedAccess(b *testing.B) {
	sc := benchShardedCache(b)
	b.RunParallel(func(pb *testing.PB) {
		rng := hash.NewSplitMix64(benchGoroutineSeed.Add(1))
		for pb.Next() {
			sc.Access(rng.Uint64n(32768), 0)
		}
	})
}

// BenchmarkShardedAccessBatch measures the batched hot path: AccessBatch
// groups each 512-access batch by shard and takes each shard lock once,
// amortizing acquisition ~64× at 8 shards. Per-op time is per access.
func BenchmarkShardedAccessBatch(b *testing.B) {
	sc := benchShardedCache(b)
	const batchLen = 512
	b.RunParallel(func(pb *testing.PB) {
		rng := hash.NewSplitMix64(benchGoroutineSeed.Add(1))
		addrs := make([]uint64, batchLen)
		i := batchLen
		for pb.Next() {
			if i == batchLen {
				for j := range addrs {
					addrs[j] = rng.Uint64n(32768)
				}
				sc.AccessBatch(addrs, nil, nil)
				i = 0
			}
			i++
		}
	})
}

// BenchmarkShadowedShardedBatch measures the full concurrent Talus stack:
// sampler routing plus batched sharded access.
func BenchmarkShadowedShardedBatch(b *testing.B) {
	inner, err := sim.BuildShardedCache("vantage", 16384, 16, 8, 2, "LRU", 1, 42)
	if err != nil {
		b.Fatal(err)
	}
	tc, err := core.NewShadowedCache(inner, 1, core.DefaultMargin, 2)
	if err != nil {
		b.Fatal(err)
	}
	mc := curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 30}, {Size: 16000, MPKI: 30}, {Size: 32768, MPKI: 1}, {Size: 65536, MPKI: 1},
	})
	if err := tc.Reconfigure([]int64{inner.PartitionableCapacity()}, []*curve.Curve{mc}); err != nil {
		b.Fatal(err)
	}
	const batchLen = 512
	b.RunParallel(func(pb *testing.PB) {
		rng := hash.NewSplitMix64(benchGoroutineSeed.Add(1))
		addrs := make([]uint64, batchLen)
		i := batchLen
		for pb.Next() {
			if i == batchLen {
				for j := range addrs {
					addrs[j] = rng.Uint64n(32768)
				}
				tc.AccessBatch(addrs, 0, nil)
				i = 0
			}
			i++
		}
	})
}

// BenchmarkAdaptiveAccessBatch measures the whole self-tuning stack:
// per-partition monitor observation, sampler routing, batched sharded
// access, and the epoch reconfigurations the traffic itself triggers.
func BenchmarkAdaptiveAccessBatch(b *testing.B) {
	ac, err := sim.BuildAdaptiveCache("vantage", 16384, 16, 8, 2, "LRU",
		core.DefaultMargin, adaptive.Config{EpochAccesses: 1 << 18, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	const batchLen = 512
	b.RunParallel(func(pb *testing.PB) {
		rng := hash.NewSplitMix64(benchGoroutineSeed.Add(1))
		part := int(rng.Uint64n(2))
		addrs := make([]uint64, batchLen)
		i := batchLen
		for pb.Next() {
			if i == batchLen {
				for j := range addrs {
					addrs[j] = rng.Uint64n(32768) | uint64(part+1)<<48
				}
				ac.AccessBatch(addrs, part, nil)
				i = 0
			}
			i++
		}
	})
}

// --- serving-layer benches ------------------------------------------------

// benchServingStore builds the keyed store the serving benches run
// against: the zero-option production shape (8 MB, 8 shards, 8
// partitions, 2^20-access epochs) with one pre-registered tenant — the
// same stack `talus-serve` runs with no flags, so these numbers track
// what the HTTP front-end's store layer costs.
func benchServingStore(b *testing.B, opts ...Option) *Store {
	b.Helper()
	base := []Option{
		WithTenants("bench"),
		WithSeed(42),
	}
	st, err := NewStore(append(base, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	})
	return st
}

// benchStoreKeys pre-renders the key set so key formatting stays out of
// the measured loop. 4096 keys over a 16384-line cache: a warm but not
// fully resident working set.
func benchStoreKeys() []string {
	keys := make([]string, 4096)
	for i := range keys {
		keys[i] = "user:" + string(rune('a'+i%26)) + ":" + fmt.Sprint(i)
	}
	return keys
}

func benchStoreGet(b *testing.B, opts ...Option) {
	st := benchServingStore(b, opts...)
	keys := benchStoreKeys()
	val := make([]byte, 64)
	for _, k := range keys {
		if _, err := st.Set("bench", k, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := st.Get("bench", keys[i&4095]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreGet measures the sequential keyed-Get hot path with the
// request batcher on: an idle lane flushes immediately, so this is the
// batcher's no-concurrency overhead on top of hash+monitor+cache+map.
func BenchmarkStoreGet(b *testing.B) { benchStoreGet(b) }

// BenchmarkStoreGetNoBatch is the sequential pre-batching baseline: one
// direct datapath crossing per request.
func BenchmarkStoreGetNoBatch(b *testing.B) { benchStoreGet(b, WithBatchSize(1)) }

func benchStoreGetParallel(b *testing.B, opts ...Option) {
	st := benchServingStore(b, opts...)
	keys := benchStoreKeys()
	val := make([]byte, 64)
	for _, k := range keys {
		if _, err := st.Set("bench", k, val); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := hash.NewSplitMix64(benchGoroutineSeed.Add(1))
		for pb.Next() {
			if _, _, err := st.Get("bench", keys[rng.Uint64n(4096)]); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkStoreGetParallel measures concurrent keyed Gets on one hot
// tenant with the request batcher coalescing in-flight accesses — the
// serving hot path after the batching overhaul.
func BenchmarkStoreGetParallel(b *testing.B) { benchStoreGetParallel(b) }

// BenchmarkStoreGetParallelNoBatch is the pre-batching per-request-lock
// baseline the overhaul is measured against: every Get serializes on the
// tenant's monitor-lane mutex.
func BenchmarkStoreGetParallelNoBatch(b *testing.B) { benchStoreGetParallel(b, WithBatchSize(1)) }

func benchStoreSetParallel(b *testing.B, opts ...Option) {
	st := benchServingStore(b, opts...)
	keys := benchStoreKeys()
	val := make([]byte, 64)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := hash.NewSplitMix64(benchGoroutineSeed.Add(1))
		for pb.Next() {
			if _, err := st.Set("bench", keys[rng.Uint64n(4096)], val); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkStoreSetParallel measures concurrent keyed Puts (value copy,
// value-map write lock, batched cache access).
func BenchmarkStoreSetParallel(b *testing.B) { benchStoreSetParallel(b) }

// BenchmarkStoreSetParallelNoBatch is the unbatched Put baseline.
func BenchmarkStoreSetParallelNoBatch(b *testing.B) { benchStoreSetParallel(b, WithBatchSize(1)) }

// BenchmarkUMONObserve measures monitor overhead per access (most
// accesses fail the sampling filter, as in hardware).
func BenchmarkUMONObserve(b *testing.B) {
	m, err := monitor.NewLRUMonitor(131072, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Observe(uint64(i % 100000))
	}
}

// BenchmarkWorkloadNext measures clone stream generation (mcf: zipf +
// mixture, the most expensive generator).
func BenchmarkWorkloadNext(b *testing.B) {
	spec, _ := workload.Lookup("mcf")
	app := workload.NewApp(spec, 1)
	var sink uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink ^= app.Next()
	}
	_ = sink
}

// BenchmarkMIN measures offline Belady simulation (used by the
// Corollary 7 validation).
func BenchmarkMIN(b *testing.B) {
	rng := hash.NewSplitMix64(1)
	trace := make([]uint64, 1<<16)
	for i := range trace {
		trace[i] = rng.Uint64n(4096)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		policy.SimulateMIN(trace, 1024)
	}
}
