// Functional-options construction: the single public entry point for
// building the serving stack. The telescoping constructors this
// replaces (BuildCache, NewShardedCache, NewAdaptiveCache) grew one
// positional argument per PR; New collapses them into self-describing
// options with centrally validated defaults, so the zero-option call
//
//	ac, err := talus.New()
//
// yields a working adaptive sharded cache — the paper's 8-core CMP
// shape (8 MB LLC, 8 shards, 8 partitions, vantage partitioning over
// LRU, hill climbing on hulls every 2^20 accesses) — and every option
// adjusts exactly one knob. NewStore builds the keyed Get/Set layer
// over the same options; the deprecated constructors remain as thin
// wrappers.
package talus

import (
	"fmt"
	"net/http"
	"time"

	"talus/internal/cluster"
	"talus/internal/serve"
	"talus/internal/sim"
	"talus/internal/store"
)

// options accumulates the builder's knobs. Later options win; defaults
// fill in whatever was left unset, and build validates the result
// centrally so every constructor path shares one set of error messages.
type options struct {
	capacityLines int64
	scheme        string
	policy        string
	assoc         int
	shards        int
	partitions    int
	margin        float64
	marginSet     bool
	acfg          AdaptiveConfig

	// Store-only knobs (ignored by New).
	tenants       []string
	weights       map[string]float64
	lineBounds    map[string]store.LineBounds
	staticTenants bool
	maxValueBytes int64
	batchSize     int
	batchDeadline time.Duration
	forceBatching bool
	maxBytes      int64
	backend       store.Backend
	maxTenants    int
	defaultTTL    time.Duration
	nodeID        string
}

// Option configures New and NewStore.
type Option func(*options)

// WithCapacity sets the cache capacity in 64-byte lines.
func WithCapacity(lines int64) Option { return func(o *options) { o.capacityLines = lines } }

// WithCapacityMB sets the cache capacity in megabytes.
func WithCapacityMB(mb float64) Option {
	return func(o *options) { o.capacityLines = int64(MBToLines(mb)) }
}

// WithScheme selects the partitioning scheme: "none", "way", "set",
// "vantage" (default), "futility", or "ideal".
func WithScheme(scheme string) Option { return func(o *options) { o.scheme = scheme } }

// WithPolicy selects the replacement policy: "LRU" (default), "SRRIP",
// "BRRIP", "DRRIP", "TA-DRRIP", "DIP", "PDP", or "Random".
func WithPolicy(policy string) Option { return func(o *options) { o.policy = policy } }

// WithShards sets how many independently locked shards stripe the
// cache; concurrency scales with shards, contents stay deterministic
// for a given configuration.
func WithShards(n int) Option { return func(o *options) { o.shards = n } }

// WithPartitions sets the number of logical partitions (tenants the
// serving layer can host; apps a simulation can interleave).
func WithPartitions(n int) Option { return func(o *options) { o.partitions = n } }

// WithAssoc sets the set-associativity of each shard's array.
func WithAssoc(ways int) Option { return func(o *options) { o.assoc = ways } }

// WithMargin sets the Talus sampling-rate safety margin (the paper's
// §VI-B δ; default DefaultMargin = 5%). Negative disables it.
func WithMargin(margin float64) Option {
	return func(o *options) {
		o.marginSet = true
		o.margin = max(margin, 0)
	}
}

// WithSeed seeds the whole stack (shard hashes, samplers, monitors)
// deterministically.
func WithSeed(seed uint64) Option { return func(o *options) { o.acfg.Seed = seed } }

// WithAdaptive replaces the whole control-loop configuration (epoch
// length, wall-clock interval, EWMA retention, allocator, seed). It
// overrides earlier WithSeed/WithAllocator/WithEpochInterval calls and
// is overridden field-by-field by later ones.
func WithAdaptive(cfg AdaptiveConfig) Option { return func(o *options) { o.acfg = cfg } }

// WithAllocator sets the epoch allocation policy (default
// HillClimbAllocator — optimal on hulls, the paper's point).
func WithAllocator(a Allocator) Option { return func(o *options) { o.acfg.Allocator = a } }

// WithEpochInterval adds a wall-clock epoch trigger alongside the
// access-count one, so lightly loaded partitions still reconfigure on
// time. Caches built with it must be Closed to stop the ticker.
func WithEpochInterval(d time.Duration) Option {
	return func(o *options) { o.acfg.EpochInterval = d }
}

// WithWeights sets per-partition objective weights for the allocator
// (one per partition, in partition order): each epoch minimizes
// Σ wᵢ·missesᵢ instead of raw misses, so a weight-4 partition's misses
// count 4× and it attracts capacity until its weighted marginal gain
// drops to its neighbors'. Uniform weights (or none) reproduce the
// unweighted allocation exactly. For tenant-name weights at the store
// layer use WithTenantWeight.
func WithWeights(w ...float64) Option { return func(o *options) { o.acfg.Weights = w } }

// WithSelfTuning enables the churn-driven epoch controller: when
// successive measured miss curves stop changing (churn below the low
// watermark for two epochs) the epoch budget doubles — fewer, cheaper
// reconfigurations — and when a phase change spikes churn it halves
// back, bounded by [minEpoch, maxEpoch] accesses. Zero bounds select
// the defaults (the base epoch budget and 16× it). Live state is
// visible via Controller() and GET /v1/control.
func WithSelfTuning(minEpoch, maxEpoch int64) Option {
	return func(o *options) {
		o.acfg.SelfTune = true
		o.acfg.MinEpoch = minEpoch
		o.acfg.MaxEpoch = maxEpoch
	}
}

// WithTenantWeight sets the named tenant's objective weight (NewStore
// only; see WithWeights for semantics). The weight attaches when the
// tenant claims its partition — at build for pre-declared tenants, at
// first request for auto-registered ones — and can be adjusted at run
// time with Store.SetTenantWeight or PUT /v1/control/tenants/{tenant}.
func WithTenantWeight(tenant string, w float64) Option {
	return func(o *options) {
		if o.weights == nil {
			o.weights = make(map[string]float64)
		}
		o.weights[tenant] = w
	}
}

// WithTenantLines bounds the named tenant's allocation to [min, max]
// cache lines (NewStore only): the floor is a capacity guarantee, the
// cap a ceiling no amount of demand exceeds. max 0 means uncapped.
func WithTenantLines(tenant string, min, max int64) Option {
	return func(o *options) {
		if o.lineBounds == nil {
			o.lineBounds = make(map[string]store.LineBounds)
		}
		o.lineBounds[tenant] = store.LineBounds{Min: min, Max: max}
	}
}

// WithTenants pre-registers tenant names onto the first partitions
// (NewStore only). Without WithPartitions, the default partition count
// grows to fit them but never shrinks below it — unnamed tenants can
// still register on first use.
func WithTenants(names ...string) Option { return func(o *options) { o.tenants = names } }

// WithStaticTenants pre-registers names and disables auto-registration:
// requests naming any other tenant are refused, and (without
// WithPartitions) the cache is built with exactly len(names) partitions
// (NewStore only).
func WithStaticTenants(names ...string) Option {
	return func(o *options) {
		o.tenants = names
		o.staticTenants = true
	}
}

// WithMaxValueBytes caps stored value sizes (NewStore only; 0 means
// unlimited at the store layer — the HTTP front-end still enforces its
// own body limit).
func WithMaxValueBytes(n int64) Option { return func(o *options) { o.maxValueBytes = n } }

// WithBatchSize caps how many in-flight requests the store's per-tenant
// batcher coalesces into one cache access batch (NewStore only). The
// batcher is group commit: a request on an idle tenant flushes
// immediately, requests arriving during a flush form the next batch, so
// batch size adapts to load up to this bound. 0 selects the default
// (DefaultBatchSize, 64); 1 disables batching entirely, restoring
// the per-request datapath.
func WithBatchSize(n int) Option { return func(o *options) { o.batchSize = n } }

// WithForceBatching keeps the request batcher engaged even where the
// store would bypass it as pure overhead — a GOMAXPROCS=1 runtime,
// where requests cannot overlap so every batch would be a batch of one
// (NewStore only). Useful for tests and benchmarks that pin batching
// semantics; servers should not need it.
func WithForceBatching() Option { return func(o *options) { o.forceBatching = true } }

// WithBatchDeadline bounds how long a request may wait on the store's
// per-tenant batcher before it falls back to a direct, unbatched cache
// access (NewStore only) — the tail-latency backstop for flushes stalled
// behind an epoch reconfiguration. 0 selects the default
// (DefaultBatchDeadline, 100µs); negative waits without bound.
func WithBatchDeadline(d time.Duration) Option {
	return func(o *options) { o.batchDeadline = d }
}

// WithMaxBytes bounds the total value bytes the store holds across all
// tenants (NewStore only), turning it into a true bounded cache: value
// lifetime couples to simulated-line residency (an evicted line
// releases its values, so Get on an evicted key is a real miss) and
// writes pass a Talus-managed admission gate — the paper's optimal
// bypassing (Eq. 6) applied to value admission, refreshed from each
// tenant's live miss curve. 0 (the default) keeps the unbounded
// system-of-record behaviour.
func WithMaxBytes(n int64) Option { return func(o *options) { o.maxBytes = n } }

// WithBackend installs the backing tier behind the cache (NewStore
// only): Sets write through to it and a Get whose value was evicted or
// never admitted reads through it and re-admits, making the store a
// read-through cache. A Backend also enables eviction-coupled value
// storage (like WithMaxBytes, but without a byte bound of its own).
// Use NewMemBackend for the in-memory reference tier with modeled
// latency, or bring any Backend implementation.
func WithBackend(b Backend) Option { return func(o *options) { o.backend = b } }

// WithDefaultTTL gives every value written without an explicit TTL a
// store-wide lifetime (NewStore only): Gets past the deadline behave
// as real misses and release the value's bytes. Per-entry TTLs
// (Store.SetTTL, or the HTTP X-Talus-TTL header) override it in either
// direction. 0 (the default) keeps values until evicted or deleted.
func WithDefaultTTL(d time.Duration) Option { return func(o *options) { o.defaultTTL = d } }

// WithNodeID names this serving instance (NewStore only): the ID
// surfaces in /v1/stats' node block, in the X-Talus-Node response
// header, and in load reports' per-node attribution. In a cluster it
// should be the node's ring name (host:port). Empty derives
// "<hostname>-<pid>".
func WithNodeID(id string) Option { return func(o *options) { o.nodeID = id } }

// WithMaxTenants caps how many tenants may ever register — pre-declared
// plus auto-registered — so an open HTTP front-end cannot be made to
// mint a tenant per request (NewStore only). Exceeding the cap returns
// ErrTenantCapacity. 0 (the default) bounds tenants only by the
// partition count.
func WithMaxTenants(n int) Option { return func(o *options) { o.maxTenants = n } }

// build applies opts over the defaults and validates the result.
func build(opts []Option) (*options, error) {
	o := &options{
		capacityLines: int64(MBToLines(sim.CoresMP * sim.LLCPerCoreMB)),
		scheme:        "vantage",
		policy:        "LRU",
		assoc:         sim.DefaultAssoc,
		shards:        sim.CoresMP,
	}
	for _, opt := range opts {
		opt(o)
	}
	if o.partitions == 0 {
		switch {
		case o.staticTenants:
			// A closed tenant set needs exactly its own partitions.
			o.partitions = len(o.tenants)
		case len(o.tenants) > sim.CoresMP:
			// Open registration: the default grows to fit the pre-declared
			// tenants but never shrinks below it, so later tenants can
			// still register on first use.
			o.partitions = len(o.tenants)
		default:
			o.partitions = sim.CoresMP
		}
	}
	if !o.marginSet {
		o.margin = DefaultMargin
	}
	switch {
	case o.capacityLines <= 0:
		return nil, fmt.Errorf("talus: capacity %d lines; WithCapacity/WithCapacityMB need a positive size", o.capacityLines)
	case o.shards < 1:
		return nil, fmt.Errorf("talus: %d shards; WithShards needs at least 1", o.shards)
	case o.partitions < 1:
		return nil, fmt.Errorf("talus: %d partitions; WithPartitions needs at least 1", o.partitions)
	case o.assoc < 1:
		return nil, fmt.Errorf("talus: associativity %d; WithAssoc needs at least 1 way", o.assoc)
	case len(o.tenants) > o.partitions:
		return nil, fmt.Errorf("talus: %d tenants for %d partitions; raise WithPartitions", len(o.tenants), o.partitions)
	}
	return o, nil
}

// New constructs the adaptive serving stack from functional options: a
// sharded LLC, the Talus shadow-partition runtime over it, and the
// epoch-driven monitor → hull → allocator control loop over that. With
// zero options it is the paper's 8-core CMP shape and works as is; see
// the With* options for each knob. Scheme and policy names are
// validated on construction (errors enumerate the valid names). When
// built with WithEpochInterval, Close the cache to stop its ticker.
func New(opts ...Option) (*AdaptiveCache, error) {
	o, err := build(opts)
	if err != nil {
		return nil, err
	}
	return sim.BuildAdaptiveCache(o.scheme, o.capacityLines, o.assoc, o.shards, o.partitions,
		o.policy, o.margin, o.acfg)
}

// Store is the keyed serving layer: Get/Set/Delete over (tenant, key)
// pairs mapped onto the adaptive cache's partitions and line addresses,
// with real value storage, per-tenant Stats, live miss Curves, and an
// optional traffic Recorder. See NewStore.
type Store = store.Store

// TenantStats reports one tenant's serving counters.
type TenantStats = store.TenantStats

// Store request-batcher defaults (see WithBatchSize, WithBatchDeadline).
const (
	// DefaultBatchSize is the maximum number of in-flight requests the
	// store's per-tenant batcher coalesces into one cache access batch.
	DefaultBatchSize = store.DefaultBatchSize
	// DefaultBatchDeadline bounds how long a request waits on the
	// batcher before falling back to a direct access.
	DefaultBatchDeadline = store.DefaultBatchDeadline
)

// Backend is the pluggable backing tier behind a bounded store: the
// "database" the cache reads through on value misses and writes
// through on Sets. See WithBackend.
type Backend = store.Backend

// MemBackend is the in-memory reference Backend with modeled
// per-operation latency. See NewMemBackend.
type MemBackend = store.MemBackend

// NewMemBackend builds an empty in-memory backend that sleeps latency
// on every operation (0 disables the delay).
func NewMemBackend(latency time.Duration) *MemBackend {
	return store.NewMemBackend(latency)
}

// Store boundary errors (see the internal/store package docs).
var (
	ErrEmptyTenant    = store.ErrEmptyTenant
	ErrEmptyKey       = store.ErrEmptyKey
	ErrUnknownTenant  = store.ErrUnknownTenant
	ErrTenantCapacity = store.ErrTenantCapacity
	ErrNotFound       = store.ErrNotFound
	ErrValueTooLarge  = store.ErrValueTooLarge
	ErrBackend        = store.ErrBackend
	ErrClosed         = store.ErrClosed
	ErrBadTTL         = store.ErrBadTTL
)

// NewStore constructs the keyed store over a cache built from the same
// options New takes, plus the store-specific ones (WithTenants,
// WithStaticTenants, WithMaxValueBytes, WithMaxBytes, WithBackend,
// WithMaxTenants). Tenants map to logical partitions (first come,
// first served unless static); keys hash to line addresses; every
// request drives the adaptive control loop. WithMaxBytes or
// WithBackend makes the store a true bounded cache — values die with
// their evicted lines instead of accumulating forever. Close the store
// when done (stops recording and the epoch ticker).
func NewStore(opts ...Option) (*Store, error) {
	o, err := build(opts)
	if err != nil {
		return nil, err
	}
	ac, err := sim.BuildAdaptiveCache(o.scheme, o.capacityLines, o.assoc, o.shards, o.partitions,
		o.policy, o.margin, o.acfg)
	if err != nil {
		return nil, err
	}
	return store.New(ac, store.Config{
		Tenants:       o.tenants,
		Weights:       o.weights,
		LineBounds:    o.lineBounds,
		Static:        o.staticTenants,
		MaxValueBytes: o.maxValueBytes,
		BatchSize:     o.batchSize,
		BatchDeadline: o.batchDeadline,
		ForceBatching: o.forceBatching,
		MaxBytes:      o.maxBytes,
		Backend:       o.backend,
		MaxTenants:    o.maxTenants,
		DefaultTTL:    o.defaultTTL,
		NodeID:        o.nodeID,
	})
}

// ServeConfig parameterizes the HTTP front-end handler: the PUT body
// cap (0 → 1 MiB), the directory trace captures may be written into
// (empty keeps POST /v1/record disabled — it writes server-side files,
// so enabling it is an explicit operator decision), and the Control
// gate for the mutating control plane (false keeps
// PUT /v1/control/tenants/{tenant} disabled; the read-only
// GET /v1/control is always served).
type ServeConfig = serve.Config

// NewServeHandler returns the stdlib HTTP front-end over st — the same
// handler cmd/talus-serve mounts (GET/PUT/DELETE /v1/cache/{tenant}/{key},
// /v1/stats, /v1/curves, /v1/cluster, /v1/control, /v1/record) — for
// embedding in an existing server.
func NewServeHandler(st *Store, cfg ServeConfig) http.Handler {
	return serve.NewHandler(st, cfg)
}

// NodeStats identifies one serving instance: its node ID, process, start
// time, and GOMAXPROCS. Reported by Store.Node, /v1/stats, /v1/cluster.
type NodeStats = store.NodeStats

// Cluster is the distributed serving tier's membership view: a
// deterministic consistent-hash ring plus the node-to-node HTTP client.
// Pass one to ServeConfig.Cluster to turn a handler into a thin proxy
// that forwards requests it does not own. See NewCluster.
type Cluster = cluster.Cluster

// ClusterConfig parameterizes NewCluster: this node's own name, the
// full membership list, virtual-node count, ring seed, and the
// forwarding client's timeout/retry bounds. Every node (and any
// ring-aware client) must share Nodes, VNodes, and Seed — ownership is
// computed independently on each, with no coordination.
type ClusterConfig = cluster.Config

// NewCluster validates cfg and builds the cluster view.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewRing builds just the consistent-hash ring — for clients that want
// to route requests to their owners directly instead of paying the
// proxy hop. 0 vnodes selects ClusterDefaultVNodes.
func NewRing(nodes []string, vnodes int, seed uint64) (*Ring, error) {
	return cluster.NewRing(nodes, vnodes, seed)
}

// Ring is the immutable consistent-hash ring. See NewRing.
type Ring = cluster.Ring

// ClusterDefaultVNodes is the default virtual-node count per member.
const ClusterDefaultVNodes = cluster.DefaultVNodes
