// Adaptive runtime demo: the zero-config path. Construct an
// AdaptiveCache, feed it traffic, and watch it converge — no offline
// miss curves, no hand-wired configuration. The cache's embedded UMONs
// measure each partition's miss curve from the live stream; every epoch
// the control loop convexifies the curves, runs hill climbing over the
// hulls, and reprograms shadow sizes and sampling rates.
//
// The traffic is the cliff scenario from the paper's worked example: one
// partition scans 5 MB cyclically (a miss-curve cliff at 5 MB), the
// other reuses a 2 MB working set at random. A naive fair split of the
// 6 MB cache (3 MB each) would leave the scanner missing on every
// access; the adaptive loop discovers the cliff's hull and lands the
// scanner on its interpolated slope via shadow partitioning.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"talus"
	"talus/internal/hash"
)

func main() {
	mb := talus.MBToLines
	capacity := int64(mb(6))

	// Zero config: defaults pick the epoch length, EWMA decay, and the
	// hill-climbing allocator. Two logical partitions, four shards so
	// the stack is goroutine-safe (this demo feeds it sequentially).
	ac, err := talus.NewAdaptiveCache("vantage", capacity, 16, 4, 2, "LRU", talus.DefaultMargin,
		talus.AdaptiveConfig{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	scanLines := int64(mb(5))
	randLines := int64(mb(2))
	rng := hash.NewSplitMix64(7)
	const batch = 4096
	scanBuf := make([]uint64, batch)
	randBuf := make([]uint64, batch)
	var scanPos uint64

	// 24 M accesses per partition, interleaved in batches.
	for fed := 0; fed < 24<<20; fed += batch {
		for i := range scanBuf {
			scanBuf[i] = scanPos | 1<<48
			scanPos = (scanPos + 1) % uint64(scanLines)
			randBuf[i] = rng.Uint64n(uint64(randLines)) | 2<<48
		}
		ac.AccessBatch(scanBuf, 0, nil)
		ac.AccessBatch(randBuf, 1, nil)
	}

	allocs := ac.Allocations()
	fmt.Printf("converged after %d epochs\n\n", ac.Epochs())
	for p, name := range []string{"scan (5 MB cyclic)", "rand (2 MB reuse)"} {
		cfg := ac.Config(p)
		fmt.Printf("partition %d — %s\n", p, name)
		fmt.Printf("  allocation: %.2f MB\n", talus.LinesToMB(float64(allocs[p])))
		if cfg.Degenerate {
			fmt.Printf("  talus:      single shadow partition (already on the hull)\n")
		} else {
			fmt.Printf("  talus:      α=%.2f MB β=%.2f MB ρ=%.3f → predicted %.1f misses/k-access\n",
				talus.LinesToMB(cfg.Alpha), talus.LinesToMB(cfg.Beta), cfg.Rho, cfg.PredictedMPKI)
		}
	}
	stats := ac.Shadowed().Inner().(*talus.ShardedCache).Stats()
	fmt.Printf("\noverall hit ratio: %.3f over %d accesses\n", stats.HitRate(), stats.Accesses)
}
