// libquantum: reproduce the paper's Fig. 1 on one cache size, end to end.
//
// This example runs the full Talus pipeline the way hardware would:
//
//  1. profile the libquantum clone's miss curve with a UMON pair
//     (conventional + extended coverage, §VI-C);
//  2. convexify and configure shadow partitions for a 24 MB LLC — right
//     on the plateau of the 32 MB cliff, where LRU wastes every line;
//  3. simulate both plain LRU and Talus and compare measured MPKI with
//     the hull's promise.
//
// Run with (takes ~20 s):
//
//	go run ./examples/libquantum
package main

import (
	"fmt"
	"log"

	"talus"
)

const llcMB = 24

func main() {
	spec, ok := talus.LookupWorkload("libquantum")
	if !ok {
		log.Fatal("libquantum clone missing")
	}
	size := int64(talus.MBToLines(llcMB))

	base := talus.SweepConfig{
		App:             spec,
		WarmupAccesses:  1 << 21,
		MeasureAccesses: 1 << 22,
		Seed:            7,
	}

	// Plain LRU: stuck on the plateau.
	lruMPKI, err := talus.RunPoint(base, size, 1)
	if err != nil {
		log.Fatal(err)
	}

	// Talus on Vantage partitioning, LRU replacement. RunPoint profiles
	// the miss curve with UMONs, computes the hull, programs the two
	// shadow partitions, and measures.
	cfg := base
	cfg.Talus = true
	cfg.Scheme = "vantage"
	talusMPKI, err := talus.RunPoint(cfg, size, 2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("libquantum @ %d MB LLC (32 MB cliff)\n", llcMB)
	fmt.Printf("  LRU:   %6.2f MPKI  (IPC %.3f)\n", lruMPKI, talus.IPCOf(spec, lruMPKI))
	fmt.Printf("  Talus: %6.2f MPKI  (IPC %.3f)\n", talusMPKI, talus.IPCOf(spec, talusMPKI))
	fmt.Printf("  speedup: %.2fx\n",
		talus.IPCOf(spec, talusMPKI)/talus.IPCOf(spec, lruMPKI))
	if talusMPKI < lruMPKI {
		fmt.Println("  → cliff removed: capacity on the plateau is useful again")
	}
}
