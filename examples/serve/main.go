// Serving-layer demo: the full production shape in one process. A
// talus.Store (keyed Get/Set over the adaptive runtime) is mounted on a
// real HTTP listener, and a client drives it the way a service would:
// two tenants with different reuse patterns, watched by the control
// loop, with the traffic recorded and replayed offline afterwards.
//
// The tenants recreate the paper's cliff scenario over HTTP at demo
// scale: "scanner" cycles through 0.375 MB of keys (an LRU miss-curve
// cliff just below the 0.5 MB cache), "reuser" hammers a 0.19 MB
// working set at random. A fair split would starve the scanner on
// every request; the adaptive loop measures both curves from the live
// HTTP traffic, convexifies them, and lands the scanner on its hull.
//
// Run with:
//
//	go run ./examples/serve
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"talus"
)

const (
	scanKeys = 6144 // 0.375 MB of 64-byte lines, one key per line
	randKeys = 3072 // 0.19 MB working set
	rounds   = 12   // scanner passes over its key space
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Server side: a 0.5 MB store for exactly these two tenants, with
	// the epoch driven by access count (the demo outruns any wall clock).
	st, err := talus.NewStore(
		talus.WithCapacityMB(0.5),
		talus.WithShards(4),
		talus.WithStaticTenants("scanner", "reuser"),
		talus.WithAdaptive(talus.AdaptiveConfig{EpochAccesses: 1 << 14, Seed: 42}),
	)
	if err != nil {
		return err
	}
	defer st.Close()

	recordDir, err := os.MkdirTemp("", "talus-serve-demo")
	if err != nil {
		return err
	}
	defer os.RemoveAll(recordDir)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: talus.NewServeHandler(st, talus.ServeConfig{RecordDir: recordDir})}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n", base)

	// Capture everything the front-end sees as a replayable trace
	// (clients name a bare file; the server keeps it in -record-dir).
	tracePath := filepath.Join(recordDir, "demo.trc")
	post(base+"/v1/record", `{"action":"start","path":"demo.trc","gzip":true}`, nil)

	// Client side: interleave a scanning tenant against a reusing one.
	client := &http.Client{}
	value := []byte("the cached bytes")
	var randState uint64 = 1
	for i := 0; i < rounds*scanKeys; i++ {
		do(client, base, "scanner", uint64(i%scanKeys), value)
		randState = randState*6364136223846793005 + 1442695040888963407
		do(client, base, "reuser", (randState>>33)%randKeys, value)
	}

	var rec struct {
		Records int64 `json:"records"`
	}
	post(base+"/v1/record", `{"action":"stop"}`, &rec)

	// What did the control loop decide? Ask the service itself.
	for _, ts := range st.StatsAll() {
		fmt.Printf("tenant %-8s partition %d: %7d gets, hit ratio %.3f, allocation %.3f MB\n",
			ts.Tenant, ts.Partition, ts.Gets, ts.HitRatio, talus.LinesToMB(float64(ts.AllocLines)))
	}
	fmt.Printf("epochs: %d, recorded %d accesses\n\n", st.Cache().Epochs(), rec.Records)

	// Close the loop: the recorded front-end traffic replays offline
	// through the adaptive simulator, tenant names intact.
	res, err := talus.RunAdaptiveTraceFile(talus.AdaptiveRunConfig{
		CapacityLines: int64(talus.MBToLines(0.5)),
		EpochAccesses: 1 << 14,
		Seed:          42,
	}, tracePath)
	if err != nil {
		return fmt.Errorf("replaying recorded traffic: %w", err)
	}
	fmt.Println("offline replay of the recorded traffic:")
	for i, name := range res.Apps {
		fmt.Printf("tenant %-8s miss ratio %.3f, allocation %.3f MB\n",
			name, res.MissRatio[i], talus.LinesToMB(float64(res.Allocs[i])))
	}
	return nil
}

// do issues one GET; a cold key 404s — the miss a backend fetch would
// absorb — and the client PUTs the value in, exactly a look-aside
// cache's fill path.
func do(client *http.Client, base, tenant string, key uint64, value []byte) {
	url := fmt.Sprintf("%s/v1/cache/%s/k%d", base, tenant, key)
	resp, err := client.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(value))
		putResp, err := client.Do(req)
		if err != nil {
			log.Fatal(err)
		}
		io.Copy(io.Discard, putResp.Body)
		putResp.Body.Close()
	}
}

// post sends a JSON body, fails loudly on a non-2xx response (a record
// request that silently failed would corrupt the rest of the demo), and
// decodes the response into out when non-nil.
func post(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d %s", url, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			log.Fatalf("POST %s: decoding %q: %v", url, raw, err)
		}
	}
}
