// Quickstart: the paper's worked example (§III, Figs. 2–3) in a dozen
// lines of API calls.
//
// An application accesses 2 MB of data at random plus 3 MB sequentially,
// at 24 LLC accesses per kilo-instruction. Under LRU its miss curve has a
// plateau at 12 MPKI from 2 MB to 5 MB, then a cliff. Given only that
// miss curve, Talus computes a shadow-partition configuration for a 4 MB
// cache that lands on the curve's convex hull: 6 MPKI instead of 12.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"talus"
)

func main() {
	mb := talus.MBToLines

	// The miss curve — normally measured by a UMON (see the libquantum
	// example); here entered directly from Fig. 3.
	missCurve := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(1), MPKI: 18},
		{Size: mb(2), MPKI: 12},     // the random working set fits
		{Size: mb(4.999), MPKI: 12}, // ... plateau ...
		{Size: mb(5), MPKI: 3},      // the scan fits: cliff
		{Size: mb(10), MPKI: 3},
	})

	// Step 1 — pre-processing: the convex hull is what Talus promises.
	hull := talus.ConvexHull(missCurve)
	fmt.Println("convex hull:", hull)

	// Step 2 — configure a 4 MB cache (margin 0 reproduces the paper's
	// exact numbers; use talus.DefaultMargin in production).
	cfg, err := talus.Configure(missCurve, mb(4), 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anchors:    α = %g MB, β = %g MB\n",
		talus.LinesToMB(cfg.Alpha), talus.LinesToMB(cfg.Beta))
	fmt.Printf("sampling:   ρ = %.4f of accesses into the α partition\n", cfg.RhoIdeal)
	fmt.Printf("shadow sizes: s1 = %.3f MB, s2 = %.3f MB\n",
		talus.LinesToMB(cfg.S1), talus.LinesToMB(cfg.S2))
	fmt.Printf("miss rate:  LRU %.1f MPKI → Talus %.1f MPKI\n",
		missCurve.Eval(mb(4)), cfg.PredictedMPKI)

	// Step 3 — the same numbers, realized by an actual simulated cache:
	// a 4 MB set-partitioned LLC with two shadow partitions, fed a
	// matching synthetic workload (see examples/libquantum for the
	// full monitor-driven loop).
	inner, err := talus.BuildCache("set", int64(mb(4)), 16, 2, "LRU", 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	shadowed, err := talus.NewShadowedCache(inner, 1, 0, 42)
	if err != nil {
		log.Fatal(err)
	}
	if err := shadowed.Reconfigure([]int64{inner.PartitionableCapacity()},
		[]*talus.MissCurve{missCurve}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nprogrammed shadow partitions (lines): %v\n", shadowed.ShadowSizes())
	fmt.Println("applied config:", shadowed.Config(0).Degenerate == false)
}
