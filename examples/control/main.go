// control: weighted tenants and the self-tuning control loop.
//
// Two identical tenants contend for a store whose cache fits neither
// working set. The run starts uniform — neither tenant is preferred
// and both hit alike — then the gold tenant's objective weight is
// raised to 4× at run time (the same adjustment an operator makes with
// PUT /v1/control/tenants/gold), so the allocator minimizes
// 4·misses(gold) + misses(bronze) and capacity flows to gold. Along
// the way the churn-driven epoch controller widens the
// reconfiguration interval while the measured curves are stable — the
// state GET /v1/control serves.
//
// Run with:
//
//	go run ./examples/control
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"talus"
)

func main() {
	st, err := talus.NewStore(
		talus.WithCapacityMB(0.5),
		talus.WithShards(2),
		talus.WithStaticTenants("gold", "bronze"),
		talus.WithAdaptive(talus.AdaptiveConfig{EpochAccesses: 1 << 15, Seed: 11}),
		talus.WithSelfTuning(0, 0), // churn-driven epoch budget, default bounds
	)
	if err != nil {
		log.Fatal(err)
	}
	defer st.Close()

	// Each tenant cycles through a key set ~1.5× its fair share of the
	// cache, so whoever holds more capacity hits more.
	const keys = 9000
	rng := rand.New(rand.NewPCG(1, 2))
	drive := func(rounds int) {
		for i := 0; i < rounds; i++ {
			for _, tenant := range []string{"gold", "bronze"} {
				k := fmt.Sprintf("k%05d", rng.IntN(keys))
				if _, _, err := st.Get(tenant, k); err == talus.ErrNotFound {
					if _, err := st.Set(tenant, k, []byte("v")); err != nil {
						log.Fatal(err)
					}
				}
			}
		}
	}
	report := func(label string) {
		cs := st.Control()
		fmt.Printf("\n%s\n", label)
		fmt.Printf("  control loop: %d epochs, churn %.3f, epoch budget %d accesses\n",
			cs.Epochs, cs.Churn, cs.EpochAccesses)
		for _, tc := range cs.Tenants {
			var ts talus.TenantStats
			for _, s := range st.StatsAll() {
				if s.Tenant == tc.Tenant {
					ts = s
				}
			}
			fmt.Printf("  %-6s weight %.0f  %6d lines  hit ratio %.3f\n",
				tc.Tenant, tc.Weight, tc.AllocLines, ts.HitRatio)
		}
	}

	drive(200_000)
	report("uniform weights — both tenants hit alike:")

	// The operator decision: gold's misses now count 4×.
	if err := st.SetTenantWeight("gold", 4); err != nil {
		log.Fatal(err)
	}
	drive(200_000)
	report("gold weighted 4× — capacity follows the objective:")

	fmt.Println("\nThe same adjustment over HTTP (talus-serve -control):")
	fmt.Println("  curl -X PUT -d '{\"weight\": 4}' localhost:8080/v1/control/tenants/gold")
	fmt.Println("  curl localhost:8080/v1/control")
}
