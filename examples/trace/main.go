// Trace demo: record a two-phase mix, replay it through the adaptive
// loop, and verify the replay reproduces the live run exactly.
//
// The workloads are deliberately phase-changing (each app alternates
// between a scanning phase and a random-reuse phase) so the recording
// captures non-stationary behaviour — the case where "rerun the
// generator" and "replay the stream" could plausibly diverge. They
// don't: recording happens at the feeder level, so the replayed stream
// is byte-identical to the live one and every miss count, allocation,
// and epoch matches.
//
// Run with:
//
//	go run ./examples/trace
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"talus"
	"talus/internal/sim"
	"talus/internal/workload"
)

func main() {
	mb := talus.MBToLines

	// Two-phase apps: a cliff-maker that periodically rests, and a
	// working-set app that periodically streams.
	twoPhase := func(name string, apki float64, scan, reuse int64) talus.WorkloadSpec {
		return talus.WorkloadSpec{
			Name: name, APKI: apki, CPIBase: 0.5, MLP: 2,
			Build: func() workload.Pattern {
				p, err := workload.NewPhased(
					workload.Stage{Pattern: &workload.Scan{Lines: scan}, Length: 1 << 19},
					workload.Stage{Pattern: &workload.Rand{Lines: reuse}, Length: 1 << 19},
				)
				if err != nil {
					log.Fatal(err)
				}
				return p
			},
		}
	}
	specs := []talus.WorkloadSpec{
		twoPhase("phased-scan", 20, int64(mb(3)), int64(mb(0.5))),
		twoPhase("phased-rand", 12, int64(mb(1)), int64(mb(1.5))),
	}

	cfg := talus.AdaptiveRunConfig{
		Apps:           specs,
		CapacityLines:  int64(mb(4)),
		EpochAccesses:  1 << 18,
		AccessesPerApp: 4 << 20,
		BatchLen:       2048,
		Seed:           42,
	}

	// Live run: generators feed the adaptive loop directly.
	live, err := talus.RunAdaptive(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Record the same mix (same seed → same streams) to a compact trace.
	dir, err := os.MkdirTemp("", "talus-trace")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "twophase.trc")
	count, err := sim.RecordSpecs(path, specs, cfg.AccessesPerApp, cfg.BatchLen, cfg.Seed, true)
	if err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("recorded %d accesses to %s (%.2f bytes/access after delta+gzip)\n\n",
		count, filepath.Base(path), float64(info.Size())/float64(count))

	// Replay: the trace, not the generators, drives the loop.
	replayCfg := cfg
	replayCfg.Apps = nil // app names and APKI travel inside the trace
	replay, err := talus.RunAdaptiveTraceFile(replayCfg, path)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %16s %16s\n", "app", "live miss-ratio", "replay miss-ratio")
	exact := true
	for i := range live.Apps {
		fmt.Printf("%-14s %16.4f %16.4f\n", live.Apps[i], live.MissRatio[i], replay.MissRatio[i])
		if live.MissRatio[i] != replay.MissRatio[i] || live.Allocs[i] != replay.Allocs[i] {
			exact = false
		}
	}
	fmt.Printf("\nepochs: live %d, replay %d\n", live.Epochs, replay.Epochs)
	if !exact || live.Epochs != replay.Epochs {
		log.Fatal("replay diverged from the live run")
	}
	fmt.Println("replay is exact: identical miss ratios, allocations, and epochs")
}
