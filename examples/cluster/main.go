// Cluster demo: the distributed serving tier in one process. Three
// talus.Store nodes come up on real listeners, each wrapped in the
// proxying HTTP handler with a shared consistent-hash ring
// (talus.NewCluster), and the closed-loop load harness drives a zipf
// workload through all three entry points. Every key is owned by
// exactly one node — requests landing elsewhere take one forwarded hop
// — so the fleet behaves like a single cache three times the size,
// which is exactly what the report at the end shows: per-node traffic
// near the ring's analytic shares and one aggregate hit ratio.
//
// Run with:
//
//	go run ./examples/cluster
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"

	"talus"
	"talus/internal/loadgen"
	"talus/internal/workload"
)

const (
	nodesN = 3
	keys   = 4000
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cluster demo: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	// Listeners first: ring membership is the set of dialable addresses,
	// so they must exist before any node's view of the cluster.
	listeners := make([]net.Listener, nodesN)
	nodes := make([]string, nodesN)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		defer ln.Close()
		listeners[i] = ln
		nodes[i] = ln.Addr().String()
	}

	// One store + proxying handler per node, all sharing the ring
	// parameters. Each node is a quarter-MB cache of its own; the ring
	// makes them act as one.
	servers := make([]*http.Server, nodesN)
	for i, ln := range listeners {
		cl, err := talus.NewCluster(talus.ClusterConfig{Self: nodes[i], Nodes: nodes, Seed: 42})
		if err != nil {
			return err
		}
		st, err := talus.NewStore(
			talus.WithCapacityMB(0.25),
			talus.WithShards(1),
			talus.WithPartitions(2),
			talus.WithNodeID(nodes[i]),
		)
		if err != nil {
			return err
		}
		defer st.Close()
		srv := &http.Server{Handler: talus.NewServeHandler(st, talus.ServeConfig{Cluster: cl})}
		servers[i] = srv
		go srv.Serve(ln)
		defer srv.Shutdown(context.Background())
	}
	log.Printf("cluster: %d nodes up: %v", nodesN, nodes)

	// Drive all three entry points with one zipf workload.
	runner, err := loadgen.New(loadgen.Config{
		Nodes:       nodes,
		Tenant:      "demo",
		Keys:        keys,
		ValueBytes:  128,
		Pattern:     workload.NewZipf(keys, 0.9),
		Workers:     4,
		MaxRequests: 8000,
		SetFraction: 0.25,
		Seed:        7,
	})
	if err != nil {
		return err
	}
	rep, err := runner.Run(context.Background())
	if err != nil {
		return err
	}

	fmt.Printf("\n%d requests in %.2fs (%.0f req/s), hit ratio %.3f\n",
		rep.Requests, rep.Seconds, rep.AchievedRPS, rep.HitRatio)
	fmt.Printf("latency µs: p50 %d  p99 %d  p999 %d  max %d\n",
		rep.Latency.P50, rep.Latency.P99, rep.Latency.P999, rep.Latency.Max)
	fmt.Println("per-node traffic (X-Talus-Node attribution vs ring share):")
	ring, err := talus.NewRing(nodes, 0, 42)
	if err != nil {
		return err
	}
	shares := ring.Shares()
	for _, n := range ring.Nodes() {
		fmt.Printf("  %-21s %5d served (%.1f%%), ring share %.1f%%\n",
			n, rep.PerNode[n], 100*float64(rep.PerNode[n])/float64(rep.Requests), 100*shares[n])
	}

	// The cluster endpoint any node serves: membership, vnodes, shares.
	resp, err := http.Get("http://" + nodes[0] + "/v1/cluster")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	fmt.Printf("\nGET /v1/cluster → %s (ring of %d, %d vnodes each)\n",
		resp.Status, len(nodes), talus.ClusterDefaultVNodes)
	return nil
}
