// multiprogram: a Fig. 12 story on one 8-app mix.
//
// Eight memory-intensive SPEC CPU2006 clones share an 8 MB LLC. Four
// management schemes compete:
//
//   - unpartitioned LRU (the baseline everything is normalized to);
//   - hill climbing on raw LRU miss curves — simple but stuck on cliffs;
//   - UCP Lookahead — effective but quadratic and all-or-nothing;
//   - Talus + hill climbing — the paper's pitch: convexified curves make
//     the trivial allocator both optimal and fair.
//
// Run with (takes ~1 min):
//
//	go run ./examples/multiprogram
package main

import (
	"fmt"
	"log"

	"talus"
	"talus/internal/stats"
)

func main() {
	names := []string{"libquantum", "omnetpp", "xalancbmk", "mcf", "lbm", "milc", "gcc", "sphinx3"}
	apps := make([]talus.WorkloadSpec, len(names))
	for i, n := range names {
		spec, ok := talus.LookupWorkload(n)
		if !ok {
			log.Fatalf("unknown workload %s", n)
		}
		apps[i] = spec
	}

	runMode := func(mode talus.Mode) *talus.MixResult {
		res, err := talus.RunMix(talus.MixConfig{
			Apps:          apps,
			CapacityLines: int64(talus.MBToLines(8)),
			Mode:          mode,
			WorkInstr:     20 << 20,
			Seed:          42,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := runMode(talus.ModeLRU)
	modes := []struct {
		label string
		mode  talus.Mode
	}{
		{"Hill/LRU", talus.ModeHillLRU},
		{"Lookahead/LRU", talus.ModeLookaheadLRU},
		{"Talus+Hill", talus.ModeTalusHill},
	}
	fmt.Printf("%-16s %-18s %-18s\n", "scheme", "weighted speedup", "harmonic speedup")
	fmt.Printf("%-16s %-18.3f %-18.3f\n", "LRU (baseline)", 1.0, 1.0)
	for _, m := range modes {
		res := runMode(m.mode)
		fmt.Printf("%-16s %-18.3f %-18.3f\n", m.label,
			stats.WeightedSpeedup(res.IPC, base.IPC),
			stats.HarmonicSpeedup(res.IPC, base.IPC))
	}
	fmt.Println("\nExpected ordering (paper §VII-D): Talus+Hill ≥ Lookahead > Hill/LRU ≈ 1.")
}
