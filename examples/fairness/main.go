// fairness: the paper's Fig. 13 case study on one configuration.
//
// Eight copies of the omnetpp clone (2 MB LRU cliff each) share an 8 MB
// LLC — enough for all copies to reach half their cliffs, but not for any
// to fit. Fair partitioning of LRU gives everyone a useless mid-plateau
// share; Lookahead sacrifices fairness by pushing a subset of copies past
// their cliffs; fair Talus speeds all copies up *equally* by
// interpolating along the plateau (§II-D's libquantum argument).
//
// Run with (takes ~30 s):
//
//	go run ./examples/fairness
package main

import (
	"fmt"
	"log"

	"talus"
	"talus/internal/stats"
)

func main() {
	spec, ok := talus.LookupWorkload("omnetpp")
	if !ok {
		log.Fatal("omnetpp clone missing")
	}
	apps := make([]talus.WorkloadSpec, 8)
	for i := range apps {
		apps[i] = spec
	}

	runMode := func(mode talus.Mode) *talus.MixResult {
		res, err := talus.RunMix(talus.MixConfig{
			Apps:          apps,
			CapacityLines: int64(talus.MBToLines(8)),
			Mode:          mode,
			WorkInstr:     20 << 20,
			Seed:          7,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	base := runMode(talus.ModeLRU)
	fmt.Println("8 × omnetpp (2 MB cliffs) on an 8 MB LLC")
	fmt.Printf("%-18s %-10s %-12s %-14s\n", "scheme", "speedup", "CoV of IPC", "slowest core")
	for _, m := range []struct {
		label string
		mode  talus.Mode
	}{
		{"LRU", talus.ModeLRU},
		{"Fair/LRU", talus.ModeFairLRU},
		{"Lookahead/LRU", talus.ModeLookaheadLRU},
		{"TA-DRRIP", talus.ModeTADRRIP},
		{"Talus+Fair", talus.ModeTalusFair},
	} {
		res := runMode(m.mode)
		slowest := res.IPC[0]
		for _, v := range res.IPC {
			if v < slowest {
				slowest = v
			}
		}
		fmt.Printf("%-18s %-10.3f %-12.4f %-14.3f\n", m.label,
			stats.WeightedSpeedup(res.IPC, base.IPC), stats.CoV(res.IPC), slowest)
	}
	fmt.Println("\nLower CoV = fairer. Talus+Fair should pair the best CoV with a real speedup;")
	fmt.Println("Lookahead buys throughput with gross unfairness (high CoV, slow losers).")
}
