package talus_test

import (
	"fmt"
	"os"
	"path/filepath"

	"talus"
)

// ExampleNew builds the full adaptive serving stack with zero options —
// the paper's 8-core CMP shape — feeds it a scanning stream, and forces
// one control-loop epoch: monitor → hull → Talus → allocator.
func ExampleNew() {
	ac, err := talus.New(talus.WithCapacityMB(1), talus.WithPartitions(2), talus.WithSeed(1))
	if err != nil {
		panic(err)
	}
	defer ac.Close()

	for i := 0; i < 100000; i++ {
		ac.Access(uint64(i%20000), 0) // partition 0 scans 20k lines
	}
	if err := ac.ForceEpoch(); err != nil {
		panic(err)
	}
	allocs := ac.Allocations()
	fmt.Println("partitions:", ac.NumLogical())
	fmt.Println("epochs run:", ac.Epochs())
	fmt.Println("allocated to scanner:", allocs[0] > allocs[1])
	// Output:
	// partitions: 2
	// epochs run: 1
	// allocated to scanner: true
}

// ExampleNewStore runs the keyed serving layer: tenants map to cache
// partitions, keys hash to line addresses, and every request drives the
// adaptive control loop while real bytes are stored exactly.
func ExampleNewStore() {
	st, err := talus.NewStore(talus.WithTenants("web"), talus.WithSeed(7))
	if err != nil {
		panic(err)
	}
	defer st.Close()

	if _, err := st.Set("web", "greeting", []byte("hello talus")); err != nil {
		panic(err)
	}
	value, hit, err := st.Get("web", "greeting")
	if err != nil {
		panic(err)
	}
	stats, _ := st.Stats("web")
	fmt.Printf("%s (cache hit: %v)\n", value, hit)
	fmt.Printf("gets=%d sets=%d\n", stats.Gets, stats.Sets)
	// Output:
	// hello talus (cache hit: true)
	// gets=1 sets=1
}

// ExampleRecordTrace captures two workload clones' interleaved access
// stream to a trace file, then loads it back as workload specs — the
// record/replay round trip the trace subsystem guarantees is exact.
func ExampleRecordTrace() {
	dir, err := os.MkdirTemp("", "talus-example")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mix.trc")

	libq, _ := talus.LookupWorkload("libquantum")
	mcf, _ := talus.LookupWorkload("mcf")
	n, err := talus.RecordTrace(path, []talus.WorkloadSpec{libq, mcf}, 10000, 512, 42, false)
	if err != nil {
		panic(err)
	}
	specs, err := talus.WorkloadsFromTrace(path)
	if err != nil {
		panic(err)
	}
	fmt.Println("records:", n)
	fmt.Println("replayable apps:", len(specs))
	// Output:
	// records: 20000
	// replayable apps: 2
}

// ExampleConfigure walks the paper's worked example (§III): a 4 MB cache
// on a miss curve with a plateau from 2 MB to 5 MB.
func ExampleConfigure() {
	mb := talus.MBToLines
	m := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(2), MPKI: 12},
		{Size: mb(4.999), MPKI: 12},
		{Size: mb(5), MPKI: 3},
		{Size: mb(10), MPKI: 3},
	})
	cfg, _ := talus.Configure(m, mb(4), 0)
	fmt.Printf("alpha=%gMB beta=%gMB rho=%.3f\n",
		talus.LinesToMB(cfg.Alpha), talus.LinesToMB(cfg.Beta), cfg.RhoIdeal)
	fmt.Printf("s1=%.3fMB s2=%.3fMB predicted=%.1f MPKI\n",
		talus.LinesToMB(cfg.S1), talus.LinesToMB(cfg.S2), cfg.PredictedMPKI)
	// Output:
	// alpha=2MB beta=5MB rho=0.333
	// s1=0.667MB s2=3.333MB predicted=6.0 MPKI
}

// ExampleConvexHull shows the pre-processing step: cliffs vanish from the
// curve handed to the partitioning algorithm.
func ExampleConvexHull() {
	m := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 20},
		{Size: 100, MPKI: 19},
		{Size: 200, MPKI: 19}, // plateau
		{Size: 300, MPKI: 2},  // cliff
		{Size: 400, MPKI: 2},
	})
	h := talus.ConvexHull(m)
	fmt.Println("convex:", h.IsConvex(1e-9))
	fmt.Println("at 250 lines:", h.Eval(250), "instead of", m.Eval(250))
	// Output:
	// convex: true
	// at 250 lines: 5 instead of 10.5
}

// ExampleOptimalBypass reproduces Fig. 5: bypassing helps on the cliff
// but cannot match the hull (Corollary 8).
func ExampleOptimalBypass() {
	mb := talus.MBToLines
	m := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(2), MPKI: 12},
		{Size: mb(4.999), MPKI: 12},
		{Size: mb(5), MPKI: 3},
		{Size: mb(10), MPKI: 3},
	})
	bc, _ := talus.OptimalBypass(m, mb(4))
	fmt.Printf("admit %.0f%% of accesses, cache acts as %gMB\n",
		bc.Rho*100, talus.LinesToMB(bc.Emulated))
	fmt.Printf("bypassing: %.1f MPKI, Talus: %.1f MPKI\n",
		bc.MPKI, talus.InterpolatedMPKI(m, mb(4)))
	// Output:
	// admit 80% of accesses, cache acts as 5MB
	// bypassing: 7.2 MPKI, Talus: 6.0 MPKI
}

// ExampleHillClimb shows why convexity matters: on hulls, trivial hill
// climbing matches the exact DP optimum.
func ExampleHillClimb() {
	cliff := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 20}, {Size: 490, MPKI: 20}, {Size: 500, MPKI: 1}, {Size: 800, MPKI: 1},
	})
	convex := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 10}, {Size: 200, MPKI: 4}, {Size: 800, MPKI: 2},
	})
	raw := []*talus.MissCurve{cliff, convex}

	onRaw, _ := talus.HillClimb(raw, 800, 10)
	onHulls, _ := talus.HillClimb(talus.Convexify(raw), 800, 10)
	fmt.Println("hill on raw curves: ", onRaw)
	fmt.Println("hill on Talus hulls:", onHulls)
	// On the raw curves, hill climbing sees zero marginal gain anywhere
	// on the cliff app's plateau and starves it; on the hulls it walks
	// straight to the cliff's foot.
	// Output:
	// hill on raw curves:  [0 800]
	// hill on Talus hulls: [500 300]
}
