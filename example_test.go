package talus_test

import (
	"fmt"

	"talus"
)

// ExampleConfigure walks the paper's worked example (§III): a 4 MB cache
// on a miss curve with a plateau from 2 MB to 5 MB.
func ExampleConfigure() {
	mb := talus.MBToLines
	m := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(2), MPKI: 12},
		{Size: mb(4.999), MPKI: 12},
		{Size: mb(5), MPKI: 3},
		{Size: mb(10), MPKI: 3},
	})
	cfg, _ := talus.Configure(m, mb(4), 0)
	fmt.Printf("alpha=%gMB beta=%gMB rho=%.3f\n",
		talus.LinesToMB(cfg.Alpha), talus.LinesToMB(cfg.Beta), cfg.RhoIdeal)
	fmt.Printf("s1=%.3fMB s2=%.3fMB predicted=%.1f MPKI\n",
		talus.LinesToMB(cfg.S1), talus.LinesToMB(cfg.S2), cfg.PredictedMPKI)
	// Output:
	// alpha=2MB beta=5MB rho=0.333
	// s1=0.667MB s2=3.333MB predicted=6.0 MPKI
}

// ExampleConvexHull shows the pre-processing step: cliffs vanish from the
// curve handed to the partitioning algorithm.
func ExampleConvexHull() {
	m := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 20},
		{Size: 100, MPKI: 19},
		{Size: 200, MPKI: 19}, // plateau
		{Size: 300, MPKI: 2},  // cliff
		{Size: 400, MPKI: 2},
	})
	h := talus.ConvexHull(m)
	fmt.Println("convex:", h.IsConvex(1e-9))
	fmt.Println("at 250 lines:", h.Eval(250), "instead of", m.Eval(250))
	// Output:
	// convex: true
	// at 250 lines: 5 instead of 10.5
}

// ExampleOptimalBypass reproduces Fig. 5: bypassing helps on the cliff
// but cannot match the hull (Corollary 8).
func ExampleOptimalBypass() {
	mb := talus.MBToLines
	m := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(2), MPKI: 12},
		{Size: mb(4.999), MPKI: 12},
		{Size: mb(5), MPKI: 3},
		{Size: mb(10), MPKI: 3},
	})
	bc, _ := talus.OptimalBypass(m, mb(4))
	fmt.Printf("admit %.0f%% of accesses, cache acts as %gMB\n",
		bc.Rho*100, talus.LinesToMB(bc.Emulated))
	fmt.Printf("bypassing: %.1f MPKI, Talus: %.1f MPKI\n",
		bc.MPKI, talus.InterpolatedMPKI(m, mb(4)))
	// Output:
	// admit 80% of accesses, cache acts as 5MB
	// bypassing: 7.2 MPKI, Talus: 6.0 MPKI
}

// ExampleHillClimb shows why convexity matters: on hulls, trivial hill
// climbing matches the exact DP optimum.
func ExampleHillClimb() {
	cliff := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 20}, {Size: 490, MPKI: 20}, {Size: 500, MPKI: 1}, {Size: 800, MPKI: 1},
	})
	convex := talus.MustCurve([]talus.Point{
		{Size: 0, MPKI: 10}, {Size: 200, MPKI: 4}, {Size: 800, MPKI: 2},
	})
	raw := []*talus.MissCurve{cliff, convex}

	onRaw, _ := talus.HillClimb(raw, 800, 10)
	onHulls, _ := talus.HillClimb(talus.Convexify(raw), 800, 10)
	fmt.Println("hill on raw curves: ", onRaw)
	fmt.Println("hill on Talus hulls:", onHulls)
	// On the raw curves, hill climbing sees zero marginal gain anywhere
	// on the cliff app's plateau and starves it; on the hulls it walks
	// straight to the cliff's foot.
	// Output:
	// hill on raw curves:  [0 800]
	// hill on Talus hulls: [500 300]
}
