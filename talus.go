// Package talus is a from-scratch reproduction of "Talus: A Simple Way to
// Remove Cliffs in Cache Performance" (Beckmann & Sanchez, HPCA 2015): a
// cache-partitioning technique that makes any replacement policy's miss
// curve convex by splitting each access stream across two hidden shadow
// partitions.
//
// This root package is the public API. It re-exports the building blocks
// a downstream user needs:
//
//   - miss curves and convex hulls (NewCurve, ConvexHull, Convexify);
//   - the Talus configuration math (Configure, Config) — Theorems 4 and 6;
//   - the runtime (NewShadowedCache) that routes sampled accesses into
//     shadow partitions of a partitioned cache built with BuildCache;
//   - optimal bypassing (OptimalBypass, BypassCurve) for §V-C comparisons;
//   - partitioning algorithms (HillClimb, Lookahead, Fair, OptimalDP);
//   - the SPEC CPU2006 workload clones (Workloads, LookupWorkload) and the
//     simulation harness (RunSweep, RunMix) that regenerates the paper's
//     figures;
//   - the concurrency layer: a sharded, per-shard-locked cache
//     (NewShardedCache) that serves concurrent traffic — alone or under
//     the Talus runtime via batched accesses (AccessBatch) — and the
//     parallel experiment engine (SweepConfig.Parallelism, RunMixes)
//     whose results are byte-identical to sequential runs;
//   - the online control loop: an epoch-driven runtime that monitors
//     the live stream with per-partition UMONs, convexifies the
//     measured curves, runs a pluggable Allocator over the hulls, and
//     live-reconfigures shadow sizes and sampling rates — the paper's
//     self-tuning end-to-end system (§VI), goroutine-safe over a
//     sharded inner cache. Construct it with New (functional options;
//     zero options yield a working stack) and, when configured with a
//     wall-clock epoch interval, Close it when done;
//   - the keyed serving layer (NewStore): Get/Set/Delete over
//     (tenant, key) pairs with real value storage, per-tenant Stats,
//     live measured/hulled miss Curves, a record hook capturing
//     front-end traffic as replayable traces, and a per-tenant
//     group-commit request batcher (WithBatchSize, WithBatchDeadline)
//     that coalesces in-flight requests into single cache access
//     batches — plus the stdlib HTTP front-end (NewServeHandler,
//     cmd/talus-serve) over it.
//
// See README.md for quickstarts, DESIGN.md for the system inventory,
// and EXPERIMENTS.md for paper-vs-measured results; runnable examples
// live in example_test.go and under examples/.
package talus

import (
	"talus/internal/adaptive"
	"talus/internal/alloc"
	"talus/internal/bypass"
	"talus/internal/cache"
	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/hull"
	"talus/internal/sim"
	"talus/internal/store"
	"talus/internal/workload"
)

// Re-exported core types. These are aliases, so values flow freely
// between the public API and the internal packages.
type (
	// MissCurve is a piecewise-linear miss curve: MPKI as a function of
	// cache size in lines.
	MissCurve = curve.Curve
	// Point is one (size, MPKI) measurement on a miss curve.
	Point = curve.Point
	// Config is a Talus shadow-partition configuration: hull anchors α
	// and β, sampling rate ρ, and shadow sizes s1, s2.
	Config = core.Config
	// ShadowedCache is the Talus runtime over a partitioned cache.
	ShadowedCache = core.ShadowedCache
	// PartitionedCache is the cache interface Talus partitions.
	PartitionedCache = core.PartitionedCache
	// BatchAccessor is the optional batch extension of PartitionedCache.
	BatchAccessor = core.BatchAccessor
	// ShardedCache is a goroutine-safe cache striped across locked shards.
	ShardedCache = cache.ShardedCache
	// CacheStats aggregates hit/miss counts over a cache's accesses.
	CacheStats = cache.Stats
	// BypassConfig describes an optimal-bypassing operating point.
	BypassConfig = bypass.Config
	// WorkloadSpec describes one synthetic application clone.
	WorkloadSpec = workload.Spec
	// SweepConfig parameterizes a single-program size sweep.
	SweepConfig = sim.SweepConfig
	// MixConfig parameterizes a multi-programmed run.
	MixConfig = sim.MixConfig
	// MixResult reports per-app outcomes of a multi-programmed run.
	MixResult = sim.MixResult
	// Mode names a multi-program cache-management scheme.
	Mode = sim.Mode
	// Allocator is the pluggable capacity-partitioning policy interface.
	Allocator = alloc.Allocator
	// AllocRequest is one capacity-allocation problem: per-partition
	// hulls plus the total/granule budget and optional per-partition
	// Weights, MinLines floors, and MaxLines caps. Build uniform
	// requests with NewAllocRequest.
	AllocRequest = alloc.Request
	// Objective scores an allocation against a request — the quantity
	// allocators minimize. See MinMiss, WeightedMiss, ObjectiveByName.
	Objective = alloc.Objective
	// AdaptiveCache is the online monitor→hull→Talus→allocator loop.
	AdaptiveCache = adaptive.Cache
	// AdaptiveConfig parameterizes the adaptive control loop.
	AdaptiveConfig = adaptive.Config
	// ControllerState is one read-only snapshot of the control loop:
	// epoch count, measured curve churn, the self-tuner's live epoch
	// budget and retention, and current allocations/weights.
	ControllerState = adaptive.ControllerState
	// ControlState is the store-level control snapshot: ControllerState
	// plus per-tenant weight/bounds/allocation rows (GET /v1/control).
	ControlState = store.ControlState
	// TenantControl is one tenant's row in a ControlState.
	TenantControl = store.TenantControl
	// LineBounds is a tenant's [Min, Max] allocation bound in lines.
	LineBounds = store.LineBounds
	// AdaptiveRunConfig parameterizes RunAdaptive experiments.
	AdaptiveRunConfig = sim.AdaptiveConfig
	// AdaptiveRunResult reports an adaptive run's steady-state outcomes.
	AdaptiveRunResult = sim.AdaptiveResult
)

// Shared allocator values (all stateless and goroutine-safe).
var (
	// HillClimbAllocator is greedy hill climbing — optimal on hulls.
	HillClimbAllocator = alloc.HillClimbAllocator
	// LookaheadAllocator is UCP's Lookahead heuristic.
	LookaheadAllocator = alloc.LookaheadAllocator
	// FairAllocator returns equal shares.
	FairAllocator = alloc.FairAllocator
	// OptimalDPAllocator is the exact dynamic program.
	OptimalDPAllocator = alloc.OptimalDPAllocator
)

// AllocatorByName resolves "hill", "lookahead", "fair", or "optimal" to
// its shared Allocator value.
func AllocatorByName(name string) (Allocator, error) { return alloc.ByName(name) }

// Shared objective values (stateless and goroutine-safe).
var (
	// MinMiss scores an allocation by total MPKI — the classic
	// minimize-overall-misses objective every unweighted allocator
	// optimizes.
	MinMiss = alloc.MinMiss
	// WeightedMiss scores by Σ wᵢ·MPKIᵢ using the request's weights —
	// the QoS objective behind WithWeights/WithTenantWeight.
	WeightedMiss = alloc.WeightedMiss
)

// ObjectiveByName resolves "min-miss" or "weighted-miss" (alias
// "weighted", "qos") to its shared Objective value.
func ObjectiveByName(name string) (Objective, error) { return alloc.ObjectiveByName(name) }

// NewAllocRequest builds the uniform AllocRequest — no weights, floors,
// or caps — equivalent to the plain (curves, total, granule) call.
func NewAllocRequest(curves []*MissCurve, total, granule int64) AllocRequest {
	return alloc.NewRequest(curves, total, granule)
}

// CurveDistance measures how much two miss curves differ, normalized to
// [0, 1]: ∫|a−b| over ∫max(a,b) across their union size range. The
// adaptive self-tuner uses it as the epoch-to-epoch churn signal.
func CurveDistance(a, b *MissCurve) float64 { return curve.Distance(a, b) }

// DefaultMargin is the paper's 5% sampling-rate safety margin (§VI-B).
const DefaultMargin = core.DefaultMargin

// LinesPerMB converts between the two capacity units used throughout:
// cache lines (64 B) and megabytes.
const LinesPerMB = curve.LinesPerMB

// MBToLines converts megabytes to cache lines.
func MBToLines(mbSize float64) float64 { return curve.MBToLines(mbSize) }

// LinesToMB converts cache lines to megabytes.
func LinesToMB(lines float64) float64 { return curve.LinesToMB(lines) }

// NewCurve builds a miss curve from points with strictly increasing sizes.
func NewCurve(points []Point) (*MissCurve, error) { return curve.New(points) }

// MustCurve is NewCurve that panics on invalid input.
func MustCurve(points []Point) *MissCurve { return curve.MustNew(points) }

// ConvexHull returns the lower convex hull of a miss curve — the curve
// Talus realizes (Theorem 6).
func ConvexHull(c *MissCurve) *MissCurve { return hull.Lower(c) }

// Convexify replaces each curve with its hull: the Talus pre-processing
// step that lets any partitioning algorithm assume convexity.
func Convexify(curves []*MissCurve) []*MissCurve { return core.Convexify(curves) }

// Configure computes the Talus shadow-partition configuration for a
// partition of s lines under miss curve m with the given safety margin.
func Configure(m *MissCurve, s, margin float64) (Config, error) {
	return core.Configure(m, s, margin)
}

// InterpolatedMPKI evaluates m's convex hull at size s: the miss rate
// Talus promises there.
func InterpolatedMPKI(m *MissCurve, s float64) float64 {
	return core.InterpolatedMPKI(m, s)
}

// NewShadowedCache wraps a partitioned cache (with 2×numLogical hardware
// partitions) in the Talus runtime.
func NewShadowedCache(inner PartitionedCache, numLogical int, margin float64, seed uint64) (*ShadowedCache, error) {
	return core.NewShadowedCache(inner, numLogical, margin, seed)
}

// BuildCache constructs a simulated LLC: scheme is one of "none", "way",
// "set", "vantage", "ideal"; policyName one of "LRU", "SRRIP", "BRRIP",
// "DRRIP", "TA-DRRIP", "DIP", "PDP", "Random".
//
// Deprecated: the positional-argument constructors are frozen. Use
// New with functional options (WithScheme, WithPolicy, ...) for the
// full adaptive stack; BuildCache remains for callers assembling the
// layers by hand (e.g. a ShadowedCache over a custom inner cache).
func BuildCache(scheme string, capacityLines int64, assoc, numPartitions int, policyName string, threads int, seed uint64) (PartitionedCache, error) {
	return sim.BuildCache(scheme, capacityLines, assoc, numPartitions, policyName, threads, seed)
}

// NewShardedCache constructs a goroutine-safe LLC striped across
// numShards independently locked shards, each built like BuildCache over
// its share of the capacity. The result serves concurrent traffic via
// Access/AccessBatch, aggregates Stats across shards, and — built with
// 2×N partitions — can back NewShadowedCache so the whole Talus runtime
// is safe for concurrent use.
//
// Deprecated: use New (WithShards selects the shard count); the
// options builder constructs the same sharded cache inside the
// adaptive stack. NewShardedCache remains for hand-assembled layers.
func NewShardedCache(scheme string, capacityLines int64, assoc, numShards, numPartitions int, policyName string, threads int, seed uint64) (*ShardedCache, error) {
	return sim.BuildShardedCache(scheme, capacityLines, assoc, numShards, numPartitions, policyName, threads, seed)
}

// NewAdaptiveCache constructs the zero-config adaptive serving stack: a
// sharded LLC with 2×numPartitions shadow partitions, the Talus runtime
// over it, and the epoch-driven control loop over that. Feed traffic
// with Access/AccessBatch; the cache measures miss curves, convexifies
// them, and reallocates capacity every cfg.EpochAccesses accesses. With
// numShards > 1 the whole stack is safe for concurrent use.
//
// Deprecated: use New — the same stack from functional options instead
// of eight positional arguments, with working defaults for every knob
// (TestNewMatchesDeprecatedConstructors proves them equivalent
// config-for-config).
func NewAdaptiveCache(scheme string, capacityLines int64, assoc, numShards, numPartitions int, policyName string, margin float64, cfg AdaptiveConfig) (*AdaptiveCache, error) {
	return sim.BuildAdaptiveCache(scheme, capacityLines, assoc, numShards, numPartitions, policyName, margin, cfg)
}

// RunAdaptive drives one adaptive-runtime experiment: per-app traffic
// interleaved into an AdaptiveCache, miss rates measured over the
// converged tail.
func RunAdaptive(cfg AdaptiveRunConfig) (*AdaptiveRunResult, error) { return sim.RunAdaptive(cfg) }

// RecordTrace captures the named specs' interleaved access stream — the
// exact stream RunAdaptive would feed at the same seed — to a binary
// trace file (internal/trace format) with per-app metadata embedded,
// returning the record count. gz enables gzip compression.
func RecordTrace(path string, specs []WorkloadSpec, accessesPerApp int64, batchLen int, seed uint64, gz bool) (int64, error) {
	return sim.RecordSpecs(path, specs, accessesPerApp, batchLen, seed, gz)
}

// RunAdaptiveTraceFile replays a recorded trace through the adaptive
// runtime: the cache is built for the trace's partition count and fed
// the recorded stream, reproducing the live run exactly at matching
// seed and batch length. cfg.Apps and cfg.AccessesPerApp are optional —
// the trace carries the traffic and (when recorded with metadata) the
// app parameters.
func RunAdaptiveTraceFile(cfg AdaptiveRunConfig, path string) (*AdaptiveRunResult, error) {
	return sim.RunAdaptiveTraceFile(cfg, path)
}

// WorkloadsFromTrace loads a recorded trace and returns one spec per
// recorded partition, each replaying its sub-stream — trace-backed apps
// for RunMix, RunSweep, or RunAdaptive. Anywhere an app name is
// accepted, "trace:<path>" resolves to the trace's flattened stream.
func WorkloadsFromTrace(path string) ([]WorkloadSpec, error) { return sim.SpecsFromTrace(path) }

// OptimalBypass finds the bypass fraction minimizing misses at size s
// (Eq. 6); BypassCurve evaluates it across sizes (Fig. 6).
func OptimalBypass(m *MissCurve, s float64) (BypassConfig, error) { return bypass.Optimal(m, s) }

// BypassCurve evaluates optimal bypassing at each size.
func BypassCurve(m *MissCurve, sizes []float64) (*MissCurve, error) {
	return bypass.Curve(m, sizes)
}

// HillClimb allocates total lines across partitions greedily — optimal on
// convex curves, stuck on cliffs.
func HillClimb(curves []*MissCurve, total, granule int64) ([]int64, error) {
	return alloc.HillClimb(curves, total, granule)
}

// Lookahead is UCP's quadratic partitioning heuristic.
func Lookahead(curves []*MissCurve, total, granule int64) ([]int64, error) {
	return alloc.Lookahead(curves, total, granule)
}

// Fair returns equal allocations.
func Fair(n int, total, granule int64) ([]int64, error) { return alloc.Fair(n, total, granule) }

// OptimalDP computes the exact misses-minimizing allocation by dynamic
// programming (ground truth for tests and ablations).
func OptimalDP(curves []*MissCurve, total, granule int64) ([]int64, error) {
	return alloc.OptimalDP(curves, total, granule)
}

// Workloads returns the names of all SPEC CPU2006 clones.
func Workloads() []string { return workload.Names() }

// MemoryIntensiveWorkloads returns the 18-app pool used for random mixes.
func MemoryIntensiveWorkloads() []string { return workload.MemoryIntensive() }

// LookupWorkload returns the named clone's spec.
func LookupWorkload(name string) (WorkloadSpec, bool) { return workload.Lookup(name) }

// RunSweep measures an app's miss curve over cache sizes.
func RunSweep(cfg SweepConfig) (*MissCurve, error) { return sim.RunSweep(cfg) }

// RunPoint measures an app's MPKI at one cache size.
func RunPoint(cfg SweepConfig, sizeLines int64, seed uint64) (float64, error) {
	return sim.RunPoint(cfg, sizeLines, seed)
}

// RunMix simulates a multi-programmed mix under a management mode.
func RunMix(cfg MixConfig) (*MixResult, error) { return sim.RunMix(cfg) }

// RunMixes simulates many mixes concurrently on a bounded worker pool
// (parallelism 0 → GOMAXPROCS); results are identical to sequential
// RunMix calls, in input order.
func RunMixes(cfgs []MixConfig, parallelism int) ([]*MixResult, error) {
	return sim.RunMixes(cfgs, parallelism)
}

// IPCOf evaluates the analytic core model for an app at a given MPKI.
func IPCOf(spec WorkloadSpec, mpki float64) float64 { return sim.IPC(spec, mpki) }

// Multi-program management modes (Figs. 12–13).
const (
	ModeLRU          = sim.ModeLRU
	ModeTADRRIP      = sim.ModeTADRRIP
	ModeHillLRU      = sim.ModeHillLRU
	ModeLookaheadLRU = sim.ModeLookaheadLRU
	ModeFairLRU      = sim.ModeFairLRU
	ModeTalusHill    = sim.ModeTalusHill
	ModeTalusFair    = sim.ModeTalusFair
)
