package hash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestH3Deterministic(t *testing.T) {
	a := NewH3(42, 8)
	b := NewH3(42, 8)
	for i := uint64(0); i < 1000; i++ {
		if a.Hash(i) != b.Hash(i) {
			t.Fatalf("same-seed hashes disagree at %d", i)
		}
	}
	c := NewH3(43, 8)
	same := 0
	for i := uint64(0); i < 1000; i++ {
		if a.Hash(i) == c.Hash(i) {
			same++
		}
	}
	// Two independent 8-bit hash functions agree ~1/256 of the time.
	if same > 30 {
		t.Fatalf("different seeds too correlated: %d/1000 collisions", same)
	}
}

func TestH3Width(t *testing.T) {
	for _, w := range []uint{1, 4, 8, 16, 32, 64} {
		h := NewH3(7, w)
		var limit uint64
		if w == 64 {
			limit = ^uint64(0)
		} else {
			limit = (1 << w) - 1
		}
		for i := uint64(0); i < 4096; i++ {
			if v := h.Hash(i * 2654435761); v > limit {
				t.Fatalf("width %d produced %d > %d", w, v, limit)
			}
		}
	}
}

func TestH3ZeroKey(t *testing.T) {
	// H3 of the zero key is always 0 (XOR of nothing): a known property
	// of the construction, harmless because line addresses are never 0
	// in the simulator's address spaces.
	if got := NewH3(99, 8).Hash(0); got != 0 {
		t.Fatalf("H3(0) = %d, want 0", got)
	}
}

func TestH3Uniformity(t *testing.T) {
	// Sequential keys must hash near-uniformly over 256 buckets: chi² test
	// with generous bounds.
	h := NewH3(12345, 8)
	const n = 1 << 16
	var buckets [256]int
	for i := uint64(0); i < n; i++ {
		buckets[h.Hash(i)]++
	}
	expected := float64(n) / 256
	chi2 := 0.0
	for _, c := range buckets {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 255 degrees of freedom: mean 255, stddev ~22.6. Allow ±8σ.
	if chi2 > 255+8*22.6 {
		t.Fatalf("chi2 = %g, too non-uniform", chi2)
	}
}

func TestH3Linearity(t *testing.T) {
	// H3 is linear over GF(2): h(a XOR b) = h(a) XOR h(b).
	h := NewH3(5, 16)
	f := func(a, b uint64) bool {
		return h.Hash(a^b) == h.Hash(a)^h.Hash(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestH3PanicsOnBadWidth(t *testing.T) {
	for _, w := range []uint{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("width %d should panic", w)
				}
			}()
			NewH3(1, w)
		}()
	}
}

func TestSamplerRates(t *testing.T) {
	s := NewSampler(777)
	const n = 1 << 16
	for _, rho := range []float64{0, 0.25, 1.0 / 3, 0.5, 0.75, 1} {
		s.SetRate(rho)
		count := 0
		for i := uint64(1); i <= n; i++ {
			if s.ToAlpha(i * 2654435761) {
				count++
			}
		}
		got := float64(count) / n
		// 8-bit limit register quantizes ρ to 1/256; allow quantization
		// plus sampling noise.
		if math.Abs(got-rho) > 0.01 {
			t.Errorf("rate %g sampled %g", rho, got)
		}
		if math.Abs(s.Rate()-rho) > 1.0/256 {
			t.Errorf("Rate() = %g, want ≈ %g", s.Rate(), rho)
		}
	}
}

func TestSamplerDeterministicPerAddress(t *testing.T) {
	// The same address must always route to the same partition at a fixed
	// rate: Talus depends on this to keep each line's stream assignment
	// stable between reconfigurations.
	s := NewSampler(1)
	s.SetRate(0.5)
	for i := uint64(0); i < 1000; i++ {
		first := s.ToAlpha(i)
		for k := 0; k < 3; k++ {
			if s.ToAlpha(i) != first {
				t.Fatal("sampler routing must be deterministic")
			}
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values from the splitmix64 reference implementation with
	// seed 0: first three outputs.
	s := NewSplitMix64(0)
	want := []uint64{0xE220A8397B1DCDAF, 0x6E789E6AA1B965F4, 0x06C45D188009454F}
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestSplitMix64Float64Range(t *testing.T) {
	s := NewSplitMix64(9)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	s := NewSplitMix64(3)
	for _, n := range []uint64{1, 2, 10, 1000, 1 << 40} {
		for i := 0; i < 1000; i++ {
			if v := s.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nUniform(t *testing.T) {
	s := NewSplitMix64(4)
	const buckets = 16
	const n = 1 << 16
	var counts [buckets]int
	for i := 0; i < n; i++ {
		counts[s.Uint64n(buckets)]++
	}
	expected := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-expected) > expected*0.1 {
			t.Fatalf("bucket %d count %d far from %g", b, c, expected)
		}
	}
}

func TestPerm(t *testing.T) {
	s := NewSplitMix64(8)
	p := s.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPanicsOnZeroN(t *testing.T) {
	s := NewSplitMix64(1)
	for _, f := range []func(){
		func() { s.Uint64n(0) },
		func() { s.Intn(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestReduceBounds(t *testing.T) {
	for _, n := range []int{1, 3, 16, 4096, 1000003} {
		for i := uint64(0); i < 4096; i++ {
			if v := Reduce(i*0x9E3779B97F4A7C15, n); v < 0 || v >= n {
				t.Fatalf("Reduce out of range: %d for n=%d", v, n)
			}
		}
	}
}

func TestReduceSequentialWindowUniform(t *testing.T) {
	// Regression test for a subtle pathology: with a power-of-two set
	// count, `hash % sets` keeps only the low output bits of H3; over a
	// small sequential address window (a scan) the GF(2) submatrix into
	// those bits can be rank-deficient for unlucky seeds, collapsing the
	// stream onto half (or fewer) of the sets. Reduce must spread a
	// sequential window over all buckets for EVERY seed.
	const sets = 4096
	const window = 1 << 17 // a 75K-line scan fits in 17 input bits
	for seed := uint64(0); seed < 20; seed++ {
		h := NewH3(seed*0x1234567+1, 64)
		used := make(map[int]bool, sets)
		for a := uint64(0); a < window; a += 7 {
			used[Reduce(h.Hash(a), sets)] = true
		}
		// With ~18.7K samples over 4096 buckets, expect nearly all
		// buckets touched; rank collapse would leave ≤ 2048.
		if len(used) < sets*9/10 {
			t.Fatalf("seed %d: sequential window touched only %d/%d sets", seed, len(used), sets)
		}
	}
}
