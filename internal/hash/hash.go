package hash

import "sync/atomic"

// H3 is a single member of the H3 universal hash family over 64-bit keys,
// producing values of up to 64 bits. The zero value is not useful; create
// instances with NewH3.
//
// The per-bit XOR matrix is folded into eight 256-entry byte tables
// (tab[p][b] = XOR of the matrix rows selected by byte value b at byte
// position p), turning the 64 conditional XORs of the textbook
// construction into at most eight table lookups per hash. The function
// computed is bit-identical to the per-bit form.
type H3 struct {
	tab  [8][256]uint64
	mask uint64 // restricts output to the configured width
}

// NewH3 returns an H3 hash with the given output width in bits (1–64),
// with its matrix drawn deterministically from seed. Two H3 instances with
// the same seed and width are identical; different seeds give independent
// family members.
func NewH3(seed uint64, widthBits uint) *H3 {
	if widthBits == 0 || widthBits > 64 {
		panic("hash: H3 width must be in [1,64] bits")
	}
	h := &H3{}
	if widthBits == 64 {
		h.mask = ^uint64(0)
	} else {
		h.mask = (uint64(1) << widthBits) - 1
	}
	s := NewSplitMix64(seed)
	var q [64]uint64 // one random word per input bit
	for i := range q {
		q[i] = s.Next() & h.mask
	}
	for p := 0; p < 8; p++ {
		for b := 1; b < 256; b++ {
			var v uint64
			for j := 0; j < 8; j++ {
				if b&(1<<j) != 0 {
					v ^= q[p*8+j]
				}
			}
			h.tab[p][b] = v
		}
	}
	return h
}

// Hash returns the H3 hash of key, an integer in [0, 2^width).
func (h *H3) Hash(key uint64) uint64 {
	return h.tab[0][key&0xFF] ^
		h.tab[1][key>>8&0xFF] ^
		h.tab[2][key>>16&0xFF] ^
		h.tab[3][key>>24&0xFF] ^
		h.tab[4][key>>32&0xFF] ^
		h.tab[5][key>>40&0xFF] ^
		h.tab[6][key>>48&0xFF] ^
		h.tab[7][key>>56&0xFF]
}

// Reduce maps a 64-bit hash to [0, n) by multiply-shift (the high word of
// hash × n). Unlike hash % n with a power-of-two n — which keeps only the
// low log2(n) output bits and can collapse when a workload's addresses
// span a small input window whose GF(2) submatrix into those bits is
// rank-deficient — Reduce mixes all 64 output bits into the index.
func Reduce(hashVal uint64, n int) int {
	hi, _ := mul64(hashVal, uint64(n))
	return int(hi)
}

// Sampler routes line addresses between two shadow partitions using an
// 8-bit H3 hash and a limit register, exactly as in the paper's hardware
// implementation (Fig. 7b). An address goes to the α partition when
// hash(addr) < limit, otherwise to the β partition. Limit 0 sends
// everything to β; limit 256 sends everything to α.
//
// The limit register is atomic, mirroring how hardware reprograms it
// between accesses: SetRate may race with concurrent ToAlpha calls
// without a data race (each access simply observes the old or the new
// rate). The H3 matrix itself is immutable after construction, so a
// Sampler is safe for concurrent use by multiple goroutines. Samplers
// must not be copied after first use.
type Sampler struct {
	h     *H3
	limit atomic.Uint32 // in [0, 256]
}

// NewSampler creates a Sampler with an 8-bit H3 hash drawn from seed.
// The initial limit is 256 (all accesses to α), which corresponds to an
// unpartitioned (Talus-disabled) configuration.
func NewSampler(seed uint64) *Sampler {
	s := &Sampler{h: NewH3(seed, 8)}
	s.limit.Store(256)
	return s
}

// SetRate programs the limit register so that approximately a fraction rho
// of addresses sample into α. rho is clamped to [0, 1].
func (s *Sampler) SetRate(rho float64) {
	switch {
	case rho <= 0:
		s.limit.Store(0)
	case rho >= 1:
		s.limit.Store(256)
	default:
		s.limit.Store(uint32(rho*256 + 0.5))
	}
}

// Rate returns the currently programmed sampling fraction, limit/256.
func (s *Sampler) Rate() float64 { return float64(s.limit.Load()) / 256 }

// ToAlpha reports whether addr routes to the α shadow partition.
func (s *Sampler) ToAlpha(addr uint64) bool {
	return uint32(s.h.Hash(addr)) < s.limit.Load()
}

// SplitMix64 is the splitmix64 PRNG (Steele, Lea & Flood). It passes
// BigCrush, needs only one uint64 of state, and every distinct seed yields
// an independent-looking stream, which makes it ideal for deriving the many
// deterministic seeds the simulator needs (one per workload, monitor,
// sampler...). It is also used directly as the simulator's random source to
// keep experiments reproducible across platforms, unlike math/rand whose
// stream is not guaranteed stable between Go releases.
type SplitMix64 struct{ state uint64 }

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 { return &SplitMix64{state: seed} }

// Next returns the next 64 pseudo-random bits.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	return Mix64(s.state)
}

// Mix64 applies the splitmix64 finalizer to x: a fast, bijective mix
// with full avalanche into every output bit. Unlike the H3 family —
// which is linear over GF(2), so linear relations among input bits
// survive into every output bit — Mix64's multiplies destroy linear
// structure. That matters when two hashes of the *same* address feed a
// comparison and an index (the monitor bank's sampling filter and set
// index): if both were H3 members, an unlucky seed pair can make the
// sampled subset systematically unbalanced across sets.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (s *SplitMix64) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("hash: Uint64n with n == 0")
	}
	// Multiply-shift rejection-free reduction (Lemire). The tiny modulo
	// bias is irrelevant at the simulator's n << 2^64 ranges.
	hi, _ := mul64(s.Next(), n)
	return hi
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). n must be positive.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("hash: Intn with n <= 0")
	}
	return int(s.Uint64n(uint64(n)))
}

// Perm returns a uniformly random permutation of [0, n), like rand.Perm.
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// mul64 returns the 128-bit product of x and y as (hi, lo).
func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}
