// Package hash implements the H3 family of universal hash functions
// (Carter & Wegman, STOC 1977) over 64-bit keys, plus the splitmix64
// pseudo-random generator used to seed them deterministically.
//
// Talus's hardware sampler (paper §VI-B) hashes each incoming line address
// with an inexpensive H3 hash to an 8-bit value and compares it against a
// per-partition limit register: values below the limit route the access to
// the α shadow partition, the rest to the β shadow partition. H3's pairwise
// independence is what makes the sampled stream statistically self-similar
// to the full stream (Assumption 3), which Theorem 4 relies on.
//
// An H3 hash of width w over n-bit keys is defined by an n×w random bit
// matrix Q: h(x) = XOR over all set bits i of x of Q[i]. In software we
// store Q as one w-bit word per input bit and XOR the words selected by the
// key's set bits.
package hash
