package curve

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// LineBytes is the cache line size assumed throughout the simulator,
// matching the paper's 64 B lines (Table I).
const LineBytes = 64

// LinesPerMB is the number of cache lines in one mebibyte.
const LinesPerMB = 1 << 20 / LineBytes // 16384

// MBToLines converts a capacity in MB to cache lines.
func MBToLines(mb float64) float64 { return mb * LinesPerMB }

// LinesToMB converts a capacity in cache lines to MB.
func LinesToMB(lines float64) float64 { return lines / LinesPerMB }

// Point is a single measurement on a miss curve: at Size cache lines, the
// workload incurs MPKI misses per kilo-instruction.
type Point struct {
	Size float64 `json:"size"` // cache size in lines
	MPKI float64 `json:"mpki"` // misses per kilo-instruction at that size
}

// Curve is an immutable miss curve: a piecewise-linear function through a
// set of points sorted by strictly increasing size. Between points the
// curve interpolates linearly; beyond its extremes it extrapolates flat
// (miss rates saturate at both ends). Construct curves with New or
// FromFunc; the zero value is an empty curve that evaluates to 0.
type Curve struct {
	pts []Point
}

// Errors returned by New.
var (
	ErrEmpty      = errors.New("curve: no points")
	ErrUnsorted   = errors.New("curve: sizes must be strictly increasing")
	ErrBadValue   = errors.New("curve: sizes and MPKIs must be finite and non-negative")
	ErrOutOfRange = errors.New("curve: size out of range")
)

// New builds a curve from points, which must have finite, non-negative
// sizes and MPKIs and strictly increasing sizes. The slice is copied.
func New(points []Point) (*Curve, error) {
	if len(points) == 0 {
		return nil, ErrEmpty
	}
	pts := make([]Point, len(points))
	copy(pts, points)
	for i, p := range pts {
		if math.IsNaN(p.Size) || math.IsInf(p.Size, 0) || p.Size < 0 ||
			math.IsNaN(p.MPKI) || math.IsInf(p.MPKI, 0) || p.MPKI < 0 {
			return nil, fmt.Errorf("%w: point %d = (%g, %g)", ErrBadValue, i, p.Size, p.MPKI)
		}
		if i > 0 && p.Size <= pts[i-1].Size {
			return nil, fmt.Errorf("%w: point %d size %g after %g", ErrUnsorted, i, p.Size, pts[i-1].Size)
		}
	}
	return &Curve{pts: pts}, nil
}

// MustNew is New that panics on error, for statically known-good inputs
// (tests, example curves).
func MustNew(points []Point) *Curve {
	c, err := New(points)
	if err != nil {
		panic(err)
	}
	return c
}

// FromFunc samples f at the given sizes (which must be strictly
// increasing) and builds a curve.
func FromFunc(f func(size float64) float64, sizes []float64) (*Curve, error) {
	pts := make([]Point, len(sizes))
	for i, s := range sizes {
		pts[i] = Point{Size: s, MPKI: f(s)}
	}
	return New(pts)
}

// Points returns a copy of the curve's points.
func (c *Curve) Points() []Point {
	if c == nil {
		return nil
	}
	pts := make([]Point, len(c.pts))
	copy(pts, c.pts)
	return pts
}

// NumPoints returns the number of points in the curve.
func (c *Curve) NumPoints() int {
	if c == nil {
		return 0
	}
	return len(c.pts)
}

// PointAt returns the i-th point.
func (c *Curve) PointAt(i int) Point { return c.pts[i] }

// MinSize returns the smallest size with a measurement.
func (c *Curve) MinSize() float64 {
	if c == nil || len(c.pts) == 0 {
		return 0
	}
	return c.pts[0].Size
}

// MaxSize returns the largest size with a measurement.
func (c *Curve) MaxSize() float64 {
	if c == nil || len(c.pts) == 0 {
		return 0
	}
	return c.pts[len(c.pts)-1].Size
}

// Eval returns the MPKI at size s, interpolating linearly between points
// and extrapolating flat beyond the measured range. An empty curve
// evaluates to 0.
func (c *Curve) Eval(s float64) float64 {
	if c == nil || len(c.pts) == 0 {
		return 0
	}
	pts := c.pts
	if s <= pts[0].Size {
		return pts[0].MPKI
	}
	if s >= pts[len(pts)-1].Size {
		return pts[len(pts)-1].MPKI
	}
	// Binary search for the segment containing s.
	i := sort.Search(len(pts), func(i int) bool { return pts[i].Size > s })
	lo, hi := pts[i-1], pts[i]
	frac := (s - lo.Size) / (hi.Size - lo.Size)
	return lo.MPKI + frac*(hi.MPKI-lo.MPKI)
}

// Scale applies Theorem 4's sampling transform: pseudo-randomly sampling a
// fraction rho of the access stream yields the miss curve
//
//	m'(s') = ρ · m(s'/ρ)
//
// Every point (x, y) maps to (ρ·x, ρ·y). rho must be in (0, 1]; rho = 1
// returns a copy of the receiver.
func (c *Curve) Scale(rho float64) (*Curve, error) {
	if !(rho > 0 && rho <= 1) {
		return nil, fmt.Errorf("curve: Scale rho %g outside (0,1]", rho)
	}
	pts := make([]Point, len(c.pts))
	for i, p := range c.pts {
		pts[i] = Point{Size: p.Size * rho, MPKI: p.MPKI * rho}
	}
	return New(pts)
}

// Add returns the pointwise sum of two curves, evaluated at the union of
// their size grids. This is how the aggregate miss rate of two shadow
// partitions (Eq. 2) composes.
func (c *Curve) Add(other *Curve) (*Curve, error) {
	if c == nil || other == nil || len(c.pts) == 0 || len(other.pts) == 0 {
		return nil, ErrEmpty
	}
	sizes := mergeSizes(c.pts, other.pts)
	pts := make([]Point, len(sizes))
	for i, s := range sizes {
		pts[i] = Point{Size: s, MPKI: c.Eval(s) + other.Eval(s)}
	}
	return New(pts)
}

// ScaleMPKI returns a copy of the curve with every MPKI multiplied by k
// (k ≥ 0). Used to re-weight per-partition curves by access share.
func (c *Curve) ScaleMPKI(k float64) (*Curve, error) {
	if k < 0 || math.IsNaN(k) || math.IsInf(k, 0) {
		return nil, fmt.Errorf("curve: ScaleMPKI factor %g invalid", k)
	}
	pts := make([]Point, len(c.pts))
	for i, p := range c.pts {
		pts[i] = Point{Size: p.Size, MPKI: p.MPKI * k}
	}
	return New(pts)
}

// IsNonIncreasing reports whether MPKI never increases with size. LRU
// curves always satisfy this (the stack property); high-performance
// policies may not.
func (c *Curve) IsNonIncreasing() bool {
	for i := 1; i < len(c.pts); i++ {
		if c.pts[i].MPKI > c.pts[i-1].MPKI+1e-12 {
			return false
		}
	}
	return true
}

// IsConvex reports whether the curve is convex: its slope is non-decreasing
// with size (for miss curves, slopes are ≤ 0 and shrink in magnitude).
// Convexity is exactly the absence of performance cliffs (paper §II-D).
// tol absorbs floating-point noise; tol = 0 demands exact convexity.
func (c *Curve) IsConvex(tol float64) bool {
	for i := 2; i < len(c.pts); i++ {
		a, b, d := c.pts[i-2], c.pts[i-1], c.pts[i]
		// b must lie on or below segment a—d: cross(ab, ad) tells the turn.
		cross := (b.Size-a.Size)*(d.MPKI-a.MPKI) - (b.MPKI-a.MPKI)*(d.Size-a.Size)
		// For a lower-convex sequence the middle point is below the chord,
		// i.e. cross ≥ 0 (counter-clockwise or collinear).
		if cross < -tol*math.Max(1, math.Abs(a.MPKI)+math.Abs(d.MPKI))*(d.Size-a.Size) {
			return false
		}
	}
	return true
}

// String renders the curve compactly for debugging: "(size→mpki, ...)"
// with sizes in MB.
func (c *Curve) String() string {
	if c == nil || len(c.pts) == 0 {
		return "curve()"
	}
	var b strings.Builder
	b.WriteString("curve(")
	for i, p := range c.pts {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%.3gMB→%.3g", LinesToMB(p.Size), p.MPKI)
	}
	b.WriteString(")")
	return b.String()
}

// mergeSizes returns the sorted union of the size grids of two point sets.
func mergeSizes(a, b []Point) []float64 {
	out := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i].Size < b[j].Size):
			out = append(out, a[i].Size)
			i++
		case i >= len(a) || b[j].Size < a[i].Size:
			out = append(out, b[j].Size)
			j++
		default: // equal
			out = append(out, a[i].Size)
			i++
			j++
		}
	}
	return out
}
