package curve

import (
	"math"
	"testing"
)

func TestDistance(t *testing.T) {
	a := MustNew([]Point{{Size: 0, MPKI: 10}, {Size: 1000, MPKI: 2}})
	same := MustNew([]Point{{Size: 0, MPKI: 10}, {Size: 500, MPKI: 6}, {Size: 1000, MPKI: 2}})
	zero := MustNew([]Point{{Size: 0, MPKI: 0}, {Size: 1000, MPKI: 0}})

	if d := Distance(a, a); d != 0 {
		t.Fatalf("Distance(a,a) = %g", d)
	}
	// Identical function on a refined grid: still zero.
	if d := Distance(a, same); d > 1e-12 {
		t.Fatalf("Distance(a, refined a) = %g", d)
	}
	if d := Distance(nil, nil); d != 0 {
		t.Fatalf("Distance(nil,nil) = %g", d)
	}
	if d := Distance(a, nil); d != 1 {
		t.Fatalf("Distance(a,nil) = %g", d)
	}
	if d := Distance(nil, a); d != 1 {
		t.Fatalf("Distance(nil,a) = %g", d)
	}
	// A vanished partition whose last curve was flat zero is not churn.
	if d := Distance(nil, zero); d != 0 {
		t.Fatalf("Distance(nil,zero) = %g", d)
	}
	if d := Distance(a, zero); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Distance(a,zero) = %g, want 1 (no overlap)", d)
	}
	// Scaling the whole curve by 2: gap = mass/2 ⇒ distance 0.5.
	twice := MustNew([]Point{{Size: 0, MPKI: 20}, {Size: 1000, MPKI: 4}})
	if d := Distance(a, twice); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("Distance(a, 2a) = %g, want 0.5", d)
	}
	// Symmetry and range on assorted pairs.
	b := MustNew([]Point{{Size: 0, MPKI: 7}, {Size: 300, MPKI: 7}, {Size: 900, MPKI: 1}})
	for _, pair := range [][2]*Curve{{a, b}, {a, twice}, {b, zero}, {same, b}} {
		d1, d2 := Distance(pair[0], pair[1]), Distance(pair[1], pair[0])
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("asymmetric: %g vs %g", d1, d2)
		}
		if d1 < 0 || d1 > 1 {
			t.Fatalf("out of range: %g", d1)
		}
	}
	// A small perturbation must register as small churn, not zero.
	nudged := MustNew([]Point{{Size: 0, MPKI: 10.2}, {Size: 1000, MPKI: 2}})
	if d := Distance(a, nudged); d <= 0 || d > 0.05 {
		t.Fatalf("Distance(a, nudged) = %g, want small positive", d)
	}
}
