package curve

import (
	"math"
	"testing"
)

func TestDistance(t *testing.T) {
	a := MustNew([]Point{{Size: 0, MPKI: 10}, {Size: 1000, MPKI: 2}})
	same := MustNew([]Point{{Size: 0, MPKI: 10}, {Size: 500, MPKI: 6}, {Size: 1000, MPKI: 2}})
	zero := MustNew([]Point{{Size: 0, MPKI: 0}, {Size: 1000, MPKI: 0}})

	if d := Distance(a, a); d != 0 {
		t.Fatalf("Distance(a,a) = %g", d)
	}
	// Identical function on a refined grid: still zero.
	if d := Distance(a, same); d > 1e-12 {
		t.Fatalf("Distance(a, refined a) = %g", d)
	}
	if d := Distance(nil, nil); d != 0 {
		t.Fatalf("Distance(nil,nil) = %g", d)
	}
	if d := Distance(a, nil); d != 1 {
		t.Fatalf("Distance(a,nil) = %g", d)
	}
	if d := Distance(nil, a); d != 1 {
		t.Fatalf("Distance(nil,a) = %g", d)
	}
	// A vanished partition whose last curve was flat zero is not churn.
	if d := Distance(nil, zero); d != 0 {
		t.Fatalf("Distance(nil,zero) = %g", d)
	}
	if d := Distance(a, zero); math.Abs(d-1) > 1e-12 {
		t.Fatalf("Distance(a,zero) = %g, want 1 (no overlap)", d)
	}
	// Scaling the whole curve by 2: gap = mass/2 ⇒ distance 0.5.
	twice := MustNew([]Point{{Size: 0, MPKI: 20}, {Size: 1000, MPKI: 4}})
	if d := Distance(a, twice); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("Distance(a, 2a) = %g, want 0.5", d)
	}
	// Symmetry and range on assorted pairs.
	b := MustNew([]Point{{Size: 0, MPKI: 7}, {Size: 300, MPKI: 7}, {Size: 900, MPKI: 1}})
	for _, pair := range [][2]*Curve{{a, b}, {a, twice}, {b, zero}, {same, b}} {
		d1, d2 := Distance(pair[0], pair[1]), Distance(pair[1], pair[0])
		if math.Abs(d1-d2) > 1e-12 {
			t.Fatalf("asymmetric: %g vs %g", d1, d2)
		}
		if d1 < 0 || d1 > 1 {
			t.Fatalf("out of range: %g", d1)
		}
	}
	// A small perturbation must register as small churn, not zero.
	nudged := MustNew([]Point{{Size: 0, MPKI: 10.2}, {Size: 1000, MPKI: 2}})
	if d := Distance(a, nudged); d <= 0 || d > 0.05 {
		t.Fatalf("Distance(a, nudged) = %g, want small positive", d)
	}
}

func TestDistanceEdgeCases(t *testing.T) {
	// Single-point curves: the union grid degenerates to one size, so
	// the comparison falls back to relative height.
	p5 := MustNew([]Point{{Size: 100, MPKI: 5}})
	p10 := MustNew([]Point{{Size: 100, MPKI: 10}})
	p0 := MustNew([]Point{{Size: 100, MPKI: 0}})
	if d := Distance(p5, p5); d != 0 {
		t.Fatalf("Distance(point, itself) = %g", d)
	}
	if d := Distance(p5, p10); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("Distance(5, 10) = %g, want 0.5", d)
	}
	if d := Distance(p0, p0); d != 0 {
		t.Fatalf("Distance(zero point, zero point) = %g", d)
	}
	// One-point vs zero-height one-point: no overlap at all.
	if d := Distance(p5, p0); d != 1 {
		t.Fatalf("Distance(5, 0) = %g, want 1", d)
	}
	// Two single-point curves at different sizes still compare via flat
	// extrapolation over the two-point union grid.
	q := MustNew([]Point{{Size: 900, MPKI: 5}})
	if d := Distance(p5, q); d != 0 {
		t.Fatalf("Distance(flat 5 @100, flat 5 @900) = %g, want 0 (same extrapolated function)", d)
	}
	// A single point against a flat segment of the same height: the
	// functions agree everywhere by extrapolation.
	flat := MustNew([]Point{{Size: 0, MPKI: 5}, {Size: 1000, MPKI: 5}})
	if d := Distance(p5, flat); d > 1e-12 {
		t.Fatalf("Distance(point 5, flat 5) = %g, want 0", d)
	}
	// Mismatched point counts and disjoint grids: well-defined, bounded,
	// symmetric.
	many := MustNew([]Point{
		{Size: 1, MPKI: 9}, {Size: 7, MPKI: 8}, {Size: 13, MPKI: 6},
		{Size: 400, MPKI: 4}, {Size: 2000, MPKI: 1},
	})
	few := MustNew([]Point{{Size: 5, MPKI: 9}, {Size: 1500, MPKI: 1}})
	d1, d2 := Distance(many, few), Distance(few, many)
	if math.Abs(d1-d2) > 1e-12 {
		t.Fatalf("mismatched-grid asymmetry: %g vs %g", d1, d2)
	}
	if d1 < 0 || d1 > 1 {
		t.Fatalf("mismatched-grid distance %g out of [0,1]", d1)
	}
	// The zero-value Curve behaves as empty.
	var zeroVal Curve
	if d := Distance(&zeroVal, &zeroVal); d != 0 {
		t.Fatalf("Distance(zero-value, zero-value) = %g", d)
	}
	if d := Distance(&zeroVal, p5); d != 1 {
		t.Fatalf("Distance(zero-value, point) = %g, want 1", d)
	}
}
