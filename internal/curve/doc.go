// Package curve defines the miss-curve abstraction that all of Talus
// operates on: misses per kilo-instruction (MPKI) as a function of cache
// size. Talus's central claim is that the miss curve is the *only*
// information needed to remove performance cliffs (paper §III), so this
// type is the contract between monitors (which produce curves), the Talus
// core (which convexifies them), and partitioning algorithms (which
// consume them).
//
// Sizes are measured in cache lines throughout (64-byte lines; use
// MBToLines/LinesToMB at presentation boundaries). Sizes are float64 so
// that Theorem 4's scaling transform (which produces fractional sizes such
// as ρ·α) stays exact; concrete cache configurations round to whole lines
// at the last moment.
//
// Distance measures how much two curves differ (normalized L1 over the
// union size range, in [0, 1]) — the epoch-to-epoch churn signal the
// adaptive self-tuner steers by.
package curve
