// Distance: the normalized L1 gap between two miss curves — the churn
// signal the adaptive runtime's self-tuning controller feeds on. When
// successive epochs' measured curves barely move, reconfiguring (and
// EWMA-decaying the monitors) every epoch is pure waste; when they jump,
// the loop should measure faster. Distance turns "how much did the curve
// move" into one dimensionless number.

package curve

import "math"

// Distance returns the normalized L1 distance between two curves:
//
//	∫ |a(s) − b(s)| ds  /  ∫ max(a(s), b(s)) ds
//
// integrated by the trapezoid rule over the union of the two size grids
// (both curves are evaluated with their usual flat extrapolation, so the
// grids need not match). The result is in [0, 1]: 0 for identical
// curves, approaching 1 as the curves stop overlapping at all. Both the
// integrand and the curves are piecewise-linear, but |a−b| can kink
// between grid points where the curves cross; the trapezoid rule on the
// union grid slightly underestimates the gap there, which is fine for a
// churn signal. Edge cases: two nil/empty (or identically zero) curves
// are distance 0; exactly one nil/empty curve is distance 1 (a partition
// appearing or vanishing is maximal churn).
func Distance(a, b *Curve) float64 {
	aEmpty := a == nil || len(a.pts) == 0
	bEmpty := b == nil || len(b.pts) == 0
	if aEmpty && bEmpty {
		return 0
	}
	if aEmpty || bEmpty {
		// Flat-zero curves are as empty as nil ones.
		full := a
		if aEmpty {
			full = b
		}
		if full.isZero() {
			return 0
		}
		return 1
	}
	sizes := mergeSizes(a.pts, b.pts)
	if len(sizes) == 1 {
		// Degenerate single-point grids: compare heights directly.
		ya, yb := a.Eval(sizes[0]), b.Eval(sizes[0])
		if hi := math.Max(ya, yb); hi > 0 {
			return math.Abs(ya-yb) / hi
		}
		return 0
	}
	var gap, mass float64
	prevS := sizes[0]
	prevGap := math.Abs(a.Eval(prevS) - b.Eval(prevS))
	prevMax := math.Max(a.Eval(prevS), b.Eval(prevS))
	for _, s := range sizes[1:] {
		ya, yb := a.Eval(s), b.Eval(s)
		g := math.Abs(ya - yb)
		m := math.Max(ya, yb)
		ds := s - prevS
		gap += (prevGap + g) / 2 * ds
		mass += (prevMax + m) / 2 * ds
		prevS, prevGap, prevMax = s, g, m
	}
	if mass <= 0 {
		return 0
	}
	d := gap / mass
	if d > 1 {
		return 1
	}
	return d
}

// isZero reports whether every point of the curve has zero MPKI.
func (c *Curve) isZero() bool {
	for _, p := range c.pts {
		if p.MPKI != 0 {
			return false
		}
	}
	return true
}
