package curve

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name string
		pts  []Point
		ok   bool
	}{
		{"empty", nil, false},
		{"single", []Point{{0, 10}}, true},
		{"sorted", []Point{{0, 10}, {5, 5}, {10, 1}}, true},
		{"unsorted", []Point{{5, 5}, {0, 10}}, false},
		{"duplicate size", []Point{{5, 5}, {5, 4}}, false},
		{"negative size", []Point{{-1, 5}}, false},
		{"negative mpki", []Point{{1, -5}}, false},
		{"nan size", []Point{{math.NaN(), 5}}, false},
		{"nan mpki", []Point{{1, math.NaN()}}, false},
		{"inf mpki", []Point{{1, math.Inf(1)}}, false},
		{"inf size", []Point{{math.Inf(1), 1}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.pts)
			if (err == nil) != tc.ok {
				t.Fatalf("New(%v) error = %v, want ok=%v", tc.pts, err, tc.ok)
			}
		})
	}
}

func TestNewCopiesInput(t *testing.T) {
	pts := []Point{{0, 10}, {10, 5}}
	c := MustNew(pts)
	pts[0].MPKI = 999
	if c.PointAt(0).MPKI != 10 {
		t.Fatal("New must copy its input slice")
	}
}

func TestEvalInterpolation(t *testing.T) {
	c := MustNew([]Point{{0, 20}, {10, 10}, {20, 10}, {30, 0}})
	cases := []struct {
		s, want float64
	}{
		{-5, 20},   // clamp below
		{0, 20},    // exact point
		{5, 15},    // interpolate
		{10, 10},   // exact point
		{15, 10},   // flat segment
		{25, 5},    // interpolate down the cliff
		{30, 0},    // last point
		{100, 0},   // clamp above
		{12.5, 10}, // inside flat region
	}
	for _, tc := range cases {
		if got := c.Eval(tc.s); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Eval(%g) = %g, want %g", tc.s, got, tc.want)
		}
	}
}

func TestEvalEmptyAndNil(t *testing.T) {
	var c *Curve
	if got := c.Eval(5); got != 0 {
		t.Fatalf("nil curve Eval = %g, want 0", got)
	}
	if (&Curve{}).Eval(5) != 0 {
		t.Fatal("zero curve should evaluate to 0")
	}
	if c.NumPoints() != 0 || c.MinSize() != 0 || c.MaxSize() != 0 {
		t.Fatal("nil curve accessors should be zero")
	}
}

func TestScaleTheorem4(t *testing.T) {
	// m'(s') = ρ·m(s'/ρ): check at several sizes and rates.
	c := MustNew([]Point{{0, 24}, {32768, 12}, {81920, 3}, {163840, 3}})
	for _, rho := range []float64{0.1, 1.0 / 3, 0.5, 0.9, 1} {
		scaled, err := c.Scale(rho)
		if err != nil {
			t.Fatalf("Scale(%g): %v", rho, err)
		}
		for _, s := range []float64{0, 1000, 20000, 50000, 100000} {
			want := rho * c.Eval(s/rho)
			if got := scaled.Eval(s * 1); !almostEq(got, rho*c.Eval(s/rho), 1e-9) {
				t.Errorf("rho=%g: scaled(%g) = %g, want %g", rho, s, got, want)
			}
		}
	}
}

func TestScaleIdentity(t *testing.T) {
	c := MustNew([]Point{{0, 10}, {100, 5}})
	s, err := c.Scale(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.NumPoints(); i++ {
		if s.PointAt(i) != c.PointAt(i) {
			t.Fatalf("Scale(1) changed point %d", i)
		}
	}
}

func TestScaleRejectsBadRho(t *testing.T) {
	c := MustNew([]Point{{0, 10}, {100, 5}})
	for _, rho := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := c.Scale(rho); err == nil {
			t.Errorf("Scale(%g) should fail", rho)
		}
	}
}

func TestAdd(t *testing.T) {
	a := MustNew([]Point{{0, 10}, {10, 0}})
	b := MustNew([]Point{{0, 6}, {5, 3}, {20, 1}})
	sum, err := a.Add(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{0, 2.5, 5, 7, 10, 15, 20, 30} {
		want := a.Eval(s) + b.Eval(s)
		if got := sum.Eval(s); !almostEq(got, want, 1e-9) {
			t.Errorf("sum(%g) = %g, want %g", s, got, want)
		}
	}
	// The merged grid is the union of both curves' sizes: {0, 5, 10, 20}.
	if sum.NumPoints() != 4 {
		t.Errorf("merged points = %d, want 4", sum.NumPoints())
	}
}

func TestScaleMPKI(t *testing.T) {
	c := MustNew([]Point{{0, 10}, {10, 4}})
	d, err := c.ScaleMPKI(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(d.Eval(0), 5, 1e-12) || !almostEq(d.Eval(10), 2, 1e-12) {
		t.Fatalf("ScaleMPKI wrong: %v", d)
	}
	if _, err := c.ScaleMPKI(-1); err == nil {
		t.Fatal("negative factor should fail")
	}
}

func TestIsNonIncreasing(t *testing.T) {
	if !MustNew([]Point{{0, 10}, {5, 10}, {10, 0}}).IsNonIncreasing() {
		t.Fatal("monotone curve misclassified")
	}
	if MustNew([]Point{{0, 10}, {5, 12}}).IsNonIncreasing() {
		t.Fatal("increasing curve misclassified")
	}
}

func TestIsConvex(t *testing.T) {
	convex := MustNew([]Point{{0, 20}, {10, 10}, {20, 5}, {30, 3}})
	if !convex.IsConvex(1e-9) {
		t.Fatal("convex curve misclassified")
	}
	cliffy := MustNew([]Point{{0, 20}, {10, 19}, {20, 2}})
	if cliffy.IsConvex(1e-9) {
		t.Fatal("cliff misclassified as convex")
	}
}

func TestUnitConversions(t *testing.T) {
	if LinesPerMB != 16384 {
		t.Fatalf("LinesPerMB = %d, want 16384 (64B lines)", LinesPerMB)
	}
	if got := MBToLines(2); got != 32768 {
		t.Fatalf("MBToLines(2) = %g", got)
	}
	if got := LinesToMB(32768); got != 2 {
		t.Fatalf("LinesToMB(32768) = %g", got)
	}
}

func TestString(t *testing.T) {
	c := MustNew([]Point{{0, 24}, {32768, 12}})
	if s := c.String(); s == "" || s == "curve()" {
		t.Fatalf("String() = %q", s)
	}
	var nilCurve *Curve
	if nilCurve.String() != "curve()" {
		t.Fatal("nil curve String should be curve()")
	}
}

// quickCurve builds a valid random curve from fuzz input.
func quickCurve(sizes []uint16, mpkis []uint16) *Curve {
	n := len(sizes)
	if len(mpkis) < n {
		n = len(mpkis)
	}
	if n == 0 {
		return nil
	}
	pts := make([]Point, 0, n)
	x := 0.0
	for i := 0; i < n; i++ {
		x += float64(sizes[i]%1000) + 1
		pts = append(pts, Point{Size: x, MPKI: float64(mpkis[i] % 5000)})
	}
	return MustNew(pts)
}

// Property: Scale obeys Theorem 4 on arbitrary curves at arbitrary probes.
func TestQuickScaleTheorem4(t *testing.T) {
	f := func(sizes, mpkis []uint16, rhoRaw uint8, probe uint16) bool {
		c := quickCurve(sizes, mpkis)
		if c == nil {
			return true
		}
		rho := (float64(rhoRaw%99) + 1) / 100 // (0,1]
		scaled, err := c.Scale(rho)
		if err != nil {
			return false
		}
		s := float64(probe)
		return almostEq(scaled.Eval(s), rho*c.Eval(s/rho), 1e-6*(1+c.Eval(0)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Eval is bounded by the curve's extreme MPKIs for monotone
// curves, and lies between min and max point values in general.
func TestQuickEvalBounds(t *testing.T) {
	f := func(sizes, mpkis []uint16, probe uint32) bool {
		c := quickCurve(sizes, mpkis)
		if c == nil {
			return true
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < c.NumPoints(); i++ {
			m := c.PointAt(i).MPKI
			lo = math.Min(lo, m)
			hi = math.Max(hi, m)
		}
		got := c.Eval(float64(probe % 100000))
		return got >= lo-1e-9 && got <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative.
func TestQuickAddCommutative(t *testing.T) {
	f := func(s1, m1, s2, m2 []uint16, probe uint16) bool {
		a := quickCurve(s1, m1)
		b := quickCurve(s2, m2)
		if a == nil || b == nil {
			return true
		}
		ab, err1 := a.Add(b)
		ba, err2 := b.Add(a)
		if err1 != nil || err2 != nil {
			return false
		}
		s := float64(probe)
		return almostEq(ab.Eval(s), ba.Eval(s), 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
