// Package bypass implements optimal cache bypassing, the baseline of the
// paper's §V-C: admit a fraction ρ of accesses to the full cache and send
// the rest straight to memory. By Theorem 4 this behaves like a partition
// of size s sampled at rate ρ (emulating a cache of s/ρ) plus a
// "partition of size zero" for the bypassed remainder:
//
//	m_bypass(s) = ρ·m(s/ρ) + (1−ρ)·m(0)                      (Eq. 6)
//
// which is a straight line from (0, m(0)) to (s0, m(s0)) with s0 = s/ρ.
// Corollary 8: no choice of ρ can beat the miss curve's convex hull, so
// Talus ≥ optimal bypassing always, with equality only where the hull's
// supporting segment passes through (0, m(0)).
package bypass
