package bypass

import (
	"math"
	"testing"
	"testing/quick"

	"talus/internal/curve"
	"talus/internal/hull"
)

func mb(x float64) float64 { return curve.MBToLines(x) }

// fig3Curve is the paper's example curve (see §III / Fig. 3).
func fig3Curve() *curve.Curve {
	return curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(2), MPKI: 12},
		{Size: mb(4.999), MPKI: 12},
		{Size: mb(5), MPKI: 3},
		{Size: mb(10), MPKI: 3},
	})
}

// TestOptimalFig5 reproduces the paper's Fig. 5: optimal bypassing at
// 4 MB admits ρ = 4/5 of accesses (the cache emulates 5 MB) and yields
// roughly 8 MPKI — "better than without bypassing, but worse than the
// 6 MPKI that Talus achieves".
func TestOptimalFig5(t *testing.T) {
	cfg, err := Optimal(fig3Curve(), mb(4))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cfg.Rho-0.8) > 1e-9 {
		t.Errorf("rho = %g, want 0.8", cfg.Rho)
	}
	if math.Abs(cfg.Emulated-mb(5)) > 1e-6 {
		t.Errorf("emulated = %g MB, want 5", curve.LinesToMB(cfg.Emulated))
	}
	// m = 0.8·3 + 0.2·24 = 7.2 (the paper's "roughly 8 MPKI").
	if math.Abs(cfg.MPKI-7.2) > 1e-9 {
		t.Errorf("MPKI = %g, want 7.2", cfg.MPKI)
	}
	// Talus achieves 6 at 4MB: bypassing must be worse.
	if cfg.MPKI <= 6 {
		t.Error("optimal bypassing should not beat Talus here")
	}
}

func TestOptimalNoBypassWhenUseless(t *testing.T) {
	// On a convex curve, bypassing cannot help below the knee: admitting
	// everything (ρ=1) should be optimal or tied.
	c := curve.MustNew([]curve.Point{{Size: 0, MPKI: 20}, {Size: 100, MPKI: 5}, {Size: 200, MPKI: 4}, {Size: 400, MPKI: 3.8}})
	cfg, err := Optimal(c, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.MPKI > c.Eval(100)+1e-9 {
		t.Fatalf("bypassing made things worse: %g > %g", cfg.MPKI, c.Eval(100))
	}
}

func TestOptimalErrors(t *testing.T) {
	if _, err := Optimal(nil, 10); err == nil {
		t.Fatal("nil curve must fail")
	}
	c := fig3Curve()
	for _, s := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := Optimal(c, s); err == nil {
			t.Errorf("size %g must fail", s)
		}
	}
}

func TestCurveFig6(t *testing.T) {
	// Fig. 6's ordering at every size: hull ≤ bypassing ≤ original.
	m := fig3Curve()
	h := hull.Lower(m)
	sizes := make([]float64, 0, 40)
	for s := 0.25; s <= 10; s += 0.25 {
		sizes = append(sizes, mb(s))
	}
	b, err := Curve(m, sizes)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sizes {
		hm, bm, om := h.Eval(s), b.Eval(s), m.Eval(s)
		if bm > om+1e-9 {
			t.Errorf("size %gMB: bypassing %g worse than original %g", curve.LinesToMB(s), bm, om)
		}
		if hm > bm+1e-9 {
			t.Errorf("size %gMB: hull %g above bypassing %g (violates Corollary 8)", curve.LinesToMB(s), hm, bm)
		}
	}
}

func TestCurveErrors(t *testing.T) {
	if _, err := Curve(nil, []float64{1}); err == nil {
		t.Fatal("nil curve must fail")
	}
	if _, err := Curve(fig3Curve(), nil); err == nil {
		t.Fatal("no sizes must fail")
	}
}

func TestCurveZeroSizePoint(t *testing.T) {
	b, err := Curve(fig3Curve(), []float64{0, mb(1)})
	if err != nil {
		t.Fatal(err)
	}
	if got := b.Eval(0); math.Abs(got-24) > 1e-9 {
		t.Fatalf("bypass curve at 0 = %g, want m(0)=24", got)
	}
}

// Property (Corollary 8): optimal bypassing never beats the convex hull,
// and never loses to the original curve, on random monotone curves.
func TestQuickCorollary8(t *testing.T) {
	f := func(sizes, mpkis []uint16, probeRaw uint16) bool {
		n := len(sizes)
		if len(mpkis) < n {
			n = len(mpkis)
		}
		if n < 2 {
			return true
		}
		pts := make([]curve.Point, 0, n+1)
		x, m := 0.0, 5000.0
		pts = append(pts, curve.Point{Size: 0, MPKI: m})
		for i := 0; i < n; i++ {
			x += float64(sizes[i]%500) + 1
			m = math.Max(0, m-float64(mpkis[i]%1000))
			pts = append(pts, curve.Point{Size: x, MPKI: m})
		}
		c := curve.MustNew(pts)
		h := hull.Lower(c)
		probe := c.MaxSize() * (0.01 + 0.98*float64(probeRaw)/65535)
		if probe <= 0 {
			return true
		}
		cfg, err := Optimal(c, probe)
		if err != nil {
			return false
		}
		tol := 1e-6 * (1 + cfg.MPKI)
		return cfg.MPKI >= h.Eval(probe)-tol && cfg.MPKI <= c.Eval(probe)+tol
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
