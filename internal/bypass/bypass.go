package bypass

import (
	"errors"
	"math"

	"talus/internal/curve"
)

// ErrBadInput reports an unusable curve or size.
var ErrBadInput = errors.New("bypass: bad input")

// Config describes the optimal bypassing configuration at one size.
type Config struct {
	TargetSize float64 // s: the physical cache size
	Rho        float64 // admitted fraction of accesses
	Emulated   float64 // s/ρ: the size the cache behaves as for admitted lines
	MPKI       float64 // resulting miss rate (Eq. 6)
	M0         float64 // m(0): the all-miss rate paid by bypassed accesses
}

// Optimal finds the bypass fraction minimizing Eq. 6 at size s. Because
// m_bypass is linear in the choice of anchor point (s0, m(s0)), the
// optimum lies at one of the curve's points with size ≥ s (or at no
// bypassing at all), so a single scan suffices.
func Optimal(m *curve.Curve, s float64) (Config, error) {
	if m == nil || m.NumPoints() == 0 {
		return Config{}, ErrBadInput
	}
	if !(s > 0) || math.IsNaN(s) || math.IsInf(s, 0) {
		return Config{}, ErrBadInput
	}
	m0 := m.Eval(0)
	best := Config{TargetSize: s, Rho: 1, Emulated: s, MPKI: m.Eval(s), M0: m0}
	for i := 0; i < m.NumPoints(); i++ {
		p := m.PointAt(i)
		if p.Size <= s {
			continue
		}
		rho := s / p.Size
		mpki := rho*p.MPKI + (1-rho)*m0
		if mpki < best.MPKI {
			best = Config{TargetSize: s, Rho: rho, Emulated: p.Size, MPKI: mpki, M0: m0}
		}
	}
	return best, nil
}

// Curve evaluates optimal bypassing at each of the given sizes, producing
// the dashed "Bypassing" curve of Fig. 6.
func Curve(m *curve.Curve, sizes []float64) (*curve.Curve, error) {
	if m == nil || m.NumPoints() == 0 || len(sizes) == 0 {
		return nil, ErrBadInput
	}
	pts := make([]curve.Point, 0, len(sizes))
	for _, s := range sizes {
		if s <= 0 {
			pts = append(pts, curve.Point{Size: 0, MPKI: m.Eval(0)})
			continue
		}
		cfg, err := Optimal(m, s)
		if err != nil {
			return nil, err
		}
		pts = append(pts, curve.Point{Size: s, MPKI: cfg.MPKI})
	}
	return curve.New(pts)
}
