// Package stats provides small, dependency-free statistical helpers used
// throughout the simulator and the experiment harness: means (arithmetic,
// geometric, harmonic), dispersion (variance, coefficient of variation),
// quantiles, and confidence intervals.
//
// All functions operate on float64 slices, ignore nothing, and treat empty
// input as an error-free zero result unless documented otherwise. They are
// deliberately simple: the experiments report distributions over at most a
// few hundred samples.
package stats
