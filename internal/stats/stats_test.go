package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func eq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeans(t *testing.T) {
	xs := []float64{1, 2, 4}
	if !eq(Mean(xs), 7.0/3, 1e-12) {
		t.Errorf("Mean = %g", Mean(xs))
	}
	if !eq(GeoMean(xs), 2, 1e-12) {
		t.Errorf("GeoMean = %g", GeoMean(xs))
	}
	if !eq(HarmonicMean(xs), 3/(1+0.5+0.25), 1e-12) {
		t.Errorf("HarmonicMean = %g", HarmonicMean(xs))
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || GeoMean(nil) != 0 || HarmonicMean(nil) != 0 ||
		Variance(nil) != 0 || CoV(nil) != 0 || Quantile(nil, 0.5) != 0 ||
		ConfidenceInterval95(nil) != 0 {
		t.Fatal("empty inputs must yield 0")
	}
}

func TestVarianceAndCoV(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !eq(Variance(xs), 4, 1e-12) {
		t.Errorf("Variance = %g, want 4", Variance(xs))
	}
	if !eq(StdDev(xs), 2, 1e-12) {
		t.Errorf("StdDev = %g, want 2", StdDev(xs))
	}
	if !eq(CoV(xs), 2.0/5, 1e-12) {
		t.Errorf("CoV = %g, want 0.4", CoV(xs))
	}
}

func TestCoVIdenticalValues(t *testing.T) {
	// Fig. 13's fairness ideal: identical per-core IPCs give CoV 0.
	xs := []float64{3, 3, 3, 3, 3, 3, 3, 3}
	if CoV(xs) != 0 {
		t.Fatalf("CoV of equal values = %g", CoV(xs))
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // unsorted on purpose
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, tc := range cases {
		if got := Quantile(xs, tc.q); !eq(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%g) = %g, want %g", tc.q, got, tc.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Fatal("Quantile must not modify its input")
	}
}

func TestQuantiles(t *testing.T) {
	got := Quantiles([]float64{3, 1, 2})
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Quantiles = %v", got)
		}
	}
}

func TestSpeedups(t *testing.T) {
	ipc := []float64{2, 1}
	base := []float64{1, 1}
	if !eq(WeightedSpeedup(ipc, base), 1.5, 1e-12) {
		t.Errorf("WeightedSpeedup = %g", WeightedSpeedup(ipc, base))
	}
	// Harmonic: 2 / (1/2 + 1/1) = 4/3 — penalizes the imbalance.
	if !eq(HarmonicSpeedup(ipc, base), 4.0/3, 1e-12) {
		t.Errorf("HarmonicSpeedup = %g", HarmonicSpeedup(ipc, base))
	}
	if WeightedSpeedup(ipc, []float64{1}) != 0 {
		t.Fatal("mismatched lengths must yield 0")
	}
}

func TestConfidenceInterval(t *testing.T) {
	xs := []float64{10, 10, 10, 10}
	if ConfidenceInterval95(xs) != 0 {
		t.Fatal("CI of constant data must be 0")
	}
	wide := []float64{0, 20}
	if ConfidenceInterval95(wide) <= 0 {
		t.Fatal("CI of varying data must be positive")
	}
}

// Property: harmonic ≤ geometric ≤ arithmetic mean for positive inputs
// (the AM–GM–HM inequality).
func TestQuickMeanInequality(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = float64(r%1000) + 1
		}
		am, gm, hm := Mean(xs), GeoMean(xs), HarmonicMean(xs)
		return hm <= gm+1e-9 && gm <= am+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: weighted speedup of identical IPCs is exactly 1, and harmonic
// speedup never exceeds weighted speedup.
func TestQuickSpeedupRelations(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		ipc := make([]float64, len(raw))
		base := make([]float64, len(raw))
		for i, r := range raw {
			ipc[i] = float64(r%100)/10 + 0.1
			base[i] = float64(r%37)/10 + 0.1
		}
		if !eq(WeightedSpeedup(base, base), 1, 1e-12) {
			return false
		}
		return HarmonicSpeedup(ipc, base) <= WeightedSpeedup(ipc, base)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
