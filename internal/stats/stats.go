package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 if xs is empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// GeoMean returns the geometric mean of xs, or 0 if xs is empty.
// All elements must be positive; non-positive elements make the result NaN,
// mirroring the mathematical definition rather than silently clamping.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	logSum := 0.0
	for _, x := range xs {
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// HarmonicMean returns the harmonic mean of xs, or 0 if xs is empty.
// Elements must be non-zero.
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	invSum := 0.0
	for _, x := range xs {
		invSum += 1 / x
	}
	return float64(len(xs)) / invSum
}

// Variance returns the population variance of xs (not the sample variance),
// or 0 for fewer than two elements.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	return ss / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (standard deviation divided by
// mean) of xs. The paper uses CoV of per-core IPC as its unfairness metric
// (Fig. 13). Returns 0 if the mean is zero or xs has fewer than two
// elements.
func CoV(xs []float64) float64 {
	mu := Mean(xs)
	if mu == 0 || len(xs) < 2 {
		return 0
	}
	return StdDev(xs) / mu
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It does not modify xs.
// Returns 0 for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Quantiles returns the values of xs sorted ascending, which is how the
// paper's quantile plots (Fig. 12) present per-mix speedups.
func Quantiles(xs []float64) []float64 {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return sorted
}

// ConfidenceInterval95 returns the half-width of the 95% confidence
// interval of the mean of xs, using the normal approximation (z = 1.96).
// The paper repeats runs until 95% CIs are ≤ 1%; the harness uses this to
// report CI alongside means.
func ConfidenceInterval95(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	// Sample standard deviation (n−1 denominator) for the CI.
	mu := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mu
		ss += d * d
	}
	sd := math.Sqrt(ss / float64(len(xs)-1))
	return 1.96 * sd / math.Sqrt(float64(len(xs)))
}

// WeightedSpeedup computes the paper's throughput metric:
// (Σ IPC_i/IPCbase_i) / N. Both slices must have equal, non-zero length.
func WeightedSpeedup(ipc, base []float64) float64 {
	if len(ipc) == 0 || len(ipc) != len(base) {
		return 0
	}
	sum := 0.0
	for i := range ipc {
		sum += ipc[i] / base[i]
	}
	return sum / float64(len(ipc))
}

// HarmonicSpeedup computes the paper's fairness-emphasizing metric:
// N / Σ (IPCbase_i/IPC_i). Both slices must have equal, non-zero length.
func HarmonicSpeedup(ipc, base []float64) float64 {
	if len(ipc) == 0 || len(ipc) != len(base) {
		return 0
	}
	sum := 0.0
	for i := range ipc {
		sum += base[i] / ipc[i]
	}
	return float64(len(ipc)) / sum
}
