package serve_test

import (
	"encoding/json"
	"net/http"
	"testing"

	"talus/internal/serve"
	"talus/internal/store"
)

// controlPayload mirrors the /v1/control JSON shape loosely for
// assertions.
type controlPayload struct {
	Epochs        int     `json:"epochs"`
	Churn         float64 `json:"churn"`
	SelfTune      bool    `json:"self_tune"`
	EpochAccesses int64   `json:"epoch_accesses"`
	Allocator     string  `json:"allocator"`
	Tenants       []struct {
		Tenant string  `json:"tenant"`
		Weight float64 `json:"weight"`
	} `json:"tenants"`
}

func TestControlEndpointReadOnlyAlwaysOn(t *testing.T) {
	// Without Config.Control the GET is served but the PUT is forbidden,
	// mirroring the /v1/record gate.
	srv, _ := newServerConfig(t, store.Config{Tenants: []string{"alice", "bob"}},
		serve.Config{})

	resp, body := do(t, http.MethodGet, srv.URL+"/v1/control", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/control = %d %s", resp.StatusCode, body)
	}
	var cp controlPayload
	if err := json.Unmarshal(body, &cp); err != nil {
		t.Fatalf("control payload: %v\n%s", err, body)
	}
	if cp.Allocator != "hill" || cp.EpochAccesses != 1<<14 {
		t.Fatalf("control payload: %+v", cp)
	}
	if len(cp.Tenants) != 2 || cp.Tenants[0].Weight != 1 {
		t.Fatalf("tenant rows: %+v", cp.Tenants)
	}

	resp, body = do(t, http.MethodPut, srv.URL+"/v1/control/tenants/alice", []byte(`{"weight": 4}`))
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("gated PUT = %d %s", resp.StatusCode, body)
	}
}

func TestControlTenantWeight(t *testing.T) {
	srv, st := newServerConfig(t, store.Config{Tenants: []string{"alice", "bob"}},
		serve.Config{Control: true})

	resp, body := do(t, http.MethodPut, srv.URL+"/v1/control/tenants/alice", []byte(`{"weight": 4}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT weight = %d %s", resp.StatusCode, body)
	}
	// The new weight is live in the store and in the next GET.
	if got := st.Control().Tenants[0].Weight; got != 4 {
		t.Fatalf("store weight after PUT: %g", got)
	}
	resp, body = do(t, http.MethodGet, srv.URL+"/v1/control", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/control = %d", resp.StatusCode)
	}
	var cp controlPayload
	if err := json.Unmarshal(body, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Tenants[0].Tenant != "alice" || cp.Tenants[0].Weight != 4 {
		t.Fatalf("tenant rows after PUT: %+v", cp.Tenants)
	}

	// Error surface: unknown tenant 404, negative weight 400, bad JSON 400.
	resp, _ = do(t, http.MethodPut, srv.URL+"/v1/control/tenants/nobody", []byte(`{"weight": 2}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown tenant PUT = %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPut, srv.URL+"/v1/control/tenants/alice", []byte(`{"weight": -1}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative weight PUT = %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodPut, srv.URL+"/v1/control/tenants/alice", []byte(`{weight`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON PUT = %d", resp.StatusCode)
	}
}
