package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"talus/internal/adaptive"
	"talus/internal/cluster"
	"talus/internal/serve"
	"talus/internal/sim"
	"talus/internal/store"
)

func httpBody(s string) io.Reader { return bytes.NewReader([]byte(s)) }

// fakeClock is a settable time source for TTL-over-HTTP tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestETagRevalidation pins the satellite contract: GETs carry a
// value-hash ETag, PUTs return the same tag, and If-None-Match with the
// current tag yields 304 with no body.
func TestETagRevalidation(t *testing.T) {
	srv, _ := newServer(t, store.Config{}, 0)
	url := srv.URL + "/v1/cache/alice/doc"

	resp, _ := do(t, http.MethodPut, url, []byte("version one"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	putTag := resp.Header.Get("ETag")
	if len(putTag) != 18 || putTag[0] != '"' || putTag[17] != '"' {
		t.Fatalf("PUT ETag = %q, want quoted 16-hex tag", putTag)
	}

	resp, body := do(t, http.MethodGet, url, nil)
	if got := resp.Header.Get("ETag"); got != putTag {
		t.Fatalf("GET ETag %q != PUT ETag %q", got, putTag)
	}
	if string(body) != "version one" {
		t.Fatalf("GET body = %q", body)
	}

	// Revalidation with the current tag: 304, empty body, tag echoed.
	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", putTag)
	resp304, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp304.Body.Close()
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match current = %d, want 304", resp304.StatusCode)
	}
	if got := resp304.Header.Get("ETag"); got != putTag {
		t.Fatalf("304 ETag = %q, want %q", got, putTag)
	}

	// A stale tag (the value changed) gets the full body again.
	do(t, http.MethodPut, url, []byte("version two"))
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", putTag)
	respStale, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer respStale.Body.Close()
	if respStale.StatusCode != http.StatusOK {
		t.Fatalf("If-None-Match stale = %d, want 200", respStale.StatusCode)
	}
	if got := respStale.Header.Get("ETag"); got == putTag {
		t.Fatal("ETag did not change with the value")
	}

	// "*" matches whatever is stored.
	req, _ = http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", `"deadbeefdeadbeef", *`)
	respAny, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	respAny.Body.Close()
	if respAny.StatusCode != http.StatusNotModified {
		t.Fatalf(`If-None-Match "*" = %d, want 304`, respAny.StatusCode)
	}
}

// TestTTLHeader pins the per-entry TTL satellite over HTTP: X-Talus-TTL
// seconds on PUT, lazy expiry on GET, and a 400 for malformed headers.
func TestTTLHeader(t *testing.T) {
	srv, st := newServer(t, store.Config{}, 0)
	clock := newFakeClock()
	st.SetNow(clock.Now)
	url := srv.URL + "/v1/cache/alice/ephemeral"

	req, _ := http.NewRequest(http.MethodPut, url, httpBody("short-lived"))
	req.Header.Set("X-Talus-TTL", "5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT with TTL = %d", resp.StatusCode)
	}

	if resp, _ := do(t, http.MethodGet, url, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET before expiry = %d", resp.StatusCode)
	}
	clock.Advance(6 * time.Second)
	if resp, _ := do(t, http.MethodGet, url, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after expiry = %d, want 404", resp.StatusCode)
	}

	for _, bad := range []string{"-1", "soon", "1.5"} {
		req, _ := http.NewRequest(http.MethodPut, url, httpBody("x"))
		req.Header.Set("X-Talus-TTL", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT with X-Talus-TTL=%q = %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestStatsNodeBlock pins the /v1/stats node block and the single-node
// /v1/cluster shape.
func TestStatsNodeBlock(t *testing.T) {
	srv, st := newServer(t, store.Config{NodeID: "stats-node"}, 0)

	resp, body := do(t, http.MethodGet, srv.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var stats struct {
		Node store.NodeStats `json:"node"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Node.ID != "stats-node" || stats.Node.PID <= 0 || stats.Node.GoMaxProcs < 1 || stats.Node.StartTime.IsZero() {
		t.Fatalf("stats node block = %+v", stats.Node)
	}
	if stats.Node.ID != st.Node().ID {
		t.Fatalf("stats node %q != store node %q", stats.Node.ID, st.Node().ID)
	}

	resp, body = do(t, http.MethodGet, srv.URL+"/v1/cluster", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cluster = %d", resp.StatusCode)
	}
	var cl struct {
		Clustered bool            `json:"clustered"`
		Node      store.NodeStats `json:"node"`
		Nodes     []any           `json:"nodes"`
	}
	if err := json.Unmarshal(body, &cl); err != nil {
		t.Fatal(err)
	}
	if cl.Clustered || len(cl.Nodes) != 0 || cl.Node.ID != "stats-node" {
		t.Fatalf("single-node /v1/cluster = %s", body)
	}
}

// clusterHarness is a live in-process N-node cluster: each node runs
// its own store and handler over a real TCP listener, configured with
// the full membership ring.
type clusterHarness struct {
	nodes   []string // listen addresses == ring node names
	stores  []*store.Store
	servers []*httptest.Server
	ring    *cluster.Ring
}

// newCluster starts n proxying nodes. Listeners are created unstarted
// first so the full address list exists before any ring is built —
// exactly how a static fleet config works in deployment.
func newCluster(t *testing.T, n int, lines int64) *clusterHarness {
	t.Helper()
	servers := make([]*httptest.Server, n)
	nodes := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		nodes[i] = servers[i].Listener.Addr().String()
	}
	h := &clusterHarness{nodes: nodes, servers: servers}
	for i, srv := range servers {
		cl, err := cluster.New(cluster.Config{Self: nodes[i], Nodes: nodes, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		if h.ring == nil {
			h.ring = cl.Ring()
		}
		ac, err := sim.BuildAdaptiveCache("vantage", lines, 16, 1, 2, "LRU", 0.05,
			adaptive.Config{EpochAccesses: 1 << 14, Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.New(ac, store.Config{NodeID: nodes[i]})
		if err != nil {
			t.Fatal(err)
		}
		h.stores = append(h.stores, st)
		srv.Config.Handler = serve.NewHandler(st, serve.Config{Cluster: cl})
		srv.Start()
		t.Cleanup(func() {
			srv.Close()
			st.Close()
		})
	}
	return h
}

func (h *clusterHarness) url(node int, tenant, key string) string {
	return fmt.Sprintf("http://%s/v1/cache/%s/%s", h.nodes[node], tenant, key)
}

// TestClusterRouting is the in-process three-node acceptance test:
// every key PUT through an arbitrary node is served by — and only by —
// its deterministic ring owner, reads through any node return the
// value, and /v1/cluster agrees across the fleet.
func TestClusterRouting(t *testing.T) {
	const keys = 60
	h := newCluster(t, 3, 4096)

	seen := make(map[string]int) // owner node → keys served
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("obj-%03d", i)
		owner := h.ring.Route("alice", key)

		// Write through a rotating entry node; the owner must answer.
		entry := i % len(h.nodes)
		resp, _ := do(t, http.MethodPut, h.url(entry, "alice", key), []byte("payload-"+key))
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("PUT %s via node %d = %d", key, entry, resp.StatusCode)
		}
		if got := resp.Header.Get("X-Talus-Node"); got != owner {
			t.Fatalf("PUT %s served by %q, ring owner is %q", key, got, owner)
		}

		// Read through a different node; same owner, same bytes.
		resp, body := do(t, http.MethodGet, h.url((entry+1)%len(h.nodes), "alice", key), nil)
		if resp.StatusCode != http.StatusOK || string(body) != "payload-"+key {
			t.Fatalf("GET %s = %d %q", key, resp.StatusCode, body)
		}
		if got := resp.Header.Get("X-Talus-Node"); got != owner {
			t.Fatalf("GET %s served by %q, ring owner is %q", key, got, owner)
		}
		if resp.Header.Get("X-Talus-Cache") != "hit" {
			t.Fatalf("GET %s missed on its owner right after the PUT", key)
		}
		seen[owner]++
	}
	if len(seen) != len(h.nodes) {
		t.Fatalf("only %d of %d nodes own keys: %v", len(seen), len(h.nodes), seen)
	}

	// Ownership is local: each store holds exactly its ring keys.
	total := 0
	for i, st := range h.stores {
		s, err := st.Stats("alice")
		if err != nil {
			t.Fatalf("node %d never saw tenant alice: %v", i, err)
		}
		if int(s.Keys) != seen[h.nodes[i]] {
			t.Fatalf("node %d holds %d keys, ring assigns it %d", i, s.Keys, seen[h.nodes[i]])
		}
		total += int(s.Keys)
	}
	if total != keys {
		t.Fatalf("cluster holds %d keys, wrote %d", total, keys)
	}

	// DELETE routes identically; the key vanishes fleet-wide.
	resp, _ := do(t, http.MethodDelete, h.url(0, "alice", "obj-000"), nil)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	resp, _ = do(t, http.MethodGet, h.url(2, "alice", "obj-000"), nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d, want 404", resp.StatusCode)
	}

	// /v1/cluster: clustered view with all members and shares near 1/N.
	resp, body := do(t, http.MethodGet, fmt.Sprintf("http://%s/v1/cluster", h.nodes[0]), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/cluster = %d", resp.StatusCode)
	}
	var cl struct {
		Clustered bool   `json:"clustered"`
		Self      string `json:"self"`
		VNodes    int    `json:"vnodes"`
		Nodes     []struct {
			Node  string  `json:"node"`
			Share float64 `json:"share"`
			Self  bool    `json:"self"`
		} `json:"nodes"`
	}
	if err := json.Unmarshal(body, &cl); err != nil {
		t.Fatal(err)
	}
	if !cl.Clustered || cl.Self != h.nodes[0] || cl.VNodes != cluster.DefaultVNodes || len(cl.Nodes) != 3 {
		t.Fatalf("/v1/cluster = %s", body)
	}
	sum := 0.0
	for _, n := range cl.Nodes {
		sum += n.Share
		if n.Self != (n.Node == h.nodes[0]) {
			t.Fatalf("self flag wrong in %s", body)
		}
	}
	if sum < 0.9999 || sum > 1.0001 {
		t.Fatalf("shares sum to %v", sum)
	}
}

// TestClusterForwardedHeaderStopsLoops pins the one-hop guarantee: a
// request already marked forwarded is served locally even by a
// non-owner, so membership disagreement can never cycle a request.
func TestClusterForwardedHeaderStopsLoops(t *testing.T) {
	h := newCluster(t, 2, 4096)

	// Find a key owned by node 1, then ask node 0 for it with the
	// forwarded mark already set: node 0 must answer itself (a miss —
	// it does not hold the key).
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if h.ring.Route("alice", k) == h.nodes[1] {
			key = k
			break
		}
	}
	req, _ := http.NewRequest(http.MethodPut, h.url(0, "alice", key), httpBody("v"))
	req.Header.Set(cluster.ForwardedHeader, "test")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("forwarded PUT = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Talus-Node"); got != h.nodes[0] {
		t.Fatalf("forwarded PUT answered by %q, want the receiving node %q", got, h.nodes[0])
	}
	// The non-owner holds it; the owner never saw it.
	if s, err := h.stores[0].Stats("alice"); err != nil || s.Keys != 1 {
		t.Fatalf("receiving node stats: %+v, %v", s, err)
	}
}

// TestClusterForwardError pins two proxy edges: a forwarded miss
// relays the owner's 404 (status and node attribution intact), and a
// dead owner turns into a 502 gateway error instead of a hang.
func TestClusterForwardError(t *testing.T) {
	h := newCluster(t, 2, 4096)

	// A key owned by node 1, reached through node 0.
	key := ""
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%d", i)
		if h.ring.Route("alice", k) == h.nodes[1] {
			key = k
			break
		}
	}
	resp, body := do(t, http.MethodGet, h.url(0, "alice", key), nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("forwarded GET of absent key = %d %s, want owner's 404", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Talus-Node"); got != h.nodes[1] {
		t.Fatalf("absent-key GET answered by %q, want owner %q", got, h.nodes[1])
	}

	// Kill the owner: the proxy must answer 502, not hang.
	h.servers[1].Close()
	resp, body = do(t, http.MethodGet, h.url(0, "alice", key), nil)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("GET with dead owner = %d %s, want 502", resp.StatusCode, body)
	}
}
