// Package serve is the stdlib-only HTTP front-end over the keyed store:
// the last layer between "reproduction of a paper" and "cache system
// serving traffic". It exposes the store's Get/Set/Delete as a REST
// surface, the live control-loop state (stats, miss curves,
// allocations) as JSON, and the record hook as an endpoint, so a
// production-shaped client can capture its own traffic and replay it
// offline through the simulator.
//
// # Routes
//
// All routes are method-dispatched; wrong methods get 405 with Allow set,
// unknown paths 404.
//
//	GET    /v1/cache/{tenant}/{key}   → stored bytes; X-Talus-Cache: hit|miss; ETag; 304 on If-None-Match
//	PUT    /v1/cache/{tenant}/{key}   → store body (204); X-Talus-Cache + ETag set; X-Talus-TTL: secs honored
//	DELETE /v1/cache/{tenant}/{key}   → remove value (204; 404 if absent)
//	GET    /v1/stats                  → per-tenant counters + cache totals + node identity
//	GET    /v1/curves                 → per-tenant measured + hulled curves
//	GET    /v1/cluster                → ring membership, vnodes, seed, per-node key share
//	GET    /v1/control                → control-loop state: churn, epoch budget, weights, bounds
//	PUT    /v1/control/tenants/{tenant} → {"weight": w} adjusts the tenant's objective weight
//	POST   /v1/record                 → {"action":"start","path":...,"gzip":bool} | {"action":"stop"}
//
// Keys may contain slashes ({key...} pattern).
//
// # The X-Talus-Cache header
//
// Every GET and successful PUT on /v1/cache carries X-Talus-Cache with
// value "hit" or "miss": the simulated cache's outcome for that key's
// line, the signal a production deployment would translate into backend
// cost. The header reports the model, not value presence — a GET of a
// key that was never stored still answers 404 *with* the header (its
// miss traffic shapes the tenant's miss curve, exactly as fill traffic
// shapes a real LLC's), and a warm line can report "hit" on a 404. A
// rejected PUT (413 and other errors) has no header because no cache
// access happened.
//
// # ETags, TTLs, and node identity
//
// Cache GETs carry a strong ETag — a quoted 16-hex FNV-1a hash of the
// value bytes, identical for identical bytes on every node — and honor
// If-None-Match ("*" or any listed tag, weak prefixes ignored) with
// 304 and no body; successful PUTs return the stored value's tag. PUTs
// accept X-Talus-TTL with a non-negative integer number of seconds
// (malformed values are 400), giving the entry a lazy expiry deadline;
// absent or 0 defers to the store's DefaultTTL. Every locally served
// cache response names its server in X-Talus-Node — under a proxying
// cluster that is the ring owner, not the entry node — and /v1/stats
// carries the same identity in its "node" block (id, pid, start time,
// GOMAXPROCS).
//
// # Cluster proxy mode
//
// With Config.Cluster set (talus-serve -route), cache requests whose
// (tenant, key) the consistent-hash ring assigns to a peer are
// forwarded there — request headers that matter (If-None-Match,
// X-Talus-TTL, Content-Type) travel along, the owner's status, body,
// and response headers are relayed verbatim, and a failed forward is
// 502. Forwarded requests carry X-Talus-Forwarded and are always
// served locally by the receiver, so membership disagreement costs at
// most one extra hop, never a loop. GET /v1/cluster reports the ring
// (membership, vnode count, seed, analytic per-node key share) and is
// served in single-node mode too, with "clustered": false.
//
// # Errors
//
// Error responses are JSON, shaped {"error": "<message>"}, with the
// store's typed errors mapped onto status codes:
//
//	404  store.ErrNotFound, store.ErrUnknownTenant (a GET on an unknown
//	     tenant never registers it — registration is a write privilege)
//	413  store.ErrValueTooLarge; request bodies over the PUT limit
//	429  store.ErrTenantCapacity (every partition — or the -max-tenants
//	     cap — already has a tenant; retry against an existing one)
//	502  store.ErrBackend (the backing tier behind a bounded store failed)
//	400  store.ErrEmptyTenant/ErrEmptyKey, malformed /v1/record requests,
//	     store.ErrRecording/ErrNotRecording (start while active / stop while idle),
//	     malformed or negative /v1/control weight bodies,
//	     store.ErrBadTTL and malformed X-Talus-TTL headers
//
// # Bounded-store stats
//
// When the store runs in bounded mode (max-bytes and/or a backend —
// see package store), /v1/stats additionally reports "bounded": true,
// the live "bytes" total, "maxBytes" when a bound is set, and
// "backend": true when a backing tier is attached; per-tenant rows gain
// evictions, admitDrops, admitRho, backendGets, and backendSets.
//
// # The POST /v1/record contract
//
// /v1/record writes files server-side, so it is an explicit operator
// decision: unless the handler is configured with a record directory
// (Config.RecordDir; talus-serve -record-dir), the endpoint refuses
// every request with status 403 and the exact body
//
//	{"error": "recording disabled: the server was started without a record directory"}
//
// With a record directory set, "start" requests must name a bare file
// inside it: path separators, "..", dot-prefixed names, and empty names
// are rejected with 400. Successful starts answer
// {"recording":true,"path":...}; successful stops answer
// {"recording":false,"records":N} with the number of accesses captured.
// TestRecordEndpoint and TestHTTPContract pin these bodies.
//
// # The control plane
//
// GET /v1/control is read-only and always served: the epoch
// controller's live state (epoch count, measured curve churn, the
// self-tuner's current epoch budget and retention, allocator name,
// per-partition allocations and weights) plus one row per tenant
// (weight, line bounds, current allocation). Mutation is gated like
// recording: unless the handler is configured with Config.Control
// (talus-serve -control), PUT /v1/control/tenants/{tenant} refuses
// every request with status 403 and the exact body
//
//	{"error": "control disabled: the server was started without the control plane enabled"}
//
// With the gate open, the PUT body {"weight": w} (w ≥ 0) adjusts the
// named tenant's objective weight live — the next epoch allocates
// under the new objective — answering {"tenant":...,"weight":w};
// unknown tenants are 404 and never minted.
package serve
