package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"talus/internal/adaptive"
	"talus/internal/serve"
	"talus/internal/sim"
	"talus/internal/store"
)

// newServer mounts a small store behind the handler under test, with
// recording allowed into a per-test temp dir.
func newServer(t *testing.T, cfg store.Config, maxBody int64) (*httptest.Server, *store.Store) {
	t.Helper()
	return newServerConfig(t, cfg, serve.Config{MaxValueBytes: maxBody, RecordDir: t.TempDir()})
}

func newServerConfig(t *testing.T, cfg store.Config, scfg serve.Config) (*httptest.Server, *store.Store) {
	t.Helper()
	ac, err := sim.BuildAdaptiveCache("vantage", 8192, 16, 2, 2, "LRU", 0.05,
		adaptive.Config{EpochAccesses: 1 << 14, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(ac, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewHandler(st, scfg))
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return srv, st
}

// do issues one request and returns the response with its body drained.
func do(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestCacheRoundTrip(t *testing.T) {
	srv, _ := newServer(t, store.Config{}, 0)
	url := srv.URL + "/v1/cache/alice/greeting"

	// Cold GET: 404 with a miss header.
	resp, body := do(t, http.MethodGet, url, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold GET = %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Talus-Cache"); h != "miss" {
		t.Fatalf("cold GET header = %q", h)
	}

	// PUT, then GET returns the stored bytes.
	resp, _ = do(t, http.MethodPut, url, []byte("hello world"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	resp, body = do(t, http.MethodGet, url, nil)
	if resp.StatusCode != http.StatusOK || string(body) != "hello world" {
		t.Fatalf("GET = %d %q", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-Talus-Cache"); h != "hit" {
		t.Fatalf("warm GET header = %q", h)
	}

	// Keys may contain slashes.
	nested := srv.URL + "/v1/cache/alice/a/b/c"
	do(t, http.MethodPut, nested, []byte("nested"))
	if _, body = do(t, http.MethodGet, nested, nil); string(body) != "nested" {
		t.Fatalf("nested key GET = %q", body)
	}

	// DELETE removes the value; a second DELETE 404s.
	if resp, _ = do(t, http.MethodDelete, url, nil); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("DELETE = %d", resp.StatusCode)
	}
	if resp, _ = do(t, http.MethodDelete, url, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE = %d", resp.StatusCode)
	}
	if resp, _ = do(t, http.MethodGet, url, nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET after DELETE = %d", resp.StatusCode)
	}
}

func TestRouteErrors(t *testing.T) {
	srv, _ := newServer(t, store.Config{}, 64)

	// Unknown paths 404.
	for _, path := range []string{"/", "/v1", "/v1/cache", "/v2/cache/a/k", "/v1/nope"} {
		if resp, _ := do(t, http.MethodGet, srv.URL+path, nil); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404", path, resp.StatusCode)
		}
	}
	// Wrong methods 405 with Allow set.
	for _, c := range []struct{ method, path string }{
		{http.MethodPost, "/v1/cache/a/k"},
		{http.MethodPut, "/v1/stats"},
		{http.MethodDelete, "/v1/curves"},
		{http.MethodGet, "/v1/record"},
	} {
		resp, _ := do(t, c.method, srv.URL+c.path, nil)
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("%s %s = %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if resp.Header.Get("Allow") == "" {
			t.Fatalf("%s %s: no Allow header", c.method, c.path)
		}
	}
	// Empty key (trailing slash) is a 400 from the store boundary.
	if resp, body := do(t, http.MethodGet, srv.URL+"/v1/cache/alice/", nil); resp.StatusCode != http.StatusBadRequest ||
		!strings.Contains(string(body), "empty key") {
		t.Fatalf("empty key = %d %s", resp.StatusCode, body)
	}
	// Oversized PUT body: 413.
	resp, body := do(t, http.MethodPut, srv.URL+"/v1/cache/alice/k", bytes.Repeat([]byte("x"), 65))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT = %d %s", resp.StatusCode, body)
	}
	// In-limit PUT still fine.
	if resp, _ = do(t, http.MethodPut, srv.URL+"/v1/cache/alice/k", bytes.Repeat([]byte("x"), 64)); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("max-size PUT = %d", resp.StatusCode)
	}
	// Tenant capacity: two partitions, third tenant refused with a 4xx
	// (the roster being full is the client's problem, not a server fault).
	do(t, http.MethodPut, srv.URL+"/v1/cache/bob/k", []byte("v"))
	if resp, _ = do(t, http.MethodPut, srv.URL+"/v1/cache/carol/k", []byte("v")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third tenant = %d, want 429", resp.StatusCode)
	}
	// A GET never mints a tenant: an unknown tenant on a pure lookup is
	// a 404, and the roster stays unchanged for registered ones.
	if resp, _ = do(t, http.MethodGet, srv.URL+"/v1/cache/mallory/k", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET unknown tenant = %d, want 404", resp.StatusCode)
	}
	if resp, _ = do(t, http.MethodGet, srv.URL+"/v1/cache/bob/k", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("GET registered tenant after stranger = %d, want 200", resp.StatusCode)
	}
}

// TestMaxTenantsCap pins the WithMaxTenants satellite: with the cap
// below the partition count, the HTTP surface refuses to mint tenants
// past it — 429, not a 5xx — and pure lookups cannot mint them at all.
func TestMaxTenantsCap(t *testing.T) {
	srv, _ := newServer(t, store.Config{MaxTenants: 1}, 0)
	if resp, _ := do(t, http.MethodPut, srv.URL+"/v1/cache/first/k", []byte("v")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("first tenant = %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPut, srv.URL+"/v1/cache/second/k", []byte("v")); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("capped tenant = %d, want 429", resp.StatusCode)
	}
	// GET-side minting must be just as impossible: still a 404 and still
	// no second tenant afterwards.
	if resp, _ := do(t, http.MethodGet, srv.URL+"/v1/cache/second/k", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET capped tenant = %d, want 404", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPut, srv.URL+"/v1/cache/first/k2", []byte("v")); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("existing tenant after cap = %d", resp.StatusCode)
	}
}

func TestStaticTenant404(t *testing.T) {
	srv, _ := newServer(t, store.Config{Tenants: []string{"only"}, Static: true}, 0)
	if resp, _ := do(t, http.MethodPut, srv.URL+"/v1/cache/other/k", []byte("v")); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("static-mode stranger = %d, want 404", resp.StatusCode)
	}
}

func TestStatsAndCurves(t *testing.T) {
	srv, st := newServer(t, store.Config{Tenants: []string{"a"}}, 0)
	for i := 0; i < 2048; i++ {
		key := fmt.Sprintf("k%d", i%256)
		if resp, _ := do(t, http.MethodGet, srv.URL+"/v1/cache/a/"+key, nil); resp.StatusCode == http.StatusNotFound {
			do(t, http.MethodPut, srv.URL+"/v1/cache/a/"+key, []byte("v"))
		}
	}
	if err := st.Cache().ForceEpoch(); err != nil {
		t.Fatal(err)
	}

	resp, body := do(t, http.MethodGet, srv.URL+"/v1/stats", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats = %d", resp.StatusCode)
	}
	var stats struct {
		Tenants []store.TenantStats `json:"tenants"`
		Epochs  int                 `json:"epochs"`
		Cache   *struct {
			Accesses int64 `json:"accesses"`
		} `json:"cache"`
		CapacityLines int64 `json:"capacityLines"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats JSON: %v in %s", err, body)
	}
	if len(stats.Tenants) != 1 || stats.Tenants[0].Gets != 2048 || stats.Tenants[0].Sets != 256 {
		t.Fatalf("stats payload = %+v", stats)
	}
	if stats.Epochs == 0 || stats.Cache == nil || stats.Cache.Accesses != 2048+256 || stats.CapacityLines == 0 {
		t.Fatalf("stats payload = %+v", stats)
	}

	resp, body = do(t, http.MethodGet, srv.URL+"/v1/curves", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("curves = %d", resp.StatusCode)
	}
	var curves struct {
		Tenants []struct {
			Tenant   string `json:"tenant"`
			Measured []struct {
				Size float64 `json:"size"`
				MPKI float64 `json:"mpki"`
			} `json:"measured"`
			Hull []struct {
				Size float64 `json:"size"`
				MPKI float64 `json:"mpki"`
			} `json:"hull"`
			AllocLines int64 `json:"allocLines"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(body, &curves); err != nil {
		t.Fatalf("curves JSON: %v in %s", err, body)
	}
	if len(curves.Tenants) != 1 || curves.Tenants[0].Tenant != "a" {
		t.Fatalf("curves payload = %s", body)
	}
	if len(curves.Tenants[0].Measured) == 0 || len(curves.Tenants[0].Hull) == 0 {
		t.Fatalf("no curves after an epoch: %s", body)
	}
	if curves.Tenants[0].AllocLines <= 0 {
		t.Fatalf("no allocation: %s", body)
	}
}

func TestRecordEndpoint(t *testing.T) {
	recordDir := t.TempDir()
	srv, _ := newServerConfig(t, store.Config{Tenants: []string{"a"}},
		serve.Config{RecordDir: recordDir})
	path := filepath.Join(recordDir, "rec.trc")

	// Bad requests first: malformed JSON, unknown action, missing path,
	// path-escape attempts, stop without start.
	if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/record", []byte("{")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON = %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/record", []byte(`{"action":"pause"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action = %d", resp.StatusCode)
	}
	if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/record", []byte(`{"action":"start"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("start without path = %d", resp.StatusCode)
	}
	for _, escape := range []string{"../evil.trc", "/etc/passwd", "sub/dir.trc", "..", ".hidden"} {
		req := fmt.Sprintf(`{"action":"start","path":%q}`, escape)
		if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/record", []byte(req)); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("path escape %q = %d, want 400", escape, resp.StatusCode)
		}
	}
	if resp, _ := do(t, http.MethodPost, srv.URL+"/v1/record", []byte(`{"action":"stop"}`)); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("stop before start = %d", resp.StatusCode)
	}

	// Start, traffic, stop: the reported count matches the traffic, and
	// the capture replays cleanly. Clients name a bare file; the server
	// anchors it inside the record dir.
	start := `{"action":"start","path":"rec.trc","gzip":true}`
	if resp, body := do(t, http.MethodPost, srv.URL+"/v1/record", []byte(start)); resp.StatusCode != http.StatusOK {
		t.Fatalf("start = %d %s", resp.StatusCode, body)
	}
	const n = 4096
	for i := 0; i < n; i++ {
		do(t, http.MethodPut, srv.URL+fmt.Sprintf("/v1/cache/a/k%d", i%512), []byte("v"))
	}
	resp, body := do(t, http.MethodPost, srv.URL+"/v1/record", []byte(`{"action":"stop"}`))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stop = %d %s", resp.StatusCode, body)
	}
	var stopped struct {
		Records int64 `json:"records"`
	}
	if err := json.Unmarshal(body, &stopped); err != nil || stopped.Records != n {
		t.Fatalf("stop payload %s (err %v), want %d records", body, err, n)
	}
	res, err := sim.RunAdaptiveTraceFile(sim.AdaptiveConfig{CapacityLines: 8192}, path)
	if err != nil {
		t.Fatalf("served trace replay: %v", err)
	}
	if res.Apps[0] != "a" {
		t.Fatalf("replay apps = %v", res.Apps)
	}
}

// TestHTTPContract pins the surface the package documentation promises
// (doc.go): the X-Talus-Cache header on cache routes, the JSON error
// body shape, and the exact /v1/record 403 body. If this test needs
// changing, doc.go needs changing in the same commit.
func TestHTTPContract(t *testing.T) {
	srv, _ := newServerConfig(t, store.Config{Tenants: []string{"a"}},
		serve.Config{MaxValueBytes: 32})
	url := srv.URL + "/v1/cache/a/contract"

	// Successful PUT: 204 with X-Talus-Cache set (cold line: miss).
	resp, _ := do(t, http.MethodPut, url, []byte("v"))
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Talus-Cache"); h != "hit" && h != "miss" {
		t.Fatalf("PUT X-Talus-Cache = %q, want hit|miss", h)
	}

	// GET of a never-stored key: 404, but the header is still present
	// (the access happened and shaped the miss curve) and the body is
	// the documented JSON error shape naming the typed error.
	resp, body := do(t, http.MethodGet, srv.URL+"/v1/cache/a/absent", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent = %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Talus-Cache"); h != "hit" && h != "miss" {
		t.Fatalf("404 GET X-Talus-Cache = %q, want hit|miss", h)
	}
	var e404 struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e404); err != nil || !strings.Contains(e404.Error, "key not found") {
		t.Fatalf("404 body = %s (err %v), want {\"error\": ...key not found...}", body, err)
	}

	// Oversized PUT: 413, documented error shape, and no cache header —
	// the request was rejected before any access happened.
	resp, body = do(t, http.MethodPut, url, bytes.Repeat([]byte("x"), 33))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized PUT = %d", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Talus-Cache"); h != "" {
		t.Fatalf("413 PUT X-Talus-Cache = %q, want unset", h)
	}
	var e413 struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e413); err != nil || !strings.Contains(e413.Error, "value too large") {
		t.Fatalf("413 body = %s (err %v)", body, err)
	}

	// Record endpoint without a record dir: 403 with the exact body the
	// package doc quotes.
	resp, body = do(t, http.MethodPost, srv.URL+"/v1/record", []byte(`{"action":"start","path":"x.trc"}`))
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("record without dir = %d", resp.StatusCode)
	}
	const want403 = `{"error":"recording disabled: the server was started without a record directory"}`
	if got := strings.TrimSpace(string(body)); got != want403 {
		t.Fatalf("403 body = %s, want exactly %s", got, want403)
	}
}

// TestRecordDisabledByDefault: without an explicit record dir the
// endpoint must refuse outright — it writes server-side files, so
// enabling it is an operator decision, not a client one.
func TestRecordDisabledByDefault(t *testing.T) {
	srv, _ := newServerConfig(t, store.Config{}, serve.Config{})
	resp, body := do(t, http.MethodPost, srv.URL+"/v1/record", []byte(`{"action":"start","path":"x.trc"}`))
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("record without record dir = %d %s, want 403", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "recording disabled") {
		t.Fatalf("403 body %s does not explain itself", body)
	}
}
