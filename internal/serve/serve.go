package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"talus/internal/cluster"
	"talus/internal/curve"
	"talus/internal/store"
)

// DefaultMaxValueBytes caps PUT bodies when the caller does not choose
// a limit: 1 MiB, generous for cache values while keeping a misbehaving
// client from buffering unbounded memory server-side.
const DefaultMaxValueBytes = 1 << 20

// Config parameterizes the handler.
type Config struct {
	// MaxValueBytes caps PUT bodies; 0 selects DefaultMaxValueBytes.
	MaxValueBytes int64
	// RecordDir is the directory trace captures may be written into.
	// Empty disables POST /v1/record entirely: the endpoint writes
	// server-side files, so it must be an explicit operator decision,
	// never a default an unauthenticated client can reach. Requests name
	// a bare file inside the directory; path separators and ".." are
	// rejected.
	RecordDir string
	// Control enables PUT /v1/control/tenants/{tenant}: live adjustment
	// of tenant objective weights. Off by default and gated exactly like
	// /v1/record — reweighting tenants shifts cache capacity between
	// them, so it must be an explicit operator decision, never a default
	// an unauthenticated client can reach. GET /v1/control (read-only
	// state) is always served.
	Control bool
	// Cluster, when non-nil, turns on thin-proxy mode: cache requests
	// whose (tenant, key) this node does not own on the consistent-hash
	// ring are forwarded to their owner and the owner's response is
	// relayed verbatim. Nil serves everything locally (single-node
	// mode). GET /v1/cluster reports the ring either way.
	Cluster *cluster.Cluster
}

// Handler serves the store over HTTP.
type Handler struct {
	st        *store.Store
	maxValue  int64
	recordDir string
	control   bool
	cluster   *cluster.Cluster
	nodeID    string
	mux       *http.ServeMux
}

// NewHandler builds the route table over st.
func NewHandler(st *store.Store, cfg Config) *Handler {
	if cfg.MaxValueBytes <= 0 {
		cfg.MaxValueBytes = DefaultMaxValueBytes
	}
	h := &Handler{st: st, maxValue: cfg.MaxValueBytes, recordDir: cfg.RecordDir, control: cfg.Control,
		cluster: cfg.Cluster, nodeID: st.Node().ID, mux: http.NewServeMux()}
	h.mux.HandleFunc("GET /v1/cache/{tenant}/{key...}", h.get)
	h.mux.HandleFunc("PUT /v1/cache/{tenant}/{key...}", h.put)
	h.mux.HandleFunc("DELETE /v1/cache/{tenant}/{key...}", h.delete)
	h.mux.HandleFunc("GET /v1/stats", h.stats)
	h.mux.HandleFunc("GET /v1/curves", h.curves)
	h.mux.HandleFunc("GET /v1/cluster", h.clusterState)
	h.mux.HandleFunc("GET /v1/control", h.controlState)
	h.mux.HandleFunc("PUT /v1/control/tenants/{tenant}", h.controlTenant)
	h.mux.HandleFunc("POST /v1/record", h.record)
	return h
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) { h.mux.ServeHTTP(w, r) }

// statusOf maps store boundary errors onto HTTP status codes.
func statusOf(err error) int {
	switch {
	case errors.Is(err, store.ErrNotFound), errors.Is(err, store.ErrUnknownTenant):
		return http.StatusNotFound
	case errors.Is(err, store.ErrValueTooLarge):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, store.ErrTenantCapacity):
		// A client-side condition, not a server fault: the tenant roster
		// is full, so minting another is refused — 429, the 4xx that says
		// "stop asking", keeps unauthenticated clients from reading a
		// 5xx as a server bug to retry against.
		return http.StatusTooManyRequests
	case errors.Is(err, store.ErrBackend):
		return http.StatusBadGateway
	case errors.Is(err, store.ErrEmptyTenant), errors.Is(err, store.ErrEmptyKey),
		errors.Is(err, store.ErrBadTTL),
		errors.Is(err, store.ErrRecording), errors.Is(err, store.ErrNotRecording):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// writeErr emits a JSON error body with the mapped status.
func writeErr(w http.ResponseWriter, err error) {
	writeJSON(w, statusOf(err), map[string]string{"error": err.Error()})
}

// writeJSON marshals v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// hitHeader reports the simulated cache outcome without disturbing the
// response body.
func hitHeader(w http.ResponseWriter, hit bool) {
	if hit {
		w.Header().Set("X-Talus-Cache", "hit")
	} else {
		w.Header().Set("X-Talus-Cache", "miss")
	}
}

// etagOf derives a value's entity tag from its bytes: a strong,
// quoted, 16-hex-digit FNV-1a hash. Identical bytes always produce
// the identical tag — across requests, processes, and nodes — which is
// what lets cluster clients and the router revalidate with
// If-None-Match instead of re-downloading values.
func etagOf(value []byte) string {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, b := range value {
		h ^= uint64(b)
		h *= prime64
	}
	var buf [18]byte
	buf[0] = '"'
	const hexdigits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		buf[1+i] = hexdigits[h>>(60-4*uint(i))&0xF]
	}
	buf[17] = '"'
	return string(buf[:])
}

// etagMatches reports whether an If-None-Match header value matches
// etag: "*" matches any current entity, otherwise any listed tag must
// equal it byte for byte (weak "W/" prefixes are ignored for the
// comparison, as RFC 9110 prescribes for If-None-Match).
func etagMatches(header, etag string) bool {
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == "*" || part == etag {
			return true
		}
	}
	return false
}

// ttlOf parses the X-Talus-TTL request header: a non-negative integer
// number of seconds. Absent (or 0) defers to the store's DefaultTTL.
func ttlOf(r *http.Request) (time.Duration, error) {
	v := r.Header.Get("X-Talus-TTL")
	if v == "" {
		return 0, nil
	}
	secs, err := strconv.ParseInt(v, 10, 32)
	if err != nil || secs < 0 {
		return 0, fmt.Errorf("%w: X-Talus-TTL %q (want non-negative integer seconds)", store.ErrBadTTL, v)
	}
	return time.Duration(secs) * time.Second, nil
}

func (h *Handler) get(w http.ResponseWriter, r *http.Request) {
	tenant, key := r.PathValue("tenant"), r.PathValue("key")
	if h.proxied(w, r, tenant, key, nil) {
		return
	}
	w.Header().Set("X-Talus-Node", h.nodeID)
	value, hit, err := h.st.Get(tenant, key)
	hitHeader(w, hit)
	if err != nil {
		writeErr(w, err)
		return
	}
	etag := etagOf(value)
	w.Header().Set("ETag", etag)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		// The client's copy is current: 304 with the tag (and the cache
		// outcome — the access happened) but no body, which is the whole
		// point: a router revalidating hot values moves ~60 bytes of
		// headers instead of the value.
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(value)
}

func (h *Handler) put(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, h.maxValue)
	if err != nil {
		writeErr(w, err)
		return
	}
	tenant, key := r.PathValue("tenant"), r.PathValue("key")
	if h.proxied(w, r, tenant, key, body) {
		return
	}
	w.Header().Set("X-Talus-Node", h.nodeID)
	ttl, err := ttlOf(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	hit, err := h.st.SetTTL(tenant, key, body, ttl)
	if err != nil {
		writeErr(w, err)
		return
	}
	hitHeader(w, hit)
	w.Header().Set("ETag", etagOf(body))
	w.WriteHeader(http.StatusNoContent)
}

// readBody drains at most maxValue bytes of request body, translating
// the over-limit error into the store's typed ErrValueTooLarge so the
// handler's status mapping stays in one place.
func readBody(w http.ResponseWriter, r *http.Request, maxValue int64) ([]byte, error) {
	body := http.MaxBytesReader(w, r.Body, maxValue)
	defer body.Close()
	buf, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return nil, fmt.Errorf("%w: body over %d bytes", store.ErrValueTooLarge, tooBig.Limit)
		}
		return nil, err
	}
	return buf, nil
}

func (h *Handler) delete(w http.ResponseWriter, r *http.Request) {
	tenant, key := r.PathValue("tenant"), r.PathValue("key")
	if h.proxied(w, r, tenant, key, nil) {
		return
	}
	w.Header().Set("X-Talus-Node", h.nodeID)
	existed, err := h.st.Delete(tenant, key)
	if err != nil {
		writeErr(w, err)
		return
	}
	if !existed {
		writeErr(w, fmt.Errorf("%w: %q", store.ErrNotFound, key))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// forwardedRequestHeaders are the cache-request headers a proxying node
// relays to the owner; forwardedResponseHeaders come back the other
// way. Kept to the protocol's own vocabulary — hop-by-hop headers and
// client connection metadata stay on their own hop.
var forwardedRequestHeaders = []string{"If-None-Match", "X-Talus-TTL", "Content-Type"}
var forwardedResponseHeaders = []string{"X-Talus-Cache", "X-Talus-Node", "ETag", "Content-Type"}

// proxied implements thin-proxy mode for one cache request. It returns
// true when the response has been written — either relayed from the
// owning peer or a 502 after the forward failed — and false when this
// node should serve locally: no cluster is configured, the request
// already took its one forwarding hop (ForwardedHeader), or the ring
// says this node owns the key.
func (h *Handler) proxied(w http.ResponseWriter, r *http.Request, tenant, key string, body []byte) bool {
	if h.cluster == nil || r.Header.Get(cluster.ForwardedHeader) != "" {
		return false
	}
	owner := h.cluster.Owner(tenant, key)
	if owner == h.cluster.Self() {
		return false
	}
	hdr := make(http.Header, len(forwardedRequestHeaders))
	for _, k := range forwardedRequestHeaders {
		if v := r.Header.Get(k); v != "" {
			hdr.Set(k, v)
		}
	}
	resp, err := h.cluster.Forward(r.Context(), r.Method, owner, r.URL.EscapedPath(), body, hdr)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error": fmt.Sprintf("forward to owner %s failed: %v", owner, err)})
		return true
	}
	for _, k := range forwardedResponseHeaders {
		if v := resp.Header.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(resp.Status)
	w.Write(resp.Body)
	return true
}

// clusterNode is one member in the /v1/cluster payload.
type clusterNode struct {
	Node  string  `json:"node"`
	Share float64 `json:"share"` // analytic fraction of the ring's hash space
	Self  bool    `json:"self,omitempty"`
}

// clusterResponse is the /v1/cluster payload. Single-node servers
// report clustered=false with only their own identity, so monitoring
// can scrape the endpoint without knowing the deployment shape.
type clusterResponse struct {
	Clustered bool            `json:"clustered"`
	Self      string          `json:"self,omitempty"`
	VNodes    int             `json:"vnodes,omitempty"`
	Seed      uint64          `json:"seed,omitempty"`
	Node      store.NodeStats `json:"node"`
	Nodes     []clusterNode   `json:"nodes,omitempty"`
}

func (h *Handler) clusterState(w http.ResponseWriter, r *http.Request) {
	resp := clusterResponse{Node: h.st.Node()}
	if h.cluster != nil {
		ring := h.cluster.Ring()
		shares := ring.Shares()
		resp.Clustered = true
		resp.Self = h.cluster.Self()
		resp.VNodes = ring.VNodes()
		resp.Seed = ring.Seed()
		for _, n := range ring.Nodes() {
			resp.Nodes = append(resp.Nodes, clusterNode{Node: n, Share: shares[n], Self: n == resp.Self})
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	Tenants       []store.TenantStats `json:"tenants"`
	Epochs        int                 `json:"epochs"`
	CapacityLines int64               `json:"capacityLines"`
	Cache         *cacheStats         `json:"cache,omitempty"`
	Recording     bool                `json:"recording"`
	Bounded       bool                `json:"bounded"`            // value lifetime coupled to line residency
	Bytes         int64               `json:"bytes"`              // value bytes held across all tenants
	MaxBytes      int64               `json:"maxBytes,omitempty"` // configured bound (absent when unbounded)
	Backend       bool                `json:"backend"`            // a backing tier is configured
	Node          store.NodeStats     `json:"node"`               // serving-instance identity
}

type cacheStats struct {
	Accesses int64   `json:"accesses"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hitRate"`
}

func (h *Handler) stats(w http.ResponseWriter, r *http.Request) {
	ac := h.st.Cache()
	resp := statsResponse{
		Tenants:       h.st.StatsAll(),
		Epochs:        ac.Epochs(),
		CapacityLines: ac.Shadowed().Inner().PartitionableCapacity(),
		Recording:     h.st.Recording(),
		Bounded:       h.st.Bounded(),
		Bytes:         h.st.Bytes(),
		MaxBytes:      h.st.MaxBytes(),
		Backend:       h.st.Backend() != nil,
		Node:          h.st.Node(),
	}
	if cs, ok := h.st.CacheStats(); ok {
		resp.Cache = &cacheStats{Accesses: cs.Accesses, Hits: cs.Hits, Misses: cs.Misses, HitRate: cs.HitRate()}
	}
	writeJSON(w, http.StatusOK, resp)
}

// curvesResponse is the /v1/curves payload.
type curvesResponse struct {
	Tenants []tenantCurves `json:"tenants"`
	Epochs  int            `json:"epochs"`
}

type tenantCurves struct {
	Tenant     string        `json:"tenant"`
	AllocLines int64         `json:"allocLines"`
	Measured   []curve.Point `json:"measured,omitempty"`
	Hull       []curve.Point `json:"hull,omitempty"`
}

func (h *Handler) curves(w http.ResponseWriter, r *http.Request) {
	ac := h.st.Cache()
	allocs := ac.Allocations()
	resp := curvesResponse{Epochs: ac.Epochs()}
	for _, st := range h.st.StatsAll() {
		tc := tenantCurves{Tenant: st.Tenant}
		if st.Partition < len(allocs) {
			tc.AllocLines = allocs[st.Partition]
		}
		measured, hulled, err := h.st.Curves(st.Tenant)
		if err != nil {
			writeErr(w, err)
			return
		}
		tc.Measured = measured.Points()
		tc.Hull = hulled.Points()
		resp.Tenants = append(resp.Tenants, tc)
	}
	writeJSON(w, http.StatusOK, resp)
}

// controlState serves GET /v1/control: the epoch controller's live
// tunables (current epoch budget and interval, last churn measurement,
// retain) plus every tenant's weight, bounds, and allocation. Read-only,
// so it is always available, like /v1/stats.
func (h *Handler) controlState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.st.Control())
}

// controlTenantRequest is the PUT /v1/control/tenants/{tenant} body.
type controlTenantRequest struct {
	Weight float64 `json:"weight"`
}

// controlTenant serves PUT /v1/control/tenants/{tenant}: sets a
// registered tenant's objective weight. Gated behind Config.Control the
// way /v1/record is gated behind its record directory.
func (h *Handler) controlTenant(w http.ResponseWriter, r *http.Request) {
	if !h.control {
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": "control disabled: the server was started without the control plane enabled"})
		return
	}
	var req controlTenantRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad control request: " + err.Error()})
		return
	}
	if req.Weight < 0 {
		// JSON cannot carry NaN/Inf, so a sign check is the whole of the
		// value validation the adaptive layer would otherwise reject.
		writeJSON(w, http.StatusBadRequest, map[string]string{
			"error": fmt.Sprintf("weight %g must be non-negative", req.Weight)})
		return
	}
	tenant := r.PathValue("tenant")
	if err := h.st.SetTenantWeight(tenant, req.Weight); err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenant": tenant, "weight": req.Weight})
}

// recordRequest is the /v1/record body.
type recordRequest struct {
	Action string `json:"action"` // "start" | "stop"
	Path   string `json:"path"`   // trace file name inside the record dir (start)
	Gzip   bool   `json:"gzip"`
}

func (h *Handler) record(w http.ResponseWriter, r *http.Request) {
	if h.recordDir == "" {
		writeJSON(w, http.StatusForbidden, map[string]string{
			"error": "recording disabled: the server was started without a record directory"})
		return
	}
	var req recordRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad record request: " + err.Error()})
		return
	}
	switch req.Action {
	case "start":
		// The client names a file, never a path: this endpoint writes
		// server-side, so anything that escapes the record dir is refused.
		if req.Path == "" || req.Path != filepath.Base(req.Path) || strings.HasPrefix(req.Path, ".") {
			writeJSON(w, http.StatusBadRequest, map[string]string{
				"error": fmt.Sprintf("record start needs a bare file name inside the record dir, got %q", req.Path)})
			return
		}
		path := filepath.Join(h.recordDir, req.Path)
		if err := h.st.StartRecording(path, req.Gzip); err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"recording": true, "path": path})
	case "stop":
		count, err := h.st.StopRecording()
		if err != nil {
			writeErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"recording": false, "records": count})
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("unknown record action %q (valid: start, stop)", req.Action)})
	}
}
