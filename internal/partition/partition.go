package partition

import (
	"errors"
	"fmt"
	"sort"
)

// Scheme is a cache partitioning mechanism for a set-associative array.
// Implementations are not safe for concurrent use; the simulator is
// single-threaded per cache.
type Scheme interface {
	// Name identifies the scheme ("way", "set", "vantage", "none").
	Name() string
	// NumPartitions returns the number of hardware partitions.
	NumPartitions() int
	// Configure fixes the cache geometry. Must be called once before use.
	Configure(sets, assoc int) error
	// SetIndex maps an address hash to a set for an access by partition p.
	SetIndex(hashVal uint64, p int) int
	// StableSetIndex reports whether SetIndex is a pure function of
	// (hashVal, p) — independent of targets, occupancy, and any state
	// SetTargets mutates. Lock-free readers may only compute set indices
	// on stable schemes: an unstable scheme (set partitioning's movable
	// ranges) could be mid-repartition, sending an unlocked reader to a
	// set another partition now owns.
	StableSetIndex() bool
	// Candidates appends to buf the way indices (0..assoc-1) eligible to
	// receive a fill by partition p into set, given each way's current
	// owner partition (-1 = free), and returns the result. An empty
	// result means the fill cannot be placed (the access bypasses).
	Candidates(set, p int, owners []int32, buf []int) []int
	// OnFill and OnEvict maintain occupancy accounting.
	OnFill(p int)
	OnEvict(p int)
	// SetTargets programs per-partition target sizes in lines;
	// len(sizes) must equal NumPartitions.
	SetTargets(sizes []int64) error
	// Occupancy and Target report per-partition state in lines.
	Occupancy(p int) int64
	Target(p int) int64
	// PartitionableFraction is the fraction of capacity whose allocation
	// the scheme strictly controls (1.0, or 0.9 for Vantage's managed
	// region).
	PartitionableFraction() float64
	// GranuleLines is the allocation granularity in lines.
	GranuleLines() int64
	// Reset clears occupancy (cache flush).
	Reset()
}

// Errors returned by schemes.
var (
	ErrNotConfigured = errors.New("partition: scheme not configured")
	ErrBadTargets    = errors.New("partition: bad target sizes")
)

// base carries the bookkeeping shared by all schemes.
type base struct {
	n       int
	sets    int
	assoc   int
	occ     []int64
	targets []int64
}

func newBase(n int) base {
	return base{n: n, occ: make([]int64, n), targets: make([]int64, n)}
}

func (b *base) NumPartitions() int { return b.n }

func (b *base) Configure(sets, assoc int) error {
	if sets <= 0 || assoc <= 0 {
		return fmt.Errorf("partition: bad geometry %d sets × %d ways", sets, assoc)
	}
	b.sets, b.assoc = sets, assoc
	return nil
}

func (b *base) OnFill(p int)  { b.occ[p]++ }
func (b *base) OnEvict(p int) { b.occ[p]-- }

func (b *base) Occupancy(p int) int64 { return b.occ[p] }
func (b *base) Target(p int) int64    { return b.targets[p] }

func (b *base) storeTargets(sizes []int64) error {
	if len(sizes) != b.n {
		return fmt.Errorf("%w: want %d sizes, got %d", ErrBadTargets, b.n, len(sizes))
	}
	for i, s := range sizes {
		if s < 0 {
			return fmt.Errorf("%w: partition %d size %d", ErrBadTargets, i, s)
		}
	}
	copy(b.targets, sizes)
	return nil
}

func (b *base) Reset() {
	for i := range b.occ {
		b.occ[i] = 0
	}
}

// allWays appends 0..assoc-1 to buf.
func allWays(assoc int, buf []int) []int {
	for w := 0; w < assoc; w++ {
		buf = append(buf, w)
	}
	return buf
}

// apportion distributes total units across parts proportionally to sizes
// using the largest-remainder (Hamilton) method, deterministically. The
// result always sums to total.
func apportion(sizes []int64, total int) []int {
	n := len(sizes)
	out := make([]int, n)
	var sum int64
	for _, s := range sizes {
		sum += s
	}
	if sum <= 0 {
		// Degenerate: spread evenly.
		for i := range out {
			out[i] = total / n
		}
		for i := 0; i < total%n; i++ {
			out[i]++
		}
		return out
	}
	type rem struct {
		idx  int
		frac float64
	}
	rems := make([]rem, n)
	used := 0
	for i, s := range sizes {
		exact := float64(s) / float64(sum) * float64(total)
		out[i] = int(exact)
		used += out[i]
		rems[i] = rem{i, exact - float64(out[i])}
	}
	sort.Slice(rems, func(a, b int) bool {
		if rems[a].frac != rems[b].frac {
			return rems[a].frac > rems[b].frac
		}
		return rems[a].idx < rems[b].idx
	})
	for i := 0; used < total; i++ {
		out[rems[i%n].idx]++
		used++
	}
	return out
}
