package partition

import (
	"testing"
	"testing/quick"
)

func TestApportionSums(t *testing.T) {
	cases := []struct {
		sizes []int64
		total int
	}{
		{[]int64{1, 1, 1}, 10},
		{[]int64{0, 0}, 7},
		{[]int64{100, 200, 700}, 32},
		{[]int64{5}, 3},
		{[]int64{1, 1000000}, 16},
	}
	for _, tc := range cases {
		got := apportion(tc.sizes, tc.total)
		sum := 0
		for _, g := range got {
			if g < 0 {
				t.Fatalf("apportion(%v,%d) negative share: %v", tc.sizes, tc.total, got)
			}
			sum += g
		}
		if sum != tc.total {
			t.Fatalf("apportion(%v,%d) sums to %d: %v", tc.sizes, tc.total, sum, got)
		}
	}
}

func TestApportionProportional(t *testing.T) {
	got := apportion([]int64{100, 300}, 4)
	if got[0] != 1 || got[1] != 3 {
		t.Fatalf("apportion = %v, want [1 3]", got)
	}
}

func TestQuickApportion(t *testing.T) {
	f := func(raw []uint16, totalRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		sizes := make([]int64, len(raw))
		for i, r := range raw {
			sizes[i] = int64(r)
		}
		total := int(totalRaw)
		got := apportion(sizes, total)
		sum := 0
		for _, g := range got {
			if g < 0 {
				return false
			}
			sum += g
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWayPartitionRanges(t *testing.T) {
	s := NewWay(2)
	if err := s.Configure(64, 16); err != nil {
		t.Fatal(err)
	}
	if s.WaysOf(0)+s.WaysOf(1) != 16 {
		t.Fatal("default ways must cover the cache")
	}
	// 25% / 75% split.
	if err := s.SetTargets([]int64{256, 768}); err != nil {
		t.Fatal(err)
	}
	if s.WaysOf(0) != 4 || s.WaysOf(1) != 12 {
		t.Fatalf("ways = %d/%d, want 4/12", s.WaysOf(0), s.WaysOf(1))
	}
	// Candidates must be disjoint way ranges.
	buf := make([]int, 0, 16)
	c0 := append([]int(nil), s.Candidates(0, 0, nil, buf[:0])...)
	c1 := append([]int(nil), s.Candidates(0, 1, nil, buf[:0])...)
	if len(c0) != 4 || len(c1) != 12 {
		t.Fatalf("candidate counts %d/%d", len(c0), len(c1))
	}
	seen := map[int]bool{}
	for _, w := range append(c0, c1...) {
		if seen[w] {
			t.Fatalf("way %d in both partitions", w)
		}
		seen[w] = true
	}
	if s.GranuleLines() != 64 {
		t.Fatalf("granule = %d, want sets (64)", s.GranuleLines())
	}
}

func TestWayPartitionZeroTarget(t *testing.T) {
	s := NewWay(2)
	if err := s.Configure(16, 8); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTargets([]int64{0, 128}); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Candidates(0, 0, nil, nil)); got != 0 {
		t.Fatalf("zero-way partition has %d candidates, want 0", got)
	}
}

func TestSetPartitionRanges(t *testing.T) {
	s := NewSet(2)
	if err := s.Configure(96, 4); err != nil {
		t.Fatal(err)
	}
	// 1:2 split as in the paper's Fig. 2 worked example.
	if err := s.SetTargets([]int64{128, 256}); err != nil {
		t.Fatal(err)
	}
	if s.SetsOf(0) != 32 || s.SetsOf(1) != 64 {
		t.Fatalf("sets = %d/%d, want 32/64", s.SetsOf(0), s.SetsOf(1))
	}
	// Partition 0 indexes only [0,32); partition 1 only [32,96).
	for h := uint64(0); h < 1000; h++ {
		if set := s.SetIndex(h, 0); set < 0 || set >= 32 {
			t.Fatalf("part 0 mapped to set %d", set)
		}
		if set := s.SetIndex(h, 1); set < 32 || set >= 96 {
			t.Fatalf("part 1 mapped to set %d", set)
		}
	}
	if s.GranuleLines() != 4 {
		t.Fatalf("granule = %d, want assoc (4)", s.GranuleLines())
	}
}

func TestVantageSelectsOverQuota(t *testing.T) {
	s := NewVantage(2)
	if err := s.Configure(4, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTargets([]int64{8, 8}); err != nil {
		t.Fatal(err)
	}
	// Partition 0 over quota (12 lines), partition 1 under (4).
	for i := 0; i < 12; i++ {
		s.OnFill(0)
	}
	for i := 0; i < 4; i++ {
		s.OnFill(1)
	}
	owners := []int32{0, 0, 1, 1}
	cands := s.Candidates(0, 1, owners, nil)
	for _, w := range cands {
		if owners[w] != 0 {
			t.Fatalf("victim way %d belongs to partition %d, want over-quota 0", w, owners[w])
		}
	}
}

func TestVantagePrefersFreeWays(t *testing.T) {
	s := NewVantage(2)
	if err := s.Configure(4, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTargets([]int64{7, 7}); err != nil {
		t.Fatal(err)
	}
	owners := []int32{0, -1, 1, -1}
	cands := s.Candidates(0, 0, owners, nil)
	if len(cands) != 2 {
		t.Fatalf("free-way candidates = %v", cands)
	}
	for _, w := range cands {
		if owners[w] != -1 {
			t.Fatalf("candidate %d not free", w)
		}
	}
}

func TestVantageAllUnderQuota(t *testing.T) {
	s := NewVantage(2)
	if err := s.Configure(4, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.SetTargets([]int64{100, 100}); err != nil {
		t.Fatal(err)
	}
	s.OnFill(0)
	s.OnFill(1)
	owners := []int32{0, 0, 1, 1}
	cands := s.Candidates(0, 0, owners, nil)
	if len(cands) != 4 {
		t.Fatalf("under-quota fallback should allow all ways, got %v", cands)
	}
}

func TestVantagePartitionableFraction(t *testing.T) {
	s := NewVantage(1)
	if got := s.PartitionableFraction(); got != 0.9 {
		t.Fatalf("fraction = %g, want 0.9", got)
	}
}

func TestOccupancyAccounting(t *testing.T) {
	s := NewVantage(2)
	if err := s.Configure(4, 4); err != nil {
		t.Fatal(err)
	}
	s.OnFill(0)
	s.OnFill(0)
	s.OnEvict(0)
	s.OnFill(1)
	if s.Occupancy(0) != 1 || s.Occupancy(1) != 1 {
		t.Fatalf("occupancy = %d/%d", s.Occupancy(0), s.Occupancy(1))
	}
	s.Reset()
	if s.Occupancy(0) != 0 {
		t.Fatal("Reset must clear occupancy")
	}
}

func TestSetTargetsValidation(t *testing.T) {
	schemes := []Scheme{NewNone(2), NewWay(2), NewSet(2), NewVantage(2)}
	for _, s := range schemes {
		if err := s.Configure(16, 4); err != nil {
			t.Fatal(err)
		}
		if err := s.SetTargets([]int64{1}); err == nil {
			t.Errorf("%s: wrong target count accepted", s.Name())
		}
		if err := s.SetTargets([]int64{-1, 5}); err == nil {
			t.Errorf("%s: negative target accepted", s.Name())
		}
		if err := s.SetTargets([]int64{32, 32}); err != nil {
			t.Errorf("%s: valid targets rejected: %v", s.Name(), err)
		}
	}
}

func TestUnconfiguredRejected(t *testing.T) {
	w := NewWay(2)
	if err := w.SetTargets([]int64{1, 1}); err == nil {
		t.Fatal("unconfigured way scheme must reject targets")
	}
	st := NewSet(2)
	if err := st.SetTargets([]int64{1, 1}); err == nil {
		t.Fatal("unconfigured set scheme must reject targets")
	}
	v := NewVantage(2)
	if err := v.SetTargets([]int64{1, 1}); err == nil {
		t.Fatal("unconfigured vantage scheme must reject targets")
	}
}

func TestBadGeometryRejected(t *testing.T) {
	if err := NewNone(1).Configure(0, 4); err == nil {
		t.Fatal("zero sets must be rejected")
	}
	if err := NewNone(1).Configure(4, 0); err == nil {
		t.Fatal("zero assoc must be rejected")
	}
}

func TestFutilityFullyPartitionable(t *testing.T) {
	s := NewFutility(2)
	if s.Name() != "futility" {
		t.Fatalf("name = %s", s.Name())
	}
	if got := s.PartitionableFraction(); got != 1.0 {
		t.Fatalf("futility fraction = %g, want 1.0 (no unmanaged region)", got)
	}
	if err := s.Configure(16, 4); err != nil {
		t.Fatal(err)
	}
	// Default targets must cover the whole cache (vs Vantage's 90%).
	if got := s.Target(0) + s.Target(1); got != 64 {
		t.Fatalf("default targets sum to %d, want 64", got)
	}
	// Inherits Vantage's enforcement: zero-target partitions bypass.
	if err := s.SetTargets([]int64{0, 64}); err != nil {
		t.Fatal(err)
	}
	if cands := s.Candidates(0, 0, []int32{1, 1, 1, 1}, nil); len(cands) != 0 {
		t.Fatalf("zero-target fill should bypass, got %v", cands)
	}
}
