// Package partition implements the cache-partitioning schemes Talus runs
// on (paper §II-B, §VI-B): way partitioning, set partitioning, and a
// Vantage-style fine-grained scheme with a 10% unmanaged region, plus an
// unpartitioned pass-through for baselines.
//
// A Scheme plugs into the set-associative cache array (internal/cache): it
// maps accesses to sets, restricts which ways a fill may victimize, and
// tracks per-partition occupancy against software-programmed targets. The
// replacement policy then ranks the candidate ways the scheme allows.
// Talus only requires of a scheme what Assumption 2 requires: that a
// partition's miss rate be a function of its size — so schemes enforce
// sizes and otherwise stay out of the way.
package partition
