// Concrete partitioning schemes: unpartitioned, way, set, and
// Vantage-style fine-grained.

package partition

import "talus/internal/hash"

// --- Unpartitioned ----------------------------------------------------

// None is the unpartitioned baseline: every partition's accesses share the
// whole array, targets are ignored, and victims may come from any way.
// Per-partition occupancy is still tracked for reporting.
type None struct{ base }

// NewNone returns an unpartitioned scheme exposing n partition IDs (used
// only for statistics attribution).
func NewNone(n int) *None { return &None{newBase(n)} }

// Name implements Scheme.
func (s *None) Name() string { return "none" }

// SetIndex implements Scheme: plain hashed indexing.
func (s *None) SetIndex(hashVal uint64, _ int) int { return hash.Reduce(hashVal, s.sets) }

// StableSetIndex implements Scheme: plain hashed indexing never moves.
func (s *None) StableSetIndex() bool { return true }

// Candidates implements Scheme: every way is eligible.
func (s *None) Candidates(_, _ int, _ []int32, buf []int) []int {
	return allWays(s.assoc, buf)
}

// SetTargets implements Scheme (targets recorded but not enforced).
func (s *None) SetTargets(sizes []int64) error { return s.storeTargets(sizes) }

// PartitionableFraction implements Scheme.
func (s *None) PartitionableFraction() float64 { return 1.0 }

// GranuleLines implements Scheme.
func (s *None) GranuleLines() int64 { return 1 }

// --- Way partitioning ---------------------------------------------------

// Way implements way partitioning (Albonesi; Chiou et al.): partition p
// owns a contiguous range of ways in every set, so allocations come in
// coarse granules of one way (= sets lines) and low way counts degrade
// associativity — the Assumption 2 violation §VI-B warns about. Lookups
// remain global (a partition can hit in any way); only victim selection is
// restricted to the partition's ways.
type Way struct {
	base
	startWay []int // partition p owns ways [startWay[p], startWay[p+1])
}

// NewWay returns a way-partitioning scheme with n partitions.
func NewWay(n int) *Way { return &Way{base: newBase(n)} }

// Name implements Scheme.
func (s *Way) Name() string { return "way" }

// Configure implements Scheme, defaulting to an even split of ways.
func (s *Way) Configure(sets, assoc int) error {
	if err := s.base.Configure(sets, assoc); err != nil {
		return err
	}
	even := make([]int64, s.n)
	for i := range even {
		even[i] = 1
	}
	s.applyWays(apportion(even, assoc))
	return nil
}

// SetIndex implements Scheme.
func (s *Way) SetIndex(hashVal uint64, _ int) int { return hash.Reduce(hashVal, s.sets) }

// StableSetIndex implements Scheme: way repartitioning never remaps sets.
func (s *Way) StableSetIndex() bool { return true }

// Candidates implements Scheme: only the partition's own ways.
func (s *Way) Candidates(_, p int, _ []int32, buf []int) []int {
	for w := s.startWay[p]; w < s.startWay[p+1]; w++ {
		buf = append(buf, w)
	}
	return buf
}

// SetTargets implements Scheme: apportions the assoc ways across
// partitions proportionally to the requested line counts (coarsening that
// Talus compensates for by recomputing ρ; see core.CoarsenToGranule).
func (s *Way) SetTargets(sizes []int64) error {
	if s.sets == 0 {
		return ErrNotConfigured
	}
	if err := s.storeTargets(sizes); err != nil {
		return err
	}
	s.applyWays(apportion(sizes, s.assoc))
	return nil
}

func (s *Way) applyWays(ways []int) {
	s.startWay = make([]int, s.n+1)
	for i, w := range ways {
		s.startWay[i+1] = s.startWay[i] + w
	}
}

// WaysOf returns the number of ways partition p currently owns.
func (s *Way) WaysOf(p int) int { return s.startWay[p+1] - s.startWay[p] }

// PartitionableFraction implements Scheme.
func (s *Way) PartitionableFraction() float64 { return 1.0 }

// GranuleLines implements Scheme: one way spans every set.
func (s *Way) GranuleLines() int64 { return int64(s.sets) }

// --- Set partitioning ---------------------------------------------------

// Set implements set partitioning (page coloring / reconfigurable caches):
// partition p owns a contiguous range of sets, and its accesses index only
// within that range — exactly the mechanism of the paper's worked example
// (Fig. 2), where the 4 MB Talus cache splits sets 1:5 between shadow
// partitions while accesses split 1:2.
type Set struct {
	base
	startSet []int
}

// NewSet returns a set-partitioning scheme with n partitions.
func NewSet(n int) *Set { return &Set{base: newBase(n)} }

// Name implements Scheme.
func (s *Set) Name() string { return "set" }

// Configure implements Scheme, defaulting to an even split of sets.
func (s *Set) Configure(sets, assoc int) error {
	if err := s.base.Configure(sets, assoc); err != nil {
		return err
	}
	even := make([]int64, s.n)
	for i := range even {
		even[i] = 1
	}
	s.applySets(apportion(even, sets))
	return nil
}

// SetIndex implements Scheme: index within the partition's set range. A
// partition with zero sets maps to set 0 of the range start; Candidates
// will reject the fill.
func (s *Set) SetIndex(hashVal uint64, p int) int {
	count := s.startSet[p+1] - s.startSet[p]
	if count <= 0 {
		return s.startSet[p] % s.sets
	}
	return s.startSet[p] + hash.Reduce(hashVal, count)
}

// StableSetIndex implements Scheme: set ranges move on SetTargets, so
// unlocked readers must not compute set indices here.
func (s *Set) StableSetIndex() bool { return false }

// Candidates implements Scheme: all ways of the (partition-local) set, or
// none if the partition owns no sets.
func (s *Set) Candidates(_, p int, _ []int32, buf []int) []int {
	if s.startSet[p+1]-s.startSet[p] <= 0 {
		return buf[:0]
	}
	return allWays(s.assoc, buf)
}

// SetTargets implements Scheme. Repartitioning sets remaps addresses, so
// resident lines may become unreachable until evicted; like page
// recoloring, set repartitioning is best done rarely.
func (s *Set) SetTargets(sizes []int64) error {
	if s.sets == 0 {
		return ErrNotConfigured
	}
	if err := s.storeTargets(sizes); err != nil {
		return err
	}
	s.applySets(apportion(sizes, s.sets))
	return nil
}

func (s *Set) applySets(sets []int) {
	s.startSet = make([]int, s.n+1)
	for i, c := range sets {
		s.startSet[i+1] = s.startSet[i] + c
	}
}

// SetsOf returns the number of sets partition p currently owns.
func (s *Set) SetsOf(p int) int { return s.startSet[p+1] - s.startSet[p] }

// PartitionableFraction implements Scheme.
func (s *Set) PartitionableFraction() float64 { return 1.0 }

// GranuleLines implements Scheme: one set holds assoc lines.
func (s *Set) GranuleLines() int64 { return int64(s.assoc) }

// --- Vantage-style fine-grained partitioning ----------------------------

// Vantage models Vantage partitioning (Sanchez & Kozyrakis, ISCA 2011) by
// its contract rather than its microarchitecture: partitions are sized at
// line granularity, sizes are enforced by preferentially evicting from the
// partition most over its target, and a fraction of the cache (the
// unmanaged region, 10% by default) is not guaranteed to any partition.
// This matches what Talus requires (§VI-B): fine-grained allocations with
// capacity determining miss rate, with Talus assuming only 0.9·s of a
// size-s cache is partitionable.
type Vantage struct {
	base
	unmanaged float64
}

// DefaultUnmanagedFraction is the paper's Vantage unmanaged region size.
const DefaultUnmanagedFraction = 0.10

// NewVantage returns a Vantage-style scheme with n partitions and the
// default 10% unmanaged region.
func NewVantage(n int) *Vantage {
	return &Vantage{base: newBase(n), unmanaged: DefaultUnmanagedFraction}
}

// Name implements Scheme.
func (s *Vantage) Name() string { return "vantage" }

// Configure implements Scheme, defaulting targets to an even split of the
// managed region so a freshly built cache caches (zero targets would
// bypass everything under rule 1 of Candidates).
func (s *Vantage) Configure(sets, assoc int) error {
	if err := s.base.Configure(sets, assoc); err != nil {
		return err
	}
	managed := int64(float64(sets*assoc) * (1 - s.unmanaged))
	for i := range s.targets {
		share := managed / int64(s.n)
		if int64(i) < managed%int64(s.n) {
			share++
		}
		s.targets[i] = share
	}
	return nil
}

// SetIndex implements Scheme: global hashed indexing (partitions share all
// sets).
func (s *Vantage) SetIndex(hashVal uint64, _ int) int { return hash.Reduce(hashVal, s.sets) }

// StableSetIndex implements Scheme: partitions share all sets under a
// fixed hash; only victim choice depends on mutable targets.
func (s *Vantage) StableSetIndex() bool { return true }

// Candidates implements Scheme, enforcing sizes the way Vantage's
// demotion logic does, in priority order:
//
//  1. A zero-target partition never allocates: its fills bypass entirely
//     (in Vantage such lines would enter the unmanaged region and be
//     demoted before any reuse). Talus relies on this when a hull anchors
//     at α = 0, turning the α shadow partition into pure bypass.
//  2. Free ways are always eligible.
//  3. Otherwise the victim comes from the partition that most exceeds its
//     target (occupancy/target ratio) among partitions resident in this
//     set.
//  4. If nobody is over target, any way is eligible and the replacement
//     policy decides. This is the unmanaged-region slack, and it also
//     absorbs set-conflict pressure: when several at-quota partitions
//     collide in a hot set, the globally oldest line leaves, spreading
//     conflict misses evenly instead of pinning them on one partition
//     (Vantage's high-associativity zcache does the equivalent).
func (s *Vantage) Candidates(_, p int, owners []int32, buf []int) []int {
	if s.targets[p] <= 0 {
		return buf[:0] // rule 1: zero-size partitions bypass
	}
	for w, o := range owners { // rule 2: free ways
		if o < 0 {
			buf = append(buf, w)
		}
	}
	if len(buf) > 0 {
		return buf
	}
	// Rule 3: most over-quota resident partition. Overage occ/target is
	// ranked by integer cross-multiplication — no division on the miss
	// path. Products fit int easily (both factors are line counts).
	occ, targets := s.occ, s.targets
	victim, vOcc, vTgt := -1, int64(0), int64(1)
	vZero := false // victim has a zero target: maximal overage class
	for _, o := range owners {
		q := int(o)
		if q == victim {
			continue
		}
		oc, t := occ[q], targets[q]
		if t <= 0 {
			// Any occupancy over a zero target is maximal overage; rank
			// zero-target partitions among themselves by occupancy.
			if oc > 0 && (!vZero || oc > vOcc) {
				victim, vOcc, vTgt, vZero = q, oc, 1, true
			}
			continue
		}
		if vZero || oc <= t { // over-quota means occ > target
			continue
		}
		if oc*vTgt > vOcc*t {
			victim, vOcc, vTgt = q, oc, t
		}
	}
	if victim < 0 {
		return allWays(len(owners), buf) // rule 4: unmanaged slack
	}
	for w, o := range owners {
		if int(o) == victim {
			buf = append(buf, w)
		}
	}
	return buf
}

// SetTargets implements Scheme.
func (s *Vantage) SetTargets(sizes []int64) error {
	if s.sets == 0 {
		return ErrNotConfigured
	}
	return s.storeTargets(sizes)
}

// PartitionableFraction implements Scheme: only the managed region's
// capacity is guaranteed.
func (s *Vantage) PartitionableFraction() float64 { return 1 - s.unmanaged }

// GranuleLines implements Scheme.
func (s *Vantage) GranuleLines() int64 { return 1 }

// --- Futility-Scaling-style partitioning ---------------------------------

// Futility models Futility Scaling (Wang & Chen, MICRO 2014) by its
// contract: fine-grained line-level partitioning like Vantage, but with
// *no unmanaged region* — the whole cache is strictly partitionable. The
// paper notes (§VI-B) that using Talus with Futility Scaling avoids
// Vantage's s′ = 0.9·s capacity complication; this scheme exists to
// demonstrate exactly that (see the ablation experiment).
type Futility struct {
	Vantage
}

// NewFutility returns a Futility-Scaling-style scheme with n partitions.
func NewFutility(n int) *Futility {
	f := &Futility{Vantage{base: newBase(n), unmanaged: 0}}
	return f
}

// Name implements Scheme.
func (s *Futility) Name() string { return "futility" }
