package sim

import (
	"testing"

	"talus/internal/curve"
	"talus/internal/hull"
	"talus/internal/monitor"
	"talus/internal/workload"
)

// TestCloneCliffCalibration profiles each cliff clone with a UMON bank
// and checks the measured LRU cliff sits near the position the registry
// promises (workload.CliffApps). This pins the scanLinesFor interleave
// compensation: if mixture weights drift, cliffs move and this fails.
func TestCloneCliffCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling all cliff apps is slow")
	}
	for name, cliff := range workload.CliffApps() {
		name, cliff := name, cliff
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			spec, ok := workload.Lookup(name)
			if !ok {
				t.Fatalf("%s missing", name)
			}
			// Monitor sized at the cliff: coverage spans [cliff/4, 4×cliff].
			mon, err := monitor.NewLRUMonitor(cliff, 17)
			if err != nil {
				t.Fatal(err)
			}
			app := workload.NewApp(spec, 23)
			// Several reuse laps of the scan: the lap is at most
			// cliff-lines accesses divided by the scan's weight; 8×
			// cliff accesses is a safe overestimate.
			accesses := 8 * cliff
			if accesses < 1<<21 {
				accesses = 1 << 21
			}
			for i := int64(0); i < accesses; i++ {
				mon.Observe(app.Next())
			}
			c, err := mon.Curve(float64(accesses) / spec.APKI)
			if err != nil {
				t.Fatal(err)
			}
			// The hull's knee (the β anchor bracketing 60% of the cliff)
			// approximates the measured cliff position.
			h := hull.Lower(c)
			_, beta, okN := hull.Neighbors(h, float64(cliff)*0.6)
			if !okN {
				t.Fatalf("no interpolable region below the cliff; curve: %v", c)
			}
			lo, hi := float64(cliff)*0.45, float64(cliff)*1.8
			if beta.Size < lo || beta.Size > hi {
				t.Errorf("measured cliff at %.2f MB, spec says %.2f MB (accept [%.2f, %.2f])",
					curve.LinesToMB(beta.Size), curve.LinesToMB(float64(cliff)),
					curve.LinesToMB(lo), curve.LinesToMB(hi))
			}
			// And the drop across the cliff must be substantial: the
			// curve beyond must be well below the plateau.
			plateau := c.Eval(float64(cliff) * 0.5)
			after := c.Eval(float64(cliff) * 2)
			if !(after < plateau*0.85) {
				t.Errorf("cliff too shallow: plateau %.2f vs after %.2f MPKI", plateau, after)
			}
		})
	}
}
