package sim

import (
	"testing"

	"talus/internal/workload"
)

// TestMixAdaptsToPhaseChange stresses Assumption 1's machinery: a
// workload alternating between two working-set phases. The decaying
// monitors must track the phase transitions well enough that Talus-hill
// still beats the unpartitioned baseline and never collapses.
func TestMixAdaptsToPhaseChange(t *testing.T) {
	phased := workload.Spec{
		Name: "phased", APKI: 20, CPIBase: 0.5, MLP: 2,
		Build: func() workload.Pattern {
			return &workload.Phased{Stages: []workload.Stage{
				{Pattern: &workload.Scan{Lines: 8192}, Length: 400000},
				{Pattern: &workload.Rand{Lines: 2048}, Length: 400000},
			}}
		},
	}
	steady := workload.Spec{
		Name: "steady", APKI: 12, CPIBase: 0.5, MLP: 2,
		Build: func() workload.Pattern { return &workload.Rand{Lines: 4096} },
	}
	apps := []workload.Spec{phased, steady, phased, steady}

	run := func(mode Mode) *MixResult {
		t.Helper()
		res, err := RunMix(MixConfig{
			Apps:          apps,
			CapacityLines: 16384,
			Assoc:         32,
			Mode:          mode,
			EpochCycles:   1 << 18,
			WorkInstr:     16 << 20,
			MaxEpochs:     600,
			Seed:          99,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(ModeLRU)
	talus := run(ModeTalusHill)
	for i := range apps {
		if talus.IPC[i] <= 0 {
			t.Fatalf("app %d IPC collapsed under phase changes", i)
		}
	}
	// Talus must not lose to the baseline despite the non-stationarity.
	var wsum float64
	for i := range apps {
		wsum += talus.IPC[i] / base.IPC[i]
	}
	if ws := wsum / float64(len(apps)); ws < 0.95 {
		t.Fatalf("weighted speedup %g under phase changes; Talus collapsed", ws)
	}
}
