// Determinism tests for the parallel experiment engine: the parallel
// paths must reproduce the sequential results exactly — same seeds, same
// points, same bytes — regardless of worker count or scheduling.

package sim

import (
	"reflect"
	"testing"

	"talus/internal/hash"
	"talus/internal/workload"
)

// TestRunSweepParallelDeterministic runs the same sweep sequentially and
// at several parallelism levels and demands point-for-point equality.
func TestRunSweepParallelDeterministic(t *testing.T) {
	base := SweepConfig{
		App:             cliffSpec,
		SizesLines:      []int64{2048, 4096, 6144, 8192, 10240, 12288},
		Talus:           true,
		WarmupAccesses:  1 << 15,
		MeasureAccesses: 1 << 16,
		Seed:            17,
		Parallelism:     1,
	}
	seq, err := RunSweep(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, 4, 8} {
		cfg := base
		cfg.Parallelism = par
		got, err := RunSweep(cfg)
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(got.Points(), seq.Points()) {
			t.Fatalf("parallelism %d diverges from sequential:\n  par %v\n  seq %v",
				par, got, seq)
		}
	}
}

// TestRunMixesMatchesRunMix runs a batch of mixes through the pool and
// compares every result field against individual sequential RunMix calls.
func TestRunMixesMatchesRunMix(t *testing.T) {
	mk := func(mode Mode, seed uint64) MixConfig {
		return MixConfig{
			Apps:          append(apps2(), apps2()...),
			CapacityLines: 8192,
			Mode:          mode,
			EpochCycles:   1 << 18,
			WorkInstr:     1 << 21,
			Seed:          seed,
		}
	}
	cfgs := []MixConfig{
		mk(ModeLRU, 5),
		mk(ModeTalusHill, 5),
		mk(ModeFairLRU, 11),
	}
	batch, err := RunMixes(cfgs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, cfg := range cfgs {
		want, err := RunMix(cfg)
		if err != nil {
			t.Fatalf("mix %d: %v", i, err)
		}
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("mix %d (%s): parallel result diverges\n  par %+v\n  seq %+v",
				i, cfg.Mode, batch[i], want)
		}
	}
}

// apps2 returns a fresh two-app slice for mix configs.
func apps2() []workload.Spec { return []workload.Spec{cliffSpec, mixedCliffSpec} }

// TestParallelForCoversAllIndices checks the pool visits every index
// exactly once at any worker count.
func TestParallelForCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16, 100} {
		const n = 137
		visits := make([]int32, n)
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		ParallelFor(n, workers, func(i int) {
			<-mu
			visits[i]++
			mu <- struct{}{}
		})
		for i, v := range visits {
			if v != 1 {
				t.Fatalf("workers %d: index %d visited %d times", workers, i, v)
			}
		}
	}
}

// TestWorkersResolution pins the Parallelism convention: ≤0 → GOMAXPROCS.
func TestWorkersResolution(t *testing.T) {
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Fatal("Workers must resolve non-positive to at least 1")
	}
	if got := Workers(5); got != 5 {
		t.Fatalf("Workers(5) = %d", got)
	}
}

// TestShardedPointConservation drives a plain sweep point's worth of
// accesses through a sharded cache built by BuildShardedCache and checks
// the router-level stats conserve.
func TestShardedPointConservation(t *testing.T) {
	sc, err := BuildShardedCache("vantage", 8192, 16, 4, 2, "LRU", 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(3)
	addrs := make([]uint64, 1024)
	for b := 0; b < 16; b++ {
		for i := range addrs {
			addrs[i] = rng.Uint64n(16384)
		}
		sc.AccessBatch(addrs, nil, nil)
	}
	st := sc.Stats()
	if st.Accesses != 16*1024 || st.Hits+st.Misses != st.Accesses {
		t.Fatalf("conservation violated: %+v", st)
	}
}
