package sim

import (
	"fmt"

	"talus/internal/cache"
	"talus/internal/core"
	"talus/internal/partition"
	"talus/internal/policy"
	"talus/internal/workload"
)

// Table I parameters used by the analytic model and default experiment
// configurations.
const (
	MemLatency   = 200 // cycles to main memory
	DefaultAssoc = 32  // 32-way set-associative LLC
	CoresMP      = 8   // multi-programmed setup core count
	LLCPerCoreMB = 1   // 1 MB of LLC per core
)

// IPC evaluates the analytic core model for an app at a given MPKI.
func IPC(spec workload.Spec, mpki float64) float64 {
	cpi := CPI(spec, mpki)
	return 1 / cpi
}

// CPI evaluates the analytic core model's cycles-per-instruction.
func CPI(spec workload.Spec, mpki float64) float64 {
	return spec.CPIBase + mpki/1000*MemLatency/spec.MLP
}

// PolicyByName resolves a policy name to a Factory. threads matters only
// for thread-aware policies (TA-DRRIP).
func PolicyByName(name string, threads int) (policy.Factory, error) {
	switch name {
	case "LRU", "lru":
		return policy.LRUFactory, nil
	case "SRRIP", "srrip":
		return policy.SRRIPFactory, nil
	case "BRRIP", "brrip":
		return policy.BRRIPFactory, nil
	case "DRRIP", "drrip":
		return policy.DRRIPFactory, nil
	case "TA-DRRIP", "tadrrip", "ta-drrip":
		return policy.TADRRIPFactory(threads), nil
	case "DIP", "dip":
		return policy.DIPFactory, nil
	case "PDP", "pdp":
		return policy.PDPFactory, nil
	case "Random", "random":
		return policy.RandomFactory, nil
	}
	return nil, fmt.Errorf("sim: unknown policy %q (valid: LRU, SRRIP, BRRIP, DRRIP, TA-DRRIP, DIP, PDP, Random)", name)
}

// BuildCache constructs a partitioned cache per the named scheme:
// "none", "way", "set", "vantage" build set-associative arrays;
// "ideal" builds the fully-associative per-partition LRU cache (the
// policy name is ignored for "ideal", which is inherently LRU).
func BuildCache(scheme string, capacityLines int64, assoc int, numPartitions int, policyName string, threads int, seed uint64) (core.PartitionedCache, error) {
	if scheme == "ideal" {
		return cache.NewIdeal(capacityLines, numPartitions)
	}
	var sch partition.Scheme
	switch scheme {
	case "none", "":
		sch = partition.NewNone(numPartitions)
	case "way":
		sch = partition.NewWay(numPartitions)
	case "set":
		sch = partition.NewSet(numPartitions)
	case "vantage":
		sch = partition.NewVantage(numPartitions)
	case "futility":
		sch = partition.NewFutility(numPartitions)
	default:
		return nil, fmt.Errorf("sim: unknown scheme %q (valid: none, way, set, vantage, futility, ideal)", scheme)
	}
	factory, err := PolicyByName(policyName, threads)
	if err != nil {
		return nil, err
	}
	return cache.NewSetAssoc(capacityLines, assoc, sch, factory, seed)
}
