// Package sim is the simulation harness: it wires workloads, caches,
// monitors, Talus, and allocation algorithms into the paper's two
// experimental setups — single-program LLC-size sweeps (Figs. 1, 8, 9,
// 10, 11) and multi-programmed 8-core runs with epoch-based
// reconfiguration (Figs. 12, 13).
//
// # Core model
//
// The paper simulates OOO Silvermont-like cores in zsim (Table I). This
// reproduction substitutes an analytic core model (see DESIGN.md §2):
//
//	CPI = CPIBase + MPKI/1000 · MemLatency / MLP
//
// where CPIBase is the app's cycles-per-instruction with a perfect LLC,
// MemLatency is the paper's 200-cycle memory latency, and MLP is the
// app's average overlap of outstanding misses. Talus's claims are about
// miss curves and allocations; IPC enters only to weight accesses and
// report speedups, and this model preserves the orderings the paper
// reports.
package sim
