package sim

import (
	"strings"
	"testing"

	"talus/internal/stats"
	"talus/internal/workload"
)

// smallCliff is a cheap cliff app for mix tests (cliff ≈ 8192 lines).
func smallCliff(name string) workload.Spec {
	return workload.Spec{
		Name: name, APKI: 20, CPIBase: 0.5, MLP: 2,
		Build: func() workload.Pattern { return &workload.Scan{Lines: 8192} },
	}
}

// smallConvex is a cheap convex app.
func smallConvex(name string) workload.Spec {
	return workload.Spec{
		Name: name, APKI: 12, CPIBase: 0.5, MLP: 2,
		Build: func() workload.Pattern { return &workload.Rand{Lines: 6000} },
	}
}

func fastMix(apps []workload.Spec, mode Mode, seed uint64) MixConfig {
	return MixConfig{
		Apps:          apps,
		CapacityLines: 16384,
		Assoc:         32,
		Mode:          mode,
		EpochCycles:   1 << 18,
		WorkInstr:     6 << 20,
		MaxEpochs:     400,
		Seed:          seed,
	}
}

func TestRunMixValidation(t *testing.T) {
	if _, err := RunMix(MixConfig{}); err == nil {
		t.Fatal("empty mix must fail")
	}
	if _, err := RunMix(MixConfig{Apps: []workload.Spec{smallConvex("a")}}); err == nil {
		t.Fatal("zero capacity must fail")
	}
	cfg := fastMix([]workload.Spec{smallConvex("a")}, "not-a-mode", 1)
	_, err := RunMix(cfg)
	if err == nil {
		t.Fatal("unknown mode must fail")
	}
	// The error must enumerate the valid modes.
	for _, want := range []string{"not-a-mode", "lru", "tadrrip", "talus-hill", "talus-lookahead"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("RunMix error %q does not mention %q", err, want)
		}
	}
}

func TestRunMixBaselineCompletes(t *testing.T) {
	apps := []workload.Spec{smallConvex("a"), smallCliff("b")}
	res, err := RunMix(fastMix(apps, ModeLRU, 7))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPC) != 2 {
		t.Fatalf("results for %d apps", len(res.IPC))
	}
	for i := range res.IPC {
		if res.IPC[i] <= 0 || res.IPC[i] > 1/apps[i].CPIBase+1e-9 {
			t.Errorf("app %d IPC %g out of range", i, res.IPC[i])
		}
		if res.CompletionCycles[i] <= 0 {
			t.Errorf("app %d did not complete", i)
		}
		if res.MPKI[i] < 0 || res.MPKI[i] > apps[i].APKI+1 {
			t.Errorf("app %d MPKI %g out of range", i, res.MPKI[i])
		}
	}
	if res.Epochs <= 1 {
		t.Errorf("suspiciously few epochs: %d", res.Epochs)
	}
}

func TestRunMixAllModesComplete(t *testing.T) {
	apps := []workload.Spec{smallConvex("a"), smallCliff("b"), smallConvex("c"), smallCliff("d")}
	for _, mode := range []Mode{ModeLRU, ModeTADRRIP, ModeHillLRU, ModeLookaheadLRU, ModeFairLRU, ModeTalusHill, ModeTalusFair, ModeTalusLookahead} {
		res, err := RunMix(fastMix(apps, mode, 9))
		if err != nil {
			t.Errorf("%s: %v", mode, err)
			continue
		}
		for i, ipc := range res.IPC {
			if ipc <= 0 {
				t.Errorf("%s: app %d IPC %g", mode, i, ipc)
			}
		}
	}
}

// TestMixTalusBeatsHillOnCliffs is the Fig. 12 story in miniature: four
// copies of a cliff app share an LLC half the size of their combined
// cliffs. Hill climbing on raw LRU curves sees zero marginal utility
// anywhere and leaves everyone on the plateau; Talus's convexified curves
// turn the same hill climbing into useful allocations.
func TestMixTalusBeatsHillOnCliffs(t *testing.T) {
	apps := []workload.Spec{smallCliff("c0"), smallCliff("c1"), smallCliff("c2"), smallCliff("c3")}

	base, err := RunMix(fastMix(apps, ModeLRU, 31))
	if err != nil {
		t.Fatal(err)
	}
	hill, err := RunMix(fastMix(apps, ModeHillLRU, 31))
	if err != nil {
		t.Fatal(err)
	}
	talus, err := RunMix(fastMix(apps, ModeTalusHill, 31))
	if err != nil {
		t.Fatal(err)
	}

	wsHill := stats.WeightedSpeedup(hill.IPC, base.IPC)
	wsTalus := stats.WeightedSpeedup(talus.IPC, base.IPC)
	if !(wsTalus > wsHill+0.02) {
		t.Fatalf("Talus hill WS %g should beat plain hill WS %g", wsTalus, wsHill)
	}
	if !(wsTalus > 1.05) {
		t.Fatalf("Talus hill WS %g should clearly beat unpartitioned LRU", wsTalus)
	}
}

// TestMixTalusFairness mirrors Fig. 13: homogeneous cliff apps under fair
// Talus speed up together (near-zero CoV of IPC), while Lookahead on raw
// curves creates winners and losers.
func TestMixTalusFairness(t *testing.T) {
	apps := []workload.Spec{smallCliff("c0"), smallCliff("c1"), smallCliff("c2"), smallCliff("c3")}

	// Longer fixed work than the other tests: the paper's near-zero CoV
	// is a steady-state property, and short runs are dominated by the
	// cold-start transient.
	cfgFair := fastMix(apps, ModeTalusFair, 17)
	cfgFair.WorkInstr = 24 << 20
	talusFair, err := RunMix(cfgFair)
	if err != nil {
		t.Fatal(err)
	}
	cfgLA := fastMix(apps, ModeLookaheadLRU, 17)
	cfgLA.WorkInstr = 24 << 20
	lookahead, err := RunMix(cfgLA)
	if err != nil {
		t.Fatal(err)
	}

	covTalus := stats.CoV(talusFair.IPC)
	covLA := stats.CoV(lookahead.IPC)
	if covTalus > 0.05 {
		t.Errorf("fair Talus CoV = %g, want ≈ 0", covTalus)
	}
	// Lookahead's all-or-nothing allocations are visibly unfair here.
	if !(covLA > covTalus) {
		t.Errorf("Lookahead CoV %g should exceed fair Talus CoV %g", covLA, covTalus)
	}
	// And fair Talus should still deliver real speedup over the shared
	// baseline (the plateau is interpolable).
	cfgBase := fastMix(apps, ModeLRU, 17)
	cfgBase.WorkInstr = 24 << 20
	base, err := RunMix(cfgBase)
	if err != nil {
		t.Fatal(err)
	}
	if ws := stats.WeightedSpeedup(talusFair.IPC, base.IPC); ws < 1.03 {
		t.Errorf("fair Talus WS = %g, want clear gain", ws)
	}
}

func TestMixDeterminism(t *testing.T) {
	apps := []workload.Spec{smallConvex("a"), smallCliff("b")}
	r1, err := RunMix(fastMix(apps, ModeTalusHill, 5))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunMix(fastMix(apps, ModeTalusHill, 5))
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.IPC {
		if r1.IPC[i] != r2.IPC[i] || r1.MPKI[i] != r2.MPKI[i] {
			t.Fatal("same-seed mixes must be bit-identical")
		}
	}
}
