package sim

import (
	"math"
	"strings"
	"testing"

	"talus/internal/core"
	"talus/internal/workload"
)

// cliffSpec is a small synthetic app with an LRU cliff, cheap enough for
// unit tests: a pure cyclic scan of 8192 lines at 20 APKI — a miniature
// libquantum.
var cliffSpec = workload.Spec{
	Name: "minicliff", APKI: 20, CPIBase: 0.5, MLP: 2,
	Build: func() workload.Pattern { return &workload.Scan{Lines: 8192} },
}

// mixedCliffSpec has a convex region followed by a cliff, so the hull
// anchors sit strictly inside the curve (α > 0): a harder Talus case.
var mixedCliffSpec = workload.Spec{
	Name: "miniomnet", APKI: 24, CPIBase: 0.6, MLP: 1.5,
	Build: func() workload.Pattern {
		return workload.MustMix(
			workload.Component{Pattern: &workload.Rand{Lines: 1536}, Weight: 0.4},
			workload.Component{Pattern: &workload.Scan{Lines: 5800}, Weight: 0.5},
			workload.Component{Pattern: &workload.Rand{Lines: 1 << 22}, Weight: 0.1},
		)
	},
}

func TestIPCModel(t *testing.T) {
	spec := workload.Spec{Name: "x", APKI: 10, CPIBase: 0.5, MLP: 2}
	// Zero misses: IPC = 1/CPIBase.
	if got := IPC(spec, 0); math.Abs(got-2) > 1e-12 {
		t.Fatalf("IPC(0) = %g, want 2", got)
	}
	// 10 MPKI: CPI = 0.5 + 10/1000·200/2 = 1.5.
	if got := IPC(spec, 10); math.Abs(got-1/1.5) > 1e-12 {
		t.Fatalf("IPC(10) = %g, want %g", got, 1/1.5)
	}
	// More misses always means lower IPC.
	if !(IPC(spec, 5) > IPC(spec, 15)) {
		t.Fatal("IPC must fall with MPKI")
	}
}

func TestPolicyByName(t *testing.T) {
	for _, name := range []string{"LRU", "SRRIP", "BRRIP", "DRRIP", "TA-DRRIP", "DIP", "PDP", "Random"} {
		f, err := PolicyByName(name, 4)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if p := f(16, 4, 1); p == nil {
			t.Errorf("%s: nil policy", name)
		}
	}
	// The error must enumerate the valid policies.
	_, err := PolicyByName("bogus", 1)
	if err == nil {
		t.Fatal("unknown policy must fail")
	}
	for _, want := range []string{"bogus", "LRU", "TA-DRRIP", "PDP", "Random"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("PolicyByName error %q does not mention %q", err, want)
		}
	}
}

func TestBuildCacheSchemes(t *testing.T) {
	for _, scheme := range []string{"none", "way", "set", "vantage", "ideal"} {
		c, err := BuildCache(scheme, 4096, 16, 2, "LRU", 2, 1)
		if err != nil {
			t.Errorf("%s: %v", scheme, err)
			continue
		}
		if c.NumPartitions() != 2 {
			t.Errorf("%s: partitions = %d", scheme, c.NumPartitions())
		}
		if c.Capacity() <= 0 {
			t.Errorf("%s: capacity = %d", scheme, c.Capacity())
		}
	}
	// The error must enumerate the valid schemes.
	_, err := BuildCache("bogus", 4096, 16, 1, "LRU", 1, 1)
	if err == nil {
		t.Fatal("unknown scheme must fail")
	}
	for _, want := range []string{"bogus", "none", "way", "set", "vantage", "futility", "ideal"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("BuildCache error %q does not mention %q", err, want)
		}
	}
}

func TestPlainSweepShowsCliff(t *testing.T) {
	cfg := SweepConfig{
		App:             cliffSpec,
		SizesLines:      []int64{4096, 6144, 10240},
		WarmupAccesses:  1 << 16,
		MeasureAccesses: 1 << 19,
		Seed:            11,
	}
	c, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Below the 8192-line footprint: ~all miss (MPKI ≈ APKI). Above: ~0.
	if got := c.Eval(4096); got < 17 {
		t.Errorf("MPKI(4096) = %g, want ≈ 20", got)
	}
	if got := c.Eval(6144); got < 17 {
		t.Errorf("MPKI(6144) = %g, want ≈ 20 (plateau)", got)
	}
	if got := c.Eval(10240); got > 3 {
		t.Errorf("MPKI(10240) = %g, want ≈ 0 (past cliff)", got)
	}
}

// TestTalusTracesHull is the headline integration test: on a cliff
// workload at a mid-plateau size, plain LRU sits on the plateau while
// Talus reaches (close to) the convex hull — on the idealized, Vantage,
// and way-partitioned schemes alike (Fig. 8).
func TestTalusTracesHull(t *testing.T) {
	const size = 6144 // 75% of the 8192-line cliff
	base := SweepConfig{
		App:             cliffSpec,
		WarmupAccesses:  1 << 17,
		MeasureAccesses: 1 << 20,
		Seed:            21,
	}

	plain, err := RunPoint(base, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Predicted hull value at this size.
	prof, err := ProfileCurve(base, size, 99)
	if err != nil {
		t.Fatal(err)
	}
	hullMPKI := core.InterpolatedMPKI(prof, float64(size))

	for _, scheme := range []string{"ideal", "vantage", "way"} {
		cfg := base
		cfg.Talus = true
		cfg.Scheme = scheme
		got, err := RunPoint(cfg, size, 2)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		// Talus must clearly beat the plateau...
		if !(got < plain*0.75) {
			t.Errorf("%s: Talus MPKI %g vs plain %g: cliff not removed", scheme, got, plain)
		}
		// ...and land near the hull (generous tolerance: margin, sampling
		// noise, and Vantage's unmanaged region all push it slightly up).
		if got > hullMPKI*1.5+1.5 {
			t.Errorf("%s: Talus MPKI %g far above hull %g", scheme, got, hullMPKI)
		}
	}
}

func TestTalusInteriorAnchors(t *testing.T) {
	// Mixed workload: hull anchors strictly inside the curve.
	const size = 4500
	base := SweepConfig{
		App:             mixedCliffSpec,
		WarmupAccesses:  1 << 17,
		MeasureAccesses: 1 << 20,
		Seed:            31,
	}
	plain, err := RunPoint(base, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Talus = true
	cfg.Scheme = "ideal"
	got, err := RunPoint(cfg, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !(got < plain*0.9) {
		t.Errorf("Talus %g vs plain %g: no improvement on interior cliff", got, plain)
	}
}

func TestTalusNeverMuchWorseThanLRU(t *testing.T) {
	// On a convex workload (nothing to fix), Talus must track plain LRU.
	convexSpec := workload.Spec{
		Name: "convex", APKI: 15, CPIBase: 0.5, MLP: 2,
		Build: func() workload.Pattern { return &workload.Rand{Lines: 6000} },
	}
	base := SweepConfig{
		App:             convexSpec,
		WarmupAccesses:  1 << 16,
		MeasureAccesses: 1 << 19,
		Seed:            41,
	}
	for _, size := range []int64{2048, 4096} {
		plain, err := RunPoint(base, size, 1)
		if err != nil {
			t.Fatal(err)
		}
		cfg := base
		cfg.Talus = true
		cfg.Scheme = "ideal"
		got, err := RunPoint(cfg, size, 2)
		if err != nil {
			t.Fatal(err)
		}
		if got > plain*1.15+0.5 {
			t.Errorf("size %d: Talus %g much worse than LRU %g on convex curve", size, got, plain)
		}
	}
}

func TestTalusSRRIPWithMultiMonitor(t *testing.T) {
	// Fig. 9's point: Talus is policy-agnostic given a miss curve, here
	// from 16-point SRRIP monitors.
	const size = 6144
	base := SweepConfig{
		App:             cliffSpec,
		Policy:          "SRRIP",
		WarmupAccesses:  1 << 17,
		MeasureAccesses: 1 << 20,
		Seed:            51,
	}
	plain, err := RunPoint(base, size, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Talus = true
	cfg.Scheme = "way"
	cfg.MonitorPoints = 16
	got, err := RunPoint(cfg, size, 2)
	if err != nil {
		t.Fatal(err)
	}
	// SRRIP itself thrashes less than LRU on scans, but still has a
	// cliff; Talus should not be significantly worse, and at mid-plateau
	// it should help.
	if got > plain+2 {
		t.Errorf("Talus+SRRIP %g worse than SRRIP %g", got, plain)
	}
}

func TestProfileCurveShape(t *testing.T) {
	cfg := SweepConfig{App: cliffSpec, ProfileAccesses: 1 << 20, Seed: 61}
	cfg.defaults()
	c, err := ProfileCurve(cfg, 8192, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(c.Eval(0) > 15) {
		t.Errorf("profile m(0) = %g, want ≈ APKI", c.Eval(0))
	}
	// Coverage to 4× the LLC must capture the post-cliff region.
	if got := c.Eval(3 * 8192); got > 5 {
		t.Errorf("profile m(3·LLC) = %g, want ≈ 0", got)
	}
}
