// Bounded worker pool shared by the parallel experiment engine. Sweep
// points and mixes are independent, deterministically seeded simulations,
// so fanning them across workers and landing results in preallocated
// slots keeps output byte-identical to a sequential run regardless of
// scheduling.

package sim

import (
	"runtime"
	"sync"
)

// Workers resolves a Parallelism setting to a worker count: values ≤ 0
// select GOMAXPROCS (use all cores by default), anything else is taken
// as-is.
func Workers(parallelism int) int {
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// ParallelFor runs fn(i) for i in [0, n) on up to workers goroutines.
// With one worker (or n == 1) it degenerates to a plain loop on the
// calling goroutine, so sequential behaviour is exactly the pre-parallel
// code path.
func ParallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}
