package sim

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"talus/internal/trace"
	"talus/internal/workload"
)

// traceTestSpecs is a tiny two-app mix: a cliffy scan and a smooth
// random working set, both small enough that the adaptive loop runs
// many epochs in milliseconds.
func traceTestSpecs() []workload.Spec {
	return []workload.Spec{
		{
			Name: "scan", APKI: 20, CPIBase: 0.5, MLP: 2,
			Build: func() workload.Pattern { return &workload.Scan{Lines: 6144} },
		},
		{
			Name: "rand", APKI: 10, CPIBase: 0.6, MLP: 1.5,
			Build: func() workload.Pattern { return &workload.Rand{Lines: 3000} },
		},
	}
}

// captureCache records every batch fed to it, missing everything.
type captureCache struct {
	batches [][]uint64
	parts   []int
}

func (c *captureCache) AccessBatch(addrs []uint64, p int, hits []bool) int {
	cp := make([]uint64, len(addrs))
	copy(cp, addrs)
	c.batches = append(c.batches, cp)
	c.parts = append(c.parts, p)
	for i := range hits {
		hits[i] = false
	}
	return 0
}

// TestRecordReplayByteIdentical asserts the acceptance criterion
// directly: the batches FeedAdaptiveTrace feeds from a recording are
// byte-identical — same boundaries, same partitions, same addresses —
// to the ones FeedAdaptive feeds live at the same seed and batch
// length.
func TestRecordReplayByteIdentical(t *testing.T) {
	const (
		perApp   = 1 << 14
		batchLen = 512
		seed     = 77
	)
	specs := traceTestSpecs()

	newApps := func() []*workload.App {
		apps := make([]*workload.App, len(specs))
		for i, s := range specs {
			apps[i] = workload.NewApp(s, seed+uint64(i)*7919)
		}
		return apps
	}

	live := &captureCache{}
	FeedAdaptive(live, newApps(), perApp, batchLen, 0.5)

	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf, len(specs), trace.WithGzip())
	if err != nil {
		t.Fatal(err)
	}
	if err := RecordApps(w, newApps(), perApp, batchLen); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replay := &captureCache{}
	FeedAdaptiveTrace(replay, tr, batchLen, 0.5)

	if len(replay.batches) != len(live.batches) {
		t.Fatalf("replay fed %d batches, live fed %d", len(replay.batches), len(live.batches))
	}
	for b := range live.batches {
		if replay.parts[b] != live.parts[b] {
			t.Fatalf("batch %d partition %d, want %d", b, replay.parts[b], live.parts[b])
		}
		if len(replay.batches[b]) != len(live.batches[b]) {
			t.Fatalf("batch %d length %d, want %d", b, len(replay.batches[b]), len(live.batches[b]))
		}
		for j := range live.batches[b] {
			if replay.batches[b][j] != live.batches[b][j] {
				t.Fatalf("batch %d addr %d = %#x, want %#x",
					b, j, replay.batches[b][j], live.batches[b][j])
			}
		}
	}
}

// TestReplayDeterminism asserts the end-to-end half of the criterion: a
// mix recorded with RecordSpecs and replayed through the adaptive loop
// (RunAdaptiveTraceFile) reproduces the exact per-app miss and access
// counts of the live generator run (RunAdaptive) at the same seed.
func TestReplayDeterminism(t *testing.T) {
	specs := traceTestSpecs()
	cfg := AdaptiveConfig{
		Apps:           specs,
		CapacityLines:  8192,
		EpochAccesses:  1 << 14,
		AccessesPerApp: 1 << 16,
		BatchLen:       512,
		Seed:           42,
	}
	liveRes, err := RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "mix.trc")
	count, err := RecordSpecs(path, specs, cfg.AccessesPerApp, cfg.BatchLen, cfg.Seed, true)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(len(specs)) * cfg.AccessesPerApp; count != want {
		t.Fatalf("recorded %d accesses, want %d", count, want)
	}

	replayCfg := cfg
	replayCfg.Apps = nil // names and APKI come from the embedded metadata
	replayRes, err := RunAdaptiveTraceFile(replayCfg, path)
	if err != nil {
		t.Fatal(err)
	}

	for i := range liveRes.Apps {
		if replayRes.Apps[i] != liveRes.Apps[i] {
			t.Fatalf("app %d = %q, want %q (metadata lost?)", i, replayRes.Apps[i], liveRes.Apps[i])
		}
		if replayRes.MissRatio[i] != liveRes.MissRatio[i] {
			t.Fatalf("app %s miss ratio %v, want %v (replay not deterministic)",
				liveRes.Apps[i], replayRes.MissRatio[i], liveRes.MissRatio[i])
		}
		if replayRes.MPKI[i] != liveRes.MPKI[i] {
			t.Fatalf("app %s MPKI %v, want %v", liveRes.Apps[i], replayRes.MPKI[i], liveRes.MPKI[i])
		}
		if replayRes.Allocs[i] != liveRes.Allocs[i] {
			t.Fatalf("app %s alloc %d, want %d", liveRes.Apps[i], replayRes.Allocs[i], liveRes.Allocs[i])
		}
	}
	if replayRes.Epochs != liveRes.Epochs {
		t.Fatalf("replay ran %d epochs, live ran %d", replayRes.Epochs, liveRes.Epochs)
	}
}

// TestStreamingReplayMatchesLoaded pins the streaming path to the
// loaded one: RunAdaptiveTraceFile (two streaming passes, one batch of
// memory) must produce exactly the result of loading the trace and
// running RunAdaptiveTrace — same batching, same epoch crossings, same
// miss counts.
func TestStreamingReplayMatchesLoaded(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mix.trc")
	if _, err := RecordSpecs(path, traceTestSpecs(), 1<<15, 512, 11, true); err != nil {
		t.Fatal(err)
	}
	cfg := AdaptiveConfig{
		CapacityLines: 8192,
		EpochAccesses: 1 << 14,
		BatchLen:      512,
		Seed:          11,
	}
	tr, err := trace.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := RunAdaptiveTrace(cfg, tr)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := RunAdaptiveTraceFile(cfg, path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded.Apps, streamed.Apps) {
		t.Fatalf("apps: loaded %v, streamed %v", loaded.Apps, streamed.Apps)
	}
	if !reflect.DeepEqual(loaded.MissRatio, streamed.MissRatio) ||
		!reflect.DeepEqual(loaded.MPKI, streamed.MPKI) {
		t.Fatalf("miss rates diverge:\n loaded   %v %v\n streamed %v %v",
			loaded.MissRatio, loaded.MPKI, streamed.MissRatio, streamed.MPKI)
	}
	if !reflect.DeepEqual(loaded.Allocs, streamed.Allocs) || loaded.Epochs != streamed.Epochs {
		t.Fatalf("allocations/epochs diverge: loaded %v/%d, streamed %v/%d",
			loaded.Allocs, loaded.Epochs, streamed.Allocs, streamed.Epochs)
	}
}

// TestStreamingReplayCorruptTrace checks that a truncated trace
// surfaces ErrCorrupt through the streaming path rather than reading as
// a short-but-valid run.
func TestStreamingReplayCorruptTrace(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.trc")
	if _, err := RecordSpecs(good, traceTestSpecs(), 1<<12, 512, 3, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(good)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.trc")
	// Chop mid-record: the final byte of a multi-byte varint vanishes.
	if err := os.WriteFile(bad, data[:len(data)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = RunAdaptiveTraceFile(AdaptiveConfig{CapacityLines: 8192, Seed: 3}, bad)
	if !errors.Is(err, trace.ErrCorrupt) {
		t.Fatalf("truncated trace replayed with err = %v, want ErrCorrupt", err)
	}
}

// TestSpecsFromTraceDrivesRunMix checks the trace-backed workload path:
// partitions of a recorded trace become ordinary workload.Specs that
// drive the multi-programmed simulator.
func TestSpecsFromTraceDrivesRunMix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mix.trc")
	if _, err := RecordSpecs(path, traceTestSpecs(), 1<<14, 512, 7, false); err != nil {
		t.Fatal(err)
	}
	specs, err := SpecsFromTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "scan" || specs[0].APKI != 20 {
		t.Fatalf("specs = %+v", specs)
	}
	res, err := RunMix(MixConfig{
		Apps:          specs,
		CapacityLines: 8192,
		Mode:          ModeTalusHill,
		WorkInstr:     1 << 18,
		EpochCycles:   1 << 16,
		Seed:          3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ipc := range res.IPC {
		if ipc <= 0 {
			t.Fatalf("app %d IPC = %v", i, ipc)
		}
	}
	// Resolve must accept the trace:<path> form end to end.
	spec, err := workload.Resolve("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Build().Footprint() < 1 {
		t.Fatal("resolved trace spec has no footprint")
	}
}
