// Trace-driven experiments: record the exact access stream a live run
// would generate, and replay it through the same machinery. Recording
// happens at the feeder level (the same interleaving FeedAdaptive
// drives), and addresses are stored in each generator's private space —
// the per-app address-space offset (AppSpace) is applied by the feeders
// on both the live and replay paths, so a recorded stream replayed at
// the same batch length is byte-identical to the live one and produces
// identical miss counts on an identically built cache.

package sim

import (
	"fmt"
	"io"
	"os"

	"talus/internal/adaptive"
	"talus/internal/alloc"
	"talus/internal/curve"
	"talus/internal/trace"
	"talus/internal/workload"
)

// RecordApps writes the interleaved stream FeedAdaptive would feed —
// accessesPerApp accesses per app in round-robin batches of batchLen —
// to w, one record per access, without the AppSpace offset (feeders
// re-apply it at replay).
func RecordApps(w *trace.Writer, apps []*workload.App, accessesPerApp int64, batchLen int) error {
	if batchLen <= 0 {
		batchLen = 2048
	}
	n := len(apps)
	fed := make([]int64, n)
	for done := false; !done; {
		done = true
		for i, app := range apps {
			left := accessesPerApp - fed[i]
			if left <= 0 {
				continue
			}
			done = false
			k := int64(batchLen)
			if k > left {
				k = left
			}
			for j := int64(0); j < k; j++ {
				if err := w.Append(i, app.Next()); err != nil {
					return err
				}
			}
			fed[i] += k
		}
	}
	return nil
}

// RecordSpecs instantiates specs with RunAdaptive's per-app seeds
// (seed + i*7919), records their interleaved stream to path with
// per-app metadata embedded, and reports the record count. A trace
// recorded at seed S replays — via RunAdaptiveTrace on an identically
// configured cache — exactly as RunAdaptive(cfg with Seed S) runs live.
func RecordSpecs(path string, specs []workload.Spec, accessesPerApp int64, batchLen int, seed uint64, gz bool) (int64, error) {
	if len(specs) == 0 {
		return 0, fmt.Errorf("sim: recording needs apps")
	}
	if accessesPerApp <= 0 {
		accessesPerApp = 4 << 20
	}
	apps := make([]*workload.App, len(specs))
	metas := make([]trace.AppMeta, len(specs))
	for i, spec := range specs {
		apps[i] = workload.NewApp(spec, seed+uint64(i)*7919)
		metas[i] = trace.AppMeta{Name: spec.Name, APKI: spec.APKI, CPIBase: spec.CPIBase, MLP: spec.MLP}
	}
	opts := []trace.WriterOption{trace.WithApps(metas)}
	if gz {
		opts = append(opts, trace.WithGzip())
	}
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	w, err := trace.NewWriter(f, len(specs), opts...)
	if err != nil {
		f.Close()
		return 0, err
	}
	if err := RecordApps(w, apps, accessesPerApp, batchLen); err != nil {
		f.Close()
		return 0, err
	}
	count := w.Count()
	if err := w.Close(); err != nil {
		f.Close()
		return 0, err
	}
	return count, f.Close()
}

// SpecsFromTrace loads path and returns one workload.Spec per recorded
// partition, each replaying that partition's sub-stream — trace-backed
// apps for RunMix, RunSweep, or RunAdaptive.
func SpecsFromTrace(path string) ([]workload.Spec, error) {
	t, err := trace.Load(path)
	if err != nil {
		return nil, err
	}
	return t.Specs()
}

// FeedAdaptiveTrace feeds a loaded trace through ac: records stream in
// recorded order, maximal same-partition runs fed as batches capped at
// batchLen, the AppSpace offset applied exactly as FeedAdaptive does.
// Returns per-partition miss and access counts over each partition's
// trailing tailFrac of its recorded accesses.
func FeedAdaptiveTrace(ac BatchCache, tr *trace.Trace, batchLen int, tailFrac float64) (misses, accs []int64) {
	if batchLen <= 0 {
		batchLen = 2048
	}
	if tailFrac <= 0 || tailFrac > 1 {
		tailFrac = 0.5
	}
	n := tr.NumPartitions()
	misses = make([]int64, n)
	accs = make([]int64, n)
	tailStart := traceTailStarts(tr.Counts(), tailFrac)
	fed := make([]int64, n)
	batch := make([]uint64, batchLen)
	hits := make([]bool, batchLen)
	recs := tr.Records
	for i := 0; i < len(recs); {
		p := recs[i].P
		space := AppSpace(p)
		k := 0
		for i < len(recs) && recs[i].P == p && k < batchLen {
			batch[k] = recs[i].Addr | space
			k++
			i++
		}
		ac.AccessBatch(batch[:k], p, hits[:k])
		for j := 0; j < k; j++ {
			if fed[p]+int64(j) >= tailStart[p] {
				accs[p]++
				if !hits[j] {
					misses[p]++
				}
			}
		}
		fed[p] += int64(k)
	}
	return misses, accs
}

// FeedAdaptiveTraceReader is the streaming FeedAdaptiveTrace: it drives
// a trace.Reader record by record into ac without loading the trace —
// maximal same-partition runs fed as batches capped at batchLen, the
// AppSpace offset applied exactly as the loaded path does, so batch
// boundaries (hence epoch crossings and miss counts) are identical.
// tailStart[p] is the record index within partition p where
// steady-state measurement begins (traceTailStarts computes it from
// per-partition totals); memory use is one batch regardless of trace
// length.
func FeedAdaptiveTraceReader(ac BatchCache, r *trace.Reader, tailStart []int64, batchLen int) (misses, accs []int64, err error) {
	if batchLen <= 0 {
		batchLen = 2048
	}
	n := r.Header().NumPartitions
	misses = make([]int64, n)
	accs = make([]int64, n)
	fed := make([]int64, n)
	batch := make([]uint64, batchLen)
	hits := make([]bool, batchLen)
	cur, k := 0, 0
	flush := func() {
		if k == 0 {
			return
		}
		ac.AccessBatch(batch[:k], cur, hits[:k])
		for j := 0; j < k; j++ {
			if fed[cur]+int64(j) >= tailStart[cur] {
				accs[cur]++
				if !hits[j] {
					misses[cur]++
				}
			}
		}
		fed[cur] += int64(k)
		k = 0
	}
	for {
		rec, e := r.Next()
		if e == io.EOF {
			break
		}
		if e != nil {
			return nil, nil, e
		}
		if rec.P != cur || k == batchLen {
			flush()
			cur = rec.P
		}
		batch[k] = rec.Addr | AppSpace(rec.P)
		k++
	}
	flush()
	return misses, accs, nil
}

// traceTailStarts converts per-partition record totals and a tail
// fraction into the per-partition indices where measurement begins —
// the exact arithmetic FeedAdaptiveTrace uses.
func traceTailStarts(totals []int64, tailFrac float64) []int64 {
	out := make([]int64, len(totals))
	for p, total := range totals {
		out[p] = total - int64(tailFrac*float64(total))
	}
	return out
}

// traceShape streams path once and returns its header and per-partition
// record counts: the pre-pass a streaming replay needs (tail boundaries
// and partition count) at one batch of memory, where Load would hold
// the whole trace.
func traceShape(path string) (trace.Header, []int64, error) {
	r, err := trace.OpenFile(path)
	if err != nil {
		return trace.Header{}, nil, err
	}
	defer r.Close()
	counts := make([]int64, r.Header().NumPartitions)
	for {
		rec, err := r.Next()
		if err == io.EOF {
			return r.Header(), counts, nil
		}
		if err != nil {
			return trace.Header{}, nil, fmt.Errorf("sim: scanning %s: %w", path, err)
		}
		counts[rec.P]++
	}
}

// adaptiveTraceCache validates a trace-driven config against the
// trace's partition count, resolves specs (cfg.Apps, else the trace's
// metadata), and builds the adaptive cache. Shared by the loaded and
// streaming replay paths.
func adaptiveTraceCache(cfg AdaptiveConfig, n int, headerSpecs func() ([]workload.Spec, error)) (*adaptive.Cache, AdaptiveConfig, error) {
	if cfg.CapacityLines <= 0 {
		return nil, cfg, fmt.Errorf("sim: adaptive trace run needs capacity")
	}
	if len(cfg.Apps) != 0 && len(cfg.Apps) != n {
		return nil, cfg, fmt.Errorf("sim: %d apps for a %d-partition trace", len(cfg.Apps), n)
	}
	specs := cfg.Apps
	if len(specs) == 0 {
		var err error
		if specs, err = headerSpecs(); err != nil {
			return nil, cfg, err
		}
	}
	// Borrow the generator-driven config's defaulting for the shared
	// knobs (allocator, margin, batch length, tail fraction).
	probe := cfg
	probe.Apps = specs
	if err := probe.defaults(); err != nil {
		return nil, cfg, err
	}
	allocator, err := alloc.ByName(probe.Allocator)
	if err != nil {
		return nil, cfg, err
	}
	ac, err := BuildAdaptiveCache(probe.Scheme, probe.CapacityLines, probe.Assoc, probe.Shards, n,
		probe.Policy, probe.Margin, adaptive.Config{
			EpochAccesses: probe.EpochAccesses,
			Retain:        probe.Retain,
			Allocator:     allocator,
			Seed:          probe.Seed,
		})
	return ac, probe, err
}

// adaptiveTraceResult assembles the per-partition report from a fed
// cache and the measured tail counts.
func adaptiveTraceResult(ac *adaptive.Cache, specs []workload.Spec, misses, accs []int64) *AdaptiveResult {
	n := len(specs)
	res := &AdaptiveResult{
		Apps:      make([]string, n),
		MPKI:      make([]float64, n),
		MissRatio: make([]float64, n),
		Allocs:    ac.Allocations(),
		Curves:    make([]*curve.Curve, n),
		Epochs:    ac.Epochs(),
	}
	for p := 0; p < n; p++ {
		res.Apps[p] = specs[p].Name
		res.Curves[p] = ac.Curve(p)
		if accs[p] > 0 {
			res.MissRatio[p] = float64(misses[p]) / float64(accs[p])
			res.MPKI[p] = mpkiOf(misses[p], accs[p], specs[p].APKI)
		}
	}
	return res
}

// RunAdaptiveTrace drives one adaptive run from a loaded trace instead
// of live generators: the cache is built for the trace's partition
// count and fed the recorded stream. cfg.Apps is optional (metadata
// embedded in the trace, or defaults, name the partitions and scale
// MPKI); cfg.AccessesPerApp is ignored — the trace determines the
// traffic.
func RunAdaptiveTrace(cfg AdaptiveConfig, tr *trace.Trace) (*AdaptiveResult, error) {
	ac, probe, err := adaptiveTraceCache(cfg, tr.NumPartitions(), tr.Specs)
	if err != nil {
		return nil, err
	}
	misses, accs := FeedAdaptiveTrace(ac, tr, probe.BatchLen, probe.TailFrac)
	return adaptiveTraceResult(ac, probe.Apps, misses, accs), nil
}

// RunAdaptiveTraceFile is RunAdaptiveTrace over a trace file path,
// streaming: the file is scanned once for its shape (partition counts →
// tail boundaries) and once more to feed the cache, so traces larger
// than memory replay in one batch of memory. Results are identical to
// loading the trace and calling RunAdaptiveTrace — same batching, same
// epoch crossings — except that partitions with no records are
// tolerated (metadata-only specs need no addresses).
func RunAdaptiveTraceFile(cfg AdaptiveConfig, path string) (*AdaptiveResult, error) {
	hdr, counts, err := traceShape(path)
	if err != nil {
		return nil, err
	}
	ac, probe, err := adaptiveTraceCache(cfg, hdr.NumPartitions, func() ([]workload.Spec, error) {
		return trace.HeaderSpecs(hdr), nil
	})
	if err != nil {
		return nil, err
	}
	r, err := trace.OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	misses, accs, err := FeedAdaptiveTraceReader(ac, r.Reader, traceTailStarts(counts, probe.TailFrac), probe.BatchLen)
	if err != nil {
		return nil, fmt.Errorf("sim: replaying %s: %w", path, err)
	}
	return adaptiveTraceResult(ac, probe.Apps, misses, accs), nil
}
