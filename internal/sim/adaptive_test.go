package sim

import (
	"testing"

	"talus/internal/adaptive"
	"talus/internal/alloc"
	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/workload"
)

// The headline control-loop experiment: on a two-phase workload mix, the
// adaptive runtime — which measures, convexifies, allocates, and
// reconfigures purely from its own traffic — must converge to within 10%
// of the oracle: the same Talus stack configured offline from exact
// analytic miss curves for the running phase.

const (
	e2eCapacity = 8192
	e2eAssoc    = 16
	e2eScan     = 6144 // scan footprint: cliff past any fair share
	e2eRand     = 4096 // random working set
	e2ePerApp   = 3 << 20
	e2eBatch    = 2048
	e2eTail     = 0.25 // steady-state measurement window
	e2eEpoch    = 1 << 18
)

func scanSpec(name string) workload.Spec {
	return workload.Spec{
		Name: name, APKI: 20, CPIBase: 0.5, MLP: 2,
		Build: func() workload.Pattern { return &workload.Scan{Lines: e2eScan} },
	}
}

func randSpec(name string) workload.Spec {
	return workload.Spec{
		Name: name, APKI: 20, CPIBase: 0.5, MLP: 2,
		Build: func() workload.Pattern { return &workload.Rand{Lines: e2eRand} },
	}
}

// analyticCurve returns the exact LRU miss curve (misses per kilo-access)
// of a phase's pattern: a step at the footprint for scans, a linear ramp
// for uniform random reuse.
func analyticCurve(t *testing.T, spec workload.Spec) *curve.Curve {
	t.Helper()
	switch spec.Build().(type) {
	case *workload.Scan:
		return curve.MustNew([]curve.Point{
			{Size: 0, MPKI: 1000}, {Size: e2eScan - 1, MPKI: 1000},
			{Size: e2eScan, MPKI: 0}, {Size: 4 * e2eCapacity, MPKI: 0},
		})
	case *workload.Rand:
		return curve.MustNew([]curve.Point{
			{Size: 0, MPKI: 1000}, {Size: e2eRand, MPKI: 0},
			{Size: 4 * e2eCapacity, MPKI: 0},
		})
	}
	t.Fatal("unknown pattern")
	return nil
}

// oracleMissRatio builds a fresh (non-adaptive) Talus stack, configures
// it once from the phase's exact curves with the same allocator the
// adaptive loop uses, feeds it the identical traffic, and returns the
// aggregate tail miss ratio.
func oracleMissRatio(t *testing.T, specs []workload.Spec, seed uint64) float64 {
	t.Helper()
	n := len(specs)
	inner, err := BuildShardedCache("vantage", e2eCapacity, e2eAssoc, 1, 2*n, "LRU", n, seed)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := core.NewShadowedCache(inner, n, core.DefaultMargin, seed^0xADA97)
	if err != nil {
		t.Fatal(err)
	}
	curves := make([]*curve.Curve, n)
	for i, spec := range specs {
		curves[i] = analyticCurve(t, spec)
	}
	budget := inner.PartitionableCapacity()
	granule := budget / 64
	allocs, err := alloc.HillClimbAllocator.Allocate(alloc.NewRequest(core.Convexify(curves), budget, granule))
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Reconfigure(allocs, curves); err != nil {
		t.Fatal(err)
	}
	apps := make([]*workload.App, n)
	for i, spec := range specs {
		apps[i] = workload.NewApp(spec, seed+uint64(i)*7919)
	}
	misses, accs := FeedAdaptive(sc, apps, e2ePerApp, e2eBatch, e2eTail)
	return ratioOf(misses, accs)
}

func ratioOf(misses, accs []int64) float64 {
	var m, a int64
	for i := range misses {
		m += misses[i]
		a += accs[i]
	}
	return float64(m) / float64(a)
}

func TestAdaptiveTracksOracleAcrossPhases(t *testing.T) {
	const seed = 42
	phase1 := []workload.Spec{scanSpec("scanner"), randSpec("rander")}
	phase2 := []workload.Spec{randSpec("rander"), scanSpec("scanner")} // roles swap

	ac, err := BuildAdaptiveCache("vantage", e2eCapacity, e2eAssoc, 1, 2, "LRU",
		core.DefaultMargin, adaptive.Config{EpochAccesses: e2eEpoch, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}

	runPhase := func(specs []workload.Spec) float64 {
		apps := make([]*workload.App, len(specs))
		for i, spec := range specs {
			apps[i] = workload.NewApp(spec, seed+uint64(i)*7919)
		}
		misses, accs := FeedAdaptive(ac, apps, e2ePerApp, e2eBatch, e2eTail)
		return ratioOf(misses, accs)
	}

	adaptive1 := runPhase(phase1)
	adaptive2 := runPhase(phase2) // same cache: must re-converge after the phase change
	oracle1 := oracleMissRatio(t, phase1, seed)
	oracle2 := oracleMissRatio(t, phase2, seed)

	if err := ac.Err(); err != nil {
		t.Fatalf("control loop error: %v", err)
	}
	if ep := ac.Epochs(); ep < 20 {
		t.Fatalf("only %d epochs across both phases", ep)
	}
	t.Logf("phase 1: adaptive %.4f vs oracle %.4f; phase 2: adaptive %.4f vs oracle %.4f",
		adaptive1, oracle1, adaptive2, oracle2)

	// Sanity: the oracle itself must be doing real Talus work — the scan
	// cannot fit, so its hull interpolation leaves a substantial but far
	// from total miss ratio.
	for i, oracle := range []float64{oracle1, oracle2} {
		if oracle < 0.05 || oracle > 0.6 {
			t.Fatalf("phase %d oracle miss ratio %.4f outside the regime this test targets", i+1, oracle)
		}
	}
	// The acceptance bar: steady-state within 10% of the oracle per
	// phase (plus 2pp absolute slack for monitor sampling noise).
	if limit := oracle1*1.10 + 0.02; adaptive1 > limit {
		t.Errorf("phase 1: adaptive %.4f exceeds oracle %.4f by more than 10%% (+2pp)", adaptive1, oracle1)
	}
	if limit := oracle2*1.10 + 0.02; adaptive2 > limit {
		t.Errorf("phase 2: adaptive %.4f exceeds oracle %.4f by more than 10%% (+2pp)", adaptive2, oracle2)
	}
}
