// Sharded cache construction: the concurrent serving-side counterpart of
// BuildCache. Each shard is an independent BuildCache instance over a
// slice of the capacity, with a per-shard derived seed so shard contents
// are deterministic for a given configuration.

package sim

import (
	"talus/internal/cache"
	"talus/internal/core"
	"talus/internal/hash"
)

// BuildShardedCache constructs a goroutine-safe LLC striped across
// numShards independently locked shards, each a BuildCache of the same
// scheme/policy over its share of capacityLines (see cache.ShardCapacity
// for the split). The result implements core.PartitionedCache and
// core.BatchAccessor, so it can back a core.ShadowedCache directly: a
// Talus runtime over a sharded inner cache serves concurrent traffic end
// to end.
func BuildShardedCache(scheme string, capacityLines int64, assoc, numShards, numPartitions int, policyName string, threads int, seed uint64) (*cache.ShardedCache, error) {
	if numShards <= 0 {
		return nil, cache.ErrBadShards
	}
	seeds := hash.NewSplitMix64(seed)
	routerSeed := seeds.Next()
	shardSeeds := make([]uint64, numShards)
	for i := range shardSeeds {
		shardSeeds[i] = seeds.Next()
	}
	return cache.NewSharded(numShards, capacityLines, routerSeed,
		func(i int, capLines int64) (cache.Shard, error) {
			return BuildCache(scheme, capLines, assoc, numPartitions, policyName, threads, shardSeeds[i])
		})
}

// Compile-time proof that the sharded cache slots in wherever the Talus
// runtime expects a partitioned cache, with batching.
var (
	_ core.PartitionedCache = (*cache.ShardedCache)(nil)
	_ core.BatchAccessor    = (*cache.ShardedCache)(nil)
)
