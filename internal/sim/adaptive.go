// Adaptive-runtime construction and experiments: the serving-side
// counterpart of RunMix. Where RunMix simulates CPU epochs in cycles and
// reconfigures between them, RunAdaptive drives the online control loop
// (internal/adaptive) purely from the access stream — the configuration
// a production cache service would run, and the harness behind the
// adaptive-vs-oracle convergence experiment in EXPERIMENTS.md.

package sim

import (
	"fmt"

	"talus/internal/adaptive"
	"talus/internal/alloc"
	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/workload"
)

// BuildAdaptiveCache constructs the full adaptive serving stack: a
// sharded LLC (numShards ≥ 1) with 2×numLogical shadow partitions, the
// Talus runtime over it, and the epoch-driven control loop over that.
// The result serves concurrent traffic end to end when numShards ≥ 1
// (every layer is goroutine-safe) and reconfigures itself every
// cfg.EpochAccesses accesses.
func BuildAdaptiveCache(scheme string, capacityLines int64, assoc, numShards, numLogical int, policyName string, margin float64, cfg adaptive.Config) (*adaptive.Cache, error) {
	if scheme == "" {
		scheme = "vantage"
	}
	if policyName == "" {
		policyName = "LRU"
	}
	if assoc == 0 {
		assoc = DefaultAssoc
	}
	if numShards <= 0 {
		numShards = 1
	}
	inner, err := BuildShardedCache(scheme, capacityLines, assoc, numShards, 2*numLogical, policyName, numLogical, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sc, err := core.NewShadowedCache(inner, numLogical, margin, cfg.Seed^0xADA97)
	if err != nil {
		return nil, err
	}
	return adaptive.New(sc, cfg)
}

// AdaptiveConfig parameterizes RunAdaptive.
type AdaptiveConfig struct {
	Apps          []workload.Spec
	CapacityLines int64
	Assoc         int    // 0 → DefaultAssoc
	Scheme        string // "" → "vantage"
	Policy        string // "" → "LRU"
	Shards        int    // 0 → 1 (deterministic sequential feed)

	Allocator     string  // "hill", "lookahead", "fair", "optimal"; "" → "hill"
	EpochAccesses int64   // control-loop interval; 0 → adaptive default
	Retain        float64 // monitor EWMA retention; 0 → 0.5
	// Margin is the Talus safety margin: 0 selects the paper's
	// DefaultMargin (5%); negative disables it.
	Margin float64
	// Weights gives each app's partition an objective weight (see
	// alloc.Request.Weights); nil means uniform. Length must match Apps.
	Weights []float64
	// SelfTune enables the churn-driven epoch controller (see
	// adaptive.Config.SelfTune); MinEpoch/MaxEpoch bound its budget.
	SelfTune bool
	MinEpoch int64
	MaxEpoch int64

	AccessesPerApp int64 // traffic per app; 0 → 4M
	BatchLen       int   // accesses per AccessBatch call; 0 → 2048
	// TailFrac is the fraction of each app's trailing accesses measured
	// for steady-state miss rates (the head is the convergence window);
	// 0 → 0.5.
	TailFrac float64

	Seed uint64
}

func (c *AdaptiveConfig) defaults() error {
	if len(c.Apps) == 0 {
		return fmt.Errorf("sim: adaptive run needs apps")
	}
	if c.CapacityLines <= 0 {
		return fmt.Errorf("sim: adaptive run needs capacity")
	}
	if c.Allocator == "" {
		c.Allocator = "hill"
	}
	if c.Margin == 0 {
		c.Margin = core.DefaultMargin
	} else if c.Margin < 0 {
		c.Margin = 0
	}
	if c.AccessesPerApp <= 0 {
		c.AccessesPerApp = 4 << 20
	}
	if c.BatchLen <= 0 {
		c.BatchLen = 2048
	}
	if c.TailFrac <= 0 || c.TailFrac > 1 {
		c.TailFrac = 0.5
	}
	if c.Weights != nil && len(c.Weights) != len(c.Apps) {
		return fmt.Errorf("sim: %d weights for %d apps", len(c.Weights), len(c.Apps))
	}
	return nil
}

// AdaptiveResult reports an adaptive run's steady-state outcomes.
type AdaptiveResult struct {
	Apps      []string
	MPKI      []float64 // per app over its measurement tail (APKI-scaled)
	MissRatio []float64 // misses/accesses over the tail
	Allocs    []int64   // final per-partition allocation in lines
	Curves    []*curve.Curve
	Epochs    int
}

// RunAdaptive drives one adaptive run: each app's stream is fed to its
// own logical partition in interleaved batches, the control loop adapts
// as it goes, and miss rates are measured over each app's trailing
// TailFrac of accesses (after the loop has had the head to converge).
func RunAdaptive(cfg AdaptiveConfig) (*AdaptiveResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	allocator, err := alloc.ByName(cfg.Allocator)
	if err != nil {
		return nil, err
	}
	n := len(cfg.Apps)
	ac, err := BuildAdaptiveCache(cfg.Scheme, cfg.CapacityLines, cfg.Assoc, cfg.Shards, n,
		cfg.Policy, cfg.Margin, adaptive.Config{
			EpochAccesses: cfg.EpochAccesses,
			Retain:        cfg.Retain,
			Allocator:     allocator,
			Seed:          cfg.Seed,
			Weights:       cfg.Weights,
			SelfTune:      cfg.SelfTune,
			MinEpoch:      cfg.MinEpoch,
			MaxEpoch:      cfg.MaxEpoch,
		})
	if err != nil {
		return nil, err
	}

	apps := make([]*workload.App, n)
	for i, spec := range cfg.Apps {
		apps[i] = workload.NewApp(spec, cfg.Seed+uint64(i)*7919)
	}
	misses, accs := FeedAdaptive(ac, apps, cfg.AccessesPerApp, cfg.BatchLen, cfg.TailFrac)

	res := &AdaptiveResult{
		Apps:      make([]string, n),
		MPKI:      make([]float64, n),
		MissRatio: make([]float64, n),
		Allocs:    ac.Allocations(),
		Curves:    make([]*curve.Curve, n),
		Epochs:    ac.Epochs(),
	}
	for i, spec := range cfg.Apps {
		res.Apps[i] = spec.Name
		res.Curves[i] = ac.Curve(i)
		if accs[i] > 0 {
			res.MissRatio[i] = float64(misses[i]) / float64(accs[i])
			res.MPKI[i] = mpkiOf(misses[i], accs[i], spec.APKI)
		}
	}
	return res, nil
}

// BatchCache is the slice of cache functionality the traffic feeder
// needs; adaptive.Cache and core.ShadowedCache both provide it.
type BatchCache interface {
	AccessBatch(addrs []uint64, p int, hits []bool) int
}

// FeedAdaptive interleaves accessesPerApp accesses from each app into
// its partition of ac in batches of batchLen, and returns per-app miss
// and access counts over each app's trailing tailFrac of the stream.
// Also used by tests to drive phase-by-phase traffic at a cache that
// persists across calls — adaptive, or a statically configured
// ShadowedCache serving as the oracle baseline.
func FeedAdaptive(ac BatchCache, apps []*workload.App, accessesPerApp int64, batchLen int, tailFrac float64) (misses, accs []int64) {
	n := len(apps)
	misses = make([]int64, n)
	accs = make([]int64, n)
	fed := make([]int64, n)
	tailStart := accessesPerApp - int64(tailFrac*float64(accessesPerApp))
	batch := make([]uint64, batchLen)
	hits := make([]bool, batchLen)
	for done := false; !done; {
		done = true
		for i, app := range apps {
			left := accessesPerApp - fed[i]
			if left <= 0 {
				continue
			}
			done = false
			k := int64(batchLen)
			if k > left {
				k = left
			}
			space := AppSpace(i)
			for j := int64(0); j < k; j++ {
				batch[j] = app.Next() | space
			}
			ac.AccessBatch(batch[:k], i, hits[:k])
			for j := int64(0); j < k; j++ {
				if fed[i]+j >= tailStart {
					accs[i]++
					if !hits[j] {
						misses[i]++
					}
				}
			}
			fed[i] += k
		}
	}
	return misses, accs
}
