package sim

import (
	"testing"

	"talus/internal/workload"
)

// TestWeightedTenantE2E is the QoS acceptance run: two identical tenants
// contending for a cache that fits neither, re-run with a 4× objective
// weight on tenant 0. The weighted tenant's measured miss ratio must
// clearly improve, and the other tenant's loss must be bounded by the
// winner's gain (plus noise) — weighting shifts capacity, it does not
// burn it.
func TestWeightedTenantE2E(t *testing.T) {
	contender := func(name string) workload.Spec {
		return workload.Spec{
			Name: name, APKI: 20, CPIBase: 0.5, MLP: 2,
			Build: func() workload.Pattern { return &workload.Rand{Lines: 6144} },
		}
	}
	base := AdaptiveConfig{
		Apps:           []workload.Spec{contender("gold"), contender("bronze")},
		CapacityLines:  e2eCapacity,
		Assoc:          e2eAssoc,
		EpochAccesses:  1 << 17,
		AccessesPerApp: 2 << 20,
		BatchLen:       e2eBatch,
		TailFrac:       e2eTail,
		Seed:           61,
	}
	uniform, err := RunAdaptive(base)
	if err != nil {
		t.Fatal(err)
	}
	weighted4 := base
	weighted4.Weights = []float64{4, 1}
	weighted, err := RunAdaptive(weighted4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("uniform:  miss %.3f/%.3f allocs %v", uniform.MissRatio[0], uniform.MissRatio[1], uniform.Allocs)
	t.Logf("weighted: miss %.3f/%.3f allocs %v", weighted.MissRatio[0], weighted.MissRatio[1], weighted.Allocs)

	if weighted.Allocs[0] <= weighted.Allocs[1] {
		t.Fatalf("4×-weighted tenant got %d lines vs %d", weighted.Allocs[0], weighted.Allocs[1])
	}
	gain := uniform.MissRatio[0] - weighted.MissRatio[0]
	if gain < 0.08 {
		t.Fatalf("weighted tenant's miss ratio improved only %.3f (%.3f → %.3f)",
			gain, uniform.MissRatio[0], weighted.MissRatio[0])
	}
	cost := weighted.MissRatio[1] - uniform.MissRatio[1]
	if cost > gain+0.05 {
		t.Fatalf("unweighted tenant paid %.3f for the weighted tenant's %.3f gain", cost, gain)
	}
}

// TestSelfTuneE2E smokes the self-tuning controller through the full
// RunAdaptive harness: a steady mix must finish with no control-loop
// error and the same qualitative allocation the static-epoch run finds.
func TestSelfTuneE2E(t *testing.T) {
	cfg := AdaptiveConfig{
		Apps:           []workload.Spec{scanSpec("scan"), randSpec("rand")},
		CapacityLines:  e2eCapacity,
		Assoc:          e2eAssoc,
		EpochAccesses:  1 << 16,
		MaxEpoch:       1 << 19,
		SelfTune:       true,
		AccessesPerApp: 2 << 20,
		BatchLen:       e2eBatch,
		TailFrac:       e2eTail,
		Seed:           62,
	}
	res, err := RunAdaptive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Fatal("no epochs ran")
	}
	if res.Allocs[1] < e2eRand/2 {
		t.Fatalf("rand partition got %d lines under self-tuning", res.Allocs[1])
	}
}
