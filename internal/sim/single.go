// Single-program LLC sweeps: measure one app's MPKI across cache sizes
// under a policy, with or without Talus — the machinery behind Figs. 1,
// 8, 9, 10 and 11.

package sim

import (
	"fmt"

	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/monitor"
	"talus/internal/workload"
)

// SweepConfig parameterizes a single-program size sweep.
type SweepConfig struct {
	App        workload.Spec
	SizesLines []int64
	Assoc      int    // 0 → DefaultAssoc
	Scheme     string // "none", "way", "set", "vantage", "ideal"
	Policy     string // "LRU", "SRRIP", "DRRIP", "DIP", "PDP", "Random"
	Talus      bool
	// Margin is the Talus sampling-rate safety margin: 0 selects the
	// paper's DefaultMargin (5%); a negative value disables the margin
	// entirely (used by tests and the margin ablation).
	Margin float64

	// MonitorPoints selects the profiling monitor for Talus runs: 0 uses
	// the paper's UMON pair (valid for LRU); >0 uses a MultiMonitor with
	// that many points (needed for non-stack policies like SRRIP, §VI-C).
	MonitorPoints int

	// CurveOverride, when set, skips profiling and hands Talus this miss
	// curve directly — the idealized "given the miss curve" setting of
	// the paper's Fig. 1, free of the 4× monitor-coverage limit that
	// hides cliffs far beyond the LLC (§VI-C).
	CurveOverride *curve.Curve

	WarmupAccesses  int64 // per point; 0 → 2× the size in lines
	MeasureAccesses int64 // per point; 0 → max(4× size, 1M)
	ProfileAccesses int64 // Talus profiling run; 0 → same as measure
	Seed            uint64

	// Parallelism bounds the worker pool RunSweep fans points across:
	// 0 uses GOMAXPROCS, 1 forces the sequential path. Every point runs
	// an independent simulation from a seed derived from Seed and the
	// point index, so the resulting curve is byte-identical at any
	// parallelism level.
	Parallelism int
}

func (c *SweepConfig) defaults() {
	if c.Assoc == 0 {
		c.Assoc = DefaultAssoc
	}
	if c.Scheme == "" {
		if c.Talus {
			c.Scheme = "vantage"
		} else {
			c.Scheme = "none"
		}
	}
	if c.Policy == "" {
		c.Policy = "LRU"
	}
	if c.Margin == 0 {
		c.Margin = core.DefaultMargin
	} else if c.Margin < 0 {
		c.Margin = 0
	}
}

// accessCounts returns warmup and measure access counts for a sweep point.
func (c *SweepConfig) accessCounts(size int64) (warm, measure int64) {
	warm = c.WarmupAccesses
	if warm == 0 {
		warm = 2 * size
		if warm < 1<<18 {
			warm = 1 << 18
		}
	}
	measure = c.MeasureAccesses
	if measure == 0 {
		measure = 4 * size
		if measure < 1<<20 {
			measure = 1 << 20
		}
	}
	return warm, measure
}

// RunSweep measures the app's miss curve over the configured sizes and
// returns it as a Curve (sizes in lines, MPKI per the app's APKI).
// Points are fanned across a worker pool bounded by cfg.Parallelism;
// each point simulates independently under a seed derived from Seed and
// its index, and results land in per-index slots, so the curve is
// identical point-for-point to a sequential (Parallelism: 1) run.
func RunSweep(cfg SweepConfig) (*curve.Curve, error) {
	cfg.defaults()
	if len(cfg.SizesLines) == 0 {
		return nil, fmt.Errorf("sim: no sizes to sweep")
	}
	pts := make([]curve.Point, len(cfg.SizesLines))
	errs := make([]error, len(cfg.SizesLines))
	ParallelFor(len(cfg.SizesLines), Workers(cfg.Parallelism), func(i int) {
		size := cfg.SizesLines[i]
		mpki, err := RunPoint(cfg, size, cfg.Seed+uint64(i)*1_000_003)
		if err != nil {
			errs[i] = fmt.Errorf("sim: size %d: %w", size, err)
			return
		}
		pts[i] = curve.Point{Size: float64(size), MPKI: mpki}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return curve.New(pts)
}

// RunPoint measures the app's MPKI at one cache size.
func RunPoint(cfg SweepConfig, size int64, seed uint64) (float64, error) {
	cfg.defaults()
	if cfg.Talus {
		return runTalusPoint(cfg, size, seed)
	}
	return runPlainPoint(cfg, size, seed)
}

func runPlainPoint(cfg SweepConfig, size int64, seed uint64) (float64, error) {
	c, err := BuildCache(cfg.Scheme, size, cfg.Assoc, 1, cfg.Policy, 1, seed)
	if err != nil {
		return 0, err
	}
	app := workload.NewApp(cfg.App, seed^0xA99)
	warm, measure := cfg.accessCounts(size)
	for i := int64(0); i < warm; i++ {
		c.Access(app.Next(), 0)
	}
	var misses int64
	for i := int64(0); i < measure; i++ {
		if !c.Access(app.Next(), 0) {
			misses++
		}
	}
	return mpkiOf(misses, measure, cfg.App.APKI), nil
}

func runTalusPoint(cfg SweepConfig, size int64, seed uint64) (float64, error) {
	// Phase 1: profile the app's miss curve with the configured monitor
	// (or take the supplied oracle curve).
	mcurve := cfg.CurveOverride
	if mcurve == nil {
		var err error
		mcurve, err = ProfileCurve(cfg, size, seed)
		if err != nil {
			return 0, err
		}
	}

	// Phase 2: build the shadow-partitioned cache, configure it from the
	// curve, and measure.
	inner, err := BuildCache(cfg.Scheme, size, cfg.Assoc, 2, cfg.Policy, 1, seed^0x7A1)
	if err != nil {
		return 0, err
	}
	tc, err := core.NewShadowedCache(inner, 1, cfg.Margin, seed^0x5A3)
	if err != nil {
		return 0, err
	}
	budget := inner.PartitionableCapacity()
	if err := tc.Reconfigure([]int64{budget}, []*curve.Curve{mcurve}); err != nil {
		return 0, err
	}

	app := workload.NewApp(cfg.App, seed^0xA99)
	warm, measure := cfg.accessCounts(size)
	for i := int64(0); i < warm; i++ {
		tc.Access(app.Next(), 0)
	}
	var misses int64
	for i := int64(0); i < measure; i++ {
		if !tc.Access(app.Next(), 0) {
			misses++
		}
	}
	return mpkiOf(misses, measure, cfg.App.APKI), nil
}

// ProfileCurve runs the app through the configured monitor alone and
// returns the measured miss curve — the pre-processing input (Fig. 7a).
func ProfileCurve(cfg SweepConfig, llcLines int64, seed uint64) (*curve.Curve, error) {
	cfg.defaults()
	profAccesses := cfg.ProfileAccesses
	if profAccesses == 0 {
		_, profAccesses = cfg.accessCounts(llcLines)
	}
	app := workload.NewApp(cfg.App, seed^0xF10F)
	kiloInstr := float64(profAccesses) / cfg.App.APKI

	if cfg.MonitorPoints > 0 {
		factory, err := PolicyByName(cfg.Policy, 1)
		if err != nil {
			return nil, err
		}
		mm, err := monitor.NewMultiMonitor(4*llcLines, cfg.MonitorPoints, 2048, 16,
			factory, seed^0x33F)
		if err != nil {
			return nil, err
		}
		for i := int64(0); i < profAccesses; i++ {
			mm.Observe(app.Next())
		}
		return mm.Curve(kiloInstr)
	}

	mon, err := monitor.NewLRUMonitor(llcLines, seed^0x33F)
	if err != nil {
		return nil, err
	}
	for i := int64(0); i < profAccesses; i++ {
		mon.Observe(app.Next())
	}
	return mon.Curve(kiloInstr)
}

// mpkiOf converts a miss count over n accesses at the given APKI to MPKI.
func mpkiOf(misses, accesses int64, apki float64) float64 {
	if accesses == 0 {
		return 0
	}
	kiloInstr := float64(accesses) / apki
	return float64(misses) / kiloInstr
}
