package sim

import (
	"testing"

	"talus/internal/policy"
	"talus/internal/trace"
	"talus/internal/workload"
)

// TestMINConvexOnCloneTrace validates Corollary 7 on a real clone's
// recorded access stream (not just synthetic traces): Belady MIN's miss
// counts must be convex in capacity on an omnetpp trace.
func TestMINConvexOnCloneTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("MIN over a long trace is slow")
	}
	spec, ok := workload.Lookup("omnetpp")
	if !ok {
		t.Fatal("omnetpp missing")
	}
	app := workload.NewApp(spec, 99)
	tr := trace.Capture(app.Next, 1<<18)

	// Capacities around the clone's working sets, coarse steps.
	caps := []int{1 << 10, 1 << 11, 1 << 12, 1 << 13, 1 << 14, 1 << 15, 1 << 16}
	misses := make([]int, len(caps))
	for i, c := range caps {
		misses[i] = policy.SimulateMIN(tr, c)
	}
	// Non-increasing.
	for i := 1; i < len(misses); i++ {
		if misses[i] > misses[i-1] {
			t.Fatalf("MIN misses increased with capacity: %v", misses)
		}
	}
	// Convexity in capacity: the miss reduction *per line* must shrink as
	// capacity grows (slopes compared because the grid doubles).
	for i := 2; i < len(misses); i++ {
		s1 := float64(misses[i-2]-misses[i-1]) / float64(caps[i-1]-caps[i-2])
		s2 := float64(misses[i-1]-misses[i]) / float64(caps[i]-caps[i-1])
		if s2 > s1+0.01 {
			t.Errorf("MIN not convex between %d and %d lines: slopes %.4f then %.4f",
				caps[i-2], caps[i], s1, s2)
		}
	}
	// MIN must beat LRU's cliff behaviour on this cliffy app: at half the
	// cliff capacity, MIN hits a meaningful fraction while LRU gets ~0.
	cliffCap := 1 << 14 // ~half of omnetpp's ~32K-line cliff
	minMisses := policy.SimulateMIN(tr, cliffCap)
	if !(minMisses < len(tr)*95/100) {
		t.Errorf("MIN shows no hits at %d lines: %d/%d misses", cliffCap, minMisses, len(tr))
	}
}
