// Multi-programmed CMP simulation: 8 cores sharing an LLC, with
// epoch-based monitoring, allocation, and (optionally) Talus shadow
// partitioning — the machinery behind Figs. 12 and 13.
//
// Each epoch simulates a fixed number of cycles. Every core issues LLC
// accesses at its current rate (APKI/1000 ÷ CPI accesses per cycle),
// finely interleaved. At epoch end, per-core UMONs yield miss curves, the
// partitioning algorithm computes new allocations (on convex hulls when
// Talus is enabled), and partition sizes are reprogrammed — the paper's
// 10 ms reconfiguration interval. Runs follow the fixed-work methodology
// (§VII-A): every app executes WorkInstr instructions; all apps keep
// running until the last finishes; metrics cover each app's first
// WorkInstr instructions only.

package sim

import (
	"fmt"
	"math"

	"talus/internal/alloc"
	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/monitor"
	"talus/internal/workload"
)

// Mode names a multi-program management scheme.
type Mode string

// The management schemes Figs. 12 and 13 compare.
const (
	ModeLRU            Mode = "lru"             // unpartitioned shared LRU (baseline)
	ModeTADRRIP        Mode = "tadrrip"         // unpartitioned thread-aware DRRIP
	ModeHillLRU        Mode = "hill-lru"        // partitioned LRU, hill climbing on raw curves
	ModeLookaheadLRU   Mode = "lookahead-lru"   // partitioned LRU, UCP Lookahead
	ModeFairLRU        Mode = "fair-lru"        // partitioned LRU, equal allocations
	ModeTalusHill      Mode = "talus-hill"      // Talus + hill climbing on hulls
	ModeTalusFair      Mode = "talus-fair"      // Talus + equal allocations
	ModeTalusLookahead Mode = "talus-lookahead" // Talus + Lookahead on hulls (ablation)
)

// MixConfig parameterizes a multi-programmed run.
type MixConfig struct {
	Apps          []workload.Spec
	CapacityLines int64
	Assoc         int  // 0 → DefaultAssoc
	Mode          Mode // management scheme
	Margin        float64

	EpochCycles int64 // simulated cycles per epoch; 0 → 2M
	WorkInstr   int64 // fixed work per app; 0 → 50M instructions
	MaxEpochs   int   // safety bound; 0 → 10000
	Seed        uint64
}

// MixResult reports per-app outcomes of one run.
type MixResult struct {
	Apps             []string
	IPC              []float64 // WorkInstr / completion cycles
	MPKI             []float64 // misses per kilo-instruction over the fixed work
	CompletionCycles []float64
	Epochs           int
}

func (c *MixConfig) defaults() error {
	if len(c.Apps) == 0 {
		return fmt.Errorf("sim: mix needs apps")
	}
	if c.CapacityLines <= 0 {
		return fmt.Errorf("sim: mix needs capacity")
	}
	if c.Assoc == 0 {
		c.Assoc = DefaultAssoc
	}
	if c.Mode == "" {
		c.Mode = ModeLRU
	}
	if c.Margin == 0 {
		c.Margin = core.DefaultMargin
	} else if c.Margin < 0 {
		c.Margin = 0
	}
	if c.EpochCycles == 0 {
		c.EpochCycles = 2 << 20
	}
	if c.WorkInstr == 0 {
		c.WorkInstr = 50 << 20
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 10000
	}
	return nil
}

// mixCache abstracts the two datapaths (plain partitioned cache vs Talus
// shadowed cache) behind one access/reconfigure interface.
type mixCache interface {
	Access(addr uint64, app int) bool
	Reconfigure(allocs []int64, curves []*curve.Curve) error
	Budget() int64 // partitionable capacity to allocate
}

type plainMix struct {
	c core.PartitionedCache
}

func (p *plainMix) Access(addr uint64, app int) bool { return p.c.Access(addr, app) }
func (p *plainMix) Budget() int64                    { return p.c.PartitionableCapacity() }
func (p *plainMix) Reconfigure(allocs []int64, _ []*curve.Curve) error {
	return p.c.SetPartitionSizes(allocs)
}

type talusMix struct {
	t *core.ShadowedCache
}

func (t *talusMix) Access(addr uint64, app int) bool { return t.t.Access(addr, app) }
func (t *talusMix) Budget() int64                    { return t.t.Inner().PartitionableCapacity() }
func (t *talusMix) Reconfigure(allocs []int64, curves []*curve.Curve) error {
	return t.t.Reconfigure(allocs, curves)
}

// unmanagedMix is for unpartitioned modes: reconfiguration is a no-op.
type unmanagedMix struct {
	c core.PartitionedCache
}

func (u *unmanagedMix) Access(addr uint64, app int) bool          { return u.c.Access(addr, app) }
func (u *unmanagedMix) Budget() int64                             { return u.c.PartitionableCapacity() }
func (u *unmanagedMix) Reconfigure([]int64, []*curve.Curve) error { return nil }

// buildMixCache constructs the datapath for a mode.
func buildMixCache(cfg *MixConfig) (mixCache, bool, error) {
	n := len(cfg.Apps)
	switch cfg.Mode {
	case ModeLRU:
		c, err := BuildCache("none", cfg.CapacityLines, cfg.Assoc, n, "LRU", n, cfg.Seed)
		return &unmanagedMix{c}, false, err
	case ModeTADRRIP:
		c, err := BuildCache("none", cfg.CapacityLines, cfg.Assoc, n, "TA-DRRIP", n, cfg.Seed)
		return &unmanagedMix{c}, false, err
	case ModeHillLRU, ModeLookaheadLRU, ModeFairLRU:
		c, err := BuildCache("vantage", cfg.CapacityLines, cfg.Assoc, n, "LRU", n, cfg.Seed)
		return &plainMix{c}, true, err
	case ModeTalusHill, ModeTalusFair, ModeTalusLookahead:
		inner, err := BuildCache("vantage", cfg.CapacityLines, cfg.Assoc, 2*n, "LRU", n, cfg.Seed)
		if err != nil {
			return nil, false, err
		}
		tc, err := core.NewShadowedCache(inner, n, cfg.Margin, cfg.Seed^0x7A105)
		return &talusMix{tc}, true, err
	}
	return nil, false, fmt.Errorf("sim: unknown mode %q (valid: %s)", cfg.Mode, validModes)
}

// validModes enumerates every management scheme buildMixCache accepts,
// for error messages that teach the caller the vocabulary.
const validModes = "lru, tadrrip, hill-lru, lookahead-lru, fair-lru, talus-hill, talus-fair, talus-lookahead"

// allocatorFor maps a management mode to its allocation policy and
// whether curves are convexified (the Talus pre-processing step) before
// allocation. Callers hold the alloc.Allocator value instead of
// re-switching on mode names each epoch.
func allocatorFor(mode Mode) (a alloc.Allocator, convexify bool, err error) {
	switch mode {
	case ModeFairLRU, ModeTalusFair:
		// Fair ignores the curves, so even under Talus there is nothing
		// to convexify here (Reconfigure hulls the curves itself).
		return alloc.FairAllocator, false, nil
	case ModeHillLRU:
		return alloc.HillClimbAllocator, false, nil
	case ModeLookaheadLRU:
		return alloc.LookaheadAllocator, false, nil
	case ModeTalusHill:
		return alloc.HillClimbAllocator, true, nil
	case ModeTalusLookahead:
		return alloc.LookaheadAllocator, true, nil
	}
	return nil, false, fmt.Errorf("sim: mode %q does not allocate (allocating modes: hill-lru, lookahead-lru, fair-lru, talus-hill, talus-fair, talus-lookahead)", mode)
}

// allocate runs the mode's allocation algorithm.
func allocate(mode Mode, curves []*curve.Curve, budget, granule int64) ([]int64, error) {
	a, convexify, err := allocatorFor(mode)
	if err != nil {
		return nil, err
	}
	if convexify {
		curves = core.Convexify(curves)
	}
	return a.Allocate(alloc.NewRequest(curves, budget, granule))
}

// AppSpace offsets each app's (or tenant's) addresses into a disjoint
// address space via bits 48–55 (cores run separate programs; store
// tenants are separate namespaces; there is no sharing). Every feeder —
// live generators, trace replay, and the keyed store — applies the same
// offset, which is what lets a stream recorded raw (without the offset)
// replay identically.
func AppSpace(app int) uint64 { return uint64(app+1) << 48 }

// RunMixes simulates many mixes concurrently on a worker pool bounded by
// parallelism (0 → GOMAXPROCS) and returns their results in input order.
// Each mix is an independent simulation seeded from its own config, so
// results are identical to running every mix through RunMix sequentially;
// the first error (by input order) aborts the return but not the other
// mixes already in flight.
func RunMixes(cfgs []MixConfig, parallelism int) ([]*MixResult, error) {
	results := make([]*MixResult, len(cfgs))
	errs := make([]error, len(cfgs))
	ParallelFor(len(cfgs), Workers(parallelism), func(i int) {
		results[i], errs[i] = RunMix(cfgs[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: mix %d: %w", i, err)
		}
	}
	return results, nil
}

// RunMix simulates one multi-programmed mix and returns per-app results.
func RunMix(cfg MixConfig) (*MixResult, error) {
	if err := cfg.defaults(); err != nil {
		return nil, err
	}
	n := len(cfg.Apps)
	mc, managed, err := buildMixCache(&cfg)
	if err != nil {
		return nil, err
	}

	apps := make([]*workload.App, n)
	mons := make([]*monitor.EpochMonitor, n)
	for i, spec := range cfg.Apps {
		apps[i] = workload.NewApp(spec, cfg.Seed+uint64(i)*7919)
		if managed {
			mons[i], err = monitor.NewEpochMonitor(cfg.CapacityLines, monitor.DefaultRetain, cfg.Seed+uint64(i)*104729)
			if err != nil {
				return nil, err
			}
		}
	}

	// Per-app progress state.
	cpi := make([]float64, n)       // current CPI estimate
	instrDone := make([]float64, n) // completed instructions (counted to WorkInstr)
	missesWork := make([]int64, n)  // misses within the fixed work window
	accWork := make([]int64, n)     // accesses within the fixed work window
	doneAt := make([]float64, n)    // completion time in cycles (-1 = running)
	credit := make([]float64, n)    // fractional access credit for interleaving
	for i := range cpi {
		cpi[i] = cfg.Apps[i].CPIBase // optimistic start; refined per epoch
		doneAt[i] = -1
	}

	curves := make([]*curve.Curve, n)
	allocs := make([]int64, n)
	var cycles float64
	epoch := 0

	for ; epoch < cfg.MaxEpochs; epoch++ {
		// How many accesses each app issues this epoch.
		rates := make([]float64, n) // accesses per cycle
		epochAcc := make([]int64, n)
		var totalAcc int64
		for i, spec := range cfg.Apps {
			rates[i] = spec.APKI / 1000 / cpi[i]
			credit[i] += rates[i] * float64(cfg.EpochCycles)
			epochAcc[i] = int64(credit[i])
			credit[i] -= float64(epochAcc[i])
			totalAcc += epochAcc[i]
		}

		// Interleave in fine rounds so cores contend realistically.
		const rounds = 512
		epochMisses := make([]int64, n)
		remaining := make([]int64, n)
		copy(remaining, epochAcc)
		for r := 0; r < rounds; r++ {
			for i := range apps {
				quota := epochAcc[i] / rounds
				if r < int(epochAcc[i]%rounds) {
					quota++
				}
				if quota > remaining[i] {
					quota = remaining[i]
				}
				remaining[i] -= quota
				space := AppSpace(i)
				for k := int64(0); k < quota; k++ {
					addr := apps[i].Next() | space
					if managed {
						mons[i].Observe(addr)
					}
					if !mc.Access(addr, i) {
						epochMisses[i]++
					}
				}
			}
		}

		// Account instructions, misses, CPI, and completion.
		for i, spec := range cfg.Apps {
			if epochAcc[i] == 0 {
				continue
			}
			instr := float64(epochAcc[i]) * 1000 / spec.APKI
			mpki := float64(epochMisses[i]) / (instr / 1000)
			newCPI := CPI(spec, mpki)
			if doneAt[i] < 0 {
				// Attribute this epoch's work to the fixed-work window,
				// possibly completing it mid-epoch.
				prev := instrDone[i]
				instrDone[i] += instr
				if instrDone[i] >= float64(cfg.WorkInstr) {
					frac := (float64(cfg.WorkInstr) - prev) / instr
					doneAt[i] = cycles + frac*float64(cfg.EpochCycles)
					missesWork[i] += int64(frac * float64(epochMisses[i]))
					accWork[i] += int64(frac * float64(epochAcc[i]))
				} else {
					missesWork[i] += epochMisses[i]
					accWork[i] += epochAcc[i]
				}
			}
			cpi[i] = newCPI
		}
		cycles += float64(cfg.EpochCycles)

		allDone := true
		for i := range doneAt {
			if doneAt[i] < 0 {
				allDone = false
				break
			}
		}
		if allDone {
			epoch++
			break
		}

		// Reconfigure for the next epoch. The epoch monitors decay rather
		// than reset, so curves integrate history with a one-epoch
		// half-life (monitor.EpochMonitor owns the EWMA bookkeeping).
		if managed {
			ok := true
			for i := range mons {
				instr := float64(epochAcc[i]) * 1000 / cfg.Apps[i].APKI
				c, err := mons[i].EpochCurve(instr)
				if err != nil {
					ok = false
					break
				}
				curves[i] = c
			}
			if ok {
				budget := mc.Budget()
				granule := budget / 64
				if granule < 1 {
					granule = 1
				}
				allocs, err = allocate(cfg.Mode, curves, budget, granule)
				if err != nil {
					return nil, err
				}
				if err := mc.Reconfigure(allocs, curves); err != nil {
					return nil, err
				}
			}
		}
	}

	res := &MixResult{
		Apps:             make([]string, n),
		IPC:              make([]float64, n),
		MPKI:             make([]float64, n),
		CompletionCycles: make([]float64, n),
		Epochs:           epoch,
	}
	for i, spec := range cfg.Apps {
		res.Apps[i] = spec.Name
		t := doneAt[i]
		if t < 0 {
			t = cycles // did not finish within MaxEpochs: report progress so far
		}
		res.CompletionCycles[i] = t
		if t > 0 {
			res.IPC[i] = math.Min(float64(cfg.WorkInstr), instrDone[i]) / t
		}
		if accWork[i] > 0 {
			res.MPKI[i] = mpkiOf(missesWork[i], accWork[i], spec.APKI)
		}
	}
	return res, nil
}
