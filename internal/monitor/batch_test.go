package monitor

import (
	"testing"

	"talus/internal/hash"
)

// TestObserveBatchIdentical pins the batched-observation contract: feeding
// a stream through ObserveBatch in ragged chunks leaves the monitor bank
// in exactly the state an Observe-per-access loop produces, so the
// adaptive runtime's batch path cannot drift from the unbatched one.
func TestObserveBatchIdentical(t *testing.T) {
	const llc = 1 << 14
	single, err := NewLRUMonitor(llc, 7)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewLRUMonitor(llc, 7)
	if err != nil {
		t.Fatal(err)
	}

	rng := hash.NewSplitMix64(99)
	stream := make([]uint64, 1<<15)
	for i := range stream {
		stream[i] = rng.Uint64n(3 * llc)
	}
	for _, a := range stream {
		single.Observe(a)
	}
	for lo := 0; lo < len(stream); lo += 129 { // deliberately ragged chunks
		hi := min(lo+129, len(stream))
		batched.ObserveBatch(stream[lo:hi])
	}

	c1, err := single.Curve(100)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := batched.Curve(100)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := c1.Points(), c2.Points()
	if len(p1) != len(p2) {
		t.Fatalf("curve lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}

// TestSharedSamplingHashNests checks the monitor bank's shared-hash
// construction: all three arrays filter on one hash value against their
// own thresholds, so the sparser arrays' sampled sets are subsets of the
// denser ones' (coarse ⊆ fine ⊆ sub) and the sampled-access counts are
// ordered accordingly.
func TestSharedSamplingHashNests(t *testing.T) {
	const llc = 1 << 16 // large enough that all three rates are < 1
	m, err := NewLRUMonitor(llc, 11)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(5)
	for i := 0; i < 1<<16; i++ {
		m.Observe(rng.Uint64n(llc))
	}
	sub, fine, coarse := m.sub.SampledAccesses(), m.fine.SampledAccesses(), m.coarse.SampledAccesses()
	if coarse == 0 {
		t.Fatal("coarse array sampled nothing; stream too small for the test")
	}
	if !(sub >= fine && fine >= coarse) {
		t.Fatalf("sampled sets not nested: sub %d, fine %d, coarse %d", sub, fine, coarse)
	}
	// Thresholds must be ordered for the subset property, not just counts.
	if !(m.sub.thresh >= m.fine.thresh && m.fine.thresh >= m.coarse.thresh) {
		t.Fatalf("thresholds not ordered: sub %d, fine %d, coarse %d",
			m.sub.thresh, m.fine.thresh, m.coarse.thresh)
	}
}

// TestEpochMonitorObserveBatchIdentical extends the pin through the
// EpochMonitor wrapper the adaptive runtime actually calls.
func TestEpochMonitorObserveBatchIdentical(t *testing.T) {
	const llc = 1 << 13
	single, err := NewEpochMonitor(llc, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	batched, err := NewEpochMonitor(llc, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(17)
	stream := make([]uint64, 1<<14)
	for i := range stream {
		stream[i] = rng.Uint64n(2 * llc)
	}
	for _, a := range stream {
		single.Observe(a)
	}
	batched.ObserveBatch(stream)

	c1, err := single.EpochCurve(float64(len(stream)))
	if err != nil {
		t.Fatal(err)
	}
	c2, err := batched.EpochCurve(float64(len(stream)))
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := c1.Points(), c2.Points()
	if len(p1) != len(p2) {
		t.Fatalf("curve lengths differ: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, p1[i], p2[i])
		}
	}
}
