// Package monitor implements the miss-curve monitors the paper relies on
// for predictability (§II-C, §VI-C):
//
//   - UMON: a utility monitor (Qureshi & Patt, MICRO 2006) — a small,
//     hash-sampled, fully-LRU auxiliary tag array with per-way hit
//     counters. LRU's stack property makes one array yield the complete
//     miss curve: a hit at LRU depth d would hit in any cache of more
//     than d ways' worth of capacity.
//   - Extended-coverage UMON: a second array sampling 16× fewer accesses,
//     which by Theorem 4 models a proportionally larger cache — the
//     paper's trick for seeing cliffs beyond the LLC size (libquantum's
//     32 MB cliff from an 8 MB cache) with 16 ways.
//   - PolicyMonitor / MultiMonitor: for non-stack policies (SRRIP), one
//     small simulated cache per curve point, each at a different sampling
//     rate — the paper's admittedly impractical 64-point monitors (Fig. 9)
//     that demonstrate Talus is agnostic to replacement policy.
//
// Monitors observe the full (pre-Talus-sampling) access stream of one
// logical partition and convert sampled hit/miss counts back to
// full-stream miss curves by dividing by the sampling rate.
package monitor
