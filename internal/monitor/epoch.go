// EpochMonitor: incremental, epoch-driven curve extraction over an
// LRUMonitor bank. It owns the EWMA bookkeeping that epoch-based callers
// (the mix simulator, the adaptive runtime) previously open-coded: the
// monitors' hit counters decay by a retention factor each epoch, and the
// matching denominator — the effective number of kilo-units observed —
// decays in lockstep, so the extracted curve is always a consistent EWMA
// of the recent stream.
//
// "Units" are whatever the caller normalizes miss rates by: the CPU
// simulator passes instructions (curves in MPKI); the adaptive cache
// runtime passes accesses (curves in misses per kilo-access). The curve's
// shape — and therefore every Talus and allocator decision — is identical
// either way; only the y-axis scale differs.

package monitor

import "talus/internal/curve"

// DefaultRetain is the default EWMA retention factor: counters keep half
// their weight each epoch (a one-epoch half-life), the behaviour of
// DecayCounters that the phase-adaptation tests were tuned against.
const DefaultRetain = 0.5

// EpochMonitor wraps an LRUMonitor with per-epoch EWMA curve extraction.
// It is not goroutine-safe; callers serialize Observe and EpochCurve
// (the adaptive runtime guards each partition's monitor with a mutex).
type EpochMonitor struct {
	mon      *LRUMonitor
	retain   float64
	effUnits float64 // EWMA of units, matching the decayed counters
}

// NewEpochMonitor builds an epoch monitor for an LLC (or partition
// budget) of llcLines. retain is the EWMA retention factor in [0, 1);
// 0 selects DefaultRetain (use a tiny positive value for true
// reset-each-epoch behaviour).
func NewEpochMonitor(llcLines int64, retain float64, seed uint64) (*EpochMonitor, error) {
	mon, err := NewLRUMonitor(llcLines, seed)
	if err != nil {
		return nil, err
	}
	if retain <= 0 {
		retain = DefaultRetain
	}
	if retain >= 1 {
		retain = DefaultRetain
	}
	return &EpochMonitor{mon: mon, retain: retain}, nil
}

// Observe feeds one pre-sampling access to the monitor bank.
func (e *EpochMonitor) Observe(addr uint64) { e.mon.Observe(addr) }

// ObserveBatch feeds a batch of pre-sampling accesses, in order —
// byte-identical to observing each address individually, but the bank's
// shared sampling hash and tag arrays are walked in one pass.
func (e *EpochMonitor) ObserveBatch(addrs []uint64) { e.mon.ObserveBatch(addrs) }

// EpochCurve closes the current epoch: it accounts unitsThisEpoch
// (instructions or accesses, in units — not kilo-units), extracts the
// combined miss curve from the EWMA'd counters, then decays counters and
// denominator for the next epoch. The returned curve is in misses per
// kilo-unit. An error means the monitors have seen no sampled accesses
// yet; the epoch still advances.
func (e *EpochMonitor) EpochCurve(unitsThisEpoch float64) (*curve.Curve, error) {
	e.effUnits += unitsThisEpoch
	c, err := e.mon.Curve(e.effUnits / 1000)
	e.mon.Decay(e.retain)
	e.effUnits *= e.retain
	return c, err
}

// Retain returns the configured EWMA retention factor.
func (e *EpochMonitor) Retain() float64 { return e.retain }

// SetRetain changes the EWMA retention factor for subsequent epochs
// (the self-tuning controller adapts it with the epoch length). Values
// outside (0, 1) are ignored. Serialize with EpochCurve: retain is read
// only inside the epoch step.
func (e *EpochMonitor) SetRetain(retain float64) {
	if retain > 0 && retain < 1 {
		e.retain = retain
	}
}

// Monitor exposes the underlying LRUMonitor bank.
func (e *EpochMonitor) Monitor() *LRUMonitor { return e.mon }
