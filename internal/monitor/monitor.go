package monitor

import (
	"fmt"
	"math"

	"talus/internal/cache"
	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/partition"
	"talus/internal/policy"
)

// UMON is a sampled LRU stack monitor: sets×ways tags, true LRU within
// each set, hits bucketed by LRU depth. With sampling rate r (fraction of
// the stream monitored), the array models a cache of sets·ways/r lines.
type UMON struct {
	sets, ways int
	rate       float64 // fraction of accesses sampled
	thresh     uint64  // sample iff hash(addr) < thresh
	h          *hash.H3
	setH       *hash.H3
	tags       [][]uint64 // per set, MRU-first
	sizes      []int      // valid entries per set
	hitCtr     []int64    // hits by LRU depth
	misses     int64
	accesses   int64 // sampled accesses
}

// NewUMON builds a monitor with the given geometry and sampling rate
// (0 < rate ≤ 1). The paper's configuration is 16 sets × 64 ways at
// rate = 1024/LLC lines, plus an extended monitor at rate/16 with 16 ways.
func NewUMON(sets, ways int, rate float64, seed uint64) (*UMON, error) {
	if sets <= 0 || ways <= 0 || !(rate > 0 && rate <= 1) {
		return nil, fmt.Errorf("monitor: bad UMON config %d×%d rate %g", sets, ways, rate)
	}
	u := &UMON{
		sets: sets, ways: ways, rate: rate,
		h:      hash.NewH3(seed^0x500D, 64),
		setH:   hash.NewH3(seed^0x5E75, 64),
		tags:   make([][]uint64, sets),
		sizes:  make([]int, sets),
		hitCtr: make([]int64, ways),
	}
	u.thresh = rateToThreshold(rate)
	for i := range u.tags {
		u.tags[i] = make([]uint64, ways)
	}
	return u, nil
}

// rateToThreshold converts a sampling fraction to a 64-bit hash threshold.
func rateToThreshold(rate float64) uint64 {
	if rate >= 1 {
		return ^uint64(0)
	}
	return uint64(rate * float64(1<<63) * 2)
}

// Observe feeds one access to the monitor.
func (u *UMON) Observe(addr uint64) {
	u.ObserveHashed(addr, u.h.Hash(addr))
}

// ObserveHashed feeds one access with a precomputed 64-bit sampling hash,
// letting a monitor bank hash each address once and fan the value out to
// every array (LRUMonitor does this; see also PolicyMonitor.ObserveHashed).
// Sharing the hash nests the arrays' sampled sets — an array at rate
// r2 < r1 samples a subset of the r1 array's addresses — which Theorem 4
// is indifferent to: each subset is still a statistically self-similar
// slice of the stream.
func (u *UMON) ObserveHashed(addr, hashVal uint64) {
	if hashVal >= u.thresh {
		return
	}
	u.observeAt(addr, hash.Reduce(u.setH.Hash(addr), u.sets))
}

// observeIn is the bank-driven observation path: the sampling hash and
// the bank-level set hash are computed once per access by the caller;
// this array filters on its own threshold and reduces the shared set
// value to its own set count. Because every array's set count is a power
// of two and Reduce is multiply-shift, the resulting index is a prefix
// of the shared value's top bits — the property the sliced monitor's
// set-partitioning relies on.
func (u *UMON) observeIn(addr, hashVal, setVal uint64) {
	if hashVal >= u.thresh {
		return
	}
	u.observeAt(addr, hash.Reduce(setVal, u.sets))
}

// observeAt performs the sampled LRU stack walk on a precomputed set.
func (u *UMON) observeAt(addr uint64, set int) {
	u.accesses++
	d, n := stackWalk(u.tags[set], u.sizes[set], u.ways, addr)
	u.sizes[set] = n
	if d >= 0 {
		u.hitCtr[d]++
	} else {
		u.misses++
	}
}

// stackWalk performs one MRU-first LRU stack access on a single set's tag
// array: hit moves the tag to MRU and returns its depth; miss inserts at
// MRU (growing the valid count up to ways, silently dropping the LRU tag
// once full) and returns depth -1. Shared by UMON and the epoch-sliced
// monitor so the two walks cannot drift apart.
func stackWalk(tags []uint64, n, ways int, addr uint64) (depth, newN int) {
	for d := 0; d < n; d++ {
		if tags[d] == addr {
			copy(tags[1:d+1], tags[:d])
			tags[0] = addr
			return d, n
		}
	}
	if n < ways {
		n++
	}
	m := n - 1
	copy(tags[1:m+1], tags[:m])
	tags[0] = addr
	return -1, n
}

// ModeledCapacity returns the cache size in lines this monitor's deepest
// way-point corresponds to.
func (u *UMON) ModeledCapacity() int64 {
	return int64(float64(u.sets*u.ways) / u.rate)
}

// SampledAccesses returns how many accesses passed the sampling filter.
func (u *UMON) SampledAccesses() int64 { return u.accesses }

// Points converts the counters to full-stream miss-curve points:
// (0, all-miss) plus one point per way depth. kiloInstr is the number of
// kilo-instructions over which the monitor observed the stream.
func (u *UMON) Points(kiloInstr float64) []curve.Point {
	return stackPoints(u.accesses, u.hitCtr, u.ways, u.rate, u.ModeledCapacity(), kiloInstr)
}

// stackPoints converts sampled LRU stack counters to full-stream
// miss-curve points — the single place the counter→curve float math
// lives, so UMON.Points and the epoch-sliced monitor's merged
// accumulators produce bit-identical curves from identical counters.
func stackPoints(accesses int64, hitCtr []int64, ways int, rate float64, modeledCap int64, kiloInstr float64) []curve.Point {
	if kiloInstr <= 0 || accesses == 0 {
		return nil
	}
	scale := 1 / rate / kiloInstr
	total := float64(accesses)
	pts := make([]curve.Point, 0, ways+1)
	pts = append(pts, curve.Point{Size: 0, MPKI: total * scale})
	wayLines := float64(modeledCap) / float64(ways)
	cumHits := 0.0
	for d := 0; d < ways; d++ {
		cumHits += float64(hitCtr[d])
		pts = append(pts, curve.Point{
			Size: wayLines * float64(d+1),
			MPKI: (total - cumHits) * scale,
		})
	}
	return pts
}

// ResetCounters clears hit/miss counters but keeps resident tags, so the
// next interval starts warm (as hardware UMONs do between
// reconfigurations).
func (u *UMON) ResetCounters() {
	for i := range u.hitCtr {
		u.hitCtr[i] = 0
	}
	u.misses = 0
	u.accesses = 0
}

// DecayCounters halves all counters, implementing an exponential moving
// average across reconfiguration intervals. Short intervals see too few
// sampled accesses for a stable curve; decaying instead of resetting
// integrates history with a one-interval half-life, matching Assumption 1
// (curves change slowly relative to the interval).
func (u *UMON) DecayCounters() { u.Decay(0.5) }

// Decay scales all counters by retain in [0, 1), generalizing
// DecayCounters to an arbitrary EWMA retention factor: retain 0 resets
// each interval (no history), retain near 1 integrates many intervals
// (stable curves, slow phase tracking).
func (u *UMON) Decay(retain float64) {
	if retain <= 0 {
		u.ResetCounters()
		return
	}
	for i := range u.hitCtr {
		u.hitCtr[i] = int64(float64(u.hitCtr[i]) * retain)
	}
	u.misses = int64(float64(u.misses) * retain)
	u.accesses = int64(float64(u.accesses) * retain)
}

// Reset clears everything including tags.
func (u *UMON) Reset() {
	u.ResetCounters()
	for i := range u.sizes {
		u.sizes[i] = 0
	}
}

// LRUMonitor combines three UMONs into one miss curve spanning LLC/4 to
// 4× the LLC: the conventional monitor, the paper's extended-coverage
// monitor (§VI-C "Miss curve coverage"), and a *sub-range* monitor
// applying the same Theorem-4 trick downward — sampling 4× more of the
// stream to model LLC/4 with 4× finer way granularity. The sub-range
// monitor matters in partitioned caches, where a partition's allocation
// is often a small fraction of the LLC and the conventional monitor's
// LLC/64 granularity would smear any cliff there.
type LRUMonitor struct {
	h         *hash.H3 // sampling hash shared by all three arrays
	setSeed   uint64   // set-index mix seed shared by all three arrays
	maxThresh uint64   // loosest array threshold: early-out bound
	sub       *UMON
	fine      *UMON
	coarse    *UMON
	llc       int64
}

// Monitor geometry. The paper's hardware UMON is 16 sets × 64 ways (1K
// lines); these software monitors use 64 sets × 64 ways, and the extended
// monitor keeps the paper's 4× LLC coverage but with 64 ways at rate/4
// instead of 16 ways at rate/16. Both changes preserve the monitoring
// *algorithm* and coverage while reducing the per-set Poisson noise that
// smears cliff positions — noise hardware tolerates by averaging over
// much longer (10 ms) intervals than short simulated epochs allow. See
// DESIGN.md §7.
const (
	umonWays       = 64
	umonSets       = 64
	umonCoarseWays = 64
	coverageFactor = 4
)

// maxSampleRate caps any one array's sampling rate. The hardware UMON's
// rate (~1024/LLC) is minuscule; only toy simulated LLCs push the fixed
// 64×64 geometry toward rate 1, where the "sampled" array degenerates
// into walking a 64-way LRU set on every single access — the dominant
// term of the monitor's datapath cost at small scales. Rather than pay
// it, arrayGeometry sheds sets until the rate is back under this cap:
// the array models the same capacity with the same way granularity,
// just from a 4×-thinner — and 4×-cheaper — sample of the stream.
const maxSampleRate = 0.25

// arrayGeometry sizes one monitor array for a modeled capacity: the
// standard 64-set geometry, halving sets while the implied sampling
// rate exceeds maxSampleRate (production-scale LLCs are unaffected).
func arrayGeometry(modeledLines int64, ways int) (sets int, rate float64) {
	if modeledLines < 1 {
		modeledLines = 1
	}
	sets = umonSets
	rate = float64(sets*ways) / float64(modeledLines)
	for sets > 1 && rate > maxSampleRate {
		sets /= 2
		rate = float64(sets*ways) / float64(modeledLines)
	}
	if rate > 1 {
		rate = 1
	}
	return sets, rate
}

// arraySpec is one bank array's derived configuration: geometry, sampling
// rate/threshold, and the capacity its deepest way-point models. Both the
// classic LRUMonitor bank and the epoch-sliced monitor are built from the
// same specs so their sampling decisions and curve scales agree exactly.
type arraySpec struct {
	sets, ways int
	rate       float64
	thresh     uint64
	modeled    int64
}

// bankSpecs derives the three arrays' specs (sub, fine, coarse) for an
// LLC of llcLines.
func bankSpecs(llcLines int64) [3]arraySpec {
	var specs [3]arraySpec
	modeled := [3]int64{llcLines / coverageFactor, llcLines, coverageFactor * llcLines}
	ways := [3]int{umonWays, umonWays, umonCoarseWays}
	for i := range specs {
		sets, rate := arrayGeometry(modeled[i], ways[i])
		specs[i] = arraySpec{
			sets: sets, ways: ways[i], rate: rate,
			thresh:  rateToThreshold(rate),
			modeled: int64(float64(sets*ways[i]) / rate),
		}
	}
	return specs
}

// bankSeeds returns the per-array H3 seeds for a bank built from seed,
// in spec order (sub, fine, coarse).
func bankSeeds(seed uint64) [3]uint64 {
	return [3]uint64{seed ^ 0x5B5B, seed, seed ^ 0xC0A25E}
}

// Bank-level hash seeds: the sampling hash every array's threshold is
// compared against, and the shared set-index mix each array reduces to
// its own set count.
const (
	bankSampleSeed = 0x5EED
	bankSetSeed    = 0xB5E75
)

// bankSetValue computes the bank's shared 64-bit set value for an
// address: a nonlinear Mix64, deliberately NOT an H3 member. The
// sampling filter (hv < thresh) is an H3 hash of the same address;
// H3 is GF(2)-linear, so if the set index were too, an unlucky seed
// pair could make the set-index bits linear functions of the
// sampling-comparison bits — systematically starving or flooding
// individual sets with sampled addresses and smearing measured cliffs.
// Every array reduces this one value to its own power-of-two set count,
// so array set indices are nested bit prefixes of it — the property the
// epoch-sliced monitor partitions sets on.
func bankSetValue(addr, setSeed uint64) uint64 {
	return hash.Mix64(addr ^ setSeed)
}

// Rates returns the bank's three sampling rates (sub, fine, coarse) for
// an LLC of llcLines, without building a monitor — the validation
// oracle's error table (internal/oracle) reports monitor accuracy per
// sampling rate.
func Rates(llcLines int64) [3]float64 {
	specs := bankSpecs(llcLines)
	return [3]float64{specs[0].rate, specs[1].rate, specs[2].rate}
}

// NewLRUMonitor builds the monitor bank for an LLC of llcLines.
func NewLRUMonitor(llcLines int64, seed uint64) (*LRUMonitor, error) {
	if llcLines <= 0 {
		return nil, fmt.Errorf("monitor: bad LLC size %d", llcLines)
	}
	specs := bankSpecs(llcLines)
	seeds := bankSeeds(seed)
	var arrs [3]*UMON
	for i, sp := range specs {
		u, err := NewUMON(sp.sets, sp.ways, sp.rate, seeds[i])
		if err != nil {
			return nil, err
		}
		arrs[i] = u
	}
	m := &LRUMonitor{
		h:       hash.NewH3(seed^bankSampleSeed, 64),
		setSeed: hash.Mix64(seed ^ bankSetSeed),
		sub:     arrs[0], fine: arrs[1], coarse: arrs[2], llc: llcLines,
	}
	for _, sp := range specs {
		if sp.thresh > m.maxThresh {
			m.maxThresh = sp.thresh
		}
	}
	return m, nil
}

// Observe feeds one access to all three arrays, hashing the address once
// with the bank's shared sampling hash and once with the shared set-index
// mix, and fanning both values out (the arrays' thresholds and set
// counts differ, their hashes no longer do). The arrays' sampled sets
// nest — coarse ⊆ fine ⊆ sub — which Theorem 4 permits, and because every
// set count is a power of two the shared set value reduces to nested
// set-index prefixes, the property the epoch-sliced monitor partitions
// on. Addresses outside even the loosest threshold exit before any
// per-array work.
func (m *LRUMonitor) Observe(addr uint64) {
	hv := m.h.Hash(addr)
	if hv >= m.maxThresh {
		return
	}
	sv := bankSetValue(addr, m.setSeed)
	m.sub.observeIn(addr, hv, sv)
	m.fine.observeIn(addr, hv, sv)
	m.coarse.observeIn(addr, hv, sv)
}

// ObserveBatch feeds a batch of accesses, in order. It is byte-identical
// to calling Observe on each address (TestObserveBatchIdentical pins
// this): batching exists so the adaptive runtime's batch path crosses
// the monitor once per batch, not once per access.
func (m *LRUMonitor) ObserveBatch(addrs []uint64) {
	for _, addr := range addrs {
		hv := m.h.Hash(addr)
		if hv >= m.maxThresh {
			continue
		}
		sv := bankSetValue(addr, m.setSeed)
		m.sub.observeIn(addr, hv, sv)
		m.fine.observeIn(addr, hv, sv)
		m.coarse.observeIn(addr, hv, sv)
	}
}

// Curve assembles the combined miss curve: sub-range points up to LLC/4,
// fine points up to the LLC size, coarse points beyond. The result is
// forced non-increasing (LRU's stack property guarantees monotonicity;
// sampling noise between the arrays must not manufacture fake cliffs).
func (m *LRUMonitor) Curve(kiloInstr float64) (*curve.Curve, error) {
	return assembleCurve(
		m.sub.Points(kiloInstr),
		m.fine.Points(kiloInstr),
		m.coarse.Points(kiloInstr),
	)
}

// assembleCurve merges the three arrays' point sets (sub, fine, coarse)
// into one monotone curve — shared by LRUMonitor and the epoch-sliced
// monitor so merged counters assemble exactly like live ones.
func assembleCurve(subPts, finePts, coarsePts []curve.Point) (*curve.Curve, error) {
	if subPts == nil && finePts == nil && coarsePts == nil {
		return nil, fmt.Errorf("monitor: no observations")
	}
	pts := make([]curve.Point, 0, len(subPts)+len(finePts)+len(coarsePts))
	max := 0.0
	for _, p := range subPts {
		pts = append(pts, p)
		if p.Size > max {
			max = p.Size
		}
	}
	for _, p := range finePts {
		if p.Size > max {
			pts = append(pts, p)
			max = p.Size
		}
	}
	for _, p := range coarsePts {
		if p.Size > max {
			pts = append(pts, p)
			max = p.Size
		}
	}
	// Enforce monotone non-increasing MPKI with a running max from the
	// right. Clamping left-to-right would accumulate sampling noise into
	// an artificial downward ramp across plateaus — gradient that would
	// let hill climbing "climb" a cliff that is really flat. Taking the
	// suffix max instead keeps noisy plateaus flat and leaves genuine
	// drops (cliffs) intact.
	for i := len(pts) - 2; i >= 0; i-- {
		if pts[i].MPKI < pts[i+1].MPKI {
			pts[i].MPKI = pts[i+1].MPKI
		}
	}
	return curve.New(pts)
}

// HistogramSnapshot returns copies of the three arrays' hit histograms
// in bank order (sub, fine, coarse) plus their sampled access counts —
// the counterpart of SlicedEpochMonitor.HistogramSnapshot, used by the
// byte-identity tests.
func (m *LRUMonitor) HistogramSnapshot() (hists [3][]int64, accesses [3]int64) {
	for i, u := range [3]*UMON{m.sub, m.fine, m.coarse} {
		hists[i] = append([]int64(nil), u.hitCtr...)
		accesses[i] = u.accesses
	}
	return hists, accesses
}

// ResetCounters starts a new measurement interval (tags stay warm).
func (m *LRUMonitor) ResetCounters() {
	m.sub.ResetCounters()
	m.fine.ResetCounters()
	m.coarse.ResetCounters()
}

// DecayCounters halves all monitors' counters (see UMON.DecayCounters).
func (m *LRUMonitor) DecayCounters() { m.Decay(0.5) }

// Decay scales all monitors' counters by retain (see UMON.Decay).
func (m *LRUMonitor) Decay(retain float64) {
	m.sub.Decay(retain)
	m.fine.Decay(retain)
	m.coarse.Decay(retain)
}

// PolicyMonitor models one point of a non-stack policy's miss curve: a
// small simulated cache running the policy on a sampled stream. By
// Theorem 4, a monitor of monLines lines at sampling rate r models a
// cache of monLines/r lines.
type PolicyMonitor struct {
	c        *cache.SetAssoc
	thresh   uint64
	h        *hash.H3
	rate     float64
	modeled  int64
	accesses int64
	misses   int64
}

// NewPolicyMonitor builds a monitor modeling modeledLines of cache using a
// monLines-line array with the given policy.
func NewPolicyMonitor(modeledLines, monLines int64, assoc int, factory policy.Factory, seed uint64) (*PolicyMonitor, error) {
	if monLines > modeledLines {
		monLines = modeledLines // never sample above rate 1
	}
	rate := float64(monLines) / float64(modeledLines)
	c, err := cache.NewSetAssoc(monLines, assoc, partition.NewNone(1), factory, seed)
	if err != nil {
		return nil, err
	}
	return &PolicyMonitor{
		c:       c,
		thresh:  rateToThreshold(rate),
		h:       hash.NewH3(seed^0x9017, 64),
		rate:    rate,
		modeled: modeledLines,
	}, nil
}

// Observe feeds one access.
func (pm *PolicyMonitor) Observe(addr uint64) {
	pm.ObserveHashed(addr, pm.h.Hash(addr))
}

// ObserveHashed feeds one access with a precomputed sampling hash, letting
// a monitor bank hash each address once. Sharing the hash nests the
// monitors' sampled sets (rate r2 < r1 samples a subset of r1's
// addresses), which Theorem 4 is indifferent to: each subset is still a
// statistically self-similar stream.
func (pm *PolicyMonitor) ObserveHashed(addr, hashVal uint64) {
	if hashVal >= pm.thresh {
		return
	}
	pm.accesses++
	if !pm.c.Access(addr, 0) {
		pm.misses++
	}
}

// Point returns this monitor's miss-curve point.
func (pm *PolicyMonitor) Point(kiloInstr float64) curve.Point {
	if pm.accesses == 0 || kiloInstr <= 0 {
		return curve.Point{Size: float64(pm.modeled), MPKI: 0}
	}
	return curve.Point{
		Size: float64(pm.modeled),
		MPKI: float64(pm.misses) / pm.rate / kiloInstr,
	}
}

// ResetCounters starts a new interval.
func (pm *PolicyMonitor) ResetCounters() {
	pm.accesses = 0
	pm.misses = 0
	pm.c.ResetStats()
}

// MultiMonitor is a bank of PolicyMonitors sampling at different rates to
// assemble a full miss curve for a policy without the stack property
// (§VI-C "Other replacement policies"). The paper notes this costs 256 KB
// per core for 64 points — impractical in hardware, but exactly what is
// needed to show Talus works on SRRIP (Fig. 9).
type MultiMonitor struct {
	mons []*PolicyMonitor
}

// NewMultiMonitor builds points monitors with modeled sizes spaced
// linearly up to maxLines.
func NewMultiMonitor(maxLines int64, points int, monLines int64, assoc int, factory policy.Factory, seed uint64) (*MultiMonitor, error) {
	if points < 2 {
		return nil, fmt.Errorf("monitor: need at least 2 points, got %d", points)
	}
	mm := &MultiMonitor{mons: make([]*PolicyMonitor, points)}
	rng := hash.NewSplitMix64(seed)
	for i := 0; i < points; i++ {
		modeled := int64(math.Round(float64(maxLines) * float64(i+1) / float64(points)))
		if modeled < monLines {
			modeled = monLines
		}
		pm, err := NewPolicyMonitor(modeled, monLines, assoc, factory, rng.Next())
		if err != nil {
			return nil, err
		}
		mm.mons[i] = pm
	}
	return mm, nil
}

// Observe feeds one access to every monitor, hashing once.
func (mm *MultiMonitor) Observe(addr uint64) {
	h := mm.mons[0].h.Hash(addr)
	for _, pm := range mm.mons {
		pm.ObserveHashed(addr, h)
	}
}

// Curve assembles the measured points, prepending an all-miss point at
// size 0 estimated from the densest monitor's access rate.
func (mm *MultiMonitor) Curve(kiloInstr float64) (*curve.Curve, error) {
	pts := make([]curve.Point, 0, len(mm.mons)+1)
	// Size-0 point: every access misses.
	apki := float64(mm.mons[0].accesses) / mm.mons[0].rate / kiloInstr
	pts = append(pts, curve.Point{Size: 0, MPKI: apki})
	lastSize := 0.0
	for _, pm := range mm.mons {
		p := pm.Point(kiloInstr)
		if p.Size <= lastSize {
			continue // collapsed small sizes clamp to monLines; keep first
		}
		lastSize = p.Size
		pts = append(pts, p)
	}
	return curve.New(pts)
}

// ResetCounters starts a new interval on all monitors.
func (mm *MultiMonitor) ResetCounters() {
	for _, pm := range mm.mons {
		pm.ResetCounters()
	}
}
