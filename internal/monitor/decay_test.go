package monitor

import (
	"testing"

	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/policy"
)

func TestUMONDecayHalvesCounters(t *testing.T) {
	u, err := NewUMON(4, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		u.Observe(uint64(i % 16))
	}
	before := u.SampledAccesses()
	u.DecayCounters()
	if got := u.SampledAccesses(); got != before/2 {
		t.Fatalf("accesses after decay = %d, want %d", got, before/2)
	}
	// Tags stay warm: a resident line still hits.
	u.Observe(15)
}

func TestUMONDecayPreservesCurveShape(t *testing.T) {
	// A stationary stream: the curve after several decay cycles must
	// match a fresh measurement (EWMA of a constant is the constant).
	rng := hash.NewSplitMix64(2)
	u, err := NewUMON(16, 32, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	var kilo float64
	var effKilo float64
	for cycle := 0; cycle < 6; cycle++ {
		for i := 0; i < 200000; i++ {
			u.Observe(rng.Uint64n(256))
		}
		kilo = 200000.0 / 10
		effKilo = effKilo + kilo
		if cycle < 5 {
			u.DecayCounters()
			effKilo /= 2
		}
	}
	c, err := curve.New(u.Points(effKilo))
	if err != nil {
		t.Fatal(err)
	}
	// The 256-line working set fits easily in the 512-line monitor:
	// MPKI beyond 256 lines ≈ 0; at size 0 ≈ APKI (10).
	if got := c.Eval(0); got < 8 {
		t.Errorf("m(0) = %g, want ≈ 10", got)
	}
	if got := c.Eval(400); got > 1 {
		t.Errorf("m(400) = %g, want ≈ 0", got)
	}
}

func TestLRUMonitorDecayAdaptsToPhaseChange(t *testing.T) {
	// Phase 1: 2048-line working set. Phase 2: 128-line working set.
	// With decay, the curve must converge toward phase 2's shape within a
	// few intervals.
	m, err := NewLRUMonitor(8192, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(5)
	interval := 200000
	kilo := float64(interval) / 10

	feed := func(ws uint64) {
		for i := 0; i < interval; i++ {
			m.Observe(rng.Uint64n(ws))
		}
	}
	var effKilo float64
	// Phase 1: several intervals on the big working set.
	for i := 0; i < 3; i++ {
		feed(2048)
		effKilo += kilo
		m.DecayCounters()
		effKilo /= 2
	}
	// Phase 2: small working set.
	for i := 0; i < 5; i++ {
		feed(128)
		effKilo += kilo
		if i < 4 {
			m.DecayCounters()
			effKilo /= 2
		}
	}
	c, err := m.Curve(effKilo)
	if err != nil {
		t.Fatal(err)
	}
	// Nearly everything should fit within 256 lines now.
	if got := c.Eval(256); got > 2.5 {
		t.Errorf("after phase change m(256) = %g, want small", got)
	}
}

func TestPolicyMonitorResetCounters(t *testing.T) {
	pm, err := NewPolicyMonitor(2048, 512, 16, policy.LRUFactory, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000; i++ {
		pm.Observe(uint64(i % 300))
	}
	pm.ResetCounters()
	p := pm.Point(10)
	if p.MPKI != 0 {
		t.Fatalf("point after reset = %+v", p)
	}
	// Modeled size clamps to at least the monitor size.
	pm2, err := NewPolicyMonitor(100, 512, 16, policy.LRUFactory, 7)
	if err != nil {
		t.Fatal(err)
	}
	if pm2.modeled != 100 {
		t.Fatalf("modeled = %d", pm2.modeled)
	}
}
