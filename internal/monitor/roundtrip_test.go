package monitor

import (
	"testing"

	"talus/internal/hash"
)

// Monitor→curve round trips against streams with known analytic miss
// curves. Two ground truths cover the monitor bank's three arrays and
// their merge:
//
//   - a cyclic scan over F lines under LRU misses on every access below
//     F lines of cache and hits on every access at F and above — a step
//     function with the cliff at F;
//   - a uniform random working set of W lines under LRU has miss ratio
//     ≈ 1 − s/W at size s (each access's line is equally likely to be
//     anywhere in the LRU stack of W distinct lines) — a straight ramp
//     hitting zero at W.

// feedKiloAccesses drives n accesses of pattern next into m and returns
// the kilo-access denominator for Curve, so curve values are misses per
// kilo-access (miss ratio × 1000).
func feedKiloAccesses(m *LRUMonitor, n int, next func() uint64) float64 {
	for i := 0; i < n; i++ {
		m.Observe(next())
	}
	return float64(n) / 1000
}

func TestRoundTripScanCliffBeyondLLC(t *testing.T) {
	// Scan footprint 1.5× the "LLC": the cliff is invisible to the fine
	// array (coverage up to llc) and must be reconstructed by the
	// extended-coverage (coarse) array after the merge.
	const llc = 4096
	const scanLines = 6144
	m, err := NewLRUMonitor(llc, 12)
	if err != nil {
		t.Fatal(err)
	}
	var pos uint64
	kilo := feedKiloAccesses(m, 3_000_000, func() uint64 {
		a := pos
		pos = (pos + 1) % scanLines
		return a
	})
	c, err := m.Curve(kilo)
	if err != nil {
		t.Fatal(err)
	}
	if max := c.MaxSize(); max < 3*llc {
		t.Fatalf("merged curve covers only %g lines; extended array missing", max)
	}
	// Below the cliff: every access misses (1000 misses per kilo-access).
	// The UMON's way quantization smears the cliff by one way of modeled
	// capacity on each side; sample well clear of it.
	if got := c.Eval(0.7 * scanLines); got < 900 {
		t.Errorf("m(0.7F) = %g, want ≈ 1000 (all miss)", got)
	}
	// Above the cliff: everything hits.
	if got := c.Eval(1.3 * scanLines); got > 100 {
		t.Errorf("m(1.3F) = %g, want ≈ 0 (all hit)", got)
	}
	// The cliff sits at F within the coarse array's way granularity
	// (4×llc/64 lines per way, plus sampling noise): the curve must have
	// fallen by half well inside ±25% of F.
	if lo := c.Eval(0.75 * scanLines); lo < 500 {
		t.Errorf("cliff too early: m(0.75F) = %g", lo)
	}
	if hi := c.Eval(1.25 * scanLines); hi > 500 {
		t.Errorf("cliff too late: m(1.25F) = %g", hi)
	}
}

func TestRoundTripUniformRamp(t *testing.T) {
	// Uniform random over W = llc/2 lines: miss ratio ≈ 1 − s/W. The
	// working set sits inside the sub-range and fine arrays' coverage.
	const llc = 8192
	const ws = llc / 2
	m, err := NewLRUMonitor(llc, 21)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(5)
	kilo := feedKiloAccesses(m, 4_000_000, func() uint64 { return rng.Uint64n(ws) })
	c, err := m.Curve(kilo)
	if err != nil {
		t.Fatal(err)
	}
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		want := (1 - frac) * 1000
		got := c.Eval(frac * ws)
		if got < want-120 || got > want+120 {
			t.Errorf("m(%.2fW) = %g, want %g ± 120", frac, got, want)
		}
	}
	if got := c.Eval(1.2 * ws); got > 60 {
		t.Errorf("m(1.2W) = %g, want ≈ 0 (fits)", got)
	}
	if got := c.Eval(0); got < 900 {
		t.Errorf("m(0) = %g, want ≈ 1000", got)
	}
}

func TestEpochMonitorMatchesManualEWMA(t *testing.T) {
	// EpochMonitor must reproduce the open-coded decay bookkeeping it
	// replaced: Curve(effUnits), then Decay(retain), effUnits *= retain.
	em, err := NewEpochMonitor(4096, 0, 33)
	if err != nil {
		t.Fatal(err)
	}
	manual, err := NewLRUMonitor(4096, 33)
	if err != nil {
		t.Fatal(err)
	}
	rngA := hash.NewSplitMix64(9)
	rngB := hash.NewSplitMix64(9)
	var effUnits float64
	for epoch := 0; epoch < 4; epoch++ {
		const n = 200_000
		for i := 0; i < n; i++ {
			em.Observe(rngA.Uint64n(1024))
			manual.Observe(rngB.Uint64n(1024))
		}
		got, err := em.EpochCurve(n)
		if err != nil {
			t.Fatal(err)
		}
		effUnits += n
		want, err := manual.Curve(effUnits / 1000)
		if err != nil {
			t.Fatal(err)
		}
		manual.Decay(DefaultRetain)
		effUnits *= DefaultRetain
		for _, s := range []float64{0, 512, 1024, 2048} {
			if g, w := got.Eval(s), want.Eval(s); g != w {
				t.Fatalf("epoch %d: EpochCurve(%g) = %g, manual = %g", epoch, s, g, w)
			}
		}
	}
}
