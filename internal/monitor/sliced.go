// SlicedEpochMonitor: the contention-free form of EpochMonitor. The
// classic bank serializes every sampled access through one set of tag
// arrays, which makes the monitor the shared-state bottleneck of the
// adaptive hot path. This variant partitions the bank's *sets* into
// power-of-two slices, each behind its own mutex: an access locks only
// the slice that owns its set, and slices accumulate raw per-epoch
// counters that are merged into central EWMA accumulators inside the
// epoch step (which the adaptive runtime already serializes under
// epochMu).
//
// The partitioning leans on a property of the bank's shared set-index
// hash: every array's set count is a power of two and hash.Reduce is
// multiply-shift, so an array's set index is the top log2(sets) bits of
// the shared 64-bit set value. Slice index = the top log2(nSlices) bits —
// a *prefix* of every array's set index — so slice i owns a contiguous
// aligned block of sets in all three arrays at once, and an address's
// slice is computable before touching any array.
//
// Byte-identity with EpochMonitor (pinned by TestSlicedMatchesEpoch and
// the adaptive round-trip tests) follows from three invariants:
//   - same sampling decisions: identical sampling/set-mix seeds and per-array
//     thresholds from the shared bankSpecs;
//   - same tag walks: each global set's MRU stack lives in exactly one
//     slice and is updated by the shared stackWalk, so per-set state is
//     identical whenever per-set access order is;
//   - same arithmetic: slices hold only raw int64 counters for the
//     current epoch — int64 addition is exact and commutative, so the
//     drain's merge order cannot change the totals — and the EWMA decay
//     (the only lossy step) is applied exclusively to the central
//     accumulators, exactly as EpochMonitor applies it to its counters.
package monitor

import (
	"fmt"
	"sync"

	"talus/internal/curve"
	"talus/internal/hash"
)

// DefaultMonitorSlices is the default slice count: enough to spread
// sampled traffic from a typical shard/goroutine count, small enough
// that the smallest bank array (≥ 8 sets at any realistic LLC size)
// still gets at least one set per slice.
const DefaultMonitorSlices = 8

// sliceArray is one bank array's segment owned by a single slice: the
// aligned block of localSets = sets/nSlices consecutive global sets,
// plus this slice's raw counters for the current epoch.
type sliceArray struct {
	thresh    uint64
	sets      int // the array's GLOBAL set count
	localMask int // localSets - 1; local set = globalSet & localMask
	ways      int
	tags      [][]uint64 // per local set, MRU-first
	sizes     []int
	hitCtr    []int64 // raw hits this epoch, by LRU depth
	misses    int64
	accesses  int64
}

// monSlice is one lock domain: a mutex plus each array's set segment,
// padded so neighbouring slices do not false-share.
type monSlice struct {
	mu  sync.Mutex
	arr [3]sliceArray
	_   [64]byte
}

// arrayAcc is one array's central accumulator: the EWMA-decayed
// counters, exactly UMON's counter state.
type arrayAcc struct {
	hitCtr   []int64
	misses   int64
	accesses int64
}

// SlicedEpochMonitor is a drop-in replacement for EpochMonitor whose
// Observe/ObserveBatch are safe to call concurrently. EpochCurve and
// HistogramSnapshot must be externally serialized with each other (the
// adaptive runtime's epochMu does this), but may run concurrently with
// observers: an access that races the drain lands in either this epoch
// or the next, never nowhere and never twice.
type SlicedEpochMonitor struct {
	h         *hash.H3
	setSeed   uint64
	maxThresh uint64
	nSlices   int
	slices    []monSlice
	specs     [3]arraySpec
	acc       [3]arrayAcc
	retain    float64
	effUnits  float64
	scratch   sync.Pool // *[]sampledRef, ObserveBatch grouping
	llc       int64
}

// sampledRef is one batch address that survived the sampling filter,
// carried with its hashes so they are computed once.
type sampledRef struct {
	addr, hv, sv uint64
	slice        int32
}

// NewSlicedEpochMonitor builds a sliced epoch monitor for an LLC (or
// partition budget) of llcLines. retain follows NewEpochMonitor's
// convention (≤ 0 or ≥ 1 selects DefaultRetain). nSlices ≤ 0 selects
// DefaultMonitorSlices; the count is rounded down to a power of two and
// clamped so the smallest array keeps at least one set per slice.
func NewSlicedEpochMonitor(llcLines int64, retain float64, seed uint64, nSlices int) (*SlicedEpochMonitor, error) {
	if llcLines <= 0 {
		return nil, fmt.Errorf("monitor: bad LLC size %d", llcLines)
	}
	if retain <= 0 || retain >= 1 {
		retain = DefaultRetain
	}
	if nSlices <= 0 {
		nSlices = DefaultMonitorSlices
	}
	specs := bankSpecs(llcLines)
	minSets := specs[0].sets
	for _, sp := range specs[1:] {
		if sp.sets < minSets {
			minSets = sp.sets
		}
	}
	if nSlices > minSets {
		nSlices = minSets
	}
	for nSlices&(nSlices-1) != 0 {
		nSlices &= nSlices - 1 // round down to a power of two
	}
	s := &SlicedEpochMonitor{
		h:       hash.NewH3(seed^bankSampleSeed, 64),
		setSeed: hash.Mix64(seed ^ bankSetSeed),
		nSlices: nSlices,
		slices:  make([]monSlice, nSlices),
		specs:   specs,
		retain:  retain,
		llc:     llcLines,
	}
	for _, sp := range specs {
		if sp.thresh > s.maxThresh {
			s.maxThresh = sp.thresh
		}
	}
	for i := range s.acc {
		s.acc[i].hitCtr = make([]int64, specs[i].ways)
	}
	for si := range s.slices {
		for i, sp := range specs {
			localSets := sp.sets / nSlices
			a := &s.slices[si].arr[i]
			a.thresh = sp.thresh
			a.sets = sp.sets
			a.localMask = localSets - 1
			a.ways = sp.ways
			a.tags = make([][]uint64, localSets)
			for t := range a.tags {
				a.tags[t] = make([]uint64, sp.ways)
			}
			a.sizes = make([]int, localSets)
			a.hitCtr = make([]int64, sp.ways)
		}
	}
	s.scratch.New = func() any {
		buf := make([]sampledRef, 0, 256)
		return &buf
	}
	return s, nil
}

// Slices returns the effective slice count after clamping.
func (s *SlicedEpochMonitor) Slices() int { return s.nSlices }

// Retain returns the configured EWMA retention factor.
func (s *SlicedEpochMonitor) Retain() float64 { return s.retain }

// SetRetain changes the EWMA retention factor for subsequent epochs
// (the self-tuning controller adapts it with the epoch length). Values
// outside (0, 1) are ignored. Must be externally serialized with
// EpochCurve — retain is read only inside the epoch step, so the
// adaptive runtime's epochMu covers both; concurrent observers never
// touch it.
func (s *SlicedEpochMonitor) SetRetain(retain float64) {
	if retain > 0 && retain < 1 {
		s.retain = retain
	}
}

// sliceOf returns the slice owning an address's sets, from the shared
// set value.
func (s *SlicedEpochMonitor) sliceOf(sv uint64) int {
	return hash.Reduce(sv, s.nSlices)
}

// SampledSlice reports whether addr passes the bank's sampling filter
// and, if so, which slice owns its sets — exported so stack-level
// identity tests can pre-partition concurrent streams by lock domain
// (streams confined to distinct slices keep every set's access order
// deterministic under any interleaving).
func (s *SlicedEpochMonitor) SampledSlice(addr uint64) (slice int, sampled bool) {
	if s.h.Hash(addr) >= s.maxThresh {
		return 0, false
	}
	return s.sliceOf(bankSetValue(addr, s.setSeed)), true
}

// Observe feeds one pre-sampling access, locking only the owning slice.
// Safe for concurrent use.
func (s *SlicedEpochMonitor) Observe(addr uint64) {
	hv := s.h.Hash(addr)
	if hv >= s.maxThresh {
		return
	}
	sv := bankSetValue(addr, s.setSeed)
	sl := &s.slices[s.sliceOf(sv)]
	sl.mu.Lock()
	sl.observe(addr, hv, sv)
	sl.mu.Unlock()
}

// ObserveBatch feeds a batch of pre-sampling accesses, in order — the
// result is byte-identical to observing each address individually. The
// batch is filtered and grouped by slice first, so each touched slice's
// lock is taken once per batch rather than once per sampled access.
// Safe for concurrent use; per-set access order within the batch is
// preserved because grouping is a stable scan.
func (s *SlicedEpochMonitor) ObserveBatch(addrs []uint64) {
	buf := s.scratch.Get().(*[]sampledRef)
	refs := (*buf)[:0]
	for _, addr := range addrs {
		hv := s.h.Hash(addr)
		if hv >= s.maxThresh {
			continue
		}
		sv := bankSetValue(addr, s.setSeed)
		refs = append(refs, sampledRef{addr: addr, hv: hv, sv: sv, slice: int32(s.sliceOf(sv))})
	}
	for si := 0; si < s.nSlices && len(refs) > 0; si++ {
		first := -1
		for j := range refs {
			if int(refs[j].slice) == si {
				first = j
				break
			}
		}
		if first < 0 {
			continue
		}
		sl := &s.slices[si]
		sl.mu.Lock()
		for j := first; j < len(refs); j++ {
			if int(refs[j].slice) == si {
				sl.observe(refs[j].addr, refs[j].hv, refs[j].sv)
			}
		}
		sl.mu.Unlock()
	}
	*buf = refs[:0]
	s.scratch.Put(buf)
}

// observe fans one sampled access out to the slice's array segments.
// Caller holds sl.mu.
func (sl *monSlice) observe(addr, hv, sv uint64) {
	for i := range sl.arr {
		a := &sl.arr[i]
		if hv >= a.thresh {
			continue
		}
		set := hash.Reduce(sv, a.sets) & a.localMask
		a.accesses++
		d, n := stackWalk(a.tags[set], a.sizes[set], a.ways, addr)
		a.sizes[set] = n
		if d >= 0 {
			a.hitCtr[d]++
		} else {
			a.misses++
		}
	}
}

// drain merges every slice's raw epoch counters into the central
// accumulators and zeroes them, visiting slices in index order (order
// cannot affect the totals — int64 addition — but determinism keeps the
// merge auditable).
func (s *SlicedEpochMonitor) drain() {
	for si := range s.slices {
		sl := &s.slices[si]
		sl.mu.Lock()
		for i := range sl.arr {
			a := &sl.arr[i]
			acc := &s.acc[i]
			for d, h := range a.hitCtr {
				if h != 0 {
					acc.hitCtr[d] += h
					a.hitCtr[d] = 0
				}
			}
			acc.misses += a.misses
			acc.accesses += a.accesses
			a.misses, a.accesses = 0, 0
		}
		sl.mu.Unlock()
	}
}

// EpochCurve closes the current epoch: drains the slices, accounts
// unitsThisEpoch, extracts the combined miss curve from the EWMA'd
// accumulators, then decays accumulators and denominator for the next
// epoch — the exact sequence (and arithmetic) of
// EpochMonitor.EpochCurve. Must be externally serialized with other
// EpochCurve/HistogramSnapshot calls; concurrent observers are fine.
func (s *SlicedEpochMonitor) EpochCurve(unitsThisEpoch float64) (*curve.Curve, error) {
	s.drain()
	s.effUnits += unitsThisEpoch
	ki := s.effUnits / 1000
	var pts [3][]curve.Point
	for i := range s.acc {
		sp := s.specs[i]
		pts[i] = stackPoints(s.acc[i].accesses, s.acc[i].hitCtr, sp.ways, sp.rate, sp.modeled, ki)
	}
	c, err := assembleCurve(pts[0], pts[1], pts[2])
	for i := range s.acc {
		a := &s.acc[i]
		for d := range a.hitCtr {
			a.hitCtr[d] = int64(float64(a.hitCtr[d]) * s.retain)
		}
		a.misses = int64(float64(a.misses) * s.retain)
		a.accesses = int64(float64(a.accesses) * s.retain)
	}
	s.effUnits *= s.retain
	return c, err
}

// HistogramSnapshot drains pending slice counters and returns copies of
// the three arrays' accumulated hit histograms in bank order (sub, fine,
// coarse) plus their sampled access counts — the state the byte-identity
// tests compare against an EpochMonitor fed the same stream. Serialize
// with EpochCurve.
func (s *SlicedEpochMonitor) HistogramSnapshot() (hists [3][]int64, accesses [3]int64) {
	s.drain()
	for i := range s.acc {
		hists[i] = append([]int64(nil), s.acc[i].hitCtr...)
		accesses[i] = s.acc[i].accesses
	}
	return hists, accesses
}
