package monitor

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"talus/internal/hash"
)

// feedEpochs drives the same phased stream through both monitors with
// epochs closed at the same boundaries, returning the curves from each
// epoch. The stream mixes a cyclic scan with random reuse so every array
// sees hits at several depths and the EWMA decay truncation is exercised
// on non-trivial counter values.
func feedEpochs(t *testing.T, em *EpochMonitor, sm *SlicedEpochMonitor, epochs, perEpoch int, seed uint64) {
	t.Helper()
	rng := hash.NewSplitMix64(seed)
	for e := 0; e < epochs; e++ {
		addrs := make([]uint64, perEpoch)
		for i := range addrs {
			if i%3 == 0 {
				addrs[i] = uint64((e*perEpoch + i) % 5000) // scan
			} else {
				addrs[i] = 1 << 20 * (rng.Next()%4096 + 1) // random reuse
			}
		}
		// Mix the entry points: batch on one side, singles on the other,
		// alternating — all four paths must agree.
		if e%2 == 0 {
			em.ObserveBatch(addrs)
			for _, a := range addrs {
				sm.Observe(a)
			}
		} else {
			for _, a := range addrs {
				em.Observe(a)
			}
			sm.ObserveBatch(addrs)
		}

		eh, ea := em.Monitor().HistogramSnapshot()
		sh, sa := sm.HistogramSnapshot()
		for i := range eh {
			if ea[i] != sa[i] {
				t.Fatalf("epoch %d array %d: accesses %d (single) != %d (sliced)", e, i, ea[i], sa[i])
			}
			for d := range eh[i] {
				if eh[i][d] != sh[i][d] {
					t.Fatalf("epoch %d array %d depth %d: hits %d (single) != %d (sliced)", e, i, d, eh[i][d], sh[i][d])
				}
			}
		}

		ec, eErr := em.EpochCurve(float64(perEpoch))
		sc, sErr := sm.EpochCurve(float64(perEpoch))
		if (eErr == nil) != (sErr == nil) {
			t.Fatalf("epoch %d: error mismatch: single=%v sliced=%v", e, eErr, sErr)
		}
		if eErr != nil {
			continue
		}
		ep, sp := ec.Points(), sc.Points()
		if len(ep) != len(sp) {
			t.Fatalf("epoch %d: %d points (single) != %d (sliced)", e, len(ep), len(sp))
		}
		for i := range ep {
			if ep[i].Size != sp[i].Size || math.Float64bits(ep[i].MPKI) != math.Float64bits(sp[i].MPKI) {
				t.Fatalf("epoch %d point %d: single=%+v sliced=%+v", e, i, ep[i], sp[i])
			}
		}
	}
}

// TestSlicedMatchesEpoch pins the tentpole's core identity: a
// SlicedEpochMonitor fed any stream produces, at every epoch boundary,
// bit-identical hit histograms, sampled-access counts, and curves to an
// EpochMonitor fed the same stream — across EWMA decay, warm tags, and
// both batch and single entry points.
func TestSlicedMatchesEpoch(t *testing.T) {
	for _, llc := range []int64{2048, 16384, 131072} {
		for _, slices := range []int{1, 2, 8, 64} {
			em, err := NewEpochMonitor(llc, DefaultRetain, 42)
			if err != nil {
				t.Fatal(err)
			}
			sm, err := NewSlicedEpochMonitor(llc, DefaultRetain, 42, slices)
			if err != nil {
				t.Fatal(err)
			}
			feedEpochs(t, em, sm, 6, 20000, 0xABCD+uint64(llc)+uint64(slices))
		}
	}
}

// TestSlicedSliceClamp checks the slice count is clamped to the smallest
// array's set count and rounded down to a power of two.
func TestSlicedSliceClamp(t *testing.T) {
	// llc 2048: sub array models 512 lines → geometry sheds sets.
	sm, err := NewSlicedEpochMonitor(2048, 0, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	specs := bankSpecs(2048)
	minSets := specs[0].sets
	for _, sp := range specs[1:] {
		if sp.sets < minSets {
			minSets = sp.sets
		}
	}
	if sm.Slices() > minSets {
		t.Fatalf("slices %d > min sets %d", sm.Slices(), minSets)
	}
	if n := sm.Slices(); n&(n-1) != 0 {
		t.Fatalf("slices %d not a power of two", n)
	}
	if sm2, _ := NewSlicedEpochMonitor(1<<20, 0, 1, 6); sm2.Slices() != 4 {
		t.Fatalf("slices = %d, want 6 rounded down to 4", sm2.Slices())
	}
}

// TestSlicedConcurrentMatchesSequential drives the sliced monitor from
// many goroutines — each feeding a stream pre-filtered to a single
// slice, so every set's access order is deterministic even under racing
// schedulers — and requires the merged histograms to be byte-identical
// to a single EpochMonitor fed the same streams sequentially. Run with
// -race this also hammers the slice-locking discipline.
func TestSlicedConcurrentMatchesSequential(t *testing.T) {
	const llc = 65536
	em, err := NewEpochMonitor(llc, DefaultRetain, 7)
	if err != nil {
		t.Fatal(err)
	}
	sm, err := NewSlicedEpochMonitor(llc, DefaultRetain, 7, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Partition a shared address stream by owning slice.
	perSlice := make([][]uint64, sm.Slices())
	rng := hash.NewSplitMix64(99)
	for i := 0; i < 1<<17; i++ {
		addr := rng.Next() % 60000
		hv := sm.h.Hash(addr)
		if hv >= sm.maxThresh {
			continue // would be filtered; keep streams compact
		}
		si := sm.sliceOf(bankSetValue(addr, sm.setSeed))
		perSlice[si] = append(perSlice[si], addr)
	}
	const rounds = 3
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for si := range perSlice {
			wg.Add(1)
			go func(stream []uint64) {
				defer wg.Done()
				// Ragged batches exercise both entry points concurrently.
				for i := 0; i < len(stream); {
					n := 64 + i%129
					if i+n > len(stream) {
						n = len(stream) - i
					}
					if i%2 == 0 {
						sm.ObserveBatch(stream[i : i+n])
					} else {
						for _, a := range stream[i : i+n] {
							sm.Observe(a)
						}
					}
					i += n
					runtime.Gosched()
				}
			}(perSlice[si])
		}
		wg.Wait()
		for _, stream := range perSlice {
			em.ObserveBatch(stream)
		}
		eh, ea := em.Monitor().HistogramSnapshot()
		sh, sa := sm.HistogramSnapshot()
		for i := range eh {
			if ea[i] != sa[i] {
				t.Fatalf("round %d array %d: accesses %d (single) != %d (sliced)", r, i, ea[i], sa[i])
			}
			for d := range eh[i] {
				if eh[i][d] != sh[i][d] {
					t.Fatalf("round %d array %d depth %d: hits %d (single) != %d (sliced)", r, i, d, eh[i][d], sh[i][d])
				}
			}
		}
		// Decay between rounds so warm-tag + EWMA state carries over.
		if _, err := em.EpochCurve(1000); err != nil {
			t.Fatal(err)
		}
		if _, err := sm.EpochCurve(1000); err != nil {
			t.Fatal(err)
		}
	}
}

// TestSlicedObserveDuringEpochCurve races observers against epoch
// drains; under -race this pins that EpochCurve's drain and concurrent
// Observe/ObserveBatch are properly synchronized. Timing decides which
// epoch a racing access lands in, so the assertion is race-cleanliness
// plus a well-formed curve, not specific counter values.
func TestSlicedObserveDuringEpochCurve(t *testing.T) {
	sm, err := NewSlicedEpochMonitor(65536, 0.99, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := hash.NewSplitMix64(uint64(g) * 977)
			batch := make([]uint64, 128)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := range batch {
					batch[i] = rng.Next() % 50000
				}
				sm.ObserveBatch(batch)
			}
		}(g)
	}
	for e := 0; e < 50; e++ {
		c, err := sm.EpochCurve(10000)
		if err == nil && len(c.Points()) == 0 {
			t.Fatal("empty curve from non-empty monitor")
		}
		runtime.Gosched()
	}
	close(stop)
	wg.Wait()
}
