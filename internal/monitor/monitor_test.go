package monitor

import (
	"math"
	"testing"

	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/policy"
)

func TestUMONValidation(t *testing.T) {
	if _, err := NewUMON(0, 64, 0.5, 1); err == nil {
		t.Fatal("zero sets must fail")
	}
	if _, err := NewUMON(16, 0, 0.5, 1); err == nil {
		t.Fatal("zero ways must fail")
	}
	if _, err := NewUMON(16, 64, 0, 1); err == nil {
		t.Fatal("zero rate must fail")
	}
	if _, err := NewUMON(16, 64, 1.5, 1); err == nil {
		t.Fatal("rate > 1 must fail")
	}
}

func TestUMONScanCurve(t *testing.T) {
	// A cyclic scan over F lines: the miss curve is ~all-miss below F and
	// ~all-hit above. An unsampled (rate-1) UMON with capacity 2F should
	// show exactly that cliff.
	const f = 512
	u, err := NewUMON(16, 64, 1, 7) // 1024 monitored lines, unsampled
	if err != nil {
		t.Fatal(err)
	}
	const accesses = f * 40
	for i := 0; i < accesses; i++ {
		u.Observe(uint64(i % f))
	}
	apki := 10.0
	kiloInstr := float64(accesses) / apki
	pts := u.Points(kiloInstr)
	c, err := curve.New(pts)
	if err != nil {
		t.Fatal(err)
	}
	// Below the footprint: near-APKI MPKI. Above: near zero.
	if got := c.Eval(f / 2); got < apki*0.9 {
		t.Errorf("MPKI at F/2 = %g, want ≈ %g", got, apki)
	}
	if got := c.Eval(f * 3 / 2); got > apki*0.15 {
		t.Errorf("MPKI at 1.5F = %g, want ≈ 0", got)
	}
	// LRU stack property: the curve must be non-increasing.
	if !c.IsNonIncreasing() {
		t.Errorf("UMON curve must be monotone: %v", c)
	}
}

func TestUMONSampledMatchesUnsampled(t *testing.T) {
	// Theorem 4 in practice: a 1/8-sampled monitor with the same array
	// models 8× capacity; on a random working set both monitors must
	// agree where their size ranges overlap.
	rng := hash.NewSplitMix64(3)
	full, err := NewUMON(32, 64, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	sampled, err := NewUMON(32, 64, 0.125, 11)
	if err != nil {
		t.Fatal(err)
	}
	const ws = 4096
	const accesses = 1 << 21
	for i := 0; i < accesses; i++ {
		a := rng.Uint64n(ws)
		full.Observe(a)
		sampled.Observe(a)
	}
	kiloInstr := float64(accesses) / 10
	cf, err := curve.New(full.Points(kiloInstr))
	if err != nil {
		t.Fatal(err)
	}
	cs, err := curve.New(sampled.Points(kiloInstr))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []float64{512, 1024, 1536, 2048} {
		a, b := cf.Eval(s), cs.Eval(s)
		if math.Abs(a-b) > 0.15*(a+1) {
			t.Errorf("size %g: full %g vs sampled %g", s, a, b)
		}
	}
}

func TestLRUMonitorCoverage(t *testing.T) {
	// The paired monitor must produce points beyond the LLC size (4×
	// coverage) — the paper's fix for cliffs beyond the LLC (§VI-C).
	llc := int64(16384)
	m, err := NewLRUMonitor(llc, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(9)
	const accesses = 1 << 21
	for i := 0; i < accesses; i++ {
		m.Observe(rng.Uint64n(100000))
	}
	c, err := m.Curve(float64(accesses) / 20)
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxSize() < float64(3*llc) {
		t.Fatalf("coverage %g lines, want ≥ 3× LLC (%d)", c.MaxSize(), 3*llc)
	}
	if !c.IsNonIncreasing() {
		t.Fatal("combined curve must be monotone")
	}
	if c.Eval(0) <= 0 {
		t.Fatal("size-0 point must be all-miss")
	}
}

func TestLRUMonitorDetectsCliffBeyondLLC(t *testing.T) {
	// A scan of 2× the LLC: the conventional UMON alone cannot see the
	// cliff; the extended monitor must reveal MPKI dropping past 2×LLC.
	llc := int64(8192)
	footprint := uint64(2 * llc)
	m, err := NewLRUMonitor(llc, 5)
	if err != nil {
		t.Fatal(err)
	}
	accesses := int(footprint) * 48
	for i := 0; i < accesses; i++ {
		m.Observe(uint64(i) % footprint)
	}
	c, err := m.Curve(float64(accesses) / 30)
	if err != nil {
		t.Fatal(err)
	}
	atLLC := c.Eval(float64(llc))
	beyond := c.Eval(float64(3 * llc))
	if !(beyond < atLLC*0.3) {
		t.Fatalf("extended monitor missed the cliff: m(LLC)=%g m(3LLC)=%g", atLLC, beyond)
	}
}

func TestLRUMonitorNoObservations(t *testing.T) {
	m, err := NewLRUMonitor(1024, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Curve(10); err == nil {
		t.Fatal("curve with no observations must fail")
	}
}

func TestUMONResetCounters(t *testing.T) {
	u, err := NewUMON(4, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		u.Observe(uint64(i % 16))
	}
	u.ResetCounters()
	if u.SampledAccesses() != 0 {
		t.Fatal("ResetCounters must clear access counts")
	}
	// Tags stay warm: re-observing resident lines hits immediately.
	u.Observe(15)
	if u.SampledAccesses() != 1 {
		t.Fatal("monitor must keep observing after reset")
	}
}

func TestPolicyMonitorPoint(t *testing.T) {
	// An SRRIP monitor modeling 4096 lines, on a 2048-line working set:
	// near-zero misses in steady state.
	pm, err := NewPolicyMonitor(4096, 1024, 16, policy.SRRIPFactory, 3)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(8)
	const accesses = 1 << 21
	for i := 0; i < accesses; i++ {
		pm.Observe(rng.Uint64n(2048))
	}
	p := pm.Point(float64(accesses) / 10)
	if p.Size != 4096 {
		t.Fatalf("point size = %g", p.Size)
	}
	if p.MPKI > 1.5 {
		t.Fatalf("fitting working set MPKI = %g, want ≈ 0", p.MPKI)
	}
}

func TestMultiMonitorCurveShape(t *testing.T) {
	// SRRIP multi-monitor on a scan: the curve must fall from all-miss
	// toward zero as modeled capacity exceeds the footprint.
	mm, err := NewMultiMonitor(16384, 16, 1024, 16, policy.LRUFactory, 4)
	if err != nil {
		t.Fatal(err)
	}
	const footprint = 6000
	const accesses = 1 << 21
	for i := 0; i < accesses; i++ {
		mm.Observe(uint64(i % footprint))
	}
	c, err := mm.Curve(float64(accesses) / 10)
	if err != nil {
		t.Fatal(err)
	}
	if c.Eval(0) < 8 {
		t.Fatalf("size-0 MPKI = %g, want ≈ APKI (10)", c.Eval(0))
	}
	small := c.Eval(3000)
	big := c.Eval(15000)
	if !(big < small*0.4) {
		t.Fatalf("multi-monitor curve did not fall: m(3000)=%g m(15000)=%g", small, big)
	}
}

func TestMultiMonitorValidation(t *testing.T) {
	if _, err := NewMultiMonitor(1024, 1, 128, 4, policy.LRUFactory, 1); err == nil {
		t.Fatal("single-point multi-monitor must fail")
	}
}
