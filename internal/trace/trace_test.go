package trace

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	addrs := []uint64{0, 1, 1 << 40, ^uint64(0), 42}
	var buf bytes.Buffer
	if err := Write(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("length %d, want %d", len(got), len(addrs))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d = %d, want %d", i, got[i], addrs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty trace, got %d entries", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRCE-----------------"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncated(t *testing.T) {
	addrs := []uint64{1, 2, 3}
	var buf bytes.Buffer
	if err := Write(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Fatal("truncated trace must fail")
	}
	if _, err := Read(bytes.NewReader(raw[:6])); err == nil {
		t.Fatal("truncated header must fail")
	}
}

func TestBadVersion(t *testing.T) {
	addrs := []uint64{1}
	var buf bytes.Buffer
	if err := Write(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 99 // corrupt version byte
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	addrs := []uint64{7, 8, 9}
	if err := WriteFile(path, addrs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Fatalf("got %v", got)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestRecord(t *testing.T) {
	i := uint64(0)
	next := func() uint64 { i++; return i }
	got := Record(next, 5)
	for j, v := range got {
		if v != uint64(j+1) {
			t.Fatalf("Record = %v", got)
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(addrs []uint64) bool {
		var buf bytes.Buffer
		if err := Write(&buf, addrs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(addrs) {
			return false
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
