package trace

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"talus/internal/workload"
)

func TestRoundTrip(t *testing.T) {
	addrs := []uint64{0, 1, 1 << 40, ^uint64(0), 42}
	var buf bytes.Buffer
	if err := Write(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(addrs) {
		t.Fatalf("length %d, want %d", len(got), len(addrs))
	}
	for i := range addrs {
		if got[i] != addrs[i] {
			t.Fatalf("addr %d = %d, want %d", i, got[i], addrs[i])
		}
	}
}

func TestEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("expected empty trace, got %d entries", len(got))
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("NOTATRCE-----------------"))); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTruncated(t *testing.T) {
	addrs := []uint64{1, 2, 3}
	var buf bytes.Buffer
	if err := Write(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := Read(bytes.NewReader(raw[:len(raw)-4])); err == nil {
		t.Fatal("truncated trace must fail")
	}
	if _, err := Read(bytes.NewReader(raw[:6])); err == nil {
		t.Fatal("truncated header must fail")
	}
}

func TestBadVersion(t *testing.T) {
	addrs := []uint64{1}
	var buf bytes.Buffer
	if err := Write(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8] = 99 // corrupt version byte
	if _, err := Read(bytes.NewReader(raw)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.trace")
	addrs := []uint64{7, 8, 9}
	if err := WriteFile(path, addrs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 7 || got[2] != 9 {
		t.Fatalf("got %v", got)
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "absent")); err == nil {
		t.Fatal("missing file must fail")
	}
}

func TestCapture(t *testing.T) {
	i := uint64(0)
	next := func() uint64 { i++; return i }
	got := Capture(next, 5)
	for j, v := range got {
		if v != uint64(j+1) {
			t.Fatalf("Capture = %v", got)
		}
	}
}

// --- version-2 partitioned format ---------------------------------------

func writeV2(t *testing.T, recs []Record, numPartitions int, opts ...WriterOption) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, numPartitions, opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r.P, r.Addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func sampleRecords() []Record {
	return []Record{
		{0, 100}, {0, 101}, {1, 1 << 40}, {0, 99}, {2, 0},
		{1, 1<<40 + 64}, {2, ^uint64(0)}, {2, 5}, {0, 102},
	}
}

func TestV2RoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []WriterOption
	}{
		{"plain", nil},
		{"gzip", []WriterOption{WithGzip()}},
		{"meta", []WriterOption{WithApps([]AppMeta{
			{Name: "a", APKI: 1, CPIBase: 2, MLP: 3},
			{Name: "b", APKI: 4, CPIBase: 5, MLP: 6},
			{Name: "", APKI: 0, CPIBase: 0, MLP: 0},
		})}},
		{"gzip+meta", []WriterOption{WithGzip(), WithApps(make([]AppMeta, 3))}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			recs := sampleRecords()
			raw := writeV2(t, recs, 3, tc.opts...)
			tr, err := ReadAll(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if tr.NumPartitions() != 3 {
				t.Fatalf("partitions = %d, want 3", tr.NumPartitions())
			}
			if len(tr.Records) != len(recs) {
				t.Fatalf("records = %d, want %d", len(tr.Records), len(recs))
			}
			for i := range recs {
				if tr.Records[i] != recs[i] {
					t.Fatalf("record %d = %+v, want %+v", i, tr.Records[i], recs[i])
				}
			}
		})
	}
}

func TestV2Meta(t *testing.T) {
	apps := []AppMeta{{Name: "mcf", APKI: 25, CPIBase: 0.8, MLP: 1.3}, {Name: "lbm", APKI: 34, CPIBase: 0.5, MLP: 3.5}}
	raw := writeV2(t, []Record{{0, 1}, {1, 2}}, 2, WithApps(apps))
	tr, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	for p, want := range apps {
		got, ok := tr.Meta(p)
		if !ok || got != want {
			t.Fatalf("meta %d = %+v (ok=%v), want %+v", p, got, ok, want)
		}
	}
	// A meta-less trace reports none.
	tr2, err := ReadAll(bytes.NewReader(writeV2(t, []Record{{0, 1}}, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tr2.Meta(0); ok {
		t.Fatal("meta reported on a meta-less trace")
	}
}

func TestV2GzipCompresses(t *testing.T) {
	// A sequential scan should delta-encode to ~1 byte/record and then
	// gzip far below the plain encoding.
	recs := make([]Record, 1<<14)
	for i := range recs {
		recs[i] = Record{P: 0, Addr: uint64(i)}
	}
	plain := writeV2(t, recs, 1)
	gz := writeV2(t, recs, 1, WithGzip())
	if len(plain) > 3*len(recs) {
		t.Fatalf("delta encoding too fat: %d bytes for %d records", len(plain), len(recs))
	}
	if len(gz) >= len(plain)/10 {
		t.Fatalf("gzip did not compress a scan: %d vs %d bytes", len(gz), len(plain))
	}
}

func TestV2Truncated(t *testing.T) {
	raw := writeV2(t, sampleRecords(), 3)
	// Chopping mid-record must error, not silently shorten the trace...
	if _, err := ReadAll(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated v2 trace must fail")
	}
	// ...and chopping the header must error too.
	if _, err := ReadAll(bytes.NewReader(raw[:13])); err == nil {
		t.Fatal("truncated v2 header must fail")
	}
}

func TestV2BadFlags(t *testing.T) {
	raw := writeV2(t, []Record{{0, 1}}, 1)
	raw[12] |= 0x80 // set an unknown flag bit
	if _, err := ReadAll(bytes.NewReader(raw)); !errors.Is(err, ErrBadFlags) {
		t.Fatalf("err = %v, want ErrBadFlags", err)
	}
}

func TestV2BadPartition(t *testing.T) {
	if _, err := NewWriter(io.Discard, 0); err == nil {
		t.Fatal("0 partitions must fail")
	}
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(2, 1); err == nil {
		t.Fatal("out-of-range partition must fail")
	}
	if _, err := NewWriter(io.Discard, 2, WithApps(make([]AppMeta, 3))); err == nil {
		t.Fatal("meta/partition count mismatch must fail")
	}
}

func TestReadLegacyThroughReader(t *testing.T) {
	addrs := []uint64{7, 8, 9}
	var buf bytes.Buffer
	if err := Write(&buf, addrs); err != nil {
		t.Fatal(err)
	}
	tr, err := ReadAll(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Header.Version != Version1 || tr.NumPartitions() != 1 {
		t.Fatalf("header = %+v", tr.Header)
	}
	for i, r := range tr.Records {
		if r.P != 0 || r.Addr != addrs[i] {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestTraceHelpers(t *testing.T) {
	raw := writeV2(t, sampleRecords(), 3)
	tr, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	counts := tr.Counts()
	if counts[0] != 4 || counts[1] != 2 || counts[2] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	p0 := tr.PartitionStream(0)
	want := []uint64{100, 101, 99, 102}
	if len(p0) != len(want) {
		t.Fatalf("p0 = %v", p0)
	}
	for i := range want {
		if p0[i] != want[i] {
			t.Fatalf("p0 = %v, want %v", p0, want)
		}
	}
	if len(tr.Flat()) != len(tr.Records) {
		t.Fatalf("flat length %d", len(tr.Flat()))
	}
}

func TestReplayPattern(t *testing.T) {
	r, err := NewReplay([]uint64{5, 6, 5, 7})
	if err != nil {
		t.Fatal(err)
	}
	if r.Footprint() != 3 {
		t.Fatalf("footprint = %d, want 3", r.Footprint())
	}
	got := make([]uint64, 6)
	for i := range got {
		got[i] = r.Next(nil)
	}
	want := []uint64{5, 6, 5, 7, 5, 6} // wraps around
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("replay = %v, want %v", got, want)
		}
	}
	// Clone restarts; the original keeps its position.
	c := r.Clone()
	if c.(*Replay).Next(nil) != 5 || r.Next(nil) != 5 {
		t.Fatal("clone position not independent")
	}
	if _, err := NewReplay(nil); err == nil {
		t.Fatal("empty replay must fail")
	}
}

func TestSpecsAndAppSpec(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mix.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, 2, WithApps([]AppMeta{
		{Name: "alpha", APKI: 11, CPIBase: 0.6, MLP: 2.5},
		{Name: "beta"},
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Partition 1 reuses partition 0's address 1: private spaces, so the
	// two must NOT alias when the trace is flattened into one app.
	for _, r := range []Record{{0, 1}, {1, 1}, {0, 2}, {1, 1}} {
		if err := w.Append(r.P, r.Addr); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	tr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := tr.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Name != "alpha" || specs[0].APKI != 11 {
		t.Fatalf("spec 0 = %+v", specs[0])
	}
	// Missing meta fields fall back to defaults.
	if specs[1].Name != "beta" || specs[1].APKI != DefaultAPKI {
		t.Fatalf("spec 1 = %+v", specs[1])
	}
	p := specs[1].Build()
	if p.Next(nil) != 1 || p.Next(nil) != 1 || p.Footprint() != 1 {
		t.Fatal("partition replay wrong")
	}

	// AppSpec flattens a multi-partition trace, offsetting each
	// partition into a disjoint subspace (addresses were recorded in
	// private per-partition spaces) and ignoring its meta.
	spec, err := AppSpec(path)
	if err != nil {
		t.Fatal(err)
	}
	if spec.APKI != DefaultAPKI {
		t.Fatalf("flattened spec kept single-app meta: %+v", spec)
	}
	flat := spec.Build()
	want := []uint64{1 | 1<<56, 1 | 2<<56, 2 | 1<<56, 1 | 2<<56}
	for i, a := range want {
		if got := flat.Next(nil); got != a {
			t.Fatalf("flat replay %d = %#x, want %#x", i, got, a)
		}
	}
	// Partition 0's line 1 and partition 1's line 1 are different lines:
	// footprint counts 3 distinct addresses, not 2 aliased ones.
	if flat.Footprint() != 3 {
		t.Fatalf("flattened footprint = %d, want 3 (partition spaces aliased?)", flat.Footprint())
	}
	// The partition offsets must survive the feeders' own per-app OR
	// offset (bits 48–55): distinct (partition, addr) pairs stay
	// distinct after | space, for any plausible app slot.
	for slot := uint64(1); slot <= 8; slot++ {
		seen := map[uint64]struct{}{}
		for _, a := range []uint64{1 | 1<<56, 1 | 2<<56, 2 | 1<<56} {
			seen[a|slot<<48] = struct{}{}
		}
		if len(seen) != 3 {
			t.Fatalf("slot %d: partition spaces alias under the feeder offset", slot)
		}
	}
	// Resolve goes through the registered "trace" source.
	rspec, err := workload.Resolve("trace:" + path)
	if err != nil {
		t.Fatal(err)
	}
	if rspec.Build().Next(nil) != 1|1<<56 {
		t.Fatal("resolved trace spec replay wrong")
	}

	// A single-partition trace flattens raw (no offset) and keeps meta.
	single := filepath.Join(dir, "single.trc")
	sf, err := os.Create(single)
	if err != nil {
		t.Fatal(err)
	}
	sw, err := NewWriter(sf, 1, WithApps([]AppMeta{{Name: "solo", APKI: 3, CPIBase: 0.4, MLP: 1.5}}))
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Append(0, 42); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sf.Close(); err != nil {
		t.Fatal(err)
	}
	sspec, err := AppSpec(single)
	if err != nil {
		t.Fatal(err)
	}
	if sspec.Name != "solo" || sspec.APKI != 3 || sspec.Build().Next(nil) != 42 {
		t.Fatalf("single-partition spec = %+v", sspec)
	}
}

func TestPartitionStreams(t *testing.T) {
	raw := writeV2(t, sampleRecords(), 3)
	tr, err := ReadAll(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	streams := tr.PartitionStreams()
	for p := range streams {
		want := tr.PartitionStream(p)
		if len(streams[p]) != len(want) {
			t.Fatalf("partition %d: %v vs %v", p, streams[p], want)
		}
		for i := range want {
			if streams[p][i] != want[i] {
				t.Fatalf("partition %d: %v vs %v", p, streams[p], want)
			}
		}
	}
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(addrs []uint64) bool {
		var buf bytes.Buffer
		if err := Write(&buf, addrs); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil || len(got) != len(addrs) {
			return false
		}
		for i := range addrs {
			if got[i] != addrs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestAppSpecRejectsHighBitAddresses: flattened multi-partition replay
// tags partitions in bits 56–63 by OR, which only stays collision-free
// while recorded addresses leave those bits clear — e.g. a re-recorded
// flattened trace would alias silently, so it must be rejected.
func TestAppSpecRejectsHighBitAddresses(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hi.trc")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(0, 1|1<<56); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := AppSpec(path); err == nil || !strings.Contains(err.Error(), "bits 56-63") {
		t.Fatalf("AppSpec = %v, want high-bit rejection", err)
	}
	// Per-partition specs still work on the same trace.
	tr, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Specs(); err != nil {
		t.Fatal(err)
	}
}
