package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// External trace import: converters from two widely used interchange
// formats into this package's version-2 trace format, so recorded
// streams from other simulators can drive the same monitor → hull →
// Talus pipeline as the built-in generators ("trace:<path>" workloads).

// champSimRecordSize is the fixed size of one ChampSim instruction
// record (trace_instr_format_t): ip, branch flags, register lists, two
// destination memory operands, four source memory operands.
const champSimRecordSize = 64

// Byte offsets of the memory-operand arrays inside a ChampSim record.
const (
	champSimDestOff = 16 // destination_memory[2], little-endian u64 each
	champSimSrcOff  = 32 // source_memory[4], little-endian u64 each
)

// champSimLineShift converts ChampSim's byte addresses to 64-byte cache
// line addresses, the unit every consumer of this package works in.
const champSimLineShift = 6

// ImportChampSim streams a raw ChampSim instruction trace from r into w
// as single-partition records. Each 64-byte instruction record carries
// up to four source (load) and two destination (store) memory operands;
// zero operands are empty slots. Operands are emitted in access order —
// sources (execute) before destinations (retire) — as cache-line
// addresses (byte address >> 6). Returns the number of records
// appended. A trailing partial instruction record is corruption, not
// end of stream.
//
// ChampSim distributes traces xz- or gzip-compressed; decompress
// before importing (gzip works with compress/gzip, xz needs the
// external xz tool).
func ImportChampSim(r io.Reader, w *Writer) (int64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var rec [champSimRecordSize]byte
	var appended int64
	for {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			if err == io.EOF {
				return appended, nil
			}
			return appended, fmt.Errorf("trace: champsim record %d: %w", appended, errCorrupt(err))
		}
		for i := 0; i < 4; i++ {
			addr := binary.LittleEndian.Uint64(rec[champSimSrcOff+8*i:])
			if addr == 0 {
				continue
			}
			if err := w.Append(0, addr>>champSimLineShift); err != nil {
				return appended, err
			}
			appended++
		}
		for i := 0; i < 2; i++ {
			addr := binary.LittleEndian.Uint64(rec[champSimDestOff+8*i:])
			if addr == 0 {
				continue
			}
			if err := w.Append(0, addr>>champSimLineShift); err != nil {
				return appended, err
			}
			appended++
		}
	}
}

// ParseText reads the plain-text interchange format: one record per
// line, `addr[,partition]`, where addr is a line address in decimal or
// 0x-prefixed hex and partition defaults to 0. Blank lines and
// #-comments are skipped. Returns the records and the partition count
// (highest partition seen + 1, at least 1) — ready to hand to
// WriteRecords, which needs the count before the first record.
func ParseText(r io.Reader) ([]Record, int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var recs []Record
	parts := 1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		addrStr, partStr, hasPart := strings.Cut(line, ",")
		addr, err := strconv.ParseUint(strings.TrimSpace(addrStr), 0, 64)
		if err != nil {
			return nil, 0, fmt.Errorf("trace: text line %d: bad address %q", lineNo, strings.TrimSpace(addrStr))
		}
		p := 0
		if hasPart {
			p, err = strconv.Atoi(strings.TrimSpace(partStr))
			if err != nil || p < 0 || p >= maxPartitions {
				return nil, 0, fmt.Errorf("trace: text line %d: bad partition %q", lineNo, strings.TrimSpace(partStr))
			}
		}
		if p+1 > parts {
			parts = p + 1
		}
		recs = append(recs, Record{P: p, Addr: addr})
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return recs, parts, nil
}

// WriteRecords writes a complete version-2 trace of numPartitions
// partitions holding recs, in order, to w — the one-shot counterpart of
// NewWriter/Append/Close for imports that know their records up front.
func WriteRecords(w io.Writer, numPartitions int, recs []Record, opts ...WriterOption) error {
	tw, err := NewWriter(w, numPartitions, opts...)
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := tw.Append(r.P, r.Addr); err != nil {
			return err
		}
	}
	return tw.Close()
}
