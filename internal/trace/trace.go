package trace

import (
	"bufio"
	"compress/gzip"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"talus/internal/hash"
	"talus/internal/workload"
)

// Magic identifies trace files.
var Magic = [8]byte{'T', 'A', 'L', 'U', 'S', 'T', 'R', 'C'}

// Format versions. Version1 is the legacy flat format; Version2 is the
// partitioned record format new writers produce.
const (
	Version1 uint32 = 1
	Version2 uint32 = 2

	// Version is the version NewWriter produces.
	Version = Version2
)

// Flags in the version-2 header.
const (
	// FlagGzip marks the body (everything after the flags word) as a
	// gzip stream.
	FlagGzip uint32 = 1 << 0
	// FlagMeta marks the presence of per-partition app metadata.
	FlagMeta uint32 = 1 << 1

	flagsKnown = FlagGzip | FlagMeta
)

// Errors returned by the readers.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
	ErrBadFlags   = errors.New("trace: unknown flags")
	ErrCorrupt    = errors.New("trace: corrupt record stream")
)

// maxPartitions bounds the partition count a reader will accept (a
// corrupt header must not allocate unbounded state).
const maxPartitions = 1 << 16

// AppMeta is the per-partition application metadata a version-2 trace
// can carry: the recorded clone's name and analytic core-model
// parameters, enough to rebuild a workload.Spec at replay time.
type AppMeta struct {
	Name    string
	APKI    float64
	CPIBase float64
	MLP     float64
}

// Record is one trace entry: partition P accessed line address Addr.
// Addresses are recorded in the generator's private space (without the
// per-app address-space offset the feeders apply — see sim.RecordApps).
type Record struct {
	P    int
	Addr uint64
}

// Header describes a parsed trace's shape.
type Header struct {
	Version       uint32
	Flags         uint32
	NumPartitions int
	Apps          []AppMeta // len NumPartitions when FlagMeta is set, else nil
}

// --- Writer -------------------------------------------------------------

// Writer streams records into a version-2 trace. Not safe for
// concurrent use. Close flushes; it does not close the underlying
// writer.
type Writer struct {
	bw    *bufio.Writer // over gz when compressing, else over the sink
	gz    *gzip.Writer  // nil when not compressing
	n     int
	last  []uint64 // previous address per partition (delta base)
	buf   [2 * binary.MaxVarintLen64]byte
	count int64
	err   error
}

// WriterOption configures NewWriter.
type WriterOption func(*writerOpts)

type writerOpts struct {
	gzip bool
	apps []AppMeta
}

// WithGzip compresses the trace body.
func WithGzip() WriterOption { return func(o *writerOpts) { o.gzip = true } }

// WithApps embeds per-partition app metadata (FlagMeta); len(apps)
// must equal the writer's partition count.
func WithApps(apps []AppMeta) WriterOption {
	cp := make([]AppMeta, len(apps))
	copy(cp, apps)
	return func(o *writerOpts) { o.apps = cp }
}

// NewWriter writes a version-2 header for numPartitions partitions to w
// and returns a Writer appending records to it.
func NewWriter(w io.Writer, numPartitions int, opts ...WriterOption) (*Writer, error) {
	if numPartitions < 1 || numPartitions > maxPartitions {
		return nil, fmt.Errorf("trace: partition count %d out of range [1,%d]", numPartitions, maxPartitions)
	}
	var o writerOpts
	for _, opt := range opts {
		opt(&o)
	}
	if o.apps != nil && len(o.apps) != numPartitions {
		return nil, fmt.Errorf("trace: %d app metas for %d partitions", len(o.apps), numPartitions)
	}
	var flags uint32
	if o.gzip {
		flags |= FlagGzip
	}
	if o.apps != nil {
		flags |= FlagMeta
	}
	var hdr [16]byte
	copy(hdr[:8], Magic[:])
	binary.LittleEndian.PutUint32(hdr[8:12], Version2)
	binary.LittleEndian.PutUint32(hdr[12:16], flags)
	if _, err := w.Write(hdr[:]); err != nil {
		return nil, err
	}
	tw := &Writer{n: numPartitions, last: make([]uint64, numPartitions)}
	if o.gzip {
		tw.gz = gzip.NewWriter(w)
		tw.bw = bufio.NewWriter(tw.gz)
	} else {
		tw.bw = bufio.NewWriter(w)
	}
	var body []byte
	body = binary.AppendUvarint(body, uint64(numPartitions))
	for _, a := range o.apps {
		body = binary.AppendUvarint(body, uint64(len(a.Name)))
		body = append(body, a.Name...)
		for _, f := range []float64{a.APKI, a.CPIBase, a.MLP} {
			body = binary.LittleEndian.AppendUint64(body, math.Float64bits(f))
		}
	}
	if _, err := tw.bw.Write(body); err != nil {
		return nil, err
	}
	return tw, nil
}

// Append writes one record.
func (w *Writer) Append(p int, addr uint64) error {
	if w.err != nil {
		return w.err
	}
	if p < 0 || p >= w.n {
		w.err = fmt.Errorf("trace: partition %d out of range [0,%d)", p, w.n)
		return w.err
	}
	k := binary.PutUvarint(w.buf[:], uint64(p))
	k += binary.PutVarint(w.buf[k:], int64(addr-w.last[p]))
	w.last[p] = addr
	if _, err := w.bw.Write(w.buf[:k]); err != nil {
		w.err = err
		return err
	}
	w.count++
	return nil
}

// AppendBatch writes one record per address, all on partition p.
func (w *Writer) AppendBatch(p int, addrs []uint64) error {
	for _, a := range addrs {
		if err := w.Append(p, a); err != nil {
			return err
		}
	}
	return nil
}

// Count returns how many records have been appended.
func (w *Writer) Count() int64 { return w.count }

// Close flushes buffered records (and terminates the gzip stream). The
// underlying writer is not closed.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = err
		return err
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			w.err = err
			return err
		}
	}
	w.err = errors.New("trace: writer closed")
	return nil
}

// --- Reader -------------------------------------------------------------

// Reader streams records out of a trace. It reads both versions:
// version-1 traces surface as a single partition (P always 0). Not safe
// for concurrent use.
type Reader struct {
	br     *bufio.Reader
	hdr    Header
	last   []uint64
	v1left uint64 // remaining flat addresses (version 1 only)
}

// NewReader parses the header from r and returns a Reader positioned at
// the first record.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	switch version {
	case Version1:
		var count uint64
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, err
		}
		const maxCount = 1 << 32 // sanity bound: 32 GB of addresses
		if count > maxCount {
			return nil, fmt.Errorf("trace: implausible count %d", count)
		}
		return &Reader{
			br:     br,
			hdr:    Header{Version: Version1, NumPartitions: 1},
			last:   make([]uint64, 1),
			v1left: count,
		}, nil
	case Version2:
		var flags uint32
		if err := binary.Read(br, binary.LittleEndian, &flags); err != nil {
			return nil, err
		}
		if flags&^flagsKnown != 0 {
			return nil, fmt.Errorf("%w: %#x", ErrBadFlags, flags&^flagsKnown)
		}
		if flags&FlagGzip != 0 {
			gz, err := gzip.NewReader(br)
			if err != nil {
				return nil, fmt.Errorf("trace: gzip body: %w", err)
			}
			br = bufio.NewReader(gz)
		}
		np, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("trace: partition count: %w", errCorrupt(err))
		}
		if np < 1 || np > maxPartitions {
			return nil, fmt.Errorf("trace: partition count %d out of range [1,%d]", np, maxPartitions)
		}
		hdr := Header{Version: Version2, Flags: flags, NumPartitions: int(np)}
		if flags&FlagMeta != 0 {
			hdr.Apps = make([]AppMeta, np)
			for i := range hdr.Apps {
				nameLen, err := binary.ReadUvarint(br)
				if err != nil || nameLen > 4096 {
					return nil, fmt.Errorf("trace: app %d name: %w", i, errCorrupt(err))
				}
				name := make([]byte, nameLen)
				if _, err := io.ReadFull(br, name); err != nil {
					return nil, fmt.Errorf("trace: app %d name: %w", i, errCorrupt(err))
				}
				var fs [3]float64
				for j := range fs {
					var bits uint64
					if err := binary.Read(br, binary.LittleEndian, &bits); err != nil {
						return nil, fmt.Errorf("trace: app %d params: %w", i, errCorrupt(err))
					}
					fs[j] = math.Float64frombits(bits)
				}
				hdr.Apps[i] = AppMeta{Name: string(name), APKI: fs[0], CPIBase: fs[1], MLP: fs[2]}
			}
		}
		return &Reader{br: br, hdr: hdr, last: make([]uint64, np)}, nil
	}
	return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
}

// errCorrupt maps a clean EOF inside a structure to ErrCorrupt (a
// truncated trace must not read as a short-but-valid one).
func errCorrupt(err error) error {
	if err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrCorrupt
	}
	return err
}

// Header returns the parsed trace header.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next record, or io.EOF when the trace is exhausted.
func (r *Reader) Next() (Record, error) {
	if r.hdr.Version == Version1 {
		if r.v1left == 0 {
			return Record{}, io.EOF
		}
		var buf [8]byte
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			return Record{}, errCorrupt(err)
		}
		r.v1left--
		return Record{P: 0, Addr: binary.LittleEndian.Uint64(buf[:])}, nil
	}
	p, err := binary.ReadUvarint(r.br)
	if err != nil {
		if errors.Is(err, io.EOF) {
			// A record boundary is the one legitimate end of stream.
			return Record{}, io.EOF
		}
		return Record{}, errCorrupt(err)
	}
	if p >= uint64(r.hdr.NumPartitions) {
		return Record{}, fmt.Errorf("%w: partition %d out of range [0,%d)", ErrCorrupt, p, r.hdr.NumPartitions)
	}
	delta, err := binary.ReadVarint(r.br)
	if err != nil {
		return Record{}, errCorrupt(err)
	}
	r.last[p] += uint64(delta)
	return Record{P: int(p), Addr: r.last[p]}, nil
}

// FileReader is a Reader that owns its file handle: the streaming
// counterpart of Load, for traces larger than memory. Read records with
// Next; Close when done.
type FileReader struct {
	*Reader
	f *os.File
}

// OpenFile opens path and parses the trace header, returning a
// FileReader positioned at the first record.
func OpenFile(path string) (*FileReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return &FileReader{Reader: r, f: f}, nil
}

// Close releases the underlying file.
func (r *FileReader) Close() error { return r.f.Close() }

// --- Loaded traces ------------------------------------------------------

// Trace is a fully loaded trace: header plus all records in stream
// order.
type Trace struct {
	Header  Header
	Records []Record
}

// Load reads an entire trace file into memory.
func Load(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// ReadAll drains a Reader over r into a Trace.
func ReadAll(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{Header: tr.Header()}
	for {
		rec, err := tr.Next()
		if err == io.EOF {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Records = append(t.Records, rec)
	}
}

// NumPartitions returns the trace's partition count.
func (t *Trace) NumPartitions() int { return t.Header.NumPartitions }

// Counts returns per-partition record counts.
func (t *Trace) Counts() []int64 {
	out := make([]int64, t.Header.NumPartitions)
	for _, r := range t.Records {
		out[r.P]++
	}
	return out
}

// PartitionStream returns partition p's addresses in stream order.
func (t *Trace) PartitionStream(p int) []uint64 {
	var out []uint64
	for _, r := range t.Records {
		if r.P == p {
			out = append(out, r.Addr)
		}
	}
	return out
}

// PartitionStreams buckets every partition's addresses in one pass over
// the records (PartitionStream per partition would rescan the whole
// trace NumPartitions times).
func (t *Trace) PartitionStreams() [][]uint64 {
	counts := t.Counts()
	out := make([][]uint64, t.Header.NumPartitions)
	for p, c := range counts {
		out[p] = make([]uint64, 0, c)
	}
	for _, r := range t.Records {
		out[r.P] = append(out[r.P], r.Addr)
	}
	return out
}

// Flat returns every address in stream order, partitions interleaved as
// recorded.
func (t *Trace) Flat() []uint64 {
	out := make([]uint64, len(t.Records))
	for i, r := range t.Records {
		out[i] = r.Addr
	}
	return out
}

// Meta returns partition p's app metadata and whether the trace carries
// any.
func (t *Trace) Meta(p int) (AppMeta, bool) {
	if t.Header.Apps == nil || p < 0 || p >= len(t.Header.Apps) {
		return AppMeta{}, false
	}
	return t.Header.Apps[p], true
}

// --- Replay: traces as workload patterns --------------------------------

// Replay cycles through a recorded address stream, implementing
// workload.Pattern so traces slot anywhere a generator does (RunSweep,
// RunMix, talus-sim app lists). Like Scan, it wraps around when
// exhausted: replay longer than the recording laps the stream.
type Replay struct {
	addrs     []uint64
	pos       int
	footprint int64
}

// NewReplay builds a Replay over addrs (which must be non-empty; the
// slice is retained, not copied).
func NewReplay(addrs []uint64) (*Replay, error) {
	if len(addrs) == 0 {
		return nil, errors.New("trace: empty replay stream")
	}
	distinct := make(map[uint64]struct{}, min(len(addrs), 1<<20))
	for _, a := range addrs {
		distinct[a] = struct{}{}
	}
	return &Replay{addrs: addrs, footprint: int64(len(distinct))}, nil
}

// Next implements workload.Pattern.
func (r *Replay) Next(_ *hash.SplitMix64) uint64 {
	a := r.addrs[r.pos]
	r.pos++
	if r.pos == len(r.addrs) {
		r.pos = 0
	}
	return a
}

// Footprint implements workload.Pattern: the number of distinct lines in
// the recording.
func (r *Replay) Footprint() int64 { return r.footprint }

// Clone implements workload.Pattern (fresh position, shared addresses).
func (r *Replay) Clone() workload.Pattern {
	return &Replay{addrs: r.addrs, footprint: r.footprint}
}

// Len returns the recording's length in accesses.
func (r *Replay) Len() int { return len(r.addrs) }

// Default core-model parameters for traces recorded without metadata:
// a moderately memory-intensive app (the analytic model needs some
// APKI/CPI/MLP to convert misses to IPC; miss counts are unaffected).
const (
	DefaultAPKI    = 10.0
	DefaultCPIBase = 0.5
	DefaultMLP     = 2.0
)

// metaSpec builds a pattern-less workload.Spec named name with the
// default core-model parameters, overridden by meta when carried.
func metaSpec(name string, meta AppMeta, ok bool) workload.Spec {
	spec := workload.Spec{Name: name, APKI: DefaultAPKI, CPIBase: DefaultCPIBase, MLP: DefaultMLP}
	if ok {
		if meta.Name != "" {
			spec.Name = meta.Name
		}
		if meta.APKI > 0 {
			spec.APKI = meta.APKI
		}
		if meta.CPIBase > 0 {
			spec.CPIBase = meta.CPIBase
		}
		if meta.MLP > 0 {
			spec.MLP = meta.MLP
		}
	}
	return spec
}

// HeaderSpecs returns one metadata-only workload.Spec per partition of
// h: the same names and core-model parameters Trace.Specs would yield,
// but with no Build function, so no addresses need loading. Streaming
// replay uses these to label results and scale MPKI while the trace
// itself carries the traffic; instantiating one with workload.NewApp
// panics (there is no pattern to build).
func HeaderSpecs(h Header) []workload.Spec {
	out := make([]workload.Spec, h.NumPartitions)
	for p := range out {
		var meta AppMeta
		ok := false
		if h.Apps != nil && p < len(h.Apps) {
			meta, ok = h.Apps[p], true
		}
		out[p] = metaSpec(fmt.Sprintf("trace-p%d", p), meta, ok)
	}
	return out
}

// specOf builds a workload.Spec replaying addrs, using meta when
// carried.
func specOf(name string, meta AppMeta, ok bool, addrs []uint64) (workload.Spec, error) {
	rp, err := NewReplay(addrs)
	if err != nil {
		return workload.Spec{}, err
	}
	spec := metaSpec(name, meta, ok)
	spec.Build = func() workload.Pattern { return rp.Clone() }
	return spec, nil
}

// AppSpec loads path and returns a workload.Spec replaying its full
// (partition-interleaved) stream — the resolver behind the
// "trace:<path>" workload source. Addresses are recorded in
// per-partition private spaces, so for multi-partition traces each
// partition's addresses are offset into a disjoint subspace before
// merging; flattening raw would alias unrelated apps' lines into
// spurious reuse. The offset lives in bits 56–63 — above the bits
// 48–55 the feeders OR their own per-app offset into (sim.AppSpace)
// and the bits 40–47 Mix/Phased use for component indices — because
// the fields combine by OR: overlapping them would collapse distinct
// partitions ((2|1)<<48 == (3|1)<<48). That field width caps flattened
// replay at 255 partitions; wider traces must go through Specs (one
// app per partition) instead.
func AppSpec(path string) (workload.Spec, error) {
	t, err := Load(path)
	if err != nil {
		return workload.Spec{}, err
	}
	meta, ok := t.Meta(0)
	addrs := t.Flat()
	if t.NumPartitions() != 1 {
		if t.NumPartitions() > 255 {
			return workload.Spec{}, fmt.Errorf("trace: %s: flattened replay supports at most 255 partitions (have %d); use per-partition specs", path, t.NumPartitions())
		}
		ok = false // mixed streams have no single app's parameters
		addrs = make([]uint64, len(t.Records))
		for i, r := range t.Records {
			// The OR only stays collision-free while recorded addresses
			// leave the tag field clear; an address already using bits
			// 56–63 (a re-recorded flattened trace, an external full-
			// 64-bit trace) would alias silently, so reject it.
			if r.Addr >= 1<<56 {
				return workload.Spec{}, fmt.Errorf("trace: %s: record %d address %#x uses bits 56-63, which flattened replay needs for partition tags; use per-partition specs", path, i, r.Addr)
			}
			addrs[i] = r.Addr | uint64(r.P+1)<<56
		}
	}
	spec, err := specOf("trace:"+path, meta, ok, addrs)
	if err != nil {
		return workload.Spec{}, fmt.Errorf("trace: %s: %w", path, err)
	}
	return spec, nil
}

// Specs returns one workload.Spec per partition of t, each replaying
// that partition's recorded sub-stream — the bridge from a recorded
// multi-app trace back into RunMix/RunAdaptive as ordinary workloads.
func (t *Trace) Specs() ([]workload.Spec, error) {
	streams := t.PartitionStreams()
	out := make([]workload.Spec, t.NumPartitions())
	for p := range out {
		meta, ok := t.Meta(p)
		name := fmt.Sprintf("trace-p%d", p)
		spec, err := specOf(name, meta, ok, streams[p])
		if err != nil {
			return nil, fmt.Errorf("trace: partition %d: %w", p, err)
		}
		out[p] = spec
	}
	return out, nil
}

func init() {
	workload.RegisterSource("trace", AppSpec)
}

// --- Legacy flat API (version 1) ----------------------------------------

// Write serializes addrs to w in the flat version-1 format.
func Write(w io.Writer, addrs []uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, Version1); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(addrs))); err != nil {
		return err
	}
	var buf [8]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint64(buf[:], a)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace from r as a flat address stream (either
// version; partition structure is dropped).
func Read(r io.Reader) ([]uint64, error) {
	t, err := ReadAll(r)
	if err != nil {
		return nil, err
	}
	return t.Flat(), nil
}

// WriteFile writes a flat version-1 trace to path.
func WriteFile(path string, addrs []uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, addrs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from path as a flat address stream.
func ReadFile(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Capture collects n addresses from next (a generator's Next method).
func Capture(next func() uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = next()
	}
	return out
}
