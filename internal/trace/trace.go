// Package trace records and replays LLC access streams in a compact
// binary format. Traces serve three purposes: feeding the offline MIN
// simulator (which needs two passes over the same stream), snapshotting
// workload generators for reproducibility, and exchanging streams with
// external tools via the misscurve CLI.
//
// Format (little-endian): 8-byte magic "TALUSTRC", uint32 version,
// uint64 count, then count uint64 line addresses.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Magic identifies trace files.
var Magic = [8]byte{'T', 'A', 'L', 'U', 'S', 'T', 'R', 'C'}

// Version is the current format version.
const Version uint32 = 1

// Errors returned by the reader.
var (
	ErrBadMagic   = errors.New("trace: bad magic")
	ErrBadVersion = errors.New("trace: unsupported version")
)

// Write serializes addrs to w.
func Write(w io.Writer, addrs []uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(Magic[:]); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, Version); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint64(len(addrs))); err != nil {
		return err
	}
	var buf [8]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint64(buf[:], a)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a trace from r.
func Read(r io.Reader) ([]uint64, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != Magic {
		return nil, ErrBadMagic
	}
	var version uint32
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != Version {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, version)
	}
	var count uint64
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	const maxCount = 1 << 32 // sanity bound: 32 GB of addresses
	if count > maxCount {
		return nil, fmt.Errorf("trace: implausible count %d", count)
	}
	addrs := make([]uint64, count)
	var buf [8]byte
	for i := range addrs {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, err
		}
		addrs[i] = binary.LittleEndian.Uint64(buf[:])
	}
	return addrs, nil
}

// WriteFile writes a trace to path.
func WriteFile(path string, addrs []uint64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, addrs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadFile reads a trace from path.
func ReadFile(path string) ([]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Record captures n addresses from next (a generator's Next method).
func Record(next func() uint64, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = next()
	}
	return out
}
