package trace

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const champSimFixture = "testdata/champsim_small.trace"

// champSimOperands extracts the expected line-address stream from a raw
// ChampSim trace the slow, obvious way — an independent reference for
// the streaming importer.
func champSimOperands(t *testing.T, raw []byte) []uint64 {
	t.Helper()
	if len(raw)%champSimRecordSize != 0 {
		t.Fatalf("fixture length %d is not a multiple of %d", len(raw), champSimRecordSize)
	}
	var want []uint64
	for off := 0; off < len(raw); off += champSimRecordSize {
		rec := raw[off : off+champSimRecordSize]
		for j := 0; j < 4; j++ {
			if a := binary.LittleEndian.Uint64(rec[champSimSrcOff+8*j:]); a != 0 {
				want = append(want, a>>champSimLineShift)
			}
		}
		for j := 0; j < 2; j++ {
			if a := binary.LittleEndian.Uint64(rec[champSimDestOff+8*j:]); a != 0 {
				want = append(want, a>>champSimLineShift)
			}
		}
	}
	return want
}

func TestImportChampSim(t *testing.T) {
	raw, err := os.ReadFile(champSimFixture)
	if err != nil {
		t.Fatal(err)
	}
	want := champSimOperands(t, raw)
	if len(want) == 0 {
		t.Fatal("fixture has no memory operands")
	}

	var out bytes.Buffer
	w, err := NewWriter(&out, 1)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ImportChampSim(bytes.NewReader(raw), w)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("imported %d records, reference extraction says %d", n, len(want))
	}
	got, err := ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumPartitions() != 1 {
		t.Fatalf("champsim import produced %d partitions, want 1", got.NumPartitions())
	}
	flat := got.Flat()
	if len(flat) != len(want) {
		t.Fatalf("trace has %d records, want %d", len(flat), len(want))
	}
	for i := range flat {
		if flat[i] != want[i] {
			t.Fatalf("record %d: got line %#x, want %#x", i, flat[i], want[i])
		}
	}
}

// TestImportChampSimByteIdentical is the acceptance criterion: importing
// the committed fixture is deterministic (two imports produce identical
// bytes), and the produced trace re-encodes byte-identically through a
// read → WriteRecords round trip.
func TestImportChampSimByteIdentical(t *testing.T) {
	raw, err := os.ReadFile(champSimFixture)
	if err != nil {
		t.Fatal(err)
	}
	encode := func() []byte {
		var out bytes.Buffer
		w, err := NewWriter(&out, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := ImportChampSim(bytes.NewReader(raw), w); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	a, b := encode(), encode()
	if !bytes.Equal(a, b) {
		t.Fatal("two imports of the same fixture produced different bytes")
	}
	loaded, err := ReadAll(bytes.NewReader(a))
	if err != nil {
		t.Fatal(err)
	}
	var re bytes.Buffer
	if err := WriteRecords(&re, loaded.NumPartitions(), loaded.Records); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, re.Bytes()) {
		t.Fatalf("re-encode is not byte-identical: %d vs %d bytes", len(a), re.Len())
	}
}

func TestImportChampSimTruncated(t *testing.T) {
	raw, err := os.ReadFile(champSimFixture)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	w, err := NewWriter(&out, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ImportChampSim(bytes.NewReader(raw[:len(raw)-17]), w); err == nil {
		t.Fatal("truncated champsim trace imported without error")
	}
}

func TestParseText(t *testing.T) {
	in := `
# comment, then a blank line

42
0x1000, 1
  7 , 0
0xdeadbeef,3
`
	recs, parts, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if parts != 4 {
		t.Fatalf("partitions %d, want 4", parts)
	}
	want := []Record{{0, 42}, {1, 0x1000}, {0, 7}, {3, 0xdeadbeef}}
	if len(recs) != len(want) {
		t.Fatalf("%d records, want %d", len(recs), len(want))
	}
	for i := range recs {
		if recs[i] != want[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, recs[i], want[i])
		}
	}

	// The parsed records must round-trip through the v2 format.
	var out bytes.Buffer
	if err := WriteRecords(&out, parts, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAll(bytes.NewReader(out.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range back.Records {
		if r != want[i] {
			t.Fatalf("round-tripped record %d: got %+v, want %+v", i, r, want[i])
		}
	}

	for _, bad := range []string{"zzz", "12,x", "12,-1", "12,70000", "0x,3"} {
		if _, _, err := ParseText(strings.NewReader(bad)); err == nil {
			t.Fatalf("ParseText(%q) accepted", bad)
		}
	}
}

func FuzzImportChampSim(f *testing.F) {
	raw, err := os.ReadFile(filepath.FromSlash(champSimFixture))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:champSimRecordSize])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0}, champSimRecordSize))
	f.Add(bytes.Repeat([]byte{0xFF}, 3*champSimRecordSize))
	f.Fuzz(func(t *testing.T, data []byte) {
		var out bytes.Buffer
		w, err := NewWriter(&out, 1)
		if err != nil {
			t.Fatal(err)
		}
		n, err := ImportChampSim(bytes.NewReader(data), w)
		if len(data)%champSimRecordSize == 0 && err != nil {
			t.Fatalf("whole-record input rejected: %v", err)
		}
		if len(data)%champSimRecordSize != 0 && err == nil {
			t.Fatal("partial trailing record accepted")
		}
		if err != nil {
			return
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		// Whatever was imported must read back as a valid trace with
		// exactly the appended record count and no zero line addresses
		// from zero operands.
		got, err := ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("imported trace does not read back: %v", err)
		}
		if int64(len(got.Records)) != n {
			t.Fatalf("trace has %d records, importer reported %d", len(got.Records), n)
		}
		want := 0
		for off := 0; off+champSimRecordSize <= len(data); off += champSimRecordSize {
			for j := 0; j < 6; j++ {
				if binary.LittleEndian.Uint64(data[off+champSimDestOff+8*j:]) != 0 {
					want++
				}
			}
		}
		if int(n) != want {
			t.Fatalf("imported %d operands, input contains %d", n, want)
		}
	})
}

func FuzzParseText(f *testing.F) {
	f.Add("42\n0x10,1\n# c\n")
	f.Add("")
	f.Add("9,65535")
	f.Fuzz(func(t *testing.T, s string) {
		recs, parts, err := ParseText(strings.NewReader(s))
		if err != nil {
			return
		}
		if parts < 1 || parts > maxPartitions {
			t.Fatalf("partition count %d out of range", parts)
		}
		for i, r := range recs {
			if r.P < 0 || r.P >= parts {
				t.Fatalf("record %d partition %d outside [0,%d)", i, r.P, parts)
			}
		}
		// Accepted input must be writable and round-trip exactly.
		var out bytes.Buffer
		if err := WriteRecords(&out, parts, recs); err != nil {
			t.Fatal(err)
		}
		back, err := ReadAll(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(back.Records) != len(recs) {
			t.Fatalf("round trip: %d records, want %d", len(back.Records), len(recs))
		}
		for i := range recs {
			if back.Records[i] != recs[i] {
				t.Fatalf("round trip record %d: %+v != %+v", i, back.Records[i], recs[i])
			}
		}
	})
}
