package trace

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzTraceRoundTrip drives the encoder/decoder pair two ways: encode a
// record stream synthesized from the fuzz input and require a lossless
// round trip, and feed the raw input straight to the reader, which must
// reject or truncate it with an error — never panic or fabricate
// records.
func FuzzTraceRoundTrip(f *testing.F) {
	f.Add([]byte{}, uint8(1), false)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(3), true)
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint8(255), false)
	seed := writeV2FuzzSeed()
	f.Add(seed, uint8(2), true)

	f.Fuzz(func(t *testing.T, data []byte, np uint8, gz bool) {
		// Arm 1: decoder robustness on arbitrary bytes.
		if tr, err := ReadAll(bytes.NewReader(data)); err == nil {
			// Whatever parsed must re-encode and re-parse identically.
			var buf bytes.Buffer
			n := tr.NumPartitions()
			w, werr := NewWriter(&buf, n)
			if werr != nil {
				t.Fatalf("re-encode writer: %v", werr)
			}
			for _, r := range tr.Records {
				if err := w.Append(r.P, r.Addr); err != nil {
					t.Fatalf("re-encode append: %v", err)
				}
			}
			if err := w.Close(); err != nil {
				t.Fatalf("re-encode close: %v", err)
			}
			tr2, err := ReadAll(&buf)
			if err != nil {
				t.Fatalf("re-decode: %v", err)
			}
			if len(tr2.Records) != len(tr.Records) {
				t.Fatalf("re-decode records %d, want %d", len(tr2.Records), len(tr.Records))
			}
			for i := range tr.Records {
				if tr.Records[i] != tr2.Records[i] {
					t.Fatalf("re-decode record %d = %+v, want %+v", i, tr2.Records[i], tr.Records[i])
				}
			}
		}

		// Arm 2: synthesize records from the input and round-trip them.
		numPartitions := int(np)%8 + 1
		var recs []Record
		for i := 0; i+9 <= len(data) && len(recs) < 4096; i += 9 {
			recs = append(recs, Record{
				P:    int(data[i]) % numPartitions,
				Addr: binary.LittleEndian.Uint64(data[i+1 : i+9]),
			})
		}
		var opts []WriterOption
		if gz {
			opts = append(opts, WithGzip())
		}
		var buf bytes.Buffer
		w, err := NewWriter(&buf, numPartitions, opts...)
		if err != nil {
			t.Fatalf("writer: %v", err)
		}
		for _, r := range recs {
			if err := w.Append(r.P, r.Addr); err != nil {
				t.Fatalf("append: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
		tr, err := ReadAll(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("decode own encoding: %v", err)
		}
		if tr.NumPartitions() != numPartitions {
			t.Fatalf("partitions %d, want %d", tr.NumPartitions(), numPartitions)
		}
		if len(tr.Records) != len(recs) {
			t.Fatalf("records %d, want %d", len(tr.Records), len(recs))
		}
		for i := range recs {
			if tr.Records[i] != recs[i] {
				t.Fatalf("record %d = %+v, want %+v", i, tr.Records[i], recs[i])
			}
		}

		// A truncated encoding must error, not parse short (only
		// meaningful when at least one record is present to chop).
		if len(recs) > 0 {
			raw := buf.Bytes()
			if short, err := ReadAll(bytes.NewReader(raw[:len(raw)-1])); err == nil && len(short.Records) >= len(recs) {
				t.Fatal("truncated trace parsed all records")
			}
		}
	})
}

// writeV2FuzzSeed builds one valid v2 trace as a corpus seed for the
// decoder-robustness arm.
func writeV2FuzzSeed() []byte {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 2)
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 16; i++ {
		if err := w.Append(int(i%2), i*64); err != nil {
			panic(err)
		}
	}
	if err := w.Close(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}
