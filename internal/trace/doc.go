// Package trace records and replays LLC access streams in a compact
// binary format. Traces serve four purposes: feeding the offline MIN
// simulator (which needs two passes over the same stream), snapshotting
// workload generators for reproducibility, exchanging streams with
// external tools, and — the main one — driving the adaptive runtime
// (sim.RunAdaptiveTrace) and the multi-programmed simulator from
// recorded rather than synthetic streams. Because Talus is blind to
// individual lines and driven only by the miss curve (paper §III), any
// recorded stream realizing a curve exercises Talus faithfully, so a
// trace replayed at the same batching is bit-for-bit equivalent to the
// live generator run it captured.
//
// # Format
//
// All integers are little-endian. Every trace starts with an 8-byte
// magic "TALUSTRC" and a uint32 version.
//
// Version 1 (legacy, flat): uint64 count, then count uint64 line
// addresses. Written by Write/WriteFile; still read transparently.
//
// Version 2 (partitioned): a uint32 flags word follows the version.
// If FlagGzip is set, everything after the flags word is a gzip
// stream. The (possibly compressed) body is:
//
//	uvarint numPartitions
//	if FlagMeta: per partition — uvarint name length, name bytes,
//	    three float64s (APKI, CPIBase, MLP)
//	records until EOF: uvarint partition id, zigzag-varint address
//	    delta against the partition's previous address
//
// Delta encoding makes sequential scans cost one byte per record and
// keeps random streams near their entropy; gzip then squeezes the
// pattern structure (a recorded scan compresses ~100×).
package trace
