package loadgen_test

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"

	"talus/internal/adaptive"
	"talus/internal/cluster"
	"talus/internal/loadgen"
	"talus/internal/serve"
	"talus/internal/sim"
	"talus/internal/store"
	"talus/internal/workload"
)

// startNodes brings up n proxying serving nodes of lines capacity each
// (n = 1 starts a plain single node) and returns their addresses.
func startNodes(t *testing.T, n int, lines int64) []string {
	t.Helper()
	servers := make([]*httptest.Server, n)
	nodes := make([]string, n)
	for i := range servers {
		servers[i] = httptest.NewUnstartedServer(nil)
		nodes[i] = servers[i].Listener.Addr().String()
	}
	for i, srv := range servers {
		var cl *cluster.Cluster
		if n > 1 {
			var err error
			cl, err = cluster.New(cluster.Config{Self: nodes[i], Nodes: nodes, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
		}
		ac, err := sim.BuildAdaptiveCache("vantage", lines, 16, 1, 2, "LRU", 0.05,
			adaptive.Config{EpochAccesses: 1 << 20, Seed: 33})
		if err != nil {
			t.Fatal(err)
		}
		st, err := store.New(ac, store.Config{NodeID: nodes[i]})
		if err != nil {
			t.Fatal(err)
		}
		srv.Config.Handler = serve.NewHandler(st, serve.Config{Cluster: cl})
		srv.Start()
		t.Cleanup(func() {
			srv.Close()
			st.Close()
		})
	}
	return nodes
}

// drive runs one deterministic zipf workload against nodes and returns
// the report.
func drive(t *testing.T, nodes []string) *loadgen.Report {
	t.Helper()
	r, err := loadgen.New(loadgen.Config{
		Nodes:       nodes,
		Tenant:      "bench",
		Keys:        6000,
		ValueBytes:  64,
		Pattern:     workload.NewZipf(6000, 0.9),
		Workers:     4,
		MaxRequests: 6000,
		SetFraction: 0.25,
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 6000 || rep.Errors != 0 {
		t.Fatalf("run degenerate: %d requests, %d errors", rep.Requests, rep.Errors)
	}
	return rep
}

// TestClusterVsSingleHitRatio is the acceptance experiment from the
// issue, inlined as a test: the same zipf workload driven at a 3-node
// cluster (N lines per node) and at one node of 3N lines must land
// within 10% relative hit ratio. Consistent hashing splits the key
// population into three independent streams, and hash-partitioned LRU
// tracks global LRU closely under an independent-reference workload —
// this pins that the cluster tier actually delivers that, proxy hop,
// ring, and all.
func TestClusterVsSingleHitRatio(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-thousand-request e2e")
	}
	const perNode = 2048
	clusterNodes := startNodes(t, 3, perNode)
	singleNode := startNodes(t, 1, 3*perNode)

	clustered := drive(t, clusterNodes)
	single := drive(t, singleNode)

	if clustered.HitRatio <= 0 || single.HitRatio <= 0 {
		t.Fatalf("degenerate hit ratios: cluster %v, single %v", clustered.HitRatio, single.HitRatio)
	}
	rel := math.Abs(clustered.HitRatio-single.HitRatio) / single.HitRatio
	t.Logf("hit ratio: 3-node %.4f vs single(3x) %.4f (relative diff %.3f)",
		clustered.HitRatio, single.HitRatio, rel)
	if rel > 0.10 {
		t.Fatalf("3-node hit ratio %.4f vs single-node-at-3x %.4f: relative diff %.3f > 0.10",
			clustered.HitRatio, single.HitRatio, rel)
	}

	// Every node served traffic, and traffic went through the ring: the
	// per-node split should be near the analytic shares (loose bound —
	// zipf weight concentrates on few keys).
	if len(clustered.PerNode) != 3 {
		t.Fatalf("per-node attribution %v, want all 3 nodes", clustered.PerNode)
	}
	for n, c := range clustered.PerNode {
		if frac := float64(c) / float64(clustered.Requests); frac < 0.05 || frac > 0.75 {
			t.Fatalf("node %s served %.2f of traffic — ring badly skewed: %v", n, frac, clustered.PerNode)
		}
	}
	// Latency histograms populated on both sides.
	for _, rep := range []*loadgen.Report{clustered, single} {
		if rep.Latency.P50 == 0 || rep.Latency.P999 == 0 {
			t.Fatalf("empty latency: %+v", rep.Latency)
		}
	}
}
