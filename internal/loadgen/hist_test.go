package loadgen

import (
	"math/bits"
	"testing"
)

// TestBucketMonotone pins that the bucket index never decreases with
// the value and stays inside the fixed array, over the full 64-bit
// range (powers of two and their neighbours are the corner cases).
func TestBucketMonotone(t *testing.T) {
	prev := -1
	probe := func(v uint64) {
		i := bucketOf(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketOf(%d) = %d outside [0, %d)", v, i, histBuckets)
		}
		if i < prev {
			t.Fatalf("bucketOf(%d) = %d < previous bucket %d", v, i, prev)
		}
		prev = i
	}
	for v := uint64(0); v < 4096; v++ {
		probe(v)
	}
	for shift := uint(12); shift < 64; shift++ {
		prev = -1 // separate sweeps; only within-sweep order matters
		probe(1<<shift - 1)
		probe(1 << shift)
		probe(1<<shift + 1)
	}
	if bucketOf(^uint64(0)) >= histBuckets {
		t.Fatal("max uint64 overflows the bucket array")
	}
}

// TestBucketValueError pins the log-linear precision contract: the
// representative value of any value's bucket is within 1/32 (~3%)
// relative error.
func TestBucketValueError(t *testing.T) {
	for shift := uint(0); shift < 63; shift++ {
		for _, v := range []uint64{1 << shift, 1<<shift + 1<<shift/3, 1<<(shift+1) - 1} {
			got := bucketValue(bucketOf(v))
			diff := int64(got - v)
			if diff < 0 {
				diff = -diff
			}
			if limit := int64(v>>histSubBits) + 1; diff > limit {
				t.Fatalf("bucketValue(bucketOf(%d)) = %d, off by %d > %d", v, got, diff, limit)
			}
		}
	}
}

// TestHistQuantiles pins quantiles on a known distribution.
func TestHistQuantiles(t *testing.T) {
	var h Hist
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Count() != 0 {
		t.Fatal("empty histogram not zero-valued")
	}
	// 1..1000: exact below 32, ~3% above.
	for v := uint64(1); v <= 1000; v++ {
		h.Record(v)
	}
	if h.Count() != 1000 || h.Max() != 1000 {
		t.Fatalf("count %d max %d", h.Count(), h.Max())
	}
	checks := []struct {
		q    float64
		want uint64
	}{{0.5, 500}, {0.9, 900}, {0.99, 990}, {0.999, 999}, {1.0, 1000}}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := c.want - c.want>>4 // 6% tolerance: bucket width + rank rounding
		hi := c.want + c.want>>4
		if got < lo || got > hi {
			t.Fatalf("q%.3f = %d, want within [%d, %d]", c.q, got, lo, hi)
		}
	}
	if m := h.Mean(); m < 500 || m > 501 {
		t.Fatalf("mean = %v, want 500.5", m)
	}

	// Merge doubles every count and keeps the max.
	var m Hist
	m.Record(5000)
	m.Merge(&h)
	if m.Count() != 1001 || m.Max() != 5000 {
		t.Fatalf("merged count %d max %d", m.Count(), m.Max())
	}
	if got := m.Quantile(1.0); got != 5000 {
		t.Fatalf("merged p100 = %d, want the exact max 5000", got)
	}
}

// TestHistNoFloatHotPath is a compile-level reminder more than a test:
// Record's work is integer-only. It also exercises the extremes.
func TestHistExtremes(t *testing.T) {
	var h Hist
	h.Record(0)
	h.Record(^uint64(0))
	if h.Count() != 2 || h.Max() != ^uint64(0) {
		t.Fatalf("count %d max %d", h.Count(), h.Max())
	}
	if got := h.Quantile(1.0); got != ^uint64(0) {
		t.Fatalf("p100 = %d", got)
	}
	if got := h.Quantile(0.25); got != 0 {
		t.Fatalf("p25 = %d, want 0", got)
	}
	_ = bits.Len64 // the histogram's only arithmetic dependency
}
