// Package loadgen is a closed-loop HTTP load harness for the talus
// serving tier. A fixed pool of workers issues cache GETs and PUTs
// against one or more nodes, paced to an aggregate target RPS (or
// flat-out when unpaced), with key popularity drawn from the same
// internal/workload patterns the simulator uses — so a zipf curve that
// produces a cliff in simulation produces the same reference stream
// against a live cluster.
//
// Closed-loop means each worker waits for its previous response before
// issuing the next request: concurrency is bounded by the worker count,
// and when the server slows down the offered load drops instead of
// piling up an unbounded backlog. Pacing deadlines that fall more than
// one period behind are snapped forward — the harness measures the
// server, not a queue of its own making.
//
// Latency is captured per worker in integer-microsecond HDR-style
// histograms (hist.go) and merged after the run: the hot path performs
// no locking, no allocation, and no floating-point work.
package loadgen

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"talus/internal/hash"
	"talus/internal/workload"
)

// DefaultWorkers is the worker-pool size when the caller does not
// choose one: enough concurrency to saturate a small cluster without
// swamping the client host.
const DefaultWorkers = 8

// Config parameterizes a load run.
type Config struct {
	// Nodes are the target servers as host:port, dialed round-robin per
	// worker. With a proxying cluster any node accepts any key.
	Nodes []string
	// Tenant is the cache tenant all requests address.
	Tenant string
	// Keys is the distinct-key population; pattern addresses are folded
	// into [0, Keys).
	Keys int64
	// ValueBytes sizes PUT bodies.
	ValueBytes int
	// Pattern draws key popularity (nil = uniform over Keys). Each
	// worker runs an independent Clone with its own RNG.
	Pattern workload.Pattern
	// RPS is the aggregate pacing target across workers; 0 runs
	// flat-out (each worker issues back-to-back).
	RPS float64
	// Workers is the closed-loop concurrency (0 = DefaultWorkers).
	Workers int
	// Duration bounds the run in wall time (0 = until MaxRequests).
	Duration time.Duration
	// MaxRequests bounds the run in requests (0 = until Duration).
	// At least one bound must be set.
	MaxRequests int64
	// SetFraction is the probability a request is a PUT (the rest are
	// GETs). 0.1 means a 90/10 read/write mix.
	SetFraction float64
	// TTLSeconds, when positive, stamps X-Talus-TTL on every PUT.
	TTLSeconds int
	// Seed makes key choice and read/write choice deterministic.
	Seed uint64
	// Client overrides the HTTP client (tests); nil builds a pooled
	// transport sized to the worker count.
	Client *http.Client
}

// Report is one run's result, shaped for BENCH_cluster.json.
type Report struct {
	Nodes       []string `json:"nodes"`
	Tenant      string   `json:"tenant"`
	Workers     int      `json:"workers"`
	TargetRPS   float64  `json:"target_rps,omitempty"`
	Seconds     float64  `json:"seconds"`
	Requests    int64    `json:"requests"`
	Errors      int64    `json:"errors"`
	Gets        int64    `json:"gets"`
	Sets        int64    `json:"sets"`
	Hits        int64    `json:"hits"`
	Misses      int64    `json:"misses"`
	HitRatio    float64  `json:"hit_ratio"`
	AchievedRPS float64  `json:"achieved_rps"`
	Latency     Latency  `json:"latency_us"`
	// PerNode counts responses by the X-Talus-Node that answered them —
	// with a proxying cluster this is the owner, not the entry node, so
	// it doubles as a live check of ring balance.
	PerNode map[string]int64 `json:"per_node,omitempty"`
	// StatusClasses counts responses by status class ("2xx", "4xx", ...).
	StatusClasses map[string]int64 `json:"status_classes"`
}

// Latency is the merged latency distribution in microseconds.
type Latency struct {
	P50  uint64  `json:"p50"`
	P90  uint64  `json:"p90"`
	P99  uint64  `json:"p99"`
	P999 uint64  `json:"p999"`
	Max  uint64  `json:"max"`
	Mean float64 `json:"mean"`
}

// worker is one closed-loop issuer's private state; nothing here is
// shared until the final merge.
type worker struct {
	hist     Hist
	requests int64
	errors   int64
	gets     int64
	sets     int64
	hits     int64
	misses   int64
	perNode  map[string]int64
	statuses [6]int64 // index status/100; 0 = transport error
}

// Runner executes load runs for one Config.
type Runner struct {
	cfg    Config
	client *http.Client
}

// New validates cfg and builds a runner.
func New(cfg Config) (*Runner, error) {
	if len(cfg.Nodes) == 0 {
		return nil, errors.New("loadgen: no target nodes")
	}
	if cfg.Tenant == "" {
		return nil, errors.New("loadgen: empty tenant")
	}
	if cfg.Keys < 1 {
		return nil, fmt.Errorf("loadgen: %d keys; need at least 1", cfg.Keys)
	}
	if cfg.Duration <= 0 && cfg.MaxRequests <= 0 {
		return nil, errors.New("loadgen: need a duration or a request bound")
	}
	if cfg.SetFraction < 0 || cfg.SetFraction > 1 {
		return nil, fmt.Errorf("loadgen: set fraction %g outside [0, 1]", cfg.SetFraction)
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.ValueBytes <= 0 {
		cfg.ValueBytes = 64
	}
	if cfg.Pattern == nil {
		cfg.Pattern = &workload.Rand{Lines: cfg.Keys}
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 10 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        cfg.Workers * len(cfg.Nodes),
				MaxIdleConnsPerHost: cfg.Workers,
			},
		}
	}
	return &Runner{cfg: cfg, client: client}, nil
}

// Run drives the configured load until the duration elapses, the
// request bound is hit, or ctx is cancelled — whichever comes first —
// and returns the merged report.
func (r *Runner) Run(ctx context.Context) (*Report, error) {
	cfg := r.cfg
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}

	// One period per worker: W workers each pacing at RPS/W sums to the
	// aggregate target without any cross-worker coordination.
	var period time.Duration
	if cfg.RPS > 0 {
		period = time.Duration(float64(cfg.Workers) / cfg.RPS * float64(time.Second))
	}
	// Read/write choice compares the RNG's top 32 bits against an
	// integer threshold: no floats per request.
	setThresh := uint64(cfg.SetFraction * float64(1<<32))

	value := make([]byte, cfg.ValueBytes)
	for i := range value {
		value[i] = byte('a' + i%26)
	}

	var issued atomic.Int64 // global request budget when MaxRequests > 0
	workers := make([]*worker, cfg.Workers)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range workers {
		w := &worker{perNode: make(map[string]int64)}
		workers[i] = w
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := hash.NewSplitMix64(cfg.Seed + uint64(id)*0x9E3779B97F4A7C15 + 1)
			pattern := cfg.Pattern.Clone()
			next := time.Now()
			for seq := 0; ; seq++ {
				if ctx.Err() != nil {
					return
				}
				if cfg.MaxRequests > 0 && issued.Add(1) > cfg.MaxRequests {
					return
				}
				if period > 0 {
					now := time.Now()
					if wait := next.Sub(now); wait > 0 {
						select {
						case <-time.After(wait):
						case <-ctx.Done():
							return
						}
					} else if -wait > period {
						// More than one period behind: the server (or host)
						// is slower than the target. Snap forward instead of
						// replaying the backlog as a burst.
						next = now
					}
					next = next.Add(period)
				}
				key := fmt.Sprintf("k%08d", pattern.Next(rng)%uint64(cfg.Keys))
				node := cfg.Nodes[(id+seq)%len(cfg.Nodes)]
				r.issue(ctx, w, rng, node, key, value, setThresh, cfg.TTLSeconds)
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Nodes:         cfg.Nodes,
		Tenant:        cfg.Tenant,
		Workers:       cfg.Workers,
		TargetRPS:     cfg.RPS,
		Seconds:       elapsed.Seconds(),
		PerNode:       make(map[string]int64),
		StatusClasses: make(map[string]int64),
	}
	var hist Hist
	for _, w := range workers {
		hist.Merge(&w.hist)
		rep.Requests += w.requests
		rep.Errors += w.errors
		rep.Gets += w.gets
		rep.Sets += w.sets
		rep.Hits += w.hits
		rep.Misses += w.misses
		for n, c := range w.perNode {
			rep.PerNode[n] += c
		}
		for class, c := range w.statuses {
			if c == 0 {
				continue
			}
			name := "error"
			if class > 0 {
				name = fmt.Sprintf("%dxx", class)
			}
			rep.StatusClasses[name] += c
		}
	}
	if acc := rep.Hits + rep.Misses; acc > 0 {
		rep.HitRatio = float64(rep.Hits) / float64(acc)
	}
	if s := elapsed.Seconds(); s > 0 {
		rep.AchievedRPS = float64(rep.Requests) / s
	}
	rep.Latency = Latency{
		P50:  hist.Quantile(0.50),
		P90:  hist.Quantile(0.90),
		P99:  hist.Quantile(0.99),
		P999: hist.Quantile(0.999),
		Max:  hist.Max(),
		Mean: hist.Mean(),
	}
	return rep, nil
}

// issue sends one request and folds the outcome into w.
func (r *Runner) issue(ctx context.Context, w *worker, rng *hash.SplitMix64, node, key string, value []byte, setThresh uint64, ttl int) {
	url := "http://" + node + "/v1/cache/" + r.cfg.Tenant + "/" + key
	isSet := rng.Next()>>32 < setThresh
	var req *http.Request
	var err error
	if isSet {
		req, err = http.NewRequestWithContext(ctx, http.MethodPut, url, bytes.NewReader(value))
		if err == nil && ttl > 0 {
			req.Header.Set("X-Talus-TTL", fmt.Sprint(ttl))
		}
		w.sets++
	} else {
		req, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		w.gets++
	}
	if err != nil {
		w.errors++
		return
	}
	begin := time.Now()
	resp, err := r.client.Do(req)
	if err != nil {
		// A cancelled context at the deadline is the run ending, not a
		// server failure.
		if ctx.Err() == nil {
			w.requests++
			w.errors++
			w.statuses[0]++
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	w.hist.Record(uint64(time.Since(begin) / time.Microsecond))
	w.requests++
	w.statuses[resp.StatusCode/100%6]++
	if resp.StatusCode >= 500 {
		w.errors++
	}
	switch resp.Header.Get("X-Talus-Cache") {
	case "hit":
		w.hits++
	case "miss":
		w.misses++
	}
	if n := resp.Header.Get("X-Talus-Node"); n != "" {
		w.perNode[n]++
	}
}
