package loadgen

import "math/bits"

// The histogram is HDR-style: fixed integer buckets, exact below 2^5
// and log-linear above — each power-of-two range splits into 32
// sub-buckets, bounding relative quantile error at ~3% while Record
// stays a shift, a subtract, and an array increment. No floats and no
// allocation on the recording path: each load worker owns one Hist and
// the runner merges them after the clock stops, so latency capture
// never contends or distorts the latencies it measures.

const (
	histSubBits = 5                // 32 sub-buckets per power of two
	histSub     = 1 << histSubBits // 32
	// 64-bit values reach exponent 58 (bits.Len64 up to 64), so the
	// bucket space is (58+1)*32 + 32 exact low buckets rounded up.
	histBuckets = 1920
)

// Hist is a fixed-size log-linear latency histogram. Values are
// dimensionless uint64s; the load generator records microseconds. Not
// safe for concurrent use — one per worker, merged at the end.
type Hist struct {
	counts [histBuckets]uint64
	count  uint64
	sum    uint64
	max    uint64
}

// bucketOf maps a value to its bucket index, monotone in v.
func bucketOf(v uint64) int {
	if v < histSub {
		return int(v)
	}
	exp := uint(bits.Len64(v)) - histSubBits - 1
	return int(exp)<<histSubBits + int(v>>exp)
}

// bucketValue returns the midpoint of bucket i's value range, the
// representative reported for quantiles landing in it.
func bucketValue(i int) uint64 {
	if i < histSub {
		return uint64(i)
	}
	exp := uint(i)>>histSubBits - 1
	m := uint64(i) - uint64(exp)<<histSubBits
	return m<<exp + 1<<exp>>1
}

// Record adds one observation.
func (h *Hist) Record(v uint64) {
	h.counts[bucketOf(v)]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.count += other.count
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.count }

// Max returns the largest recorded value (exact, not bucketed).
func (h *Hist) Max() uint64 { return h.max }

// Mean returns the exact mean of recorded values (0 when empty).
func (h *Hist) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns the value at quantile q in [0, 1]: the
// representative of the bucket holding the ceil(q·count)-th smallest
// observation, clamped to the exact maximum. Returns 0 when empty.
func (h *Hist) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(q * float64(h.count))
	if rank < 1 {
		rank = 1
	}
	if rank >= h.count {
		// The top rank is the largest observation, tracked exactly.
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if v := bucketValue(i); v < h.max {
				return v
			}
			return h.max
		}
	}
	return h.max
}
