package loadgen_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"talus/internal/adaptive"
	"talus/internal/loadgen"
	"talus/internal/serve"
	"talus/internal/sim"
	"talus/internal/store"
	"talus/internal/workload"
)

// newNode starts one serving node and returns its host:port.
func newNode(t *testing.T) string {
	t.Helper()
	ac, err := sim.BuildAdaptiveCache("vantage", 4096, 16, 1, 2, "LRU", 0.05,
		adaptive.Config{EpochAccesses: 1 << 14, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(ac, store.Config{NodeID: "load-node"})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(serve.NewHandler(st, serve.Config{}))
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestRunnerValidation(t *testing.T) {
	bad := []loadgen.Config{
		{},
		{Nodes: []string{"x:1"}, Tenant: "a", Keys: 10},                                   // no bound
		{Nodes: []string{"x:1"}, Tenant: "a", Keys: 0, MaxRequests: 1},                    // no keys
		{Nodes: []string{"x:1"}, Tenant: "", Keys: 10, MaxRequests: 1},                    // no tenant
		{Nodes: []string{"x:1"}, Tenant: "a", Keys: 10, MaxRequests: 1, SetFraction: 1.5}, // bad mix
	}
	for i, cfg := range bad {
		if _, err := loadgen.New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}

// TestClosedLoopRun drives a real node and pins the report's
// self-consistency: request accounting adds up, the hit ratio comes
// from the response headers, latency quantiles are populated and
// ordered, and per-node attribution names the serving node.
func TestClosedLoopRun(t *testing.T) {
	node := newNode(t)
	r, err := loadgen.New(loadgen.Config{
		Nodes:       []string{node},
		Tenant:      "bench",
		Keys:        50,
		ValueBytes:  128,
		Pattern:     workload.NewZipf(50, 0.9),
		Workers:     4,
		MaxRequests: 400,
		SetFraction: 0.3,
		Seed:        7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 400 {
		t.Fatalf("requests = %d, want 400", rep.Requests)
	}
	if rep.Gets+rep.Sets != rep.Requests {
		t.Fatalf("gets %d + sets %d != requests %d", rep.Gets, rep.Sets, rep.Requests)
	}
	if rep.Sets == 0 || rep.Gets == 0 {
		t.Fatalf("mix degenerate: %d gets, %d sets", rep.Gets, rep.Sets)
	}
	if rep.Errors != 0 {
		t.Fatalf("errors = %d", rep.Errors)
	}
	if rep.Hits+rep.Misses == 0 || rep.HitRatio <= 0 {
		t.Fatalf("hit accounting empty: %d hits, %d misses, ratio %v", rep.Hits, rep.Misses, rep.HitRatio)
	}
	lat := rep.Latency
	if lat.P50 == 0 || lat.P99 == 0 || lat.P999 == 0 {
		t.Fatalf("zero quantiles: %+v", lat)
	}
	if lat.P50 > lat.P99 || lat.P99 > lat.P999 || lat.P999 > lat.Max {
		t.Fatalf("quantiles out of order: %+v", lat)
	}
	if rep.PerNode["load-node"] != rep.Requests {
		t.Fatalf("per-node attribution = %v, want all %d on load-node", rep.PerNode, rep.Requests)
	}
	if rep.StatusClasses["2xx"]+rep.StatusClasses["4xx"] != rep.Requests {
		t.Fatalf("status classes %v do not cover %d requests", rep.StatusClasses, rep.Requests)
	}
	if rep.AchievedRPS <= 0 || rep.Seconds <= 0 {
		t.Fatalf("rates empty: %+v", rep)
	}
}

// TestPacing pins that the closed loop honours a target RPS: 200
// requests at 2000 RPS cannot finish materially faster than 100ms.
func TestPacing(t *testing.T) {
	node := newNode(t)
	r, err := loadgen.New(loadgen.Config{
		Nodes:       []string{node},
		Tenant:      "paced",
		Keys:        10,
		Workers:     4,
		RPS:         2000,
		MaxRequests: 200,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("200 requests at 2000 RPS finished in %v; pacing is off", elapsed)
	}
	if rep.TargetRPS != 2000 || rep.AchievedRPS > 3000 {
		t.Fatalf("rps accounting: %+v", rep)
	}
}

// TestDurationBound pins the wall-clock stop condition.
func TestDurationBound(t *testing.T) {
	node := newNode(t)
	r, err := loadgen.New(loadgen.Config{
		Nodes:    []string{node},
		Tenant:   "timed",
		Keys:     10,
		Workers:  2,
		Duration: 150 * time.Millisecond,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("150ms run took %v", elapsed)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests issued inside the duration")
	}
	// The deadline kills in-flight requests; those must not count as
	// server errors.
	if rep.Errors != 0 {
		t.Fatalf("errors = %d at shutdown", rep.Errors)
	}
}
