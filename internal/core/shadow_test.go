package core

import (
	"testing"
	"testing/quick"

	"talus/internal/cache"
	"talus/internal/curve"
	"talus/internal/partition"
	"talus/internal/policy"
)

func newShadowed(t *testing.T, lines int64, logical int) *ShadowedCache {
	t.Helper()
	scheme := partition.NewVantage(2 * logical)
	inner, err := cache.NewSetAssoc(lines, 16, scheme, policy.LRUFactory, 7)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewShadowedCache(inner, logical, DefaultMargin, 11)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func TestNewShadowedCacheValidation(t *testing.T) {
	inner, err := cache.NewSetAssoc(1024, 16, partition.NewVantage(3), policy.LRUFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewShadowedCache(inner, 1, 0, 1); err == nil {
		t.Fatal("3 partitions for 1 logical must fail")
	}
	if _, err := NewShadowedCache(inner, 0, 0, 1); err == nil {
		t.Fatal("zero logical partitions must fail")
	}
}

func TestReconfigureArgumentValidation(t *testing.T) {
	sc := newShadowed(t, 4096, 2)
	c := curve.MustNew([]curve.Point{{Size: 0, MPKI: 10}, {Size: 4096, MPKI: 1}})
	if err := sc.Reconfigure([]int64{100}, []*curve.Curve{c, c}); err == nil {
		t.Fatal("mismatched allocation count must fail")
	}
	if err := sc.Reconfigure([]int64{100, 100}, []*curve.Curve{c}); err == nil {
		t.Fatal("mismatched curve count must fail")
	}
}

func TestReconfigureNilCurveFallsBack(t *testing.T) {
	sc := newShadowed(t, 4096, 1)
	// A nil curve must degrade gracefully to a single partition.
	if err := sc.Reconfigure([]int64{3686}, []*curve.Curve{nil}); err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config(0)
	if !cfg.Degenerate || cfg.Rho != 1 {
		t.Fatalf("nil-curve config should be degenerate: %+v", cfg)
	}
	// Accesses still flow.
	for i := 0; i < 1000; i++ {
		sc.Access(uint64(i), 0)
	}
}

func TestShadowSizesSumToAllocations(t *testing.T) {
	sc := newShadowed(t, 8192, 2)
	cliff := curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 20}, {Size: 3000, MPKI: 20}, {Size: 3100, MPKI: 2}, {Size: 16384, MPKI: 2},
	})
	convex := curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 10}, {Size: 2000, MPKI: 4}, {Size: 8000, MPKI: 1},
	})
	allocs := []int64{2500, 4874}
	if err := sc.Reconfigure(allocs, []*curve.Curve{cliff, convex}); err != nil {
		t.Fatal(err)
	}
	sizes := sc.ShadowSizes()
	if len(sizes) != 4 {
		t.Fatalf("want 4 shadow sizes, got %v", sizes)
	}
	for p := 0; p < 2; p++ {
		if got := sizes[2*p] + sizes[2*p+1]; got != allocs[p] {
			t.Errorf("logical %d: shadow sizes %d+%d != allocation %d",
				p, sizes[2*p], sizes[2*p+1], allocs[p])
		}
		if sizes[2*p] < 0 || sizes[2*p+1] < 0 {
			t.Errorf("negative shadow size: %v", sizes)
		}
	}
	// The cliff partition (2500 lines, mid-plateau) must interpolate.
	if sc.Config(0).Degenerate {
		t.Error("cliff partition should not be degenerate at mid-plateau")
	}
}

// Property: for random monotone curves and random allocations,
// Reconfigure always produces shadow sizes summing to the allocation,
// sampler rates in [0,1], and a predicted MPKI no worse than the raw
// curve at the allocated size.
func TestQuickReconfigureInvariants(t *testing.T) {
	scheme := partition.NewVantage(2)
	inner, err := cache.NewSetAssoc(1<<14, 16, scheme, policy.LRUFactory, 3)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewShadowedCache(inner, 1, DefaultMargin, 5)
	if err != nil {
		t.Fatal(err)
	}
	f := func(steps []uint16, allocRaw uint16) bool {
		if len(steps) < 2 {
			return true
		}
		pts := make([]curve.Point, 0, len(steps)+1)
		x, m := 0.0, 4000.0
		pts = append(pts, curve.Point{Size: 0, MPKI: m})
		for _, s := range steps {
			x += float64(s%900) + 1
			m = maxf(0, m-float64(s%700))
			pts = append(pts, curve.Point{Size: x, MPKI: m})
		}
		c := curve.MustNew(pts)
		alloc := int64(allocRaw)%inner.PartitionableCapacity() + 1
		if err := sc.Reconfigure([]int64{alloc}, []*curve.Curve{c}); err != nil {
			return false
		}
		sizes := sc.ShadowSizes()
		if sizes[0]+sizes[1] != alloc || sizes[0] < 0 || sizes[1] < 0 {
			return false
		}
		cfg := sc.Config(0)
		if cfg.Rho < 0 || cfg.Rho > 1 {
			return false
		}
		return cfg.PredictedMPKI <= c.Eval(float64(alloc))+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// TestShadowedAccessRouting checks that the α/β split follows the
// programmed ρ.
func TestShadowedAccessRouting(t *testing.T) {
	sc := newShadowed(t, 8192, 1)
	cliff := curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 20}, {Size: 4000, MPKI: 20}, {Size: 4100, MPKI: 1}, {Size: 16384, MPKI: 1},
	})
	// Mid-plateau allocation (the cache is bigger, but the partitioning
	// algorithm chose 3000 lines for this partition).
	alloc := int64(3000)
	if err := sc.Reconfigure([]int64{alloc}, []*curve.Curve{cliff}); err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config(0)
	if cfg.Degenerate {
		t.Fatalf("expected interpolating config: %+v", cfg)
	}
	// Drive a wide address range; partition stats should split ~ρ.
	for i := 0; i < 1<<16; i++ {
		sc.Access(uint64(i)*2654435761, 0)
	}
	sa := sc.Inner().(*cache.SetAssoc)
	alphaShare := float64(sa.PartStats(0).Accesses) / float64(1<<16)
	if d := alphaShare - cfg.Rho; d > 0.02 || d < -0.02 {
		t.Fatalf("alpha share %g, programmed rho %g", alphaShare, cfg.Rho)
	}
}
