// Package core implements Talus itself: the shadow-partitioning technique
// of Beckmann & Sanchez (HPCA 2015) that removes performance cliffs by
// making any replacement policy's miss curve convex.
//
// # Theory recap
//
// Given a policy and application with miss curve m(s), Theorem 4 states
// that pseudo-randomly sampling a fraction ρ of the access stream into a
// partition of size s' makes that partition behave like a cache of size
// s'/ρ, with miss rate
//
//	m'(s') = ρ · m(s'/ρ)                                     (Eq. 1)
//
// Talus splits a cache (or each software-visible "logical" partition) of
// size s into two hidden shadow partitions, α and β, sized s1 and s2 with
// s = s1 + s2, and samples a fraction ρ of accesses into the first. The
// combined miss rate is
//
//	m_shadow(s) = ρ·m(s1/ρ) + (1−ρ)·m((s−s1)/(1−ρ))          (Eq. 2)
//
// Lemma 5 anchors the two terms at chosen curve points α ≤ s < β:
//
//	s1 = ρ·α,   ρ = (β − s)/(β − α)                          (Eqs. 3–4)
//
// which makes the miss rate the exact linear interpolation
//
//	m_shadow = (β−s)/(β−α)·m(α) + (s−α)/(β−α)·m(β)           (Eq. 5)
//
// Theorem 6 then picks α and β as the neighboring points of s on the miss
// curve's convex hull, so Talus traces the hull — the best convex curve
// achievable from m — removing every cliff.
//
// # What lives here
//
// Configure computes the {α, β, ρ, s1, s2} tuple for one partition,
// including the paper's 5% sampling-rate safety margin (§VI-B) and the
// way-granularity recomputation (§VI-B "Talus on way partitioning").
// Convexify is the software pre-processing step that hands partitioning
// algorithms hull curves; ShadowedCache is the runtime that routes
// accesses through H3 samplers into shadow partitions of an underlying
// partitioned cache, i.e. the post-processing step plus the hardware
// datapath of Fig. 7.
package core
