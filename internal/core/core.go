package core

import (
	"errors"
	"fmt"
	"math"
	"sync"

	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/hull"
)

// DefaultMargin is the paper's empirically determined sampling-rate safety
// margin: increasing ρ by 5% builds in slack so that statistical deviations
// from Assumptions 1–3 do not push the β partition back up the cliff
// (§VI-B, "Deviation from assumptions").
const DefaultMargin = 0.05

// Config describes the Talus configuration of a single logical partition
// of size TargetSize: the hull anchor points, the sampling rate, and the
// two shadow partition sizes. Produced by Configure.
type Config struct {
	TargetSize float64 // s: the logical partition's size, in lines

	Alpha float64 // α: hull point emulated by the first shadow partition
	Beta  float64 // β: hull point emulated by the second shadow partition

	RhoIdeal float64 // ρ from Eq. 4, before the safety margin
	Rho      float64 // sampling rate actually programmed (ρ·(1+margin), clamped)

	S1 float64 // first shadow partition size (ρ_ideal·α)
	S2 float64 // second shadow partition size (s − s1)

	MAlpha float64 // m(α): miss rate at the α anchor
	MBeta  float64 // m(β): miss rate at the β anchor

	// PredictedMPKI is Eq. 5's interpolated miss rate, i.e. the convex
	// hull evaluated at TargetSize. Talus is predictable by design: the
	// partitioning algorithm can rely on this value (§VII-B).
	PredictedMPKI float64

	// Degenerate reports that no interpolation is needed: s coincides
	// with a hull vertex or lies outside the measured range, so a single
	// partition (ρ = 1) of size s is already on the hull.
	Degenerate bool
}

// Errors returned by Configure and ShadowedCache.
var (
	ErrNilCurve = errors.New("core: nil or empty miss curve")
	ErrBadSize  = errors.New("core: target size must be positive and finite")
)

// Configure computes the Talus shadow-partition configuration for a
// partition of size s (in lines) under the given miss curve, applying the
// given sampling-rate safety margin (use DefaultMargin for the paper's 5%;
// 0 disables it). It implements Theorem 6: α and β are the hull points
// bracketing s.
func Configure(m *curve.Curve, s float64, margin float64) (Config, error) {
	if m == nil || m.NumPoints() == 0 {
		return Config{}, ErrNilCurve
	}
	if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
		return Config{}, fmt.Errorf("%w: got %g", ErrBadSize, s)
	}
	h := hull.Lower(m)
	cfg := configureOnHull(h, s, margin)
	// When the hull barely improves on the raw curve at s (flat or
	// already-convex regions), interpolation buys nothing but still pays
	// sampling noise and Assumption-2 error (associativity loss on way
	// partitioning). Fall back to a single partition there.
	if !cfg.Degenerate {
		raw := m.Eval(s)
		if raw-cfg.PredictedMPKI <= 0.02*raw+0.01 {
			cfg = Config{
				TargetSize: s,
				Alpha:      s, Beta: s,
				RhoIdeal: 1, Rho: 1,
				S1: s, S2: 0,
				MAlpha: raw, MBeta: raw,
				PredictedMPKI: raw,
				Degenerate:    true,
			}
		}
	}
	return cfg, nil
}

// ConfigureOnHull is Configure for callers that have already computed the
// hull (the pre-processing step computes hulls once per reconfiguration
// and reuses them for both the allocator and the post-processing step).
func ConfigureOnHull(h *curve.Curve, s float64, margin float64) (Config, error) {
	if h == nil || h.NumPoints() == 0 {
		return Config{}, ErrNilCurve
	}
	if !(s > 0) || math.IsInf(s, 0) || math.IsNaN(s) {
		return Config{}, fmt.Errorf("%w: got %g", ErrBadSize, s)
	}
	return configureOnHull(h, s, margin), nil
}

func configureOnHull(h *curve.Curve, s, margin float64) Config {
	alpha, beta, ok := hull.Neighbors(h, s)
	if !ok {
		// On a hull vertex or outside the measured range: single
		// partition, all accesses sampled into it.
		mpki := h.Eval(s)
		return Config{
			TargetSize: s,
			Alpha:      s, Beta: s,
			RhoIdeal: 1, Rho: 1,
			S1: s, S2: 0,
			MAlpha: mpki, MBeta: mpki,
			PredictedMPKI: mpki,
			Degenerate:    true,
		}
	}
	rho := (beta.Size - s) / (beta.Size - alpha.Size) // Eq. 4
	s1 := rho * alpha.Size                            // Eq. 3
	s2 := s - s1
	applied := rho * (1 + margin)
	if applied > 1 {
		applied = 1
	}
	// Eq. 5: the interpolated (hull) miss rate.
	pred := rho*alpha.MPKI + (1-rho)*beta.MPKI
	return Config{
		TargetSize: s,
		Alpha:      alpha.Size, Beta: beta.Size,
		RhoIdeal: rho, Rho: applied,
		S1: s1, S2: s2,
		MAlpha: alpha.MPKI, MBeta: beta.MPKI,
		PredictedMPKI: pred,
	}
}

// CoarsenToGranule adjusts a Config for a partitioning scheme that can
// only allocate in multiples of granule lines (e.g., way partitioning,
// where a granule is one way). Way partitioning "can somewhat egregiously
// violate Assumption 2" (§VI-B): the coarsened shadow sizes no longer
// match the math, so Talus recomputes the sampling rate from the final
// coarsened allocation, ρ = s1/α, keeping the α partition's emulated size
// exact and letting β absorb the rounding.
func (c Config) CoarsenToGranule(granule float64) Config {
	if c.Degenerate || granule <= 1 {
		return c
	}
	if c.Alpha <= 0 {
		// The hull anchors at size 0: the α shadow partition emulates a
		// zero-size cache (pure bypass), so it needs no space at any
		// granularity and ρ stays as computed.
		c.S1 = 0
		c.S2 = c.TargetSize
		return c
	}
	s1 := math.Round(c.S1/granule) * granule
	if s1 <= 0 {
		s1 = granule // the α shadow partition must exist to be sampled into
	}
	if s1 >= c.TargetSize {
		s1 = c.TargetSize - granule
		if s1 <= 0 {
			// Cannot fit two partitions at this granularity: degenerate.
			c.S1, c.S2 = c.TargetSize, 0
			c.Rho, c.RhoIdeal = 1, 1
			c.Degenerate = true
			return c
		}
	}
	rho := s1 / c.Alpha
	if rho > 1 {
		rho = 1
	}
	c.S1 = s1
	c.S2 = c.TargetSize - s1
	c.RhoIdeal = rho
	c.Rho = math.Min(1, rho*(1+DefaultMargin))
	return c
}

// EmulatedSizes returns the cache sizes the two shadow partitions emulate
// under the *applied* sampling rate (s1/ρ and s2/(1−ρ)), which is what the
// hardware actually realizes after the safety margin. With margin 0 these
// equal (α, β) exactly.
func (c Config) EmulatedSizes() (ea, eb float64) {
	if c.Degenerate || c.Rho >= 1 {
		return c.TargetSize, 0
	}
	return c.S1 / c.Rho, c.S2 / (1 - c.Rho)
}

// Convexify is the Talus software pre-processing step (Fig. 7a): it
// replaces each partition's measured miss curve with its convex hull, so
// the system's partitioning algorithm — whatever it may be — can safely
// assume convexity. Talus then realizes the promised performance via
// shadow partitioning.
func Convexify(curves []*curve.Curve) []*curve.Curve {
	out := make([]*curve.Curve, len(curves))
	for i, c := range curves {
		if c == nil || c.NumPoints() == 0 {
			out[i] = c
			continue
		}
		out[i] = hull.Lower(c)
	}
	return out
}

// InterpolatedMPKI evaluates the convex hull of m at size s: the miss rate
// Talus promises (and Theorem 6 guarantees) at that size.
func InterpolatedMPKI(m *curve.Curve, s float64) float64 {
	return hull.Lower(m).Eval(s)
}

// PartitionedCache is the slice of cache functionality the Talus runtime
// needs from the underlying partitioning scheme. The concrete
// implementations live in internal/cache and internal/partition; Talus is
// agnostic to which is used (way, set, Vantage-style, or idealized —
// §VII-B, Fig. 8).
type PartitionedCache interface {
	// Access performs one access for the given (shadow) partition and
	// reports whether it hit.
	Access(addr uint64, part int) bool
	// SetPartitionSizes sets the target size, in lines, of every
	// partition. len(sizes) must equal NumPartitions.
	SetPartitionSizes(sizes []int64) error
	// NumPartitions returns the number of hardware partitions.
	NumPartitions() int
	// Capacity returns the cache's total capacity in lines.
	Capacity() int64
	// PartitionableCapacity returns the capacity the scheme can strictly
	// enforce: the full capacity for way/set/ideal partitioning, but only
	// the 90% managed region for Vantage (§VI-B, "Talus on Vantage").
	PartitionableCapacity() int64
	// Granule returns the allocation granularity in lines: 1 for
	// fine-grained schemes, lines-per-way for way partitioning.
	Granule() int64
}

// BatchAccessor is the optional batching extension of PartitionedCache:
// caches that can amortize per-call overhead (above all, lock
// acquisition) across many accesses implement it. parts gives each
// access's partition (nil means partition 0 throughout); hits, when
// non-nil, receives per-access outcomes; the return value is the number
// of hits. cache.ShardedCache implements it by taking each shard lock
// once per batch.
type BatchAccessor interface {
	AccessBatch(addrs []uint64, parts []int, hits []bool) int
}

// ShadowedCache is the Talus runtime: it exposes N logical partitions,
// backed by 2N shadow partitions of an underlying partitioned cache, and
// routes each access through a per-logical-partition H3 sampler with an
// 8-bit limit register (Fig. 7b). Reconfigure implements the
// post-processing step: it consumes the partitioning algorithm's desired
// allocations plus the measured miss curves and programs shadow sizes and
// sampling rates.
//
// # Concurrency
//
// The sampling datapath is goroutine-safe by construction: samplers are
// immutable H3 matrices plus an atomic limit register, exactly like the
// hardware, so Access and AccessBatch may run from any number of
// goroutines — including concurrently with Reconfigure — provided the
// inner cache is itself safe for concurrent access (wrap it in a
// cache.ShardedCache to get that). Over a goroutine-unsafe inner cache
// (plain SetAssoc), the ShadowedCache is exactly as single-threaded as
// its inner cache, which is what the sequential simulator uses.
// Reconfigure, Config, and ShadowSizes serialize on an internal mutex.
type ShadowedCache struct {
	inner      PartitionedCache
	batch      BatchAccessor // inner's batching interface, nil if absent
	numLogical int
	samplers   []*hash.Sampler

	mu      sync.Mutex // guards configs, shadow, and Reconfigure itself
	configs []Config
	margin  float64
	shadow  []int64 // scratch: per-shadow-partition sizes

	scratch sync.Pool // *[]int: per-batch shadow partition ids
}

// NewShadowedCache wraps inner, which must expose exactly 2×numLogical
// partitions. Samplers are seeded deterministically from seed.
func NewShadowedCache(inner PartitionedCache, numLogical int, margin float64, seed uint64) (*ShadowedCache, error) {
	if numLogical <= 0 {
		return nil, fmt.Errorf("core: numLogical must be positive, got %d", numLogical)
	}
	if inner.NumPartitions() != 2*numLogical {
		return nil, fmt.Errorf("%w: inner has %d partitions for %d logical",
			ErrPartitionCount, inner.NumPartitions(), numLogical)
	}
	sc := &ShadowedCache{
		inner:      inner,
		numLogical: numLogical,
		samplers:   make([]*hash.Sampler, numLogical),
		configs:    make([]Config, numLogical),
		margin:     margin,
		shadow:     make([]int64, 2*numLogical),
	}
	sc.batch, _ = inner.(BatchAccessor)
	sc.scratch.New = func() any { s := make([]int, 0, 1024); return &s }
	seeds := hash.NewSplitMix64(seed)
	for i := range sc.samplers {
		sc.samplers[i] = hash.NewSampler(seeds.Next())
		sc.samplers[i].SetRate(1) // start degenerate: everything to α
	}
	return sc, nil
}

// ErrPartitionCount reports a mismatch between logical and shadow
// partition counts.
var ErrPartitionCount = errors.New("core: shadow partition count mismatch")

// Access routes one access for logical partition p through its sampler
// into the α (2p) or β (2p+1) shadow partition and reports a hit.
func (t *ShadowedCache) Access(addr uint64, logical int) bool {
	shadow := 2 * logical
	if !t.samplers[logical].ToAlpha(addr) {
		shadow++
	}
	return t.inner.Access(addr, shadow)
}

// AccessBatch routes a batch of accesses for one logical partition and
// returns the number of hits; hits, when non-nil, receives per-access
// outcomes. When the inner cache batches (implements BatchAccessor, as
// cache.ShardedCache does), the whole batch flows down in one call so
// lock acquisition is amortized across the batch; otherwise this is an
// Access loop. Either way the outcomes equal the equivalent sequence of
// Access calls.
func (t *ShadowedCache) AccessBatch(addrs []uint64, logical int, hits []bool) int {
	if hits != nil && len(hits) != len(addrs) {
		panic("core: AccessBatch hits length mismatch")
	}
	if t.batch == nil {
		n := 0
		for i, a := range addrs {
			hit := t.Access(a, logical)
			if hits != nil {
				hits[i] = hit
			}
			if hit {
				n++
			}
		}
		return n
	}
	sp := t.scratch.Get().(*[]int)
	parts := (*sp)[:0]
	sampler := t.samplers[logical]
	alpha := 2 * logical
	for _, a := range addrs {
		shadow := alpha
		if !sampler.ToAlpha(a) {
			shadow++
		}
		parts = append(parts, shadow)
	}
	n := t.batch.AccessBatch(addrs, parts, hits)
	*sp = parts
	t.scratch.Put(sp)
	return n
}

// SharedHitEnabler is the optional lock-free-hits extension of
// PartitionedCache (structurally the cache package's EnableSharedHits
// contract): EnableSharedHits switches the cache into a mode where hits
// may be resolved without per-shard locks, and reports whether the whole
// stack could enable it. One-way; call before concurrent traffic.
type SharedHitEnabler interface {
	EnableSharedHits() bool
}

// EnableSharedHits forwards to the inner cache when it supports
// lock-free hit probing (cache.ShardedCache over SetAssoc does), and
// reports whether it was enabled end to end. The shadow routing layer
// itself is already lock-free — samplers are immutable H3 matrices plus
// an atomic rate register — so enabling the inner cache makes the whole
// Access hit path contention-free. Implements SharedHitEnabler.
func (t *ShadowedCache) EnableSharedHits() bool {
	e, ok := t.inner.(SharedHitEnabler)
	return ok && e.EnableSharedHits()
}

// EvictNotifier is the optional eviction-reporting extension of
// PartitionedCache (structurally cache.EvictNotifier — restated so core
// keeps no dependency on the cache package): SetEvictHook installs a
// callback fired once per evicted line with its partition and address,
// and reports whether the cache supports it end to end.
type EvictNotifier interface {
	SetEvictHook(fn func(part int, addr uint64)) bool
}

// Invalidator is the optional invalidation extension of
// PartitionedCache (structurally cache.Invalidator): Invalidate drops
// the line holding addr for the given partition, if resident, without
// counting an access or firing the eviction hook.
type Invalidator interface {
	Invalidate(addr uint64, part int) bool
}

// SetEvictHook installs fn over the inner cache, translating the inner
// cache's shadow partition ids back to logical ones (shadow 2p and 2p+1
// are both logical p), and reports whether the inner cache supports
// eviction notification. The hook inherits the inner cache's calling
// context — typically under a shard lock on the accessing goroutine —
// and must not re-enter the cache. Implements EvictNotifier.
func (t *ShadowedCache) SetEvictHook(fn func(part int, addr uint64)) bool {
	n, ok := t.inner.(EvictNotifier)
	if !ok {
		return false
	}
	if fn == nil {
		return n.SetEvictHook(nil)
	}
	return n.SetEvictHook(func(shadow int, addr uint64) { fn(shadow/2, addr) })
}

// Invalidate drops logical partition p's line for addr, if resident,
// and reports whether one was dropped. The line may sit in either
// shadow partition: the sampler steering addr today need not be the one
// that filled it (rates move across reconfigurations), so both α (2p)
// and β (2p+1) are tried. Implements Invalidator.
func (t *ShadowedCache) Invalidate(addr uint64, p int) bool {
	inv, ok := t.inner.(Invalidator)
	if !ok {
		return false
	}
	// A line is resident in at most one shadow partition, but try both:
	// under set partitioning the set index depends on the partition, so
	// each shadow has its own candidate set.
	a := inv.Invalidate(addr, 2*p)
	b := inv.Invalidate(addr, 2*p+1)
	return a || b
}

// NumLogical returns the number of software-visible partitions.
func (t *ShadowedCache) NumLogical() int { return t.numLogical }

// Inner returns the wrapped partitioned cache.
func (t *ShadowedCache) Inner() PartitionedCache { return t.inner }

// Config returns the current configuration of logical partition p.
func (t *ShadowedCache) Config(p int) Config {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.configs[p]
}

// Reconfigure programs the shadow partitions from the allocator's desired
// logical sizes and the per-partition miss curves, applying Theorem 6 with
// the configured safety margin, coarsening to the scheme's granule, and
// pushing sizes and sampling rates down to hardware. Curves may be raw
// measurements; hulls are computed here. See transition for the in-place
// reconfiguration safety argument.
func (t *ShadowedCache) Reconfigure(allocations []int64, curves []*curve.Curve) error {
	return t.reconfigure(allocations, curves, false)
}

// ReconfigureHulls is Reconfigure for callers that hold only convex
// hulls (each curve must be its own lower hull, e.g. from Convexify).
// Unlike Reconfigure, it cannot apply Configure's flat-gain degenerate
// collapse — that check compares the raw curve against the hull — so
// partitions whose raw curve was already convex get a (harmless but
// pointless) shadow split; callers that still have the raw measurements
// should prefer Reconfigure.
func (t *ShadowedCache) ReconfigureHulls(allocations []int64, hulls []*curve.Curve) error {
	return t.reconfigure(allocations, hulls, true)
}

func (t *ShadowedCache) reconfigure(allocations []int64, curves []*curve.Curve, hulled bool) error {
	if len(allocations) != t.numLogical || len(curves) != t.numLogical {
		return fmt.Errorf("core: Reconfigure wants %d allocations and curves, got %d and %d",
			t.numLogical, len(allocations), len(curves))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	granule := float64(t.inner.Granule())
	// Stage 1: compute every partition's new configuration into locals.
	// Pure math, and nothing is committed until the hardware push
	// succeeds, so an error cannot leave Config/ShadowSizes reporting a
	// configuration the datapath never applied.
	configs := make([]Config, t.numLogical)
	shadow := make([]int64, 2*t.numLogical)
	for p := 0; p < t.numLogical; p++ {
		alloc := float64(allocations[p])
		var cfg Config
		var err error
		if hulled {
			cfg, err = ConfigureOnHull(curves[p], alloc, t.margin)
		} else {
			cfg, err = Configure(curves[p], alloc, t.margin)
		}
		if err != nil {
			// No usable curve: fall back to a single partition of the
			// allocated size, which is plain (Talus-less) behaviour.
			cfg = Config{TargetSize: alloc, Alpha: alloc, Beta: alloc,
				RhoIdeal: 1, Rho: 1, S1: alloc, Degenerate: true}
		}
		cfg = cfg.CoarsenToGranule(granule)
		configs[p] = cfg
		s1 := int64(math.Round(cfg.S1))
		if s1 > allocations[p] {
			s1 = allocations[p]
		}
		shadow[2*p] = s1
		shadow[2*p+1] = allocations[p] - s1
	}
	return t.transition(configs, shadow)
}

// transition applies a computed configuration to the live datapath:
// partition size targets first, sampler rates second. The ordering
// matters under concurrent traffic — a sampler's new rate may steer more
// of the stream toward a shadow partition that is growing, and the
// growth target must already be programmed when that traffic arrives, or
// the scheme would evict the new arrivals against the stale (smaller)
// target. The reverse transient is benign: accesses routed by the old
// rate into a partition that just shrank merely age out as the scheme
// converges to the new targets. If the inner cache rejects the sizes,
// nothing is committed: samplers, Config, and ShadowSizes keep the old
// configuration, which is still the one the datapath runs.
//
// No residency is flushed at any point: the sampler's H3 matrix is
// immutable and its limit register is threshold-monotone, so when ρ
// shrinks the new α sampled set is a strict subset of the old one
// (hash(addr) < limit′ < limit). Lines resident in a shadow partition
// keep their owner accounting (partition.Scheme occupancy moves only on
// fill/evict); lines whose addresses re-route simply stop being
// refreshed and fall out of the old partition at the replacement
// policy's pace — the same gradual convergence hardware exhibits when
// the limit register is rewritten between accesses.
func (t *ShadowedCache) transition(configs []Config, shadow []int64) error {
	if err := t.inner.SetPartitionSizes(shadow); err != nil {
		return err
	}
	copy(t.configs, configs)
	copy(t.shadow, shadow)
	for p := 0; p < t.numLogical; p++ {
		t.samplers[p].SetRate(configs[p].Rho)
	}
	return nil
}

// ShadowSizes returns the most recently programmed shadow partition sizes
// (2 entries per logical partition: α then β).
func (t *ShadowedCache) ShadowSizes() []int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int64, len(t.shadow))
	copy(out, t.shadow)
	return out
}
