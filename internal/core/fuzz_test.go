// Native fuzzing for the Talus configuration math. Whatever curve a
// monitor produces and whatever size an allocator picks, Configure must
// return a physically realizable shadow split: ρ ∈ (0, 1], non-negative
// shadow sizes summing to the target, and a predicted miss rate that
// never exceeds the raw curve (the hull promise).

package core

import (
	"math"
	"testing"

	"talus/internal/curve"
)

// fuzzCurve decodes fuzz bytes into a valid miss curve (strictly
// increasing sizes, finite non-negative MPKIs), mirroring what monitors
// can emit. Returns nil when the input is too short.
func fuzzCurve(data []byte) *curve.Curve {
	if len(data) < 2 {
		return nil
	}
	pts := make([]curve.Point, 0, len(data)/2)
	size := 0.0
	for i := 0; i+1 < len(data); i += 2 {
		size += float64(data[i]) + 1
		pts = append(pts, curve.Point{Size: size, MPKI: float64(data[i+1]) * 0.25})
	}
	return curve.MustNew(pts)
}

func FuzzConfigure(f *testing.F) {
	f.Add([]byte{10, 160, 10, 156, 10, 8, 10, 4}, uint16(25), false)
	f.Add([]byte{1, 200, 1, 200, 1, 200}, uint16(2), true)
	f.Add([]byte{50, 100, 50, 0}, uint16(75), false)
	f.Add([]byte{3, 10, 3, 90, 3, 5, 3, 70, 3, 1}, uint16(9), true)
	f.Fuzz(func(t *testing.T, data []byte, sizeSel uint16, useMargin bool) {
		m := fuzzCurve(data)
		if m == nil {
			return
		}
		// Map sizeSel across [1, 1.25 × max size] so targets land inside,
		// on, and beyond the measured range.
		s := 1 + float64(sizeSel)/65535*1.25*m.MaxSize()
		margin := 0.0
		if useMargin {
			margin = DefaultMargin
		}
		cfg, err := Configure(m, s, margin)
		if err != nil {
			t.Fatalf("Configure(%v, %g): %v", m, s, err)
		}

		// ρ ∈ (0, 1] — the sampler's limit register can realize it.
		if !(cfg.Rho > 0 && cfg.Rho <= 1) {
			t.Fatalf("Rho %g outside (0,1]: %+v", cfg.Rho, cfg)
		}
		if !(cfg.RhoIdeal > 0 && cfg.RhoIdeal <= 1) {
			t.Fatalf("RhoIdeal %g outside (0,1]: %+v", cfg.RhoIdeal, cfg)
		}
		// Shadow sizes are non-negative and partition the target exactly.
		if cfg.S1 < 0 || cfg.S2 < 0 {
			t.Fatalf("negative shadow size: %+v", cfg)
		}
		if d := math.Abs(cfg.S1 + cfg.S2 - s); d > 1e-6*math.Max(1, s) {
			t.Fatalf("s1+s2 = %g, want %g (Δ %g): %+v", cfg.S1+cfg.S2, s, d, cfg)
		}
		// The margin only ever increases the applied rate.
		if cfg.Rho < cfg.RhoIdeal-1e-12 {
			t.Fatalf("applied rho %g below ideal %g: %+v", cfg.Rho, cfg.RhoIdeal, cfg)
		}
		// Anchors bracket the target for non-degenerate configs.
		if !cfg.Degenerate && !(cfg.Alpha <= s && s < cfg.Beta) {
			t.Fatalf("anchors [%g, %g) do not bracket %g: %+v", cfg.Alpha, cfg.Beta, s, cfg)
		}
		// The hull promise: predicted MPKI never exceeds the raw curve.
		if raw := m.Eval(s); cfg.PredictedMPKI > raw+1e-9 {
			t.Fatalf("predicted %g above raw %g at %g", cfg.PredictedMPKI, raw, s)
		}
		// Granule coarsening must preserve the same invariants.
		for _, g := range []float64{8, 512} {
			cc := cfg.CoarsenToGranule(g)
			if !(cc.Rho > 0 && cc.Rho <= 1) || cc.S1 < 0 || cc.S2 < 0 {
				t.Fatalf("coarsened config invalid at granule %g: %+v", g, cc)
			}
			if d := math.Abs(cc.S1 + cc.S2 - s); d > 1e-6*math.Max(1, s) {
				t.Fatalf("coarsened s1+s2 = %g, want %g at granule %g", cc.S1+cc.S2, s, g)
			}
		}
	})
}
