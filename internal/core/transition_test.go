package core

import (
	"testing"

	"talus/internal/cache"
	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/hull"
)

// cliffCurve has a plateau-then-cliff shape whose hull strictly improves
// on the raw curve at mid-plateau targets, so configurations are
// non-degenerate and the hulled/raw paths must agree exactly.
// Its hull is (0,40)→(1024,18)→(3000,2)→(8192,2), so mid-plateau targets
// get a nonzero α anchor (the α shadow partition actually holds lines).
func plateauCliffCurve() *curve.Curve {
	return curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 40},
		{Size: 1024, MPKI: 18},
		{Size: 2999, MPKI: 17.9},
		{Size: 3000, MPKI: 2},
		{Size: 8192, MPKI: 2},
	})
}

func TestReconfigureHullsMatchesReconfigure(t *testing.T) {
	raw := plateauCliffCurve()
	h := hull.Lower(raw)
	allocs := []int64{2000, 1600}

	a := newShadowed(t, 8192, 2)
	if err := a.Reconfigure(allocs, []*curve.Curve{raw, raw}); err != nil {
		t.Fatal(err)
	}
	b := newShadowed(t, 8192, 2)
	if err := b.ReconfigureHulls(allocs, []*curve.Curve{h, h}); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		ca, cb := a.Config(p), b.Config(p)
		if ca != cb {
			t.Errorf("partition %d: raw-curve config %+v != hulled config %+v", p, ca, cb)
		}
	}
	sa, sb := a.ShadowSizes(), b.ShadowSizes()
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("shadow sizes diverge: %v vs %v", sa, sb)
		}
	}
}

func TestFailedTransitionCommitsNothing(t *testing.T) {
	// When the inner cache rejects the new sizes, Config and ShadowSizes
	// must keep reporting the configuration the datapath actually runs.
	inner, err := cache.NewIdeal(4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewShadowedCache(inner, 1, DefaultMargin, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := sc.Reconfigure([]int64{3000}, []*curve.Curve{plateauCliffCurve()}); err != nil {
		t.Fatal(err)
	}
	want := sc.Config(0)
	wantShadow := sc.ShadowSizes()

	// An over-committing allocation: the ideal cache rejects it.
	if err := sc.Reconfigure([]int64{5000}, []*curve.Curve{plateauCliffCurve()}); err == nil {
		t.Fatal("over-committed reconfigure must fail")
	}
	if got := sc.Config(0); got != want {
		t.Errorf("failed transition leaked config: %+v != %+v", got, want)
	}
	for i, s := range sc.ShadowSizes() {
		if s != wantShadow[i] {
			t.Fatalf("failed transition leaked shadow sizes: %v != %v", sc.ShadowSizes(), wantShadow)
		}
	}
}

func TestSamplerRateShrinkIsSubsetMonotone(t *testing.T) {
	// The transition-safety argument relies on the sampler's limit
	// register being threshold-monotone: shrinking ρ must shrink the α
	// sampled set to a subset, never re-route a β address to α.
	s := hash.NewSampler(99)
	s.SetRate(0.8)
	inOld := make(map[uint64]bool)
	for a := uint64(0); a < 4096; a++ {
		inOld[a] = s.ToAlpha(a)
	}
	s.SetRate(0.3)
	for a := uint64(0); a < 4096; a++ {
		if s.ToAlpha(a) && !inOld[a] {
			t.Fatalf("addr %d entered α when ρ shrank: sampled sets not nested", a)
		}
	}
}

func TestTransitionKeepsResidentLines(t *testing.T) {
	// Reconfiguring must not flush residency: after shrinking ρ, every
	// address that still routes to α was already resident there (nested
	// sampled sets) and must hit immediately, with its hit accounted to
	// the same logical partition.
	sc := newShadowed(t, 8192, 1)

	// Start degenerate (ρ = 1, everything to α) over a small working set
	// that fits the α shadow partition.
	if err := sc.Reconfigure([]int64{2000}, []*curve.Curve{nil}); err != nil {
		t.Fatal(err)
	}
	const ws = 1024
	for round := 0; round < 4; round++ {
		for a := uint64(0); a < ws; a++ {
			sc.Access(a, 0)
		}
	}

	// Shrink ρ via a cliffy curve: part of the stream re-routes to β.
	if err := sc.Reconfigure([]int64{2000}, []*curve.Curve{plateauCliffCurve()}); err != nil {
		t.Fatal(err)
	}
	cfg := sc.Config(0)
	if cfg.Degenerate || cfg.Rho >= 1 {
		t.Fatalf("test needs a non-degenerate shrink, got %+v", cfg)
	}

	// Every address still routed to α must hit: resident since before the
	// transition, and never flushed by it.
	var alphaAccesses, alphaHits int
	for a := uint64(0); a < ws; a++ {
		if !sc.samplers[0].ToAlpha(a) {
			continue
		}
		alphaAccesses++
		if sc.Access(a, 0) {
			alphaHits++
		}
	}
	if alphaAccesses == 0 {
		t.Fatal("no addresses routed to α; widen the working set")
	}
	if alphaHits != alphaAccesses {
		t.Fatalf("α residency lost across transition: %d/%d hits", alphaHits, alphaAccesses)
	}
}
