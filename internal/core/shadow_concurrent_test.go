// Concurrency tests for the Talus runtime over a sharded inner cache:
// run under -race these prove the full serving stack — sampler routing,
// batched shard access, and epoch reconfiguration — is goroutine-safe,
// and that aggregated hit/miss counts conserve every access issued.

package core

import (
	"sync"
	"testing"

	"talus/internal/cache"
	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/partition"
	"talus/internal/policy"
)

// newShardedShadowed builds a ShadowedCache (1 logical partition) over an
// nShards-sharded Vantage/LRU cache of totalLines lines.
func newShardedShadowed(t testing.TB, nShards int, totalLines int64) (*ShadowedCache, *cache.ShardedCache) {
	t.Helper()
	inner, err := cache.NewSharded(nShards, totalLines, 21, func(i int, capLines int64) (cache.Shard, error) {
		return cache.NewSetAssoc(capLines, 16, partition.NewVantage(2), policy.LRUFactory, uint64(100+i))
	})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := NewShadowedCache(inner, 1, DefaultMargin, 33)
	if err != nil {
		t.Fatal(err)
	}
	return sc, inner
}

// cliffCurve is a miss curve with one sharp cliff, forcing a
// non-degenerate two-partition Talus configuration at mid sizes.
func cliffCurve(totalLines int64) *curve.Curve {
	s := float64(totalLines)
	return curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 40},
		{Size: 1.5 * s, MPKI: 39},
		{Size: 2 * s, MPKI: 2},
		{Size: 4 * s, MPKI: 1},
	})
}

// TestShadowedConcurrentHammer drives the Talus runtime from many
// goroutines (batched and unbatched) while another goroutine keeps
// reprogramming shadow partitions, then checks access conservation.
func TestShadowedConcurrentHammer(t *testing.T) {
	const totalLines = 32768
	sc, inner := newShardedShadowed(t, 8, totalLines)
	mcurve := cliffCurve(totalLines)
	budget := inner.PartitionableCapacity()
	if err := sc.Reconfigure([]int64{budget}, []*curve.Curve{mcurve}); err != nil {
		t.Fatal(err)
	}
	if cfg := sc.Config(0); cfg.Degenerate {
		t.Fatalf("want a non-degenerate Talus config for the hammer, got %+v", cfg)
	}

	const (
		goroutines = 12
		batches    = 30
		batchLen   = 512
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := hash.NewSplitMix64(uint64(g)*0x9E3779B97F4A7C15 + 5)
			addrs := make([]uint64, batchLen)
			hits := make([]bool, batchLen)
			for b := 0; b < batches; b++ {
				for i := range addrs {
					addrs[i] = rng.Uint64n(totalLines * 4)
				}
				if b%2 == 0 {
					n := sc.AccessBatch(addrs, 0, hits)
					sum := 0
					for _, h := range hits {
						if h {
							sum++
						}
					}
					if n != sum {
						t.Errorf("AccessBatch returned %d hits, outcomes sum to %d", n, sum)
						return
					}
				} else {
					for _, a := range addrs {
						sc.Access(a, 0)
					}
				}
			}
		}(g)
	}
	// Concurrent reconfiguration: the runtime's 10 ms epoch boundary,
	// compressed. Each accessor observes either the old or new rate.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < 40; r++ {
			if err := sc.Reconfigure([]int64{budget}, []*curve.Curve{mcurve}); err != nil {
				t.Errorf("Reconfigure: %v", err)
				return
			}
			_ = sc.Config(0)
			_ = sc.ShadowSizes()
		}
	}()
	wg.Wait()

	st := inner.Stats()
	want := int64(goroutines * batches * batchLen)
	if st.Accesses != want {
		t.Fatalf("Accesses = %d, want %d", st.Accesses, want)
	}
	if st.Hits+st.Misses != st.Accesses {
		t.Fatalf("Hits (%d) + Misses (%d) != Accesses (%d)", st.Hits, st.Misses, st.Accesses)
	}
}

// TestShadowedBatchMatchesLoop checks that AccessBatch over a sharded
// inner cache produces exactly the outcomes of an Access loop on an
// identically built stack.
func TestShadowedBatchMatchesLoop(t *testing.T) {
	const totalLines = 16384
	scBatch, _ := newShardedShadowed(t, 4, totalLines)
	scLoop, _ := newShardedShadowed(t, 4, totalLines)
	mcurve := cliffCurve(totalLines)
	for _, sc := range []*ShadowedCache{scBatch, scLoop} {
		budget := sc.Inner().PartitionableCapacity()
		if err := sc.Reconfigure([]int64{budget}, []*curve.Curve{mcurve}); err != nil {
			t.Fatal(err)
		}
	}

	rng := hash.NewSplitMix64(99)
	const batches, batchLen = 48, 384
	addrs := make([]uint64, batchLen)
	hits := make([]bool, batchLen)
	for b := 0; b < batches; b++ {
		for i := range addrs {
			addrs[i] = rng.Uint64n(totalLines * 4)
		}
		scBatch.AccessBatch(addrs, 0, hits)
		for i, a := range addrs {
			if want := scLoop.Access(a, 0); hits[i] != want {
				t.Fatalf("batch %d access %d: batch hit=%v, loop hit=%v", b, i, hits[i], want)
			}
		}
	}
}
