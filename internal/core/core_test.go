package core

import (
	"math"
	"testing"
	"testing/quick"

	"talus/internal/curve"
)

func mb(x float64) float64 { return curve.MBToLines(x) }

// fig3Curve is the paper's worked example (Fig. 3 / §III): random accesses
// over 2 MB plus a 3 MB sequential scan at 24 APKI. 12 MPKI at 2 MB,
// plateau to 5 MB, then 3 MPKI.
func fig3Curve() *curve.Curve {
	return curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(2), MPKI: 12},
		{Size: mb(4.999), MPKI: 12},
		{Size: mb(5), MPKI: 3},
		{Size: mb(10), MPKI: 3},
	})
}

// TestConfigureFig3 checks every number in the paper's worked example
// (§III and §IV-C): at s = 4 MB, α = 2 MB, β = 5 MB, ρ = 1/3,
// s1 = 2/3 MB, s2 = 10/3 MB, and 6 MPKI.
func TestConfigureFig3(t *testing.T) {
	cfg, err := Configure(fig3Curve(), mb(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Degenerate {
		t.Fatal("4MB lies between hull points; must not be degenerate")
	}
	approx := func(got, want, tol float64, what string) {
		t.Helper()
		if math.Abs(got-want) > tol {
			t.Errorf("%s = %g, want %g", what, got, want)
		}
	}
	approx(cfg.Alpha, mb(2), 1e-9, "alpha")
	approx(cfg.Beta, mb(5), 1e-9, "beta")
	approx(cfg.RhoIdeal, 1.0/3, 1e-12, "rho")
	approx(cfg.S1, mb(2.0/3), 1e-6, "s1")
	approx(cfg.S2, mb(10.0/3), 1e-6, "s2")
	approx(cfg.PredictedMPKI, 6, 1e-9, "predicted MPKI")
	approx(cfg.MAlpha, 12, 1e-9, "m(alpha)")
	approx(cfg.MBeta, 3, 1e-9, "m(beta)")
	// Shadow partition bookkeeping: s1 + s2 = s, s1/ρ = α, s2/(1−ρ) = β.
	approx(cfg.S1+cfg.S2, mb(4), 1e-6, "s1+s2")
	approx(cfg.S1/cfg.RhoIdeal, cfg.Alpha, 1e-6, "s1/rho")
	approx(cfg.S2/(1-cfg.RhoIdeal), cfg.Beta, 1e-6, "s2/(1-rho)")
}

func TestConfigureMargin(t *testing.T) {
	cfg, err := Configure(fig3Curve(), mb(4), DefaultMargin)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.0 / 3) * 1.05
	if math.Abs(cfg.Rho-want) > 1e-12 {
		t.Fatalf("applied rho = %g, want %g", cfg.Rho, want)
	}
	if cfg.RhoIdeal != 1.0/3 {
		t.Fatalf("ideal rho changed by margin: %g", cfg.RhoIdeal)
	}
	// The margin shifts emulated sizes: α down, β up.
	ea, eb := cfg.EmulatedSizes()
	if !(ea < cfg.Alpha) {
		t.Errorf("emulated alpha %g should shrink below %g", ea, cfg.Alpha)
	}
	if !(eb > cfg.Beta) {
		t.Errorf("emulated beta %g should grow above %g", eb, cfg.Beta)
	}
}

func TestConfigureMarginClamped(t *testing.T) {
	// ρ close to 1 (s just above α): margin must clamp at 1.
	cfg, err := Configure(fig3Curve(), mb(2.01), 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Rho > 1 {
		t.Fatalf("rho %g exceeds 1", cfg.Rho)
	}
}

func TestConfigureDegenerateCases(t *testing.T) {
	c := fig3Curve()
	for _, s := range []float64{mb(2), mb(5), mb(10), mb(40)} {
		cfg, err := Configure(c, s, DefaultMargin)
		if err != nil {
			t.Fatalf("Configure(%g): %v", s, err)
		}
		if !cfg.Degenerate {
			t.Errorf("size %g MB should be degenerate (on hull vertex or beyond)", curve.LinesToMB(s))
		}
		if cfg.Rho != 1 || cfg.S1 != s || cfg.S2 != 0 {
			t.Errorf("degenerate config should be single partition: %+v", cfg)
		}
	}
}

func TestConfigureErrors(t *testing.T) {
	if _, err := Configure(nil, 100, 0); err == nil {
		t.Fatal("nil curve should error")
	}
	c := fig3Curve()
	for _, s := range []float64{0, -5, math.NaN(), math.Inf(1)} {
		if _, err := Configure(c, s, 0); err == nil {
			t.Errorf("size %g should error", s)
		}
	}
}

func TestConvexifyProducesHulls(t *testing.T) {
	curves := []*curve.Curve{fig3Curve(), nil}
	out := Convexify(curves)
	if len(out) != 2 {
		t.Fatal("Convexify must preserve length")
	}
	if !out[0].IsConvex(1e-9) {
		t.Fatal("output not convex")
	}
	if out[1] != nil {
		t.Fatal("nil curve should pass through")
	}
	if got := out[0].Eval(mb(4)); math.Abs(got-6) > 1e-9 {
		t.Fatalf("hull(4MB) = %g, want 6", got)
	}
}

func TestInterpolatedMPKI(t *testing.T) {
	if got := InterpolatedMPKI(fig3Curve(), mb(4)); math.Abs(got-6) > 1e-9 {
		t.Fatalf("InterpolatedMPKI = %g, want 6", got)
	}
}

func TestCoarsenToGranule(t *testing.T) {
	cfg, err := Configure(fig3Curve(), mb(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Way-granularity: a 4MB 32-way cache has granule 4MB/32 = 2048 lines.
	granule := mb(4) / 32
	co := cfg.CoarsenToGranule(granule)
	if rem := math.Mod(co.S1, granule); rem > 1e-9 && granule-rem > 1e-9 {
		t.Fatalf("coarsened s1 %g not a multiple of %g", co.S1, granule)
	}
	if math.Abs(co.S1+co.S2-co.TargetSize) > 1e-9 {
		t.Fatal("coarsening must preserve total size")
	}
	// ρ recomputed from the coarsened s1 (§VI-B): ρ = s1/α.
	wantRho := co.S1 / co.Alpha
	if math.Abs(co.RhoIdeal-wantRho) > 1e-12 {
		t.Fatalf("coarsened rho %g, want s1/alpha = %g", co.RhoIdeal, wantRho)
	}
}

func TestCoarsenDegeneratePassthrough(t *testing.T) {
	cfg := Config{TargetSize: 100, Alpha: 100, Beta: 100, Rho: 1, RhoIdeal: 1, S1: 100, Degenerate: true}
	if got := cfg.CoarsenToGranule(64); got != cfg {
		t.Fatal("degenerate configs must pass through coarsening")
	}
}

func TestCoarsenTooCoarse(t *testing.T) {
	cfg, err := Configure(fig3Curve(), mb(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	// Granule equal to the whole allocation: cannot host two partitions.
	co := cfg.CoarsenToGranule(mb(4))
	if !co.Degenerate {
		t.Fatalf("expected degenerate fallback, got %+v", co)
	}
}

// Property: for any valid monotone curve and any size strictly inside the
// hull, the configuration satisfies the shadow-partition identities and
// interpolates the hull exactly.
func TestQuickConfigureIdentities(t *testing.T) {
	f := func(sizes, mpkis []uint16, probeRaw uint16) bool {
		n := len(sizes)
		if len(mpkis) < n {
			n = len(mpkis)
		}
		if n < 2 {
			return true
		}
		pts := make([]curve.Point, 0, n)
		x := 0.0
		last := 6000.0
		for i := 0; i < n; i++ {
			x += float64(sizes[i]%500) + 1
			// Non-increasing MPKI, as LRU curves are.
			last = math.Max(0, last-float64(mpkis[i]%500))
			pts = append(pts, curve.Point{Size: x, MPKI: last})
		}
		c := curve.MustNew(pts)
		span := c.MaxSize() - c.MinSize()
		s := c.MinSize() + span*(0.001+0.998*float64(probeRaw)/65535)
		if s <= 0 {
			return true
		}
		cfg, err := Configure(c, s, 0)
		if err != nil {
			return false
		}
		if cfg.Degenerate {
			return cfg.Rho == 1 && cfg.S2 == 0
		}
		tol := 1e-6 * (1 + s)
		if math.Abs(cfg.S1+cfg.S2-s) > tol {
			return false
		}
		if math.Abs(cfg.S1/cfg.RhoIdeal-cfg.Alpha) > tol {
			return false
		}
		if math.Abs(cfg.S2/(1-cfg.RhoIdeal)-cfg.Beta) > tol {
			return false
		}
		// Predicted MPKI equals hull evaluation and never exceeds the
		// original curve at s (hull property).
		if math.Abs(cfg.PredictedMPKI-InterpolatedMPKI(c, s)) > 1e-6*(1+cfg.PredictedMPKI) {
			return false
		}
		return cfg.PredictedMPKI <= c.Eval(s)+1e-6*(1+c.Eval(s))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
