// Request: the objective-aware allocation seam. The plain functions in
// alloc.go answer "minimize total misses over these curves"; Request
// generalizes the question — per-partition weights price one partition's
// miss reduction above another's (QoS), and per-partition line floors
// and caps carve out guaranteed or bounded shares — without changing
// the answer when none of those knobs are set: a Request carrying only
// curves, total, and granule reproduces the legacy functions
// byte-for-byte (pinned by TestUniformRequestMatchesLegacy).

package alloc

import (
	"fmt"
	"math"

	"talus/internal/curve"
)

// Request carries one allocation problem: divide Total lines among
// len(Curves) partitions in multiples of Granule, minimizing the
// configured objective subject to the per-partition constraints.
type Request struct {
	// Curves holds one piecewise-linear miss curve per partition
	// (convex hulls when the caller runs Talus pre-processing).
	Curves []*curve.Curve
	// Total is the capacity budget in lines; Granule the grid step.
	Total   int64
	Granule int64
	// Weights scales each partition's marginal miss reduction in the
	// objective: a weight-4 partition's saved miss counts four times a
	// weight-1 partition's, so capacity flows toward it until its
	// weighted marginal utility drops to the others'. nil means uniform
	// (weight 1 everywhere) — the minimize-total-misses objective.
	// Weights must be finite and non-negative.
	Weights []float64
	// MinLines is a per-partition floor: the allocator grants each
	// partition its floor (rounded up to whole granules, in partition
	// order, while budget remains) before optimizing. nil means no
	// floors.
	MinLines []int64
	// MaxLines is a per-partition cap: a partition never receives more
	// than its cap (to granule resolution). A zero entry means
	// unbounded. nil means no caps.
	MaxLines []int64
}

// NewRequest builds the plain (uniform, unconstrained) request for the
// legacy three-argument call shape.
func NewRequest(curves []*curve.Curve, total, granule int64) Request {
	return Request{Curves: curves, Total: total, Granule: granule}
}

// weight returns partition i's objective weight (1 when unset).
func (r *Request) weight(i int) float64 {
	if r.Weights == nil {
		return 1
	}
	return r.Weights[i]
}

// minOf returns partition i's line floor (0 when unset).
func (r *Request) minOf(i int) int64 {
	if r.MinLines == nil {
		return 0
	}
	return r.MinLines[i]
}

// maxOf returns partition i's line cap (Total when unbounded).
func (r *Request) maxOf(i int) int64 {
	if r.MaxLines == nil || r.MaxLines[i] <= 0 {
		return r.Total
	}
	return r.MaxLines[i]
}

// validate checks the request and returns the partition count. Beyond
// the legacy curve/total/granule checks it verifies the constraint
// vectors' lengths and values, and that the constraints are feasible:
// the floors must fit in the budget, and when every partition is
// capped the caps must be able to absorb it.
func (r *Request) validate() (int, error) {
	n, err := validate(r.Curves, r.Total, r.Granule)
	if err != nil {
		return 0, err
	}
	if r.Weights != nil && len(r.Weights) != n {
		return 0, fmt.Errorf("%w: %d weights for %d partitions", ErrBadInput, len(r.Weights), n)
	}
	for i, w := range r.Weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return 0, fmt.Errorf("%w: weight %d = %g (need finite, non-negative)", ErrBadInput, i, w)
		}
	}
	if r.MinLines != nil && len(r.MinLines) != n {
		return 0, fmt.Errorf("%w: %d floors for %d partitions", ErrBadInput, len(r.MinLines), n)
	}
	if r.MaxLines != nil && len(r.MaxLines) != n {
		return 0, fmt.Errorf("%w: %d caps for %d partitions", ErrBadInput, len(r.MaxLines), n)
	}
	var sumMin int64
	capped, sumMax := true, int64(0)
	for i := 0; i < n; i++ {
		lo := r.minOf(i)
		if lo < 0 {
			return 0, fmt.Errorf("%w: floor %d = %d", ErrBadInput, i, lo)
		}
		sumMin += lo
		if r.MaxLines != nil && r.MaxLines[i] < 0 {
			return 0, fmt.Errorf("%w: cap %d = %d", ErrBadInput, i, r.MaxLines[i])
		}
		if hi := r.maxOf(i); hi < r.Total {
			if hi < lo {
				return 0, fmt.Errorf("%w: partition %d cap %d below floor %d", ErrBadInput, i, hi, lo)
			}
			sumMax += hi
		} else {
			capped = false
		}
	}
	if sumMin > r.Total {
		return 0, fmt.Errorf("%w: floors sum to %d, budget %d", ErrBadInput, sumMin, r.Total)
	}
	if capped && sumMax < r.Total {
		return 0, fmt.Errorf("%w: caps sum to %d, budget %d", ErrBadInput, sumMax, r.Total)
	}
	return n, nil
}

// grantFloors gives each partition its MinLines floor in whole granules
// (partition order, while budget remains) and returns the remaining
// budget. A no-op for requests without floors.
func (r *Request) grantFloors(out []int64) (remaining int64) {
	remaining = r.Total
	if r.MinLines == nil {
		return remaining
	}
	for i := range out {
		for out[i] < r.minOf(i) && remaining >= r.Granule {
			out[i] += r.Granule
			remaining -= r.Granule
		}
	}
	return remaining
}

// spreadLeftover assigns the unallocated remainder: whole granules
// round-robin over partitions with cap headroom, then the sub-granule
// residue (and any granules no single cap could hold whole) in
// partition order up to each cap. With no caps this is exactly the
// legacy functions' round-robin-then-out[0] epilogue; validate
// guarantees the caps leave enough headroom to spend the budget.
func (r *Request) spreadLeftover(out []int64, remaining int64) {
	n := len(out)
	for i, stalled := 0, 0; remaining >= r.Granule && stalled < n; i = (i + 1) % n {
		if out[i]+r.Granule <= r.maxOf(i) {
			out[i] += r.Granule
			remaining -= r.Granule
			stalled = 0
		} else {
			stalled++
		}
	}
	for i := 0; remaining > 0 && i < n; i++ {
		if room := r.maxOf(i) - out[i]; room > 0 {
			g := min(room, remaining)
			out[i] += g
			remaining -= g
		}
	}
}

// WeightedHillClimb is HillClimb under the full Request: after granting
// the floors, it repeatedly gives one granule to the partition whose
// weighted miss reduction is largest, skipping partitions at their
// caps. On convex curves this greedy rule is optimal for the
// WeightedMiss objective (each partition's weighted marginal utility is
// non-increasing, so the globally best granule is always a locally best
// one — verified against WeightedOptimalDP by the property tests). A
// plain request (no weights, floors, or caps) reproduces HillClimb
// byte-for-byte: the weight factor is an exact ×1.0 and no constraint
// branch is ever taken.
func WeightedHillClimb(req Request) ([]int64, error) {
	n, err := req.validate()
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	remaining := req.grantFloors(out)
	for remaining >= req.Granule {
		best := -1
		var bestGain float64
		for i, c := range req.Curves {
			if out[i]+req.Granule > req.maxOf(i) {
				continue
			}
			x := float64(out[i])
			gain := (c.Eval(x) - c.Eval(x+float64(req.Granule))) * req.weight(i)
			if gain > bestGain {
				bestGain = gain
				best = i
			}
		}
		if best < 0 {
			break // no weighted utility anywhere below the caps
		}
		out[best] += req.Granule
		remaining -= req.Granule
	}
	req.spreadLeftover(out, remaining)
	return out, nil
}

// WeightedLookahead is UCP Lookahead under the full Request: every
// partition proposes the extension maximizing its weighted marginal
// utility per granule (bounded by its cap); the best proposal wins.
// A plain request reproduces Lookahead byte-for-byte.
func WeightedLookahead(req Request) ([]int64, error) {
	n, err := req.validate()
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	remaining := req.grantFloors(out)
	for remaining >= req.Granule {
		best := -1
		var bestRate float64
		var bestExt int64
		for i, c := range req.Curves {
			x := float64(out[i])
			base := c.Eval(x)
			w := req.weight(i)
			hi := req.maxOf(i)
			for ext := req.Granule; ext <= remaining && out[i]+ext <= hi; ext += req.Granule {
				gain := (base - c.Eval(x+float64(ext))) * w
				rate := gain / float64(ext/req.Granule)
				if rate > bestRate {
					bestRate = rate
					best = i
					bestExt = ext
				}
			}
		}
		if best < 0 {
			break
		}
		out[best] += bestExt
		remaining -= bestExt
	}
	req.spreadLeftover(out, remaining)
	return out, nil
}

// WeightedFair splits the budget in proportion to the weights (equal
// shares when uniform), ignoring curves, floors, and caps — the
// fairness policy generalized to priced tenants. Whole granules go by
// largest fractional remainder (ties to the lowest index), so uniform
// weights reproduce Fair byte-for-byte; the sub-granule residue goes to
// partition 0 as in Fair.
func WeightedFair(req Request) ([]int64, error) {
	n, err := req.validate()
	if err != nil {
		return nil, err
	}
	if req.Weights == nil {
		return Fair(n, req.Total, req.Granule)
	}
	var sumW float64
	for i := 0; i < n; i++ {
		sumW += req.weight(i)
	}
	if sumW <= 0 {
		return Fair(n, req.Total, req.Granule)
	}
	granules := req.Total / req.Granule
	out := make([]int64, n)
	type frac struct {
		i int
		f float64
	}
	rem := make([]frac, n)
	var assigned int64
	for i := 0; i < n; i++ {
		exact := float64(granules) * req.weight(i) / sumW
		whole := int64(math.Floor(exact))
		out[i] = whole * req.Granule
		assigned += whole
		rem[i] = frac{i, exact - float64(whole)}
	}
	// Largest remainder first; ties break to the lowest index so the
	// uniform case reproduces Fair's "first total%n partitions get one
	// extra" rule exactly.
	for g := granules - assigned; g > 0; g-- {
		best := -1
		for j := range rem {
			if best < 0 || rem[j].f > rem[best].f {
				best = j
			}
		}
		out[rem[best].i] += req.Granule
		rem[best].f = -1
	}
	out[0] += req.Total - granules*req.Granule
	return out, nil
}

// WeightedOptimalDP computes the exact WeightedMiss-minimizing
// allocation under the full Request by dynamic programming over the
// granule grid, restricting each partition's granule count to its
// [floor, cap] band. Ground truth for WeightedHillClimb in tests; a
// plain request reproduces OptimalDP byte-for-byte. Fails with
// ErrBadInput when granule rounding makes the floors infeasible.
func WeightedOptimalDP(req Request) ([]int64, error) {
	n, err := req.validate()
	if err != nil {
		return nil, err
	}
	b := int(req.Total / req.Granule)
	lo := make([]int, n)
	hi := make([]int, n)
	for i := 0; i < n; i++ {
		lo[i] = int((req.minOf(i) + req.Granule - 1) / req.Granule)
		hi[i] = int(req.maxOf(i) / req.Granule)
	}
	const inf = 1e300
	prev := make([]float64, b+1)
	cur := make([]float64, b+1)
	choice := make([][]int, n)
	for i := range choice {
		choice[i] = make([]int, b+1)
	}
	prev[0] = 0
	for j := 1; j <= b; j++ {
		prev[j] = inf
	}
	for i := 0; i < n; i++ {
		w := req.weight(i)
		for j := 0; j <= b; j++ {
			cur[j] = inf
			kHi := min(j, hi[i])
			for k := lo[i]; k <= kHi; k++ {
				if prev[j-k] >= inf {
					continue
				}
				cost := prev[j-k] + w*req.Curves[i].Eval(float64(int64(k)*req.Granule))
				if cost < cur[j] {
					cur[j] = cost
					choice[i][j] = k
				}
			}
		}
		prev, cur = cur, prev
	}
	if prev[b] >= inf {
		return nil, fmt.Errorf("%w: floors/caps leave no way to spend %d granules", ErrBadInput, b)
	}
	out := make([]int64, n)
	j := b
	for i := n - 1; i >= 0; i-- {
		k := choice[i][j]
		out[i] = int64(k) * req.Granule
		j -= k
	}
	req.spreadLeftover(out, req.Total-int64(b)*req.Granule)
	return out, nil
}
