package alloc

import (
	"errors"
	"fmt"

	"talus/internal/curve"
)

// ErrBadInput reports invalid allocation inputs.
var ErrBadInput = errors.New("alloc: bad input")

// validate checks common preconditions and returns the partition count.
func validate(curves []*curve.Curve, total, granule int64) (int, error) {
	if len(curves) == 0 {
		return 0, fmt.Errorf("%w: no curves", ErrBadInput)
	}
	if total < 0 || granule <= 0 {
		return 0, fmt.Errorf("%w: total %d granule %d", ErrBadInput, total, granule)
	}
	for i, c := range curves {
		if c == nil || c.NumPoints() == 0 {
			return 0, fmt.Errorf("%w: curve %d empty", ErrBadInput, i)
		}
	}
	return len(curves), nil
}

// HillClimb allocates total lines among the partitions by repeatedly
// granting one granule to the partition whose miss curve drops the most
// for it. This is the paper's "trivial linear-time for-loop": optimal when
// every curve is convex, and demonstrably poor on cliffs (it sees zero
// marginal utility across a plateau and never crosses it).
func HillClimb(curves []*curve.Curve, total, granule int64) ([]int64, error) {
	n, err := validate(curves, total, granule)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	remaining := total
	for remaining >= granule {
		best := -1
		var bestGain float64
		for i, c := range curves {
			x := float64(out[i])
			gain := c.Eval(x) - c.Eval(x+float64(granule))
			if gain > bestGain {
				bestGain = gain
				best = i
			}
		}
		if best < 0 {
			break // every curve is flat from here: no utility anywhere
		}
		out[best] += granule
		remaining -= granule
	}
	// Leftover capacity (flat curves or sub-granule residue) is spread
	// round-robin so the budget is fully assigned.
	for i := 0; remaining >= granule; i = (i + 1) % n {
		out[i] += granule
		remaining -= granule
	}
	if remaining > 0 {
		out[0] += remaining
	}
	return out, nil
}

// Lookahead implements UCP's Lookahead algorithm: at each step, every
// partition proposes the extension (any number of granules) maximizing its
// marginal utility *per granule*; the best proposal wins its whole
// extension. This lets the allocator leap across plateaus to reach cliffs
// — at quadratic cost, and with the all-or-nothing allocations that hurt
// fairness (§VII-D).
func Lookahead(curves []*curve.Curve, total, granule int64) ([]int64, error) {
	n, err := validate(curves, total, granule)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	remaining := total
	for remaining >= granule {
		best := -1
		var bestRate float64
		var bestExt int64
		for i, c := range curves {
			x := float64(out[i])
			base := c.Eval(x)
			for ext := granule; ext <= remaining; ext += granule {
				gain := base - c.Eval(x+float64(ext))
				rate := gain / float64(ext/granule)
				if rate > bestRate {
					bestRate = rate
					best = i
					bestExt = ext
				}
			}
		}
		if best < 0 {
			break
		}
		out[best] += bestExt
		remaining -= bestExt
	}
	for i := 0; remaining >= granule; i = (i + 1) % n {
		out[i] += granule
		remaining -= granule
	}
	if remaining > 0 {
		out[0] += remaining
	}
	return out, nil
}

// Fair returns equal allocations (total/n, rounded to granules, residue to
// the lowest indices): the paper's fair-partitioning policy for
// homogeneous workloads (Fig. 13).
func Fair(n int, total, granule int64) ([]int64, error) {
	if n <= 0 || total < 0 || granule <= 0 {
		return nil, fmt.Errorf("%w: n %d total %d granule %d", ErrBadInput, n, total, granule)
	}
	out := make([]int64, n)
	granules := total / granule
	for i := range out {
		share := granules / int64(n)
		if int64(i) < granules%int64(n) {
			share++
		}
		out[i] = share * granule
	}
	out[0] += total - granules*granule
	return out, nil
}

// OptimalDP computes the misses-minimizing allocation exactly by dynamic
// programming over the granule grid: dp[i][b] = min total MPKI giving b
// granules to the first i partitions. O(n·B²) time, used as ground truth
// in tests and ablations.
func OptimalDP(curves []*curve.Curve, total, granule int64) ([]int64, error) {
	n, err := validate(curves, total, granule)
	if err != nil {
		return nil, err
	}
	b := int(total / granule)
	const inf = 1e300
	prev := make([]float64, b+1)
	cur := make([]float64, b+1)
	choice := make([][]int, n) // choice[i][b] = granules given to partition i
	for i := range choice {
		choice[i] = make([]int, b+1)
	}
	// Exact-allocation semantics: dp[i][j] = min cost giving the first i
	// partitions exactly j granules. Zero partitions can consume only
	// zero granules; this forces the backtracked allocation to spend the
	// whole budget (free capacity must be assigned somewhere).
	prev[0] = 0
	for j := 1; j <= b; j++ {
		prev[j] = inf
	}
	// Build up one partition at a time.
	for i := 0; i < n; i++ {
		for j := 0; j <= b; j++ {
			cur[j] = inf
			for k := 0; k <= j; k++ {
				if prev[j-k] >= inf {
					continue
				}
				cost := prev[j-k] + curves[i].Eval(float64(int64(k)*granule))
				if cost < cur[j] {
					cur[j] = cost
					choice[i][j] = k
				}
			}
		}
		prev, cur = cur, prev
	}
	// Backtrack.
	out := make([]int64, n)
	j := b
	for i := n - 1; i >= 0; i-- {
		k := choice[i][j]
		out[i] = int64(k) * granule
		j -= k
	}
	out[0] += total - int64(b)*granule
	return out, nil
}

// TotalMPKI evaluates the aggregate MPKI of an allocation under the given
// curves (the allocator's objective function).
func TotalMPKI(curves []*curve.Curve, allocation []int64) float64 {
	sum := 0.0
	for i, c := range curves {
		sum += c.Eval(float64(allocation[i]))
	}
	return sum
}
