package alloc

import (
	"math"
	"math/rand"
	"testing"

	"talus/internal/curve"
)

// randConvexCurve builds a random convex, non-increasing miss curve on
// [0, maxSize]: random positive slopes sorted by decreasing magnitude.
func randConvexCurve(rng *rand.Rand, maxSize int64, npts int) *curve.Curve {
	drops := make([]float64, npts-1)
	for i := range drops {
		drops[i] = rng.Float64() * 10
	}
	// Sort descending: steepest drop first = convex (slope magnitude
	// shrinking with size).
	for i := 1; i < len(drops); i++ {
		for j := i; j > 0 && drops[j] > drops[j-1]; j-- {
			drops[j], drops[j-1] = drops[j-1], drops[j]
		}
	}
	// Suffix sums keep every height exactly non-negative (a running
	// subtraction can go fractionally below zero in floating point).
	heights := make([]float64, npts)
	for i := npts - 2; i >= 0; i-- {
		heights[i] = heights[i+1] + drops[i]
	}
	pts := make([]curve.Point, npts)
	step := float64(maxSize) / float64(npts-1)
	for i := range pts {
		pts[i] = curve.Point{Size: float64(i) * step, MPKI: heights[i]}
	}
	return curve.MustNew(pts)
}

// TestWeightedHillClimbOptimal is the satellite property test: on random
// convex hulls with random weights, greedy weighted hill climbing must
// match the exact weighted DP's objective value (allocations may differ
// where the objective ties, so compare WeightedMiss costs, not vectors).
func TestWeightedHillClimbOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(4)
		const total, granule = 4096, 128
		req := Request{Total: total, Granule: granule}
		req.Curves = make([]*curve.Curve, n)
		req.Weights = make([]float64, n)
		for i := range req.Curves {
			req.Curves[i] = randConvexCurve(rng, total, 3+rng.Intn(6))
			req.Weights[i] = 0.25 + rng.Float64()*8
		}
		got, err := WeightedHillClimb(req)
		if err != nil {
			t.Fatalf("trial %d: hill: %v", trial, err)
		}
		want, err := WeightedOptimalDP(req)
		if err != nil {
			t.Fatalf("trial %d: dp: %v", trial, err)
		}
		var sum int64
		for _, v := range got {
			sum += v
		}
		if sum != total {
			t.Fatalf("trial %d: hill spends %d of %d", trial, sum, total)
		}
		gc := WeightedMiss.Cost(req, got)
		wc := WeightedMiss.Cost(req, want)
		if gc > wc+1e-9*(1+math.Abs(wc)) {
			t.Fatalf("trial %d: hill cost %.9g > dp cost %.9g\nhill %v\ndp   %v\nweights %v",
				trial, gc, wc, got, want, req.Weights)
		}
	}
}

// TestUniformRequestMatchesLegacy pins the refactor's core promise: a
// plain Request (no weights, floors, or caps) through every weighted
// algorithm is byte-identical to the legacy function it replaced, across
// a matrix of partition counts, budgets, and granules — including
// budgets with sub-granule residue and flat curves that exercise the
// leftover paths.
func TestUniformRequestMatchesLegacy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type pair struct {
		name   string
		newFn  func(Request) ([]int64, error)
		legacy func([]*curve.Curve, int64, int64) ([]int64, error)
	}
	pairs := []pair{
		{"hill", WeightedHillClimb, HillClimb},
		{"lookahead", WeightedLookahead, Lookahead},
		{"optimal", WeightedOptimalDP, OptimalDP},
		{"fair", WeightedFair, func(c []*curve.Curve, tot, g int64) ([]int64, error) {
			return Fair(len(c), tot, g)
		}},
	}
	for trial := 0; trial < 150; trial++ {
		n := 1 + rng.Intn(5)
		granule := int64(1 + rng.Intn(256))
		total := granule*int64(rng.Intn(40)) + int64(rng.Intn(int(granule)))
		curves := make([]*curve.Curve, n)
		for i := range curves {
			if rng.Intn(5) == 0 {
				// Flat curve: exercises the round-robin leftover path.
				h := rng.Float64() * 5
				curves[i] = curve.MustNew([]curve.Point{{Size: 0, MPKI: h}, {Size: float64(total + 1), MPKI: h}})
			} else {
				curves[i] = randConvexCurve(rng, max(total, 2), 2+rng.Intn(6))
			}
		}
		req := NewRequest(curves, total, granule)
		for _, p := range pairs {
			got, gerr := p.newFn(req)
			want, werr := p.legacy(curves, total, granule)
			if (gerr == nil) != (werr == nil) {
				t.Fatalf("trial %d %s: error mismatch: %v vs %v", trial, p.name, gerr, werr)
			}
			if gerr != nil {
				continue
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d %s (n=%d total=%d granule=%d):\nrequest %v\nlegacy  %v",
						trial, p.name, n, total, granule, got, want)
				}
			}
		}
	}
}

// TestRequestConstraints exercises floors, caps, and their validation.
func TestRequestConstraints(t *testing.T) {
	c := func() *curve.Curve {
		return curve.MustNew([]curve.Point{{Size: 0, MPKI: 20}, {Size: 4096, MPKI: 1}})
	}
	base := Request{Curves: []*curve.Curve{c(), c()}, Total: 4096, Granule: 128}

	t.Run("floor honored", func(t *testing.T) {
		req := base
		req.MinLines = []int64{0, 1024}
		out, err := WeightedHillClimb(req)
		if err != nil {
			t.Fatal(err)
		}
		if out[1] < 1024 {
			t.Fatalf("floor violated: %v", out)
		}
		if out[0]+out[1] != req.Total {
			t.Fatalf("budget not spent: %v", out)
		}
	})
	t.Run("cap honored", func(t *testing.T) {
		req := base
		req.MaxLines = []int64{512, 0}
		for name, fn := range map[string]func(Request) ([]int64, error){
			"hill": WeightedHillClimb, "lookahead": WeightedLookahead, "dp": WeightedOptimalDP,
		} {
			out, err := fn(req)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if out[0] > 512 {
				t.Fatalf("%s: cap violated: %v", name, out)
			}
			if out[0]+out[1] != req.Total {
				t.Fatalf("%s: budget not spent: %v", name, out)
			}
		}
	})
	t.Run("weight pulls capacity", func(t *testing.T) {
		// Identical curves: uniform weights split evenly-ish; weighting
		// partition 1 by 8 must shift lines toward it.
		req := base
		uniform, err := WeightedHillClimb(req)
		if err != nil {
			t.Fatal(err)
		}
		req.Weights = []float64{1, 8}
		weighted, err := WeightedHillClimb(req)
		if err != nil {
			t.Fatal(err)
		}
		if weighted[1] <= uniform[1] {
			t.Fatalf("8× weight did not attract capacity: uniform %v weighted %v", uniform, weighted)
		}
	})
	t.Run("validation", func(t *testing.T) {
		bad := []Request{
			{Curves: base.Curves, Total: 4096, Granule: 128, Weights: []float64{1}},
			{Curves: base.Curves, Total: 4096, Granule: 128, Weights: []float64{1, -2}},
			{Curves: base.Curves, Total: 4096, Granule: 128, Weights: []float64{1, math.NaN()}},
			{Curves: base.Curves, Total: 4096, Granule: 128, MinLines: []int64{4000, 4000}},
			{Curves: base.Curves, Total: 4096, Granule: 128, MaxLines: []int64{100, 100}},
			{Curves: base.Curves, Total: 4096, Granule: 128, MinLines: []int64{0, 600}, MaxLines: []int64{4096, 500}},
		}
		for i, req := range bad {
			if _, err := WeightedHillClimb(req); err == nil {
				t.Errorf("bad request %d accepted", i)
			}
		}
	})
}

func TestObjectiveRegistry(t *testing.T) {
	c := curve.MustNew([]curve.Point{{Size: 0, MPKI: 10}, {Size: 1000, MPKI: 2}})
	req := Request{Curves: []*curve.Curve{c, c}, Total: 1000, Granule: 100, Weights: []float64{1, 3}}
	allocn := []int64{500, 500}
	if got, want := MinMiss.Cost(req, allocn), TotalMPKI(req.Curves, allocn); got != want {
		t.Fatalf("MinMiss = %g, want %g", got, want)
	}
	wantW := c.Eval(500) + 3*c.Eval(500)
	if got := WeightedMiss.Cost(req, allocn); math.Abs(got-wantW) > 1e-12 {
		t.Fatalf("WeightedMiss = %g, want %g", got, wantW)
	}
	// Uniform request: the two objectives agree.
	req.Weights = nil
	if MinMiss.Cost(req, allocn) != WeightedMiss.Cost(req, allocn) {
		t.Fatal("uniform WeightedMiss must equal MinMiss")
	}
	for name, want := range map[string]Objective{
		"min-miss": MinMiss, "miss": MinMiss,
		"weighted-miss": WeightedMiss, "qos": WeightedMiss,
	} {
		got, err := ObjectiveByName(name)
		if err != nil {
			t.Fatalf("ObjectiveByName(%q): %v", name, err)
		}
		if got.Name() != want.Name() {
			t.Fatalf("ObjectiveByName(%q) = %s, want %s", name, got.Name(), want.Name())
		}
	}
	if _, err := ObjectiveByName("fairness"); err == nil {
		t.Fatal("unknown objective must error")
	}
}
