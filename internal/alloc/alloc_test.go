package alloc

import (
	"math"
	"testing"
	"testing/quick"

	"talus/internal/curve"
	"talus/internal/hull"
)

// convexCurve and cliffCurve are the two canonical shapes.
func convexCurve(scale float64) *curve.Curve {
	return curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 20 * scale},
		{Size: 100, MPKI: 10 * scale},
		{Size: 200, MPKI: 5 * scale},
		{Size: 400, MPKI: 2 * scale},
		{Size: 800, MPKI: 1 * scale},
	})
}

func cliffCurve() *curve.Curve {
	// Plateau at 20 until 500, then cliff to 1.
	return curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 20}, {Size: 100, MPKI: 20}, {Size: 499, MPKI: 20}, {Size: 500, MPKI: 1}, {Size: 800, MPKI: 1},
	})
}

func sum(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}

func TestValidation(t *testing.T) {
	c := convexCurve(1)
	if _, err := HillClimb(nil, 100, 10); err == nil {
		t.Fatal("no curves must fail")
	}
	if _, err := HillClimb([]*curve.Curve{c}, -1, 10); err == nil {
		t.Fatal("negative total must fail")
	}
	if _, err := HillClimb([]*curve.Curve{c}, 100, 0); err == nil {
		t.Fatal("zero granule must fail")
	}
	if _, err := Lookahead([]*curve.Curve{nil}, 100, 10); err == nil {
		t.Fatal("nil curve must fail")
	}
	if _, err := Fair(0, 100, 10); err == nil {
		t.Fatal("zero partitions must fail")
	}
}

func TestBudgetConservation(t *testing.T) {
	curves := []*curve.Curve{convexCurve(1), convexCurve(2), cliffCurve()}
	for _, total := range []int64{0, 10, 100, 999, 1600} {
		for _, granule := range []int64{1, 7, 10, 100} {
			for name, f := range map[string]func() ([]int64, error){
				"hill":      func() ([]int64, error) { return HillClimb(curves, total, granule) },
				"lookahead": func() ([]int64, error) { return Lookahead(curves, total, granule) },
				"dp":        func() ([]int64, error) { return OptimalDP(curves, total, granule) },
				"fair":      func() ([]int64, error) { return Fair(3, total, granule) },
			} {
				got, err := f()
				if err != nil {
					t.Fatalf("%s(%d,%d): %v", name, total, granule, err)
				}
				if sum(got) != total {
					t.Errorf("%s(%d,%d) allocated %d: %v", name, total, granule, sum(got), got)
				}
				for _, g := range got {
					if g < 0 {
						t.Errorf("%s: negative allocation %v", name, got)
					}
				}
			}
		}
	}
}

func TestHillClimbOptimalOnConvex(t *testing.T) {
	// On convex curves hill climbing must match the DP optimum — the
	// paper's core argument for why Talus makes partitioning simple.
	curves := []*curve.Curve{convexCurve(1), convexCurve(3), convexCurve(0.5)}
	const total, granule = 800, 10
	hillAlloc, err := HillClimb(curves, total, granule)
	if err != nil {
		t.Fatal(err)
	}
	dpAlloc, err := OptimalDP(curves, total, granule)
	if err != nil {
		t.Fatal(err)
	}
	hillM := TotalMPKI(curves, hillAlloc)
	dpM := TotalMPKI(curves, dpAlloc)
	if hillM > dpM+1e-9 {
		t.Fatalf("hill %g vs DP %g: hill must be optimal on convex curves", hillM, dpM)
	}
}

func TestHillClimbStuckOnCliff(t *testing.T) {
	// A cliff plus a gently convex competitor: hill climbing never sees
	// marginal gain on the plateau, so the cliff app is starved — the
	// pathology Fig. 12's Hill/LRU exhibits. (The budget is ample: with a
	// too-tight budget even Lookahead legitimately abandons the cliff.)
	curves := []*curve.Curve{cliffCurve(), convexCurve(1)}
	const total, granule = 1000, 10
	hillAlloc, err := HillClimb(curves, total, granule)
	if err != nil {
		t.Fatal(err)
	}
	dpAlloc, err := OptimalDP(curves, total, granule)
	if err != nil {
		t.Fatal(err)
	}
	if TotalMPKI(curves, hillAlloc) <= TotalMPKI(curves, dpAlloc)+1e-9 {
		t.Fatal("hill climbing should be stuck on this cliff; test workload too easy")
	}
	// Lookahead must cross the plateau and give the cliff app its 500.
	laAlloc, err := Lookahead(curves, total, granule)
	if err != nil {
		t.Fatal(err)
	}
	if laAlloc[0] < 500 {
		t.Fatalf("lookahead allocated %d to the cliff app, want ≥ 500", laAlloc[0])
	}
	if math.Abs(TotalMPKI(curves, laAlloc)-TotalMPKI(curves, dpAlloc)) > 2 {
		t.Fatalf("lookahead %g far from optimal %g", TotalMPKI(curves, laAlloc), TotalMPKI(curves, dpAlloc))
	}
}

func TestHillClimbOnHullsMatchesLookahead(t *testing.T) {
	// Talus's pre-processing: hill climbing on convex hulls must be at
	// least as good (in hull terms) as Lookahead on the raw curves.
	raw := []*curve.Curve{cliffCurve(), convexCurve(1)}
	hulls := []*curve.Curve{hull.Lower(raw[0]), hull.Lower(raw[1])}
	const total, granule = 600, 10
	hillOnHulls, err := HillClimb(hulls, total, granule)
	if err != nil {
		t.Fatal(err)
	}
	dpOnHulls, err := OptimalDP(hulls, total, granule)
	if err != nil {
		t.Fatal(err)
	}
	if TotalMPKI(hulls, hillOnHulls) > TotalMPKI(hulls, dpOnHulls)+1e-9 {
		t.Fatal("hill on hulls must be optimal")
	}
}

func TestFairEqual(t *testing.T) {
	got, err := Fair(4, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sum(got) != 100 {
		t.Fatalf("fair sums to %d", sum(got))
	}
	for _, g := range got {
		if g < 20 || g > 30 {
			t.Fatalf("fair allocation uneven: %v", got)
		}
	}
}

func TestTotalMPKI(t *testing.T) {
	curves := []*curve.Curve{convexCurve(1), cliffCurve()}
	got := TotalMPKI(curves, []int64{100, 500})
	want := 10.0 + 1.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("TotalMPKI = %g, want %g", got, want)
	}
}

// Property: DP is never worse than hill climbing or lookahead, and all
// conserve the budget, on random monotone curves.
func TestQuickDPDominates(t *testing.T) {
	f := func(raw []uint16, nRaw, totRaw uint8) bool {
		n := int(nRaw%3) + 2
		if len(raw) < n*4 {
			return true
		}
		curves := make([]*curve.Curve, n)
		for i := 0; i < n; i++ {
			pts := make([]curve.Point, 0, 4)
			x, m := 0.0, 3000.0
			for j := 0; j < 4; j++ {
				x += float64(raw[i*4+j]%200) + 1
				m = math.Max(0, m-float64(raw[i*4+j]%1500))
				pts = append(pts, curve.Point{Size: x, MPKI: m})
			}
			curves[i] = curve.MustNew(pts)
		}
		total := int64(totRaw)*8 + 16
		const granule = 8
		hillA, err1 := HillClimb(curves, total, granule)
		laA, err2 := Lookahead(curves, total, granule)
		dpA, err3 := OptimalDP(curves, total, granule)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		if sum(hillA) != total || sum(laA) != total || sum(dpA) != total {
			return false
		}
		dpM := TotalMPKI(curves, dpA)
		return dpM <= TotalMPKI(curves, hillA)+1e-9 && dpM <= TotalMPKI(curves, laA)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
