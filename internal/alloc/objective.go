// Objective: the scalar cost an allocator minimizes. The paper's §VII-D
// point is that convex hulls make any partitioning objective easy to
// optimize; this registry names the two we ship — plain aggregate
// misses and the weighted (QoS) variant — so tests and tooling can
// score an allocation under the objective a Request encodes.

package alloc

import "fmt"

// Objective scores an allocation under a request: lower is better.
type Objective interface {
	// Name returns the objective's canonical name (as accepted by
	// ObjectiveByName).
	Name() string
	// Cost evaluates the allocation's scalar cost under the request's
	// curves (and, for weighted objectives, its weights).
	Cost(req Request, allocation []int64) float64
}

type objectiveFunc struct {
	name string
	fn   func(req Request, allocation []int64) float64
}

func (o objectiveFunc) Name() string { return o.name }
func (o objectiveFunc) Cost(req Request, allocation []int64) float64 {
	return o.fn(req, allocation)
}

var (
	// MinMiss is the classic objective: aggregate MPKI across partitions,
	// ignoring weights.
	MinMiss Objective = objectiveFunc{"min-miss", func(req Request, allocation []int64) float64 {
		return TotalMPKI(req.Curves, allocation)
	}}
	// WeightedMiss prices each partition's misses by its request weight —
	// the objective WeightedHillClimb and WeightedOptimalDP minimize. On
	// a uniform request it equals MinMiss.
	WeightedMiss Objective = objectiveFunc{"weighted-miss", func(req Request, allocation []int64) float64 {
		sum := 0.0
		for i, c := range req.Curves {
			sum += req.weight(i) * c.Eval(float64(allocation[i]))
		}
		return sum
	}}
)

// ObjectiveByName resolves an objective name to its shared value.
func ObjectiveByName(name string) (Objective, error) {
	switch name {
	case "min-miss", "minmiss", "miss":
		return MinMiss, nil
	case "weighted-miss", "weighted", "qos":
		return WeightedMiss, nil
	}
	return nil, fmt.Errorf("%w: unknown objective %q (valid: min-miss, weighted-miss)", ErrBadInput, name)
}
