// Package alloc implements the cache partitioning algorithms the paper
// compares (§VII-D):
//
//   - HillClimb: trivial linear-time greedy hill climbing, which is
//     optimal on convex curves (the whole point of Talus) but gets stuck
//     in local optima on cliffy curves;
//   - Lookahead: Qureshi & Patt's UCP Lookahead, the quadratic heuristic
//     that copes with non-convexity by considering all-or-nothing
//     extensions;
//   - Fair: equal allocations, the paper's fairness baseline (Fig. 13);
//   - OptimalDP: exact dynamic programming over the granule grid, used to
//     validate the others (optimal partitioning is NP-complete only in
//     problem size encodings; on a fixed grid DP is exact and polynomial).
//
// All algorithms operate on miss curves in MPKI (misses per
// kilo-instruction), treat them as piecewise-linear, allocate in integer
// multiples of a granule, and return per-partition line counts summing to
// the budget.
package alloc
