// Package alloc implements the cache partitioning algorithms the paper
// compares (§VII-D):
//
//   - HillClimb: trivial linear-time greedy hill climbing, which is
//     optimal on convex curves (the whole point of Talus) but gets stuck
//     in local optima on cliffy curves;
//   - Lookahead: Qureshi & Patt's UCP Lookahead, the quadratic heuristic
//     that copes with non-convexity by considering all-or-nothing
//     extensions;
//   - Fair: equal allocations, the paper's fairness baseline (Fig. 13);
//   - OptimalDP: exact dynamic programming over the granule grid, used to
//     validate the others (optimal partitioning is NP-complete only in
//     problem size encodings; on a fixed grid DP is exact and polynomial).
//
// All algorithms operate on miss curves in MPKI (misses per
// kilo-instruction), treat them as piecewise-linear, allocate in integer
// multiples of a granule, and return per-partition line counts summing to
// the budget.
//
// # Requests, weights, and bounds
//
// Allocators consume a Request: the curves and budget plus optional
// per-partition objective Weights (the allocator minimizes
// Σ wᵢ·missesᵢ — §VII-D's point that hulls make any objective easy),
// MinLines floors, and MaxLines caps. The Weighted* functions implement
// each algorithm over a Request; the plain functions (HillClimb, ...)
// remain the uniform-request special case and the Weighted* versions
// degenerate to them byte-identically when no weights or bounds are
// set (TestUniformRequestMatchesLegacy). WeightedHillClimb stays
// optimal on hulls for any weights (TestWeightedHillClimbOptimal
// checks it against WeightedOptimalDP). Objective (MinMiss,
// WeightedMiss) names and scores the quantity being minimized.
package alloc
