package alloc

import (
	"strings"
	"testing"

	"talus/internal/curve"
)

func TestAllocatorValuesMatchFunctions(t *testing.T) {
	curves := []*curve.Curve{
		curve.MustNew([]curve.Point{{Size: 0, MPKI: 30}, {Size: 4096, MPKI: 2}}),
		curve.MustNew([]curve.Point{{Size: 0, MPKI: 12}, {Size: 2048, MPKI: 6}, {Size: 8192, MPKI: 1}}),
	}
	const total, granule = 8192, 128

	cases := []struct {
		a  Allocator
		fn func([]*curve.Curve, int64, int64) ([]int64, error)
	}{
		{HillClimbAllocator, HillClimb},
		{LookaheadAllocator, Lookahead},
		{OptimalDPAllocator, OptimalDP},
		{FairAllocator, func(c []*curve.Curve, tot, g int64) ([]int64, error) {
			return Fair(len(c), tot, g)
		}},
	}
	for _, tc := range cases {
		got, err := tc.a.Allocate(NewRequest(curves, total, granule))
		if err != nil {
			t.Fatalf("%s: %v", tc.a.Name(), err)
		}
		want, err := tc.fn(curves, total, granule)
		if err != nil {
			t.Fatalf("%s fn: %v", tc.a.Name(), err)
		}
		var sum int64
		for i := range got {
			sum += got[i]
			if got[i] != want[i] {
				t.Errorf("%s: Allocate %v != function %v", tc.a.Name(), got, want)
				break
			}
		}
		if sum != total {
			t.Errorf("%s: allocation %v does not spend the budget %d", tc.a.Name(), got, total)
		}
	}
}

func TestAllocatorByName(t *testing.T) {
	for name, want := range map[string]Allocator{
		"hill":      HillClimbAllocator,
		"hillclimb": HillClimbAllocator,
		"lookahead": LookaheadAllocator,
		"fair":      FairAllocator,
		"optimal":   OptimalDPAllocator,
		"dp":        OptimalDPAllocator,
	} {
		got, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if got.Name() != want.Name() {
			t.Errorf("ByName(%q) = %s, want %s", name, got.Name(), want.Name())
		}
	}
	// The error must teach the vocabulary, not just name the bad input.
	_, err := ByName("simulated-annealing")
	if err == nil {
		t.Fatal("unknown allocator name must error")
	}
	for _, want := range []string{"simulated-annealing", "fair", "hill", "lookahead", "optimal"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("ByName error %q does not mention %q", err, want)
		}
	}
}
