// Allocator: the common interface over the partitioning algorithms, so
// callers (the epoch simulator, the adaptive runtime, experiments) hold a
// pluggable policy value instead of switching on names at every
// reconfiguration.

package alloc

import (
	"fmt"

	"talus/internal/curve"
)

// Allocator divides a capacity budget among partitions based on their
// miss curves. Implementations must be pure (no state mutated by
// Allocate), so one Allocator value may be shared across goroutines and
// reconfiguration epochs.
type Allocator interface {
	// Name returns the allocator's canonical name (as accepted by ByName).
	Name() string
	// Allocate returns per-partition line counts summing to total,
	// allocated in multiples of granule (plus sub-granule residue).
	// Curves follow the conventions of this package: piecewise-linear
	// miss curves, one per partition.
	Allocate(curves []*curve.Curve, total, granule int64) ([]int64, error)
}

// allocatorFunc adapts a plain allocation function to the Allocator
// interface.
type allocatorFunc struct {
	name string
	fn   func(curves []*curve.Curve, total, granule int64) ([]int64, error)
}

func (a allocatorFunc) Name() string { return a.name }
func (a allocatorFunc) Allocate(curves []*curve.Curve, total, granule int64) ([]int64, error) {
	return a.fn(curves, total, granule)
}

// The package's algorithms as shared, stateless Allocator values.
var (
	// HillClimbAllocator is HillClimb: linear-time greedy, optimal on
	// convex (hulled) curves — the paper's allocator of choice under Talus.
	HillClimbAllocator Allocator = allocatorFunc{"hill", HillClimb}
	// LookaheadAllocator is UCP Lookahead: quadratic, copes with cliffs.
	LookaheadAllocator Allocator = allocatorFunc{"lookahead", Lookahead}
	// FairAllocator ignores the curves and returns equal shares.
	FairAllocator Allocator = allocatorFunc{"fair", func(curves []*curve.Curve, total, granule int64) ([]int64, error) {
		return Fair(len(curves), total, granule)
	}}
	// OptimalDPAllocator is the exact dynamic program (tests, ablations).
	OptimalDPAllocator Allocator = allocatorFunc{"optimal", OptimalDP}
)

// ByName resolves an allocator name ("hill", "lookahead", "fair",
// "optimal") to its shared Allocator value.
func ByName(name string) (Allocator, error) {
	switch name {
	case "hill", "hillclimb", "hill-climb":
		return HillClimbAllocator, nil
	case "lookahead":
		return LookaheadAllocator, nil
	case "fair":
		return FairAllocator, nil
	case "optimal", "dp", "optimal-dp":
		return OptimalDPAllocator, nil
	}
	return nil, fmt.Errorf("%w: unknown allocator %q (valid: fair, hill, lookahead, optimal)", ErrBadInput, name)
}
