// Allocator: the common interface over the partitioning algorithms, so
// callers (the epoch simulator, the adaptive runtime, experiments) hold a
// pluggable policy value instead of switching on names at every
// reconfiguration.

package alloc

import "fmt"

// Allocator divides a capacity budget among partitions based on their
// miss curves. Implementations must be pure (no state mutated by
// Allocate), so one Allocator value may be shared across goroutines and
// reconfiguration epochs.
type Allocator interface {
	// Name returns the allocator's canonical name (as accepted by ByName).
	Name() string
	// Allocate returns per-partition line counts summing to req.Total,
	// allocated in multiples of req.Granule (plus sub-granule residue),
	// honoring the request's weights, floors, and caps. A plain request
	// (curves, total, granule only) reproduces the legacy unweighted
	// algorithms exactly.
	Allocate(req Request) ([]int64, error)
}

// allocatorFunc adapts a plain allocation function to the Allocator
// interface.
type allocatorFunc struct {
	name string
	fn   func(req Request) ([]int64, error)
}

func (a allocatorFunc) Name() string { return a.name }
func (a allocatorFunc) Allocate(req Request) ([]int64, error) {
	return a.fn(req)
}

// The package's algorithms as shared, stateless Allocator values.
var (
	// HillClimbAllocator is WeightedHillClimb: linear-time greedy, optimal
	// on convex (hulled) curves — the paper's allocator of choice under
	// Talus. On a plain request it is exactly the legacy HillClimb.
	HillClimbAllocator Allocator = allocatorFunc{"hill", WeightedHillClimb}
	// LookaheadAllocator is WeightedLookahead: quadratic UCP Lookahead,
	// copes with cliffs.
	LookaheadAllocator Allocator = allocatorFunc{"lookahead", WeightedLookahead}
	// FairAllocator ignores the curves and splits proportionally to the
	// request's weights (equal shares when uniform).
	FairAllocator Allocator = allocatorFunc{"fair", WeightedFair}
	// OptimalDPAllocator is the exact dynamic program (tests, ablations).
	OptimalDPAllocator Allocator = allocatorFunc{"optimal", WeightedOptimalDP}
)

// ByName resolves an allocator name ("hill", "lookahead", "fair",
// "optimal") to its shared Allocator value. The "weighted-*" aliases
// name the same values: every allocator is weight-aware through its
// Request.
func ByName(name string) (Allocator, error) {
	switch name {
	case "hill", "hillclimb", "hill-climb", "weighted-hill":
		return HillClimbAllocator, nil
	case "lookahead", "weighted-lookahead":
		return LookaheadAllocator, nil
	case "fair", "weighted-fair":
		return FairAllocator, nil
	case "optimal", "dp", "optimal-dp", "weighted-optimal":
		return OptimalDPAllocator, nil
	}
	return nil, fmt.Errorf("%w: unknown allocator %q (valid: fair, hill, lookahead, optimal)", ErrBadInput, name)
}
