package cluster

import (
	"context"
	"fmt"
	"net/http"
	"time"
)

// ForwardedHeader marks a request as already forwarded once by a peer
// node. A node receiving it serves locally no matter what its own ring
// says: if two nodes momentarily disagree about membership, the worst
// case is one extra hop, never a forwarding loop.
const ForwardedHeader = "X-Talus-Forwarded"

// Config parameterizes New.
type Config struct {
	// Self is this node's own name in Nodes (typically host:port — the
	// address peers dial it at).
	Self string
	// Nodes is the full cluster membership, Self included.
	Nodes []string
	// VNodes is the virtual-node count per member (0 = DefaultVNodes).
	VNodes int
	// Seed seeds the ring's hashes; every node (and routing client)
	// must share it.
	Seed uint64
	// Timeout bounds one forwarded request (0 = DefaultTimeout).
	Timeout time.Duration
	// Retries bounds connection-error re-sends (negative =
	// DefaultRetries; 0 disables retrying).
	Retries int
}

// Cluster binds a Ring to this node's identity and the node-to-node
// Client: everything the serving layer's proxy mode needs to decide
// ownership and forward misses-of-ownership. Safe for concurrent use.
type Cluster struct {
	ring   *Ring
	self   string
	client *Client
}

// New validates cfg and builds the cluster view. Self must appear in
// Nodes — a proxy that is not a member would forward every request.
func New(cfg Config) (*Cluster, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VNodes, cfg.Seed)
	if err != nil {
		return nil, err
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: empty self node name")
	}
	found := false
	for _, n := range ring.nodes {
		if n == cfg.Self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the node list %v", cfg.Self, ring.nodes)
	}
	return &Cluster{ring: ring, self: cfg.Self, client: NewClient(cfg.Timeout, cfg.Retries)}, nil
}

// Self returns this node's own name.
func (c *Cluster) Self() string { return c.self }

// Ring returns the membership ring.
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the node owning (tenant, key).
func (c *Cluster) Owner(tenant, key string) string { return c.ring.Route(tenant, key) }

// Owns reports whether this node owns (tenant, key).
func (c *Cluster) Owns(tenant, key string) bool { return c.ring.Route(tenant, key) == c.self }

// Forward relays one request to node and returns its drained response.
// The ForwardedHeader is stamped on so the owner serves locally.
func (c *Cluster) Forward(ctx context.Context, method, node, path string, body []byte, hdr http.Header) (*Response, error) {
	fwd := make(http.Header, len(hdr)+1)
	for k, vs := range hdr {
		fwd[k] = vs
	}
	fwd.Set(ForwardedHeader, c.self)
	return c.client.Do(ctx, method, node, path, body, fwd)
}
