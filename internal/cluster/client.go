package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// errResponseStarted marks a failure after response headers arrived:
// the owner answered, so the attempt must not be replayed.
var errResponseStarted = errors.New("response started")

// Client defaults.
const (
	// DefaultTimeout bounds one forwarded request end to end (dial,
	// write, owner's handling, response read).
	DefaultTimeout = 2 * time.Second
	// DefaultRetries is how many times a request is re-sent after a
	// connection-level failure (so up to DefaultRetries+1 attempts).
	DefaultRetries = 2
	// DefaultMaxIdlePerHost sizes the keep-alive pool per peer node.
	// Proxy fan-out concentrates on few peers, so a deeper-than-stdlib
	// pool (2 by default) avoids re-dialing under concurrency.
	DefaultMaxIdlePerHost = 32
)

// Client is the node-to-node HTTP client: a shared keep-alive
// connection pool, a per-request timeout, and bounded retries on
// connection errors only. An HTTP response of any status — 5xx
// included — is a real answer from the owner and is never retried;
// retries fire only when no response was received at all (refused,
// reset, timed out before headers). Safe for concurrent use.
type Client struct {
	hc      *http.Client
	timeout time.Duration
	retries int
}

// NewClient builds a Client. Zero timeout and negative retries select
// DefaultTimeout and DefaultRetries; retries 0 disables retrying.
func NewClient(timeout time.Duration, retries int) *Client {
	if timeout <= 0 {
		timeout = DefaultTimeout
	}
	if retries < 0 {
		retries = DefaultRetries
	}
	tr := &http.Transport{
		MaxIdleConns:        4 * DefaultMaxIdlePerHost,
		MaxIdleConnsPerHost: DefaultMaxIdlePerHost,
		IdleConnTimeout:     90 * time.Second,
	}
	return &Client{hc: &http.Client{Transport: tr}, timeout: timeout, retries: retries}
}

// Response is a drained HTTP response: status, headers, and the full
// body. Proxy relaying needs the body in hand anyway (the caller's
// ResponseWriter wants a status before bytes), and draining keeps the
// keep-alive connection reusable.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
}

// Do sends one request to node (a host:port) and drains the response.
// method/path/body/hdr describe the request verbatim; hdr may be nil.
// Connection-level failures are retried up to the configured bound
// with the same body; any received response — including 5xx — is
// returned as-is, never retried.
func (c *Client) Do(ctx context.Context, method, node, path string, body []byte, hdr http.Header) (*Response, error) {
	url := "http://" + node + path
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		reqCtx, cancel := context.WithTimeout(ctx, c.timeout)
		resp, err := c.send(reqCtx, method, url, body, hdr)
		cancel()
		if err == nil {
			return resp, nil
		}
		lastErr = err
		// The parent context ending is the caller giving up, not the
		// node failing — do not burn retries against it. A response
		// that started and then died is an answered request: replaying
		// it could double-apply a non-idempotent write.
		if ctx.Err() != nil || errors.Is(err, errResponseStarted) {
			break
		}
	}
	return nil, fmt.Errorf("cluster: node %s unreachable after %d attempt(s): %w", node, c.retries+1, lastErr)
}

// send issues one attempt and drains it.
func (c *Client) send(ctx context.Context, method, url string, body []byte, hdr http.Header) (*Response, error) {
	var rd io.Reader
	if len(body) > 0 {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("reading response from %s: %v: %w", url, err, errResponseStarted)
	}
	return &Response{Status: resp.StatusCode, Header: resp.Header, Body: b}, nil
}
