package cluster

import (
	"errors"
	"fmt"
	"sort"

	"talus/internal/hash"
)

// DefaultVNodes is the virtual-node count per physical node when the
// caller does not choose one. 64 points per node keeps the relative
// spread of per-node key shares around 1/sqrt(64) ≈ 12% while ring
// construction stays trivially cheap (N·64 hashes, one sort).
const DefaultVNodes = 64

// ErrNoNodes reports a ring built from an empty node list.
var ErrNoNodes = errors.New("cluster: ring needs at least one node")

// ErrDuplicateNode reports the same node name listed twice.
var ErrDuplicateNode = errors.New("cluster: duplicate node")

// point is one virtual node on the hash circle.
type point struct {
	hash uint64
	node int32 // index into Ring.nodes
}

// Ring is an immutable consistent-hash ring: node names hashed onto
// the 64-bit circle at vnodes points each. Construction is pure and
// deterministic in (nodes, vnodes, seed) — node list order does not
// matter — so every process that shares the configuration computes
// identical ownership with no coordination. A Ring is safe for
// concurrent use.
type Ring struct {
	nodes  []string // sorted, unique
	vnodes int
	seed   uint64
	points []point // sorted by hash
}

// NewRing builds a ring over nodes with vnodes virtual nodes each
// (0 selects DefaultVNodes) and a deterministic seed. Node names must
// be non-empty and unique.
func NewRing(nodes []string, vnodes int, seed uint64) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, ErrNoNodes
	}
	if vnodes == 0 {
		vnodes = DefaultVNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: %d virtual nodes; need at least 1", vnodes)
	}
	sorted := make([]string, len(nodes))
	copy(sorted, nodes)
	sort.Strings(sorted)
	for i, n := range sorted {
		if n == "" {
			return nil, errors.New("cluster: empty node name")
		}
		if i > 0 && sorted[i-1] == n {
			return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, n)
		}
	}
	r := &Ring{nodes: sorted, vnodes: vnodes, seed: seed}
	r.points = make([]point, 0, len(sorted)*vnodes)
	for i, n := range sorted {
		base := fnv64a(n)
		for v := 0; v < vnodes; v++ {
			// Mix64 breaks FNV's avalanche-free tail: without it,
			// consecutive vnode indices land on near-consecutive hashes
			// and one node's points clump into one arc.
			h := hash.Mix64(base ^ hash.Mix64(seed+uint64(v)*0x9E3779B97F4A7C15))
			r.points = append(r.points, point{hash: h, node: int32(i)})
		}
	}
	// Ties (astronomically unlikely) break by node index so the sort —
	// and therefore ownership — is a pure function of the inputs.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// fnv64a is FNV-1a over s: the same stable, platform-independent hash
// family the store uses for key→line addresses.
func fnv64a(s string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// keyHash places (tenant, key) on the circle. Tenant and key are
// hashed separately before mixing, so no (tenant, key) concatenation
// ambiguity exists, and Mix64 destroys FNV's GF(2)-linear structure
// before the ring lookup.
func (r *Ring) keyHash(tenant, key string) uint64 {
	return hash.Mix64(fnv64a(tenant) ^ hash.Mix64(fnv64a(key)^r.seed))
}

// Route returns the node owning (tenant, key): the first ring point at
// or clockwise after the key's hash.
func (r *Ring) Route(tenant, key string) string {
	h := r.keyHash(tenant, key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point owns the top arc
	}
	return r.nodes[r.points[i].node]
}

// Nodes returns the ring's member names in sorted order (a copy).
func (r *Ring) Nodes() []string {
	out := make([]string, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// VNodes returns the virtual-node count per member.
func (r *Ring) VNodes() int { return r.vnodes }

// Seed returns the ring's deterministic seed.
func (r *Ring) Seed() uint64 { return r.seed }

// Shares returns each node's analytic share of the hash circle — the
// fraction of the 64-bit space its arcs cover, which is the expected
// fraction of uniformly hashed keys it owns. Shares sum to 1.
func (r *Ring) Shares() map[string]float64 {
	const twoTo64 = 1 << 63 * 2.0
	out := make(map[string]float64, len(r.nodes))
	if len(r.points) == 1 {
		// A single point owns the whole circle; the wrapping subtraction
		// below would call that arc zero.
		out[r.nodes[r.points[0].node]] = 1
		return out
	}
	arcs := make([]uint64, len(r.nodes))
	// Each point owns the arc from the previous point (exclusive) up to
	// itself (inclusive); uint64 wrap-around subtraction measures the
	// first point's arc across the circle's top correctly.
	prev := r.points[len(r.points)-1].hash
	for _, p := range r.points {
		arcs[p.node] += p.hash - prev
		prev = p.hash
	}
	for i, n := range r.nodes {
		out[n] = float64(arcs[i]) / twoTo64
	}
	return out
}
