// Package cluster is the distributed serving tier's routing layer: a
// consistent-hash ring over talus-serve nodes plus the HTTP client the
// thin proxy mode uses to forward requests to their owners.
//
// # Why a cluster tier at all
//
// Talus's whole point is that convexified miss curves make per-node
// cache performance smooth and predictable (no cliffs). That property
// pays off at fleet scale: when every node's hit ratio degrades
// gracefully with load, cross-node capacity planning becomes a simple
// sum instead of a cliff-hunting exercise. The ring makes the fleet
// addressable — every (tenant, key) pair has exactly one owner node —
// and the load harness (internal/loadgen) measures the result instead
// of asserting it.
//
// # The ring
//
// Ring hashes each node onto the 64-bit hash circle at VNodes points
// (virtual nodes; default DefaultVNodes). A key routes to the node
// owning the first point clockwise from the key's hash. Virtual nodes
// smooth the per-node key share toward 1/N (relative spread shrinks
// like 1/sqrt(VNodes)), and consistent hashing bounds churn: adding or
// removing one of N nodes remaps only the keys the changed node gains
// or loses — about K/N of K keys, never a full reshuffle.
// TestRingStability pins both properties.
//
// All hashing is seeded and pure (FNV-1a finalized by hash.Mix64 —
// the GF(2)-linear structure of the store's own key hash does not
// survive into ring placement), so two processes building a ring from
// the same node list, vnode count, and seed route every key
// identically. That determinism is what lets every node in a fleet —
// and every client — compute ownership locally with no coordination
// service. TestRingDeterminism pins the routing table bit-for-bit.
//
// # The client and proxy mode
//
// Client is the node-to-node HTTP client: one keep-alive connection
// pool shared across requests, a per-request timeout, and a bounded
// retry that fires only when no HTTP response was received (connection
// refused, reset, timeout mid-dial). A 5xx from the cache itself is
// NEVER retried — it is a real answer from the owner (a backend
// failure maps to 502), and retrying it would double traffic exactly
// when the fleet is least able to absorb it.
//
// Cluster binds a Ring to this node's own identity and a Client:
// serve.Handler asks Owns(tenant, key) on each cache request and
// forwards misses-of-ownership to Owner(tenant, key), relaying the
// owner's status, headers, and body verbatim. Forwarded requests carry
// the ForwardedHeader; a node receiving one serves locally no matter
// what its own ring says, so disagreeing ring configurations degrade
// to one extra hop instead of a forwarding loop.
package cluster
