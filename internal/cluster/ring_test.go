package cluster

import (
	"fmt"
	"sync"
	"testing"
)

// sampleKeys returns k deterministic (tenant, key) pairs spread over a
// few tenants.
func sampleKeys(k int) [][2]string {
	out := make([][2]string, k)
	for i := range out {
		out[i] = [2]string{fmt.Sprintf("tenant%d", i%5), fmt.Sprintf("key-%06d", i)}
	}
	return out
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:9000", i+1)
	}
	return out
}

// TestRingStability pins the consistent-hashing contract: removing one
// of N nodes only remaps keys that node owned (everything else stays
// put), adding a node only steals keys for itself, and the churn is
// ~K/N keys, bounded by 2K/N.
func TestRingStability(t *testing.T) {
	const K, N = 4000, 6
	nodes := nodeNames(N)
	keys := sampleKeys(K)

	full, err := NewRing(nodes, 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]string, K)
	for i, tk := range keys {
		owners[i] = full.Route(tk[0], tk[1])
	}

	// Remove each node in turn: survivors keep every key they owned.
	for drop := 0; drop < N; drop++ {
		var rest []string
		for i, n := range nodes {
			if i != drop {
				rest = append(rest, n)
			}
		}
		smaller, err := NewRing(rest, 64, 42)
		if err != nil {
			t.Fatal(err)
		}
		moved := 0
		for i, tk := range keys {
			now := smaller.Route(tk[0], tk[1])
			if owners[i] == nodes[drop] {
				moved++
				if now == nodes[drop] {
					t.Fatalf("key %v still routed to removed node %s", tk, nodes[drop])
				}
			} else if now != owners[i] {
				t.Fatalf("key %v moved %s → %s though %s was not removed",
					tk, owners[i], now, nodes[drop])
			}
		}
		if bound := 2 * K / N; moved > bound {
			t.Fatalf("removing %s moved %d of %d keys, want ≤ %d (~2K/N)", nodes[drop], moved, K, bound)
		}
	}

	// Add a node: only the newcomer gains keys, stealing ~K/(N+1).
	grown, err := NewRing(append(nodeNames(N), "10.0.0.200:9000"), 64, 42)
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for i, tk := range keys {
		now := grown.Route(tk[0], tk[1])
		if now == owners[i] {
			continue
		}
		if now != "10.0.0.200:9000" {
			t.Fatalf("key %v moved %s → %s, not to the added node", tk, owners[i], now)
		}
		stolen++
	}
	if bound := 2 * K / (N + 1); stolen > bound || stolen == 0 {
		t.Fatalf("added node stole %d of %d keys, want in (0, %d] (~2K/(N+1))", stolen, K, bound)
	}
}

// TestRingDeterminism pins that routing is a pure function of
// (nodes, vnodes, seed): node list order is irrelevant, rebuilt rings
// agree key for key, and the routing table matches a golden fingerprint
// so a ring built in another process — or another release — routes
// byte-identically.
func TestRingDeterminism(t *testing.T) {
	nodes := []string{"c:1", "a:1", "b:1"}
	r1, err := NewRing(nodes, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := NewRing([]string{"b:1", "c:1", "a:1"}, 32, 7)
	if err != nil {
		t.Fatal(err)
	}
	fp := uint64(14695981039346656037)
	for _, tk := range sampleKeys(1000) {
		o1, o2 := r1.Route(tk[0], tk[1]), r2.Route(tk[0], tk[1])
		if o1 != o2 {
			t.Fatalf("route(%v) differs across construction orders: %q vs %q", tk, o1, o2)
		}
		for i := 0; i < len(o1); i++ {
			fp = (fp ^ uint64(o1[i])) * 1099511628211
		}
	}
	// The golden fingerprint of the full routing table. If this changes,
	// ring placement changed: every deployed node must be upgraded in
	// lock-step, since mixed fleets would disagree about ownership.
	const golden = uint64(0x110b82f1075268a8)
	if fp != golden {
		t.Fatalf("routing-table fingerprint %#x, want %#x — ring placement changed", fp, golden)
	}
}

// TestRingShares pins that the analytic shares sum to 1 and sit near
// 1/N at the default vnode count.
func TestRingShares(t *testing.T) {
	const N = 5
	r, err := NewRing(nodeNames(N), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("VNodes() = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	sum := 0.0
	for n, share := range r.Shares() {
		sum += share
		if share < 0.5/N || share > 2.0/N {
			t.Fatalf("node %s share %.4f, want within [0.5/N, 2/N] of 1/N = %.4f", n, share, 1.0/N)
		}
	}
	if sum < 0.9999 || sum > 1.0001 {
		t.Fatalf("shares sum to %.6f, want 1", sum)
	}

	single, err := NewRing([]string{"solo:1"}, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s := single.Shares()["solo:1"]; s != 1 {
		t.Fatalf("single-point ring share = %v, want 1", s)
	}
}

// TestRingErrors pins construction validation.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing(nil, 4, 0); err == nil {
		t.Fatal("empty node list accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 4, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if _, err := NewRing([]string{"a:1", ""}, 4, 0); err == nil {
		t.Fatal("empty node name accepted")
	}
	if _, err := NewRing([]string{"a:1"}, -1, 0); err == nil {
		t.Fatal("negative vnodes accepted")
	}
	if _, err := New(Config{Self: "x:1", Nodes: []string{"a:1", "b:1"}}); err == nil {
		t.Fatal("self outside the node list accepted")
	}
	if _, err := New(Config{Nodes: []string{"a:1"}}); err == nil {
		t.Fatal("empty self accepted")
	}
}

// TestRingConcurrentRoute hammers Route and Shares from many
// goroutines under -race: the ring is immutable, so any write the
// detector sees is a bug.
func TestRingConcurrentRoute(t *testing.T) {
	r, err := NewRing(nodeNames(4), 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	keys := sampleKeys(512)
	want := make([]string, len(keys))
	for i, tk := range keys {
		want[i] = r.Route(tk[0], tk[1])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 50; rep++ {
				for i, tk := range keys {
					if got := r.Route(tk[0], tk[1]); got != want[i] {
						t.Errorf("concurrent Route(%v) = %q, want %q", tk, got, want[i])
						return
					}
				}
				r.Shares()
			}
		}()
	}
	wg.Wait()
}
