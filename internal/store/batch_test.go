package store_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"talus/internal/store"
)

// countingRecorder counts appends and remembers the order of addresses.
type countingRecorder struct {
	mu    sync.Mutex
	addrs []uint64
	parts []int
}

func (r *countingRecorder) Append(p int, addr uint64) error {
	r.mu.Lock()
	r.addrs = append(r.addrs, addr)
	r.parts = append(r.parts, p)
	r.mu.Unlock()
	return nil
}

// TestBatchedMatchesUnbatched pins the batcher's exactness contract at
// the store boundary: a sequential request stream through a batching
// store (each request flushes as a batch through the lane machinery)
// returns byte-identical hits, values, stats, recordings, allocations,
// and epochs to the same stream through a batching-disabled store at the
// same seed.
func TestBatchedMatchesUnbatched(t *testing.T) {
	direct := buildStore(t, 8192, 4, 2, store.Config{BatchSize: 1})
	batched := buildStore(t, 8192, 4, 2, store.Config{ForceBatching: true})
	recD, recB := &countingRecorder{}, &countingRecorder{}
	if err := direct.SetRecorder(recD); err != nil {
		t.Fatal(err)
	}
	if err := batched.SetRecorder(recB); err != nil {
		t.Fatal(err)
	}

	const ops = 1 << 16
	for i := 0; i < ops; i++ {
		tn := "a"
		if i%3 == 0 {
			tn = "b"
		}
		key := fmt.Sprintf("k%d", i%1500)
		if i%5 == 0 {
			hd, errD := direct.Set(tn, key, []byte(key))
			hb, errB := batched.Set(tn, key, []byte(key))
			if hd != hb || (errD == nil) != (errB == nil) {
				t.Fatalf("op %d: Set diverges: (%v,%v) vs (%v,%v)", i, hd, errD, hb, errB)
			}
			continue
		}
		vd, hd, errD := direct.Get(tn, key)
		vb, hb, errB := batched.Get(tn, key)
		if hd != hb || string(vd) != string(vb) || (errD == nil) != (errB == nil) {
			t.Fatalf("op %d: Get diverges: (%q,%v,%v) vs (%q,%v,%v)", i, vd, hd, errD, vb, hb, errB)
		}
	}

	for _, tn := range []string{"a", "b"} {
		sd, errD := direct.Stats(tn)
		sb, errB := batched.Stats(tn)
		if errD != nil || errB != nil {
			t.Fatal(errD, errB)
		}
		if sd != sb {
			t.Fatalf("tenant %s stats diverge:\n direct  %+v\n batched %+v", tn, sd, sb)
		}
	}
	if de, be := direct.Cache().Epochs(), batched.Cache().Epochs(); de != be || de == 0 {
		t.Fatalf("epochs diverge: direct %d, batched %d", de, be)
	}
	da, ba := direct.Cache().Allocations(), batched.Cache().Allocations()
	for p := range da {
		if da[p] != ba[p] {
			t.Fatalf("allocation %d diverges: direct %d, batched %d", p, da[p], ba[p])
		}
	}
	if len(recD.addrs) != len(recB.addrs) {
		t.Fatalf("recorded counts diverge: direct %d, batched %d", len(recD.addrs), len(recB.addrs))
	}
	for i := range recD.addrs {
		if recD.addrs[i] != recB.addrs[i] || recD.parts[i] != recB.parts[i] {
			t.Fatalf("record %d diverges: direct (%d,%#x), batched (%d,%#x)",
				i, recD.parts[i], recD.addrs[i], recB.parts[i], recB.addrs[i])
		}
	}
}

// TestBatchConcurrentExactness hammers one tenant's lane from many
// goroutines — real multi-op batches form — and checks that nothing is
// lost or double-counted: request counters, simulated outcomes, and the
// record hook all account for every access exactly once.
func TestBatchConcurrentExactness(t *testing.T) {
	s := buildStore(t, 8192, 4, 2, store.Config{BatchSize: 8, ForceBatching: true})
	rec := &countingRecorder{}
	if err := s.SetRecorder(rec); err != nil {
		t.Fatal(err)
	}

	workers := 2 * runtime.GOMAXPROCS(0)
	const perWorker = 4096
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", (w*perWorker+i)%512)
				if i%4 == 0 {
					if _, err := s.Set("hot", key, []byte("v")); err != nil {
						t.Error(err)
						return
					}
				} else if _, _, err := s.Get("hot", key); err != nil && !errors.Is(err, store.ErrNotFound) {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()

	total := int64(workers * perWorker)
	st, err := s.Stats("hot")
	if err != nil {
		t.Fatal(err)
	}
	if st.Gets+st.Sets != total {
		t.Fatalf("request counters: gets %d + sets %d != %d", st.Gets, st.Sets, total)
	}
	if st.CacheHits+st.CacheMisses != total {
		t.Fatalf("outcome counters: hits %d + misses %d != %d", st.CacheHits, st.CacheMisses, total)
	}
	if got := int64(len(rec.addrs)); got != total {
		t.Fatalf("recorded %d accesses, want %d", got, total)
	}
}

// TestBatchDeadlineFallback drives the deadline path: with a zero-ish
// deadline every parked request gives up almost immediately and falls
// back to the direct datapath, which must still count and serve exactly.
func TestBatchDeadlineFallback(t *testing.T) {
	s := buildStore(t, 8192, 2, 2, store.Config{BatchSize: 64, BatchDeadline: time.Nanosecond, ForceBatching: true})
	workers := 2 * runtime.GOMAXPROCS(0)
	const perWorker = 2048
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", i%128)
				if i%4 == 0 {
					s.Set("hot", key, []byte("v"))
				} else {
					s.Get("hot", key)
				}
			}
		}(w)
	}
	wg.Wait()
	st, err := s.Stats("hot")
	if err != nil {
		t.Fatal(err)
	}
	total := int64(workers * perWorker)
	if st.Gets+st.Sets != total || st.CacheHits+st.CacheMisses != total {
		t.Fatalf("deadline fallback lost accesses: %+v, want %d total", st, total)
	}
}
