package store

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"talus/internal/adaptive"
	"talus/internal/cache"
	"talus/internal/curve"
	"talus/internal/hull"
	"talus/internal/sim"
	"talus/internal/trace"
)

// Typed boundary errors. Handlers map these onto protocol status codes
// (the HTTP front-end turns ErrNotFound into 404, ErrValueTooLarge into
// 413, the rest of the request errors into 400).
var (
	// ErrEmptyTenant rejects requests with an empty tenant name.
	ErrEmptyTenant = errors.New("store: empty tenant")
	// ErrEmptyKey rejects requests with an empty key.
	ErrEmptyKey = errors.New("store: empty key")
	// ErrUnknownTenant reports a tenant that is not registered (and was
	// not auto-registered: lookups like Stats and Delete never register).
	ErrUnknownTenant = errors.New("store: unknown tenant")
	// ErrTenantCapacity reports that every logical partition already has
	// a tenant.
	ErrTenantCapacity = errors.New("store: all partitions have tenants")
	// ErrNotFound reports a key with no stored value.
	ErrNotFound = errors.New("store: key not found")
	// ErrValueTooLarge rejects values over Config.MaxValueBytes.
	ErrValueTooLarge = errors.New("store: value too large")
	// ErrNotRecording reports StopRecording without StartRecording.
	ErrNotRecording = errors.New("store: not recording")
	// ErrRecording reports StartRecording while already recording.
	ErrRecording = errors.New("store: already recording")
)

// Recorder consumes one record per cache access: the record hook the
// serving front-end uses to capture live traffic. *trace.Writer
// implements it. Appends are serialized by the store; implementations
// need not be goroutine-safe.
type Recorder interface {
	Append(p int, addr uint64) error
}

// Config parameterizes New.
type Config struct {
	// Tenants pre-registers tenant names onto partitions 0..len-1.
	Tenants []string
	// Static, when true, disables auto-registration: only pre-declared
	// tenants are served, and requests naming others fail with
	// ErrUnknownTenant.
	Static bool
	// MaxValueBytes caps Set value sizes; 0 means unlimited.
	MaxValueBytes int64
	// BatchSize caps how many in-flight accesses the per-tenant request
	// batcher coalesces into one AccessBatch flush. 0 selects
	// DefaultBatchSize; 1 disables batching, so every request drives the
	// datapath directly (the pre-batching behaviour).
	BatchSize int
	// BatchDeadline bounds how long a request may wait on the batcher
	// before falling back to a direct access. 0 selects
	// DefaultBatchDeadline; negative waits without bound.
	BatchDeadline time.Duration
}

// TenantStats reports one tenant's serving counters. CacheHits and
// CacheMisses count the simulated cache's outcomes over Get and Set
// accesses; Keys and Bytes describe the stored values.
type TenantStats struct {
	Tenant      string  `json:"tenant"`
	Partition   int     `json:"partition"`
	Gets        int64   `json:"gets"`
	Sets        int64   `json:"sets"`
	Deletes     int64   `json:"deletes"`
	CacheHits   int64   `json:"cacheHits"`
	CacheMisses int64   `json:"cacheMisses"`
	HitRatio    float64 `json:"hitRatio"` // CacheHits / (CacheHits+CacheMisses)
	Keys        int64   `json:"keys"`
	Bytes       int64   `json:"bytes"`
	AllocLines  int64   `json:"allocLines"` // current partition allocation
}

// tenant is one registered tenant: a logical partition, its value map,
// and its counters.
type tenant struct {
	name  string
	part  int
	space uint64 // sim.AppSpace(part), OR-ed onto every address

	lane lane // request batcher (see batch.go)

	mu    sync.RWMutex
	vals  map[string][]byte
	bytes int64

	gets, sets, deletes atomic.Int64
	hits, misses        atomic.Int64
}

// Store is the keyed serving layer. Construct with New (or the public
// builder talus.NewStore).
type Store struct {
	ac  *adaptive.Cache
	cfg Config

	batchSize     int           // max ops per coalesced flush; <=1 disables
	batchDeadline time.Duration // parked-request wait bound; <=0 unbounded

	mu      sync.RWMutex
	tenants map[string]*tenant
	byPart  []*tenant // partition index → tenant (nil while unclaimed)

	recording atomic.Bool // fast-path gate; truth lives under recMu
	recMu     sync.Mutex
	rec       Recorder
	recW      *trace.Writer // non-nil only for file-backed recording
	recF      *os.File
	recErr    error
}

// New builds a Store over an adaptive cache, registering cfg.Tenants
// onto the first partitions. The cache's logical partition count bounds
// the tenant count.
func New(ac *adaptive.Cache, cfg Config) (*Store, error) {
	if len(cfg.Tenants) > ac.NumLogical() {
		return nil, fmt.Errorf("%w: %d tenants for %d partitions", ErrTenantCapacity, len(cfg.Tenants), ac.NumLogical())
	}
	s := &Store{
		ac:            ac,
		cfg:           cfg,
		batchSize:     cfg.BatchSize,
		batchDeadline: cfg.BatchDeadline,
		tenants:       make(map[string]*tenant, ac.NumLogical()),
		byPart:        make([]*tenant, ac.NumLogical()),
	}
	if s.batchSize == 0 {
		s.batchSize = DefaultBatchSize
	}
	if s.batchDeadline == 0 {
		s.batchDeadline = DefaultBatchDeadline
	}
	for _, name := range cfg.Tenants {
		if _, err := s.register(name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// hashKey maps a key to its 48-bit line address by FNV-1a: stable
// across processes and platforms, so traces recorded here replay
// anywhere. Bits 48–63 stay clear for the feeders' partition offsets.
func hashKey(key string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h & (1<<48 - 1)
}

// register claims the next free partition for name. Caller must NOT
// hold s.mu.
func (s *Store) register(name string) (*tenant, error) {
	if name == "" {
		return nil, ErrEmptyTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t, nil // raced with another registration of the same name
	}
	part := -1
	for p, t := range s.byPart {
		if t == nil {
			part = p
			break
		}
	}
	if part < 0 {
		return nil, fmt.Errorf("%w (%d)", ErrTenantCapacity, len(s.byPart))
	}
	t := &tenant{name: name, part: part, space: sim.AppSpace(part), vals: make(map[string][]byte)}
	s.tenants[name] = t
	s.byPart[part] = t
	return t, nil
}

// resolve returns the tenant for name, auto-registering it when allowed.
func (s *Store) resolve(name string, autoRegister bool) (*tenant, error) {
	if name == "" {
		return nil, ErrEmptyTenant
	}
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	if !autoRegister || s.cfg.Static {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return s.register(name)
}

// Get looks key up for tenant. It always performs one cache access
// (misses shape the miss curve exactly like a real cache's fill
// traffic) and returns the stored bytes, whether the simulated cache
// line hit, and ErrNotFound when the key holds no value. The returned
// slice is shared — callers must not modify it.
func (s *Store) Get(tenantName, key string) (value []byte, hit bool, err error) {
	if key == "" {
		return nil, false, ErrEmptyKey
	}
	t, err := s.resolve(tenantName, true)
	if err != nil {
		return nil, false, err
	}
	t.gets.Add(1)
	hit = s.access(t, hashKey(key))
	t.mu.RLock()
	value, ok := t.vals[key]
	t.mu.RUnlock()
	if !ok {
		return nil, hit, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return value, hit, nil
}

// Set stores value under (tenant, key), warming the key's cache line,
// and reports whether that line hit (i.e. the key's line was already
// resident). The value is copied.
func (s *Store) Set(tenantName, key string, value []byte) (hit bool, err error) {
	if key == "" {
		return false, ErrEmptyKey
	}
	if s.cfg.MaxValueBytes > 0 && int64(len(value)) > s.cfg.MaxValueBytes {
		return false, fmt.Errorf("%w: %d bytes (limit %d)", ErrValueTooLarge, len(value), s.cfg.MaxValueBytes)
	}
	t, err := s.resolve(tenantName, true)
	if err != nil {
		return false, err
	}
	t.sets.Add(1)
	hit = s.access(t, hashKey(key))
	cp := make([]byte, len(value))
	copy(cp, value)
	t.mu.Lock()
	t.bytes += int64(len(cp)) - int64(len(t.vals[key]))
	t.vals[key] = cp
	t.mu.Unlock()
	return hit, nil
}

// Delete removes (tenant, key), reporting whether a value existed. It
// generates no cache traffic (a delete is not a reuse) and never
// auto-registers tenants.
func (s *Store) Delete(tenantName, key string) (existed bool, err error) {
	if key == "" {
		return false, ErrEmptyKey
	}
	t, err := s.resolve(tenantName, false)
	if err != nil {
		return false, err
	}
	t.deletes.Add(1)
	t.mu.Lock()
	old, ok := t.vals[key]
	if ok {
		t.bytes -= int64(len(old))
		delete(t.vals, key)
	}
	t.mu.Unlock()
	return ok, nil
}

// Tenants returns the registered tenant names in partition order.
func (s *Store) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for _, t := range s.byPart {
		if t != nil {
			out = append(out, t.name)
		}
	}
	return out
}

// statsOf snapshots one tenant's counters.
func (s *Store) statsOf(t *tenant, allocs []int64) TenantStats {
	t.mu.RLock()
	keys, bytes := int64(len(t.vals)), t.bytes
	t.mu.RUnlock()
	st := TenantStats{
		Tenant:      t.name,
		Partition:   t.part,
		Gets:        t.gets.Load(),
		Sets:        t.sets.Load(),
		Deletes:     t.deletes.Load(),
		CacheHits:   t.hits.Load(),
		CacheMisses: t.misses.Load(),
		Keys:        keys,
		Bytes:       bytes,
	}
	if acc := st.CacheHits + st.CacheMisses; acc > 0 {
		st.HitRatio = float64(st.CacheHits) / float64(acc)
	}
	if t.part < len(allocs) {
		st.AllocLines = allocs[t.part]
	}
	return st
}

// Stats returns one tenant's serving counters.
func (s *Store) Stats(tenantName string) (TenantStats, error) {
	t, err := s.resolve(tenantName, false)
	if err != nil {
		return TenantStats{}, err
	}
	return s.statsOf(t, s.ac.Allocations()), nil
}

// StatsAll returns every registered tenant's counters, sorted by
// tenant name for stable output.
func (s *Store) StatsAll() []TenantStats {
	allocs := s.ac.Allocations()
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	out := make([]TenantStats, len(ts))
	for i, t := range ts {
		out[i] = s.statsOf(t, allocs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Curves returns tenant's live measured miss curve (misses per
// kilo-access, EWMA over recent epochs) and its lower convex hull —
// the curve Talus realizes for it. Both are nil before the first epoch
// with traffic.
func (s *Store) Curves(tenantName string) (measured, hulled *curve.Curve, err error) {
	t, err := s.resolve(tenantName, false)
	if err != nil {
		return nil, nil, err
	}
	measured = s.ac.Curve(t.part)
	if measured == nil {
		return nil, nil, nil
	}
	return measured, hull.Lower(measured), nil
}

// Cache exposes the underlying adaptive runtime (allocations, epochs,
// per-partition Talus configs).
func (s *Store) Cache() *adaptive.Cache { return s.ac }

// CacheStats returns router-level access counts when the inner cache
// tracks them (sharded caches do); ok reports availability.
func (s *Store) CacheStats() (st cache.Stats, ok bool) {
	if c, has := s.ac.Shadowed().Inner().(interface{ Stats() cache.Stats }); has {
		return c.Stats(), true
	}
	return cache.Stats{}, false
}

// SetRecorder installs (or, with nil, removes) the record hook: every
// subsequent Get/Set access is appended as (partition, raw address).
// Not valid while file-backed recording is active.
func (s *Store) SetRecorder(r Recorder) error {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	if s.recW != nil {
		return ErrRecording
	}
	s.rec = r
	s.recErr = nil
	s.recording.Store(r != nil)
	return nil
}

// StartRecording begins capturing front-end traffic to a trace file at
// path (gzip-compressed when gz), with registered tenant names embedded
// as per-partition metadata. The trace replays through
// sim.RunAdaptiveTraceFile against a cache built like this store's.
func (s *Store) StartRecording(path string, gz bool) error {
	metas := make([]trace.AppMeta, s.ac.NumLogical())
	s.mu.RLock()
	for p, t := range s.byPart {
		if t != nil {
			metas[p] = trace.AppMeta{Name: t.name}
		}
	}
	s.mu.RUnlock()

	s.recMu.Lock()
	defer s.recMu.Unlock()
	if s.rec != nil {
		return ErrRecording
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	opts := []trace.WriterOption{trace.WithApps(metas)}
	if gz {
		opts = append(opts, trace.WithGzip())
	}
	w, err := trace.NewWriter(f, s.ac.NumLogical(), opts...)
	if err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	s.rec, s.recW, s.recF, s.recErr = w, w, f, nil
	s.recording.Store(true)
	return nil
}

// StopRecording flushes and closes the current file-backed recording,
// returning the number of records captured (or the first append error).
func (s *Store) StopRecording() (int64, error) {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	if s.recW == nil {
		return 0, ErrNotRecording
	}
	count := s.recW.Count()
	err := s.recErr
	if cerr := s.recW.Close(); err == nil {
		err = cerr
	}
	if cerr := s.recF.Close(); err == nil {
		err = cerr
	}
	s.rec, s.recW, s.recF, s.recErr = nil, nil, nil, nil
	s.recording.Store(false)
	return count, err
}

// Recording reports whether a record hook is currently attached.
func (s *Store) Recording() bool { return s.recording.Load() }

// Close stops any active recording and shuts down the adaptive cache's
// background epoch ticker. The store rejects nothing after Close — it
// simply stops recording and reconfiguring on wall-clock time.
func (s *Store) Close() error {
	s.recMu.Lock()
	needStop := s.recW != nil
	s.recMu.Unlock()
	var err error
	if needStop {
		_, err = s.StopRecording()
	}
	if cerr := s.ac.Close(); err == nil {
		err = cerr
	}
	return err
}
