package store

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"talus/internal/adaptive"
	"talus/internal/bypass"
	"talus/internal/cache"
	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/hull"
	"talus/internal/sim"
	"talus/internal/trace"
)

// Typed boundary errors. Handlers map these onto protocol status codes
// (the HTTP front-end turns ErrNotFound into 404, ErrValueTooLarge into
// 413, the rest of the request errors into 400).
var (
	// ErrEmptyTenant rejects requests with an empty tenant name.
	ErrEmptyTenant = errors.New("store: empty tenant")
	// ErrEmptyKey rejects requests with an empty key.
	ErrEmptyKey = errors.New("store: empty key")
	// ErrUnknownTenant reports a tenant that is not registered (and was
	// not auto-registered: lookups like Stats and Delete never register).
	ErrUnknownTenant = errors.New("store: unknown tenant")
	// ErrTenantCapacity reports that every logical partition already has
	// a tenant.
	ErrTenantCapacity = errors.New("store: all partitions have tenants")
	// ErrNotFound reports a key with no stored value.
	ErrNotFound = errors.New("store: key not found")
	// ErrValueTooLarge rejects values over Config.MaxValueBytes.
	ErrValueTooLarge = errors.New("store: value too large")
	// ErrNotRecording reports StopRecording without StartRecording.
	ErrNotRecording = errors.New("store: not recording")
	// ErrRecording reports StartRecording while already recording.
	ErrRecording = errors.New("store: already recording")
	// ErrClosed reports SetRecorder/StartRecording after Close.
	ErrClosed = errors.New("store: closed")
	// ErrNoEviction reports a bounded configuration (MaxBytes or Backend)
	// over a cache stack that cannot deliver eviction notifications:
	// without them evicted lines would strand their value bytes and the
	// bound could not be honored.
	ErrNoEviction = errors.New("store: cache stack does not support eviction notification")
	// ErrBadTTL rejects a negative per-entry TTL.
	ErrBadTTL = errors.New("store: negative ttl")
)

// addrMask keeps the 48 address bits hashKey produces; bits 48+ carry
// the per-partition feeder offsets (sim.AppSpace) the datapath ORs on.
const addrMask = 1<<48 - 1

// admitEvery is how many Sets a tenant performs between refreshes of
// its admission rate from the live miss curve (see refreshAdmit).
const admitEvery = 1024

// Recorder consumes one record per cache access: the record hook the
// serving front-end uses to capture live traffic. *trace.Writer
// implements it. Appends are serialized by the store; implementations
// need not be goroutine-safe.
type Recorder interface {
	Append(p int, addr uint64) error
}

// Config parameterizes New.
type Config struct {
	// Tenants pre-registers tenant names onto partitions 0..len-1.
	Tenants []string
	// Static, when true, disables auto-registration: only pre-declared
	// tenants are served, and requests naming others fail with
	// ErrUnknownTenant.
	Static bool
	// MaxValueBytes caps Set value sizes; 0 means unlimited.
	MaxValueBytes int64
	// BatchSize caps how many in-flight accesses the per-tenant request
	// batcher coalesces into one AccessBatch flush. 0 selects
	// DefaultBatchSize; 1 disables batching, so every request drives the
	// datapath directly (the pre-batching behaviour).
	BatchSize int
	// BatchDeadline bounds how long a request may wait on the batcher
	// before falling back to a direct access. 0 selects
	// DefaultBatchDeadline; negative waits without bound.
	BatchDeadline time.Duration
	// ForceBatching keeps the request batcher engaged even where the
	// store would bypass it as pure overhead — a single-P runtime
	// (GOMAXPROCS=1 at construction), where requests cannot overlap so
	// every batch would be a batch of one. Tests that pin batching
	// semantics set this; servers should leave it false.
	ForceBatching bool
	// MaxBytes bounds the total value bytes held across all tenants;
	// 0 means unbounded (the pre-bounded system-of-record behaviour).
	// A positive bound turns on bounded mode: value lifetime couples to
	// simulated-line residency (evicted lines release their values) and
	// Sets pass a Talus-managed admission gate.
	MaxBytes int64
	// Backend, when non-nil, is the backing tier: Sets write through to
	// it and a Get whose value is gone (evicted, or never admitted)
	// reads through and re-admits. A Backend also turns on bounded mode.
	Backend Backend
	// MaxTenants caps how many tenants may ever register (pre-declared
	// plus auto-registered); 0 bounds them only by the partition count.
	MaxTenants int
	// Weights gives tenants objective weights in the allocator's Request
	// (see alloc.Request.Weights): a weight-4 tenant's saved miss counts
	// four times a weight-1 tenant's. Applied when the named tenant
	// registers (at New for pre-declared tenants, at first Set for
	// auto-registered ones); tenants not named weigh 1. Adjustable at
	// runtime via SetTenantWeight.
	Weights map[string]float64
	// LineBounds gives tenants per-partition allocation floors and caps
	// in cache lines (see alloc.Request.MinLines/MaxLines), applied like
	// Weights when the named tenant registers. A zero Max means
	// unbounded.
	LineBounds map[string]LineBounds
	// DefaultTTL is the expiry applied to Sets that do not carry their
	// own TTL (see SetTTL); 0 means values never expire by time. Expiry
	// is lazy: an expired value is released on the Get that discovers
	// it, and its simulated line is invalidated like a Delete's.
	DefaultTTL time.Duration
	// NodeID names this store instance for cluster attribution
	// (/v1/stats node block, X-Talus-Node). Empty derives
	// "<hostname>-<pid>".
	NodeID string
}

// NodeStats identifies this store instance: the node block cluster
// clients and the load harness use to attribute traffic per node.
type NodeStats struct {
	ID         string    `json:"id"`
	PID        int       `json:"pid"`
	StartTime  time.Time `json:"start_time"`
	GoMaxProcs int       `json:"gomaxprocs"`
}

// LineBounds is one tenant's allocation floor and cap in cache lines.
type LineBounds struct {
	Min int64 `json:"min"`
	Max int64 `json:"max"` // 0 = unbounded
}

// TenantStats reports one tenant's serving counters. CacheHits and
// CacheMisses count the simulated cache's outcomes over Get and Set
// accesses; Keys and Bytes describe the stored values.
type TenantStats struct {
	Tenant      string  `json:"tenant"`
	Partition   int     `json:"partition"`
	Gets        int64   `json:"gets"`
	Sets        int64   `json:"sets"`
	Deletes     int64   `json:"deletes"`
	CacheHits   int64   `json:"cacheHits"`
	CacheMisses int64   `json:"cacheMisses"`
	HitRatio    float64 `json:"hitRatio"` // CacheHits / (CacheHits+CacheMisses)
	Keys        int64   `json:"keys"`
	Bytes       int64   `json:"bytes"`
	AllocLines  int64   `json:"alloc_lines"` // current partition allocation

	// Expirations counts values released by per-entry TTL expiry
	// (discovered lazily on Get; zero when no TTLs are in use).
	Expirations int64 `json:"expirations"`

	// Bounded-mode counters (zero when the store is unbounded).
	Evictions   int64   `json:"evictions"`   // values released by line eviction
	AdmitDrops  int64   `json:"admitDrops"`  // values refused by admission (gate or byte cap)
	AdmitRho    float64 `json:"admitRho"`    // current admitted fraction (1 = admit all)
	BackendGets int64   `json:"backendGets"` // read-through fetches attempted
	BackendSets int64   `json:"backendSets"` // write-through stores performed
}

// tenant is one registered tenant: a logical partition, its value map,
// and its counters.
type tenant struct {
	name  string
	part  int
	space uint64 // sim.AppSpace(part), OR-ed onto every address

	lane lane // request batcher (see batch.go)

	mu     sync.RWMutex
	vals   map[string][]byte
	bytes  int64
	byAddr map[uint64][]string // bounded mode: 48-bit line addr → keys on that line
	exp    map[string]int64    // per-entry expiry deadline (unix nanos); nil until a TTL lands

	admit *hash.Sampler // bounded mode: Talus-managed admission gate

	gets, sets, deletes atomic.Int64
	hits, misses        atomic.Int64

	admitClock                                      atomic.Int64 // sets since the last admission-rate refresh
	evictions, admitDrops, backendGets, backendSets atomic.Int64
	expirations                                     atomic.Int64
}

// Store is the keyed serving layer. Construct with New (or the public
// builder talus.NewStore).
type Store struct {
	ac  *adaptive.Cache
	cfg Config

	batchSize     int           // max ops per coalesced flush; <=1 disables
	batchDeadline time.Duration // parked-request wait bound; <=0 unbounded
	noBatch       bool          // batching resolved off (BatchSize<=1 or single-P)
	flushPool     sync.Pool     // *flushScratch, combiner working sets

	bounded    bool    // value lifetime coupled to line residency
	maxBytes   int64   // global value-byte bound; 0 = none
	backend    Backend // backing tier; nil = none
	maxTenants int     // registration cap; 0 = partition count only
	defaultTTL time.Duration

	node NodeStats        // this instance's identity (cluster attribution)
	now  func() time.Time // clock; replaceable for TTL tests (SetNow)

	bytesTotal atomic.Int64 // value bytes across all tenants (all modes)

	mu      sync.RWMutex
	tenants map[string]*tenant
	byPart  []*tenant // partition index → tenant (nil while unclaimed)

	recording atomic.Bool // fast-path gate; truth lives under recMu
	recMu     sync.Mutex
	rec       Recorder
	recW      *trace.Writer // non-nil only for file-backed recording
	recF      *os.File
	recErr    error
	closed    bool // Close ran; recorder installation is refused
}

// New builds a Store over an adaptive cache, registering cfg.Tenants
// onto the first partitions. The cache's logical partition count bounds
// the tenant count. A positive MaxBytes or a non-nil Backend selects
// bounded mode, which requires the cache stack to support eviction
// notification (every stack sim.BuildAdaptiveCache builds does);
// otherwise New fails with ErrNoEviction.
func New(ac *adaptive.Cache, cfg Config) (*Store, error) {
	if len(cfg.Tenants) > ac.NumLogical() {
		return nil, fmt.Errorf("%w: %d tenants for %d partitions", ErrTenantCapacity, len(cfg.Tenants), ac.NumLogical())
	}
	if cfg.MaxTenants > 0 && len(cfg.Tenants) > cfg.MaxTenants {
		return nil, fmt.Errorf("%w: %d tenants pre-declared with MaxTenants %d", ErrTenantCapacity, len(cfg.Tenants), cfg.MaxTenants)
	}
	s := &Store{
		ac:            ac,
		cfg:           cfg,
		batchSize:     cfg.BatchSize,
		batchDeadline: cfg.BatchDeadline,
		bounded:       cfg.MaxBytes > 0 || cfg.Backend != nil,
		maxBytes:      cfg.MaxBytes,
		backend:       cfg.Backend,
		maxTenants:    cfg.MaxTenants,
		defaultTTL:    cfg.DefaultTTL,
		now:           time.Now,
		tenants:       make(map[string]*tenant, ac.NumLogical()),
		byPart:        make([]*tenant, ac.NumLogical()),
	}
	if cfg.DefaultTTL < 0 {
		return nil, fmt.Errorf("%w: default ttl %s", ErrBadTTL, cfg.DefaultTTL)
	}
	s.node = NodeStats{ID: cfg.NodeID, PID: os.Getpid(), StartTime: time.Now(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	if s.node.ID == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "node"
		}
		s.node.ID = fmt.Sprintf("%s-%d", host, s.node.PID)
	}
	if s.batchSize == 0 {
		s.batchSize = DefaultBatchSize
	}
	if s.batchDeadline == 0 {
		s.batchDeadline = DefaultBatchDeadline
	}
	// Resolve the batching decision once: GOMAXPROCS(0) takes the
	// scheduler lock, so it must never be consulted per request. On a
	// single-P runtime requests cannot overlap, so group commit can only
	// add latency — bypass it unless explicitly forced.
	s.noBatch = s.batchSize <= 1 || (!cfg.ForceBatching && runtime.GOMAXPROCS(0) == 1)
	s.flushPool.New = func() any {
		return &flushScratch{
			chunk: make([]*batchOp, 0, s.batchSize),
			addrs: make([]uint64, 0, s.batchSize),
			hits:  make([]bool, s.batchSize),
		}
	}
	// Validate the per-tenant control settings up front: a bad weight
	// must fail construction, not the unlucky auto-registering Set that
	// would otherwise trip over it later.
	for name, w := range cfg.Weights {
		if name == "" {
			return nil, fmt.Errorf("%w: weight for empty tenant name", ErrEmptyTenant)
		}
		if w < 0 || w != w || w-w != 0 { // negative, NaN, or ±Inf
			return nil, fmt.Errorf("store: weight %g for tenant %q (need finite, non-negative)", w, name)
		}
	}
	for name, b := range cfg.LineBounds {
		if name == "" {
			return nil, fmt.Errorf("%w: line bounds for empty tenant name", ErrEmptyTenant)
		}
		if b.Min < 0 || b.Max < 0 || (b.Max > 0 && b.Max < b.Min) {
			return nil, fmt.Errorf("store: bad line bounds [%d, %d] for tenant %q", b.Min, b.Max, name)
		}
	}
	// Serving traffic is concurrent by nature: switch the cache stack
	// into lock-free hit mode where the policy and scheme allow it.
	// (Stacks that refuse — RRIP policies, set partitioning — simply
	// keep taking shard locks; either way the datapath is correct.)
	ac.EnableSharedHits()
	if s.bounded && !ac.SetEvictHook(s.onEvict) {
		return nil, ErrNoEviction
	}
	for _, name := range cfg.Tenants {
		if _, err := s.register(name); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Bounded reports whether value lifetime is coupled to simulated-line
// residency (MaxBytes or a Backend was configured).
func (s *Store) Bounded() bool { return s.bounded }

// MaxBytes returns the configured global value-byte bound (0 = none).
func (s *Store) MaxBytes() int64 { return s.maxBytes }

// Bytes returns the value bytes currently held across all tenants. In
// bounded mode it never exceeds MaxBytes (when one is set).
func (s *Store) Bytes() int64 { return s.bytesTotal.Load() }

// Backend returns the configured backing tier (nil when none).
func (s *Store) Backend() Backend { return s.backend }

// Node returns this instance's identity block: the id, start time, and
// GOMAXPROCS that /v1/stats serves and cluster clients use to
// attribute traffic per node.
func (s *Store) Node() NodeStats { return s.node }

// SetNow replaces the store's clock. A test hook for TTL expiry — call
// it before serving traffic; it is not synchronized with the datapath.
func (s *Store) SetNow(now func() time.Time) { s.now = now }

// onEvict is the cache stack's eviction hook: line (part, addr) was
// evicted, so every value stored on that line dies with it — the next
// Get for those keys is a true miss (served through the Backend when
// one is configured). Runs on the accessing goroutine with a shard
// lock held, so it only touches store/tenant state, never the cache.
func (s *Store) onEvict(part int, addr uint64) {
	s.mu.RLock()
	var t *tenant
	if part >= 0 && part < len(s.byPart) {
		t = s.byPart[part]
	}
	s.mu.RUnlock()
	if t == nil {
		return
	}
	line := addr & addrMask // strip the feeder's partition-space bits
	t.mu.Lock()
	keys := t.byAddr[line]
	if len(keys) > 0 {
		delete(t.byAddr, line)
		for _, k := range keys {
			if v, ok := t.vals[k]; ok {
				t.bytes -= int64(len(v))
				s.bytesTotal.Add(-int64(len(v)))
				delete(t.vals, k)
				if t.exp != nil {
					delete(t.exp, k)
				}
				t.evictions.Add(1)
			}
		}
	}
	t.mu.Unlock()
}

// hashKey maps a key to its 48-bit line address by FNV-1a: stable
// across processes and platforms, so traces recorded here replay
// anywhere. Bits 48–63 stay clear for the feeders' partition offsets.
func hashKey(key string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h & (1<<48 - 1)
}

// register claims the next free partition for name. Caller must NOT
// hold s.mu.
func (s *Store) register(name string) (*tenant, error) {
	if name == "" {
		return nil, ErrEmptyTenant
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if t, ok := s.tenants[name]; ok {
		return t, nil // raced with another registration of the same name
	}
	if s.maxTenants > 0 && len(s.tenants) >= s.maxTenants {
		return nil, fmt.Errorf("%w: tenant cap %d reached", ErrTenantCapacity, s.maxTenants)
	}
	part := -1
	for p, t := range s.byPart {
		if t == nil {
			part = p
			break
		}
	}
	if part < 0 {
		return nil, fmt.Errorf("%w (%d)", ErrTenantCapacity, len(s.byPart))
	}
	t := &tenant{name: name, part: part, space: sim.AppSpace(part), vals: make(map[string][]byte)}
	if s.bounded {
		t.byAddr = make(map[uint64][]string)
		// Deterministic per-partition seed: admission decisions replay
		// identically across runs and across batched/unbatched stores.
		t.admit = hash.NewSampler(0xAD417 ^ uint64(part)*0x9E3779B97F4A7C15)
	}
	// Thread the tenant's configured control settings into the claimed
	// partition. Values were validated at New; a tenant without entries
	// leaves the allocator's Request untouched (uniform objective).
	if w, ok := s.cfg.Weights[name]; ok {
		if err := s.ac.SetWeight(part, w); err != nil {
			return nil, err
		}
	}
	if b, ok := s.cfg.LineBounds[name]; ok {
		if err := s.ac.SetPartitionLines(part, b.Min, b.Max); err != nil {
			return nil, err
		}
	}
	s.tenants[name] = t
	s.byPart[part] = t
	return t, nil
}

// resolve returns the tenant for name, auto-registering it when allowed.
func (s *Store) resolve(name string, autoRegister bool) (*tenant, error) {
	if name == "" {
		return nil, ErrEmptyTenant
	}
	s.mu.RLock()
	t := s.tenants[name]
	s.mu.RUnlock()
	if t != nil {
		return t, nil
	}
	if !autoRegister || s.cfg.Static {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTenant, name)
	}
	return s.register(name)
}

// Get looks key up for tenant. It always performs one cache access
// (misses shape the miss curve exactly like a real cache's fill
// traffic) and returns the stored bytes, whether the simulated cache
// line hit, and ErrNotFound when the key holds no value. A pure lookup
// never registers a tenant: naming an unknown one fails with
// ErrUnknownTenant (tenants are minted by Set). A value whose TTL has
// passed is expired lazily here: its bytes are released, its simulated
// line invalidated (a dead key must not linger as phantom residency),
// and the Get proceeds as a value miss. In bounded mode with a
// Backend, a value miss (evicted, expired, or never admitted) reads
// through the Backend and re-admits under the admission rules. The
// returned slice is shared — callers must not modify it.
func (s *Store) Get(tenantName, key string) (value []byte, hit bool, err error) {
	if key == "" {
		return nil, false, ErrEmptyKey
	}
	t, err := s.resolve(tenantName, false)
	if err != nil {
		return nil, false, err
	}
	t.gets.Add(1)
	addr := hashKey(key)
	hit = s.access(t, addr)
	t.mu.RLock()
	value, ok := t.vals[key]
	expired := false
	if ok && t.exp != nil {
		if d, has := t.exp[key]; has && d <= s.now().UnixNano() {
			expired = true
		}
	}
	t.mu.RUnlock()
	if expired {
		s.expireValue(t, key, addr)
		// Re-read: a Set racing the expiry may have landed a fresh value
		// (with a fresh deadline) that must be served, not swallowed.
		t.mu.RLock()
		value, ok = t.vals[key]
		t.mu.RUnlock()
	}
	if ok {
		return value, hit, nil
	}
	if s.backend == nil {
		return nil, hit, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	// Read through: the value is gone locally (evicted, expired, never
	// admitted, or never written here) — fetch it from the backing tier
	// and re-admit it, paying the modeled backend cost this miss
	// represents. The re-admitted copy starts a fresh DefaultTTL (the
	// backend does not remember per-entry TTLs).
	t.backendGets.Add(1)
	v, berr := s.backend.Get(t.name, key)
	if berr != nil {
		if errors.Is(berr, ErrNotFound) {
			return nil, hit, fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return nil, hit, fmt.Errorf("%w: %v", ErrBackend, berr)
	}
	s.admitValue(t, key, addr, v, s.deadlineFor(0))
	return v, hit, nil
}

// deadlineFor converts a per-entry TTL into an absolute expiry
// deadline in unix nanos: 0 selects the configured DefaultTTL, and a
// zero result means "never expires".
func (s *Store) deadlineFor(ttl time.Duration) int64 {
	if ttl == 0 {
		ttl = s.defaultTTL
	}
	if ttl <= 0 {
		return 0
	}
	return s.now().Add(ttl).UnixNano()
}

// expireValue releases (t, key)'s value after its TTL passed: bytes
// freed, deadline cleared, expiry counted, and the simulated line
// invalidated (after t.mu is released — invalidation takes a shard
// lock, and the eviction hook takes t.mu while holding one, so the
// orders must never interleave). The deadline is re-checked under the
// lock: a racing Set may have refreshed the entry, in which case
// nothing is expired. Reports whether the value was released.
func (s *Store) expireValue(t *tenant, key string, addr uint64) bool {
	now := s.now().UnixNano()
	t.mu.Lock()
	d, has := t.exp[key]
	if !has || d > now {
		t.mu.Unlock()
		return false
	}
	if old, ok := t.vals[key]; ok {
		t.bytes -= int64(len(old))
		s.bytesTotal.Add(-int64(len(old)))
		delete(t.vals, key)
		t.dropAddrKeyLocked(addr, key)
	}
	delete(t.exp, key)
	t.expirations.Add(1)
	t.mu.Unlock()
	s.ac.Invalidate(addr|t.space, t.part)
	return true
}

// Set stores value under (tenant, key), warming the key's cache line,
// and reports whether that line hit (i.e. the key's line was already
// resident). The value is copied. In bounded mode the write goes
// through to the Backend first (when one is configured) and the cached
// copy is then subject to admission: the Talus-managed gate and the
// MaxBytes bound may decline to retain it (see admitValue), which is
// not an error — with a Backend the value is durable either way.
// The value expires after Config.DefaultTTL (never, when zero); use
// SetTTL for a per-entry TTL.
func (s *Store) Set(tenantName, key string, value []byte) (hit bool, err error) {
	return s.SetTTL(tenantName, key, value, 0)
}

// SetTTL is Set with a per-entry TTL: the value expires ttl after this
// write (lazily, on the Get that discovers it — see Get). ttl 0 defers
// to Config.DefaultTTL; negative is rejected with ErrBadTTL. A fresh
// Set always restarts the clock, and a Set without a TTL on a key that
// had one clears it.
func (s *Store) SetTTL(tenantName, key string, value []byte, ttl time.Duration) (hit bool, err error) {
	if key == "" {
		return false, ErrEmptyKey
	}
	if ttl < 0 {
		return false, fmt.Errorf("%w: %s", ErrBadTTL, ttl)
	}
	if s.cfg.MaxValueBytes > 0 && int64(len(value)) > s.cfg.MaxValueBytes {
		return false, fmt.Errorf("%w: %d bytes (limit %d)", ErrValueTooLarge, len(value), s.cfg.MaxValueBytes)
	}
	t, err := s.resolve(tenantName, true)
	if err != nil {
		return false, err
	}
	if s.backend != nil {
		if berr := s.backend.Set(tenantName, key, value); berr != nil {
			return false, fmt.Errorf("%w: %v", ErrBackend, berr)
		}
		t.backendSets.Add(1)
	}
	t.sets.Add(1)
	if s.bounded && t.admitClock.Add(1)%admitEvery == 0 {
		s.refreshAdmit(t)
	}
	addr := hashKey(key)
	hit = s.access(t, addr)
	cp := make([]byte, len(value))
	copy(cp, value)
	s.admitValue(t, key, addr, cp, s.deadlineFor(ttl))
	return hit, nil
}

// admitValue retains cp as (t, key)'s cached copy with the given
// expiry deadline (unix nanos; 0 = never), subject in bounded mode to
// the admission gate and the global byte bound. On rejection any stale
// cached copy is dropped (a newer backend value must never be shadowed
// by an older cached one) and the drop is counted. Reports whether the
// value was retained. Caller must not hold t.mu.
func (s *Store) admitValue(t *tenant, key string, addr uint64, cp []byte, deadline int64) bool {
	// The rho gate: the same H3-sampler mechanism Talus uses to split
	// shadow partitions here decides which lines are worth caching at
	// all — bypass.Optimal picks the admitted fraction (refreshAdmit),
	// the sampler realizes it deterministically per address.
	if s.bounded && s.maxBytes > 0 && !t.admit.ToAlpha(addr) {
		t.admitDrops.Add(1)
		s.dropValue(t, key, addr)
		return false
	}
	t.mu.Lock()
	old, had := t.vals[key]
	delta := int64(len(cp)) - int64(len(old))
	if s.maxBytes > 0 && delta > 0 {
		// Reserve-then-check keeps the bound exact under concurrency:
		// the Add is the reservation, rolled back when it overdraws.
		if s.bytesTotal.Add(delta) > s.maxBytes {
			s.bytesTotal.Add(-delta)
			if had {
				t.bytes -= int64(len(old))
				s.bytesTotal.Add(-int64(len(old)))
				delete(t.vals, key)
				t.dropAddrKeyLocked(addr, key)
				t.setDeadlineLocked(key, 0)
			}
			t.mu.Unlock()
			t.admitDrops.Add(1)
			return false
		}
	} else {
		s.bytesTotal.Add(delta)
	}
	t.bytes += delta
	t.vals[key] = cp
	if s.bounded && !had {
		t.byAddr[addr] = append(t.byAddr[addr], key)
	}
	t.setDeadlineLocked(key, deadline)
	t.mu.Unlock()
	return true
}

// setDeadlineLocked records key's expiry deadline (0 clears it — a
// fresh Set without a TTL must not inherit a stale one). Caller holds
// t.mu.
func (t *tenant) setDeadlineLocked(key string, deadline int64) {
	if deadline == 0 {
		if t.exp != nil {
			delete(t.exp, key)
		}
		return
	}
	if t.exp == nil {
		t.exp = make(map[string]int64)
	}
	t.exp[key] = deadline
}

// dropValue removes (t, key)'s cached copy, if any, releasing its bytes.
func (s *Store) dropValue(t *tenant, key string, addr uint64) {
	t.mu.Lock()
	if old, ok := t.vals[key]; ok {
		t.bytes -= int64(len(old))
		s.bytesTotal.Add(-int64(len(old)))
		delete(t.vals, key)
		t.dropAddrKeyLocked(addr, key)
	}
	t.setDeadlineLocked(key, 0)
	t.mu.Unlock()
}

// dropAddrKeyLocked unlinks key from the byAddr index. Caller holds
// t.mu; no-op in unbounded mode.
func (t *tenant) dropAddrKeyLocked(addr uint64, key string) {
	if t.byAddr == nil {
		return
	}
	keys := t.byAddr[addr]
	for i, k := range keys {
		if k == key {
			keys[i] = keys[len(keys)-1]
			keys = keys[:len(keys)-1]
			break
		}
	}
	if len(keys) == 0 {
		delete(t.byAddr, addr)
	} else {
		t.byAddr[addr] = keys
	}
}

// refreshAdmit reprograms t's admission rate from its live miss curve:
// bypass.Optimal (the paper's Eq. 6) finds the admitted fraction ρ that
// minimizes misses for a cache of t's byte budget — MaxBytes split
// pro rata by the allocator's current line allocations, converted to
// lines via the tenant's mean value size. Before the first epoch (no
// curve yet) the gate stays open (ρ = 1).
func (s *Store) refreshAdmit(t *tenant) {
	if s.maxBytes <= 0 {
		return
	}
	c := s.ac.Curve(t.part)
	if c == nil {
		return
	}
	allocs := s.ac.Allocations()
	if t.part >= len(allocs) {
		return
	}
	var sum int64
	for _, a := range allocs {
		sum += a
	}
	if sum <= 0 || allocs[t.part] <= 0 {
		return
	}
	budgetBytes := float64(s.maxBytes) * float64(allocs[t.part]) / float64(sum)
	t.mu.RLock()
	keys, bytes := len(t.vals), t.bytes
	t.mu.RUnlock()
	avg := 256.0 // before any residency, assume modest values
	if keys > 0 && bytes > 0 {
		avg = float64(bytes) / float64(keys)
	}
	budgetLines := budgetBytes / avg
	if budgetLines <= 0 {
		return
	}
	cfg, err := bypass.Optimal(c, budgetLines)
	if err != nil {
		return
	}
	t.admit.SetRate(cfg.Rho)
}

// Delete removes (tenant, key), reporting whether a cached value
// existed, and invalidates the key's simulated line so a dead key does
// not linger as phantom residency skewing hit ratios and miss curves.
// It generates no cache traffic (a delete is not a reuse) and never
// auto-registers tenants. With a Backend the delete goes through to it
// first; existed still reports the cached copy only (an evicted value
// deletes as existed=false even though the backend held it).
func (s *Store) Delete(tenantName, key string) (existed bool, err error) {
	if key == "" {
		return false, ErrEmptyKey
	}
	t, err := s.resolve(tenantName, false)
	if err != nil {
		return false, err
	}
	if s.backend != nil {
		if berr := s.backend.Delete(tenantName, key); berr != nil {
			return false, fmt.Errorf("%w: %v", ErrBackend, berr)
		}
	}
	t.deletes.Add(1)
	addr := hashKey(key)
	// Invalidate before touching t.mu: invalidation takes a shard lock,
	// and the eviction hook takes t.mu while holding one — taking them
	// in the opposite order here would deadlock.
	s.ac.Invalidate(addr|t.space, t.part)
	t.mu.Lock()
	old, ok := t.vals[key]
	if ok {
		t.bytes -= int64(len(old))
		s.bytesTotal.Add(-int64(len(old)))
		delete(t.vals, key)
		t.dropAddrKeyLocked(addr, key)
	}
	t.setDeadlineLocked(key, 0)
	t.mu.Unlock()
	return ok, nil
}

// Tenants returns the registered tenant names in partition order.
func (s *Store) Tenants() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.tenants))
	for _, t := range s.byPart {
		if t != nil {
			out = append(out, t.name)
		}
	}
	return out
}

// statsOf snapshots one tenant's counters.
func (s *Store) statsOf(t *tenant, allocs []int64) TenantStats {
	t.mu.RLock()
	keys, bytes := int64(len(t.vals)), t.bytes
	t.mu.RUnlock()
	st := TenantStats{
		Tenant:      t.name,
		Partition:   t.part,
		Gets:        t.gets.Load(),
		Sets:        t.sets.Load(),
		Deletes:     t.deletes.Load(),
		CacheHits:   t.hits.Load(),
		CacheMisses: t.misses.Load(),
		Keys:        keys,
		Bytes:       bytes,
		Expirations: t.expirations.Load(),
		Evictions:   t.evictions.Load(),
		AdmitDrops:  t.admitDrops.Load(),
		AdmitRho:    1,
		BackendGets: t.backendGets.Load(),
		BackendSets: t.backendSets.Load(),
	}
	if t.admit != nil {
		st.AdmitRho = t.admit.Rate()
	}
	if acc := st.CacheHits + st.CacheMisses; acc > 0 {
		st.HitRatio = float64(st.CacheHits) / float64(acc)
	}
	if t.part < len(allocs) {
		st.AllocLines = allocs[t.part]
	}
	return st
}

// Stats returns one tenant's serving counters.
func (s *Store) Stats(tenantName string) (TenantStats, error) {
	t, err := s.resolve(tenantName, false)
	if err != nil {
		return TenantStats{}, err
	}
	return s.statsOf(t, s.ac.Allocations()), nil
}

// StatsAll returns every registered tenant's counters, sorted by
// tenant name for stable output.
func (s *Store) StatsAll() []TenantStats {
	allocs := s.ac.Allocations()
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.tenants {
		ts = append(ts, t)
	}
	s.mu.RUnlock()
	out := make([]TenantStats, len(ts))
	for i, t := range ts {
		out[i] = s.statsOf(t, allocs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// Curves returns tenant's live measured miss curve (misses per
// kilo-access, EWMA over recent epochs) and its lower convex hull —
// the curve Talus realizes for it. Both are nil before the first epoch
// with traffic.
func (s *Store) Curves(tenantName string) (measured, hulled *curve.Curve, err error) {
	t, err := s.resolve(tenantName, false)
	if err != nil {
		return nil, nil, err
	}
	measured = s.ac.Curve(t.part)
	if measured == nil {
		return nil, nil, nil
	}
	return measured, hull.Lower(measured), nil
}

// SetTenantWeight adjusts a registered tenant's objective weight at
// runtime (see Config.Weights); the new weight takes effect at the next
// epoch's allocation. Never auto-registers: naming an unknown tenant
// fails with ErrUnknownTenant.
func (s *Store) SetTenantWeight(tenantName string, w float64) error {
	t, err := s.resolve(tenantName, false)
	if err != nil {
		return err
	}
	return s.ac.SetWeight(t.part, w)
}

// TenantControl is one tenant's row in the control-plane snapshot: its
// partition, live objective weight, configured line bounds, and current
// allocation.
type TenantControl struct {
	Tenant     string  `json:"tenant"`
	Partition  int     `json:"partition"`
	Weight     float64 `json:"weight"`
	MinLines   int64   `json:"min_lines,omitempty"`
	MaxLines   int64   `json:"max_lines,omitempty"`
	AllocLines int64   `json:"alloc_lines"`
}

// ControlState is the store's control-plane snapshot: the adaptive
// loop's controller state plus per-tenant weight/bounds/allocation rows
// (sorted by tenant name for stable output). Served at /v1/control.
type ControlState struct {
	adaptive.ControllerState
	Tenants []TenantControl `json:"tenants"`
}

// Control snapshots the control plane: epoch controller tunables, last
// churn measurement, and every registered tenant's weight and
// allocation.
func (s *Store) Control() ControlState {
	cs := ControlState{ControllerState: s.ac.Controller()}
	s.mu.RLock()
	ts := make([]*tenant, 0, len(s.tenants))
	for _, t := range s.byPart {
		if t != nil {
			ts = append(ts, t)
		}
	}
	s.mu.RUnlock()
	cs.Tenants = make([]TenantControl, 0, len(ts))
	for _, t := range ts {
		row := TenantControl{Tenant: t.name, Partition: t.part, Weight: 1}
		if cs.Weights != nil && t.part < len(cs.Weights) {
			row.Weight = cs.Weights[t.part]
		}
		if cs.MinLines != nil && t.part < len(cs.MinLines) {
			row.MinLines = cs.MinLines[t.part]
		}
		if cs.MaxLines != nil && t.part < len(cs.MaxLines) {
			row.MaxLines = cs.MaxLines[t.part]
		}
		if t.part < len(cs.Allocations) {
			row.AllocLines = cs.Allocations[t.part]
		}
		cs.Tenants = append(cs.Tenants, row)
	}
	sort.Slice(cs.Tenants, func(i, j int) bool { return cs.Tenants[i].Tenant < cs.Tenants[j].Tenant })
	return cs
}

// Cache exposes the underlying adaptive runtime (allocations, epochs,
// per-partition Talus configs).
func (s *Store) Cache() *adaptive.Cache { return s.ac }

// CacheStats returns router-level access counts when the inner cache
// tracks them (sharded caches do); ok reports availability.
func (s *Store) CacheStats() (st cache.Stats, ok bool) {
	if c, has := s.ac.Shadowed().Inner().(interface{ Stats() cache.Stats }); has {
		return c.Stats(), true
	}
	return cache.Stats{}, false
}

// SetRecorder installs (or, with nil, removes) the record hook: every
// subsequent Get/Set access is appended as (partition, raw address).
// Not valid while file-backed recording is active, nor after Close
// (ErrClosed) — a closed store must not spring back to life recording.
func (s *Store) SetRecorder(r Recorder) error {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.recW != nil {
		return ErrRecording
	}
	s.rec = r
	s.recErr = nil
	s.recording.Store(r != nil)
	return nil
}

// StartRecording begins capturing front-end traffic to a trace file at
// path (gzip-compressed when gz), with registered tenant names embedded
// as per-partition metadata. The trace replays through
// sim.RunAdaptiveTraceFile against a cache built like this store's.
func (s *Store) StartRecording(path string, gz bool) error {
	metas := make([]trace.AppMeta, s.ac.NumLogical())
	s.mu.RLock()
	for p, t := range s.byPart {
		if t != nil {
			metas[p] = trace.AppMeta{Name: t.name}
		}
	}
	s.mu.RUnlock()

	s.recMu.Lock()
	defer s.recMu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.rec != nil {
		return ErrRecording
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	opts := []trace.WriterOption{trace.WithApps(metas)}
	if gz {
		opts = append(opts, trace.WithGzip())
	}
	w, err := trace.NewWriter(f, s.ac.NumLogical(), opts...)
	if err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	s.rec, s.recW, s.recF, s.recErr = w, w, f, nil
	s.recording.Store(true)
	return nil
}

// StopRecording flushes and closes the current file-backed recording,
// returning the number of records captured (or the first append error).
func (s *Store) StopRecording() (int64, error) {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.stopRecordingLocked()
}

// stopRecordingLocked is StopRecording's body; caller holds recMu. A
// single teardown point shared with Close, so concurrent Close and
// StopRecording calls can never double-close the writer or the file.
func (s *Store) stopRecordingLocked() (int64, error) {
	if s.recW == nil {
		return 0, ErrNotRecording
	}
	count := s.recW.Count()
	err := s.recErr
	if cerr := s.recW.Close(); err == nil {
		err = cerr
	}
	if cerr := s.recF.Close(); err == nil {
		err = cerr
	}
	s.rec, s.recW, s.recF, s.recErr = nil, nil, nil, nil
	s.recording.Store(false)
	return count, err
}

// Recording reports whether a record hook is currently attached.
func (s *Store) Recording() bool { return s.recording.Load() }

// Close stops any active recording and shuts down the adaptive cache's
// background epoch ticker. Safe to call concurrently and repeatedly:
// the recorder teardown happens exactly once, under the same lock the
// datapath's record appends take, so an in-flight batched access either
// lands in the trace before the writer closes or is skipped cleanly —
// never appended to a closed writer. The Get/Set/Delete datapath stays
// usable after Close; only recorder installation is refused (ErrClosed).
func (s *Store) Close() error {
	s.recMu.Lock()
	var err error
	if !s.closed {
		s.closed = true
		if s.recW != nil {
			_, err = s.stopRecordingLocked()
		}
	}
	s.recMu.Unlock()
	if cerr := s.ac.Close(); err == nil {
		err = cerr
	}
	return err
}
