package store_test

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"

	"talus/internal/adaptive"
	"talus/internal/sim"
	"talus/internal/store"
	"talus/internal/trace"
)

// buildStore constructs a small serving stack: sharded inner cache,
// Talus runtime, control loop, keyed store.
func buildStore(t *testing.T, capacity int64, shards, partitions int, cfg store.Config) *store.Store {
	t.Helper()
	ac, err := sim.BuildAdaptiveCache("vantage", capacity, 16, shards, partitions, "LRU", 0.05,
		adaptive.Config{EpochAccesses: 1 << 14, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	s, err := store.New(ac, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{})

	// A pure lookup never mints a tenant: before alice's first Set she
	// does not exist (registration is a write-path privilege).
	if _, _, err := s.Get("alice", "k"); !errors.Is(err, store.ErrUnknownTenant) {
		t.Fatalf("get before set: %v, want ErrUnknownTenant", err)
	}
	if _, err := s.Set("alice", "k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	// Registered tenant, absent key: a plain value miss.
	if _, _, err := s.Get("alice", "nope"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("get absent key: %v, want ErrNotFound", err)
	}
	val, _, err := s.Get("alice", "k")
	if err != nil || string(val) != "v1" {
		t.Fatalf("get = %q, %v; want v1", val, err)
	}
	// Overwrite; the line is warm now, so the access should hit.
	hit, err := s.Set("alice", "k", []byte("v2"))
	if err != nil || !hit {
		t.Fatalf("overwrite hit = %v, %v; want warm line", hit, err)
	}
	if val, _, _ = s.Get("alice", "k"); string(val) != "v2" {
		t.Fatalf("after overwrite got %q", val)
	}
	// Tenants are namespaces: bob's "k" is a different line and value.
	if _, err := s.Set("bob", "other", []byte("w")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get("bob", "k"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("cross-tenant leak: %v", err)
	}
	existed, err := s.Delete("alice", "k")
	if err != nil || !existed {
		t.Fatalf("delete = %v, %v", existed, err)
	}
	if existed, _ = s.Delete("alice", "k"); existed {
		t.Fatal("double delete reported a value")
	}
	if _, _, err := s.Get("alice", "k"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("get after delete: %v", err)
	}
}

func TestStoreBoundaryErrors(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{Tenants: []string{"a"}, MaxValueBytes: 8})

	if _, _, err := s.Get("", "k"); !errors.Is(err, store.ErrEmptyTenant) {
		t.Fatalf("empty tenant: %v", err)
	}
	if _, _, err := s.Get("a", ""); !errors.Is(err, store.ErrEmptyKey) {
		t.Fatalf("empty key: %v", err)
	}
	if _, err := s.Set("", "k", nil); !errors.Is(err, store.ErrEmptyTenant) {
		t.Fatalf("set empty tenant: %v", err)
	}
	if _, err := s.Set("a", "", nil); !errors.Is(err, store.ErrEmptyKey) {
		t.Fatalf("set empty key: %v", err)
	}
	if _, err := s.Set("a", "k", []byte("123456789")); !errors.Is(err, store.ErrValueTooLarge) {
		t.Fatalf("oversized value: %v", err)
	}
	if _, err := s.Delete("nobody", "k"); !errors.Is(err, store.ErrUnknownTenant) {
		t.Fatalf("delete unknown tenant: %v", err)
	}
	if _, err := s.Stats("nobody"); !errors.Is(err, store.ErrUnknownTenant) {
		t.Fatalf("stats unknown tenant: %v", err)
	}
	// Two partitions: "a" is registered, one slot left. A third tenant
	// must be refused.
	if _, err := s.Set("b", "k", nil); err != nil {
		t.Fatalf("second tenant: %v", err)
	}
	if _, err := s.Set("c", "k", nil); !errors.Is(err, store.ErrTenantCapacity) {
		t.Fatalf("third tenant on two partitions: %v", err)
	}
}

func TestStoreStaticTenants(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{Tenants: []string{"a"}, Static: true})
	if _, err := s.Set("a", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Set("intruder", "k", nil); !errors.Is(err, store.ErrUnknownTenant) {
		t.Fatalf("static mode admitted a new tenant: %v", err)
	}
}

func TestStoreStatsAndCurves(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{Tenants: []string{"a", "b"}})
	for i := 0; i < 4096; i++ {
		key := fmt.Sprintf("k%d", i%512)
		if _, _, err := s.Get("a", key); errors.Is(err, store.ErrNotFound) {
			s.Set("a", key, []byte("value"))
		}
	}
	st, err := s.Stats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Gets != 4096 || st.Sets != 512 || st.Keys != 512 || st.Bytes != 512*5 {
		t.Fatalf("stats = %+v", st)
	}
	if st.CacheHits+st.CacheMisses != st.Gets+st.Sets {
		t.Fatalf("hit accounting: %+v", st)
	}
	if st.CacheHits == 0 {
		t.Fatal("a 512-key working set in an 8192-line cache never hit")
	}
	if got := len(s.StatsAll()); got != 2 {
		t.Fatalf("StatsAll returned %d tenants", got)
	}
	if names := s.Tenants(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("tenants = %v", names)
	}

	// Before any epoch: no curves. After forcing one: measured + hull.
	if m, h, err := s.Curves("b"); err != nil || m != nil || h != nil {
		t.Fatalf("idle tenant curves = %v, %v, %v", m, h, err)
	}
	if err := s.Cache().ForceEpoch(); err != nil {
		t.Fatal(err)
	}
	m, h, err := s.Curves("a")
	if err != nil || m == nil || h == nil {
		t.Fatalf("curves after epoch = %v, %v, %v", m, h, err)
	}
	if h.NumPoints() > m.NumPoints() {
		t.Fatalf("hull has %d points, measured %d", h.NumPoints(), m.NumPoints())
	}
}

// TestStoreRecordReplay is the acceptance criterion: traffic captured
// from the serving front-end replays through RunAdaptiveTraceFile
// without error, tenant names intact.
func TestStoreRecordReplay(t *testing.T) {
	const capacity = 8192
	s := buildStore(t, capacity, 1, 2, store.Config{Tenants: []string{"scan", "rand"}})
	path := filepath.Join(t.TempDir(), "front.trc")
	if err := s.StartRecording(path, true); err != nil {
		t.Fatal(err)
	}
	if err := s.StartRecording(path, true); !errors.Is(err, store.ErrRecording) {
		t.Fatalf("double start: %v", err)
	}
	var state uint64 = 1
	for i := 0; i < 1<<15; i++ {
		s.Set("scan", fmt.Sprintf("s%d", i%6144), []byte("x"))
		state = state*6364136223846793005 + 1442695040888963407
		s.Set("rand", fmt.Sprintf("r%d", (state>>33)%3000), []byte("y"))
	}
	count, err := s.StopRecording()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(2 << 15); count != want {
		t.Fatalf("recorded %d records, want %d", count, want)
	}
	if _, err := s.StopRecording(); !errors.Is(err, store.ErrNotRecording) {
		t.Fatalf("double stop: %v", err)
	}

	// The trace is self-describing: tenant names rode along.
	r, err := trace.OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr := r.Header()
	r.Close()
	if hdr.NumPartitions != 2 || hdr.Apps[0].Name != "scan" || hdr.Apps[1].Name != "rand" {
		t.Fatalf("header = %+v", hdr)
	}

	res, err := sim.RunAdaptiveTraceFile(sim.AdaptiveConfig{
		CapacityLines: capacity,
		EpochAccesses: 1 << 14,
		Seed:          21,
	}, path)
	if err != nil {
		t.Fatalf("replaying front-end trace: %v", err)
	}
	if res.Apps[0] != "scan" || res.Apps[1] != "rand" {
		t.Fatalf("replay apps = %v", res.Apps)
	}
	if res.Epochs == 0 {
		t.Fatal("replay drove no epochs")
	}
	for i, mr := range res.MissRatio {
		if mr <= 0 || mr >= 1 {
			t.Fatalf("partition %d replay miss ratio %v", i, mr)
		}
	}
}

// TestStoreConcurrentHammer drives concurrent Get/Set/Delete traffic
// across tenants from many goroutines (run under -race in CI) and then
// checks the books balance.
func TestStoreConcurrentHammer(t *testing.T) {
	const (
		goroutines = 8
		perG       = 4000
		tenantsN   = 4
	)
	s := buildStore(t, 16384, 4, tenantsN, store.Config{})

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", g%tenantsN)
			state := uint64(g)*0x9E3779B9 + 1
			for i := 0; i < perG; i++ {
				state = state*6364136223846793005 + 1442695040888963407
				key := fmt.Sprintf("k%d", (state>>33)%2048)
				switch i % 4 {
				case 0:
					if _, err := s.Set(tenant, key, []byte(key)); err != nil {
						panic(err)
					}
				case 3:
					if _, err := s.Delete(tenant, key); err != nil {
						panic(err)
					}
				default:
					if _, _, err := s.Get(tenant, key); err != nil && !errors.Is(err, store.ErrNotFound) {
						panic(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	var gets, sets, deletes, accesses int64
	for _, st := range s.StatsAll() {
		gets += st.Gets
		sets += st.Sets
		deletes += st.Deletes
		accesses += st.CacheHits + st.CacheMisses
		if st.Keys < 0 || st.Bytes < 0 {
			t.Fatalf("negative inventory: %+v", st)
		}
	}
	total := int64(goroutines * perG)
	if gets+sets+deletes != total {
		t.Fatalf("ops %d+%d+%d != %d", gets, sets, deletes, total)
	}
	// Gets and Sets access the cache; Deletes do not.
	if accesses != gets+sets {
		t.Fatalf("cache accesses %d, want %d", accesses, gets+sets)
	}
	cs, ok := s.CacheStats()
	if !ok || cs.Accesses != accesses {
		t.Fatalf("sharded stats %v (ok=%v), want %d accesses", cs, ok, accesses)
	}
}
