// Per-tenant request batching: the serving hot path's lock-amortization
// layer. Unbatched, every Get/Set pays the tenant's monitor-lane mutex,
// the monitor bank, and a shard lock once per request; the trace feeders
// long amortized all three via AccessBatch, and this file gives the
// request path the same economics.
//
// The mechanism is group commit (flat combining): each tenant owns a
// lane. A request that finds the lane idle becomes the combiner and
// flushes immediately — a batch of one, so sequential traffic pays no
// added latency. Requests that arrive while a flush is in flight park in
// the lane's FIFO queue; when the combiner finishes it hands the lane to
// the oldest parked request, which flushes everything queued behind it
// (itself included) as one AccessBatch of up to BatchSize accesses. Batch
// size therefore adapts to the instantaneous concurrency: batches of one
// when idle, full batches under load, never a timer-induced stall on the
// way in.
//
// The flush deadline is the tail-latency backstop: a parked request that
// has waited longer than BatchDeadline (an epoch reconfiguration can
// stall a flush for milliseconds) withdraws its slot from the queue and
// performs its access directly. The fallback takes the same datapath, so
// the access is still monitored, recorded, and counted exactly once.
//
// Exactness: queued ops flush in arrival order per tenant (an op that
// takes the deadline fallback leaves the queue and may overtake ops
// still parked — indistinguishable from it having raced them as a
// concurrent request), every access is recorded and counted exactly
// once, and a batch of k accesses is byte-identical to k sequential
// accesses at the same seed (adaptive.AccessBatch's contract), so
// batching changes scheduling, never results.
// TestBatchedMatchesUnbatched pins this.
package store

import (
	"sync"
	"sync/atomic"
	"time"
)

// Batcher defaults, chosen to sit well inside one epoch: at the default
// 2^20-access epoch, a 64-op batch still gives the control loop >16k
// clock advances per epoch, and 100µs is far above a normal flush (~µs)
// while far below a request timeout.
const (
	// DefaultBatchSize is the maximum number of in-flight accesses
	// coalesced into one AccessBatch flush.
	DefaultBatchSize = 64
	// DefaultBatchDeadline bounds how long a parked request waits on the
	// batcher before falling back to a direct access.
	DefaultBatchDeadline = 100 * time.Microsecond
)

// opMsg is the single message a parked op receives.
type opMsg uint8

const (
	opDone opMsg = iota // flushed: op.hit is valid
	opLead              // promoted: the receiver is now the lane's combiner
)

// batchOp is one request's slot in a tenant lane. Ops are pooled; the
// message channel is buffered so the combiner never blocks delivering,
// and each parking cycle sends exactly one message (opDone xor opLead).
type batchOp struct {
	addr  uint64
	hit   bool
	msg   chan opMsg
	timer *time.Timer // lazily armed deadline, reused across parkings
}

var opPool = sync.Pool{New: func() any {
	return &batchOp{msg: make(chan opMsg, 1)}
}}

// lane is one tenant's combiner state. state is the lane's claim word:
// an idle→active CAS outside the mutex is the uncontended fast path (a
// solo request claims the lane and flushes itself with no lock traffic
// at all), while parking and release go through mu. The invariant that
// prevents lost wakeups: state returns to idle only under mu with
// pending empty, and requests append to pending only under mu after
// their own idle→active CAS failed — so a combiner's release either
// sees a parked op (and promotes it) or makes the lane claimable again,
// never neither.
type lane struct {
	state   atomic.Int32 // laneIdle or laneActive
	mu      sync.Mutex
	pending []*batchOp
}

const (
	laneIdle int32 = iota
	laneActive
)

// flushScratch is the combiner-only working set of one flush: the chunk
// being coalesced and the address/outcome arrays handed to AccessBatch.
// Scratch is pooled at the store level rather than held per lane, so a
// store with many mostly-idle tenants keeps a handful of warm buffers
// (one per concurrently-flushing combiner) instead of one set per
// tenant, and group commit stays zero-alloc under tenant churn.
type flushScratch struct {
	chunk []*batchOp
	addrs []uint64
	hits  []bool
}

// access drives one request through the batcher (or, with batching
// disabled, straight through the datapath) and reports the simulated
// cache outcome.
func (s *Store) access(t *tenant, addr uint64) bool {
	if s.noBatch {
		return s.accessDirect(t, addr)
	}
	l := &t.lane
	if l.state.CompareAndSwap(laneIdle, laneActive) {
		// Solo fast path: the lane was idle, so pending was empty and
		// this request is a batch of one — the direct datapath, no op
		// allocation, no lock, no added latency. Requests arriving
		// before finishCombine park and form the next (real) batch.
		hit := s.accessDirect(t, addr)
		s.finishCombine(t, l)
		return hit
	}
	l.mu.Lock()
	if l.state.CompareAndSwap(laneIdle, laneActive) {
		// The combiner released between our first CAS and the lock:
		// claim the lane after all and take the solo path.
		l.mu.Unlock()
		hit := s.accessDirect(t, addr)
		s.finishCombine(t, l)
		return hit
	}
	o := opPool.Get().(*batchOp)
	o.addr = addr
	l.pending = append(l.pending, o)
	l.mu.Unlock()
	return s.waitParked(t, l, o)
}

// combine flushes one chunk — the promoted op plus up to BatchSize-1
// parked ops in arrival order — then releases the lane or hands it to
// the oldest remaining parked op. Called with l.mu held, l.active true,
// and own just popped from the head of pending (own is the lane's
// oldest un-flushed op). Returns own's hit outcome.
func (s *Store) combine(t *tenant, l *lane, own *batchOp) bool {
	if len(l.pending) == 0 {
		// Sole survivor: flush directly, as the solo fast path does.
		l.mu.Unlock()
		addr := own.addr
		opPool.Put(own)
		hit := s.accessDirect(t, addr)
		s.finishCombine(t, l)
		return hit
	}
	n := min(len(l.pending), s.batchSize-1)
	sc := s.flushPool.Get().(*flushScratch)
	sc.chunk = append(sc.chunk[:0], own)
	sc.chunk = append(sc.chunk, l.pending[:n]...)
	rest := copy(l.pending, l.pending[n:])
	for i := rest; i < len(l.pending); i++ {
		l.pending[i] = nil
	}
	l.pending = l.pending[:rest]
	l.mu.Unlock()

	sc.addrs = sc.addrs[:0]
	for _, o := range sc.chunk {
		sc.addrs = append(sc.addrs, o.addr)
	}
	if cap(sc.hits) < len(sc.chunk) {
		sc.hits = make([]bool, s.batchSize)
	}
	hits := sc.hits[:len(sc.chunk)]
	s.flush(t, sc.addrs, hits)
	for i, o := range sc.chunk[1:] {
		o.hit = hits[i+1]
		o.msg <- opDone
	}
	myHit := hits[0]
	opPool.Put(own)
	for i := range sc.chunk {
		sc.chunk[i] = nil
	}
	s.flushPool.Put(sc)
	s.finishCombine(t, l)
	return myHit
}

// finishCombine ends a combining stint: it releases the lane if nothing
// is parked, or pops the oldest parked op and promotes it to combiner —
// no request ever serves the lane for more than one flush.
func (s *Store) finishCombine(t *tenant, l *lane) {
	l.mu.Lock()
	if len(l.pending) == 0 {
		l.state.Store(laneIdle)
		l.mu.Unlock()
		return
	}
	next := l.pending[0]
	copy(l.pending, l.pending[1:])
	l.pending[len(l.pending)-1] = nil
	l.pending = l.pending[:len(l.pending)-1]
	next.msg <- opLead
	l.mu.Unlock()
}

// waitParked blocks until the parked op is flushed by a combiner, the op
// is promoted to combiner itself, or the flush deadline passes — in
// which case the op withdraws from the queue and accesses directly.
func (s *Store) waitParked(t *tenant, l *lane, o *batchOp) bool {
	if s.batchDeadline <= 0 { // no deadline: wait for the combiner
		return s.onMsg(t, l, o, <-o.msg)
	}
	if o.timer == nil {
		o.timer = time.NewTimer(s.batchDeadline)
	} else {
		o.timer.Reset(s.batchDeadline)
	}
	select {
	case m := <-o.msg:
		if !o.timer.Stop() {
			<-o.timer.C
		}
		return s.onMsg(t, l, o, m)
	case <-o.timer.C:
		l.mu.Lock()
		if removeOp(l, o) {
			// Still queued: withdraw and take the direct path. No one
			// holds a reference anymore, so the op can be reused.
			l.mu.Unlock()
			addr := o.addr
			opPool.Put(o)
			return s.accessDirect(t, addr)
		}
		// A combiner claimed the op between the timeout and the lock;
		// its message is already on the way.
		l.mu.Unlock()
		return s.onMsg(t, l, o, <-o.msg)
	}
}

// onMsg resolves a parked op's message: return the flushed outcome, or
// take over as the lane's combiner.
func (s *Store) onMsg(t *tenant, l *lane, o *batchOp, m opMsg) bool {
	if m == opLead {
		l.mu.Lock()
		return s.combine(t, l, o)
	}
	hit := o.hit
	opPool.Put(o)
	return hit
}

// removeOp withdraws o from the lane's queue, preserving order.
// Caller holds l.mu.
func removeOp(l *lane, o *batchOp) bool {
	for i, p := range l.pending {
		if p == o {
			copy(l.pending[i:], l.pending[i+1:])
			l.pending[len(l.pending)-1] = nil
			l.pending = l.pending[:len(l.pending)-1]
			return true
		}
	}
	return false
}

// flush drives one coalesced chunk through the record hook and the
// adaptive datapath and updates the tenant's counters: the batched twin
// of accessDirect. addrs holds raw 48-bit key addresses (the record
// hook's format); they are offset into the tenant's partition space in
// place before hitting the cache. Built with -tags profilelabels, the
// AccessBatch runs under a "talus=batch-flush" pprof label so serving
// profiles attribute combiner time to the batcher.
func (s *Store) flush(t *tenant, addrs []uint64, hits []bool) {
	if s.recording.Load() {
		s.recMu.Lock()
		if s.rec != nil {
			for _, a := range addrs {
				if err := s.rec.Append(t.part, a); err != nil && s.recErr == nil {
					s.recErr = err
				}
			}
		}
		s.recMu.Unlock()
	}
	for i := range addrs {
		addrs[i] |= t.space
	}
	var n int
	withFlushLabel(func() {
		n = s.ac.AccessBatch(addrs, t.part, hits)
	})
	t.hits.Add(int64(n))
	t.misses.Add(int64(len(addrs) - n))
}

// accessDirect is the unbatched datapath: one record append, one
// monitor-lane crossing, one cache access. The batcher's deadline
// fallback and BatchSize=1 configurations land here.
func (s *Store) accessDirect(t *tenant, addr uint64) bool {
	if s.recording.Load() {
		s.recMu.Lock()
		if s.rec != nil {
			if err := s.rec.Append(t.part, addr); err != nil && s.recErr == nil {
				s.recErr = err
			}
		}
		s.recMu.Unlock()
	}
	hit := s.ac.Access(addr|t.space, t.part)
	if hit {
		t.hits.Add(1)
	} else {
		t.misses.Add(1)
	}
	return hit
}
