package store_test

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"talus/internal/hash"
	"talus/internal/store"
	"talus/internal/workload"
)

// TestDeleteInvalidatesLine is the regression test for the phantom-
// residency bug: Delete used to remove the value but leave the
// simulated line resident, so the next access to the dead key still
// "hit" and skewed hit ratios and miss curves. Delete must invalidate.
func TestDeleteInvalidatesLine(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{Tenants: []string{"a"}})
	if _, err := s.Set("a", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, hit, err := s.Get("a", "k"); err != nil || !hit {
		t.Fatalf("warm get = hit %v, %v; want hit", hit, err)
	}
	if existed, err := s.Delete("a", "k"); err != nil || !existed {
		t.Fatalf("delete = %v, %v", existed, err)
	}
	_, hit, err := s.Get("a", "k")
	if !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("get after delete: %v, want ErrNotFound", err)
	}
	if hit {
		t.Fatal("deleted key's line still resident: Delete must invalidate the simulated line")
	}
}

// TestBoundedEvictionReleasesValues pins the tentpole's core coupling:
// in bounded mode an evicted line releases its value bytes, so a
// working set far over capacity cannot accumulate — and without a
// backend, an evicted key reads back as a true miss.
func TestBoundedEvictionReleasesValues(t *testing.T) {
	const capacity = 2048
	s := buildStore(t, capacity, 1, 2, store.Config{
		Tenants:  []string{"a"},
		MaxBytes: 1 << 40, // bounded mode without cap pressure: eviction alone governs
	})
	if !s.Bounded() {
		t.Fatal("MaxBytes did not select bounded mode")
	}
	const n = 4 * capacity
	for i := 0; i < n; i++ {
		if _, err := s.Set("a", fmt.Sprintf("k%d", i), []byte("0123456789abcdef")); err != nil {
			t.Fatal(err)
		}
	}
	st, err := s.Stats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Evictions == 0 {
		t.Fatalf("%d keys through %d lines evicted nothing: %+v", n, capacity, st)
	}
	if st.Keys >= n {
		t.Fatalf("all %d keys retained despite %d-line cache: %+v", n, capacity, st)
	}
	if st.Keys+st.Evictions+st.AdmitDrops < n {
		t.Fatalf("key conservation: %d kept + %d evicted + %d dropped < %d inserted", st.Keys, st.Evictions, st.AdmitDrops, n)
	}
	if st.Bytes != st.Keys*16 {
		t.Fatalf("byte accounting: %d bytes for %d 16-byte keys", st.Bytes, st.Keys)
	}
	if got := s.Bytes(); got != st.Bytes {
		t.Fatalf("global byte counter %d != tenant bytes %d", got, st.Bytes)
	}
	// Without a backend an evicted key is simply gone: a true miss.
	missing := 0
	for i := 0; i < n; i++ {
		if _, _, err := s.Get("a", fmt.Sprintf("k%d", i)); errors.Is(err, store.ErrNotFound) {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("no evicted key read back as a miss")
	}
}

// TestBackendReadThrough: with a backend every value survives eviction
// — a Get whose value was evicted fetches from the backing tier and
// re-admits — so the cache serves every key correctly while holding
// only a bounded subset.
func TestBackendReadThrough(t *testing.T) {
	const capacity = 2048
	be := store.NewMemBackend(0)
	s := buildStore(t, capacity, 1, 2, store.Config{
		Tenants: []string{"a"},
		Backend: be,
	})
	const n = 4 * capacity
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		if _, err := s.Set("a", key, []byte("value-"+key)); err != nil {
			t.Fatal(err)
		}
	}
	if got := be.Len("a"); got != n {
		t.Fatalf("write-through: backend holds %d keys, want %d", got, n)
	}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%d", i)
		v, _, err := s.Get("a", key)
		if err != nil {
			t.Fatalf("get %s through backend: %v", key, err)
		}
		if string(v) != "value-"+key {
			t.Fatalf("get %s = %q", key, v)
		}
	}
	st, err := s.Stats("a")
	if err != nil {
		t.Fatal(err)
	}
	if st.BackendGets == 0 {
		t.Fatalf("%d keys through %d lines never read through the backend: %+v", n, capacity, st)
	}
	if st.BackendSets != n {
		t.Fatalf("write-through count %d, want %d", st.BackendSets, n)
	}
	if st.Evictions == 0 {
		t.Fatalf("bounded store never evicted: %+v", st)
	}
	// A miss in the backend itself is still ErrNotFound at the boundary.
	if _, _, err := s.Get("a", "never-written"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("backend miss: %v, want ErrNotFound", err)
	}
}

// TestBoundedBatchedMatchesUnbatched extends the batcher's exactness
// contract to bounded mode: with eviction-coupled values, admission,
// and a backend all active, a sequential stream through a batching
// store returns byte-identical outcomes, values, stats, and final byte
// counts to a batching-disabled store at the same seed.
func TestBoundedBatchedMatchesUnbatched(t *testing.T) {
	bounded := func(c store.Config) store.Config {
		c.MaxBytes = 16 << 10 // small enough that eviction and the cap both fire
		c.Backend = store.NewMemBackend(0)
		c.Tenants = []string{"a", "b"}
		return c
	}
	direct := buildStore(t, 2048, 4, 2, bounded(store.Config{BatchSize: 1}))
	batched := buildStore(t, 2048, 4, 2, bounded(store.Config{}))

	const ops = 1 << 15
	for i := 0; i < ops; i++ {
		tn := "a"
		if i%3 == 0 {
			tn = "b"
		}
		key := fmt.Sprintf("k%d", i%3000)
		if i%2 == 0 {
			hd, errD := direct.Set(tn, key, []byte(key))
			hb, errB := batched.Set(tn, key, []byte(key))
			if hd != hb || (errD == nil) != (errB == nil) {
				t.Fatalf("op %d: Set diverges: (%v,%v) vs (%v,%v)", i, hd, errD, hb, errB)
			}
			continue
		}
		vd, hd, errD := direct.Get(tn, key)
		vb, hb, errB := batched.Get(tn, key)
		if hd != hb || string(vd) != string(vb) || (errD == nil) != (errB == nil) {
			t.Fatalf("op %d: Get diverges: (%q,%v,%v) vs (%q,%v,%v)", i, vd, hd, errD, vb, hb, errB)
		}
	}
	for _, tn := range []string{"a", "b"} {
		sd, errD := direct.Stats(tn)
		sb, errB := batched.Stats(tn)
		if errD != nil || errB != nil {
			t.Fatal(errD, errB)
		}
		if sd != sb {
			t.Fatalf("tenant %s stats diverge:\n direct  %+v\n batched %+v", tn, sd, sb)
		}
		if sd.Evictions == 0 {
			t.Fatalf("tenant %s: the byte-identity run never evicted — the contract was not exercised", tn)
		}
	}
	if db, bb := direct.Bytes(), batched.Bytes(); db != bb {
		t.Fatalf("byte totals diverge: direct %d, batched %d", db, bb)
	}
	if direct.Bytes() > 16<<10 {
		t.Fatalf("bytes %d over the %d bound", direct.Bytes(), 16<<10)
	}
}

// TestBoundedZipfSoak is the acceptance soak: a write-heavy Zipf
// hammer whose footprint far exceeds MaxBytes, from many goroutines
// (run under -race in CI). The byte bound must hold at every probe and
// at quiescence, the books must balance, and reads must be served —
// through the backend when the cached copy died.
func TestBoundedZipfSoak(t *testing.T) {
	const (
		maxBytes = 64 << 10
		valSize  = 64
		footKeys = 8192 // footprint ≈ 512 KiB, 8× the bound
	)
	// 512 lines: small enough that the Zipf tail forces real evictions
	// (not just cap rejections), so both bounding mechanisms are live.
	s := buildStore(t, 512, 4, 2, store.Config{
		Tenants:  []string{"zipf"},
		MaxBytes: maxBytes,
		Backend:  store.NewMemBackend(0),
	})

	workers := 2 * runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	const perWorker = 8192
	val := make([]byte, valSize)
	for i := range val {
		val[i] = byte(i)
	}
	var wg sync.WaitGroup
	var overBound sync.Once
	var overErr error
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			z := workload.NewZipf(footKeys, 1.2)
			rng := hash.NewSplitMix64(uint64(w)*0x9E3779B97F4A7C15 + 7)
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("k%d", z.Next(rng))
				if i%4 == 3 {
					if _, _, err := s.Get("zipf", key); err != nil && !errors.Is(err, store.ErrNotFound) {
						t.Error(err)
						return
					}
				} else if _, err := s.Set("zipf", key, val); err != nil {
					t.Error(err)
					return
				}
				if i%64 == 0 {
					if got := s.Bytes(); got > maxBytes {
						overBound.Do(func() { overErr = fmt.Errorf("bytes %d over bound %d mid-soak", got, maxBytes) })
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if overErr != nil {
		t.Fatal(overErr)
	}
	if got := s.Bytes(); got > maxBytes {
		t.Fatalf("bytes %d over bound %d at quiescence", got, maxBytes)
	}
	var tenantBytes int64
	var st store.TenantStats
	for _, ts := range s.StatsAll() {
		tenantBytes += ts.Bytes
		if ts.Tenant == "zipf" {
			st = ts
		}
	}
	if tenantBytes != s.Bytes() {
		t.Fatalf("tenant bytes %d != global counter %d", tenantBytes, s.Bytes())
	}
	if st.Evictions == 0 {
		t.Fatalf("a %d-byte footprint under a %d-byte bound never evicted: %+v", footKeys*valSize, maxBytes, st)
	}
	// Every key the backend holds must still be servable, bound intact.
	served := 0
	for i := int64(0); i < footKeys && served < 512; i++ {
		v, _, err := s.Get("zipf", fmt.Sprintf("k%d", uint64(i)*0x9E3779B9%footKeys))
		if errors.Is(err, store.ErrNotFound) {
			continue // never written by the Zipf draw
		}
		if err != nil {
			t.Fatal(err)
		}
		if len(v) != valSize {
			t.Fatalf("served value of %d bytes, want %d", len(v), valSize)
		}
		served++
	}
	if served == 0 {
		t.Fatal("soak wrote nothing servable")
	}
	if got := s.Bytes(); got > maxBytes {
		t.Fatalf("read-through re-admission broke the bound: %d > %d", got, maxBytes)
	}
}

// TestCloseRecorderRace pins the Close audit: concurrent Close, Close,
// StopRecording, SetRecorder, and in-flight batched traffic must not
// double-close the recorder or append to a closed writer (run under
// -race in CI), and recorder installation after Close is refused.
func TestCloseRecorderRace(t *testing.T) {
	for round := 0; round < 8; round++ {
		s := buildStore(t, 4096, 2, 2, store.Config{Tenants: []string{"a"}, BatchSize: 8})
		if err := s.StartRecording(t.TempDir()+"/r.trc", false); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		start := make(chan struct{})
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				<-start
				for i := 0; i < 256; i++ {
					s.Set("a", fmt.Sprintf("k%d", i), []byte("v"))
				}
			}(w)
		}
		for w := 0; w < 3; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if err := s.Close(); err != nil && !errors.Is(err, store.ErrNotRecording) {
					t.Error(err)
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := s.StopRecording(); err != nil && !errors.Is(err, store.ErrNotRecording) {
				t.Error(err)
			}
		}()
		close(start)
		wg.Wait()
		if err := s.SetRecorder(&countingRecorder{}); !errors.Is(err, store.ErrClosed) {
			t.Fatalf("SetRecorder after Close: %v, want ErrClosed", err)
		}
		if err := s.StartRecording(t.TempDir()+"/r2.trc", false); !errors.Is(err, store.ErrClosed) {
			t.Fatalf("StartRecording after Close: %v, want ErrClosed", err)
		}
	}
}

// TestBoundedMaxTenants pins the registration cap below the partition
// count, including the no-mint-on-Get rule.
func TestBoundedMaxTenants(t *testing.T) {
	s := buildStore(t, 4096, 1, 4, store.Config{MaxTenants: 2})
	if _, err := s.Set("a", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Set("b", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Set("c", "k", []byte("v")); !errors.Is(err, store.ErrTenantCapacity) {
		t.Fatalf("third tenant past cap: %v, want ErrTenantCapacity", err)
	}
	if _, _, err := s.Get("d", "k"); !errors.Is(err, store.ErrUnknownTenant) {
		t.Fatalf("get must not mint: %v, want ErrUnknownTenant", err)
	}
	if names := s.Tenants(); len(names) != 2 {
		t.Fatalf("roster grew past the cap: %v", names)
	}
}
