//go:build profilelabels

// Profiling labels for the serving hot path, compiled in only with
// -tags profilelabels: pprof.Do allocates a label set and swaps
// goroutine state on every call, which is measurable at the batcher's
// nanosecond scale, so the default build keeps the hot path label-free.
// `make profile-serving` builds with the tag; profiles then attribute
// combiner time to talus=batch-flush.

package store

import (
	"context"
	"runtime/pprof"
)

// withFlushLabel runs one combiner flush under the batch-flush pprof
// label.
func withFlushLabel(f func()) {
	pprof.Do(context.Background(), pprof.Labels("talus", "batch-flush"), func(context.Context) { f() })
}
