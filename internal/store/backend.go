// Backend is the pluggable backing tier behind the bounded store: the
// "database" a cache sits in front of. In bounded mode the store is
// write-through (Set persists to the backend before the cached copy is
// updated) and read-through (a Get whose value was evicted or never
// admitted fetches from the backend and re-admits), so evicting a value
// costs a modeled backend round-trip instead of data loss — exactly the
// cost structure whose hit-ratio sensitivity Talus's convexified
// partitioning optimizes.

package store

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrBackend wraps failures of the backing tier so the front-end can
// distinguish "your request is wrong" (4xx) from "the tier behind the
// cache failed" (502).
var ErrBackend = errors.New("store: backend error")

// Backend is the backing-store contract. Get returns ErrNotFound
// (possibly wrapped) for absent keys. Implementations must be safe for
// concurrent use; the store calls them outside all of its locks.
type Backend interface {
	Get(tenant, key string) ([]byte, error)
	Set(tenant, key string, value []byte) error
	Delete(tenant, key string) error
}

// MemBackend is the in-memory reference Backend: a concurrent map with
// a modeled per-operation latency, standing in for the database tier in
// experiments so backend cost is controlled and deterministic.
type MemBackend struct {
	latency time.Duration

	mu   sync.RWMutex
	vals map[string]map[string][]byte // tenant → key → value

	gets, sets, deletes int64 // under mu
}

// NewMemBackend builds an empty in-memory backend that sleeps latency
// on every operation (0 disables the delay).
func NewMemBackend(latency time.Duration) *MemBackend {
	if latency < 0 {
		latency = 0
	}
	return &MemBackend{latency: latency, vals: make(map[string]map[string][]byte)}
}

func (b *MemBackend) delay() {
	if b.latency > 0 {
		time.Sleep(b.latency)
	}
}

// Get returns a copy of the stored value, or ErrNotFound.
func (b *MemBackend) Get(tenant, key string) ([]byte, error) {
	b.delay()
	b.mu.Lock()
	b.gets++
	v, ok := b.vals[tenant][key]
	b.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, nil
}

// Set stores a copy of value under (tenant, key).
func (b *MemBackend) Set(tenant, key string, value []byte) error {
	cp := make([]byte, len(value))
	copy(cp, value)
	b.delay()
	b.mu.Lock()
	b.sets++
	m := b.vals[tenant]
	if m == nil {
		m = make(map[string][]byte)
		b.vals[tenant] = m
	}
	m[key] = cp
	b.mu.Unlock()
	return nil
}

// Delete removes (tenant, key); absent keys are a no-op.
func (b *MemBackend) Delete(tenant, key string) error {
	b.delay()
	b.mu.Lock()
	b.deletes++
	delete(b.vals[tenant], key)
	b.mu.Unlock()
	return nil
}

// Len returns the number of keys stored for tenant.
func (b *MemBackend) Len(tenant string) int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.vals[tenant])
}

// Ops returns the operation counts (gets, sets, deletes) served so far.
func (b *MemBackend) Ops() (gets, sets, deletes int64) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.gets, b.sets, b.deletes
}
