// Package store is the keyed serving layer over the adaptive Talus
// runtime: it maps (tenant, key) requests onto the line-address
// datapath the rest of the system speaks, and stores real bytes while
// doing so. This is the API pivot from "simulator" to "cache system" —
// callers Get/Set/Delete string keys; underneath, each tenant owns one
// logical partition of an adaptive.Cache, each key hashes to a line
// address, and every request drives the monitor → hull → Talus →
// allocator loop exactly like simulated traffic does.
//
// # Key → address, tenant → partition
//
// A key's line address is the FNV-1a 64-bit hash of its bytes, masked
// to 48 bits — the feeders' per-partition offset (sim.AppSpace, bits
// 48–55) and the trace flattener's tags (bits 56–63) stay clear, so a
// stream recorded from the store replays through sim.FeedAdaptiveTrace
// and friends unchanged. Distinct keys may collide on a line (two keys
// in ~2^48 lines); a collision only nudges the simulated hit ratio,
// never the stored values, which live in an exact per-tenant map.
//
// Tenants bind to logical partitions in arrival order: the first Set
// naming a new tenant claims the next free partition (Config.Static
// disables this and admits only pre-declared tenants; Config.MaxTenants
// caps the roster below the partition count). Registration is a
// write-path privilege — a Get on an unknown tenant returns
// ErrUnknownTenant without minting anything, so anonymous lookups
// cannot exhaust partitions. The partition count is fixed at cache
// construction, so once every partition (or the MaxTenants cap) is
// claimed, further new tenants are refused with ErrTenantCapacity.
//
// # Hit/miss semantics
//
// The simulated cache decides hit or miss; the value map decides found
// or not found. A Get whose key was never Set still accesses the cache
// (miss traffic shapes the miss curve, as in a real LLC) and returns
// ErrNotFound. A Get whose key exists returns the bytes either way and
// reports whether the line hit — the "miss" is the simulated cost a
// production deployment would pay.
//
// # Bounded mode: eviction-coupled values, admission, read-through
//
// By default the store keeps every value — the system-of-record mode,
// where the adaptive cache in front is purely a performance model.
// Setting Config.MaxBytes or Config.Backend turns the store into a true
// bounded cache. The store installs an eviction hook down the cache
// stack (ErrNoEviction if the stack cannot provide one): when the
// replacement policy evicts a line, the hook releases every value keyed
// to that line, so the byte footprint tracks the simulated contents and
// a Get on an evicted key is a real miss. Delete likewise invalidates
// the key's line (statelessly — no stats, no hook), so a deleted key
// cannot keep "hitting".
//
// With MaxBytes > 0 two more mechanisms engage. A hard reservation
// check refuses any Set that would push total value bytes over the
// bound. In front of it sits the Talus-managed admission gate: each
// tenant samples incoming lines with the same ρ-style hashed sampling
// the shadow partitions use, and every admitEvery sets the rate is
// refreshed from bypass.Optimal over the tenant's live hulled miss
// curve at its byte budget (its share of MaxBytes, scaled by current
// line allocation) — the paper's bypassing analysis (§VII) steering
// which values are worth caching at all. Rejected sets count as
// AdmitDrops in TenantStats.
//
// With a Backend configured the store is a read-through, write-through
// cache over it: Set writes the backing tier first (failures surface as
// ErrBackend), and a Get whose cached value died refetches from the
// backend and re-admits through the same admission path. Eviction then
// costs latency, not data — exactly the deployment the X-Talus-Cache
// header was modeling.
//
// # Request batching
//
// Every Get/Set drives one simulated cache access, and unbatched each
// access crosses the tenant's monitor-lane mutex, the monitor bank, and
// a shard lock on its own. The store instead coalesces in-flight
// requests per tenant with a group-commit combiner (see batch.go): a
// request on an idle tenant flushes immediately (a batch of one, no
// added latency), requests arriving while a flush is in flight queue up
// and flush together as one adaptive.AccessBatch of up to
// Config.BatchSize accesses, and a request parked longer than
// Config.BatchDeadline falls back to a direct access. Batch size adapts
// to the instantaneous concurrency, so sequential traffic pays nothing
// and loaded tenants amortize every lock and the monitor's sampling
// pass across the batch. Batching changes scheduling, never results:
// queued requests flush in per-tenant arrival order (a deadline
// fallback may overtake still-parked requests, as any concurrent
// request always could), stats and the record hook count every access
// exactly once, and a batch of k accesses is byte-identical to k
// sequential ones at the same seed.
//
// # Recording
//
// An optional record hook captures every cache access (partition, raw
// 48-bit address) through a Recorder — trace.Writer satisfies it — so
// live front-end traffic becomes a replayable trace
// (sim.RunAdaptiveTraceFile). Recording serializes appends on a mutex;
// under concurrent traffic the recorded order is one valid
// interleaving of the live one.
//
// # Per-entry TTL and node identity
//
// SetTTL gives one entry a lifetime (Config.DefaultTTL gives every
// plain Set one); a later Set refreshes or clears it. Expiry is lazy —
// no sweeper, no per-key timer: a Get past the deadline releases the
// value's bytes, invalidates its simulated line (outside the tenant
// lock, same ordering discipline as Delete), counts one expiration in
// TenantStats, and proceeds as a real miss, including read-through
// re-admission when a backend is configured. Node() reports the
// serving instance's identity (Config.NodeID or "<hostname>-<pid>",
// pid, start time, GOMAXPROCS) for /v1/stats and cluster attribution;
// SetNow is the test seam for the TTL clock.
//
// All methods are safe for concurrent use when the underlying adaptive
// cache is (build it over a sharded inner cache).
package store
