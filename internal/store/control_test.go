package store_test

import (
	"errors"
	"testing"

	"talus/internal/adaptive"
	"talus/internal/sim"
	"talus/internal/store"
)

func buildControlStore(t *testing.T, cfg store.Config) *store.Store {
	t.Helper()
	ac, err := sim.BuildAdaptiveCache("vantage", 8192, 16, 1, 4, "LRU", 0.05,
		adaptive.Config{EpochAccesses: 1 << 14, Seed: 51})
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.New(ac, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestControlSnapshot(t *testing.T) {
	st := buildControlStore(t, store.Config{
		Tenants: []string{"gold", "bronze"},
		Weights: map[string]float64{"gold": 4},
		LineBounds: map[string]store.LineBounds{
			"bronze": {Min: 256, Max: 2048},
		},
	})
	cs := st.Control()
	if len(cs.Tenants) != 2 {
		t.Fatalf("control rows: %+v", cs.Tenants)
	}
	// Rows are sorted by name: bronze first.
	bronze, gold := cs.Tenants[0], cs.Tenants[1]
	if bronze.Tenant != "bronze" || gold.Tenant != "gold" {
		t.Fatalf("row order: %+v", cs.Tenants)
	}
	if gold.Weight != 4 || bronze.Weight != 1 {
		t.Fatalf("weights: gold %g bronze %g", gold.Weight, bronze.Weight)
	}
	if bronze.MinLines != 256 || bronze.MaxLines != 2048 {
		t.Fatalf("bronze bounds: %+v", bronze)
	}
	if cs.Allocator != "hill" || cs.EpochAccesses != 1<<14 {
		t.Fatalf("controller state: %+v", cs.ControllerState)
	}

	// Runtime adjustment is visible in the next snapshot.
	if err := st.SetTenantWeight("bronze", 2.5); err != nil {
		t.Fatal(err)
	}
	if got := st.Control().Tenants[0].Weight; got != 2.5 {
		t.Fatalf("bronze weight after set: %g", got)
	}
	// Unknown tenants are never minted by the control plane.
	if err := st.SetTenantWeight("nobody", 1); !errors.Is(err, store.ErrUnknownTenant) {
		t.Fatalf("unknown tenant: %v", err)
	}
	if err := st.SetTenantWeight("gold", -2); err == nil {
		t.Fatal("negative weight accepted")
	}
}

func TestControlConfigAppliedOnAutoRegister(t *testing.T) {
	// A weight configured for a tenant that registers later (first Set)
	// must attach when it claims its partition.
	st := buildControlStore(t, store.Config{
		Weights: map[string]float64{"late": 3},
	})
	if _, err := st.Set("late", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	cs := st.Control()
	if len(cs.Tenants) != 1 || cs.Tenants[0].Weight != 3 {
		t.Fatalf("auto-registered weight: %+v", cs.Tenants)
	}
}

func TestControlConfigValidation(t *testing.T) {
	ac, err := sim.BuildAdaptiveCache("vantage", 8192, 16, 1, 2, "LRU", 0.05,
		adaptive.Config{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]store.Config{
		"negative weight": {Weights: map[string]float64{"a": -1}},
		"empty name":      {Weights: map[string]float64{"": 1}},
		"cap below floor": {LineBounds: map[string]store.LineBounds{"a": {Min: 100, Max: 50}}},
		"negative floor":  {LineBounds: map[string]store.LineBounds{"a": {Min: -1}}},
	} {
		if _, err := store.New(ac, cfg); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
