package store_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"talus/internal/store"
)

// fakeClock is a settable time source for TTL tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestTTLExpiry(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{})
	clock := newFakeClock()
	s.SetNow(clock.Now)

	if _, err := s.SetTTL("alice", "k", []byte("value"), time.Second); err != nil {
		t.Fatal(err)
	}
	if v, _, err := s.Get("alice", "k"); err != nil || string(v) != "value" {
		t.Fatalf("before expiry: %q, %v", v, err)
	}
	clock.Advance(999 * time.Millisecond)
	if _, _, err := s.Get("alice", "k"); err != nil {
		t.Fatalf("1ms before deadline: %v", err)
	}
	clock.Advance(2 * time.Millisecond)
	if _, _, err := s.Get("alice", "k"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("after deadline: %v, want ErrNotFound", err)
	}
	st, err := s.Stats("alice")
	if err != nil {
		t.Fatal(err)
	}
	if st.Expirations != 1 {
		t.Fatalf("Expirations = %d, want 1", st.Expirations)
	}
	if st.Bytes != 0 || st.Keys != 0 {
		t.Fatalf("expired value still held: %d keys, %d bytes", st.Keys, st.Bytes)
	}
	if got := s.Bytes(); got != 0 {
		t.Fatalf("store bytes after expiry = %d, want 0", got)
	}
	// Expiry is counted once: the repeat Get is a plain value miss.
	s.Get("alice", "k")
	if st, _ = s.Stats("alice"); st.Expirations != 1 {
		t.Fatalf("Expirations after repeat Get = %d, want 1", st.Expirations)
	}
}

func TestDefaultTTL(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{DefaultTTL: time.Minute})
	clock := newFakeClock()
	s.SetNow(clock.Now)

	// A plain Set inherits the store-wide default.
	if _, err := s.Set("alice", "k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(59 * time.Second)
	if _, _, err := s.Get("alice", "k"); err != nil {
		t.Fatalf("before default deadline: %v", err)
	}
	clock.Advance(2 * time.Second)
	if _, _, err := s.Get("alice", "k"); !errors.Is(err, store.ErrNotFound) {
		t.Fatalf("after default deadline: %v, want ErrNotFound", err)
	}

	// A per-entry TTL overrides the default in either direction.
	if _, err := s.SetTTL("alice", "long", []byte("v"), time.Hour); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Minute)
	if _, _, err := s.Get("alice", "long"); err != nil {
		t.Fatalf("per-entry TTL overridden by default: %v", err)
	}
}

func TestSetRefreshesAndClearsTTL(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{})
	clock := newFakeClock()
	s.SetNow(clock.Now)

	// A re-Set with a TTL restarts the clock.
	s.SetTTL("alice", "k", []byte("v1"), time.Second)
	clock.Advance(600 * time.Millisecond)
	s.SetTTL("alice", "k", []byte("v2"), time.Second)
	clock.Advance(600 * time.Millisecond) // 1.2s after the first write
	if v, _, err := s.Get("alice", "k"); err != nil || string(v) != "v2" {
		t.Fatalf("refreshed TTL expired early: %q, %v", v, err)
	}

	// A re-Set without a TTL (and no DefaultTTL) clears the deadline.
	s.Set("alice", "k", []byte("v3"))
	clock.Advance(24 * time.Hour)
	if v, _, err := s.Get("alice", "k"); err != nil || string(v) != "v3" {
		t.Fatalf("cleared TTL still expired: %q, %v", v, err)
	}

	if _, err := s.SetTTL("alice", "k", []byte("v"), -time.Second); !errors.Is(err, store.ErrBadTTL) {
		t.Fatalf("negative ttl: %v, want ErrBadTTL", err)
	}
}

func TestTTLReadThroughBackend(t *testing.T) {
	backend := store.NewMemBackend(0)
	s := buildStore(t, 8192, 1, 2, store.Config{Backend: backend})
	clock := newFakeClock()
	s.SetNow(clock.Now)

	if _, err := s.SetTTL("alice", "k", []byte("durable"), time.Second); err != nil {
		t.Fatal(err)
	}
	clock.Advance(2 * time.Second)
	// The cached copy expired, but the write went through to the
	// backend: the Get reads through and re-admits.
	v, _, err := s.Get("alice", "k")
	if err != nil || string(v) != "durable" {
		t.Fatalf("read-through after expiry: %q, %v", v, err)
	}
	st, _ := s.Stats("alice")
	if st.Expirations != 1 || st.BackendGets == 0 {
		t.Fatalf("expirations = %d, backendGets = %d; want 1, > 0", st.Expirations, st.BackendGets)
	}
	// The re-admitted copy has no per-entry TTL (DefaultTTL is zero):
	// it stays until evicted.
	clock.Advance(24 * time.Hour)
	if _, _, err := s.Get("alice", "k"); err != nil {
		t.Fatalf("re-admitted value expired again: %v", err)
	}
}

func TestNodeStats(t *testing.T) {
	s := buildStore(t, 8192, 1, 2, store.Config{})
	n := s.Node()
	if n.ID == "" || n.PID <= 0 || n.GoMaxProcs < 1 || n.StartTime.IsZero() {
		t.Fatalf("default node stats incomplete: %+v", n)
	}

	named := buildStore(t, 8192, 1, 2, store.Config{NodeID: "node-a"})
	if got := named.Node().ID; got != "node-a" {
		t.Fatalf("NodeID = %q, want node-a", got)
	}
}
