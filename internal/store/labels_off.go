//go:build !profilelabels

package store

// withFlushLabel is a no-op passthrough in default builds; see
// labels.go for the -tags profilelabels variant.
func withFlushLabel(f func()) { f() }
