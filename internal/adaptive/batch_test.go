package adaptive_test

import (
	"testing"

	"talus/internal/adaptive"
	"talus/internal/hash"
)

// TestAccessBatchMatchesUnbatched pins the hot-path batching contract end
// to end: the same access stream fed through per-access Access calls and
// through AccessBatch runs (batch length dividing the epoch length, so
// epoch boundaries land on batch boundaries in both runs) must produce
// byte-identical outcomes — every per-access hit, every epoch count,
// every allocation, every extracted curve point.
func TestAccessBatchMatchesUnbatched(t *testing.T) {
	const (
		capacity = 8192
		epoch    = 1 << 14
		batch    = 64 // divides epoch: boundaries align across both runs
		runs     = 768
	)
	cfg := adaptive.Config{EpochAccesses: epoch, Seed: 7}
	single := buildAdaptive(t, capacity, 4, 2, cfg)
	batched := buildAdaptive(t, capacity, 4, 2, cfg)

	rng := hash.NewSplitMix64(21)
	addrs := make([]uint64, batch)
	singleHits := make([]bool, batch)
	batchHits := make([]bool, batch)
	var pos uint64
	for run := 0; run < runs; run++ {
		p := run % 2
		for i := range addrs {
			if p == 0 {
				addrs[i] = pos % 6144 // cyclic scan: cliff past the allocation
				pos++
			} else {
				addrs[i] = rng.Uint64n(2048) | 1<<32
			}
		}
		for i, a := range addrs {
			singleHits[i] = single.Access(a, p)
		}
		batched.AccessBatch(addrs, p, batchHits)
		for i := range addrs {
			if singleHits[i] != batchHits[i] {
				t.Fatalf("run %d access %d (partition %d, addr %#x): unbatched hit=%v, batched hit=%v",
					run, i, p, addrs[i], singleHits[i], batchHits[i])
			}
		}
	}

	if se, be := single.Epochs(), batched.Epochs(); se != be || se == 0 {
		t.Fatalf("epoch counts diverge: unbatched %d, batched %d", se, be)
	}
	sa, ba := single.Allocations(), batched.Allocations()
	for p := range sa {
		if sa[p] != ba[p] {
			t.Fatalf("allocation %d diverges: unbatched %d, batched %d", p, sa[p], ba[p])
		}
	}
	for p := 0; p < 2; p++ {
		sc, bc := single.Curve(p), batched.Curve(p)
		if (sc == nil) != (bc == nil) {
			t.Fatalf("partition %d: one curve nil, the other not", p)
		}
		if sc == nil {
			continue
		}
		sp, bp := sc.Points(), bc.Points()
		if len(sp) != len(bp) {
			t.Fatalf("partition %d: curve lengths differ: %d vs %d", p, len(sp), len(bp))
		}
		for i := range sp {
			if sp[i] != bp[i] {
				t.Fatalf("partition %d point %d differs: %+v vs %+v", p, i, sp[i], bp[i])
			}
		}
	}
}
