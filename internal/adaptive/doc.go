// Package adaptive closes the paper's end-to-end control loop (§VI):
// monitor → hull → Talus → allocator → reconfigure, driven online by the
// access stream itself. The paper's system is not an offline curve
// transformer but a self-tuning cache: UMONs observe the live stream,
// Talus convexifies the measured miss curves, and a partitioning
// algorithm reallocates capacity every epoch. This package is that loop
// in software.
//
// Cache wraps a core.ShadowedCache and embeds one monitor.EpochMonitor
// per logical partition on the pre-sampling access stream (monitors must
// see the full stream; the Talus sampler splits it afterwards). Every
// EpochAccesses observed accesses, the crossing goroutine:
//
//  1. extracts each partition's EWMA miss curve from its monitor bank
//     (misses per kilo-access, all partitions sharing one denominator so
//     curve magnitudes compare as absolute miss counts);
//  2. convexifies the curves (core.Convexify — the Talus pre-processing
//     step);
//  3. runs the configured alloc.Allocator over the hulls to divide the
//     partitionable capacity;
//  4. live-reconfigures shadow sizes and sampling rates via
//     core.ShadowedCache.Reconfigure (the raw curves go down too, so
//     already-convex partitions collapse to a single shadow partition).
//
// # Self-tuning and the control plane
//
// Config.SelfTune enables the churn-driven epoch controller: each epoch
// the loop measures how much every partition's curve moved
// (curve.Distance, access-share-weighted) and adapts its own budget —
// churn above ChurnHigh halves the epoch (floor MinEpoch) and raises
// monitor retention, churn below ChurnLow for two consecutive epochs
// doubles it (cap MaxEpoch) and decays retention; the wall-clock
// ticker rescales proportionally. Epochs that observed zero accesses
// are complete no-ops, and a partition idle for an epoch keeps its
// previous curve untouched instead of decaying toward zero. SetWeight
// and SetPartitionLines adjust the allocation Request live;
// Controller() snapshots the whole state (ControllerState — what
// serve's GET /v1/control returns).
//
// # Concurrency
//
// All methods are safe for concurrent use when the ShadowedCache's inner
// cache is (wrap it in a cache.ShardedCache). Each partition's monitor is
// guarded by its own mutex; the epoch step serializes on a TryLock so at
// most one goroutine reconfigures while the rest keep serving traffic
// through the immutable-H3 / atomic-limit sampling datapath. Over a
// single-threaded inner cache the loop still works and is exactly as
// single-threaded as that cache.
package adaptive
