package adaptive_test

import (
	"runtime"
	"sync"
	"testing"

	"talus/internal/adaptive"
	"talus/internal/hash"
	"talus/internal/monitor"
)

// TestAdaptiveMonitorMatchesBaseline pins the tentpole identity at the
// stack level: the per-partition sliced monitors inside a full adaptive
// cache — fed by concurrent AccessBatch across goroutines, drained by
// forced epoch reconfigures — hold byte-identical histograms and produce
// bit-identical epoch curves to standalone single-lock EpochMonitors fed
// the same streams sequentially. Each goroutine's stream is confined to
// one monitor slice (SampledSlice), which keeps every monitor set's
// access order deterministic under any goroutine interleaving; the
// shadow sampler and cache underneath see fully racing traffic.
func TestAdaptiveMonitorMatchesBaseline(t *testing.T) {
	const (
		capacity = 16384
		logical  = 2
		seed     = 21
	)
	ac := buildAdaptive(t, capacity, 4, logical, adaptive.Config{
		EpochAccesses: 1 << 40, // epochs only when forced
		Seed:          seed,
	})
	budget := ac.Shadowed().Inner().PartitionableCapacity()

	// Baselines: one classic EpochMonitor per partition, at exactly the
	// seeds the adaptive constructor derives.
	base := make([]*monitor.EpochMonitor, logical)
	for p := range base {
		em, err := monitor.NewEpochMonitor(budget, 0, seed+uint64(p)*0x9E3779B9)
		if err != nil {
			t.Fatal(err)
		}
		base[p] = em
	}

	// Pre-partition each partition's address stream by owning slice.
	streams := make([][][]uint64, logical)
	var totalFed int64
	for p := 0; p < logical; p++ {
		sm := ac.Monitor(p)
		streams[p] = make([][]uint64, sm.Slices())
		rng := hash.NewSplitMix64(uint64(p)*0xD1CE + 5)
		for i := 0; i < 1<<16; i++ {
			addr := rng.Next() % 20000
			si, sampled := sm.SampledSlice(addr)
			if !sampled {
				continue // filtered identically by both monitors
			}
			streams[p][si] = append(streams[p][si], addr)
			totalFed++
		}
	}

	compare := func(round int) {
		t.Helper()
		for p := 0; p < logical; p++ {
			bh, ba := base[p].Monitor().HistogramSnapshot()
			sh, sa := ac.Monitor(p).HistogramSnapshot()
			for i := range bh {
				if ba[i] != sa[i] {
					t.Fatalf("round %d part %d array %d: accesses %d (baseline) != %d (stack)",
						round, p, i, ba[i], sa[i])
				}
				for d := range bh[i] {
					if bh[i][d] != sh[i][d] {
						t.Fatalf("round %d part %d array %d depth %d: hits %d (baseline) != %d (stack)",
							round, p, i, d, bh[i][d], sh[i][d])
					}
				}
			}
		}
	}

	const rounds = 3
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for p := 0; p < logical; p++ {
			for _, stream := range streams[p] {
				if len(stream) == 0 {
					continue
				}
				wg.Add(1)
				go func(p int, stream []uint64) {
					defer wg.Done()
					for i := 0; i < len(stream); {
						n := 48 + i%97
						if i+n > len(stream) {
							n = len(stream) - i
						}
						ac.AccessBatch(stream[i:i+n], p, nil)
						i += n
						runtime.Gosched()
					}
				}(p, stream)
			}
		}
		wg.Wait()
		for p := 0; p < logical; p++ {
			for _, stream := range streams[p] {
				base[p].ObserveBatch(stream)
			}
		}
		compare(r)

		// Close the epoch on both sides. The stack's units are the summed
		// per-partition access counts (epochBody's shared denominator);
		// every address fed this round counted once.
		if err := ac.ForceEpoch(); err != nil {
			t.Fatal(err)
		}
		for p := 0; p < logical; p++ {
			bc, err := base[p].EpochCurve(float64(totalFed))
			if err != nil {
				t.Fatal(err)
			}
			scv := ac.Curve(p)
			if scv == nil {
				t.Fatalf("round %d part %d: stack curve missing", r, p)
			}
			bp, sp := bc.Points(), scv.Points()
			if len(bp) != len(sp) {
				t.Fatalf("round %d part %d: %d points (baseline) != %d (stack)", r, p, len(bp), len(sp))
			}
			for i := range bp {
				if bp[i] != sp[i] {
					t.Fatalf("round %d part %d point %d: baseline %+v stack %+v", r, p, i, bp[i], sp[i])
				}
			}
		}
		compare(r) // post-decay state must match too
	}
}
