package adaptive

import (
	"context"
	"fmt"
	"math"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"talus/internal/alloc"
	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/monitor"
)

// DefaultEpochAccesses is the default epoch length: one reconfiguration
// per 2^20 observed accesses, the software analogue of the paper's 10 ms
// hardware interval (a few accesses per thousand instructions at GHz
// rates lands within an order of magnitude of this).
const DefaultEpochAccesses = 1 << 20

// Self-tuning controller defaults: the epoch budget may stretch to
// DefaultMaxEpochFactor × its configured value; churn below
// DefaultChurnLow for calmEpochs consecutive epochs doubles the budget,
// churn above DefaultChurnHigh halves it.
const (
	DefaultMaxEpochFactor = 16
	DefaultChurnLow       = 0.05
	DefaultChurnHigh      = 0.30
	calmEpochs            = 2
	minRetain             = 0.05
	maxRetain             = 0.90
)

// Config parameterizes the control loop.
type Config struct {
	// EpochAccesses is the reconfiguration interval in observed accesses
	// (all partitions combined); 0 selects DefaultEpochAccesses. With
	// SelfTune this is the starting budget the controller adapts.
	EpochAccesses int64
	// Retain is the monitors' EWMA retention factor in (0, 1);
	// 0 selects monitor.DefaultRetain (0.5: one-epoch half-life).
	Retain float64
	// Allocator divides capacity over the hulls each epoch;
	// nil selects alloc.HillClimbAllocator (optimal on hulls — the
	// paper's point is that Talus makes hill climbing sufficient).
	Allocator alloc.Allocator
	// Granules is the allocator grid resolution: capacity/Granules lines
	// per step; 0 selects 64 (the mix simulator's grid).
	Granules int
	// EpochInterval, when positive, adds a wall-clock epoch trigger: a
	// background ticker drives the same TryLock epoch step the access
	// clock does, so lightly loaded caches still reconfigure on time
	// (the access-count trigger alone waits for EpochAccesses, which an
	// idle serving cache may take minutes to reach). Zero keeps the
	// control loop purely access-driven with no background goroutine.
	// Callers that set this must Close the cache to stop the ticker.
	EpochInterval time.Duration
	// MonitorSlices is the per-partition monitor's slice count: sampled
	// accesses lock only the slice owning their monitor set, so
	// concurrent accessors to one partition stop contending on a single
	// monitor lock. 0 selects monitor.DefaultMonitorSlices; the value is
	// clamped by the monitor geometry (see NewSlicedEpochMonitor).
	MonitorSlices int
	// Seed derives the monitors' hash functions.
	Seed uint64

	// Weights gives each partition's objective weight in the allocation
	// Request (see alloc.Request.Weights): a weight-4 partition's saved
	// miss counts four times a weight-1 partition's. nil means uniform —
	// the legacy minimize-total-misses objective, byte-identical to the
	// unweighted stack. Adjustable at runtime via SetWeight.
	Weights []float64
	// MinLines / MaxLines are per-partition allocation floors and caps
	// (see alloc.Request); nil means none. Adjustable at runtime via
	// SetPartitionLines.
	MinLines []int64
	MaxLines []int64

	// SelfTune enables the churn-driven epoch controller: when
	// successive epochs' measured curves barely move (normalized L1
	// distance below ChurnLow for calmEpochs epochs) the epoch budget —
	// and the wall-clock interval, proportionally — doubles, up to
	// MaxEpoch; a churn spike above ChurnHigh halves it, down to
	// MinEpoch. Retain adapts alongside: shorter epochs are noisier so
	// retention rises (√retain); longer epochs measure well on their own
	// so retention falls (retain²).
	SelfTune bool
	// MinEpoch / MaxEpoch bound the self-tuned epoch budget in accesses.
	// 0 selects EpochAccesses and DefaultMaxEpochFactor×EpochAccesses.
	MinEpoch int64
	MaxEpoch int64
	// ChurnLow / ChurnHigh are the controller's churn thresholds;
	// 0 selects DefaultChurnLow / DefaultChurnHigh.
	ChurnLow  float64
	ChurnHigh float64
}

func (c *Config) defaults() {
	if c.EpochAccesses <= 0 {
		c.EpochAccesses = DefaultEpochAccesses
	}
	if c.Retain <= 0 || c.Retain >= 1 {
		c.Retain = monitor.DefaultRetain
	}
	if c.Allocator == nil {
		c.Allocator = alloc.HillClimbAllocator
	}
	if c.Granules <= 0 {
		c.Granules = 64
	}
	if c.MinEpoch <= 0 {
		c.MinEpoch = c.EpochAccesses
	}
	if c.MaxEpoch <= 0 {
		c.MaxEpoch = DefaultMaxEpochFactor * c.EpochAccesses
	}
	if c.MaxEpoch < c.MinEpoch {
		c.MaxEpoch = c.MinEpoch
	}
	if c.ChurnLow <= 0 {
		c.ChurnLow = DefaultChurnLow
	}
	if c.ChurnHigh <= 0 {
		c.ChurnHigh = DefaultChurnHigh
	}
	if c.ChurnHigh < c.ChurnLow {
		c.ChurnHigh = c.ChurnLow
	}
}

// monSlot is one partition's monitor lane, padded so concurrently
// accessed lanes do not false-share. There is no lane lock: the sliced
// monitor synchronizes internally per slice, and the epoch access count
// is an atomic — steady-state accesses touch no lane-wide mutable state.
type monSlot struct {
	mon      *monitor.SlicedEpochMonitor
	accesses atomic.Int64 // observed this epoch
	_        [64]byte
}

// ControllerState is a snapshot of the control loop's tunables and its
// most recent measurements, served at /v1/control.
type ControllerState struct {
	// Epochs counts epoch steps that measured traffic (no-op epochs on
	// an idle cache are skipped entirely and not counted).
	Epochs int `json:"epochs"`
	// Churn is the last measuring epoch's access-share-weighted
	// normalized L1 distance between successive per-partition curves
	// (see curve.Distance); 0 before the second measuring epoch.
	Churn float64 `json:"churn"`
	// SelfTune reports whether the churn controller is active.
	SelfTune bool `json:"self_tune"`
	// EpochAccesses is the current epoch budget (self-tuned between
	// MinEpoch and MaxEpoch when SelfTune; otherwise the configured
	// value).
	EpochAccesses int64 `json:"epoch_accesses"`
	MinEpoch      int64 `json:"min_epoch"`
	MaxEpoch      int64 `json:"max_epoch"`
	// EpochInterval is the current wall-clock trigger interval (0
	// without a ticker); scaled with the epoch budget under SelfTune.
	EpochInterval time.Duration `json:"epoch_interval_ns"`
	// Retain is the monitors' current EWMA retention factor.
	Retain float64 `json:"retain"`
	// Allocator names the allocation policy.
	Allocator string `json:"allocator"`
	// Allocations is the most recent per-partition allocation in lines.
	Allocations []int64 `json:"allocations"`
	// Weights is the per-partition objective weight vector (nil =
	// uniform). MinLines/MaxLines likewise (nil = unconstrained).
	Weights  []float64 `json:"weights,omitempty"`
	MinLines []int64   `json:"min_lines,omitempty"`
	MaxLines []int64   `json:"max_lines,omitempty"`
}

// Cache is the adaptive Talus runtime. Construct with New (or the
// convenience builder sim.BuildAdaptiveCache / talus.NewAdaptiveCache).
type Cache struct {
	sc  *core.ShadowedCache
	cfg Config
	n   int

	mons []monSlot

	accTotal  atomic.Int64 // accesses observed since construction
	nextEpoch atomic.Int64 // accTotal threshold triggering the next epoch

	epochMu    sync.Mutex // serializes the epoch step and guards the fields below
	epochs     int
	lastAllocs []int64
	lastCurves []*curve.Curve
	lastErr    error
	partAcc    []int64 // scratch: per-partition accesses drained this epoch

	// Allocation constraints threaded into each epoch's Request. nil
	// slices stay nil until a setter materializes them, so the uniform
	// configuration builds the exact plain Request of the legacy path.
	weights  []float64
	minLines []int64
	maxLines []int64

	// Self-tuning controller state.
	curEpoch     int64   // current epoch budget in accesses
	curRetain    float64 // current monitor retention factor
	churn        float64 // last measuring epoch's churn
	calm         int     // consecutive epochs with churn ≤ ChurnLow
	baseInterval time.Duration
	curInterval  time.Duration

	ticker    *time.Ticker  // non-nil iff EpochInterval > 0
	tickStop  chan struct{} // nil without EpochInterval
	tickDone  chan struct{}
	closeOnce sync.Once
}

// New wraps an already-configured ShadowedCache in the control loop and
// programs an initial fair split (ρ = 1 everywhere: plain behaviour until
// the first epoch has measured curves). The inner cache must be safe for
// concurrent use if the Cache will be.
func New(sc *core.ShadowedCache, cfg Config) (*Cache, error) {
	cfg.defaults()
	n := sc.NumLogical()
	budget := sc.Inner().PartitionableCapacity()
	a := &Cache{
		sc:         sc,
		cfg:        cfg,
		n:          n,
		mons:       make([]monSlot, n),
		lastAllocs: make([]int64, n),
		lastCurves: make([]*curve.Curve, n),
		partAcc:    make([]int64, n),
		curEpoch:   cfg.EpochAccesses,
		curRetain:  cfg.Retain,
	}
	if cfg.Weights != nil {
		if len(cfg.Weights) != n {
			return nil, fmt.Errorf("adaptive: %d weights for %d partitions", len(cfg.Weights), n)
		}
		a.weights = append([]float64(nil), cfg.Weights...)
	}
	if cfg.MinLines != nil {
		if len(cfg.MinLines) != n {
			return nil, fmt.Errorf("adaptive: %d line floors for %d partitions", len(cfg.MinLines), n)
		}
		a.minLines = append([]int64(nil), cfg.MinLines...)
	}
	if cfg.MaxLines != nil {
		if len(cfg.MaxLines) != n {
			return nil, fmt.Errorf("adaptive: %d line caps for %d partitions", len(cfg.MaxLines), n)
		}
		a.maxLines = append([]int64(nil), cfg.MaxLines...)
	}
	for p := range a.mons {
		mon, err := monitor.NewSlicedEpochMonitor(budget, cfg.Retain, cfg.Seed+uint64(p)*0x9E3779B9, cfg.MonitorSlices)
		if err != nil {
			return nil, fmt.Errorf("adaptive: partition %d monitor: %w", p, err)
		}
		a.mons[p].mon = mon
	}
	fair, err := alloc.Fair(n, budget, max(budget/int64(cfg.Granules), 1))
	if err != nil {
		return nil, fmt.Errorf("adaptive: initial fair split: %w", err)
	}
	// Nil curves make every partition fall back to the degenerate single-
	// shadow configuration: a fairly partitioned, Talus-less cache.
	if err := a.sc.Reconfigure(fair, make([]*curve.Curve, n)); err != nil {
		return nil, fmt.Errorf("adaptive: initial reconfigure: %w", err)
	}
	copy(a.lastAllocs, fair)
	a.nextEpoch.Store(a.curEpoch)
	if cfg.EpochInterval > 0 {
		a.baseInterval = cfg.EpochInterval
		a.curInterval = cfg.EpochInterval
		a.ticker = time.NewTicker(cfg.EpochInterval)
		a.tickStop = make(chan struct{})
		a.tickDone = make(chan struct{})
		go a.tickLoop()
	}
	return a, nil
}

// tickLoop is the wall-clock epoch trigger: every tick it attempts the
// same TryLock epoch step the access clock fires, so reconfiguration
// happens on time even when traffic is too light to reach the epoch
// budget. The controller retunes the ticker's interval in lockstep with
// the budget (time.Ticker.Reset is safe against a concurrent receive).
// Runs until Close.
func (a *Cache) tickLoop() {
	defer close(a.tickDone)
	defer a.ticker.Stop()
	for {
		select {
		case <-a.tickStop:
			return
		case <-a.ticker.C:
			if !a.epochMu.TryLock() {
				continue // an access-driven epoch is already running
			}
			a.runEpochLocked()
			a.nextEpoch.Store(a.accTotal.Load() + a.curEpoch)
			a.epochMu.Unlock()
		}
	}
}

// Close stops the wall-clock epoch ticker (waiting for any in-flight
// tick to finish) and is a no-op for caches built without EpochInterval.
// Safe to call multiple times; the datapath remains usable afterwards,
// driven by the access clock alone.
func (a *Cache) Close() error {
	if a.tickStop != nil {
		a.closeOnce.Do(func() {
			close(a.tickStop)
			<-a.tickDone
		})
	}
	return nil
}

// checkPartition validates a caller-supplied partition index once, at
// the API boundary: an out-of-range p would otherwise panic deep inside
// monSlot indexing with a bare bounds error.
func (a *Cache) checkPartition(p int) {
	if p < 0 || p >= a.n {
		panic(fmt.Sprintf("adaptive: partition %d out of range [0,%d)", p, a.n))
	}
}

// Access observes one access on partition p's monitor, routes it through
// the Talus datapath, and reports a hit. Crossing an epoch boundary
// triggers reconfiguration on the calling goroutine. p must be in
// [0, NumLogical()); anything else panics with a descriptive message.
func (a *Cache) Access(addr uint64, p int) bool {
	a.checkPartition(p)
	s := &a.mons[p]
	s.mon.Observe(addr)
	s.accesses.Add(1)
	hit := a.sc.Access(addr, p)
	a.afterAccesses(1)
	return hit
}

// AccessBatch is Access for a batch of one partition's accesses: each
// touched monitor slice's lock and the inner cache's shard locks are
// taken once per batch, and the monitor bank samples the batch in one
// pass (SlicedEpochMonitor.ObserveBatch). hits, when non-nil, receives
// per-access outcomes; the return value is the number of hits. Results
// are byte-identical to the equivalent Access loop; when batch
// boundaries divide the epoch length, epoch timing — and therefore
// every curve, allocation, and hit — matches the unbatched run exactly.
func (a *Cache) AccessBatch(addrs []uint64, p int, hits []bool) int {
	a.checkPartition(p)
	if len(addrs) == 0 {
		return 0
	}
	s := &a.mons[p]
	s.mon.ObserveBatch(addrs)
	s.accesses.Add(int64(len(addrs)))
	n := a.sc.AccessBatch(addrs, p, hits)
	a.afterAccesses(int64(len(addrs)))
	return n
}

// afterAccesses advances the epoch clock and fires the epoch step when
// the interval has elapsed. TryLock keeps the datapath wait-free: if a
// reconfiguration is already running, this access's contribution is
// simply part of the next epoch.
func (a *Cache) afterAccesses(k int64) {
	if a.accTotal.Add(k) < a.nextEpoch.Load() {
		return
	}
	if !a.epochMu.TryLock() {
		return
	}
	defer a.epochMu.Unlock()
	if a.accTotal.Load() < a.nextEpoch.Load() {
		return // another goroutine already ran this epoch
	}
	a.runEpochLocked()
	a.nextEpoch.Store(a.accTotal.Load() + a.curEpoch)
}

// ForceEpoch runs one epoch step immediately regardless of the access
// clock (tests; final-report flushes) and returns its outcome.
func (a *Cache) ForceEpoch() error {
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	a.runEpochLocked()
	a.nextEpoch.Store(a.accTotal.Load() + a.curEpoch)
	return a.lastErr
}

// runEpochLocked is the control loop body, labeled for profiling so
// `make profile-serving` attributes reconfiguration cost separately from
// the datapath. Caller holds epochMu.
func (a *Cache) runEpochLocked() {
	pprof.Do(context.Background(), pprof.Labels("talus", "epoch-step"), func(context.Context) {
		a.epochBody()
	})
}

// epochBody does the actual epoch work. Caller holds epochMu.
func (a *Cache) epochBody() {
	// Drain each lane's epoch access count. A cache-wide idle epoch is
	// skipped outright — no curve extraction, no EWMA decay, no epoch
	// counted: a wall-clock tick on an idle cache must not erode the
	// measured curves toward empty (the counters hold until traffic
	// returns, and Err keeps reporting the last real epoch's outcome).
	var epochAcc int64
	for p := range a.mons {
		a.partAcc[p] = a.mons[p].accesses.Swap(0)
		epochAcc += a.partAcc[p]
	}
	if epochAcc == 0 {
		return
	}
	// Extract each measured partition's EWMA curve. The denominator is
	// shared across partitions — every curve is normalized per
	// kilo-access of the whole cache's epoch stream — so curve heights
	// compare as absolute miss counts and the allocator minimizes
	// (weighted) total misses, the analogue of the CPU simulator's
	// aggregate-MPKI objective. Partitions idle *this epoch* are skipped
	// the same way idle epochs are: their monitors keep accumulating and
	// their last curve stands, so a tenant that pauses does not decay
	// toward zero utility and lose its allocation.
	units := float64(epochAcc)
	budget := a.sc.Inner().PartitionableCapacity()
	var churn float64
	for p := range a.mons {
		if a.partAcc[p] == 0 {
			if a.lastCurves[p] == nil {
				// Never-seen partition: a flat zero curve claims no utility,
				// so the allocator gives it only leftover capacity.
				a.lastCurves[p] = curve.MustNew([]curve.Point{
					{Size: 0, MPKI: 0}, {Size: float64(budget), MPKI: 0},
				})
			}
			continue
		}
		// EpochCurve drains the monitor slices and is serialized by
		// epochMu; racing observers accrue to this epoch or the next.
		c, err := a.mons[p].mon.EpochCurve(units)
		if err == nil {
			// Churn: how far this partition's curve moved since its last
			// measurement, weighted by its share of the epoch's traffic
			// (a first measurement is maximal churn: Distance vs nil = 1).
			churn += float64(a.partAcc[p]) / units * curve.Distance(a.lastCurves[p], c)
			a.lastCurves[p] = c
		} else if a.lastCurves[p] == nil {
			a.lastCurves[p] = curve.MustNew([]curve.Point{
				{Size: 0, MPKI: 0}, {Size: float64(budget), MPKI: 0},
			})
		}
	}
	a.churn = churn
	if a.cfg.SelfTune {
		a.tuneLocked()
	}

	hulls := core.Convexify(a.lastCurves)
	granule := max(budget/int64(a.cfg.Granules), 1)
	allocs, err := a.cfg.Allocator.Allocate(alloc.Request{
		Curves:   hulls,
		Total:    budget,
		Granule:  granule,
		Weights:  a.weights,
		MinLines: a.minLines,
		MaxLines: a.maxLines,
	})
	if err != nil {
		a.lastErr = fmt.Errorf("adaptive: epoch %d allocate: %w", a.epochs, err)
		a.epochs++
		return
	}
	// Reconfigure from the raw curves, not the hulls: Configure's
	// flat-gain check needs the raw curve to collapse already-convex
	// partitions to a single shadow partition (interpolating there pays
	// sampling noise for nothing). The hulls above feed the allocator,
	// which is what reusing them buys.
	if err := a.sc.Reconfigure(allocs, a.lastCurves); err != nil {
		a.lastErr = fmt.Errorf("adaptive: epoch %d reconfigure: %w", a.epochs, err)
		a.epochs++
		return
	}
	copy(a.lastAllocs, allocs)
	a.lastErr = nil
	a.epochs++
}

// tuneLocked is the churn controller's state machine, run once per
// measuring epoch. A churn spike halves the epoch budget (faster
// re-measurement) and raises retention toward 1 (shorter epochs are
// noisier, so lean harder on history); sustained calm doubles the
// budget and lowers retention (long epochs measure well on their own).
// The wall-clock ticker interval scales with the budget so both
// triggers stretch and shrink together. Caller holds epochMu.
func (a *Cache) tuneLocked() {
	switch {
	case a.churn > a.cfg.ChurnHigh:
		a.calm = 0
		if a.curEpoch > a.cfg.MinEpoch {
			a.curEpoch = max(a.curEpoch/2, a.cfg.MinEpoch)
			a.curRetain = clampRetain(math.Sqrt(a.curRetain))
			a.applyTuningLocked()
		}
	case a.churn < a.cfg.ChurnLow:
		a.calm++
		if a.calm >= calmEpochs && a.curEpoch < a.cfg.MaxEpoch {
			a.curEpoch = min(a.curEpoch*2, a.cfg.MaxEpoch)
			a.curRetain = clampRetain(a.curRetain * a.curRetain)
			a.calm = 0
			a.applyTuningLocked()
		}
	default:
		a.calm = 0
	}
}

func clampRetain(r float64) float64 {
	return math.Min(maxRetain, math.Max(minRetain, r))
}

// applyTuningLocked pushes the controller's current retention into
// every monitor and rescales the wall-clock ticker proportionally to
// the epoch budget. Caller holds epochMu (which also serializes the
// monitors' SetRetain with their EpochCurve).
func (a *Cache) applyTuningLocked() {
	for p := range a.mons {
		a.mons[p].mon.SetRetain(a.curRetain)
	}
	if a.ticker != nil {
		iv := time.Duration(float64(a.baseInterval) * float64(a.curEpoch) / float64(a.cfg.EpochAccesses))
		if iv <= 0 {
			iv = a.baseInterval
		}
		if iv != a.curInterval {
			a.curInterval = iv
			a.ticker.Reset(iv)
		}
	}
}

// SetWeight sets partition p's objective weight for subsequent epochs
// (see alloc.Request.Weights). The weight must be finite and
// non-negative. The first call materializes the weight vector (uniform
// 1s); until then the epoch Request carries nil weights — the exact
// legacy objective.
func (a *Cache) SetWeight(p int, w float64) error {
	a.checkPartition(p)
	if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
		return fmt.Errorf("adaptive: weight %g for partition %d (need finite, non-negative)", w, p)
	}
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	if a.weights == nil {
		a.weights = make([]float64, a.n)
		for i := range a.weights {
			a.weights[i] = 1
		}
	}
	a.weights[p] = w
	return nil
}

// SetPartitionLines sets partition p's allocation floor and cap in
// lines for subsequent epochs (see alloc.Request); maxLines 0 means
// unbounded. Feasibility against the budget is checked by the allocator
// each epoch (an infeasible combination surfaces through Err).
func (a *Cache) SetPartitionLines(p int, minLines, maxLines int64) error {
	a.checkPartition(p)
	if minLines < 0 || maxLines < 0 || (maxLines > 0 && maxLines < minLines) {
		return fmt.Errorf("adaptive: bad line bounds [%d, %d] for partition %d", minLines, maxLines, p)
	}
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	if a.minLines == nil {
		a.minLines = make([]int64, a.n)
	}
	if a.maxLines == nil {
		a.maxLines = make([]int64, a.n)
	}
	a.minLines[p] = minLines
	a.maxLines[p] = maxLines
	return nil
}

// Weights returns a copy of the per-partition weight vector, or nil
// while the objective is uniform.
func (a *Cache) Weights() []float64 {
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	if a.weights == nil {
		return nil
	}
	return append([]float64(nil), a.weights...)
}

// Controller returns a snapshot of the control loop's tunables and its
// most recent measurements.
func (a *Cache) Controller() ControllerState {
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	st := ControllerState{
		Epochs:        a.epochs,
		Churn:         a.churn,
		SelfTune:      a.cfg.SelfTune,
		EpochAccesses: a.curEpoch,
		MinEpoch:      a.cfg.MinEpoch,
		MaxEpoch:      a.cfg.MaxEpoch,
		EpochInterval: a.curInterval,
		Retain:        a.curRetain,
		Allocator:     a.cfg.Allocator.Name(),
		Allocations:   append([]int64(nil), a.lastAllocs...),
	}
	if a.weights != nil {
		st.Weights = append([]float64(nil), a.weights...)
	}
	if a.minLines != nil {
		st.MinLines = append([]int64(nil), a.minLines...)
	}
	if a.maxLines != nil {
		st.MaxLines = append([]int64(nil), a.maxLines...)
	}
	return st
}

// SetEvictHook installs fn to be called once per line the underlying
// cache evicts, with the line's logical partition and address, and
// reports whether the full cache stack supports eviction notification
// (every layer down to the arrays must). The hook fires on the
// accessing goroutine with a shard lock held: it must be fast and must
// not re-enter the cache. Install it before traffic flows; installing
// or clearing concurrently with accesses is racy.
func (a *Cache) SetEvictHook(fn func(part int, addr uint64)) bool {
	return a.sc.SetEvictHook(fn)
}

// Invalidate drops logical partition p's line for addr, if resident,
// and reports whether one was dropped. Not an access: no monitor
// observation, no stats, no epoch progress, and the eviction hook does
// not fire. Returns false when the underlying cache does not support
// invalidation. p must be in [0, NumLogical()).
func (a *Cache) Invalidate(addr uint64, p int) bool {
	a.checkPartition(p)
	return a.sc.Invalidate(addr, p)
}

// Epochs returns how many epoch steps have measured traffic (idle
// no-op steps are skipped and not counted).
func (a *Cache) Epochs() int {
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	return a.epochs
}

// Allocations returns the most recent per-partition allocation in lines.
func (a *Cache) Allocations() []int64 {
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	out := make([]int64, len(a.lastAllocs))
	copy(out, a.lastAllocs)
	return out
}

// Curve returns partition p's most recently extracted miss curve (misses
// per kilo-access, EWMA over recent epochs), or nil before the first
// epoch with traffic. p must be in [0, NumLogical()).
func (a *Cache) Curve(p int) *curve.Curve {
	a.checkPartition(p)
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	return a.lastCurves[p]
}

// Err returns the most recent epoch step's error (nil when it succeeded).
func (a *Cache) Err() error {
	a.epochMu.Lock()
	defer a.epochMu.Unlock()
	return a.lastErr
}

// Config returns partition p's current Talus configuration. p must be
// in [0, NumLogical()).
func (a *Cache) Config(p int) core.Config {
	a.checkPartition(p)
	return a.sc.Config(p)
}

// NumLogical returns the number of software-visible partitions.
func (a *Cache) NumLogical() int { return a.n }

// EnableSharedHits switches the underlying cache stack into lock-free
// hit mode (see core.SharedHitEnabler) and reports whether it took end
// to end. The adaptive layer's own hot path is already contention-free —
// sliced monitors and atomic access counters — so this is the last
// switch needed for a fully shared-hit serving path. One-way; call
// before concurrent traffic starts.
func (a *Cache) EnableSharedHits() bool { return a.sc.EnableSharedHits() }

// Monitor exposes partition p's sliced epoch monitor. Identity tests
// compare its merged histograms against a single-monitor baseline fed
// the same stream; production callers have no reason to touch it.
func (a *Cache) Monitor(p int) *monitor.SlicedEpochMonitor {
	a.checkPartition(p)
	return a.mons[p].mon
}

// Shadowed exposes the wrapped Talus runtime (shadow sizes, inner cache).
func (a *Cache) Shadowed() *core.ShadowedCache { return a.sc }

// Allocator returns the configured allocation policy.
func (a *Cache) Allocator() alloc.Allocator { return a.cfg.Allocator }
