package adaptive_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"talus/internal/adaptive"
	"talus/internal/cache"
	"talus/internal/hash"
	"talus/internal/sim"
)

// buildAdaptive constructs the full serving stack the way production
// callers do: sharded inner cache, Talus runtime, control loop.
func buildAdaptive(t *testing.T, capacity int64, shards, logical int, cfg adaptive.Config) *adaptive.Cache {
	t.Helper()
	ac, err := sim.BuildAdaptiveCache("vantage", capacity, 16, shards, logical, "LRU", 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ac
}

func TestAdaptiveConvergesOnCliff(t *testing.T) {
	// Partition 0 scans 6144 lines cyclically (cliff at 6144); partition
	// 1 reuses 2048 lines at random. The loop must discover the rand
	// partition's small working set, hand the scanner the rest, and put
	// the scanner's partition on its hull via shadow partitioning — all
	// from its own measurements.
	const capacity = 8192
	const scanLines = 6144
	const randLines = 2048
	ac := buildAdaptive(t, capacity, 1, 2, adaptive.Config{
		EpochAccesses: 1 << 18,
		Seed:          7,
	})

	rng := hash.NewSplitMix64(3)
	var pos uint64
	const batch = 2048
	scanBuf := make([]uint64, batch)
	randBuf := make([]uint64, batch)
	scanHits := make([]bool, batch)
	var tailScanHits, tailScanAcc int64
	const perPart = 6 << 20
	for fed := 0; fed < perPart; fed += batch {
		for i := range scanBuf {
			scanBuf[i] = pos | 1<<48
			pos = (pos + 1) % scanLines
			randBuf[i] = rng.Uint64n(randLines) | 2<<48
		}
		n := ac.AccessBatch(scanBuf, 0, scanHits)
		ac.AccessBatch(randBuf, 1, nil)
		if fed >= perPart*3/4 {
			tailScanHits += int64(n)
			tailScanAcc += batch
		}
	}

	if ac.Epochs() < 10 {
		t.Fatalf("only %d epochs ran", ac.Epochs())
	}
	if err := ac.Err(); err != nil {
		t.Fatalf("control loop error: %v", err)
	}
	allocs := ac.Allocations()
	if allocs[1] < randLines*3/4 {
		t.Errorf("rand partition got %d lines, needs ≈ %d", allocs[1], randLines)
	}
	if allocs[0] < allocs[1] {
		t.Errorf("scanner got %d ≤ rand's %d lines", allocs[0], allocs[1])
	}
	// The scanner cannot fit (6144 > 8192·0.9 − 2048), so Talus must
	// interpolate its cliff: without shadow partitioning a 4–5k-line LRU
	// partition under a 6144-line scan hits never; on the hull it hits
	// roughly alloc/footprint of the time.
	hitRate := float64(tailScanHits) / float64(tailScanAcc)
	if hitRate < 0.4 {
		t.Errorf("steady-state scan hit rate %.3f; control loop failed to interpolate the cliff", hitRate)
	}
}

func TestAdaptiveRaceHammer(t *testing.T) {
	// Concurrent AccessBatch traffic from many goroutines across
	// partitions while epochs reconfigure underneath. Run with -race;
	// afterwards the sharded stats must conserve accesses exactly.
	const capacity = 16384
	const goroutines = 8
	const batch = 512
	const perG = 400 * batch
	ac := buildAdaptive(t, capacity, 4, 2, adaptive.Config{
		EpochAccesses: 1 << 16,
		Seed:          11,
	})

	var wg sync.WaitGroup
	stopForce := make(chan struct{})
	var forceDone sync.WaitGroup
	forceDone.Add(1)
	go func() {
		// Forced epoch reconfigures racing the batch traffic: the epoch
		// step drains every monitor slice and reprograms shadow sizes
		// while AccessBatch streams through the same monitors and cache.
		defer forceDone.Done()
		for {
			select {
			case <-stopForce:
				return
			default:
			}
			if err := ac.ForceEpoch(); err != nil {
				t.Errorf("forced epoch: %v", err)
				return
			}
		}
	}()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := hash.NewSplitMix64(uint64(g) * 977)
			buf := make([]uint64, batch)
			hits := make([]bool, batch)
			part := g % 2
			for fed := 0; fed < perG; fed += batch {
				for i := range buf {
					buf[i] = rng.Uint64n(8192) | uint64(part+1)<<48
				}
				ac.AccessBatch(buf, part, hits)
			}
		}(g)
	}
	wg.Wait()
	close(stopForce)
	forceDone.Wait()

	stats := ac.Shadowed().Inner().(*cache.ShardedCache).Stats()
	if want := int64(goroutines * perG); stats.Accesses != want {
		t.Fatalf("accesses %d, want %d", stats.Accesses, want)
	}
	if stats.Hits+stats.Misses != stats.Accesses {
		t.Fatalf("hit/miss accounting broken: %+v", stats)
	}
	if ac.Epochs() == 0 {
		t.Fatal("no epochs ran under concurrent traffic")
	}
	if err := ac.Err(); err != nil {
		t.Fatalf("control loop error: %v", err)
	}
	// The loop must still be live after the hammer: force one more epoch.
	if err := ac.ForceEpoch(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionRangeValidation is the regression test for the
// out-of-range partition bug: Access/AccessBatch/Curve/Config with a
// bad p used to panic deep inside monSlot indexing with a bare bounds
// error; they must now fail fast with a descriptive message.
func TestPartitionRangeValidation(t *testing.T) {
	ac := buildAdaptive(t, 4096, 1, 2, adaptive.Config{Seed: 1})
	wantPanic := func(name string, p int, fn func()) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s(p=%d): no panic", name, p)
			}
			msg, ok := r.(string)
			if !ok || !strings.Contains(msg, fmt.Sprintf("partition %d out of range [0,2)", p)) {
				t.Fatalf("%s(p=%d): panic = %v, want descriptive range message", name, p, r)
			}
		}()
		fn()
	}
	for _, p := range []int{-1, 2, 100} {
		wantPanic("Access", p, func() { ac.Access(1, p) })
		wantPanic("AccessBatch", p, func() { ac.AccessBatch([]uint64{1}, p, nil) })
		wantPanic("Curve", p, func() { ac.Curve(p) })
		wantPanic("Config", p, func() { ac.Config(p) })
	}
	// In-range indices still work.
	ac.Access(1, 0)
	if n := ac.AccessBatch([]uint64{1, 2}, 1, nil); n < 0 {
		t.Fatal("valid batch failed")
	}
	if c := ac.Curve(1); c != nil {
		t.Fatalf("curve before first epoch = %v", c)
	}
}
