package adaptive_test

import (
	"testing"
	"time"

	"talus/internal/adaptive"
	"talus/internal/hash"
)

// TestEpochIntervalTicker proves the wall-clock trigger: traffic far
// below the access-count threshold still gets reconfigured, because the
// background ticker drives the epoch step on time.
func TestEpochIntervalTicker(t *testing.T) {
	ac := buildAdaptive(t, 4096, 1, 2, adaptive.Config{
		EpochAccesses: 1 << 40, // the access clock will never fire
		EpochInterval: time.Millisecond,
		Seed:          5,
	})
	defer ac.Close()

	// A trickle of traffic: enough to measure, nowhere near 2^40.
	rng := hash.NewSplitMix64(9)
	buf := make([]uint64, 256)
	for i := range buf {
		buf[i] = rng.Uint64n(1024) | 1<<48
	}
	ac.AccessBatch(buf, 0, nil)

	// Wait for a tick that measured the trickle (an idle tick racing in
	// before the batch is a trivially successful epoch with no curve).
	deadline := time.Now().Add(5 * time.Second)
	for ac.Curve(0) == nil {
		if time.Now().After(deadline) {
			t.Fatalf("ticker never measured an epoch (%d epochs ran)", ac.Epochs())
		}
		time.Sleep(time.Millisecond)
	}
	if err := ac.Err(); err != nil {
		t.Fatalf("ticker epoch error: %v", err)
	}
	if ac.Epochs() == 0 {
		t.Fatal("curve extracted but epoch count still zero")
	}
}

// TestCloseStopsTicker asserts Close is idempotent, halts the
// background goroutine, and leaves the access-driven datapath usable.
func TestCloseStopsTicker(t *testing.T) {
	ac := buildAdaptive(t, 4096, 2, 2, adaptive.Config{
		EpochInterval: time.Millisecond,
		Seed:          6,
	})
	if err := ac.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ac.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	epochs := ac.Epochs()
	time.Sleep(20 * time.Millisecond)
	if got := ac.Epochs(); got != epochs {
		t.Fatalf("epochs advanced from %d to %d after Close", epochs, got)
	}
	// The datapath (and ForceEpoch) still work after Close.
	ac.Access(1|1<<48, 0)
	if err := ac.ForceEpoch(); err != nil {
		t.Fatal(err)
	}
	// Close on a ticker-less cache is a no-op.
	plain := buildAdaptive(t, 4096, 1, 1, adaptive.Config{Seed: 7})
	if err := plain.Close(); err != nil {
		t.Fatal(err)
	}
}
