package adaptive_test

import (
	"testing"
	"time"

	"talus/internal/adaptive"
	"talus/internal/hash"
)

// TestIdleEpochsAreSkipped is the regression test for the idle-decay
// bug: the wall-clock ticker used to fire the full epoch step with zero
// observed accesses, EWMA-decaying live curves toward empty. Idle
// epochs must now be complete no-ops.
func TestIdleEpochsAreSkipped(t *testing.T) {
	ac := buildAdaptive(t, 4096, 1, 2, adaptive.Config{
		EpochAccesses: 1 << 40,
		EpochInterval: time.Millisecond,
		Seed:          21,
	})
	defer ac.Close()

	// Dozens of ticks on a completely idle cache: no epoch may count.
	time.Sleep(50 * time.Millisecond)
	if got := ac.Epochs(); got != 0 {
		t.Fatalf("%d epochs ran on an idle cache", got)
	}
	if c := ac.Curve(0); c != nil {
		t.Fatalf("idle cache extracted a curve: %v", c)
	}

	// After real traffic the ticker measures as before.
	rng := hash.NewSplitMix64(3)
	buf := make([]uint64, 512)
	for i := range buf {
		buf[i] = rng.Uint64n(1024) | 1<<48
	}
	ac.AccessBatch(buf, 0, nil)
	deadline := time.Now().Add(5 * time.Second)
	for ac.Curve(0) == nil {
		if time.Now().After(deadline) {
			t.Fatal("ticker never measured the traffic")
		}
		time.Sleep(time.Millisecond)
	}
	measured := ac.Epochs()
	if measured == 0 {
		t.Fatal("curve extracted but epoch count still zero")
	}
	// Back to idle: the epoch count must freeze again.
	time.Sleep(30 * time.Millisecond)
	if got := ac.Epochs(); got != measured {
		t.Fatalf("epochs advanced from %d to %d with no traffic", measured, got)
	}
}

// TestIdlePartitionCurvePreserved: when the cache has traffic but one
// partition is idle, that partition's monitor must not be decayed and
// its last measured curve must stand — previously its denominator grew
// while its counters decayed, starving the idle tenant of allocation.
func TestIdlePartitionCurvePreserved(t *testing.T) {
	ac := buildAdaptive(t, 4096, 1, 2, adaptive.Config{
		EpochAccesses: 1 << 40, // epochs only via ForceEpoch
		Seed:          22,
	})
	rng := hash.NewSplitMix64(5)
	feed := func(p int) {
		buf := make([]uint64, 2048)
		for i := range buf {
			buf[i] = rng.Uint64n(1024) | uint64(p+1)<<48
		}
		ac.AccessBatch(buf, p, nil)
	}
	feed(0)
	feed(1)
	if err := ac.ForceEpoch(); err != nil {
		t.Fatal(err)
	}
	c1 := ac.Curve(1)
	if c1 == nil {
		t.Fatal("partition 1 not measured")
	}
	// Partition 1 goes idle for several epochs of partition-0 traffic.
	for e := 0; e < 5; e++ {
		feed(0)
		if err := ac.ForceEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if got := ac.Curve(1); got != c1 {
		t.Fatalf("idle partition's curve was replaced: %v -> %v", c1, got)
	}
	// And when it returns, measurement resumes.
	feed(1)
	if err := ac.ForceEpoch(); err != nil {
		t.Fatal(err)
	}
	if got := ac.Curve(1); got == c1 {
		t.Fatal("returning partition was not re-measured")
	}
}

// TestChurnControllerRoundTrip is the satellite round trip: a stable
// workload drives the self-tuned epoch budget up to MaxEpoch; an
// injected phase shift (the scan-vs-rand flip of examples/adaptive)
// snaps it back down within two epochs.
func TestChurnControllerRoundTrip(t *testing.T) {
	const capacity = 4096
	const epoch = 1 << 16
	const maxEpoch = 8 * epoch
	ac := buildAdaptive(t, capacity, 1, 2, adaptive.Config{
		EpochAccesses: epoch,
		MaxEpoch:      maxEpoch,
		SelfTune:      true,
		Seed:          23,
	})

	rng := hash.NewSplitMix64(9)
	buf := make([]uint64, 4096)
	stable := func() {
		for i := range buf {
			buf[i] = rng.Uint64n(1024) | 1<<48
		}
		ac.AccessBatch(buf, 0, nil)
		for i := range buf {
			buf[i] = rng.Uint64n(512) | 2<<48
		}
		ac.AccessBatch(buf, 1, nil)
	}
	// Phase 1: stable traffic. Reaching MaxEpoch needs 3 doublings × 2
	// calm epochs, plus slack for the early novel-curve epochs; feed
	// generously and watch the controller.
	deadlineEpochs := 64
	for e := 0; e < deadlineEpochs; e++ {
		st := ac.Controller()
		if st.EpochAccesses == maxEpoch {
			break
		}
		// One current-budget epoch's worth of traffic.
		for fed := int64(0); fed < st.EpochAccesses; fed += int64(2 * len(buf)) {
			stable()
		}
	}
	st := ac.Controller()
	if st.EpochAccesses != maxEpoch {
		t.Fatalf("stable workload never reached MaxEpoch: budget %d after %d epochs (churn %.3f)",
			st.EpochAccesses, st.Epochs, st.Churn)
	}
	if err := ac.Err(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: phase shift — partition 0 flips from a 1k-line random
	// working set to a 3k-line cyclic scan over a fresh address range.
	var pos uint64
	shifted := func() {
		for i := range buf {
			buf[i] = (pos + 1<<20) | 1<<48
			pos = (pos + 1) % 3072
		}
		ac.AccessBatch(buf, 0, nil)
		for i := range buf {
			buf[i] = rng.Uint64n(512) | 2<<48
		}
		ac.AccessBatch(buf, 1, nil)
	}
	epochsBefore := ac.Controller().Epochs
	for ac.Controller().Epochs < epochsBefore+2 {
		shifted()
	}
	st = ac.Controller()
	if st.EpochAccesses >= maxEpoch {
		t.Fatalf("churn spike did not shrink the epoch budget within two epochs: budget %d, churn %.3f",
			st.EpochAccesses, st.Churn)
	}
	if !st.SelfTune || st.MinEpoch != epoch || st.MaxEpoch != maxEpoch {
		t.Fatalf("controller state inconsistent: %+v", st)
	}
}

// TestWeightedTenantAttractsCapacity: two partitions with identical
// workloads; weighting one 8× must shift its allocation share after the
// loop has measured — and the live weight must be visible in the
// controller snapshot.
func TestWeightedTenantAttractsCapacity(t *testing.T) {
	const capacity = 4096
	ac := buildAdaptive(t, capacity, 1, 2, adaptive.Config{
		EpochAccesses: 1 << 40,
		Seed:          24,
	})
	if got := ac.Weights(); got != nil {
		t.Fatalf("fresh cache has weights %v", got)
	}
	if err := ac.SetWeight(1, 8); err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(11)
	buf := make([]uint64, 4096)
	for e := 0; e < 8; e++ {
		for p := 0; p < 2; p++ {
			for i := range buf {
				// Both partitions want ~3k lines; the cache fits ~4k total.
				buf[i] = rng.Uint64n(3072) | uint64(p+1)<<48
			}
			ac.AccessBatch(buf, p, nil)
		}
		if err := ac.ForceEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := ac.Allocations()
	if allocs[1] <= allocs[0] {
		t.Fatalf("8×-weighted partition got %d lines vs %d", allocs[1], allocs[0])
	}
	st := ac.Controller()
	if len(st.Weights) != 2 || st.Weights[0] != 1 || st.Weights[1] != 8 {
		t.Fatalf("controller weights = %v", st.Weights)
	}
	if st.Allocator != "hill" {
		t.Fatalf("controller allocator = %q", st.Allocator)
	}
	// Validation at the API boundary.
	if err := ac.SetWeight(0, -1); err == nil {
		t.Fatal("negative weight accepted")
	}
	if err := ac.SetPartitionLines(0, 100, 50); err == nil {
		t.Fatal("cap below floor accepted")
	}
	if err := ac.SetPartitionLines(1, 512, 0); err != nil {
		t.Fatal(err)
	}
}
