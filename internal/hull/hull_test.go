package hull

import (
	"math"
	"testing"
	"testing/quick"

	"talus/internal/curve"
)

// fig3Curve is the paper's example miss curve (Fig. 3): an app accessing
// 2 MB at random and 3 MB sequentially at 24 APKI, yielding 12 MPKI at
// 2 MB and a cliff at 5 MB down to 3 MPKI. Sizes in lines.
func fig3Curve() *curve.Curve {
	mb := func(x float64) float64 { return curve.MBToLines(x) }
	return curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(2), MPKI: 12},
		{Size: mb(4.999), MPKI: 12}, // plateau
		{Size: mb(5), MPKI: 3},      // cliff
		{Size: mb(10), MPKI: 3},
	})
}

func TestLowerFig3(t *testing.T) {
	h := Lower(fig3Curve())
	// The hull must bridge the plateau: (0,24), (2MB,12), (5MB,3), (10MB,3).
	want := []curve.Point{
		{Size: 0, MPKI: 24},
		{Size: curve.MBToLines(2), MPKI: 12},
		{Size: curve.MBToLines(5), MPKI: 3},
		{Size: curve.MBToLines(10), MPKI: 3},
	}
	if h.NumPoints() != len(want) {
		t.Fatalf("hull has %d points, want %d: %v", h.NumPoints(), len(want), h)
	}
	for i, w := range want {
		got := h.PointAt(i)
		if math.Abs(got.Size-w.Size) > 1e-9 || math.Abs(got.MPKI-w.MPKI) > 1e-9 {
			t.Errorf("hull[%d] = %+v, want %+v", i, got, w)
		}
	}
	// Paper's headline number: the hull at 4 MB is 6 MPKI (vs LRU's 12).
	if got := h.Eval(curve.MBToLines(4)); math.Abs(got-6) > 1e-9 {
		t.Errorf("hull(4MB) = %g MPKI, want 6", got)
	}
}

func TestLowerDegenerate(t *testing.T) {
	single := curve.MustNew([]curve.Point{{Size: 10, MPKI: 5}})
	if h := Lower(single); h.NumPoints() != 1 {
		t.Fatal("single-point hull should be the point itself")
	}
	two := curve.MustNew([]curve.Point{{Size: 0, MPKI: 5}, {Size: 10, MPKI: 1}})
	if h := Lower(two); h.NumPoints() != 2 {
		t.Fatal("two-point hull should keep both points")
	}
	flat := curve.MustNew([]curve.Point{{Size: 0, MPKI: 5}, {Size: 5, MPKI: 5}, {Size: 10, MPKI: 5}})
	h := Lower(flat)
	if h.NumPoints() != 2 {
		t.Fatalf("flat hull should collapse to endpoints, got %v", h)
	}
}

func TestLowerAlreadyConvex(t *testing.T) {
	c := curve.MustNew([]curve.Point{{Size: 0, MPKI: 20}, {Size: 10, MPKI: 10}, {Size: 20, MPKI: 5}, {Size: 30, MPKI: 3}, {Size: 40, MPKI: 2.5}})
	h := Lower(c)
	if h.NumPoints() != c.NumPoints() {
		t.Fatalf("convex curve's hull should keep all points: %v", h)
	}
}

func TestNeighbors(t *testing.T) {
	h := Lower(fig3Curve())
	mb := curve.MBToLines

	alpha, beta, ok := Neighbors(h, mb(4))
	if !ok {
		t.Fatal("interior size should need interpolation")
	}
	if alpha.Size != mb(2) || beta.Size != mb(5) {
		t.Fatalf("Neighbors(4MB) = %g, %g MB", curve.LinesToMB(alpha.Size), curve.LinesToMB(beta.Size))
	}

	// Exactly on a vertex: no interpolation.
	if _, _, ok := Neighbors(h, mb(2)); ok {
		t.Fatal("on-vertex size should be degenerate")
	}
	// Below the first point and above the last: degenerate.
	if _, _, ok := Neighbors(h, 0); ok {
		t.Fatal("at or below hull start should be degenerate")
	}
	if _, _, ok := Neighbors(h, mb(10)); ok {
		t.Fatal("at hull end should be degenerate")
	}
	if _, _, ok := Neighbors(h, mb(50)); ok {
		t.Fatal("beyond hull end should be degenerate")
	}
}

func TestNeighborsEmpty(t *testing.T) {
	if _, _, ok := Neighbors(&curve.Curve{}, 5); ok {
		t.Fatal("empty hull must be degenerate")
	}
}

// quickCurve builds a valid random curve from fuzz input.
func quickCurve(sizes []uint16, mpkis []uint16) *curve.Curve {
	n := len(sizes)
	if len(mpkis) < n {
		n = len(mpkis)
	}
	if n == 0 {
		return nil
	}
	pts := make([]curve.Point, 0, n)
	x := 0.0
	for i := 0; i < n; i++ {
		x += float64(sizes[i]%1000) + 1
		pts = append(pts, curve.Point{Size: x, MPKI: float64(mpkis[i] % 5000)})
	}
	return curve.MustNew(pts)
}

// Property: the hull is convex, lies on or below the curve everywhere,
// keeps the endpoints, uses only original points, and is idempotent.
func TestQuickHullInvariants(t *testing.T) {
	f := func(sizes, mpkis []uint16) bool {
		c := quickCurve(sizes, mpkis)
		if c == nil {
			return true
		}
		h := Lower(c)
		// Convexity.
		if !h.IsConvex(1e-9) {
			return false
		}
		// Endpoints preserved.
		if h.PointAt(0) != c.PointAt(0) || h.PointAt(h.NumPoints()-1) != c.PointAt(c.NumPoints()-1) {
			return false
		}
		// Below or equal to the original at every original point.
		for i := 0; i < c.NumPoints(); i++ {
			p := c.PointAt(i)
			if h.Eval(p.Size) > p.MPKI+1e-6 {
				return false
			}
		}
		// Hull vertices are original points.
		orig := make(map[curve.Point]bool, c.NumPoints())
		for i := 0; i < c.NumPoints(); i++ {
			orig[c.PointAt(i)] = true
		}
		for i := 0; i < h.NumPoints(); i++ {
			if !orig[h.PointAt(i)] {
				return false
			}
		}
		// Idempotence.
		hh := Lower(h)
		if hh.NumPoints() != h.NumPoints() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: Neighbors returns a bracketing segment whose interpolation
// matches the hull's own evaluation.
func TestQuickNeighborsInterpolation(t *testing.T) {
	f := func(sizes, mpkis []uint16, probeRaw uint16) bool {
		c := quickCurve(sizes, mpkis)
		if c == nil || c.NumPoints() < 2 {
			return true
		}
		h := Lower(c)
		span := h.MaxSize() - h.MinSize()
		probe := h.MinSize() + span*float64(probeRaw)/65535
		alpha, beta, ok := Neighbors(h, probe)
		if !ok {
			return true
		}
		if !(alpha.Size <= probe && probe < beta.Size) {
			return false
		}
		rho := (beta.Size - probe) / (beta.Size - alpha.Size)
		interp := rho*alpha.MPKI + (1-rho)*beta.MPKI
		return math.Abs(interp-h.Eval(probe)) < 1e-6*(1+interp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
