// Native fuzzing for the convex-hull pre-processing step. The hull is
// the curve Talus promises to realize (Theorem 6), so its structural
// invariants — convexity, lying on or below the input, keeping the
// endpoints — are load-bearing for every downstream guarantee.

package hull

import (
	"testing"

	"talus/internal/curve"
)

// curveFromBytes decodes fuzz input into a valid miss curve: byte pairs
// become (size-delta, MPKI) points with strictly increasing sizes and
// finite non-negative values, so every input the fuzzer produces is a
// curve the rest of the system could hand to Lower.
func curveFromBytes(data []byte) *curve.Curve {
	if len(data) < 2 {
		return nil
	}
	pts := make([]curve.Point, 0, len(data)/2)
	size := 0.0
	for i := 0; i+1 < len(data); i += 2 {
		size += float64(data[i]) + 1 // strictly increasing
		pts = append(pts, curve.Point{Size: size, MPKI: float64(data[i+1]) * 0.5})
	}
	return curve.MustNew(pts)
}

func FuzzConvexHull(f *testing.F) {
	f.Add([]byte{10, 40, 10, 39, 10, 2, 10, 1})          // one cliff
	f.Add([]byte{1, 50, 1, 50, 1, 50})                   // flat
	f.Add([]byte{5, 100, 5, 80, 5, 60, 5, 40, 5, 20})    // linear
	f.Add([]byte{3, 10, 3, 90, 3, 5, 3, 70, 3, 1})       // non-monotone
	f.Add([]byte{255, 255, 1, 0, 255, 128, 2, 64, 0, 0}) // extremes
	f.Fuzz(func(t *testing.T, data []byte) {
		c := curveFromBytes(data)
		if c == nil {
			return
		}
		h := Lower(c)

		// The hull is convex (no cliffs left, Theorem 6).
		if !h.IsConvex(1e-9) {
			t.Fatalf("hull not convex: %v from %v", h, c)
		}
		// The hull keeps the input's endpoints...
		if h.PointAt(0) != c.PointAt(0) || h.PointAt(h.NumPoints()-1) != c.PointAt(c.NumPoints()-1) {
			t.Fatalf("hull endpoints moved: %v from %v", h, c)
		}
		// ...selects a subset of the input's points in increasing order...
		j := 0
		for i := 0; i < h.NumPoints(); i++ {
			p := h.PointAt(i)
			for j < c.NumPoints() && c.PointAt(j) != p {
				j++
			}
			if j == c.NumPoints() {
				t.Fatalf("hull point %v not in input %v (or out of order)", p, c)
			}
		}
		// ...and lies on or below the input everywhere (checked at every
		// input vertex; both are piecewise linear on those knots).
		for i := 0; i < c.NumPoints(); i++ {
			p := c.PointAt(i)
			if hv := h.Eval(p.Size); hv > p.MPKI+1e-9 {
				t.Fatalf("hull above input at size %g: %g > %g", p.Size, hv, p.MPKI)
			}
		}
		// Idempotence: the hull of a hull is itself.
		h2 := Lower(h)
		if h2.NumPoints() != h.NumPoints() {
			t.Fatalf("hull not idempotent: %v -> %v", h, h2)
		}
	})
}
