package hull

import (
	"talus/internal/curve"
)

// Lower returns the lower convex hull of c as a new curve. The hull's
// points are a subset of c's points, always including the first and last;
// evaluated anywhere in between, the hull is ≤ the original curve.
func Lower(c *curve.Curve) *curve.Curve {
	pts := c.Points()
	if len(pts) <= 2 {
		return curve.MustNew(pts)
	}
	// Monotone-chain lower hull: maintain a stack of hull points; pop
	// while the last two stack points and the incoming point fail to make
	// a counter-clockwise turn (i.e., while the middle point lies on or
	// above the chord and thus cannot be a lower-hull vertex).
	stack := make([]curve.Point, 0, len(pts))
	for _, p := range pts {
		for len(stack) >= 2 && cross(stack[len(stack)-2], stack[len(stack)-1], p) <= 0 {
			stack = stack[:len(stack)-1]
		}
		stack = append(stack, p)
	}
	return curve.MustNew(stack)
}

// cross returns the z-component of (b−a) × (c−a). Positive means the
// points a→b→c turn counter-clockwise (b below chord a—c in miss-curve
// orientation), which keeps b on the lower hull.
func cross(a, b, c curve.Point) float64 {
	return (b.Size-a.Size)*(c.MPKI-a.MPKI) - (b.MPKI-a.MPKI)*(c.Size-a.Size)
}

// Neighbors returns the hull points α and β that bracket size s on the
// already-computed hull h, per Theorem 6: α is the largest hull size no
// greater than s, and β is the smallest hull size larger than s. When s
// lies on or beyond the hull's extremes, both return the clamped extreme
// point and ok is false, signalling that no interpolation is needed
// (the original policy is already on its hull at s).
func Neighbors(h *curve.Curve, s float64) (alpha, beta curve.Point, ok bool) {
	n := h.NumPoints()
	if n == 0 {
		return curve.Point{}, curve.Point{}, false
	}
	first, last := h.PointAt(0), h.PointAt(n-1)
	if s <= first.Size {
		return first, first, false
	}
	if s >= last.Size {
		return last, last, false
	}
	for i := 1; i < n; i++ {
		p := h.PointAt(i)
		if p.Size > s {
			a := h.PointAt(i - 1)
			if a.Size == s {
				// Exactly on a hull vertex: no interpolation needed.
				return a, a, false
			}
			return a, p, true
		}
	}
	return last, last, false // unreachable given the guards above
}
