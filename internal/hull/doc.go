// Package hull computes lower convex hulls of miss curves.
//
// Talus traces the convex hull of the underlying policy's miss curve
// (paper Theorem 6): the hull is the smallest convex curve lying on or
// below the original — "the curve produced by stretching a taut rubber
// band across the curve from below" (§III). The paper computes hulls with
// the three-coins algorithm; for points already sorted by size this is
// equivalent to Andrew's monotone-chain scan implemented here, which is
// likewise a single linear pass.
package hull
