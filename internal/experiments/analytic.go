// Analytic experiments: the worked example of §III (Figs. 2, 3) and the
// bypassing comparison of §V-C (Figs. 5, 6). These need no simulation —
// they exercise the Talus math directly, exactly as the paper's text
// walks through it — plus Table I, which is configuration, not data.

package experiments

import (
	"talus/internal/bypass"
	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/hull"
	"talus/internal/sim"
)

// exampleCurve is the miss curve of Fig. 3: an application accessing 2 MB
// at random plus 3 MB sequentially at 24 APKI — 12 MPKI at 2 MB, a
// plateau, then a cliff at 5 MB down to 3 MPKI.
func exampleCurve() *curve.Curve {
	mb := curve.MBToLines
	return curve.MustNew([]curve.Point{
		{Size: 0, MPKI: 24},
		{Size: mb(0.5), MPKI: 21},
		{Size: mb(1), MPKI: 18},
		{Size: mb(1.5), MPKI: 15},
		{Size: mb(2), MPKI: 12},
		{Size: mb(3), MPKI: 12},
		{Size: mb(4), MPKI: 12},
		{Size: mb(4.999), MPKI: 12},
		{Size: mb(5), MPKI: 3},
		{Size: mb(6), MPKI: 3},
		{Size: mb(8), MPKI: 3},
		{Size: mb(10), MPKI: 3},
	})
}

// runFig2 reproduces Fig. 2's decomposition: the original caches at 2 MB
// and 5 MB split by sets 1:2, and the Talus cache at 4 MB whose top
// partition behaves like the 2 MB cache's top third and whose bottom
// partition behaves like the 5 MB cache's bottom two-thirds.
func runFig2(cfg Config) error {
	m := exampleCurve()
	mb := curve.MBToLines
	const apki = 24.0

	t := newTable(cfg, "cache", "partition", "size(MB)", "accesses(APKI)", "misses(MPKI)")

	// Fig. 2a: the original 2 MB cache split 1:2 by sets. Accesses and
	// misses split proportionally (Theorem 4 with proportional sampling).
	m2 := m.Eval(mb(2))
	t.row("original@2MB", "top 1/3", 2.0/3, apki/3, m2/3)
	t.row("original@2MB", "bottom 2/3", 2*2.0/3, apki*2/3, m2*2/3)

	// Fig. 2b: the original 5 MB cache split 1:2.
	m5 := m.Eval(mb(5))
	t.row("original@5MB", "top 1/3", 5.0/3, apki/3, m5/3)
	t.row("original@5MB", "bottom 2/3", 2*5.0/3, apki*2/3, m5*2/3)

	// Fig. 2c: the Talus 4 MB cache. Configure with zero margin to get
	// the textbook numbers: ρ = 1/3, s1 = 2/3 MB, s2 = 10/3 MB.
	c, err := core.Configure(m, mb(4), 0)
	if err != nil {
		return err
	}
	t.row("talus@4MB", "α (top)", curve.LinesToMB(c.S1), apki*c.RhoIdeal, c.RhoIdeal*c.MAlpha)
	t.row("talus@4MB", "β (bottom)", curve.LinesToMB(c.S2), apki*(1-c.RhoIdeal), (1-c.RhoIdeal)*c.MBeta)
	t.row("talus@4MB", "total", 4.0, apki, c.PredictedMPKI)
	return t.flush(cfg, "fig2")
}

// runFig3 prints the example curve, its convex hull, and the Talus
// configuration at 4 MB (the dotted line and annotated point of Fig. 3).
func runFig3(cfg Config) error {
	m := exampleCurve()
	h := hull.Lower(m)
	t := newTable(cfg, "size(MB)", "original(MPKI)", "hull(MPKI)")
	for s := 0.0; s <= 10; s += 0.5 {
		lines := curve.MBToLines(s)
		t.row(s, m.Eval(lines), h.Eval(lines))
	}
	if err := t.flush(cfg, "fig3"); err != nil {
		return err
	}

	c, err := core.Configure(m, curve.MBToLines(4), 0)
	if err != nil {
		return err
	}
	t2 := newTable(cfg, "quantity", "value")
	t2.row("alpha (MB)", curve.LinesToMB(c.Alpha))
	t2.row("beta (MB)", curve.LinesToMB(c.Beta))
	t2.row("rho", c.RhoIdeal)
	t2.row("s1 (MB)", curve.LinesToMB(c.S1))
	t2.row("s2 (MB)", curve.LinesToMB(c.S2))
	t2.row("original MPKI @4MB", m.Eval(curve.MBToLines(4)))
	t2.row("Talus MPKI @4MB", c.PredictedMPKI)
	return t2.flush(cfg, "fig3_config")
}

// runFig5 reproduces the optimal-bypassing decomposition at 4 MB: the
// non-bypassed stream behaves as a 5 MB cache, the bypassed stream adds
// its full miss rate, and the total lands between LRU and Talus.
func runFig5(cfg Config) error {
	m := exampleCurve()
	bc, err := bypass.Optimal(m, curve.MBToLines(4))
	if err != nil {
		return err
	}
	t := newTable(cfg, "quantity", "value")
	t.row("admitted fraction rho", bc.Rho)
	t.row("emulated size (MB)", curve.LinesToMB(bc.Emulated))
	t.row("non-bypassed MPKI", bc.Rho*m.Eval(bc.Emulated))
	t.row("bypassed MPKI", (1-bc.Rho)*bc.M0)
	t.row("total bypassing MPKI", bc.MPKI)
	t.row("LRU MPKI @4MB", m.Eval(curve.MBToLines(4)))
	t.row("Talus MPKI @4MB", core.InterpolatedMPKI(m, curve.MBToLines(4)))
	return t.flush(cfg, "fig5")
}

// runFig6 prints the three curves of Fig. 6: original, optimal bypassing,
// and Talus (the hull). The ordering hull ≤ bypassing ≤ original must
// hold pointwise (Corollary 8).
func runFig6(cfg Config) error {
	m := exampleCurve()
	h := hull.Lower(m)
	var sizes []float64
	for s := 0.25; s <= 10; s += 0.25 {
		sizes = append(sizes, curve.MBToLines(s))
	}
	b, err := bypass.Curve(m, sizes)
	if err != nil {
		return err
	}
	t := newTable(cfg, "size(MB)", "original", "bypassing", "talus(hull)")
	for _, s := range sizes {
		t.row(curve.LinesToMB(s), m.Eval(s), b.Eval(s), h.Eval(s))
	}
	return t.flush(cfg, "fig6")
}

// runTable1 prints the simulated system configuration, mapping Table I's
// rows to this reproduction's substitutes.
func runTable1(cfg Config) error {
	t := newTable(cfg, "component", "paper (Table I)", "this reproduction")
	t.row("Cores", "1 (ST) / 8 (MP) OOO Silvermont-like, 2.4GHz",
		"analytic model: CPI = CPIBase + MPKI/1000·Lat/MLP")
	t.row("L1/L2", "32KB L1, 128KB private L2 (filter locality)",
		"clones emit post-L2 LLC streams directly (APKI)")
	t.row("L3", "shared, non-inclusive, 1MB/core; 32-way or zcache 4/52",
		"hash-indexed 32-way set-assoc; vantage/way/set/ideal schemes")
	t.row("Replacement", "LRU, SRRIP, DRRIP, TA-DRRIP, DIP, PDP",
		"same, implemented per original papers")
	t.row("Partitioning", "Vantage (10% unmanaged), way, set, ideal",
		"same contracts (internal/partition)")
	t.row("Monitors", "UMON 16×64 @1KB + 1:16 extended",
		"UMON 64×64 + 64-way extended @rate/4 (4x coverage)")
	t.row("Main mem", "200 cycles, 12.8GBps/channel",
		"200-cycle penalty / MLP in the IPC model")
	t.row("Reconfiguration", "every 10ms", "every epoch (EpochCycles, default 2M cycles)")
	t.row("Talus margin", "rho +5%", "DefaultMargin = 0.05")
	_ = sim.MemLatency
	return t.flush(cfg, "table1")
}
