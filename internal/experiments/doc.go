// Package experiments regenerates every table and figure in the paper's
// evaluation (§VII). Each experiment prints the same rows/series the
// paper reports (MPKI-vs-size curves, IPC-over-LRU bars, speedup
// quantiles, fairness case studies) and optionally writes CSVs for
// plotting. The cmd/talus-exp binary is a thin CLI over this package, and
// the root bench_test.go runs scaled-down versions as Go benchmarks.
//
// Absolute numbers differ from the paper (synthetic SPEC clones, analytic
// core model — see DESIGN.md §2); the shapes (who wins, by what factor,
// where cliffs and crossovers sit) are the reproduction targets, recorded
// side by side in EXPERIMENTS.md.
package experiments
