package experiments

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func tinyCfg(buf *bytes.Buffer) Config {
	return Config{Tiny: true, Seed: 7, W: buf}
}

func TestRegistryNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, n := range Names() {
		if seen[n] {
			t.Fatalf("duplicate experiment %s", n)
		}
		seen[n] = true
		if About(n) == "" {
			t.Fatalf("experiment %s lacks a description", n)
		}
	}
	if About("nope") != "" {
		t.Fatal("About of unknown experiment should be empty")
	}
}

func TestUnknownExperiment(t *testing.T) {
	if err := Run("nope", Config{W: &bytes.Buffer{}}); err == nil {
		t.Fatal("unknown experiment must fail")
	}
}

// TestAnalyticExperimentsGolden checks the paper's exact numbers in the
// analytic experiments' output.
func TestAnalyticExperimentsGolden(t *testing.T) {
	var buf bytes.Buffer
	cfg := tinyCfg(&buf)
	for _, name := range []string{"fig2", "fig3", "fig5", "fig6", "table1"} {
		if err := Run(name, cfg); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	out := buf.String()
	for _, want := range []string{
		"6.000",  // Talus at 4MB (figs 2, 3)
		"7.200",  // optimal bypassing at 4MB (fig 5)
		"0.333",  // rho (fig 3)
		"0.800",  // bypass rho (fig 5)
		"12.000", // LRU at 4MB
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing golden value %q", want)
		}
	}
}

// TestFig2RowsConsistent parses fig2's CSV and re-checks the arithmetic:
// partition APKI and MPKI must sum to the totals.
func TestFig2RowsConsistent(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{Tiny: true, Seed: 7, W: &buf, OutDir: dir}
	if err := Run("fig2", cfg); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(filepath.Join(dir, "fig2.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // header + 7 data rows
		t.Fatalf("fig2.csv has %d rows", len(rows))
	}
	// Talus rows: α + β must equal the total row.
	get := func(row int, col int) float64 {
		v, err := strconv.ParseFloat(rows[row][col], 64)
		if err != nil {
			t.Fatalf("row %d col %d: %v", row, col, err)
		}
		return v
	}
	// rows[5]=α, rows[6]=β, rows[7]=total; cols: 2=size 3=apki 4=mpki.
	for col := 2; col <= 4; col++ {
		if sum := get(5, col) + get(6, col); sum-get(7, col) > 1e-6 || get(7, col)-sum > 1e-6 {
			t.Errorf("fig2 col %d: α+β = %g, total = %g", col, sum, get(7, col))
		}
	}
}

// TestSimExperimentsTiny smoke-runs the simulation-backed experiments at
// benchmark scale and sanity-checks headline properties from the output
// CSVs.
func TestSimExperimentsTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiments are slow")
	}
	dir := t.TempDir()
	var buf bytes.Buffer
	cfg := Config{Tiny: true, Seed: 7, W: &buf, OutDir: dir}
	if err := Run("fig1", cfg); err != nil {
		t.Fatal(err)
	}
	rows := readCSV(t, filepath.Join(dir, "fig1.csv"))
	// At the mid-plateau row, Talus must clearly beat LRU.
	mid := rows[len(rows)/2]
	lru, _ := strconv.ParseFloat(mid[1], 64)
	tal, _ := strconv.ParseFloat(mid[2], 64)
	if !(tal < lru) {
		t.Errorf("fig1 mid-plateau: Talus %g not below LRU %g", tal, lru)
	}
}

func readCSV(t *testing.T, path string) [][]string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return rows[1:] // drop header
}

func TestSweepSizesScales(t *testing.T) {
	if n := len(sweepSizes(Config{Tiny: true}, 1, 10, 5, 9, 13)); n != 3 {
		t.Fatalf("tiny sweep has %d points", n)
	}
	if n := len(sweepSizes(Config{Quick: true}, 1, 10, 5, 9, 13)); n != 5 {
		t.Fatalf("quick sweep has %d points", n)
	}
	if n := len(sweepSizes(Config{}, 1, 10, 5, 9, 13)); n != 9 {
		t.Fatalf("default sweep has %d points", n)
	}
	if n := len(sweepSizes(Config{Full: true}, 1, 10, 5, 9, 13)); n != 13 {
		t.Fatalf("full sweep has %d points", n)
	}
	sizes := sweepSizes(Config{}, 2, 8, 3, 4, 5)
	if sizes[0] != 2 || sizes[len(sizes)-1] != 8 {
		t.Fatalf("sweep endpoints wrong: %v", sizes)
	}
}

func TestAccessBudgetScales(t *testing.T) {
	wT, mT := accessBudget(Config{Tiny: true}, 1<<20)
	wQ, mQ := accessBudget(Config{Quick: true}, 1<<20)
	wD, mD := accessBudget(Config{}, 1<<20)
	wF, mF := accessBudget(Config{Full: true}, 1<<20)
	if !(wT <= wQ && wQ <= wD && wD <= wF) {
		t.Fatalf("warmups not monotone: %d %d %d %d", wT, wQ, wD, wF)
	}
	if !(mT <= mQ && mQ <= mD && mD <= mF) {
		t.Fatalf("measures not monotone: %d %d %d %d", mT, mQ, mD, mF)
	}
}
