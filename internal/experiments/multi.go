// Multi-programmed experiments: Fig. 12 (random mixes, speedup quantiles)
// and Fig. 13 (fairness case studies with homogeneous copies).

package experiments

import (
	"fmt"

	"talus/internal/curve"
	"talus/internal/hash"
	"talus/internal/sim"
	"talus/internal/stats"
	"talus/internal/workload"
)

// mixScale returns (mix count, per-app fixed work, epoch cycles) by scale.
func mixScale(cfg Config) (int, int64, int64) {
	switch {
	case cfg.Short:
		return 2, 3 << 20, 1 << 19
	case cfg.Tiny:
		return 4, 6 << 20, 1 << 19
	case cfg.Quick:
		return 12, 12 << 20, 1 << 19
	case cfg.Full:
		return 100, 100 << 20, 2 << 20
	default:
		return 30, 30 << 20, 1 << 20
	}
}

// randomMixes draws n 8-app mixes from the memory-intensive pool, as in
// §VII-A ("random mixes of the 18 most memory intensive SPECCPU2006
// apps").
func randomMixes(n int, seed uint64) [][]workload.Spec {
	pool := workload.MemoryIntensive()
	rng := hash.NewSplitMix64(seed)
	mixes := make([][]workload.Spec, n)
	for i := range mixes {
		apps := make([]workload.Spec, sim.CoresMP)
		for j := range apps {
			name := pool[rng.Intn(len(pool))]
			spec, _ := workload.Lookup(name)
			apps[j] = spec
		}
		mixes[i] = apps
	}
	return mixes
}

// runFig12 regenerates Fig. 12: weighted and harmonic speedups over
// unpartitioned LRU for random 8-app mixes under Talus+V/LRU (hill),
// Lookahead/LRU, TA-DRRIP, and Hill/LRU, reported as sorted quantiles.
func runFig12(cfg Config) error {
	nMixes, work, epoch := mixScale(cfg)
	mixes := randomMixes(nMixes, cfg.Seed+51)
	capacity := int64(curve.MBToLines(sim.CoresMP * sim.LLCPerCoreMB))

	modes := []struct {
		label string
		mode  sim.Mode
	}{
		{"Talus+V/LRU(Hill)", sim.ModeTalusHill},
		{"Lookahead", sim.ModeLookaheadLRU},
		{"TA-DRRIP", sim.ModeTADRRIP},
		{"Hill/LRU", sim.ModeHillLRU},
	}

	ws := make(map[string][]float64)
	hs := make(map[string][]float64)
	for _, m := range modes {
		ws[m.label] = make([]float64, nMixes)
		hs[m.label] = make([]float64, nMixes)
	}
	errs := make([]error, nMixes)
	cfg.parallelFor(nMixes, func(mi int) {
		apps := mixes[mi]
		runCfg := func(mode sim.Mode) (*sim.MixResult, error) {
			return sim.RunMix(sim.MixConfig{
				Apps: apps, CapacityLines: capacity, Assoc: sim.DefaultAssoc,
				Mode: mode, EpochCycles: epoch, WorkInstr: work,
				Seed: cfg.Seed + 53 + uint64(mi)*997,
			})
		}
		base, err := runCfg(sim.ModeLRU)
		if err != nil {
			errs[mi] = err
			return
		}
		for _, m := range modes {
			res, err := runCfg(m.mode)
			if err != nil {
				errs[mi] = fmt.Errorf("mix %d mode %s: %w", mi, m.label, err)
				return
			}
			ws[m.label][mi] = stats.WeightedSpeedup(res.IPC, base.IPC)
			hs[m.label][mi] = stats.HarmonicSpeedup(res.IPC, base.IPC)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	for _, metric := range []struct {
		name string
		data map[string][]float64
	}{{"weighted", ws}, {"harmonic", hs}} {
		headers := []string{"quantile"}
		for _, m := range modes {
			headers = append(headers, m.label)
		}
		t := newTable(cfg, headers...)
		sorted := make(map[string][]float64)
		for _, m := range modes {
			sorted[m.label] = stats.Quantiles(metric.data[m.label])
		}
		for i := 0; i < nMixes; i++ {
			row := []any{fmt.Sprintf("%d/%d", i+1, nMixes)}
			for _, m := range modes {
				row = append(row, sorted[m.label][i])
			}
			t.row(row...)
		}
		grow := []any{"gmean"}
		for _, m := range modes {
			grow = append(grow, stats.GeoMean(metric.data[m.label]))
		}
		t.row(grow...)
		fmt.Fprintf(cfg.out(), "--- %s speedup over LRU (%d mixes) ---\n", metric.name, nMixes)
		if err := t.flush(cfg, "fig12_"+metric.name); err != nil {
			return err
		}
	}
	return nil
}

// runFig13 regenerates the fairness case studies: 8 copies of
// libquantum, omnetpp, and xalancbmk across LLC sizes, under fair Talus,
// fair LRU, Lookahead/LRU, and TA-DRRIP. Reported per size: execution
// time vs unpartitioned LRU at the smallest size (lower is better) and
// the CoV of per-core IPC (unfairness; lower is better).
func runFig13(cfg Config) error {
	_, work, epoch := mixScale(cfg)
	apps13 := []string{"libquantum", "omnetpp", "xalancbmk"}
	sizesByApp := map[string][]float64{
		// Cliffs at 32/2/6 MB per copy; sweep past 8 copies' worth.
		"libquantum": sweepSizes(cfg, 8, 72, 4, 6, 9),
		"omnetpp":    sweepSizes(cfg, 2, 24, 4, 6, 9),
		"xalancbmk":  sweepSizes(cfg, 4, 56, 4, 6, 9),
	}
	modes := []struct {
		label string
		mode  sim.Mode
	}{
		{"Talus+V/LRU(Fair)", sim.ModeTalusFair},
		{"Lookahead", sim.ModeLookaheadLRU},
		{"TA-DRRIP", sim.ModeTADRRIP},
		{"Fair/LRU", sim.ModeFairLRU},
		{"LRU", sim.ModeLRU},
	}
	// The fixed work must cover several reuse laps of the app's scan or
	// no scheme can produce hits; laps differ by orders of magnitude
	// across the three apps (libquantum's lap alone is ~16M
	// instructions). The Short smoke drops the floor entirely — its
	// numbers are execution smoke, not results — because this floor, not
	// mixScale, is what used to make BenchmarkFig13Fairness dominate the
	// CI bench run (~3.5 min).
	lapInstr := map[string]int64{
		"libquantum": 16 << 20,
		"omnetpp":    3 << 20,
		"xalancbmk":  6 << 20,
	}
	laps := int64(6)
	if cfg.Short {
		laps = 0
	}

	for _, appName := range apps13 {
		spec, err := mustSpec(appName)
		if err != nil {
			return err
		}
		apps := make([]workload.Spec, sim.CoresMP)
		for i := range apps {
			apps[i] = spec
		}
		sizes := sizesByApp[appName]
		appWork := work
		if floor := laps * lapInstr[appName]; appWork < floor {
			appWork = floor
		}

		headers := []string{"size(MB)"}
		for _, m := range modes {
			headers = append(headers, m.label+"_time", m.label+"_CoV")
		}
		t := newTable(cfg, headers...)

		// Reference: unpartitioned LRU at the smallest size (the paper
		// normalizes execution time to LRU at 1 MB). Then every
		// (size, mode) run is independent: fan out over all of them.
		type cell struct {
			time float64
			cov  float64
		}
		cells := make([][]cell, len(sizes))
		for i := range cells {
			cells[i] = make([]cell, len(modes))
		}
		var refTime float64
		errs := make([]error, len(sizes)*len(modes)+1)
		cfg.parallelFor(len(sizes)*len(modes)+1, func(k int) {
			if k == len(sizes)*len(modes) {
				ref, err := sim.RunMix(sim.MixConfig{
					Apps: apps, CapacityLines: int64(curve.MBToLines(sizes[0])),
					Assoc: sim.DefaultAssoc, Mode: sim.ModeLRU,
					EpochCycles: epoch, WorkInstr: appWork,
					Seed: cfg.Seed + 61,
				})
				if err != nil {
					errs[k] = err
					return
				}
				for _, c := range ref.CompletionCycles {
					if c > refTime {
						refTime = c
					}
				}
				return
			}
			si, mi := k/len(modes), k%len(modes)
			res, err := sim.RunMix(sim.MixConfig{
				Apps: apps, CapacityLines: int64(curve.MBToLines(sizes[si])),
				Assoc: sim.DefaultAssoc, Mode: modes[mi].mode,
				EpochCycles: epoch, WorkInstr: appWork,
				Seed: cfg.Seed + 61 + uint64(si)*131,
			})
			if err != nil {
				errs[k] = fmt.Errorf("%s %gMB %s: %w", appName, sizes[si], modes[mi].label, err)
				return
			}
			var last float64
			for _, c := range res.CompletionCycles {
				if c > last {
					last = c
				}
			}
			cells[si][mi] = cell{time: last, cov: stats.CoV(res.IPC)}
		})
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
		for si, sizeMB := range sizes {
			row := []any{sizeMB}
			for mi := range modes {
				row = append(row, cells[si][mi].time/refTime, cells[si][mi].cov)
			}
			t.row(row...)
		}
		fmt.Fprintf(cfg.out(), "--- %s ×%d copies ---\n", appName, sim.CoresMP)
		if err := t.flush(cfg, "fig13_"+appName); err != nil {
			return err
		}
	}
	return nil
}
