// Ablations of the design choices DESIGN.md calls out:
//
//   - the 5% sampling-rate safety margin (§VI-B "we have empirically
//     determined an increase of 5% ensures convexity with little loss in
//     performance") — sweep the margin and watch both failure modes;
//   - extended monitor coverage (§VI-C) — without the 4× monitor, cliffs
//     beyond the LLC are invisible and Talus degenerates to LRU;
//   - partitioning-scheme granularity — Vantage (line-grained, 90%
//     managed) vs Futility-style (line-grained, 100%) vs way partitioning
//     (coarse) on the same cliff.
//
// These run on a mid-plateau operating point of the libquantum clone,
// where every design choice is load-bearing.

package experiments

import (
	"fmt"

	"talus/internal/curve"
	"talus/internal/sim"
)

func init() {
	registry = append(registry,
		experiment{"ablation-margin", "sampling-rate safety margin sweep (§VI-B's 5%)", runAblationMargin},
		experiment{"ablation-coverage", "extended monitor coverage on/off (§VI-C)", runAblationCoverage},
		experiment{"ablation-scheme", "partitioning scheme granularity under Talus", runAblationScheme},
	)
}

// runAblationMargin sweeps the safety margin. Margin 0 risks "pushing β
// up the performance cliff" when sampling noise makes the β partition
// slightly too small for what it emulates; very large margins overshoot
// α/β and give back some of the interpolation gain.
func runAblationMargin(cfg Config) error {
	spec, err := mustSpec("libquantum")
	if err != nil {
		return err
	}
	size := int64(curve.MBToLines(24))
	warm, meas := accessBudget(cfg, int64(curve.MBToLines(40)))

	t := newTable(cfg, "margin", "Talus MPKI", "vs LRU MPKI")
	base := sim.SweepConfig{App: spec, WarmupAccesses: warm, MeasureAccesses: meas, Seed: cfg.Seed}
	lru, err := sim.RunPoint(base, size, cfg.Seed+1)
	if err != nil {
		return err
	}
	for _, margin := range []float64{-1 /* none */, 0.025, 0.05, 0.10, 0.20} {
		sc := base
		sc.Talus = true
		sc.Scheme = "vantage"
		sc.Margin = margin
		label := fmt.Sprintf("%.3f", margin)
		if margin < 0 {
			label = "0 (disabled)"
		}
		mpki, err := sim.RunPoint(sc, size, cfg.Seed+2)
		if err != nil {
			return err
		}
		t.row(label, mpki, lru)
	}
	return t.flush(cfg, "ablation_margin")
}

// runAblationCoverage compares Talus with the paper's extended-coverage
// monitor against a hypothetical implementation whose curve is truncated
// at the LLC size — demonstrating why §VI-C adds the second monitor for
// "benchmarks with cliffs beyond the LLC size (e.g., libquantum)".
func runAblationCoverage(cfg Config) error {
	spec, err := mustSpec("libquantum")
	if err != nil {
		return err
	}
	size := int64(curve.MBToLines(16)) // cliff at 32 MB: 2× beyond the LLC
	warm, meas := accessBudget(cfg, int64(curve.MBToLines(40)))
	base := sim.SweepConfig{App: spec, WarmupAccesses: warm, MeasureAccesses: meas, Seed: cfg.Seed}

	lru, err := sim.RunPoint(base, size, cfg.Seed+1)
	if err != nil {
		return err
	}

	// Full monitor pair (coverage 4×): the cliff at 32 MB is visible.
	full := base
	full.Talus = true
	full.Scheme = "vantage"
	withCoverage, err := sim.RunPoint(full, size, cfg.Seed+2)
	if err != nil {
		return err
	}

	// Truncated curve: profile, then cut every point beyond the LLC.
	prof, err := sim.ProfileCurve(base, size, cfg.Seed+3)
	if err != nil {
		return err
	}
	var truncated []curve.Point
	for _, p := range prof.Points() {
		if p.Size <= float64(size) {
			truncated = append(truncated, p)
		}
	}
	tc, err := curve.New(truncated)
	if err != nil {
		return err
	}
	trunc := full
	trunc.CurveOverride = tc
	withoutCoverage, err := sim.RunPoint(trunc, size, cfg.Seed+4)
	if err != nil {
		return err
	}

	t := newTable(cfg, "configuration", "MPKI @16MB (cliff at 32MB)")
	t.row("LRU", lru)
	t.row("Talus, curve truncated at LLC", withoutCoverage)
	t.row("Talus, 4x extended coverage", withCoverage)
	return t.flush(cfg, "ablation_coverage")
}

// runAblationScheme compares the partitioning substrates under identical
// Talus configurations: idealized (no associativity effects), Futility
// (fine-grained, 100% partitionable), Vantage (fine-grained, 90%), and
// way partitioning (coarse granules, recomputed ρ).
func runAblationScheme(cfg Config) error {
	spec, err := mustSpec("libquantum")
	if err != nil {
		return err
	}
	size := int64(curve.MBToLines(24))
	warm, meas := accessBudget(cfg, int64(curve.MBToLines(40)))
	base := sim.SweepConfig{App: spec, WarmupAccesses: warm, MeasureAccesses: meas, Seed: cfg.Seed}
	lru, err := sim.RunPoint(base, size, cfg.Seed+1)
	if err != nil {
		return err
	}
	t := newTable(cfg, "scheme", "Talus MPKI", "LRU MPKI", "partitionable fraction")
	for _, scheme := range []string{"ideal", "futility", "vantage", "way"} {
		sc := base
		sc.Talus = true
		sc.Scheme = scheme
		mpki, err := sim.RunPoint(sc, size, cfg.Seed+2)
		if err != nil {
			return err
		}
		frac := 1.0
		if scheme == "vantage" {
			frac = 0.9
		}
		t.row(scheme, mpki, lru, frac)
	}
	return t.flush(cfg, "ablation_scheme")
}
