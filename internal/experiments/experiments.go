package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"text/tabwriter"

	"talus/internal/curve"
	"talus/internal/sim"
)

// parallelFor runs fn(i) for i in [0, n) on the experiment's worker pool
// (sim.ParallelFor bounded by Config.Parallelism). Simulation runs are
// independent and deterministic per index, so results land in
// preallocated slots and output never depends on scheduling.
func (c Config) parallelFor(n int, fn func(i int)) {
	sim.ParallelFor(n, sim.Workers(c.Parallelism), fn)
}

// Config controls experiment scale and output.
type Config struct {
	// Quick shrinks sweeps and access counts (~10× faster) for smoke
	// runs; Tiny shrinks further for Go benchmarks (bench_test.go), where
	// each figure must regenerate in seconds; Full expands to paper-scale
	// sweeps. Precedence: Short > Tiny > Quick > Full.
	Quick bool
	Tiny  bool
	Full  bool
	// Short shrinks below Tiny for CI smoke runs (bench_test.go sets it
	// from testing.Short()): minimum sweep points, two mixes, and a
	// single-lap fixed-work floor in the fairness study, so the whole
	// `-bench . -benchtime 1x -short` suite finishes in well under a
	// minute. Numbers at this scale are execution smoke, not results.
	Short bool
	// OutDir, when non-empty, receives one CSV per experiment.
	OutDir string
	// Seed makes runs reproducible; 0 is a valid seed.
	Seed uint64
	// Parallelism bounds the worker pool experiments fan sweeps and
	// mixes across: 0 uses GOMAXPROCS, 1 runs sequentially. Results are
	// identical at any setting.
	Parallelism int
	// W receives the human-readable tables (default os.Stdout).
	W io.Writer
}

func (c Config) out() io.Writer {
	if c.W == nil {
		return os.Stdout
	}
	return c.W
}

// An experiment regenerates one paper artifact.
type experiment struct {
	name  string
	about string
	run   func(Config) error
}

var registry = []experiment{
	{"fig1", "libquantum MPKI vs LLC size: LRU vs Talus (cliff removal)", runFig1},
	{"fig2", "worked example: shadow-partition decomposition at 2/5/4 MB", runFig2},
	{"fig3", "example miss curve, convex hull, and the Talus point at 4 MB", runFig3},
	{"fig5", "optimal bypassing decomposition at 4 MB", runFig5},
	{"fig6", "Talus (hull) vs optimal bypassing vs original curve", runFig6},
	{"fig8", "Talus on Vantage/way/ideal partitioning (libquantum, gobmk)", runFig8},
	{"fig9", "Talus on SRRIP via 64-point monitors (libquantum, mcf)", runFig9},
	{"fig10", "MPKI vs size, 6 apps × {Talus+V/LRU, PDP, DRRIP, SRRIP, LRU}", runFig10},
	{"fig11", "IPC over LRU at 1 MB and 8 MB, all 29 apps + gmean", runFig11},
	{"fig12", "8-core mixes: weighted & harmonic speedup quantiles", runFig12},
	{"fig13", "fairness case studies: 8 copies, exec time + CoV of IPC", runFig13},
	{"table1", "simulated system configuration (Table I)", runTable1},
	{"table2", "gmean IPC gains over LRU per policy (§VII-C)", runTable2},
}

// Names lists experiment ids in run order.
func Names() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.name
	}
	return out
}

// About returns an experiment's one-line description.
func About(name string) string {
	for _, e := range registry {
		if e.name == name {
			return e.about
		}
	}
	return ""
}

// Run executes one experiment ("all" runs everything in order).
func Run(name string, cfg Config) error {
	if name == "all" {
		for _, e := range registry {
			fmt.Fprintf(cfg.out(), "\n=== %s: %s ===\n", e.name, e.about)
			if err := e.run(cfg); err != nil {
				return fmt.Errorf("%s: %w", e.name, err)
			}
		}
		return nil
	}
	for _, e := range registry {
		if e.name == name {
			return e.run(cfg)
		}
	}
	return fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
}

// --- output helpers ------------------------------------------------------

// table renders aligned columns to the config's writer.
type table struct {
	tw  *tabwriter.Writer
	csv [][]string
}

func newTable(cfg Config, headers ...string) *table {
	t := &table{tw: tabwriter.NewWriter(cfg.out(), 2, 4, 2, ' ', 0)}
	t.row(toAny(headers)...)
	return t
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

func (t *table) row(cells ...any) {
	strs := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			strs[i] = strconv.FormatFloat(v, 'f', 3, 64)
		default:
			strs[i] = fmt.Sprint(c)
		}
	}
	t.csv = append(t.csv, strs)
	fmt.Fprintln(t.tw, join(strs, "\t"))
}

func join(ss []string, sep string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += sep
		}
		out += s
	}
	return out
}

// flush renders the table and, when OutDir is set, writes name.csv.
func (t *table) flush(cfg Config, name string) error {
	if err := t.tw.Flush(); err != nil {
		return err
	}
	if cfg.OutDir == "" {
		return nil
	}
	if err := os.MkdirAll(cfg.OutDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(cfg.OutDir, name+".csv"))
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(t.csv); err != nil {
		f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// --- shared sizing helpers ------------------------------------------------

// mbSizes converts MB values to line counts.
func mbSizes(mbs []float64) []int64 {
	out := make([]int64, len(mbs))
	for i, m := range mbs {
		out[i] = int64(curve.MBToLines(m))
	}
	return out
}

// sweepSizes picks a size grid between lo and hi MB: Quick uses few
// points, Tiny fewer still, Full many.
func sweepSizes(cfg Config, lo, hi float64, quickN, defN, fullN int) []float64 {
	n := defN
	switch {
	case cfg.Short:
		n = 2
	case cfg.Tiny:
		n = 3
	case cfg.Quick:
		n = quickN
	case cfg.Full:
		n = fullN
	}
	if n < 2 {
		n = 2
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = lo + (hi-lo)*float64(i)/float64(n-1)
	}
	return out
}

// accessBudget returns (warmup, measure) access counts for a cache of
// `lines` lines at the configured scale.
func accessBudget(cfg Config, lines int64) (int64, int64) {
	warm := 2 * lines
	meas := 3 * lines
	floorW, floorM := int64(1<<19), int64(1<<20)
	switch {
	case cfg.Short:
		warm, meas = lines/2, lines
		floorW, floorM = 1<<16, 1<<17
	case cfg.Tiny:
		warm, meas = lines, lines
		floorW, floorM = 1<<17, 1<<18
	case cfg.Quick:
		warm, meas = lines, 2*lines
		floorW, floorM = 1<<18, 1<<19
	case cfg.Full:
		warm, meas = 3*lines, 6*lines
		floorM = 1 << 22
	}
	if warm < floorW {
		warm = floorW
	}
	if meas < floorM {
		meas = floorM
	}
	return warm, meas
}
