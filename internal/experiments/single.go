// Single-program sweep experiments: Figs. 1, 8, 9, 10 and the IPC
// summaries of Fig. 11 / Table 2.

package experiments

import (
	"fmt"

	"talus/internal/curve"
	"talus/internal/sim"
	"talus/internal/stats"
	"talus/internal/workload"
)

// mustSpec resolves a clone by name.
func mustSpec(name string) (workload.Spec, error) {
	spec, ok := workload.Lookup(name)
	if !ok {
		return workload.Spec{}, fmt.Errorf("experiments: unknown workload %q", name)
	}
	return spec, nil
}

// sweepOne measures one app under one configuration across sizes.
func sweepOne(cfg Config, app workload.Spec, sizesMB []float64, scheme, policy string, talus bool, monitorPoints int, seed uint64) (*curve.Curve, error) {
	return sweepOneCurve(cfg, app, sizesMB, scheme, policy, talus, monitorPoints, nil, seed)
}

// sweepOneCurve is sweepOne with an optional oracle miss curve handed to
// Talus at every size (Fig. 1's idealized setting). Access budgets scale
// with the sweep's largest size, not the point size: a measurement window
// shorter than the app's reuse period (e.g., one lap of libquantum's
// 32 MB scan) would under-report hits at every size.
func sweepOneCurve(cfg Config, app workload.Spec, sizesMB []float64, scheme, policy string, talus bool, monitorPoints int, oracle *curve.Curve, seed uint64) (*curve.Curve, error) {
	sizes := mbSizes(sizesMB)
	maxLines := sizes[len(sizes)-1]
	warm, meas := accessBudget(cfg, maxLines)
	pts := make([]curve.Point, len(sizes))
	errs := make([]error, len(sizes))
	cfg.parallelFor(len(sizes), func(i int) {
		sc := sim.SweepConfig{
			App:             app,
			Scheme:          scheme,
			Policy:          policy,
			Talus:           talus,
			MonitorPoints:   monitorPoints,
			CurveOverride:   oracle,
			WarmupAccesses:  warm,
			MeasureAccesses: meas,
			Seed:            seed,
		}
		mpki, err := sim.RunPoint(sc, sizes[i], seed+uint64(i)*1_000_003)
		if err != nil {
			errs[i] = err
			return
		}
		pts[i] = curve.Point{Size: float64(sizes[i]), MPKI: mpki}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return curve.New(pts)
}

// runFig1 regenerates Fig. 1: libquantum's miss curve under LRU (a 32 MB
// cliff) and under Talus+V/LRU (the cliff's hull). As in the paper's
// intro figure, Talus is given the app's full miss curve (profiled once
// across the whole sweep range); Fig. 8 repeats the experiment with the
// honest per-LLC-size monitors.
func runFig1(cfg Config) error {
	spec, err := mustSpec("libquantum")
	if err != nil {
		return err
	}
	sizesMB := sweepSizes(cfg, 2, 40, 8, 14, 20)
	lru, err := sweepOne(cfg, spec, sizesMB, "none", "LRU", false, 0, cfg.Seed+1)
	if err != nil {
		return err
	}
	// Profile once at the largest size (coverage 4× beyond it).
	maxLines := int64(curve.MBToLines(sizesMB[len(sizesMB)-1]))
	warm, meas := accessBudget(cfg, maxLines)
	oracle, err := sim.ProfileCurve(sim.SweepConfig{
		App: spec, WarmupAccesses: warm, MeasureAccesses: meas, Seed: cfg.Seed + 3,
	}, maxLines, cfg.Seed+4)
	if err != nil {
		return err
	}
	talus, err := sweepOneCurve(cfg, spec, sizesMB, "vantage", "LRU", true, 0, oracle, cfg.Seed+2)
	if err != nil {
		return err
	}
	t := newTable(cfg, "size(MB)", "LRU(MPKI)", "Talus(MPKI)")
	for i, s := range sizesMB {
		t.row(s, lru.PointAt(i).MPKI, talus.PointAt(i).MPKI)
	}
	return t.flush(cfg, "fig1")
}

// runFig8 regenerates Fig. 8: Talus on LRU under Vantage, way, and ideal
// partitioning, on libquantum and gobmk. All three must trace LRU's hull.
func runFig8(cfg Config) error {
	cases := []struct {
		app     string
		sizesMB []float64
	}{
		{"libquantum", sweepSizes(cfg, 2, 40, 6, 10, 16)},
		{"gobmk", sweepSizes(cfg, 0.5, 8, 6, 10, 16)},
	}
	for _, c := range cases {
		spec, err := mustSpec(c.app)
		if err != nil {
			return err
		}
		lru, err := sweepOne(cfg, spec, c.sizesMB, "none", "LRU", false, 0, cfg.Seed+11)
		if err != nil {
			return err
		}
		schemes := []string{"vantage", "way", "ideal"}
		curves := make([]*curve.Curve, len(schemes))
		for i, scheme := range schemes {
			curves[i], err = sweepOne(cfg, spec, c.sizesMB, scheme, "LRU", true, 0, cfg.Seed+12+uint64(i))
			if err != nil {
				return err
			}
		}
		t := newTable(cfg, "size(MB)", "LRU", "Talus+V/LRU", "Talus+W/LRU", "Talus+I/LRU")
		for i, s := range c.sizesMB {
			t.row(s, lru.PointAt(i).MPKI,
				curves[0].PointAt(i).MPKI, curves[1].PointAt(i).MPKI, curves[2].PointAt(i).MPKI)
		}
		fmt.Fprintf(cfg.out(), "--- %s ---\n", c.app)
		if err := t.flush(cfg, "fig8_"+c.app); err != nil {
			return err
		}
	}
	return nil
}

// runFig9 regenerates Fig. 9: SRRIP vs Talus+W/SRRIP using the
// (impractical in hardware, fine in software) multi-point monitors,
// demonstrating that Talus is agnostic to replacement policy.
func runFig9(cfg Config) error {
	points := 64
	switch {
	case cfg.Tiny:
		points = 8
	case cfg.Quick:
		points = 16
	}
	cases := []struct {
		app     string
		sizesMB []float64
	}{
		{"libquantum", sweepSizes(cfg, 2, 40, 5, 8, 14)},
		{"mcf", sweepSizes(cfg, 1, 16, 5, 8, 14)},
	}
	for _, c := range cases {
		spec, err := mustSpec(c.app)
		if err != nil {
			return err
		}
		srrip, err := sweepOne(cfg, spec, c.sizesMB, "none", "SRRIP", false, 0, cfg.Seed+21)
		if err != nil {
			return err
		}
		talus, err := sweepOne(cfg, spec, c.sizesMB, "way", "SRRIP", true, points, cfg.Seed+22)
		if err != nil {
			return err
		}
		t := newTable(cfg, "size(MB)", "SRRIP", "Talus+W/SRRIP")
		for i, s := range c.sizesMB {
			t.row(s, srrip.PointAt(i).MPKI, talus.PointAt(i).MPKI)
		}
		fmt.Fprintf(cfg.out(), "--- %s ---\n", c.app)
		if err := t.flush(cfg, "fig9_"+c.app); err != nil {
			return err
		}
	}
	return nil
}

// fig10Apps are the six representative benchmarks of Fig. 10.
var fig10Apps = []string{"perlbench", "mcf", "cactusADM", "libquantum", "lbm", "xalancbmk"}

// fig10Policies maps column names to (scheme, policy, talus) triples.
var fig10Policies = []struct {
	label  string
	scheme string
	policy string
	talus  bool
}{
	{"Talus+V/LRU", "vantage", "LRU", true},
	{"PDP", "none", "PDP", false},
	{"DRRIP", "none", "DRRIP", false},
	{"SRRIP", "none", "SRRIP", false},
	{"LRU", "none", "LRU", false},
}

// runFig10 regenerates Fig. 10: MPKI from 128 KB to 16 MB for six apps
// under Talus+V/LRU and the high-performance policies.
func runFig10(cfg Config) error {
	sizesMB := sweepSizes(cfg, 0.125, 16, 5, 9, 13)
	for _, app := range fig10Apps {
		spec, err := mustSpec(app)
		if err != nil {
			return err
		}
		curves := make([]*curve.Curve, len(fig10Policies))
		for i, p := range fig10Policies {
			curves[i], err = sweepOne(cfg, spec, sizesMB, p.scheme, p.policy, p.talus, 0, cfg.Seed+31+uint64(i))
			if err != nil {
				return fmt.Errorf("%s/%s: %w", app, p.label, err)
			}
		}
		headers := []string{"size(MB)"}
		for _, p := range fig10Policies {
			headers = append(headers, p.label)
		}
		t := newTable(cfg, headers...)
		for i, s := range sizesMB {
			row := []any{s}
			for _, c := range curves {
				row = append(row, c.PointAt(i).MPKI)
			}
			t.row(row...)
		}
		fmt.Fprintf(cfg.out(), "--- %s ---\n", app)
		if err := t.flush(cfg, "fig10_"+app); err != nil {
			return err
		}
	}
	return nil
}

// ipcComparisonAt measures IPC-over-LRU for every app at one LLC size,
// returning per-app percentages per policy plus gmeans.
func ipcComparisonAt(cfg Config, sizeMB float64, apps []string, seed uint64) (map[string][]float64, []string, error) {
	policies := []struct {
		label  string
		scheme string
		policy string
		talus  bool
	}{
		{"Talus+V/LRU", "vantage", "LRU", true},
		{"PDP", "none", "PDP", false},
		{"DRRIP", "none", "DRRIP", false},
		{"SRRIP", "none", "SRRIP", false},
	}
	size := int64(curve.MBToLines(sizeMB))
	// Budget by the largest clone footprint (libquantum's 32 MB scan),
	// not the LLC size, so every app completes several reuse periods.
	warm, meas := accessBudget(cfg, int64(curve.MBToLines(32)))
	results := make(map[string][]float64) // label → per-app IPC ratio
	var labels []string
	for _, p := range policies {
		labels = append(labels, p.label)
		results[p.label] = make([]float64, len(apps))
	}
	errs := make([]error, len(apps))
	cfg.parallelFor(len(apps), func(ai int) {
		spec, err := mustSpec(apps[ai])
		if err != nil {
			errs[ai] = err
			return
		}
		base := sim.SweepConfig{App: spec, Scheme: "none", Policy: "LRU",
			WarmupAccesses: warm, MeasureAccesses: meas, Seed: seed}
		lruMPKI, err := sim.RunPoint(base, size, seed+uint64(ai))
		if err != nil {
			errs[ai] = err
			return
		}
		lruIPC := sim.IPC(spec, lruMPKI)
		for _, p := range policies {
			sc := sim.SweepConfig{App: spec, Scheme: p.scheme, Policy: p.policy, Talus: p.talus,
				WarmupAccesses: warm, MeasureAccesses: meas, Seed: seed}
			mpki, err := sim.RunPoint(sc, size, seed+uint64(ai)*31+7)
			if err != nil {
				errs[ai] = err
				return
			}
			results[p.label][ai] = sim.IPC(spec, mpki) / lruIPC
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, nil, err
		}
	}
	return results, labels, nil
}

// runFig11 regenerates Fig. 11: per-app IPC over LRU at 1 MB and 8 MB
// (apps changed ≥1% shown in the paper; we print all), plus gmeans.
func runFig11(cfg Config) error {
	apps := workload.Names()
	switch {
	case cfg.Tiny:
		apps = fig10Apps
	case cfg.Quick:
		apps = workload.MemoryIntensive()
	}
	for _, sizeMB := range []float64{1, 8} {
		results, labels, err := ipcComparisonAt(cfg, sizeMB, apps, cfg.Seed+41)
		if err != nil {
			return err
		}
		headers := append([]string{"app"}, labels...)
		t := newTable(cfg, headers...)
		for ai, app := range apps {
			row := []any{app}
			for _, l := range labels {
				row = append(row, (results[l][ai]-1)*100)
			}
			t.row(row...)
		}
		grow := []any{"gmean(%)"}
		for _, l := range labels {
			grow = append(grow, (stats.GeoMean(results[l])-1)*100)
		}
		t.row(grow...)
		fmt.Fprintf(cfg.out(), "--- IPC over LRU (%%) at %gMB LLC ---\n", sizeMB)
		if err := t.flush(cfg, fmt.Sprintf("fig11_%gMB", sizeMB)); err != nil {
			return err
		}
	}
	return nil
}

// runTable2 prints just the gmean rows of Fig. 11 — the §VII-C quoted
// numbers (paper: 1MB: Talus 1.9/PDP 2.4/SRRIP 2.2/DRRIP 3.8;
// 8MB: 1.0/0.69/-0.03/0.39).
func runTable2(cfg Config) error {
	apps := workload.Names()
	switch {
	case cfg.Tiny:
		apps = fig10Apps
	case cfg.Quick:
		apps = workload.MemoryIntensive()
	}
	t := newTable(cfg, "LLC", "Talus+V/LRU(%)", "PDP(%)", "DRRIP(%)", "SRRIP(%)")
	for _, sizeMB := range []float64{1, 8} {
		results, _, err := ipcComparisonAt(cfg, sizeMB, apps, cfg.Seed+47)
		if err != nil {
			return err
		}
		t.row(fmt.Sprintf("%gMB", sizeMB),
			(stats.GeoMean(results["Talus+V/LRU"])-1)*100,
			(stats.GeoMean(results["PDP"])-1)*100,
			(stats.GeoMean(results["DRRIP"])-1)*100,
			(stats.GeoMean(results["SRRIP"])-1)*100)
	}
	return t.flush(cfg, "table2")
}
