package workload

import (
	"fmt"
	"math"

	"talus/internal/hash"
)

// Pattern is a source of line addresses within its own private address
// space (patterns composed into one app are offset into disjoint spaces).
type Pattern interface {
	// Next returns the next line address, drawing randomness from rng.
	Next(rng *hash.SplitMix64) uint64
	// Footprint returns the number of distinct lines the pattern touches.
	Footprint() int64
	// Clone returns an independent copy with fresh position state.
	Clone() Pattern
}

// Validate checks that a pattern (recursively, for composites) touches
// at least one line: degenerate footprints otherwise surface only deep
// inside generation — Scan{Lines: 0} loops forever on address 0 and
// Rand{Lines: 0} panics in Uint64n — so composite constructors and
// NewApp reject them up front with a descriptive error.
func Validate(p Pattern) error {
	switch v := p.(type) {
	case *Mix:
		if len(v.comps) == 0 {
			return fmt.Errorf("workload: mix with no components")
		}
		for i, c := range v.comps {
			if err := Validate(c.Pattern); err != nil {
				return fmt.Errorf("mix component %d: %w", i, err)
			}
		}
	case *Phased:
		if len(v.Stages) == 0 {
			return fmt.Errorf("workload: phased pattern with no stages")
		}
		for i, s := range v.Stages {
			if s.Pattern == nil {
				return fmt.Errorf("workload: phased stage %d has no pattern", i)
			}
			if s.Length < 1 {
				return fmt.Errorf("workload: phased stage %d length %d < 1", i, s.Length)
			}
			if err := Validate(s.Pattern); err != nil {
				return fmt.Errorf("phased stage %d: %w", i, err)
			}
		}
	default:
		if f := p.Footprint(); f < 1 {
			return fmt.Errorf("workload: %T footprint %d < 1 line", p, f)
		}
	}
	return nil
}

// --- Primitives --------------------------------------------------------

// Scan cycles sequentially through Lines addresses: the canonical
// cliff-maker. Under LRU it yields 0% hits below its footprint and ~100%
// above.
type Scan struct {
	Lines int64
	pos   int64
}

// Next implements Pattern.
func (s *Scan) Next(_ *hash.SplitMix64) uint64 {
	a := uint64(s.pos)
	s.pos++
	if s.pos >= s.Lines {
		s.pos = 0
	}
	return a
}

// Footprint implements Pattern.
func (s *Scan) Footprint() int64 { return s.Lines }

// Clone implements Pattern.
func (s *Scan) Clone() Pattern { return &Scan{Lines: s.Lines} }

// Rand draws uniformly from Lines addresses: a smooth working set whose
// LRU miss curve falls roughly linearly until the footprint fits.
type Rand struct {
	Lines int64
}

// Next implements Pattern.
func (r *Rand) Next(rng *hash.SplitMix64) uint64 { return rng.Uint64n(uint64(r.Lines)) }

// Footprint implements Pattern.
func (r *Rand) Footprint() int64 { return r.Lines }

// Clone implements Pattern.
func (r *Rand) Clone() Pattern { return &Rand{Lines: r.Lines} }

// Zipf draws from Lines addresses with Zipfian popularity (exponent S>1),
// giving a convex miss curve with a long tail — typical of pointer-heavy
// codes. Implemented by inverse-transform sampling over a precomputed
// CDF of rank buckets (exact for ranks below zipfExact, bucketed above).
type Zipf struct {
	Lines int64
	S     float64
	cdf   []float64 // cumulative probability at bucket boundaries
	ends  []int64   // bucket end rank (exclusive)
}

const zipfExact = 1024

// NewZipf builds a Zipfian pattern; s must be > 0 and != 1 is not
// required (the harmonic case is handled numerically).
func NewZipf(lines int64, s float64) *Zipf {
	z := &Zipf{Lines: lines, S: s}
	z.build()
	return z
}

func (z *Zipf) build() {
	// Exact ranks [1, zipfExact), then geometric buckets to Lines.
	var bounds []int64
	for r := int64(1); r < zipfExact && r <= z.Lines; r++ {
		bounds = append(bounds, r)
	}
	for lo := int64(zipfExact); lo <= z.Lines; lo *= 2 {
		hi := lo * 2
		if hi > z.Lines+1 {
			hi = z.Lines + 1
		}
		bounds = append(bounds, hi-1)
		if hi > z.Lines {
			break
		}
	}
	weight := func(lo, hi int64) float64 {
		// Σ 1/k^s for k in [lo, hi] ≈ integral approximation for wide
		// buckets; exact for single ranks.
		if hi == lo {
			return math.Pow(float64(lo), -z.S)
		}
		if z.S == 1 {
			return math.Log(float64(hi)+0.5) - math.Log(float64(lo)-0.5)
		}
		a := math.Pow(float64(lo)-0.5, 1-z.S)
		b := math.Pow(float64(hi)+0.5, 1-z.S)
		return (a - b) / (z.S - 1)
	}
	var cum float64
	prev := int64(0)
	z.cdf = z.cdf[:0]
	z.ends = z.ends[:0]
	for _, b := range bounds {
		cum += weight(prev+1, b)
		z.cdf = append(z.cdf, cum)
		z.ends = append(z.ends, b)
		prev = b
	}
	for i := range z.cdf {
		z.cdf[i] /= cum
	}
}

// Next implements Pattern.
func (z *Zipf) Next(rng *hash.SplitMix64) uint64 {
	u := rng.Float64()
	// Binary search the CDF.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	start := int64(1)
	if lo > 0 {
		start = z.ends[lo-1] + 1
	}
	end := z.ends[lo]
	rank := start
	if end > start {
		rank += int64(rng.Uint64n(uint64(end - start + 1)))
	}
	// Scatter ranks over the address space deterministically so popular
	// lines are not spatially adjacent.
	return uint64(rank-1) * 0x9E3779B9 % uint64(z.Lines)
}

// Footprint implements Pattern.
func (z *Zipf) Footprint() int64 { return z.Lines }

// Clone implements Pattern.
func (z *Zipf) Clone() Pattern { return NewZipf(z.Lines, z.S) }

// RankPMF returns the sampler's effective rank distribution: bucket end
// ranks (inclusive) and each bucket's total probability. Ranks within a
// bucket are drawn uniformly, so rank k in bucket i (ends[i-1] < k ≤
// ends[i]) has probability probs[i]/(ends[i]−ends[i-1]). Exact ranks
// below zipfExact are single-rank buckets. This is the distribution
// Next actually draws from — analytic models (internal/oracle) and
// goodness-of-fit tests should compare against it, not against an
// independently rebuilt pmf that could drift from the sampler.
func (z *Zipf) RankPMF() (ends []int64, probs []float64) {
	ends = append([]int64(nil), z.ends...)
	probs = make([]float64, len(z.cdf))
	prev := 0.0
	for i, c := range z.cdf {
		probs[i] = c - prev
		prev = c
	}
	return ends, probs
}

// Component weights one pattern within a Mix.
type Component struct {
	Pattern Pattern
	Weight  float64
}

// Mix interleaves components, choosing each access's source pattern with
// probability proportional to its weight. Components live in disjoint
// address subspaces (component index in the high bits).
type Mix struct {
	comps []Component
	cum   []float64
}

// NewMix builds a mixture; weights must be positive.
func NewMix(comps ...Component) (*Mix, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	m := &Mix{comps: comps, cum: make([]float64, len(comps))}
	total := 0.0
	for i, c := range comps {
		if c.Weight <= 0 || c.Pattern == nil {
			return nil, fmt.Errorf("workload: bad component %d", i)
		}
		if err := Validate(c.Pattern); err != nil {
			return nil, fmt.Errorf("workload: component %d: %w", i, err)
		}
		total += c.Weight
		m.cum[i] = total
	}
	for i := range m.cum {
		m.cum[i] /= total
	}
	return m, nil
}

// MustMix is NewMix that panics on error (registry literals).
func MustMix(comps ...Component) *Mix {
	m, err := NewMix(comps...)
	if err != nil {
		panic(err)
	}
	return m
}

// Next implements Pattern.
func (m *Mix) Next(rng *hash.SplitMix64) uint64 {
	u := rng.Float64()
	i := 0
	for i < len(m.cum)-1 && m.cum[i] < u {
		i++
	}
	return m.comps[i].Pattern.Next(rng) | uint64(i)<<40
}

// Footprint implements Pattern.
func (m *Mix) Footprint() int64 {
	var total int64
	for _, c := range m.comps {
		total += c.Pattern.Footprint()
	}
	return total
}

// Clone implements Pattern.
func (m *Mix) Clone() Pattern {
	comps := make([]Component, len(m.comps))
	for i, c := range m.comps {
		comps[i] = Component{Pattern: c.Pattern.Clone(), Weight: c.Weight}
	}
	return MustMix(comps...)
}

// NewPhased validates stages (at least one, each with a valid pattern
// and positive length) and builds a Phased pattern.
func NewPhased(stages ...Stage) (*Phased, error) {
	p := &Phased{Stages: stages}
	if err := Validate(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Phased rotates through stages, running each for its length in accesses.
// It exists to exercise (and test) Talus's interval-based reconfiguration
// when Assumption 1's "miss curves change slowly" is stressed.
type Phased struct {
	Stages []Stage
	idx    int
	left   int64
}

// Stage is one phase of a Phased pattern.
type Stage struct {
	Pattern Pattern
	Length  int64 // accesses before moving on
}

// Next implements Pattern.
func (p *Phased) Next(rng *hash.SplitMix64) uint64 {
	if p.left <= 0 {
		p.idx = (p.idx + 1) % len(p.Stages)
		p.left = p.Stages[p.idx].Length
	}
	p.left--
	return p.Stages[p.idx].Pattern.Next(rng) | uint64(p.idx)<<40
}

// Footprint implements Pattern.
func (p *Phased) Footprint() int64 {
	var max int64
	for _, s := range p.Stages {
		if f := s.Pattern.Footprint(); f > max {
			max = f
		}
	}
	return max
}

// Clone implements Pattern.
func (p *Phased) Clone() Pattern {
	stages := make([]Stage, len(p.Stages))
	for i, s := range p.Stages {
		stages[i] = Stage{Pattern: s.Pattern.Clone(), Length: s.Length}
	}
	return &Phased{Stages: stages}
}

// --- App: a runnable workload -------------------------------------------

// Spec describes one application clone: its access pattern plus the
// parameters of the analytic core model (internal/sim): APKI converts
// accesses to instructions; CPIBase is the cycles-per-instruction with a
// perfect LLC; MLP is the average miss-level parallelism dividing the
// memory latency penalty.
type Spec struct {
	Name    string
	APKI    float64
	CPIBase float64
	MLP     float64
	Build   func() Pattern
}

// App is an instantiated workload: a pattern plus a deterministic RNG.
type App struct {
	Spec
	pattern Pattern
	rng     *hash.SplitMix64
}

// NewApp instantiates spec with the given seed. It panics with a
// descriptive error when the built pattern has a degenerate (< 1 line)
// footprint — the misuse otherwise surfaces as an address-0 loop or a
// panic deep inside Uint64n (composite constructors return the same
// validation as an error; a bare Scan/Rand literal has no constructor
// to return one from).
func NewApp(spec Spec, seed uint64) *App {
	pattern := spec.Build()
	if err := Validate(pattern); err != nil {
		panic(fmt.Sprintf("workload: app %q: %v", spec.Name, err))
	}
	return &App{
		Spec:    spec,
		pattern: pattern,
		rng:     hash.NewSplitMix64(seed),
	}
}

// Next returns the next line address.
func (a *App) Next() uint64 { return a.pattern.Next(a.rng) }

// InstrPerAccess returns 1000/APKI: how many instructions each LLC access
// represents.
func (a *App) InstrPerAccess() float64 { return 1000 / a.APKI }
