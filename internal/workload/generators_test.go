package workload

import (
	"math"
	"strings"
	"testing"

	"talus/internal/hash"
)

func TestStridedCycle(t *testing.T) {
	cases := []struct {
		lines, stride, footprint int64
	}{
		{16, 1, 16},
		{16, 4, 4},     // gcd 4 → quarter of the space
		{16, 3, 16},    // coprime → full cycle
		{16, 0, 1},     // degenerate: a single line
		{16, -3, 16},   // negative stride normalizes
		{16, 20, 4},    // stride ≡ 4 (mod 16)
		{1000, 6, 500}, // gcd 2
	}
	for _, c := range cases {
		s := &Strided{Lines: c.lines, Stride: c.stride}
		if got := s.Footprint(); got != c.footprint {
			t.Fatalf("Strided{%d,%d}.Footprint() = %d, want %d", c.lines, c.stride, got, c.footprint)
		}
		// One full cycle visits exactly Footprint distinct addresses, each
		// once, all in range, and then repeats from the start.
		rng := hash.NewSplitMix64(1)
		seen := map[uint64]bool{}
		fp := c.footprint
		var first uint64
		for i := int64(0); i < fp; i++ {
			a := s.Next(rng)
			if i == 0 {
				first = a
			}
			if a >= uint64(c.lines) {
				t.Fatalf("Strided{%d,%d} address %d out of range", c.lines, c.stride, a)
			}
			if seen[a] {
				t.Fatalf("Strided{%d,%d} repeated %d before completing its cycle", c.lines, c.stride, a)
			}
			seen[a] = true
		}
		if a := s.Next(rng); a != first {
			t.Fatalf("Strided{%d,%d} cycle restarted at %d, want %d", c.lines, c.stride, a, first)
		}
		// Clone starts fresh.
		cl := s.Clone().(*Strided)
		if a := cl.Next(rng); a != 0 {
			t.Fatalf("Strided clone restarted at %d, want 0", a)
		}
	}
}

func TestPointerChaseSingleCycle(t *testing.T) {
	const lines = 257 // prime, and not a power of two
	p := NewPointerChase(lines, 42)
	rng := hash.NewSplitMix64(1)
	if p.Footprint() != lines {
		t.Fatalf("footprint %d, want %d", p.Footprint(), lines)
	}
	// One lap visits every line exactly once (the ring is a single
	// cycle), and the next lap repeats the same sequence.
	var lap1 [lines]uint64
	seen := map[uint64]bool{}
	for i := range lap1 {
		a := p.Next(rng)
		if a >= lines {
			t.Fatalf("address %d out of range", a)
		}
		if seen[a] {
			t.Fatalf("address %d repeated within a lap: ring is not a single cycle", a)
		}
		seen[a] = true
		lap1[i] = a
	}
	for i := range lap1 {
		if a := p.Next(rng); a != lap1[i] {
			t.Fatalf("lap 2 access %d = %d, want %d", i, a, lap1[i])
		}
	}
	// Clones share the ring (same successor structure) but start fresh
	// and deterministically.
	c1 := p.Clone().(*PointerChase)
	c2 := p.Clone().(*PointerChase)
	for i := 0; i < lines; i++ {
		a1, a2 := c1.Next(rng), c2.Next(rng)
		if a1 != a2 {
			t.Fatalf("clone divergence at access %d: %d vs %d", i, a1, a2)
		}
	}
	// Different seeds give different rings.
	q := NewPointerChase(lines, 43)
	diff := false
	for i := 0; i < lines; i++ {
		if p.Next(rng) != q.Next(rng) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("seeds 42 and 43 produced identical rings")
	}
}

func TestDiurnalRotates(t *testing.T) {
	const lines = 1 << 12
	d, err := NewDiurnal(lines, 0.9, 1000, lines/4)
	if err != nil {
		t.Fatal(err)
	}
	rng := hash.NewSplitMix64(7)
	// Track the most popular address per phase; the rotation must move it.
	phaseTop := func() uint64 {
		counts := map[uint64]int{}
		for i := 0; i < 1000; i++ {
			a := d.Next(rng)
			if a >= lines {
				t.Fatalf("address %d out of range", a)
			}
			counts[a]++
		}
		var top uint64
		best := -1
		for a, c := range counts {
			if c > best {
				top, best = a, c
			}
		}
		return top
	}
	t1 := phaseTop()
	t2 := phaseTop()
	if t1 == t2 {
		t.Fatalf("hotset did not rotate: top address %d in both phases", t1)
	}
	if d.Footprint() != lines {
		t.Fatalf("footprint %d, want %d", d.Footprint(), lines)
	}
	if _, err := NewDiurnal(0, 0.9, 100, 1); err == nil {
		t.Fatal("lines 0 accepted")
	}
	if _, err := NewDiurnal(16, 0.9, 0, 1); err == nil {
		t.Fatal("period 0 accepted")
	}
}

func TestCliffSeekerPlacesKnee(t *testing.T) {
	const target = int64(4096)
	c, err := NewCliffSeeker(target)
	if err != nil {
		t.Fatal(err)
	}
	if c.Target != target {
		t.Fatalf("target %d, want %d", c.Target, target)
	}
	wantKnee := int64(KneeFactor * float64(target))
	if c.Knee != wantKnee {
		t.Fatalf("knee %d, want %d", c.Knee, wantKnee)
	}
	// The knee is beyond the attacked size but the total footprint is of
	// the same scale: footprint = scan (knee − hot) + zipf hot = knee.
	if c.Footprint() != c.Knee {
		t.Fatalf("footprint %d, want knee %d", c.Footprint(), c.Knee)
	}
	// The mix really draws from both subspaces (Mix tags component
	// indexes in bit 40).
	rng := hash.NewSplitMix64(3)
	var scanAcc, zipfAcc int
	for i := 0; i < 4096; i++ {
		if c.Next(rng)>>40 == 0 {
			scanAcc++
		} else {
			zipfAcc++
		}
	}
	if scanAcc == 0 || zipfAcc == 0 {
		t.Fatalf("mix imbalance: %d scan vs %d zipf accesses", scanAcc, zipfAcc)
	}
	if ratio := float64(scanAcc) / 4096; math.Abs(ratio-cliffScanWeight) > 0.05 {
		t.Fatalf("scan fraction %.3f far from %.2f", ratio, cliffScanWeight)
	}
	if _, err := NewCliffSeeker(8); err == nil {
		t.Fatal("target 8 accepted")
	}
}

func TestGeneratorRegistry(t *testing.T) {
	// Generators resolve by bare name without polluting the SPEC suite
	// enumeration.
	for _, name := range GeneratorNames() {
		spec, err := Resolve(name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", name, err)
		}
		if spec.APKI <= 0 || spec.CPIBase <= 0 || spec.MLP <= 0 {
			t.Fatalf("%q core-model params not set: %+v", name, spec)
		}
		if err := Validate(spec.Build()); err != nil {
			t.Fatalf("%q pattern invalid: %v", name, err)
		}
		for _, n := range Names() {
			if n == name {
				t.Fatalf("generator %q leaked into the SPEC suite Names()", name)
			}
		}
	}
}

func TestGenSource(t *testing.T) {
	cases := []struct {
		name      string
		footprint int64
	}{
		{"gen:scan,lines=4096", 4096},
		{"gen:scan,mb=1", mb(1)},
		{"gen:rand,lines=512", 512},
		{"gen:zipf,lines=8192,s=1.1", 8192},
		{"gen:strided,lines=4096,stride=4", 1024},
		{"gen:pointerchase,lines=1024,seed=9", 1024},
		{"gen:diurnal,lines=4096,period=1000,shift=64", 4096},
		{"gen:cliffseeker,lines=4096", int64(KneeFactor * 4096)},
	}
	for _, c := range cases {
		spec, err := Resolve(c.name)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", c.name, err)
		}
		if got := spec.Build().Footprint(); got != c.footprint {
			t.Fatalf("%q footprint %d, want %d", c.name, got, c.footprint)
		}
		// Built patterns are independent: advancing one must not advance
		// a second build.
		p1, p2 := spec.Build(), spec.Build()
		rng := hash.NewSplitMix64(5)
		a1 := p1.Next(rng)
		rng = hash.NewSplitMix64(5)
		b1 := p2.Next(rng)
		if a1 != b1 {
			t.Fatalf("%q: two Build()s diverge from the same RNG: %d vs %d", c.name, a1, b1)
		}
	}
	for _, bad := range []string{
		"gen:nosuch",
		"gen:scan,lines=0",
		"gen:scan,lines=x",
		"gen:zipf,s=x",
		"gen:strided,stride",
		"gen:cliffseeker,lines=4",
		"gen:diurnal,period=0",
	} {
		if _, err := Resolve(bad); err == nil {
			t.Fatalf("Resolve(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "gen:") {
			t.Fatalf("Resolve(%q) error %q does not name the source", bad, err)
		}
	}
}

// TestZipfGoodnessOfFit pins the sampler's distribution against the
// analytic zipf pmf with a chi-square test: empirical frequencies of
// Next over the first exact ranks (and the bucketed tail, aggregated)
// must match Σ 1/k^s within statistical noise. Lines is a power of two
// so the rank→address scatter (×0x9E3779B9 mod Lines, an odd constant)
// is a bijection and rank frequencies are recoverable per address.
func TestZipfGoodnessOfFit(t *testing.T) {
	const (
		lines = int64(1 << 16)
		s     = 0.9
		n     = 1 << 21
	)
	z := NewZipf(lines, s)
	rng := hash.NewSplitMix64(11)
	counts := make(map[uint64]int64, 4096)
	for i := 0; i < n; i++ {
		counts[z.Next(rng)]++
	}

	// Analytic pmf: exact 1/k^s over every rank, normalized. Addresses
	// recover ranks through the same scatter Next applies.
	norm := 0.0
	for k := int64(1); k <= lines; k++ {
		norm += math.Pow(float64(k), -s)
	}
	addrOf := func(rank int64) uint64 {
		return uint64(rank-1) * 0x9E3779B9 % uint64(lines)
	}

	// Bins: first 64 ranks individually, then geometric rank bands. The
	// sampler is exact below zipfExact and bucket-uniform above, so the
	// geometric bands (aligned with powers of two) are fair to both.
	type bin struct {
		lo, hi int64 // rank range [lo, hi]
	}
	var bins []bin
	for k := int64(1); k <= 64; k++ {
		bins = append(bins, bin{k, k})
	}
	for lo := int64(65); lo <= lines; {
		hi := lo*2 - 1
		if hi > lines {
			hi = lines
		}
		bins = append(bins, bin{lo, hi})
		lo = hi + 1
	}

	chi2 := 0.0
	dof := 0
	for _, b := range bins {
		var expP float64
		var obs int64
		for k := b.lo; k <= b.hi; k++ {
			expP += math.Pow(float64(k), -s) / norm
			obs += counts[addrOf(k)]
		}
		exp := expP * n
		if exp < 16 {
			continue // too thin for the chi-square approximation
		}
		d := float64(obs) - exp
		chi2 += d * d / exp
		dof++
	}
	if dof < 32 {
		t.Fatalf("only %d usable bins; test is vacuous", dof)
	}
	// χ² concentrates at dof ± O(√dof); allow a generous 5σ so the test
	// only fires on real sampler regressions, not seed luck.
	limit := float64(dof) + 5*math.Sqrt(2*float64(dof))
	if chi2 > limit {
		t.Fatalf("chi-square %.1f over %d bins exceeds %.1f: Next's distribution drifted from the analytic zipf pmf", chi2, dof, limit)
	}
	t.Logf("chi-square %.1f over %d bins (limit %.1f)", chi2, dof, limit)
}

// FuzzPattern drives random generator specs through the Pattern
// contract: Validate-accepted patterns must Next without panicking,
// stay within a plausible address range, honor Footprint (never more
// distinct addresses than claimed), and Clone into an equivalent
// independent stream.
func FuzzPattern(f *testing.F) {
	f.Add(int64(64), int64(3), uint8(0), uint64(1))
	f.Add(int64(1), int64(0), uint8(1), uint64(2))
	f.Add(int64(4096), int64(64), uint8(2), uint64(3))
	f.Add(int64(100), int64(7), uint8(3), uint64(4))
	f.Add(int64(128), int64(16), uint8(4), uint64(5))
	f.Add(int64(16), int64(-5), uint8(5), uint64(6))
	f.Fuzz(func(t *testing.T, lines, param int64, kind uint8, seed uint64) {
		if lines < 1 || lines > 1<<20 {
			t.Skip()
		}
		var p Pattern
		switch kind % 6 {
		case 0:
			p = &Scan{Lines: lines}
		case 1:
			p = &Rand{Lines: lines}
		case 2:
			s := 0.1 + float64(param%30)/10 // 0.1..3.0
			if s < 0 {
				s = -s
			}
			p = NewZipf(lines, s)
		case 3:
			p = &Strided{Lines: lines, Stride: param}
		case 4:
			p = NewPointerChase(lines, seed)
		case 5:
			if lines < 16 {
				t.Skip()
			}
			c, err := NewCliffSeeker(lines)
			if err != nil {
				t.Fatalf("NewCliffSeeker(%d): %v", lines, err)
			}
			p = c
		}
		if err := Validate(p); err != nil {
			t.Fatalf("Validate rejected a well-formed %T: %v", p, err)
		}
		fp := p.Footprint()
		if fp < 1 {
			t.Fatalf("%T footprint %d < 1", p, fp)
		}
		rng := hash.NewSplitMix64(seed)
		clone := p.Clone()
		crng := hash.NewSplitMix64(seed)
		distinct := map[uint64]bool{}
		steps := 512
		if int64(steps) > 4*fp {
			steps = int(4 * fp)
		}
		for i := 0; i < steps; i++ {
			a := p.Next(rng)
			distinct[a] = true
			// Clones replay the same stream under the same RNG (all
			// generator state is position, not randomness history).
			if b := clone.Next(crng); a != b {
				t.Fatalf("%T clone diverged at access %d: %d vs %d", p, i, a, b)
			}
		}
		if int64(len(distinct)) > fp {
			t.Fatalf("%T touched %d distinct lines, footprint claims %d", p, len(distinct), fp)
		}
	})
}
