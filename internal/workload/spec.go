// SPEC CPU2006 clone registry.
//
// Each clone is a mixture of pattern primitives calibrated so its LRU miss
// curve matches the shape the paper reports (Figs. 1, 8, 10, 11, 13):
// cliff positions, plateau heights, and convex regions. Cliffs come from
// cyclic scans; because other mixture components interleave distinct lines
// between a scan line's reuses, a scan of F lines produces its LRU cliff at
// approximately
//
//	D ≈ F·(1 + w_huge/w_scan) + W_small
//
// lines, where w_huge is the weight of components whose footprints never
// fit (every interleaved access distinct) and W_small the total footprint
// of components that do fit. scanLinesFor inverts this to place cliffs at
// the published sizes. The clones' APKI/CPI/MLP drive the analytic IPC
// model (internal/sim); values are chosen to give each app the paper's
// approximate MPKI scale and memory intensity.
package workload

import (
	"fmt"
	"strings"
	"sync"

	"talus/internal/curve"
)

// sources maps a "<prefix>:" scheme to a resolver building a Spec from
// the text after the colon. Packages that can turn external inputs into
// workloads register here (internal/trace registers "trace" so
// "trace:<path>" names a recorded stream anywhere an app name is
// accepted).
var (
	sourcesMu sync.RWMutex
	sources   = map[string]func(arg string) (Spec, error){}
)

// RegisterSource installs a resolver for "<prefix>:<arg>" workload
// names. Registration happens at init time; re-registering a prefix
// panics.
func RegisterSource(prefix string, fn func(arg string) (Spec, error)) {
	sourcesMu.Lock()
	defer sourcesMu.Unlock()
	if _, dup := sources[prefix]; dup {
		panic(fmt.Sprintf("workload: source %q registered twice", prefix))
	}
	sources[prefix] = fn
}

// Resolve returns the Spec a workload name denotes: a registry clone
// name ("mcf"), or a registered source reference ("trace:run.trc").
func Resolve(name string) (Spec, error) {
	if s, ok := Lookup(name); ok {
		return s, nil
	}
	if prefix, arg, ok := strings.Cut(name, ":"); ok {
		sourcesMu.RLock()
		fn := sources[prefix]
		sourcesMu.RUnlock()
		if fn != nil {
			return fn(arg)
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown app %q (not a registry clone or registered source)", name)
}

// hugeLines is the footprint of the "never fits" background stream
// (512 MB), standing in for streaming data and page-table walks.
const hugeLines = int64(512 * curve.LinesPerMB)

// scanLinesFor returns the scan footprint that places an LRU cliff at
// cliffMB given the scan's weight, the total weight of never-fitting
// components, and the total footprint (MB) of small components.
func scanLinesFor(cliffMB, wScan, wHuge, smallMB float64) int64 {
	f := (cliffMB - smallMB) / (1 + wHuge/wScan)
	if f <= 0 {
		f = cliffMB / 2
	}
	return int64(f * curve.LinesPerMB)
}

// mb converts megabytes to lines.
func mb(x float64) int64 { return int64(x * curve.LinesPerMB) }

// Registry returns the full SPEC CPU2006 clone set (29 apps), keyed by
// name, in a deterministic order via Names.
func Registry() map[string]Spec {
	specs := make(map[string]Spec, len(registryList))
	for _, s := range registryList {
		specs[s.Name] = s
	}
	return specs
}

// Names returns the registry's app names in canonical (suite) order.
func Names() []string {
	out := make([]string, len(registryList))
	for i, s := range registryList {
		out[i] = s.Name
	}
	return out
}

// Lookup returns the Spec for name, with ok reporting success. Both the
// SPEC clone registry and the synthetic-generator registry
// (generators.go) are consulted; Names/Registry deliberately stay
// clone-only so suite enumerations remain the paper's 29 apps.
func Lookup(name string) (Spec, bool) {
	for _, s := range registryList {
		if s.Name == name {
			return s, true
		}
	}
	for _, s := range generatorList {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// MemoryIntensive returns the names of the 18 most memory-intensive
// clones, the pool the paper draws its 100 random 8-app mixes from
// (§VII-D).
func MemoryIntensive() []string {
	return []string{
		"mcf", "lbm", "libquantum", "milc", "soplex", "GemsFDTD",
		"sphinx3", "omnetpp", "xalancbmk", "bwaves", "gcc", "zeusmp",
		"cactusADM", "leslie3d", "astar", "wrf", "bzip2", "dealII",
	}
}

// CliffApps returns the clones whose LRU curves have pronounced cliffs,
// with the approximate cliff position in lines (used by experiments and
// calibration tests).
func CliffApps() map[string]int64 {
	return map[string]int64{
		"libquantum": mb(32),
		"omnetpp":    mb(2),
		"xalancbmk":  mb(6),
		"cactusADM":  mb(2),
		"lbm":        mb(5),
		"GemsFDTD":   mb(9),
		"wrf":        mb(6),
		"leslie3d":   mb(3),
		"perlbench":  mb(6),
	}
}

var registryList = []Spec{
	// ---- SPECint 2006 ------------------------------------------------
	{
		Name: "perlbench", APKI: 1.6, CPIBase: 0.55, MLP: 1.5,
		// Convex region from the 0.75 MB working set, then a cliff near
		// 6 MB: the shape where bypassing-based policies (PDP) fail
		// (§VII-C).
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.75)}, 0.55},
				Component{&Scan{Lines: scanLinesFor(6, 0.30, 0.15, 0.75)}, 0.30},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
	{
		Name: "bzip2", APKI: 6, CPIBase: 0.60, MLP: 2.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.4)}, 0.50},
				Component{&Rand{Lines: mb(1.8)}, 0.35},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
	{
		Name: "gcc", APKI: 22, CPIBase: 0.60, MLP: 2.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.3)}, 0.50},
				Component{&Rand{Lines: mb(1.8)}, 0.42},
				Component{&Rand{Lines: hugeLines}, 0.08},
			)
		},
	},
	{
		Name: "mcf", APKI: 25, CPIBase: 0.80, MLP: 1.3,
		// Pointer-chasing with a heavy-tailed working set: mostly convex,
		// where reuse classification (RRIP) shines and Talus-on-LRU only
		// matches LRU (§VII-C discusses exactly this limitation).
		Build: func() Pattern {
			return MustMix(
				Component{NewZipf(mb(24), 0.90), 0.55},
				Component{&Rand{Lines: mb(1)}, 0.30},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
	{
		Name: "gobmk", APKI: 0.9, CPIBase: 0.55, MLP: 1.5,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.25)}, 0.45},
				Component{&Rand{Lines: mb(1)}, 0.30},
				Component{&Scan{Lines: scanLinesFor(4, 0.15, 0.10, 1.25)}, 0.15},
				Component{&Rand{Lines: hugeLines}, 0.10},
			)
		},
	},
	{
		Name: "hmmer", APKI: 2.5, CPIBase: 0.45, MLP: 2.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.5)}, 0.90},
				Component{&Rand{Lines: hugeLines}, 0.10},
			)
		},
	},
	{
		Name: "sjeng", APKI: 1.2, CPIBase: 0.55, MLP: 1.5,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.25)}, 0.55},
				Component{&Rand{Lines: mb(32)}, 0.35},
				Component{&Rand{Lines: hugeLines}, 0.10},
			)
		},
	},
	{
		Name: "libquantum", APKI: 33, CPIBase: 0.45, MLP: 3.0,
		// The paper's flagship cliff (Fig. 1): a pure cyclic scan over a
		// 32 MB array — 0 hits below 32 MB of cache, ~all hits above.
		Build: func() Pattern {
			return MustMix(
				Component{&Scan{Lines: scanLinesFor(32, 0.99, 0.01, 0)}, 0.99},
				Component{&Rand{Lines: hugeLines}, 0.01},
			)
		},
	},
	{
		Name: "h264ref", APKI: 1.8, CPIBase: 0.50, MLP: 2.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.4)}, 0.85},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
	{
		Name: "omnetpp", APKI: 28, CPIBase: 0.70, MLP: 1.4,
		// Cliff at 2 MB (Fig. 13b).
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.25)}, 0.30},
				Component{&Scan{Lines: scanLinesFor(2, 0.50, 0.20, 0.25)}, 0.50},
				Component{&Rand{Lines: hugeLines}, 0.20},
			)
		},
	},
	{
		Name: "astar", APKI: 9, CPIBase: 0.65, MLP: 1.4,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.8)}, 0.55},
				Component{&Rand{Lines: mb(3)}, 0.30},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
	{
		Name: "xalancbmk", APKI: 30, CPIBase: 0.60, MLP: 1.6,
		// Convex region then a cliff at 6 MB (Figs. 10f, 13c).
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.5)}, 0.50},
				Component{&Scan{Lines: scanLinesFor(6, 0.42, 0.08, 0.5)}, 0.42},
				Component{&Rand{Lines: hugeLines}, 0.08},
			)
		},
	},
	// ---- SPECfp 2006 -------------------------------------------------
	{
		Name: "bwaves", APKI: 18, CPIBase: 0.50, MLP: 3.5,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(2)}, 0.15},
				Component{&Rand{Lines: hugeLines}, 0.85},
			)
		},
	},
	{
		Name: "gamess", APKI: 0.3, CPIBase: 0.45, MLP: 2.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.3)}, 0.90},
				Component{&Rand{Lines: hugeLines}, 0.10},
			)
		},
	},
	{
		Name: "milc", APKI: 16, CPIBase: 0.55, MLP: 3.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.5)}, 0.08},
				Component{&Rand{Lines: hugeLines}, 0.92},
			)
		},
	},
	{
		Name: "zeusmp", APKI: 6, CPIBase: 0.50, MLP: 2.5,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(1)}, 0.40},
				Component{&Rand{Lines: mb(8)}, 0.25},
				Component{&Rand{Lines: hugeLines}, 0.35},
			)
		},
	},
	{
		Name: "gromacs", APKI: 1.5, CPIBase: 0.50, MLP: 2.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.6)}, 0.80},
				Component{&Rand{Lines: hugeLines}, 0.20},
			)
		},
	},
	{
		Name: "cactusADM", APKI: 9, CPIBase: 0.60, MLP: 2.0,
		// Plateau then cliff near 2 MB (Fig. 10c), where reused-line
		// classification helps RRIP beat Talus-on-LRU.
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.3)}, 0.20},
				Component{&Scan{Lines: scanLinesFor(2, 0.55, 0.25, 0.3)}, 0.55},
				Component{&Rand{Lines: hugeLines}, 0.25},
			)
		},
	},
	{
		Name: "leslie3d", APKI: 12, CPIBase: 0.50, MLP: 3.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.5)}, 0.10},
				Component{&Scan{Lines: scanLinesFor(3, 0.30, 0.60, 0.5)}, 0.30},
				Component{&Rand{Lines: hugeLines}, 0.60},
			)
		},
	},
	{
		Name: "namd", APKI: 0.8, CPIBase: 0.45, MLP: 2.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.5)}, 0.85},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
	{
		Name: "dealII", APKI: 4, CPIBase: 0.50, MLP: 1.8,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.6)}, 0.50},
				Component{&Rand{Lines: mb(2.5)}, 0.35},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
	{
		Name: "soplex", APKI: 25, CPIBase: 0.65, MLP: 1.8,
		Build: func() Pattern {
			return MustMix(
				Component{NewZipf(mb(32), 0.85), 0.50},
				Component{&Rand{Lines: mb(0.8)}, 0.30},
				Component{&Rand{Lines: hugeLines}, 0.20},
			)
		},
	},
	{
		Name: "povray", APKI: 0.08, CPIBase: 0.50, MLP: 1.5,
		// Exceptionally low memory intensity: the paper's example of an
		// app whose LLC stream is too sparse for statistically uniform
		// sampling (§VII-B) — kept deliberately tiny.
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.3)}, 0.90},
				Component{&Rand{Lines: hugeLines}, 0.10},
			)
		},
	},
	{
		Name: "calculix", APKI: 1.4, CPIBase: 0.45, MLP: 2.2,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.5)}, 0.60},
				Component{&Rand{Lines: mb(4)}, 0.25},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
	{
		Name: "GemsFDTD", APKI: 14, CPIBase: 0.55, MLP: 2.5,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.8)}, 0.20},
				Component{&Scan{Lines: scanLinesFor(9, 0.45, 0.35, 0.8)}, 0.45},
				Component{&Rand{Lines: hugeLines}, 0.35},
			)
		},
	},
	{
		Name: "tonto", APKI: 0.07, CPIBase: 0.50, MLP: 1.5,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.4)}, 0.90},
				Component{&Rand{Lines: hugeLines}, 0.10},
			)
		},
	},
	{
		Name: "lbm", APKI: 34, CPIBase: 0.50, MLP: 3.5,
		// Streaming with a 5 MB reuse cliff (Fig. 10e), where RRIP
		// underperforms LRU-based schemes.
		Build: func() Pattern {
			return MustMix(
				Component{&Scan{Lines: scanLinesFor(5, 0.42, 0.58, 0)}, 0.42},
				Component{&Rand{Lines: hugeLines}, 0.58},
			)
		},
	},
	{
		Name: "wrf", APKI: 7, CPIBase: 0.50, MLP: 2.5,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(1)}, 0.35},
				Component{&Scan{Lines: scanLinesFor(6, 0.30, 0.35, 1)}, 0.30},
				Component{&Rand{Lines: hugeLines}, 0.35},
			)
		},
	},
	{
		Name: "sphinx3", APKI: 13, CPIBase: 0.55, MLP: 2.0,
		Build: func() Pattern {
			return MustMix(
				Component{&Rand{Lines: mb(0.7)}, 0.45},
				Component{&Rand{Lines: mb(6)}, 0.40},
				Component{&Rand{Lines: hugeLines}, 0.15},
			)
		},
	},
}
