package workload

import (
	"math"
	"strings"
	"testing"

	"talus/internal/curve"
	"talus/internal/hash"
)

func TestScanCycles(t *testing.T) {
	s := &Scan{Lines: 4}
	rng := hash.NewSplitMix64(1)
	want := []uint64{0, 1, 2, 3, 0, 1, 2, 3}
	for i, w := range want {
		if got := s.Next(rng); got != w {
			t.Fatalf("scan[%d] = %d, want %d", i, got, w)
		}
	}
	if s.Footprint() != 4 {
		t.Fatal("footprint")
	}
	// Clone starts fresh.
	c := s.Clone().(*Scan)
	if got := c.Next(rng); got != 0 {
		t.Fatalf("clone should restart at 0, got %d", got)
	}
}

func TestRandUniform(t *testing.T) {
	r := &Rand{Lines: 16}
	rng := hash.NewSplitMix64(2)
	counts := make([]int, 16)
	const n = 1 << 16
	for i := 0; i < n; i++ {
		a := r.Next(rng)
		if a >= 16 {
			t.Fatalf("address %d out of range", a)
		}
		counts[a]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/16) > n/16*0.15 {
			t.Fatalf("address %d count %d far from uniform", i, c)
		}
	}
}

func TestZipfSkewAndRange(t *testing.T) {
	z := NewZipf(1<<16, 0.9)
	rng := hash.NewSplitMix64(3)
	counts := map[uint64]int{}
	const n = 1 << 18
	for i := 0; i < n; i++ {
		a := z.Next(rng)
		if a >= 1<<16 {
			t.Fatalf("address %d out of range", a)
		}
		counts[a]++
	}
	// Zipf must be heavily skewed: the single hottest line should absorb
	// far more than uniform share (n/65536 = 4).
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 100 {
		t.Fatalf("hottest line count %d; distribution not skewed", max)
	}
	// And the tail must still be broad.
	if len(counts) < 1000 {
		t.Fatalf("only %d distinct lines touched; tail too thin", len(counts))
	}
}

func TestMixWeights(t *testing.T) {
	m := MustMix(
		Component{Pattern: &Scan{Lines: 100}, Weight: 1},
		Component{Pattern: &Rand{Lines: 100}, Weight: 3},
	)
	rng := hash.NewSplitMix64(4)
	const n = 1 << 16
	comp0 := 0
	for i := 0; i < n; i++ {
		a := m.Next(rng)
		if a>>40 == 0 {
			comp0++
		}
	}
	got := float64(comp0) / n
	if math.Abs(got-0.25) > 0.02 {
		t.Fatalf("component 0 fraction = %g, want 0.25", got)
	}
	if m.Footprint() != 200 {
		t.Fatalf("mix footprint = %d", m.Footprint())
	}
}

func TestMixDisjointSpaces(t *testing.T) {
	m := MustMix(
		Component{Pattern: &Scan{Lines: 10}, Weight: 1},
		Component{Pattern: &Scan{Lines: 10}, Weight: 1},
	)
	rng := hash.NewSplitMix64(5)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[m.Next(rng)] = true
	}
	// Two 10-line scans in disjoint subspaces: 20 distinct addresses.
	if len(seen) != 20 {
		t.Fatalf("distinct addresses = %d, want 20", len(seen))
	}
}

func TestMixValidation(t *testing.T) {
	if _, err := NewMix(); err == nil {
		t.Fatal("empty mix must fail")
	}
	if _, err := NewMix(Component{Pattern: &Scan{Lines: 1}, Weight: 0}); err == nil {
		t.Fatal("zero weight must fail")
	}
	if _, err := NewMix(Component{Pattern: nil, Weight: 1}); err == nil {
		t.Fatal("nil pattern must fail")
	}
}

func TestPhasedRotation(t *testing.T) {
	p := &Phased{Stages: []Stage{
		{Pattern: &Scan{Lines: 5}, Length: 10},
		{Pattern: &Scan{Lines: 5}, Length: 10},
	}}
	rng := hash.NewSplitMix64(6)
	// Phased starts mid-rotation bookkeeping: collect subspace ids over
	// two full rotations and expect both stages to appear.
	stages := map[uint64]int{}
	for i := 0; i < 40; i++ {
		stages[p.Next(rng)>>40]++
	}
	if len(stages) != 2 || stages[0] != 20 || stages[1] != 20 {
		t.Fatalf("stage distribution = %v", stages)
	}
	if p.Footprint() != 5 {
		t.Fatalf("phased footprint = %d", p.Footprint())
	}
}

func TestAppDeterminism(t *testing.T) {
	spec, ok := Lookup("omnetpp")
	if !ok {
		t.Fatal("omnetpp missing")
	}
	a := NewApp(spec, 42)
	b := NewApp(spec, 42)
	for i := 0; i < 10000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same-seed apps must generate identical streams")
		}
	}
	c := NewApp(spec, 43)
	diff := 0
	for i := 0; i < 1000; i++ {
		if a.Next() != c.Next() {
			diff++
		}
	}
	if diff < 500 {
		t.Fatal("different seeds should diverge")
	}
}

func TestRegistryComplete(t *testing.T) {
	names := Names()
	if len(names) != 29 {
		t.Fatalf("registry has %d apps, want 29 (SPEC CPU2006)", len(names))
	}
	seen := map[string]bool{}
	reg := Registry()
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate app %s", n)
		}
		seen[n] = true
		spec, ok := reg[n]
		if !ok {
			t.Fatalf("Registry missing %s", n)
		}
		if spec.APKI <= 0 || spec.CPIBase <= 0 || spec.MLP <= 0 || spec.Build == nil {
			t.Fatalf("%s has invalid parameters: %+v", n, spec)
		}
		if p := spec.Build(); p == nil || p.Footprint() <= 0 {
			t.Fatalf("%s builds a bad pattern", n)
		}
	}
	if _, ok := Lookup("not-a-benchmark"); ok {
		t.Fatal("Lookup must fail for unknown names")
	}
}

func TestMemoryIntensiveSubset(t *testing.T) {
	mi := MemoryIntensive()
	if len(mi) != 18 {
		t.Fatalf("memory-intensive pool has %d apps, want 18", len(mi))
	}
	for _, n := range mi {
		spec, ok := Lookup(n)
		if !ok {
			t.Fatalf("%s not in registry", n)
		}
		if spec.APKI < 4 {
			t.Errorf("%s APKI %g is not memory-intensive", n, spec.APKI)
		}
	}
}

func TestCliffAppsListed(t *testing.T) {
	for name, cliff := range CliffApps() {
		if _, ok := Lookup(name); !ok {
			t.Errorf("cliff app %s not in registry", name)
		}
		if cliff <= 0 {
			t.Errorf("cliff app %s has bad cliff position %d", name, cliff)
		}
	}
}

func TestScanLinesForPlacement(t *testing.T) {
	// Pure scan, no interference: footprint equals the cliff.
	if got := scanLinesFor(2, 1, 0, 0); got != int64(2*curve.LinesPerMB) {
		t.Fatalf("scanLinesFor = %d", got)
	}
	// With a huge-stream interleave, the footprint shrinks to compensate.
	shrunk := scanLinesFor(2, 0.5, 0.5, 0)
	if shrunk >= int64(2*curve.LinesPerMB) || shrunk <= 0 {
		t.Fatalf("interleave-compensated footprint = %d", shrunk)
	}
	// Degenerate inputs fall back to a positive footprint.
	if got := scanLinesFor(1, 0.5, 0.5, 2); got <= 0 {
		t.Fatalf("fallback footprint = %d", got)
	}
}

func TestInstrPerAccess(t *testing.T) {
	spec := Spec{Name: "x", APKI: 20, CPIBase: 1, MLP: 1, Build: func() Pattern { return &Scan{Lines: 1} }}
	app := NewApp(spec, 1)
	if got := app.InstrPerAccess(); got != 50 {
		t.Fatalf("InstrPerAccess = %g, want 50", got)
	}
}

// TestDegenerateFootprintsRejected is the regression test for the
// zero-footprint bug: Scan{Lines: 0} used to loop forever on address 0
// and Rand{Lines: 0} panicked inside Uint64n; both must now be rejected
// at spec-build time with a descriptive error.
func TestDegenerateFootprintsRejected(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Pattern
	}{
		{"scan-zero", &Scan{Lines: 0}},
		{"scan-negative", &Scan{Lines: -5}},
		{"rand-zero", &Rand{Lines: 0}},
		{"zipf-zero", &Zipf{Lines: 0, S: 1.1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := Validate(tc.p); err == nil || !strings.Contains(err.Error(), "footprint") {
				t.Fatalf("Validate = %v, want footprint error", err)
			}
			if _, err := NewMix(Component{tc.p, 1}); err == nil {
				t.Fatal("NewMix accepted a degenerate component")
			}
			if _, err := NewPhased(Stage{tc.p, 100}); err == nil {
				t.Fatal("NewPhased accepted a degenerate stage")
			}
		})
	}
}

func TestPhasedValidation(t *testing.T) {
	if _, err := NewPhased(); err == nil {
		t.Fatal("NewPhased with no stages must fail")
	}
	if _, err := NewPhased(Stage{&Scan{Lines: 4}, 0}); err == nil {
		t.Fatal("NewPhased with zero-length stage must fail")
	}
	if _, err := NewPhased(Stage{nil, 10}); err == nil {
		t.Fatal("NewPhased with nil pattern must fail")
	}
	p, err := NewPhased(Stage{&Scan{Lines: 4}, 10}, Stage{&Rand{Lines: 8}, 10})
	if err != nil {
		t.Fatal(err)
	}
	if p.Footprint() != 8 {
		t.Fatalf("footprint = %d", p.Footprint())
	}
}

// TestNewAppPanicsOnDegenerateSpec covers bare primitives that bypass
// the composite constructors: NewApp validates the built pattern.
func TestNewAppPanicsOnDegenerateSpec(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("NewApp accepted a zero-footprint pattern")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "footprint") {
			t.Fatalf("panic = %v, want footprint message", r)
		}
	}()
	NewApp(Spec{
		Name: "bad", APKI: 1, CPIBase: 1, MLP: 1,
		Build: func() Pattern { return &Rand{Lines: 0} },
	}, 1)
}

// TestRegistryValidates ensures every registry clone still builds under
// the new validation (all footprints are ≥ 1 by construction).
func TestRegistryValidates(t *testing.T) {
	for _, name := range Names() {
		spec, _ := Lookup(name)
		if err := Validate(spec.Build()); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestResolve(t *testing.T) {
	if _, err := Resolve("mcf"); err != nil {
		t.Fatalf("registry name: %v", err)
	}
	if _, err := Resolve("no-such-app"); err == nil {
		t.Fatal("unknown app resolved")
	}
	if _, err := Resolve("nosuchsource:arg"); err == nil {
		t.Fatal("unknown source resolved")
	}
	RegisterSource("testsrc", func(arg string) (Spec, error) {
		return Spec{Name: arg, APKI: 1, CPIBase: 1, MLP: 1,
			Build: func() Pattern { return &Scan{Lines: 2} }}, nil
	})
	spec, err := Resolve("testsrc:hello")
	if err != nil || spec.Name != "hello" {
		t.Fatalf("source resolve = %+v, %v", spec, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate source registration must panic")
		}
	}()
	RegisterSource("testsrc", nil)
}

// TestEmptyMixRejected: a zero-value &Mix{} must fail Validate (and
// NewApp), not pass the Mix arm vacuously and panic at m.comps[i] on
// the first Next.
func TestEmptyMixRejected(t *testing.T) {
	if err := Validate(&Mix{}); err == nil {
		t.Fatal("Validate accepted an empty mix")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewApp accepted an empty mix")
		}
	}()
	NewApp(Spec{Name: "empty", APKI: 1, CPIBase: 1, MLP: 1,
		Build: func() Pattern { return &Mix{} }}, 1)
}
