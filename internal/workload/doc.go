// Package workload generates the LLC access streams the evaluation runs
// on. The paper uses SPEC CPU2006; since those binaries and traces are
// proprietary, this package provides synthetic *clones*: mixtures of
// access-pattern primitives calibrated so each clone's LRU miss curve has
// the published shape — cliff positions, plateau heights, and convex
// regions per Figs. 1, 8, 10 and 13 (see DESIGN.md §2 for the
// substitution rationale).
//
// The primitives produce cliffs by the same mechanism real programs do:
// a cyclic scan over F lines under LRU misses on every access below F
// lines of cache and hits on every access above (the libquantum behavior
// of Fig. 1); a uniform random working set of W lines yields a smooth,
// convex curve saturating at W; Zipfian references yield long convex
// tails. Because Talus is blind to individual lines and driven only by
// the miss curve (§III), any stream realizing a given curve exercises
// Talus identically.
//
// Streams are generated directly at LLC granularity: the paper's L1/L2
// hierarchy filters temporal locality, so the clones' APKI (LLC accesses
// per kilo-instruction) are post-L2 rates.
package workload
