// Adversarial and stream-shaped generators beyond the zipf/rand/scan
// primitives: strided prefetch-friendly streams, dependent pointer
// chases, phase-shifting diurnal popularity, and a cliff-seeking
// workload that deliberately parks its LRU cliff just beyond a target
// cache size. All four are exact-analyzable (internal/oracle computes
// or simulates their ground-truth miss curves), which is what makes
// them useful: they turn the monitor→hull→Talus stack's output into
// something an independent reference can check.

package workload

import (
	"fmt"
	"strconv"
	"strings"

	"talus/internal/curve"
	"talus/internal/hash"
)

// Strided cycles through Lines addresses in steps of Stride: the shape
// of a hardware-prefetch-friendly stream (unit or small stride). Its
// footprint is Lines/gcd(Lines, Stride) distinct lines and, like Scan,
// its LRU miss curve is a step: all-miss below the footprint, all-hit
// at and above it. Stride 0 degenerates to a single line; negative
// strides walk backwards.
type Strided struct {
	Lines  int64
	Stride int64
	pos    int64
}

// step returns the stride normalized into [0, Lines).
func (s *Strided) step() int64 {
	if s.Lines < 1 {
		return 0
	}
	st := s.Stride % s.Lines
	if st < 0 {
		st += s.Lines
	}
	return st
}

// Next implements Pattern.
func (s *Strided) Next(_ *hash.SplitMix64) uint64 {
	a := uint64(s.pos)
	s.pos = (s.pos + s.step()) % s.Lines
	return a
}

// Footprint implements Pattern: the length of the cycle the stride
// traces, Lines/gcd(Lines, Stride).
func (s *Strided) Footprint() int64 {
	if s.Lines < 1 {
		return s.Lines
	}
	st := s.step()
	if st == 0 {
		return 1
	}
	return s.Lines / gcd(s.Lines, st)
}

// Clone implements Pattern.
func (s *Strided) Clone() Pattern { return &Strided{Lines: s.Lines, Stride: s.Stride} }

// gcd returns the greatest common divisor of two positive int64s.
func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// PointerChase follows a fixed random ring over Lines addresses: each
// access's address is determined by the previous one (next = ring[cur]),
// the dependent-chain worst case for spatial locality and prefetching
// (MLP ≈ 1). The ring is a single cycle, so like Scan the pattern
// touches all Lines lines once per lap and its LRU miss curve is a step
// at Lines — but with no spatial order for a stream prefetcher to
// exploit. The ring is built deterministically from Seed on first use
// and shared (immutably) between clones.
type PointerChase struct {
	Lines int64
	Seed  uint64
	ring  []uint64
	cur   uint64
}

// NewPointerChase builds a pointer chase over a lines-long ring seeded
// by seed.
func NewPointerChase(lines int64, seed uint64) *PointerChase {
	return &PointerChase{Lines: lines, Seed: seed}
}

// build materializes the ring: a uniformly random single cycle over
// [0, Lines), derived from a random visiting order (ring[order[i]] =
// order[i+1 mod n] is a single n-cycle for any permutation "order").
func (p *PointerChase) build() {
	n := int(p.Lines)
	rng := hash.NewSplitMix64(p.Seed ^ 0xC4A5E)
	order := rng.Perm(n)
	p.ring = make([]uint64, n)
	for i, o := range order {
		p.ring[o] = uint64(order[(i+1)%n])
	}
	p.cur = uint64(order[0])
}

// Next implements Pattern.
func (p *PointerChase) Next(_ *hash.SplitMix64) uint64 {
	if p.ring == nil {
		p.build()
	}
	a := p.cur
	p.cur = p.ring[a]
	return a
}

// Footprint implements Pattern.
func (p *PointerChase) Footprint() int64 { return p.Lines }

// Clone implements Pattern: clones share the (immutable) ring but chase
// it from a fresh position.
func (p *PointerChase) Clone() Pattern {
	c := &PointerChase{Lines: p.Lines, Seed: p.Seed, ring: p.ring}
	if p.ring != nil {
		c.cur = p.ring[0] // deterministic fresh start; every line is on the ring
	}
	return c
}

// Diurnal is a phase-shifting zipf hotset: zipf-distributed popularity
// over Lines addresses whose hot ranks rotate by Shift lines every
// Period accesses — the access-count analogue of a wall-clock diurnal
// cycle (the morning's hot keys are not the evening's). Each phase
// looks like a stationary zipf to the monitor; across phases the hotset
// walks the whole space, stressing Assumption 1 ("miss curves change
// slowly") the same way Phased does, but gradually instead of abruptly.
type Diurnal struct {
	Lines  int64
	S      float64 // zipf exponent
	Period int64   // accesses per phase
	Shift  int64   // lines the hotset rotates per phase
	z      *Zipf
	offset uint64
	left   int64
}

// NewDiurnal validates the shape (lines ≥ 1, period ≥ 1) and builds a
// rotating-hotset pattern.
func NewDiurnal(lines int64, s float64, period, shift int64) (*Diurnal, error) {
	if lines < 1 {
		return nil, fmt.Errorf("workload: diurnal lines %d < 1", lines)
	}
	if period < 1 {
		return nil, fmt.Errorf("workload: diurnal period %d < 1", period)
	}
	return &Diurnal{Lines: lines, S: s, Period: period, Shift: shift}, nil
}

// Next implements Pattern.
func (d *Diurnal) Next(rng *hash.SplitMix64) uint64 {
	if d.z == nil {
		d.z = NewZipf(d.Lines, d.S)
	}
	if d.left <= 0 {
		shift := d.Shift % d.Lines
		if shift < 0 {
			shift += d.Lines
		}
		d.offset = (d.offset + uint64(shift)) % uint64(d.Lines)
		d.left = d.Period
		if d.left < 1 {
			d.left = 1
		}
	}
	d.left--
	return (d.z.Next(rng) + d.offset) % uint64(d.Lines)
}

// Footprint implements Pattern: the rotation eventually drags the
// hotset across the entire space.
func (d *Diurnal) Footprint() int64 { return d.Lines }

// Clone implements Pattern.
func (d *Diurnal) Clone() Pattern {
	return &Diurnal{Lines: d.Lines, S: d.S, Period: d.Period, Shift: d.Shift}
}

// CliffSeeker hunts the configuration where convexification matters
// most: a scan/zipf mix whose aggregate LRU cliff is placed just beyond
// a target cache size. Below the knee the scan component (weight
// cliffScanWeight) misses on every access, so plain LRU at the target
// size is stuck near the plateau; Talus interpolates the hull between
// the small zipf hotset and the knee and recovers most of the cliff.
// The constructor does the adversarial tuning: between two reuses of a
// scan line, the zipf component interleaves ≈ its whole hotset, so a
// scan footprint F produces its cliff near F + hot lines; solving for
// the knee at KneeFactor × target gives F = knee − hot.
type CliffSeeker struct {
	Target int64 // the cache size under attack, in lines
	Knee   int64 // where the constructor placed the LRU cliff
	mix    *Mix
}

// KneeFactor places the cliff 25% beyond the attacked size: far enough
// that the target allocation cannot reach it, close enough that the
// hull interpolation recovers most of the scan's hits.
const KneeFactor = 1.25

// Mixture shape: the scan dominates so the cliff is tall; the zipf
// hotset supplies the convex low region the hull's α anchor needs.
const (
	cliffScanWeight = 0.8
	cliffZipfWeight = 1 - cliffScanWeight
	cliffZipfS      = 0.9
)

// NewCliffSeeker builds a cliff-seeking mix attacking a cache of
// targetLines lines (at least 16, so the derived hotset and scan
// footprints stay non-degenerate).
func NewCliffSeeker(targetLines int64) (*CliffSeeker, error) {
	if targetLines < 16 {
		return nil, fmt.Errorf("workload: cliffseeker target %d < 16 lines", targetLines)
	}
	knee := int64(KneeFactor * float64(targetLines))
	hot := targetLines / 8
	scan := knee - hot
	mix, err := NewMix(
		Component{&Scan{Lines: scan}, cliffScanWeight},
		Component{NewZipf(hot, cliffZipfS), cliffZipfWeight},
	)
	if err != nil {
		return nil, err
	}
	return &CliffSeeker{Target: targetLines, Knee: knee, mix: mix}, nil
}

// Next implements Pattern.
func (c *CliffSeeker) Next(rng *hash.SplitMix64) uint64 { return c.mix.Next(rng) }

// Footprint implements Pattern.
func (c *CliffSeeker) Footprint() int64 { return c.mix.Footprint() }

// Clone implements Pattern.
func (c *CliffSeeker) Clone() Pattern {
	return &CliffSeeker{Target: c.Target, Knee: c.Knee, mix: c.mix.Clone().(*Mix)}
}

// --- Registry wiring ----------------------------------------------------

// generatorList is the synthetic-generator registry: named specs
// resolvable anywhere an app name is accepted (talus-sim -apps, trace
// recording, adaptive runs), kept separate from the SPEC CPU2006 clone
// list so suite enumerations (Names, Registry) stay the paper's 29
// apps. Defaults are sized against talus-sim's default 8 MB LLC.
var generatorList = []Spec{
	{
		Name: "strided", APKI: 18, CPIBase: 0.5, MLP: 3.5,
		// Stride-4 stream over 32 MB: footprint 8 MB, step cliff there.
		Build: func() Pattern { return &Strided{Lines: mb(32), Stride: 4} },
	},
	{
		Name: "pointerchase", APKI: 15, CPIBase: 0.8, MLP: 1.0,
		// Dependent chain over a 2 MB ring: step cliff at 2 MB, MLP 1.
		Build: func() Pattern { return NewPointerChase(mb(2), 0x9E3779B9) },
	},
	{
		Name: "diurnal", APKI: 20, CPIBase: 0.6, MLP: 1.6,
		// 8 MB zipf hotset rotating by 1/16 of the space every 256K
		// accesses.
		Build: func() Pattern {
			d, err := NewDiurnal(mb(8), 0.9, 1<<18, mb(8)/16)
			if err != nil {
				panic(err)
			}
			return d
		},
	},
	{
		Name: "cliffseeker", APKI: 25, CPIBase: 0.55, MLP: 2.0,
		// Attacks an 8 MB LLC (talus-sim's default -mb 8): knee at 10 MB.
		Build: func() Pattern {
			c, err := NewCliffSeeker(mb(8))
			if err != nil {
				panic(err)
			}
			return c
		},
	},
}

// GeneratorNames returns the synthetic generators' names in registry
// order.
func GeneratorNames() []string {
	out := make([]string, len(generatorList))
	for i, s := range generatorList {
		out[i] = s.Name
	}
	return out
}

// genSpec resolves "gen:<name>[,k=v,...]" workload names: the
// parameterized counterpart of the fixed generator specs, e.g.
//
//	gen:cliffseeker,mb=4
//	gen:strided,mb=16,stride=8
//	gen:pointerchase,lines=65536,seed=7
//	gen:diurnal,mb=8,s=0.9,period=262144,shift=8192
//	gen:scan,mb=32    gen:rand,lines=4096    gen:zipf,mb=8,s=1.1
//
// Sizes take either lines=<n> or mb=<f> (mb wins when both are given).
func genSpec(arg string) (Spec, error) {
	parts := strings.Split(arg, ",")
	name := strings.TrimSpace(parts[0])
	params := map[string]string{}
	for _, kv := range parts[1:] {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return Spec{}, fmt.Errorf("workload: gen:%s: parameter %q is not k=v", arg, kv)
		}
		params[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	p := genParams{params: params}
	lines := p.lines("lines", "mb", mb(8))
	var build func() Pattern
	switch name {
	case "scan":
		build = func() Pattern { return &Scan{Lines: lines} }
	case "rand":
		build = func() Pattern { return &Rand{Lines: lines} }
	case "zipf":
		s := p.float("s", 0.9)
		build = func() Pattern { return NewZipf(lines, s) }
	case "strided":
		stride := p.int("stride", 4)
		build = func() Pattern { return &Strided{Lines: lines, Stride: stride} }
	case "pointerchase":
		seed := uint64(p.int("seed", 0x9E3779B9))
		build = func() Pattern { return NewPointerChase(lines, seed) }
	case "diurnal":
		s := p.float("s", 0.9)
		period := p.int("period", 1<<18)
		shift := p.int("shift", lines/16)
		d, err := NewDiurnal(lines, s, period, shift)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: gen:%s: %w", arg, err)
		}
		build = func() Pattern { return d.Clone() }
	case "cliffseeker":
		c, err := NewCliffSeeker(lines)
		if err != nil {
			return Spec{}, fmt.Errorf("workload: gen:%s: %w", arg, err)
		}
		build = func() Pattern { return c.Clone() }
	default:
		return Spec{}, fmt.Errorf("workload: gen:%s: unknown generator %q (valid: scan, rand, zipf, strided, pointerchase, diurnal, cliffseeker)", arg, name)
	}
	if p.err != nil {
		return Spec{}, fmt.Errorf("workload: gen:%s: %w", arg, p.err)
	}
	// Core-model parameters: the fixed generator's values when one of
	// the same name exists, else a moderate default.
	spec := Spec{Name: "gen:" + arg, APKI: 20, CPIBase: 0.5, MLP: 2.0}
	for _, g := range generatorList {
		if g.Name == name {
			spec.APKI, spec.CPIBase, spec.MLP = g.APKI, g.CPIBase, g.MLP
		}
	}
	spec.Build = build
	pattern := spec.Build()
	if err := Validate(pattern); err != nil {
		return Spec{}, fmt.Errorf("workload: gen:%s: %w", arg, err)
	}
	return spec, nil
}

// genParams is a small typed accessor over gen: key=value parameters,
// accumulating the first parse error.
type genParams struct {
	params map[string]string
	err    error
}

func (p *genParams) int(key string, def int64) int64 {
	v, ok := p.params[key]
	if !ok {
		return def
	}
	n, err := strconv.ParseInt(v, 0, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("parameter %s=%q: %v", key, v, err)
	}
	return n
}

func (p *genParams) float(key string, def float64) float64 {
	v, ok := p.params[key]
	if !ok {
		return def
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil && p.err == nil {
		p.err = fmt.Errorf("parameter %s=%q: %v", key, v, err)
	}
	return f
}

// lines resolves a size given as lines=<n> or mb=<f> (mb wins), with a
// default in lines.
func (p *genParams) lines(linesKey, mbKey string, def int64) int64 {
	out := p.int(linesKey, def)
	if v, ok := p.params[mbKey]; ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			if p.err == nil {
				p.err = fmt.Errorf("parameter %s=%q: %v", mbKey, v, err)
			}
			return out
		}
		out = int64(f * curve.LinesPerMB)
	}
	return out
}

func init() {
	RegisterSource("gen", genSpec)
}
