package policy

import (
	"testing"
	"testing/quick"

	"talus/internal/hash"
)

func TestMINKnownTrace(t *testing.T) {
	// Classic example: a b c d a b c d with capacity 3.
	// MIN: misses a b c d (d evicts the line reused farthest: c),
	// then a,b hit, c misses, d hits → 5 misses.
	trace := []uint64{1, 2, 3, 4, 1, 2, 3, 4}
	if got := SimulateMIN(trace, 3); got != 5 {
		t.Fatalf("MIN misses = %d, want 5", got)
	}
}

func TestMINFullFit(t *testing.T) {
	trace := []uint64{1, 2, 3, 1, 2, 3, 1, 2, 3}
	if got := SimulateMIN(trace, 3); got != 3 {
		t.Fatalf("MIN misses = %d, want 3 (compulsory only)", got)
	}
}

func TestMINZeroCapacity(t *testing.T) {
	trace := []uint64{1, 1, 1}
	if got := SimulateMIN(trace, 0); got != 3 {
		t.Fatalf("MIN with no cache should miss everything, got %d", got)
	}
}

func TestMINCyclicScanBounds(t *testing.T) {
	// A cyclic scan of N lines under MIN with capacity C hits between
	// C−1 and C lines per lap after warmup (keeping ~C−1 lines across a
	// lap boundary; Belady rotates which lines are kept) — unlike LRU
	// which hits zero. This is the theoretical basis for the
	// optimal-bypassing comparison (§V-C).
	const n, c, laps = 64, 16, 50
	trace := make([]uint64, 0, n*laps)
	for l := 0; l < laps; l++ {
		for i := uint64(0); i < n; i++ {
			trace = append(trace, i)
		}
	}
	misses := SimulateMIN(trace, c)
	// At most C hits per steady lap; at least C−1.
	lower := n + (laps-1)*(n-c)
	upper := n + (laps-1)*(n-(c-1))
	if misses < lower || misses > upper {
		t.Fatalf("MIN scan misses = %d, want within [%d, %d]", misses, lower, upper)
	}
	// And MIN must beat LRU decisively: LRU gets zero hits on this scan.
	if lru := lruMisses(trace, c); misses >= lru {
		t.Fatalf("MIN (%d) should beat LRU (%d) on a cyclic scan", misses, lru)
	}
}

// lruMisses simulates fully-associative LRU for reference.
func lruMisses(trace []uint64, capacity int) int {
	type node struct {
		addr       uint64
		prev, next *node
	}
	m := make(map[uint64]*node)
	var head, tail *node
	unlink := func(n *node) {
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			head = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			tail = n.prev
		}
		n.prev, n.next = nil, nil
	}
	pushFront := func(n *node) {
		n.next = head
		if head != nil {
			head.prev = n
		}
		head = n
		if tail == nil {
			tail = n
		}
	}
	misses := 0
	for _, a := range trace {
		if n, ok := m[a]; ok {
			unlink(n)
			pushFront(n)
			continue
		}
		misses++
		if capacity <= 0 {
			continue
		}
		n := &node{addr: a}
		m[a] = n
		pushFront(n)
		if len(m) > capacity {
			v := tail
			unlink(v)
			delete(m, v.addr)
		}
	}
	return misses
}

// Property: MIN never misses more than LRU (optimality against a valid
// online policy), and misses at least the number of distinct lines.
func TestQuickMINOptimality(t *testing.T) {
	f := func(seed uint64, capRaw, lenRaw uint8) bool {
		capacity := int(capRaw%32) + 1
		length := int(lenRaw)*4 + 64
		rng := hash.NewSplitMix64(seed)
		trace := make([]uint64, length)
		distinct := map[uint64]bool{}
		for i := range trace {
			trace[i] = rng.Uint64n(64)
			distinct[trace[i]] = true
		}
		minMiss := SimulateMIN(trace, capacity)
		if minMiss > lruMisses(trace, capacity) {
			return false
		}
		return minMiss >= len(distinct)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property (Corollary 7): MIN's miss counts are convex in capacity.
func TestQuickMINConvexity(t *testing.T) {
	f := func(seed uint64, mode uint8) bool {
		rng := hash.NewSplitMix64(seed)
		const length = 3000
		trace := make([]uint64, length)
		switch mode % 3 {
		case 0: // random over 64 lines
			for i := range trace {
				trace[i] = rng.Uint64n(64)
			}
		case 1: // cyclic scan of 48 lines (cliffy under LRU)
			for i := range trace {
				trace[i] = uint64(i % 48)
			}
		default: // mixture
			for i := range trace {
				if rng.Float64() < 0.5 {
					trace[i] = uint64(i % 40)
				} else {
					trace[i] = 100 + rng.Uint64n(30)
				}
			}
		}
		// Misses at capacities 1..40 must form a convex sequence.
		misses := make([]int, 41)
		for c := 1; c <= 40; c++ {
			misses[c] = SimulateMIN(trace, c)
		}
		for c := 2; c < 40; c++ {
			// Convexity: m(c-1) + m(c+1) ≥ 2·m(c).
			if misses[c-1]+misses[c+1] < 2*misses[c] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
