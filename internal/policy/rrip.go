// RRIP-family policies: SRRIP, BRRIP, and DRRIP with set dueling,
// including the thread-aware TA-DRRIP variant used as the hardware-only
// baseline in the paper's multi-programmed experiments (§VII-D).
//
// Re-Reference Interval Prediction (Jaleel et al., ISCA 2010) attaches an
// M-bit re-reference prediction value (RRPV) to each line. The paper's
// configuration is M = 2 (RRPV in 0..3) with hit-promotion to 0 and
// ε = 1/32 for BRRIP's infrequent long-re-reference insertions.

package policy

// rripMax is the maximum RRPV for the paper's M = 2 bits.
const rripMax = 3

// bipEpsilonDenom is 1/ε: BRRIP inserts at RRPV=2 once every 32 fills
// (same ε as DIP's BIP; paper §II-A).
const bipEpsilonDenom = 32

// SRRIP implements Static RRIP: insert at RRPV = max−1 ("long
// re-reference"), promote to 0 on hit, evict the first candidate with
// RRPV = max, aging all candidates when none qualifies.
type SRRIP struct {
	rrpv []uint8
}

// NewSRRIP returns an SRRIP policy for sets×assoc lines.
func NewSRRIP(sets, assoc int, _ uint64) *SRRIP {
	r := &SRRIP{rrpv: make([]uint8, sets*assoc)}
	r.Reset()
	return r
}

// SRRIPFactory adapts NewSRRIP to the Factory signature.
func SRRIPFactory(sets, assoc int, seed uint64) Policy { return NewSRRIP(sets, assoc, seed) }

// Name implements Policy.
func (p *SRRIP) Name() string { return "SRRIP" }

// Hit implements Policy: hit promotion (HP) to RRPV 0.
func (p *SRRIP) Hit(idx int, _ AccessContext) { p.rrpv[idx] = 0 }

// Fill implements Policy: insert predicting a long re-reference interval.
func (p *SRRIP) Fill(idx int, _ AccessContext) { p.rrpv[idx] = rripMax - 1 }

// Victim implements Policy.
func (p *SRRIP) Victim(candidates []int, _ AccessContext) int {
	return rripVictim(p.rrpv, candidates)
}

// Reset implements Policy: empty ways start distant (RRPV max) so they are
// chosen before any resident line.
func (p *SRRIP) Reset() {
	for i := range p.rrpv {
		p.rrpv[i] = rripMax
	}
}

// rripVictim evicts the leftmost candidate with RRPV = max, aging every
// candidate by the shortfall when none qualifies (equivalent to the
// textbook "increment all and rescan" loop, in one pass).
func rripVictim(rrpv []uint8, candidates []int) int {
	var maxV uint8
	best := candidates[0]
	for _, idx := range candidates {
		if rrpv[idx] > maxV {
			maxV = rrpv[idx]
			best = idx
			if maxV == rripMax {
				break
			}
		}
	}
	if maxV < rripMax {
		delta := rripMax - maxV
		for _, idx := range candidates {
			rrpv[idx] += delta
		}
	}
	return best
}

// BRRIP implements Bimodal RRIP: like SRRIP, but fills insert at RRPV=max
// ("distant") except for 1 in 32 fills which insert at max−1. BRRIP is
// thrash-resistant: most of a too-large working set streams through the
// distant position without displacing the protected portion.
type BRRIP struct {
	rrpv    []uint8
	fillCnt uint64
}

// NewBRRIP returns a BRRIP policy.
func NewBRRIP(sets, assoc int, _ uint64) *BRRIP {
	r := &BRRIP{rrpv: make([]uint8, sets*assoc)}
	r.Reset()
	return r
}

// BRRIPFactory adapts NewBRRIP to the Factory signature.
func BRRIPFactory(sets, assoc int, seed uint64) Policy { return NewBRRIP(sets, assoc, seed) }

// Name implements Policy.
func (p *BRRIP) Name() string { return "BRRIP" }

// Hit implements Policy.
func (p *BRRIP) Hit(idx int, _ AccessContext) { p.rrpv[idx] = 0 }

// Fill implements Policy.
func (p *BRRIP) Fill(idx int, _ AccessContext) {
	p.fillCnt++
	if p.fillCnt%bipEpsilonDenom == 0 {
		p.rrpv[idx] = rripMax - 1
	} else {
		p.rrpv[idx] = rripMax
	}
}

// Victim implements Policy.
func (p *BRRIP) Victim(candidates []int, _ AccessContext) int {
	return rripVictim(p.rrpv, candidates)
}

// Reset implements Policy.
func (p *BRRIP) Reset() {
	p.fillCnt = 0
	for i := range p.rrpv {
		p.rrpv[i] = rripMax
	}
}

// DRRIP dynamically selects between SRRIP and BRRIP insertion using set
// dueling: a few leader sets always use each constituent policy, a
// saturating counter (PSEL) tallies which leader group misses more, and
// all follower sets adopt the winner. With ThreadAware enabled (TA-DRRIP),
// each thread duels independently with its own PSEL and leader sets, as in
// Jaleel et al.'s thread-aware extension the paper compares against.
type DRRIP struct {
	rrpv    []uint8
	sets    int
	fillCnt uint64
	psel    []int32 // one per thread (one entry when not thread-aware)
	pselMax int32
	threads int
	ta      bool
}

// drripLeaderPeriod spaces leader sets: within each period, one set leads
// for SRRIP and one for BRRIP (≈ 32 dueling sets per side on a 1K-set
// cache, matching the papers' "set dueling monitors").
const drripLeaderPeriod = 32

// NewDRRIP returns a DRRIP policy. threads > 1 with threadAware true gives
// TA-DRRIP; threads is the number of logical partitions that will access
// the cache.
func NewDRRIP(sets, assoc int, _ uint64, threads int, threadAware bool) *DRRIP {
	if threads < 1 {
		threads = 1
	}
	n := 1
	if threadAware {
		n = threads
	}
	d := &DRRIP{
		rrpv:    make([]uint8, sets*assoc),
		sets:    sets,
		psel:    make([]int32, n),
		pselMax: 1023, // 10-bit saturating counter
		threads: threads,
		ta:      threadAware,
	}
	d.Reset()
	return d
}

// DRRIPFactory adapts single-threaded DRRIP to the Factory signature.
func DRRIPFactory(sets, assoc int, seed uint64) Policy {
	return NewDRRIP(sets, assoc, seed, 1, false)
}

// TADRRIPFactory returns a Factory producing thread-aware DRRIP for the
// given thread count.
func TADRRIPFactory(threads int) Factory {
	return func(sets, assoc int, seed uint64) Policy {
		return NewDRRIP(sets, assoc, seed, threads, true)
	}
}

// Name implements Policy.
func (p *DRRIP) Name() string {
	if p.ta {
		return "TA-DRRIP"
	}
	return "DRRIP"
}

// leaderKind classifies a set for a thread: +1 = SRRIP leader,
// -1 = BRRIP leader, 0 = follower. With thread-aware dueling, each
// thread's leader sets are offset so different threads duel in different
// sets.
func (p *DRRIP) leaderKind(set, thread int) int {
	pos := set % drripLeaderPeriod
	if p.ta {
		pos = (set + 5*thread) % drripLeaderPeriod
	}
	switch pos {
	case 0:
		return +1
	case drripLeaderPeriod / 2:
		return -1
	}
	return 0
}

// Hit implements Policy.
func (p *DRRIP) Hit(idx int, _ AccessContext) { p.rrpv[idx] = 0 }

// Fill implements Policy: leader sets insert with their constituent
// policy and vote via PSEL (a fill is a miss, so leader fills record a
// miss against that leader's policy); follower sets insert with the
// current winner.
func (p *DRRIP) Fill(idx int, ctx AccessContext) {
	t := 0
	if p.ta {
		t = ctx.Thread % len(p.psel)
	}
	useBRRIP := false
	switch p.leaderKind(ctx.Set, ctx.Thread) {
	case +1: // SRRIP leader missed: evidence against SRRIP
		if p.psel[t] < p.pselMax {
			p.psel[t]++
		}
	case -1: // BRRIP leader missed: evidence against BRRIP
		if p.psel[t] > 0 {
			p.psel[t]--
		}
		useBRRIP = true
	default:
		// Follower: high PSEL means SRRIP misses more, so follow BRRIP.
		useBRRIP = p.psel[t] > p.pselMax/2
	}
	if useBRRIP {
		p.fillCnt++
		if p.fillCnt%bipEpsilonDenom == 0 {
			p.rrpv[idx] = rripMax - 1
		} else {
			p.rrpv[idx] = rripMax
		}
	} else {
		p.rrpv[idx] = rripMax - 1
	}
}

// Victim implements Policy.
func (p *DRRIP) Victim(candidates []int, _ AccessContext) int {
	return rripVictim(p.rrpv, candidates)
}

// Reset implements Policy.
func (p *DRRIP) Reset() {
	p.fillCnt = 0
	for i := range p.rrpv {
		p.rrpv[i] = rripMax
	}
	for t := range p.psel {
		p.psel[t] = p.pselMax / 2
	}
}

// PSEL exposes the policy-selection counter for thread t (tests).
func (p *DRRIP) PSEL(t int) int32 { return p.psel[t%len(p.psel)] }
