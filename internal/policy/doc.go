// Package policy implements the cache replacement policies the paper
// evaluates: LRU, SRRIP/BRRIP/DRRIP (Jaleel et al., ISCA 2010, including
// the thread-aware TA-DRRIP variant), DIP (Qureshi et al., ISCA 2007),
// PDP (Duong et al., MICRO 2012), Random, and offline Belady MIN.
//
// A Policy is a per-cache state machine operating on global line indices
// (set·assoc + way). The cache array calls Hit when an access hits, Victim
// to choose an eviction candidate on a miss, and Fill after inserting the
// new line. Victim may return -1 to bypass the fill entirely (PDP does
// this when every candidate is protected), in which case the access counts
// as a miss but no line is replaced.
//
// Policies deliberately know nothing about partitioning: the cache hands
// them whatever candidate set the partitioning scheme allows, and their
// per-line metadata is globally comparable (e.g., LRU timestamps), so a
// policy ranks victims correctly within any candidate subset. This is what
// lets one policy serve way, set, and Vantage-style partitioning unchanged.
package policy
