// DIP: Dynamic Insertion Policy (Qureshi et al., ISCA 2007).
//
// DIP duels LRU against BIP (Bimodal Insertion Policy). BIP inserts most
// lines at the LRU position — so a thrashing working set streams through
// one way instead of flushing the cache — and promotes to MRU only on a
// hit, inserting at MRU for 1 in 32 fills (ε = 1/32) to adapt to phase
// changes. Set dueling picks the better constituent, exactly as in DRRIP.

package policy

// DIP implements the dynamic insertion policy over an LRU timestamp core.
type DIP struct {
	lru     *LRU
	sets    int
	assoc   int
	fillCnt uint64
	psel    int32
	pselMax int32
}

// NewDIP returns a DIP policy for sets×assoc lines.
func NewDIP(sets, assoc int, seed uint64) *DIP {
	p := &DIP{
		lru:     NewLRU(sets, assoc, seed),
		sets:    sets,
		assoc:   assoc,
		pselMax: 1023,
	}
	p.Reset()
	return p
}

// DIPFactory adapts NewDIP to the Factory signature.
func DIPFactory(sets, assoc int, seed uint64) Policy { return NewDIP(sets, assoc, seed) }

// Name implements Policy.
func (p *DIP) Name() string { return "DIP" }

// leaderKind mirrors DRRIP's leader-set spacing: +1 = LRU leader,
// -1 = BIP leader, 0 = follower.
func (p *DIP) leaderKind(set int) int {
	switch set % drripLeaderPeriod {
	case 0:
		return +1
	case drripLeaderPeriod / 2:
		return -1
	}
	return 0
}

// Hit implements Policy: hits always promote to MRU (both constituents).
func (p *DIP) Hit(idx int, ctx AccessContext) { p.lru.Hit(idx, ctx) }

// Victim implements Policy: both constituents evict LRU.
func (p *DIP) Victim(candidates []int, ctx AccessContext) int {
	return p.lru.Victim(candidates, ctx)
}

// Fill implements Policy: leaders insert per their constituent and vote;
// followers insert per the winner. MRU insertion stamps the line newest;
// LRU insertion stamps it older than everything else in its set, so it is
// the next victim unless re-referenced first.
func (p *DIP) Fill(idx int, ctx AccessContext) {
	useBIP := false
	switch p.leaderKind(ctx.Set) {
	case +1: // LRU leader missed
		if p.psel < p.pselMax {
			p.psel++
		}
	case -1: // BIP leader missed
		if p.psel > 0 {
			p.psel--
		}
		useBIP = true
	default:
		useBIP = p.psel > p.pselMax/2
	}
	if useBIP {
		p.fillCnt++
		if p.fillCnt%bipEpsilonDenom == 0 {
			p.lru.Fill(idx, ctx) // occasional MRU insertion
		} else {
			p.insertAtLRU(idx, ctx.Set)
		}
	} else {
		p.lru.Fill(idx, ctx)
	}
}

// insertAtLRU stamps idx strictly older than every other line in its set.
func (p *DIP) insertAtLRU(idx, set int) {
	base := set * p.assoc
	minTS := ^uint64(0)
	for w := 0; w < p.assoc; w++ {
		li := base + w
		if li == idx {
			continue
		}
		if ts := p.lru.Timestamp(li); ts < minTS {
			minTS = ts
		}
	}
	if minTS == 0 {
		minTS = 1 // keep stamps non-negative; ties at 0 behave as oldest
	}
	p.lru.ts[idx] = minTS - 1
}

// Reset implements Policy.
func (p *DIP) Reset() {
	p.lru.Reset()
	p.fillCnt = 0
	p.psel = p.pselMax / 2
}

// PSEL exposes the policy-selection counter (tests).
func (p *DIP) PSEL() int32 { return p.psel }
