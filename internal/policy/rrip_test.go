package policy

import (
	"testing"
)

func TestSRRIPVictimPrefersDistant(t *testing.T) {
	p := NewSRRIP(1, 4, 0)
	cands := []int{0, 1, 2, 3}
	// Fresh cache: all at max RRPV → leftmost wins without aging.
	if v := p.Victim(cands, ctx(0)); v != 0 {
		t.Fatalf("victim = %d, want 0", v)
	}
	// Fill 0 (rrpv 2); 1..3 remain at 3: victim among 1..3.
	p.Fill(0, ctx(0))
	if v := p.Victim(cands, ctx(0)); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
}

func TestBRRIPOccasionalNearInsertion(t *testing.T) {
	p := NewBRRIP(1, 4, 0)
	near := 0
	for i := 0; i < 320; i++ {
		p.Fill(i%4, ctx(uint64(i)))
		if p.rrpv[i%4] == rripMax-1 {
			near++
		}
	}
	// Exactly every 32nd fill is near: 10 of 320.
	if near != 10 {
		t.Fatalf("near insertions = %d/320, want 10", near)
	}
}

func TestDRRIPLeaderSpacing(t *testing.T) {
	p := NewDRRIP(256, 4, 0, 1, false)
	var srripLeaders, brripLeaders int
	for set := 0; set < 256; set++ {
		switch p.leaderKind(set, 0) {
		case +1:
			srripLeaders++
		case -1:
			brripLeaders++
		}
	}
	// One leader of each kind per 32-set period.
	if srripLeaders != 8 || brripLeaders != 8 {
		t.Fatalf("leaders = %d/%d, want 8/8", srripLeaders, brripLeaders)
	}
}

func TestDRRIPFollowsSRRIPWhenBRRIPLoses(t *testing.T) {
	p := NewDRRIP(64, 4, 0, 1, false)
	// Misses only in BRRIP leader sets drive PSEL down → followers adopt
	// SRRIP insertion (rrpv = max−1 always).
	brripLeader := drripLeaderPeriod / 2
	for i := 0; i < 600; i++ {
		p.Fill(brripLeader*4+i%4, AccessContext{Set: brripLeader})
	}
	if p.PSEL(0) >= p.pselMax/2 {
		t.Fatalf("PSEL = %d, want below midpoint", p.PSEL(0))
	}
	follower := 1
	for i := 0; i < 64; i++ {
		idx := follower*4 + i%4
		p.Fill(idx, AccessContext{Set: follower})
		if p.rrpv[idx] != rripMax-1 {
			t.Fatalf("follower fill %d not SRRIP-style (rrpv=%d)", i, p.rrpv[idx])
		}
	}
}

func TestTADRRIPThreadFoldsIntoPSELRange(t *testing.T) {
	p := NewDRRIP(64, 4, 0, 2, true)
	// Thread ids beyond the PSEL count must fold, not panic.
	p.Fill(0, AccessContext{Set: 0, Thread: 7})
	p.Hit(0, AccessContext{Set: 0, Thread: 7})
	_ = p.PSEL(7)
}

func TestDRRIPReset(t *testing.T) {
	p := NewDRRIP(64, 4, 0, 2, true)
	for i := 0; i < 100; i++ {
		p.Fill(i%16, AccessContext{Set: 0, Thread: i % 2})
	}
	p.Reset()
	for t2 := 0; t2 < 2; t2++ {
		if p.PSEL(t2) != p.pselMax/2 {
			t.Fatalf("PSEL[%d] = %d after reset", t2, p.PSEL(t2))
		}
	}
	for i, v := range p.rrpv {
		if v != rripMax {
			t.Fatalf("rrpv[%d] = %d after reset", i, v)
		}
	}
}

func TestDIPNamesAndReset(t *testing.T) {
	p := NewDIP(64, 4, 0)
	if p.Name() != "DIP" {
		t.Fatal("name")
	}
	p.Fill(0, AccessContext{Set: 0})
	p.Reset()
	if p.PSEL() != 511 {
		t.Fatalf("PSEL after reset = %d", p.PSEL())
	}
}

func TestPDPRecomputeFromHistogram(t *testing.T) {
	// Drive enough reuse at a fixed distance that PDP's sampler observes
	// it and sets a protecting distance covering that distance.
	p := NewPDP(16, 16, 3)
	initial := p.PD()
	// Cyclic reuse over 512 addresses: reuse distance 512 lines.
	for i := 0; i < 3*pdpRecomputeEvery; i++ {
		addr := uint64(i % 512)
		p.observe(addr, int(addr)%16)
	}
	after := p.PD()
	if after == initial {
		t.Fatalf("PD never recomputed: still %g", after)
	}
	// 512-line reuse distance over 16 sets = 32 per-set accesses; the PD
	// must cover it (with the 1.1 safety factor).
	if after < 32 {
		t.Fatalf("PD = %g per-set accesses, want ≥ 32 to protect the working set", after)
	}
}

func TestPDPVictimAmongOldest(t *testing.T) {
	p := NewPDP(4, 4, 1)
	c := AccessContext{Addr: 5, Set: 0}
	p.Fill(0, c)
	// Age set 0 past protection.
	for i := 0; i < 100; i++ {
		p.observe(uint64(1000+i), 0)
	}
	p.Fill(1, c) // fresh: protected
	v := p.Victim([]int{0, 1}, c)
	if v != 0 {
		t.Fatalf("victim = %d, want the aged line 0", v)
	}
}
