package policy

import (
	"sync/atomic"

	"talus/internal/hash"
)

// AccessContext carries the side information some policies need: the line
// address being accessed (for PDP's reuse-distance sampler), the set (for
// set dueling and per-set aging), and the thread (logical partition)
// performing the access (for thread-aware dueling).
type AccessContext struct {
	Addr   uint64
	Set    int
	Thread int
}

// Policy is a replacement policy over a fixed geometry of sets×assoc lines.
type Policy interface {
	// Name identifies the policy in reports ("LRU", "DRRIP", ...).
	Name() string
	// Hit notifies that line idx was accessed and hit.
	Hit(idx int, ctx AccessContext)
	// Victim picks which of candidates (valid line indices) to evict, or
	// returns -1 to bypass the incoming line. candidates is never empty.
	Victim(candidates []int, ctx AccessContext) int
	// Fill notifies that line idx was just filled with a new line.
	Fill(idx int, ctx AccessContext)
	// Reset clears all replacement state (used when a cache is flushed).
	Reset()
}

// Factory constructs a policy for a cache with the given geometry.
// Policies needing randomness derive it deterministically from seed.
type Factory func(sets, assoc int, seed uint64) Policy

// ConcurrentHitter is implemented by policies whose Hit bookkeeping can
// safely run without the cache's shard lock, concurrently with other
// Hits and with Victim/Fill running under the lock. EnableSharedHits
// switches the policy into that mode (atomic stamp updates for LRU);
// it must be called before concurrent traffic starts and is one-way.
// Policies that cannot offer this (e.g. the stack-moving RRIP variants)
// simply don't implement the interface, and the cache keeps taking the
// shard lock for their hits.
type ConcurrentHitter interface {
	EnableSharedHits()
}

// --- LRU -------------------------------------------------------------

// LRU is the least-recently-used policy: a global logical clock stamps
// every touch, and the victim is the candidate with the oldest stamp.
// Stamps are globally comparable, so LRU ranks victims correctly within
// any partition's candidate subset.
//
// In shared-hits mode (EnableSharedHits) every clock and stamp
// operation is atomic, so Hit may run lock-free concurrently with
// locked Victim/Fill: a racing Victim sees each stamp either before or
// after its bump — at worst it evicts a line that became MRU during the
// race, which is a recency approximation, never a correctness issue.
type LRU struct {
	clock  uint64
	ts     []uint64
	shared bool
}

// NewLRU returns an LRU policy for sets×assoc lines.
func NewLRU(sets, assoc int, _ uint64) *LRU {
	return &LRU{ts: make([]uint64, sets*assoc)}
}

// LRUFactory adapts NewLRU to the Factory signature.
func LRUFactory(sets, assoc int, seed uint64) Policy { return NewLRU(sets, assoc, seed) }

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// EnableSharedHits implements ConcurrentHitter: all clock/stamp traffic
// becomes atomic so hits may bypass the shard lock.
func (p *LRU) EnableSharedHits() { p.shared = true }

// Hit implements Policy: touching a line makes it most-recently used.
func (p *LRU) Hit(idx int, _ AccessContext) {
	if p.shared {
		atomic.StoreUint64(&p.ts[idx], atomic.AddUint64(&p.clock, 1))
		return
	}
	p.clock++
	p.ts[idx] = p.clock
}

// Fill implements Policy: new lines are inserted at MRU.
func (p *LRU) Fill(idx int, _ AccessContext) {
	if p.shared {
		atomic.StoreUint64(&p.ts[idx], atomic.AddUint64(&p.clock, 1))
		return
	}
	p.clock++
	p.ts[idx] = p.clock
}

// Victim implements Policy: evict the least recently used candidate.
func (p *LRU) Victim(candidates []int, _ AccessContext) int {
	if p.shared {
		best := candidates[0]
		bestTS := atomic.LoadUint64(&p.ts[best])
		for _, idx := range candidates[1:] {
			if ts := atomic.LoadUint64(&p.ts[idx]); ts < bestTS {
				best, bestTS = idx, ts
			}
		}
		return best
	}
	best := candidates[0]
	bestTS := p.ts[best]
	for _, idx := range candidates[1:] {
		if p.ts[idx] < bestTS {
			best, bestTS = idx, p.ts[idx]
		}
	}
	return best
}

// Reset implements Policy.
func (p *LRU) Reset() {
	if p.shared {
		atomic.StoreUint64(&p.clock, 0)
		for i := range p.ts {
			atomic.StoreUint64(&p.ts[i], 0)
		}
		return
	}
	p.clock = 0
	for i := range p.ts {
		p.ts[i] = 0
	}
}

// Timestamp exposes a line's LRU stamp; the DIP insertion variants and
// tests use it.
func (p *LRU) Timestamp(idx int) uint64 {
	if p.shared {
		return atomic.LoadUint64(&p.ts[idx])
	}
	return p.ts[idx]
}

// --- Random ----------------------------------------------------------

// Random evicts a uniformly random candidate. It serves as a baseline and
// as a stress test for the partitioning machinery (Assumption 2 holds for
// random replacement too).
type Random struct {
	rng *hash.SplitMix64
}

// NewRandom returns a Random policy seeded deterministically.
func NewRandom(_, _ int, seed uint64) *Random {
	return &Random{rng: hash.NewSplitMix64(seed)}
}

// RandomFactory adapts NewRandom to the Factory signature.
func RandomFactory(sets, assoc int, seed uint64) Policy { return NewRandom(sets, assoc, seed) }

// Name implements Policy.
func (p *Random) Name() string { return "Random" }

// EnableSharedHits implements ConcurrentHitter: hits keep no state, so
// they are trivially safe without the shard lock.
func (p *Random) EnableSharedHits() {}

// Hit implements Policy (random replacement keeps no per-line state).
func (p *Random) Hit(int, AccessContext) {}

// Fill implements Policy.
func (p *Random) Fill(int, AccessContext) {}

// Victim implements Policy.
func (p *Random) Victim(candidates []int, _ AccessContext) int {
	return candidates[p.rng.Intn(len(candidates))]
}

// Reset implements Policy.
func (p *Random) Reset() {}
