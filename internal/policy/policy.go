package policy

import (
	"talus/internal/hash"
)

// AccessContext carries the side information some policies need: the line
// address being accessed (for PDP's reuse-distance sampler), the set (for
// set dueling and per-set aging), and the thread (logical partition)
// performing the access (for thread-aware dueling).
type AccessContext struct {
	Addr   uint64
	Set    int
	Thread int
}

// Policy is a replacement policy over a fixed geometry of sets×assoc lines.
type Policy interface {
	// Name identifies the policy in reports ("LRU", "DRRIP", ...).
	Name() string
	// Hit notifies that line idx was accessed and hit.
	Hit(idx int, ctx AccessContext)
	// Victim picks which of candidates (valid line indices) to evict, or
	// returns -1 to bypass the incoming line. candidates is never empty.
	Victim(candidates []int, ctx AccessContext) int
	// Fill notifies that line idx was just filled with a new line.
	Fill(idx int, ctx AccessContext)
	// Reset clears all replacement state (used when a cache is flushed).
	Reset()
}

// Factory constructs a policy for a cache with the given geometry.
// Policies needing randomness derive it deterministically from seed.
type Factory func(sets, assoc int, seed uint64) Policy

// --- LRU -------------------------------------------------------------

// LRU is the least-recently-used policy: a global logical clock stamps
// every touch, and the victim is the candidate with the oldest stamp.
// Stamps are globally comparable, so LRU ranks victims correctly within
// any partition's candidate subset.
type LRU struct {
	clock uint64
	ts    []uint64
}

// NewLRU returns an LRU policy for sets×assoc lines.
func NewLRU(sets, assoc int, _ uint64) *LRU {
	return &LRU{ts: make([]uint64, sets*assoc)}
}

// LRUFactory adapts NewLRU to the Factory signature.
func LRUFactory(sets, assoc int, seed uint64) Policy { return NewLRU(sets, assoc, seed) }

// Name implements Policy.
func (p *LRU) Name() string { return "LRU" }

// Hit implements Policy: touching a line makes it most-recently used.
func (p *LRU) Hit(idx int, _ AccessContext) {
	p.clock++
	p.ts[idx] = p.clock
}

// Fill implements Policy: new lines are inserted at MRU.
func (p *LRU) Fill(idx int, _ AccessContext) {
	p.clock++
	p.ts[idx] = p.clock
}

// Victim implements Policy: evict the least recently used candidate.
func (p *LRU) Victim(candidates []int, _ AccessContext) int {
	best := candidates[0]
	bestTS := p.ts[best]
	for _, idx := range candidates[1:] {
		if p.ts[idx] < bestTS {
			best, bestTS = idx, p.ts[idx]
		}
	}
	return best
}

// Reset implements Policy.
func (p *LRU) Reset() {
	p.clock = 0
	for i := range p.ts {
		p.ts[i] = 0
	}
}

// Timestamp exposes a line's LRU stamp; the DIP insertion variants and
// tests use it.
func (p *LRU) Timestamp(idx int) uint64 { return p.ts[idx] }

// --- Random ----------------------------------------------------------

// Random evicts a uniformly random candidate. It serves as a baseline and
// as a stress test for the partitioning machinery (Assumption 2 holds for
// random replacement too).
type Random struct {
	rng *hash.SplitMix64
}

// NewRandom returns a Random policy seeded deterministically.
func NewRandom(_, _ int, seed uint64) *Random {
	return &Random{rng: hash.NewSplitMix64(seed)}
}

// RandomFactory adapts NewRandom to the Factory signature.
func RandomFactory(sets, assoc int, seed uint64) Policy { return NewRandom(sets, assoc, seed) }

// Name implements Policy.
func (p *Random) Name() string { return "Random" }

// Hit implements Policy (random replacement keeps no per-line state).
func (p *Random) Hit(int, AccessContext) {}

// Fill implements Policy.
func (p *Random) Fill(int, AccessContext) {}

// Victim implements Policy.
func (p *Random) Victim(candidates []int, _ AccessContext) int {
	return candidates[p.rng.Intn(len(candidates))]
}

// Reset implements Policy.
func (p *Random) Reset() {}
