// Offline Belady MIN replacement (Belady 1966), used to validate
// Corollary 7: optimal cache replacement is convex. MIN requires future
// knowledge, so it is not a Policy; it runs over a recorded trace in two
// passes (next-use precomputation, then simulation).

package policy

import "container/heap"

// SimulateMIN returns the number of misses a fully-associative cache of
// the given capacity (in lines) incurs on trace under Belady's MIN policy,
// which always evicts the line whose next use is farthest in the future
// (never-reused lines first). capacity must be positive.
//
// A fully-associative model is exact for MIN and sidesteps set-mapping
// noise; Corollary 7's convexity claim is about capacity, which
// Assumption 2 says is the dominant factor.
func SimulateMIN(trace []uint64, capacity int) int {
	if capacity <= 0 {
		return len(trace)
	}
	// Pass 1: next-use index for every position (len(trace) = never).
	next := make([]int, len(trace))
	last := make(map[uint64]int, capacity*2)
	for i := len(trace) - 1; i >= 0; i-- {
		a := trace[i]
		if j, ok := last[a]; ok {
			next[i] = j
		} else {
			next[i] = len(trace)
		}
		last[a] = i
	}

	// Pass 2: simulate with a max-heap on next use, lazily invalidating
	// stale entries (a line's heap entry is stale once the line has been
	// re-accessed, because a fresher entry with a later key exists).
	h := &minHeap{}
	resident := make(map[uint64]int, capacity*2) // addr → its current nextUse
	misses := 0
	for i, a := range trace {
		if nu, ok := resident[a]; ok && nu == i {
			// Hit: refresh the line's next use.
			resident[a] = next[i]
			heap.Push(h, minEntry{a, next[i]})
			continue
		}
		misses++
		if len(resident) >= capacity {
			// Evict the line with the farthest valid next use.
			for {
				top := heap.Pop(h).(minEntry)
				if nu, ok := resident[top.addr]; ok && nu == top.nextUse {
					delete(resident, top.addr)
					break
				}
			}
		}
		resident[a] = next[i]
		heap.Push(h, minEntry{a, next[i]})
	}
	return misses
}

// minEntry is a (line, next use) pair in the MIN eviction heap.
type minEntry struct {
	addr    uint64
	nextUse int
}

// minHeap is a max-heap of minEntry ordered by nextUse.
type minHeap []minEntry

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return h[i].nextUse > h[j].nextUse }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(minEntry)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
