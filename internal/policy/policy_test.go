package policy

import (
	"testing"

	"talus/internal/hash"
)

// ctxFor builds an AccessContext for set 0.
func ctx(addr uint64) AccessContext { return AccessContext{Addr: addr, Set: 0} }

func TestLRUVictimOrder(t *testing.T) {
	p := NewLRU(1, 4, 0)
	cands := []int{0, 1, 2, 3}
	for i := 0; i < 4; i++ {
		p.Fill(i, ctx(uint64(i)))
	}
	// Touch 0 and 2; oldest is now 1.
	p.Hit(0, ctx(0))
	p.Hit(2, ctx(2))
	if v := p.Victim(cands, ctx(9)); v != 1 {
		t.Fatalf("victim = %d, want 1", v)
	}
	p.Hit(1, ctx(1))
	if v := p.Victim(cands, ctx(9)); v != 3 {
		t.Fatalf("victim = %d, want 3", v)
	}
}

func TestLRUVictimSubset(t *testing.T) {
	// Partitioning hands LRU arbitrary candidate subsets; stamps must
	// rank correctly within any subset.
	p := NewLRU(1, 4, 0)
	for i := 0; i < 4; i++ {
		p.Fill(i, ctx(uint64(i)))
	}
	if v := p.Victim([]int{2, 3}, ctx(9)); v != 2 {
		t.Fatalf("subset victim = %d, want 2", v)
	}
}

func TestLRUReset(t *testing.T) {
	p := NewLRU(1, 2, 0)
	p.Fill(0, ctx(0))
	p.Fill(1, ctx(1))
	p.Reset()
	if p.Timestamp(0) != 0 || p.Timestamp(1) != 0 {
		t.Fatal("Reset must clear stamps")
	}
}

func TestRandomVictimInCandidates(t *testing.T) {
	p := NewRandom(1, 8, 42)
	cands := []int{3, 5, 7}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		v := p.Victim(cands, ctx(0))
		if v != 3 && v != 5 && v != 7 {
			t.Fatalf("victim %d not a candidate", v)
		}
		seen[v] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random victim never chose all candidates: %v", seen)
	}
}

func TestSRRIPInsertionAndPromotion(t *testing.T) {
	p := NewSRRIP(1, 4, 0)
	p.Fill(0, ctx(0))
	if p.rrpv[0] != rripMax-1 {
		t.Fatalf("fill rrpv = %d, want %d", p.rrpv[0], rripMax-1)
	}
	p.Hit(0, ctx(0))
	if p.rrpv[0] != 0 {
		t.Fatalf("hit rrpv = %d, want 0", p.rrpv[0])
	}
}

func TestSRRIPVictimAging(t *testing.T) {
	p := NewSRRIP(1, 4, 0)
	cands := []int{0, 1, 2, 3}
	for i := 0; i < 4; i++ {
		p.Fill(i, ctx(uint64(i)))
	}
	p.Hit(1, ctx(1)) // rrpv 0
	// All at rrpv 2 except idx1 at 0. Victim must age everyone to find a 3.
	v := p.Victim(cands, ctx(9))
	if v == 1 {
		t.Fatal("promoted line evicted before distant lines")
	}
	if p.rrpv[1] != 1 {
		t.Fatalf("aging should raise promoted line to 1, got %d", p.rrpv[1])
	}
}

func TestBRRIPMostlyDistant(t *testing.T) {
	p := NewBRRIP(1, 64, 0)
	distant := 0
	for i := 0; i < 64; i++ {
		p.Fill(i, ctx(uint64(i)))
		if p.rrpv[i] == rripMax {
			distant++
		}
	}
	// ε = 1/32: exactly 2 of 64 fills are near.
	if distant != 62 {
		t.Fatalf("distant fills = %d/64, want 62", distant)
	}
}

func TestDRRIPFollowsWinner(t *testing.T) {
	// Feed misses only to SRRIP leader sets: PSEL rises, followers adopt
	// BRRIP insertion (distant).
	sets := 64
	p := NewDRRIP(sets, 4, 0, 1, false)
	srripLeader := 0           // set 0: leader for SRRIP
	follower := 1              // set 1: follower
	for i := 0; i < 600; i++ { // drive PSEL up
		p.Fill(i%4, AccessContext{Set: srripLeader})
	}
	if p.PSEL(0) <= p.pselMax/2 {
		t.Fatalf("PSEL = %d, expected above midpoint", p.PSEL(0))
	}
	// Follower fills should now be BRRIP-style (mostly distant).
	distant := 0
	for i := 0; i < 64; i++ {
		idx := follower*4 + i%4
		p.Fill(idx, AccessContext{Set: follower})
		if p.rrpv[idx] == rripMax {
			distant++
		}
	}
	if distant < 55 {
		t.Fatalf("follower fills distant %d/64; expected BRRIP behaviour", distant)
	}
}

func TestTADRRIPIndependentPSEL(t *testing.T) {
	p := NewDRRIP(64, 4, 0, 2, true)
	if p.Name() != "TA-DRRIP" {
		t.Fatalf("name = %s", p.Name())
	}
	// Thread 0 misses in its SRRIP leader sets; thread 1 in its BRRIP
	// leader sets. PSELs must move independently (and oppositely).
	for set := 0; set < 64; set++ {
		for i := 0; i < 20; i++ {
			if p.leaderKind(set, 0) == +1 {
				p.Fill(set*4, AccessContext{Set: set, Thread: 0})
			}
			if p.leaderKind(set, 1) == -1 {
				p.Fill(set*4+1, AccessContext{Set: set, Thread: 1})
			}
		}
	}
	if !(p.PSEL(0) > p.pselMax/2) {
		t.Errorf("thread 0 PSEL = %d, want above midpoint", p.PSEL(0))
	}
	if !(p.PSEL(1) < p.pselMax/2) {
		t.Errorf("thread 1 PSEL = %d, want below midpoint", p.PSEL(1))
	}
}

func TestDIPBIPWinsOnThrash(t *testing.T) {
	// Under a thrashing pattern, BIP leaders miss less... we can only
	// check the PSEL mechanics here: misses in LRU leader sets push PSEL
	// up, flipping followers to BIP (LRU-position inserts).
	p := NewDIP(64, 4, 0)
	for i := 0; i < 600; i++ {
		p.Fill(i%4, AccessContext{Set: 0}) // set 0 = LRU leader
	}
	if p.PSEL() <= 511 {
		t.Fatalf("PSEL = %d, want > 511", p.PSEL())
	}
	// Follower fills should insert at the LRU position — the freshly
	// filled way stays the victim — except for the ε (1/32) MRU inserts.
	base := 1 * 4 // set 1 lines
	cands := []int{base, base + 1, base + 2, base + 3}
	for w := 0; w < 4; w++ {
		p.lru.Fill(base+w, AccessContext{Set: 1})
	}
	lruInserts := 0
	for i := 0; i < 31; i++ {
		p.Fill(base, AccessContext{Set: 1})
		if p.Victim(cands, AccessContext{Set: 1}) == base {
			lruInserts++
		}
	}
	if lruInserts < 29 {
		t.Fatalf("BIP inserted at MRU too often: %d/31 LRU-position inserts", lruInserts)
	}
}

func TestPDPProtectsAndBypasses(t *testing.T) {
	p := NewPDP(4, 4, 1)
	cands := []int{0, 1, 2, 3}
	c := AccessContext{Addr: 100, Set: 0}
	// Fill the set; all lines freshly protected.
	for i := 0; i < 4; i++ {
		p.Fill(i, c)
	}
	// Immediately after filling, every line is protected: bypass.
	if v := p.Victim(cands, c); v != -1 {
		t.Fatalf("victim = %d, want bypass (-1)", v)
	}
	// Age the set well past the protecting distance: victims appear.
	for i := 0; i < 1000; i++ {
		p.observe(uint64(i+500), 0)
	}
	if v := p.Victim(cands, c); v == -1 {
		t.Fatal("expected an unprotected victim after aging")
	}
}

func TestPDPName(t *testing.T) {
	if NewPDP(2, 2, 0).Name() != "PDP" {
		t.Fatal("bad name")
	}
}

func TestPoliciesResetClean(t *testing.T) {
	seeds := hash.NewSplitMix64(1)
	pols := []Policy{
		NewLRU(4, 4, seeds.Next()),
		NewRandom(4, 4, seeds.Next()),
		NewSRRIP(4, 4, seeds.Next()),
		NewBRRIP(4, 4, seeds.Next()),
		NewDRRIP(64, 4, seeds.Next(), 2, true),
		NewDIP(64, 4, seeds.Next()),
		NewPDP(4, 4, seeds.Next()),
	}
	for _, p := range pols {
		for i := 0; i < 8; i++ {
			p.Fill(i%16, AccessContext{Addr: uint64(i), Set: i % 4})
			p.Hit(i%16, AccessContext{Addr: uint64(i), Set: i % 4})
		}
		p.Reset()
		// After reset, a fresh victim choice must still work.
		if v := p.Victim([]int{0, 1, 2, 3}, AccessContext{Addr: 77, Set: 0}); v < -1 || v > 3 {
			t.Fatalf("%s: victim %d invalid after reset", p.Name(), v)
		}
	}
}
