// PDP: Protecting Distance based Policy (Duong et al., MICRO 2012).
//
// PDP protects each line for a *protecting distance* (PD) after insertion
// or promotion: while protected, a line cannot be evicted; if every
// candidate in a set is protected, the incoming line bypasses the cache.
// The PD is recomputed periodically from the measured reuse-distance
// distribution to maximize hits per unit of cache space-time. The paper
// (§V-C) observes PDP "comes close to our description of optimal
// bypassing" — protecting a fraction of the working set and streaming the
// rest — which is why Talus matches or beats it wherever the miss curve's
// convex hull beats optimal bypassing.
//
// This implementation measures reuse distances with a hash-sampled LRU
// stack (Theorem 4 in reverse: a 1/R-sampled stack distance of d models a
// full-stream distance of d·R) and maximizes the PDP objective
//
//	E(dp) = Σ_{d ≤ dp} N(d)  /  ( Σ_{d ≤ dp} N(d)·d + (A − Σ_{d ≤ dp} N(d))·dp )
//
// over bucket boundaries of the sampled histogram, where N is the reuse
// distance histogram and A the total sampled accesses. Protection is
// enforced with per-set access clocks: a line is protected while its age
// (accesses to its set since last touch) is below PD/numSets.

package policy

import (
	"talus/internal/hash"
)

// pdpStackCap bounds the sampled LRU stack. With sampling rate 1/R the
// stack models R·pdpStackCap lines of reach, and R is chosen so that reach
// covers 4× the cache (as the paper's extended monitors do).
const pdpStackCap = 2048

// pdpRecomputeEvery is how many cache accesses elapse between PD
// recomputations (the PDP paper recomputes on intervals of ~512K accesses;
// we recompute faster so short simulations still adapt).
const pdpRecomputeEvery = 131072

// pdpDecay halves the histogram at each recomputation so PD tracks phase
// changes without forgetting instantly.
const pdpDecay = 2

// PDP implements the protecting-distance policy.
type PDP struct {
	sets     int
	assoc    int
	setClock []uint64 // accesses observed per set
	touch    []uint64 // per line: owning set's clock at last touch
	pdPerSet float64  // protecting distance in per-set accesses

	// Reuse-distance sampler state.
	h           *hash.H3
	sampleShift uint   // sample an address iff hash(addr) has this many low zero bits
	rateR       uint64 // 1<<sampleShift: each sampled line stands for R lines
	stack       []uint64
	hist        []uint64 // hist[i] = sampled reuses at stack distance i
	coldMisses  uint64   // sampled accesses that missed the stack entirely
	accesses    uint64
}

// NewPDP returns a PDP policy for sets×assoc lines.
func NewPDP(sets, assoc int, seed uint64) *PDP {
	capacity := uint64(sets * assoc)
	// Choose the sampling rate so the stack's reach is ≥ 4× capacity.
	shift := uint(6) // at least 1/64
	for (uint64(pdpStackCap) << shift) < 4*capacity {
		shift++
	}
	p := &PDP{
		sets:        sets,
		assoc:       assoc,
		setClock:    make([]uint64, sets),
		touch:       make([]uint64, sets*assoc),
		h:           hash.NewH3(seed^0x9D70, 64),
		sampleShift: shift,
		rateR:       1 << shift,
		stack:       make([]uint64, 0, pdpStackCap),
		hist:        make([]uint64, pdpStackCap),
	}
	p.Reset()
	return p
}

// PDPFactory adapts NewPDP to the Factory signature.
func PDPFactory(sets, assoc int, seed uint64) Policy { return NewPDP(sets, assoc, seed) }

// Name implements Policy.
func (p *PDP) Name() string { return "PDP" }

// observe feeds the reuse-distance sampler and the recomputation timer.
func (p *PDP) observe(addr uint64, set int) {
	p.setClock[set]++
	p.accesses++
	if p.accesses%pdpRecomputeEvery == 0 {
		p.recomputePD()
	}
	if p.h.Hash(addr)&(p.rateR-1) != 0 {
		return
	}
	// Move-to-front scan of the sampled stack; the index found is the
	// sampled stack distance.
	for i, a := range p.stack {
		if a == addr {
			p.hist[i]++
			copy(p.stack[1:i+1], p.stack[:i])
			p.stack[0] = addr
			return
		}
	}
	p.coldMisses++
	if len(p.stack) < cap(p.stack) {
		p.stack = append(p.stack, 0)
	}
	copy(p.stack[1:], p.stack)
	p.stack[0] = addr
}

// recomputePD maximizes the PDP objective over histogram bucket
// boundaries and converts the winning sampled distance to per-set
// accesses.
func (p *PDP) recomputePD() {
	var totalReuses uint64
	for _, n := range p.hist {
		totalReuses += n
	}
	a := totalReuses + p.coldMisses
	if a == 0 {
		return
	}
	var bestE float64
	bestDP := -1
	var hits uint64    // Σ N(d) for d ≤ dp
	var spaceT float64 // Σ N(d)·d for d ≤ dp
	for d, n := range p.hist {
		hits += n
		spaceT += float64(n) * float64(d+1)
		dp := float64(d + 1)
		denom := spaceT + float64(a-hits)*dp
		if denom <= 0 {
			continue
		}
		e := float64(hits) / denom
		if e > bestE {
			bestE = e
			bestDP = d + 1
		}
	}
	if bestDP < 0 {
		return
	}
	// Sampled distance → full-stream lines → per-set accesses, with a 10%
	// safety factor so reuses landing exactly at the distance stay
	// protected.
	pdLines := float64(bestDP) * float64(p.rateR) * 1.1
	p.pdPerSet = pdLines / float64(p.sets)
	if min := float64(p.assoc); p.pdPerSet < min {
		p.pdPerSet = min
	}
	for i := range p.hist {
		p.hist[i] /= pdpDecay
	}
	p.coldMisses /= pdpDecay
}

// protected reports whether line idx (in set) is still within its
// protecting window.
func (p *PDP) protected(idx, set int) bool {
	return float64(p.setClock[set]-p.touch[idx]) < p.pdPerSet
}

// Hit implements Policy: hits renew protection.
func (p *PDP) Hit(idx int, ctx AccessContext) {
	p.observe(ctx.Addr, ctx.Set)
	p.touch[idx] = p.setClock[ctx.Set]
}

// Victim implements Policy: evict the oldest unprotected candidate, or
// bypass when every candidate is protected.
func (p *PDP) Victim(candidates []int, ctx AccessContext) int {
	p.observe(ctx.Addr, ctx.Set)
	best := -1
	var bestAge uint64
	clk := p.setClock[ctx.Set]
	for _, idx := range candidates {
		age := clk - p.touch[idx]
		if float64(age) >= p.pdPerSet && age >= bestAge {
			best, bestAge = idx, age
		}
	}
	return best // -1 = all protected = bypass
}

// Fill implements Policy: new lines start protected.
func (p *PDP) Fill(idx int, ctx AccessContext) {
	p.touch[idx] = p.setClock[ctx.Set]
}

// Reset implements Policy.
func (p *PDP) Reset() {
	for i := range p.setClock {
		p.setClock[i] = 0
	}
	for i := range p.touch {
		p.touch[i] = 0
	}
	p.stack = p.stack[:0]
	for i := range p.hist {
		p.hist[i] = 0
	}
	p.coldMisses = 0
	p.accesses = 0
	// Until the sampler has data, protect for one full traversal of the
	// set (age < assoc), which behaves close to LRU.
	p.pdPerSet = float64(p.assoc)
}

// PD exposes the current protecting distance in per-set accesses (tests).
func (p *PDP) PD() float64 { return p.pdPerSet }
