package oracle

import (
	"testing"

	"talus/internal/hash"
	"talus/internal/workload"
)

func TestStackSimHandComputed(t *testing.T) {
	s := NewStackSim()
	// Stream: A B A C B A. Reuse distances: A→1 (B), B→2 (A,C), A→2 (C,B).
	for _, a := range []uint64{1, 2, 1, 3, 2, 1} {
		s.Access(a)
	}
	if s.Accesses() != 6 || s.Distinct() != 3 {
		t.Fatalf("accesses %d distinct %d, want 6 and 3", s.Accesses(), s.Distinct())
	}
	want := map[int64]int64{
		1: 6, // size 1: nothing hits (no distance-0 reuses)
		2: 5, // size 2: the distance-1 reuse hits
		3: 3, // size 3: all three reuses hit
		4: 3,
	}
	for size, misses := range want {
		if got := s.Misses(size); got != misses {
			t.Fatalf("Misses(%d) = %d, want %d", size, got, misses)
		}
	}
	if s.MaxDistance() != 3 {
		t.Fatalf("MaxDistance %d, want 3", s.MaxDistance())
	}
}

// naiveLRU counts misses of a size-limited true-LRU cache over a stream.
func naiveLRU(stream []uint64, size int) int64 {
	type node struct{ prev, next int }
	var order []uint64
	var misses int64
	for _, a := range stream {
		hit := -1
		for i, x := range order {
			if x == a {
				hit = i
				break
			}
		}
		if hit >= 0 {
			order = append(order[:hit], order[hit+1:]...)
		} else {
			misses++
			if len(order) == size {
				order = order[:len(order)-1]
			}
		}
		order = append([]uint64{a}, order...)
	}
	return misses
}

func TestStackSimMatchesNaiveLRU(t *testing.T) {
	// Random streams over a small space: the stack simulator's per-size
	// miss counts must equal a direct LRU simulation at every size.
	rng := hash.NewSplitMix64(99)
	for trial := 0; trial < 4; trial++ {
		n := 2000 + int(rng.Uint64n(2000))
		space := 20 + int(rng.Uint64n(60))
		stream := make([]uint64, n)
		for i := range stream {
			stream[i] = rng.Uint64n(uint64(space))
		}
		s := NewStackSim()
		for _, a := range stream {
			s.Access(a)
		}
		for _, size := range []int{1, 2, 3, 5, 8, 13, 21, 34, 55, 89} {
			want := naiveLRU(stream, size)
			if got := s.Misses(int64(size)); got != want {
				t.Fatalf("trial %d (space %d): Misses(%d) = %d, naive LRU says %d",
					trial, space, size, got, want)
			}
		}
	}
}

func TestStackSimCompaction(t *testing.T) {
	// A long scan over a small footprint dominates slots with dead
	// entries, forcing many compactions; the curve must stay exact.
	const foot = 100
	const laps = 500
	s := NewStackSim()
	for i := 0; i < foot*laps; i++ {
		s.Access(uint64(i % foot))
	}
	if s.Distinct() != foot {
		t.Fatalf("distinct %d, want %d", s.Distinct(), foot)
	}
	// Every reuse is at distance foot−1.
	if got := s.Misses(foot - 1); got != foot*laps {
		t.Fatalf("Misses(%d) = %d, want all %d", foot-1, got, foot*laps)
	}
	if got := s.Misses(foot); got != foot {
		t.Fatalf("Misses(%d) = %d, want %d cold only", foot, got, foot)
	}
}

func TestStackSimCurveUnits(t *testing.T) {
	s := FromPattern(&workload.Scan{Lines: 64}, 6400, 1)
	c, err := s.Curve([]int64{32, 63, 64, 128}, 6400.0/1000)
	if err != nil {
		t.Fatal(err)
	}
	// Below the footprint: all 6400 accesses miss → 1000 per kilo-access.
	if got := c.Eval(32); got != 1000 {
		t.Fatalf("Eval(32) = %g, want 1000", got)
	}
	// At the footprint: only the 64 cold misses → 10 per kilo-access.
	if got := c.Eval(64); got != 10 {
		t.Fatalf("Eval(64) = %g, want 10", got)
	}
	if !c.IsNonIncreasing() {
		t.Fatal("stack-distance curve must be non-increasing")
	}
	if _, err := s.Curve(nil, 0); err == nil {
		t.Fatal("kiloUnits 0 accepted")
	}
	if _, err := NewStackSim().Curve([]int64{1}, 1); err == nil {
		t.Fatal("empty simulator produced a curve")
	}
}
