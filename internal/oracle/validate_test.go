// End-to-end validation of the measured monitor → hull → Talus stack
// against the exact oracle — the first tests in the repo where the
// reference is computed independently of the machinery under test.

package oracle

import (
	"testing"

	"talus/internal/core"
	"talus/internal/curve"
	"talus/internal/hull"
	"talus/internal/sim"
	"talus/internal/workload"
)

// validationLLC is the cache size the validation suite runs against:
// small enough that 8 scenarios × ~1.5M accesses stay fast, large
// enough that the monitor bank runs at its production sampling rates
// (all three arrays shed to rate 0.25 at this size, same as at 8 MB).
const validationLLC = 4096

func validationAccesses(t *testing.T) int64 {
	if testing.Short() {
		return 384 * 1024
	}
	return 1536 * 1024
}

// monitorDistanceBound is the stated sampling-error bound: the
// normalized L1 gap (curve.Distance) between a monitor-measured curve
// and the exact oracle curve, which integrates the monitor's two real
// error sources — sampling noise (≤64-set arrays at rate ≤ 0.25) and
// cliff smear (way granularity plus set-level Poisson jitter moves a
// measured cliff by up to ±25% of its position, the same tolerance the
// monitor round-trip tests assert) — without letting either fail the
// test pointwise. Empirically the suite sits at 0.02–0.14 (cliff-heavy
// scenarios at the top, smooth ones near the bottom); 0.20 is headroom
// for seed variance, not slack for regressions — a mis-assembled curve
// or broken generator lands far above it.
const monitorDistanceBound = 0.20

// monitorRatioBound bounds the worst absolute miss-ratio error outside
// the ±25% cliff bands and the size-0 extrapolation point (see
// Comparison.MaxRatioErr). Empirically ≤ 0.09 (zipf's steep head at
// single-way granularity); 0.12 adds seed-variance headroom.
const monitorRatioBound = 0.12

// TestMonitorMatchesOracle is the acceptance property: for every
// generator, the monitor-measured miss curve matches the exact oracle
// within the stated sampling-error bound.
func TestMonitorMatchesOracle(t *testing.T) {
	n := validationAccesses(t)
	for _, sc := range Scenarios(validationLLC, n) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			cmp, monCurve, oraCurve, err := CompareMonitor(sc, validationLLC, 0xBEEF)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: distance %.4f, max ratio err %.4f (rates %v)",
				sc.Name, cmp.Distance, cmp.MaxRatioErr, cmp.Rates)
			if cmp.Distance > monitorDistanceBound {
				t.Errorf("distance %.4f > %.2f\nmonitor: %v\noracle:  %v",
					cmp.Distance, monitorDistanceBound, monCurve, oraCurve)
			}
			if cmp.MaxRatioErr > monitorRatioBound {
				t.Errorf("max ratio err %.4f > %.2f\nmonitor: %v\noracle:  %v",
					cmp.MaxRatioErr, monitorRatioBound, monCurve, oraCurve)
			}
		})
	}
}

// TestHullIsLowerConvexEnvelope checks, on exact oracle curves, that
// hull.Lower produces a true lower convex envelope: convex, nowhere
// above the curve, anchored at the curve's endpoints, through a subset
// of the curve's points, and maximal (every curve point on or above it).
func TestHullIsLowerConvexEnvelope(t *testing.T) {
	n := validationAccesses(t)
	for _, sc := range Scenarios(validationLLC, n) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			s := FromPattern(sc.Pattern, sc.Accesses, 0x41C)
			c, err := s.Curve(Grid(4*validationLLC, 128), float64(sc.Accesses)/1000)
			if err != nil {
				t.Fatal(err)
			}
			h := hull.Lower(c)
			if !h.IsConvex(1e-9) {
				t.Fatalf("hull is not convex: %v", h)
			}
			cPts, hPts := c.Points(), h.Points()
			if hPts[0] != cPts[0] || hPts[len(hPts)-1] != cPts[len(cPts)-1] {
				t.Fatalf("hull endpoints %v, %v differ from curve endpoints %v, %v",
					hPts[0], hPts[len(hPts)-1], cPts[0], cPts[len(cPts)-1])
			}
			onCurve := map[curve.Point]bool{}
			for _, p := range cPts {
				onCurve[p] = true
			}
			for _, p := range hPts {
				if !onCurve[p] {
					t.Fatalf("hull vertex %v is not a curve point", p)
				}
			}
			// Lower envelope: h ≤ c at every curve point (and so, both
			// being piecewise-linear on nested vertex sets, everywhere).
			for _, p := range cPts {
				if hv := h.Eval(p.Size); hv > p.MPKI+1e-9 {
					t.Fatalf("hull above curve at size %g: %g > %g", p.Size, hv, p.MPKI)
				}
			}
		})
	}
}

// TestTalusRecombinesToOracle verifies Eq. 5 on exact curves: the Talus
// configuration computed for a target size s must satisfy
// ρ·m(α) + (1−ρ)·m(β) = hull(s), and the two shadow partitions'
// Theorem-4-scaled curves must recombine to exactly that value.
func TestTalusRecombinesToOracle(t *testing.T) {
	n := validationAccesses(t)
	for _, sc := range Scenarios(validationLLC, n) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			s := FromPattern(sc.Pattern, sc.Accesses, 0x7A15)
			m, err := s.Curve(Grid(4*validationLLC, 128), float64(sc.Accesses)/1000)
			if err != nil {
				t.Fatal(err)
			}
			h := hull.Lower(m)
			checked := 0
			for _, frac := range []float64{0.2, 0.35, 0.5, 0.65, 0.8, 0.95} {
				target := frac * m.MaxSize()
				cfg, err := core.Configure(m, target, 0)
				if err != nil {
					t.Fatal(err)
				}
				hullVal := h.Eval(target)
				if cfg.Degenerate {
					// Degenerate configs run a single partition at the raw
					// curve's miss rate — legal only where the hull buys
					// less than Configure's documented flat-gain window.
					if cfg.PredictedMPKI < hullVal-1e-6*(1+hullVal) {
						t.Fatalf("size %.0f: degenerate PredictedMPKI %g below hull %g", target, cfg.PredictedMPKI, hullVal)
					}
					if cfg.PredictedMPKI-hullVal > 0.02*cfg.PredictedMPKI+0.01 {
						t.Fatalf("size %.0f: degenerate PredictedMPKI %g exceeds flat-gain window above hull %g",
							target, cfg.PredictedMPKI, hullVal)
					}
					continue
				}
				if abs(cfg.PredictedMPKI-hullVal) > 1e-6*(1+hullVal) {
					t.Fatalf("size %.0f: PredictedMPKI %g != hull %g", target, cfg.PredictedMPKI, hullVal)
				}
				checked++
				// Eq. 5 from the raw anchors.
				recombined := cfg.RhoIdeal*m.Eval(cfg.Alpha) + (1-cfg.RhoIdeal)*m.Eval(cfg.Beta)
				if abs(recombined-hullVal) > 1e-6*(1+hullVal) {
					t.Fatalf("size %.0f: ρ·m(α)+(1−ρ)·m(β) = %g, hull = %g", target, recombined, hullVal)
				}
				// The same identity through Theorem 4's curve transform:
				// the α shadow partition of size S1 = ρ·α sees the ρ-scaled
				// curve, the β partition of size S2 = (1−ρ)·β the
				// (1−ρ)-scaled one; their miss rates sum to the hull.
				ca, err := m.Scale(cfg.RhoIdeal)
				if err != nil {
					t.Fatal(err)
				}
				cb, err := m.Scale(1 - cfg.RhoIdeal)
				if err != nil {
					t.Fatal(err)
				}
				sum := ca.Eval(cfg.S1) + cb.Eval(cfg.S2)
				if abs(sum-hullVal) > 1e-6*(1+hullVal) {
					t.Fatalf("size %.0f: scaled shadow curves recombine to %g, hull = %g", target, sum, hullVal)
				}
			}
			if checked == 0 {
				t.Logf("%s: hull is the curve (already convex); nothing to interpolate", sc.Name)
			}
		})
	}
}

// TestTalusRemovesOracleCliff is the empirical end of the recombination
// property: a simulated Talus cache driven by the *oracle's* exact
// curve (CurveOverride bypasses the monitor) must realize the hull's
// miss rate at the cliffseeker's attacked size — where plain LRU sits
// on the cliff plateau.
func TestTalusRemovesOracleCliff(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated Talus point runs are not short")
	}
	const llc = validationLLC
	seeker, err := workload.NewCliffSeeker(llc)
	if err != nil {
		t.Fatal(err)
	}
	spec := workload.Spec{
		Name: "cliffseeker-oracle", APKI: 25, CPIBase: 0.55, MLP: 2,
		Build: func() workload.Pattern { return seeker.Clone() },
	}
	const accesses = 1 << 21
	s := FromPattern(seeker, accesses, 0xFACE)
	oracleCurve, err := s.Curve(Grid(2*seeker.Knee, 256), float64(accesses)/1000)
	if err != nil {
		t.Fatal(err)
	}
	cfg := sim.SweepConfig{
		App:             spec,
		Scheme:          "ideal",
		Talus:           true,
		Margin:          -1, // exact ρ: the margin would deliberately overshoot
		CurveOverride:   oracleCurve,
		WarmupAccesses:  1 << 20,
		MeasureAccesses: 1 << 21,
		Seed:            42,
	}
	talusMPKI, err := sim.RunPoint(cfg, llc, 42)
	if err != nil {
		t.Fatal(err)
	}
	lruCfg := cfg
	lruCfg.Talus = false
	lruCfg.Scheme = "none"
	lruMPKI, err := sim.RunPoint(lruCfg, llc, 42)
	if err != nil {
		t.Fatal(err)
	}
	// Convert MPKI (per kilo-instruction at APKI 25) to miss ratios.
	talusRatio := talusMPKI / spec.APKI
	lruRatio := lruMPKI / spec.APKI
	hullRatio := hull.Lower(oracleCurve).Eval(float64(llc)) / 1000
	rawRatio := oracleCurve.Eval(float64(llc)) / 1000
	t.Logf("at %d lines: LRU %.3f (oracle says %.3f), Talus %.3f, hull promises %.3f",
		llc, lruRatio, rawRatio, talusRatio, hullRatio)
	// The oracle must agree with the measured plain-LRU cache...
	if abs(lruRatio-rawRatio) > 0.05 {
		t.Fatalf("oracle curve (%.3f) disagrees with measured LRU (%.3f) at the target", rawRatio, lruRatio)
	}
	// ...the cliff must be real...
	if lruRatio < hullRatio+0.2 {
		t.Fatalf("no cliff to remove: LRU %.3f, hull %.3f", lruRatio, hullRatio)
	}
	// ...and Talus must deliver (close to) the hull, far below the cliff.
	if talusRatio > hullRatio+0.1 {
		t.Fatalf("Talus %.3f missed the hull's promise %.3f", talusRatio, hullRatio)
	}
	if lruRatio-talusRatio < 0.2 {
		t.Fatalf("Talus %.3f did not remove the cliff (LRU %.3f)", talusRatio, lruRatio)
	}
}
