package oracle

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"talus/internal/curve"
)

var updateGolden = flag.Bool("update", false, "rewrite golden oracle curves under testdata/golden")

// goldenAccesses is deliberately small and independent of -short: golden
// curves must be identical on every run.
const goldenAccesses = 64 * 1024

// TestGoldenOracleCurves pins the exact oracle curve of every generator
// scenario to a committed file. The stack simulator is deterministic, so
// any diff here means a generator's access stream or the simulator
// itself changed behavior — which must be a conscious decision
// (regenerate with `go test ./internal/oracle -run Golden -update`).
// JSON float64 encoding round-trips exactly (Go emits the shortest
// representation that parses back to the same bits), so the comparison
// is bit-exact, not tolerance-based.
func TestGoldenOracleCurves(t *testing.T) {
	for _, sc := range Scenarios(validationLLC, goldenAccesses) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			s := FromPattern(sc.Pattern, sc.Accesses, 0x601D)
			c, err := s.Curve(Grid(4*validationLLC, 64), float64(sc.Accesses)/1000)
			if err != nil {
				t.Fatal(err)
			}
			got := c.Points()
			path := filepath.Join("testdata", "golden", sc.Name+".json")
			if *updateGolden {
				blob, err := json.MarshalIndent(got, "", "\t")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create)", err)
			}
			var want []curve.Point
			if err := json.Unmarshal(blob, &want); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("curve has %d points, golden has %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("point %d: got %v, golden %v", i, got[i], want[i])
				}
			}
		})
	}
}
