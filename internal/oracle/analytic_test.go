package oracle

import (
	"testing"

	"talus/internal/curve"
	"talus/internal/workload"
)

// TestAnalyticMatchesStackSim is the oracle's self-check: the
// closed-form curves and the exact stack simulator are independent
// derivations of the same ground truth, so before either validates the
// monitor they must agree with each other. The stack sim's cold
// (first-touch) misses are excluded via SteadyCurve so both sides model
// the same steady state. Deterministic rings must agree almost exactly
// (Distance ≤ 1%); the IRM formulas are approximations — Che's zipf
// treatment carries a known ~1% absolute error — so they are bounded on
// the worst absolute miss-ratio gap instead, where the normalized
// Distance would amplify tiny gaps in near-zero tail regions.
func TestAnalyticMatchesStackSim(t *testing.T) {
	const n = 1 << 20
	cases := []struct {
		name     string
		pattern  workload.Pattern
		distTol  float64 // curve.Distance bound; 0 = skip
		ratioTol float64 // max |Δ miss ratio| bound
	}{
		{"scan", &workload.Scan{Lines: 3000}, 0.01, 0.01},
		{"strided", &workload.Strided{Lines: 8192, Stride: 4}, 0.01, 0.01},
		{"strided-coprime", &workload.Strided{Lines: 5000, Stride: 3}, 0.01, 0.01},
		{"pointerchase", workload.NewPointerChase(2048, 7), 0.01, 0.01},
		{"rand", &workload.Rand{Lines: 4096}, 0.03, 0.01},
		{"zipf", workload.NewZipf(1<<14, 0.9), 0, 0.02},
		{"zipf-steep", workload.NewZipf(1<<14, 1.2), 0, 0.02},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ratio, ok := Analytic(c.pattern)
			if !ok {
				t.Fatalf("no closed form for %T", c.pattern)
			}
			sim := FromPattern(c.pattern, n, 0xA11A)
			grid := Grid(c.pattern.Footprint()*3/2, 96)
			simCurve, err := sim.SteadyCurve(grid, n/1000.0)
			if err != nil {
				t.Fatal(err)
			}
			anaCurve, err := CurveOf(ratio, grid)
			if err != nil {
				t.Fatal(err)
			}
			d := curve.Distance(simCurve, anaCurve)
			worst := 0.0
			for _, s := range grid {
				if gap := abs(simCurve.Eval(float64(s))-anaCurve.Eval(float64(s))) / 1000; gap > worst {
					worst = gap
				}
			}
			t.Logf("%s: distance %.4f, max ratio gap %.4f", c.name, d, worst)
			if c.distTol > 0 && d > c.distTol {
				t.Fatalf("stack sim and closed form disagree: distance %.4f > %.3f\nsim: %v\nana: %v",
					d, c.distTol, simCurve, anaCurve)
			}
			if worst > c.ratioTol {
				t.Fatalf("stack sim and closed form disagree: max ratio gap %.4f > %.3f\nsim: %v\nana: %v",
					worst, c.ratioTol, simCurve, anaCurve)
			}
		})
	}
}

// TestAnalyticUnknownPatterns pins which patterns have no closed form.
func TestAnalyticUnknownPatterns(t *testing.T) {
	d, err := workload.NewDiurnal(1024, 0.9, 100, 16)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := workload.NewCliffSeeker(1024)
	if err != nil {
		t.Fatal(err)
	}
	mix := workload.MustMix(workload.Component{Pattern: &workload.Rand{Lines: 64}, Weight: 1})
	for _, p := range []workload.Pattern{d, cs, mix} {
		if _, ok := Analytic(p); ok {
			t.Fatalf("%T claims a closed form", p)
		}
	}
}
